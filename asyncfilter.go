// Package asyncfilter is the public API of the AsyncFilter reproduction:
// a server-side, dataset-free defense that detects and filters poisoned
// model updates in asynchronous federated learning (Kang & Li, MIDDLEWARE
// 2024), together with the full evaluation stack the paper builds on —
// an event-driven AFL simulator, the GD/LIE/Min-Max/Min-Sum poisoning
// attacks, baseline defenses, and a TCP transport for real deployments.
//
// The three entry points:
//
//   - NewFilter builds the AsyncFilter module itself, to be plugged into
//     any aggregation server that can hand it batches of updates.
//   - Simulate runs a complete asynchronous-FL experiment (the paper's
//     evaluation harness) in one call.
//   - NewServer / NewClient (serve.go) run real distributed AFL over TCP.
package asyncfilter

import (
	"fmt"

	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/fl"

	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Decision is the filter's verdict for a single update.
type Decision int

// Decision values.
const (
	// Accept feeds the update into the current aggregation.
	Accept Decision = iota + 1
	// Defer re-queues the update for a later aggregation round.
	Defer
	// Reject drops the update permanently.
	Reject
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Accept:
		return "accept"
	case Defer:
		return "defer"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Update is one client model update presented to the filter.
type Update struct {
	// ClientID identifies the reporting client.
	ClientID int
	// Staleness is the number of server rounds elapsed since the client
	// received the model it trained from.
	Staleness int
	// Delta is the flat parameter delta (local model minus base model).
	Delta []float64
	// NumSamples is the client's local dataset size.
	NumSamples int
}

// Result carries the filter's verdicts for one batch.
type Result struct {
	// Decisions holds one verdict per input update, positionally.
	Decisions []Decision
	// Scores holds the per-update suspicion scores (higher = more
	// suspicious), when the filter computed them.
	Scores []float64
}

// FilterConfig tunes the AsyncFilter module. The zero value selects the
// paper's configuration (3-means, staleness grouping, moving-average
// estimation, deferred middle cluster).
type FilterConfig struct {
	// K is the number of score clusters (paper: 3; 2 reproduces the
	// Figure 7 ablation). 0 selects 3.
	K int
	// MiddlePolicy decides the fate of intermediate clusters. 0 selects
	// Defer, the paper's "contribute at a later stage".
	MiddlePolicy Decision
	// DisableStalenessGrouping turns off step 1 (ablation).
	DisableStalenessGrouping bool
	// RejectThreshold is the separation guard: a cluster is rejectable
	// only when its center sits this many standard deviations above the
	// mean of the clusters below it. 0 selects 4.
	RejectThreshold float64
	// RejectCooldown exempts a client's next arrivals after a rejection,
	// preventing starvation of honest outlier clients. 0 selects 1;
	// negative disables.
	RejectCooldown int
	// Seed drives clustering initialization.
	Seed int64
}

// Filter is the AsyncFilter module: group updates by staleness, score them
// against per-group moving averages, and reject the high-score cluster of
// a 3-means split. Not safe for concurrent use; aggregation servers
// serialize rounds.
type Filter struct {
	inner *core.AsyncFilter
}

// NewFilter builds an AsyncFilter module.
func NewFilter(cfg FilterConfig) (*Filter, error) {
	inner := core.DefaultConfig()
	if cfg.K != 0 {
		inner.K = cfg.K
	}
	if cfg.MiddlePolicy != 0 {
		inner.MiddlePolicy = fl.Decision(cfg.MiddlePolicy)
	}
	inner.GroupByStaleness = !cfg.DisableStalenessGrouping
	if !vecmath.IsZero(cfg.RejectThreshold) {
		inner.RejectThreshold = cfg.RejectThreshold
	}
	if cfg.RejectCooldown != 0 {
		inner.RejectCooldown = cfg.RejectCooldown
	}
	if cfg.Seed != 0 {
		inner.Seed = cfg.Seed
	}
	f, err := core.New(inner)
	if err != nil {
		return nil, err
	}
	return &Filter{inner: f}, nil
}

// Process filters one aggregation batch. round is the server's current
// aggregation round index (monotonically increasing).
func (f *Filter) Process(updates []Update, round int) (Result, error) {
	converted := make([]*fl.Update, len(updates))
	for i := range updates {
		converted[i] = &fl.Update{
			ClientID:   updates[i].ClientID,
			Staleness:  updates[i].Staleness,
			Delta:      updates[i].Delta,
			NumSamples: updates[i].NumSamples,
		}
	}
	res, err := f.inner.Filter(converted, round)
	if err != nil {
		return Result{}, err
	}
	out := Result{Scores: res.Scores}
	out.Decisions = make([]Decision, len(res.Decisions))
	for i, d := range res.Decisions {
		out.Decisions[i] = Decision(d)
	}
	return out, nil
}

// Name returns the filter's identifier ("asyncfilter" or
// "asyncfilter-<k>means").
func (f *Filter) Name() string { return f.inner.Name() }
