package main

import (
	"testing"
)

func TestRunSmallSimulation(t *testing.T) {
	err := run([]string{
		"-clients", "12", "-malicious", "2", "-goal", "6",
		"-rounds", "2", "-eval-every", "1", "-seed", "3",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-dataset", "svhn", "-clients", "8", "-malicious", "1", "-goal", "4", "-rounds", "1"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run([]string{"-bogus-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
