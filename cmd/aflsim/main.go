// Command aflsim runs a single asynchronous federated learning simulation
// with every knob exposed as a flag — the quickest way to explore the
// defense/attack space outside the fixed paper experiments.
//
// Usage:
//
//	aflsim -dataset cinic10 -attack lie -defense asyncfilter
//	aflsim -dataset fashionmnist -attack gd -malicious 40 -alpha 0.01
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	asyncfilter "github.com/asyncfl/asyncfilter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aflsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aflsim", flag.ContinueOnError)
	var (
		dataset   = fs.String("dataset", asyncfilter.MNIST, "dataset preset (mnist, fashionmnist, cifar10, cinic10)")
		defense   = fs.String("defense", asyncfilter.DefenseAsyncFilter, "server defense (fedbuff, fldetector, asyncfilter, krum)")
		atk       = fs.String("attack", asyncfilter.AttackGD, "poisoning attack (none, gd, lie, minmax, minsum)")
		clients   = fs.Int("clients", 100, "client population")
		malicious = fs.Int("malicious", 20, "attacker-controlled clients")
		goal      = fs.Int("goal", 40, "aggregation goal (buffer size)")
		limit     = fs.Int("staleness-limit", 20, "server staleness limit")
		rounds    = fs.Int("rounds", 30, "aggregation rounds")
		alpha     = fs.Float64("alpha", 0.1, "Dirichlet concentration (<= 0 for IID)")
		zipfS     = fs.Float64("zipf", 1.2, "client speed Zipf exponent")
		evalEvery = fs.Int("eval-every", 5, "evaluate accuracy every N rounds")
		trace     = fs.String("trace", "", "write per-round JSON trace lines to this file")
		seed      = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var traceWriter io.Writer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer f.Close()
		traceWriter = f
	}

	res, err := asyncfilter.Simulate(asyncfilter.SimConfig{
		Dataset:         *dataset,
		Defense:         *defense,
		Attack:          *atk,
		NumClients:      *clients,
		NumMalicious:    *malicious,
		AggregationGoal: *goal,
		StalenessLimit:  *limit,
		Rounds:          *rounds,
		DirichletAlpha:  *alpha,
		IID:             *alpha <= 0,
		ZipfS:           *zipfS,
		EvalEvery:       *evalEvery,
		TraceWriter:     traceWriter,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("dataset=%s defense=%s attack=%s clients=%d malicious=%d\n",
		*dataset, res.Defense, res.Attack, *clients, *malicious)
	for _, p := range res.History {
		fmt.Printf("  round %3d: accuracy %.2f%%\n", p.Round, 100*p.Accuracy)
	}
	fmt.Printf("final accuracy: %.2f%%\n", 100*res.FinalAccuracy)
	fmt.Printf("mean staleness: %.2f  dropped stale: %d\n", res.MeanStaleness, res.DroppedStale)
	d := res.Detection
	fmt.Printf("detection: TP=%d FP=%d TN=%d FN=%d precision=%.2f recall=%.2f\n",
		d.TruePositives, d.FalsePositives, d.TrueNegatives, d.FalseNegatives, d.Precision(), d.Recall())
	return nil
}
