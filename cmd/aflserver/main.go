// Command aflserver runs a real asynchronous federated learning
// aggregation server over TCP, optionally guarded by AsyncFilter. Clients
// connect with the aflclient command.
//
// Usage:
//
//	aflserver -listen :9000 -dataset mnist -rounds 20 -goal 8
//	aflserver -listen :9000 -defense fedbuff    # undefended baseline
//	aflserver -listen :9000 -checkpoint srv.ckpt  # durable, crash-recoverable
//
// With -checkpoint, the server snapshots its full state (global model,
// round counter, filter history, buffered updates, client sessions) to
// the given file, restores from it at startup when it exists, and writes
// a final snapshot before exiting — kill the process and rerun the same
// command to resume the deployment where it stopped.
//
// SIGTERM triggers a graceful drain (bounded by -drain-timeout): clients
// are told Goodbye, the in-flight round commits, the remaining buffer is
// flushed into one final round and the final checkpoint is written.
// SIGINT shuts down immediately (checkpointing current state as-is).
// Overload knobs: -max-pending bounds the buffer (stalest updates are
// shed first), -client-rate/-client-burst rate-limit each client,
// -lease evicts silent clients (clients send heartbeats to stay alive),
// -quarantine-after circuit-breaks clients the filter keeps rejecting.
//
// -obsv-addr serves live introspection over HTTP: /metrics (Prometheus
// text mirroring the server's stats), /trace (recent filter decisions as
// JSON), /healthz (drain/lifecycle state) and /debug/pprof. The listener
// stays up through a drain so the final counters remain scrapeable.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	asyncfilter "github.com/asyncfl/asyncfilter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aflserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aflserver", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:9000", "listen address")
		preset  = fs.String("dataset", asyncfilter.MNIST, "dataset preset (fixes the model architecture)")
		defense = fs.String("defense", asyncfilter.DefenseAsyncFilter, "asyncfilter or fedbuff")
		goal    = fs.Int("goal", 8, "aggregation goal (buffer size)")
		limit   = fs.Int("staleness-limit", 20, "staleness limit (0 disables)")
		rounds  = fs.Int("rounds", 20, "aggregation rounds before shutdown")
		seed    = fs.Int64("seed", 1, "random seed")

		readTimeout  = fs.Duration("read-timeout", 2*time.Minute, "disconnect a client silent for this long (0 disables)")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-task transmission deadline (0 disables)")
		maxMsg       = fs.Int64("max-message-bytes", 64<<20, "cap on a single client message (0 disables)")
		roundTimeout = fs.Duration("round-timeout", time.Minute, "aggregate a partial buffer stalled this long (0 disables)")

		ckptPath  = fs.String("checkpoint", "", "checkpoint file: restore from it at startup, snapshot to it while running (\"\" disables)")
		ckptEvery = fs.Int("checkpoint-every", 1, "snapshot every N aggregation rounds")

		maxPending  = fs.Int("max-pending", 0, "bound on buffered updates; stalest are shed first beyond it (0 disables)")
		clientRate  = fs.Float64("client-rate", 0, "per-client sustained update rate in updates/sec (0 disables)")
		clientBurst = fs.Int("client-burst", 1, "per-client token-bucket burst for -client-rate")
		lease       = fs.Duration("lease", 0, "evict clients silent for this long; heartbeats renew (0 disables)")
		quarAfter   = fs.Int("quarantine-after", 0, "quarantine a client after this many consecutive filter rejections (0 disables)")
		quarCool    = fs.Duration("quarantine-cooldown", 30*time.Second, "refusal window before a quarantined client's half-open probe")

		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM before hard shutdown")

		obsvAddr   = fs.String("obsv-addr", "", "serve /metrics, /trace, /healthz and /debug/pprof on this address (\"\" disables)")
		traceDepth = fs.Int("trace-depth", 0, "filter-decision trace ring size for -obsv-addr (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := asyncfilter.ModelSpecFor(*preset)
	if err != nil {
		return err
	}
	spec.Seed = *seed
	params, err := asyncfilter.InitialParams(spec)
	if err != nil {
		return err
	}

	var filter *asyncfilter.Filter
	switch *defense {
	case asyncfilter.DefenseAsyncFilter:
		filter, err = asyncfilter.NewFilter(asyncfilter.FilterConfig{Seed: *seed})
		if err != nil {
			return err
		}
	case asyncfilter.DefenseFedBuff:
		// nil filter = pass-through
	default:
		return fmt.Errorf("unsupported defense %q for the TCP server (want asyncfilter or fedbuff)", *defense)
	}

	server, err := asyncfilter.NewServer(asyncfilter.ServerConfig{
		InitialParams:      params,
		AggregationGoal:    *goal,
		StalenessLimit:     *limit,
		Rounds:             *rounds,
		ReadTimeout:        *readTimeout,
		WriteTimeout:       *writeTimeout,
		MaxMessageBytes:    *maxMsg,
		RoundTimeout:       *roundTimeout,
		CheckpointPath:     *ckptPath,
		CheckpointEvery:    *ckptEvery,
		MaxPendingUpdates:  *maxPending,
		ClientRateLimit:    *clientRate,
		ClientBurst:        *clientBurst,
		LeaseDuration:      *lease,
		QuarantineAfter:    *quarAfter,
		QuarantineCooldown: *quarCool,
		ObsvAddr:           *obsvAddr,
		TraceDepth:         *traceDepth,
	}, filter)
	if err != nil {
		return err
	}
	if server.Restored() {
		fmt.Printf("aflserver: restored from %s at round %d\n", *ckptPath, server.Version())
	}
	if addr := server.ObsvAddr(); addr != "" {
		fmt.Printf("aflserver: introspection on http://%s (/metrics /trace /healthz /debug/pprof)\n", addr)
	}

	fmt.Printf("aflserver: listening on %s (dataset=%s defense=%s goal=%d rounds=%d)\n",
		*listen, *preset, *defense, *goal, *rounds)
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe(*listen) }()

	// A termination signal triggers a graceful shutdown: Close writes a
	// final checkpoint, so rerunning the same command resumes from here.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case sig := <-sigCh:
		if sig == syscall.SIGTERM {
			// SIGTERM asks for a graceful drain: clients get Goodbye, the
			// in-flight round commits, the buffer flushes into one final
			// round and a final checkpoint lands — all within the budget.
			fmt.Printf("aflserver: SIGTERM at round %d, draining (budget %v)\n", server.Version(), *drainTimeout)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			err := server.Drain(ctx)
			cancel()
			if err != nil {
				fmt.Printf("aflserver: drain cut short: %v\n", err)
			} else {
				stats := server.Stats()
				fmt.Printf("aflserver: drained at round %d (%d clients, %d shed, %d rate-limited, %d checkpoints)\n",
					server.Version(), stats.ClientsConnected, stats.DroppedShed, stats.DroppedRateLimited, stats.Checkpoints)
			}
		} else {
			fmt.Printf("aflserver: %v at round %d, checkpointing and shutting down\n", sig, server.Version())
			if err := server.Close(); err != nil {
				return err
			}
		}
		<-errCh
		return nil
	case <-server.Done():
	}
	stats := server.Stats()
	fmt.Printf("aflserver: completed %d rounds (%d clients, %d reconnects, %d watchdog rounds, %d recovered panics)\n",
		server.Version(), stats.ClientsConnected, stats.Reconnects, stats.WatchdogRounds, stats.HandlerPanics)
	if err := server.Close(); err != nil {
		return err
	}
	if err := <-errCh; err != nil {
		return err
	}

	// Report final test accuracy against the preset's held-out split.
	_, test, err := asyncfilter.GenerateData(*preset, *seed)
	if err != nil {
		return err
	}
	acc, loss, err := asyncfilter.EvaluateParams(server.FinalParams(), spec, test)
	if err != nil {
		return err
	}
	fmt.Printf("aflserver: final accuracy %.2f%% (loss %.4f)\n", 100*acc, loss)
	return nil
}
