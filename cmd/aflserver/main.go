// Command aflserver runs a real asynchronous federated learning
// aggregation server over TCP, optionally guarded by AsyncFilter. Clients
// connect with the aflclient command.
//
// Usage:
//
//	aflserver -listen :9000 -dataset mnist -rounds 20 -goal 8
//	aflserver -listen :9000 -defense fedbuff    # undefended baseline
//	aflserver -listen :9000 -checkpoint srv.ckpt  # durable, crash-recoverable
//
// Two-tier topology (DESIGN.md §12): -role root runs the top-tier
// aggregator that edge servers report to; -role edge runs an edge
// aggregator that admits clients, filters locally and forwards batches
// to -root-addr. Edges ride out a dead root in degraded mode (bounded
// buffering, /healthz says "degraded"), and a checkpointed root
// (-checkpoint) can be killed and restarted without double-counting:
//
//	aflserver -role root -listen :9100 -rounds 40 -edge-lease 5s
//	aflserver -role edge -listen :9000 -root-addr host:9100 -edge-id 0
//	aflserver -role edge -listen :9001 -root-addr host:9100 -edge-id 1
//
// Replicated root (DESIGN.md §13): -repl-listen accepts standbys on the
// replication channel, -replica-of runs this root as a standby of the
// given primary, and -peers lists every replica's edge-facing address so
// edges re-home after a failover. A standby whose primary stays silent
// for -replica-lease promotes itself under a new fencing epoch; the old
// primary, if it comes back, is refused by the fleet and demotes:
//
//	aflserver -role root -listen :9100 -repl-listen :9200 -peers host:9100,host:9101
//	aflserver -role root -listen :9101 -replica-of host:9200 -repl-listen :9201 \
//	    -replica-id 1 -peers host:9100,host:9101
//
// With -replica-peers (the replication addresses of every OTHER group
// member) promotion switches from bare lease expiry to quorum elections:
// an expired standby becomes a candidate and only serves after a
// majority of the group durably grants its epoch, so a minority
// partition can never produce a second primary. -replica-quorum
// overrides the majority size and -vote-ledger persists the node's vote
// so a crash-restarted voter cannot grant the same epoch twice:
//
//	aflserver -role root -listen :9101 -replica-of host:9200 -repl-listen :9201 \
//	    -replica-id 1 -replica-peers host:9200,host:9202 \
//	    -vote-ledger vote1.ckpt -peers host:9100,host:9101,host:9102
//
// With -checkpoint, the server snapshots its full state (global model,
// round counter, filter history, buffered updates, client sessions) to
// the given file, restores from it at startup when it exists, and writes
// a final snapshot before exiting — kill the process and rerun the same
// command to resume the deployment where it stopped.
//
// SIGTERM triggers a graceful drain (bounded by -drain-timeout): clients
// are told Goodbye, the in-flight round commits, the remaining buffer is
// flushed into one final round and the final checkpoint is written.
// SIGINT shuts down immediately (checkpointing current state as-is).
// Overload knobs: -max-pending bounds the buffer (stalest updates are
// shed first), -client-rate/-client-burst rate-limit each client,
// -lease evicts silent clients (clients send heartbeats to stay alive),
// -quarantine-after circuit-breaks clients the filter keeps rejecting.
//
// -obsv-addr serves live introspection over HTTP: /metrics (Prometheus
// text mirroring the server's stats), /trace (recent filter decisions as
// JSON), /healthz (drain/lifecycle state) and /debug/pprof. The listener
// stays up through a drain so the final counters remain scrapeable.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	asyncfilter "github.com/asyncfl/asyncfilter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aflserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aflserver", flag.ContinueOnError)
	var (
		role    = fs.String("role", "single", "deployment role: single (flat server), edge (forwards to -root-addr) or root (top tier)")
		listen  = fs.String("listen", "127.0.0.1:9000", "listen address")
		preset  = fs.String("dataset", asyncfilter.MNIST, "dataset preset (fixes the model architecture)")
		defense = fs.String("defense", asyncfilter.DefenseAsyncFilter, "asyncfilter or fedbuff")
		goal    = fs.Int("goal", 8, "aggregation goal (buffer size)")
		limit   = fs.Int("staleness-limit", 20, "staleness limit (0 disables)")
		rounds  = fs.Int("rounds", 20, "aggregation rounds before shutdown")
		seed    = fs.Int64("seed", 1, "random seed")

		readTimeout  = fs.Duration("read-timeout", 2*time.Minute, "disconnect a client silent for this long (0 disables)")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-task transmission deadline (0 disables)")
		maxMsg       = fs.Int64("max-message-bytes", 64<<20, "cap on a single client message (0 disables)")
		roundTimeout = fs.Duration("round-timeout", time.Minute, "aggregate a partial buffer stalled this long (0 disables)")

		ckptPath  = fs.String("checkpoint", "", "checkpoint file: restore from it at startup, snapshot to it while running (\"\" disables)")
		ckptEvery = fs.Int("checkpoint-every", 1, "snapshot every N aggregation rounds")

		maxPending  = fs.Int("max-pending", 0, "bound on buffered updates; stalest are shed first beyond it (0 disables)")
		clientRate  = fs.Float64("client-rate", 0, "per-client sustained update rate in updates/sec (0 disables)")
		clientBurst = fs.Int("client-burst", 1, "per-client token-bucket burst for -client-rate")
		lease       = fs.Duration("lease", 0, "evict clients silent for this long; heartbeats renew (0 disables)")
		quarAfter   = fs.Int("quarantine-after", 0, "quarantine a client after this many consecutive filter rejections (0 disables)")
		quarCool    = fs.Duration("quarantine-cooldown", 30*time.Second, "refusal window before a quarantined client's half-open probe")

		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM before hard shutdown")

		rootAddr    = fs.String("root-addr", "", "edge role: the root server's address")
		edgeID      = fs.Int("edge-id", 0, "edge role: unique edge id")
		heartbeat   = fs.Duration("heartbeat", 0, "edge role: uplink heartbeat interval (0 = 500ms); keep well below the root's -edge-lease")
		maxBatches  = fs.Int("max-pending-batches", 0, "edge role: degraded-mode batch buffer bound (0 = 64)")
		uplinkCodec = fs.String("uplink-codec", "binary", "edge role: uplink wire codec, binary or gob (the root auto-detects; use gob to roll back against an old root)")
		edgeLease   = fs.Duration("edge-lease", 5*time.Second, "root role: evict edges silent this long and hand their filter state to survivors (0 disables failover)")

		replListen = fs.String("repl-listen", "", "root role: replication channel listen address (\"\" disables replication)")
		replicaOf  = fs.String("replica-of", "", "root role: comma-separated primary replication addresses; set to run as a standby")
		peers      = fs.String("peers", "", "root role: comma-separated edge-facing addresses of every replica, relayed to edges for failover re-homing")
		replicaID  = fs.Int("replica-id", 0, "root role: this node's id in the replication group")
		replPeers  = fs.String("replica-peers", "", "root role: comma-separated replication addresses of every other group member; enables quorum elections")
		replQuorum = fs.Int("replica-quorum", 0, "root role: vote grants needed to promote (0 = majority of the group)")
		votePath   = fs.String("vote-ledger", "", "root role: persist this node's vote ledger to this file so a restarted voter cannot double-grant (\"\" keeps it in memory)")
		replLease  = fs.Duration("replica-lease", 2*time.Second, "root role: standby promotes after this much primary silence")
		replBeat   = fs.Duration("replica-heartbeat", 0, "root role: primary's idle replication push interval (0 = lease/4)")
		replCodec  = fs.String("repl-codec", "binary", "root role: standby replication-link wire codec, binary or gob (the primary auto-detects; use gob to roll back against an old primary)")

		obsvAddr   = fs.String("obsv-addr", "", "serve /metrics, /trace, /healthz and /debug/pprof on this address (\"\" disables)")
		traceDepth = fs.Int("trace-depth", 0, "filter-decision trace ring size for -obsv-addr (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := asyncfilter.ModelSpecFor(*preset)
	if err != nil {
		return err
	}
	spec.Seed = *seed
	params, err := asyncfilter.InitialParams(spec)
	if err != nil {
		return err
	}

	var filter *asyncfilter.Filter
	switch *defense {
	case asyncfilter.DefenseAsyncFilter:
		filter, err = asyncfilter.NewFilter(asyncfilter.FilterConfig{Seed: *seed})
		if err != nil {
			return err
		}
	case asyncfilter.DefenseFedBuff:
		// nil filter = pass-through
	default:
		return fmt.Errorf("unsupported defense %q for the TCP server (want asyncfilter or fedbuff)", *defense)
	}

	serverCfg := asyncfilter.ServerConfig{
		InitialParams:      params,
		AggregationGoal:    *goal,
		StalenessLimit:     *limit,
		Rounds:             *rounds,
		ReadTimeout:        *readTimeout,
		WriteTimeout:       *writeTimeout,
		MaxMessageBytes:    *maxMsg,
		RoundTimeout:       *roundTimeout,
		CheckpointPath:     *ckptPath,
		CheckpointEvery:    *ckptEvery,
		MaxPendingUpdates:  *maxPending,
		ClientRateLimit:    *clientRate,
		ClientBurst:        *clientBurst,
		LeaseDuration:      *lease,
		QuarantineAfter:    *quarAfter,
		QuarantineCooldown: *quarCool,
		ObsvAddr:           *obsvAddr,
		TraceDepth:         *traceDepth,
	}

	switch *role {
	case "single":
		// fall through to the flat deployment below
	case "edge":
		return runEdge(edgeOptions{
			listen:     *listen,
			rootAddr:   *rootAddr,
			edgeID:     *edgeID,
			heartbeat:  *heartbeat,
			maxBatches: *maxBatches,
			codec:      *uplinkCodec,
			seed:       *seed,
			server:     serverCfg,
			filter:     filter,
		})
	case "root":
		return runRoot(rootOptions{
			listen: *listen,
			filter: filter,
			spec:   spec,
			preset: *preset,
			seed:   *seed,
			cfg: asyncfilter.RootServerConfig{
				InitialParams:     params,
				Rounds:            *rounds,
				StalenessLimit:    *limit,
				ReadTimeout:       *readTimeout,
				WriteTimeout:      *writeTimeout,
				MaxMessageBytes:   *maxMsg,
				EdgeLeaseDuration: *edgeLease,
				CheckpointPath:    *ckptPath,
				CheckpointEvery:   *ckptEvery,
				ObsvAddr:          *obsvAddr,
				TraceDepth:        *traceDepth,
				Replication: replicationConfig(*replListen, *replicaOf, *peers,
					*replPeers, *votePath, *replCodec, *replicaID, *replQuorum,
					*replLease, *replBeat, *maxMsg, *seed),
			},
		})
	default:
		return fmt.Errorf("unknown -role %q (want single, edge or root)", *role)
	}

	server, err := asyncfilter.NewServer(serverCfg, filter)
	if err != nil {
		return err
	}
	if server.Restored() {
		fmt.Printf("aflserver: restored from %s at round %d\n", *ckptPath, server.Version())
	}
	if addr := server.ObsvAddr(); addr != "" {
		fmt.Printf("aflserver: introspection on http://%s (/metrics /trace /healthz /debug/pprof)\n", addr)
	}

	fmt.Printf("aflserver: listening on %s (dataset=%s defense=%s goal=%d rounds=%d)\n",
		*listen, *preset, *defense, *goal, *rounds)
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe(*listen) }()

	// A termination signal triggers a graceful shutdown: Close writes a
	// final checkpoint, so rerunning the same command resumes from here.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case sig := <-sigCh:
		if sig == syscall.SIGTERM {
			// SIGTERM asks for a graceful drain: clients get Goodbye, the
			// in-flight round commits, the buffer flushes into one final
			// round and a final checkpoint lands — all within the budget.
			fmt.Printf("aflserver: SIGTERM at round %d, draining (budget %v)\n", server.Version(), *drainTimeout)
			ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
			err := server.Drain(ctx)
			cancel()
			if err != nil {
				fmt.Printf("aflserver: drain cut short: %v\n", err)
			} else {
				stats := server.Stats()
				fmt.Printf("aflserver: drained at round %d (%d clients, %d shed, %d rate-limited, %d checkpoints)\n",
					server.Version(), stats.ClientsConnected, stats.DroppedShed, stats.DroppedRateLimited, stats.Checkpoints)
			}
		} else {
			fmt.Printf("aflserver: %v at round %d, checkpointing and shutting down\n", sig, server.Version())
			if err := server.Close(); err != nil {
				return err
			}
		}
		<-errCh
		return nil
	case <-server.Done():
	}
	stats := server.Stats()
	fmt.Printf("aflserver: completed %d rounds (%d clients, %d reconnects, %d watchdog rounds, %d recovered panics)\n",
		server.Version(), stats.ClientsConnected, stats.Reconnects, stats.WatchdogRounds, stats.HandlerPanics)
	if err := server.Close(); err != nil {
		return err
	}
	if err := <-errCh; err != nil {
		return err
	}

	// Report final test accuracy against the preset's held-out split.
	_, test, err := asyncfilter.GenerateData(*preset, *seed)
	if err != nil {
		return err
	}
	acc, loss, err := asyncfilter.EvaluateParams(server.FinalParams(), spec, test)
	if err != nil {
		return err
	}
	fmt.Printf("aflserver: final accuracy %.2f%% (loss %.4f)\n", 100*acc, loss)
	return nil
}

// edgeOptions carries the parsed flags for -role edge.
type edgeOptions struct {
	listen     string
	rootAddr   string
	edgeID     int
	heartbeat  time.Duration
	maxBatches int
	codec      string
	seed       int64
	server     asyncfilter.ServerConfig
	filter     *asyncfilter.Filter
}

// runEdge serves clients locally and forwards filtered batches to the
// root until a signal arrives or the root declares the deployment done.
func runEdge(opts edgeOptions) error {
	if opts.rootAddr == "" {
		return fmt.Errorf("-role edge requires -root-addr")
	}
	// The root's round budget ends the deployment; the edge's own round
	// flag would cut the uplink short, so Rounds 0 selects unbounded.
	opts.server.Rounds = 0
	edge, err := asyncfilter.NewEdgeServer(asyncfilter.EdgeServerConfig{
		EdgeID:            opts.edgeID,
		RootAddr:          opts.rootAddr,
		Server:            opts.server,
		HeartbeatEvery:    opts.heartbeat,
		MaxPendingBatches: opts.maxBatches,
		Seed:              opts.seed,
		UplinkCodec:       opts.codec,
	}, opts.filter)
	if err != nil {
		return err
	}
	if addr := edge.ObsvAddr(); addr != "" {
		fmt.Printf("aflserver: edge introspection on http://%s (/healthz reports degraded when the uplink is down)\n", addr)
	}
	fmt.Printf("aflserver: edge %d listening on %s, forwarding to %s (goal=%d)\n",
		opts.edgeID, opts.listen, opts.rootAddr, opts.server.AggregationGoal)
	errCh := make(chan error, 1)
	go func() { errCh <- edge.ListenAndServe(opts.listen) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	// The edge has no Done channel of its own: it retires when the root
	// reports the deployment complete, which it learns over the uplink.
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case sig := <-sigCh:
			fmt.Printf("aflserver: edge %d: %v, shutting down\n", opts.edgeID, sig)
			err := edge.Close()
			<-errCh
			return err
		case err := <-errCh:
			_ = edge.Close()
			return err
		case <-ticker.C:
			if edge.RootDone() {
				st := edge.Stats()
				fmt.Printf("aflserver: edge %d done at local round %d (%d batches committed, %d acked, %d shed, %d uplink sessions, %d handoffs merged)\n",
					opts.edgeID, edge.Version(), st.BatchesCommitted, st.BatchesAcked, st.BatchesShed, st.UplinkSessions, st.HandoffsMerged)
				err := edge.Close()
				<-errCh
				return err
			}
		}
	}
}

// replicationConfig assembles the root's replication config from the
// flags; nil (replication disabled) unless -repl-listen or -replica-of
// is set.
func replicationConfig(replListen, replicaOf, peers, votePeers, votePath, codec string, id, quorum int, lease, beat time.Duration, maxMsg int64, seed int64) *asyncfilter.ReplicationConfig {
	if replListen == "" && replicaOf == "" {
		return nil
	}
	return &asyncfilter.ReplicationConfig{
		NodeID:          id,
		ReplListen:      replListen,
		Upstreams:       splitAddrs(replicaOf),
		Peers:           splitAddrs(peers),
		VotePeers:       splitAddrs(votePeers),
		QuorumSize:      quorum,
		VotePath:        votePath,
		Lease:           lease,
		Heartbeat:       beat,
		MaxMessageBytes: maxMsg,
		Seed:            seed,
		Codec:           codec,
	}
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// rootOptions carries the parsed flags for -role root.
type rootOptions struct {
	listen string
	preset string
	seed   int64
	spec   asyncfilter.ModelSpec
	filter *asyncfilter.Filter
	cfg    asyncfilter.RootServerConfig
}

// runRoot serves edge aggregators until the configured rounds complete
// or a signal arrives; Close always checkpoints (when configured), so a
// rerun of the same command resumes the deployment.
func runRoot(opts rootOptions) error {
	root, err := asyncfilter.NewRootServer(opts.cfg, opts.filter)
	if err != nil {
		return err
	}
	if root.Restored() {
		fmt.Printf("aflserver: root restored from %s at round %d\n", opts.cfg.CheckpointPath, root.Version())
	}
	if addr := root.ObsvAddr(); addr != "" {
		fmt.Printf("aflserver: root introspection on http://%s (/metrics /trace /healthz /debug/pprof)\n", addr)
	}
	if role := root.Role(); role != "" {
		fmt.Printf("aflserver: root replication role=%s epoch=%d repl-listen=%s\n", role, root.Epoch(), root.ReplAddr())
	}
	fmt.Printf("aflserver: root listening on %s (dataset=%s rounds=%d edge-lease=%v)\n",
		opts.listen, opts.preset, opts.cfg.Rounds, opts.cfg.EdgeLeaseDuration)
	errCh := make(chan error, 1)
	go func() { errCh <- root.ListenAndServe(opts.listen) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case sig := <-sigCh:
		// Closing does not mark the deployment finished: edges treat the
		// vanished root as a partition and buffer until it comes back.
		fmt.Printf("aflserver: root: %v at round %d, checkpointing and shutting down\n", sig, root.Version())
		err := root.Close()
		<-errCh
		return err
	case <-root.Done():
	}
	st := root.Stats()
	fmt.Printf("aflserver: root completed %d rounds (%d edges, %d reconnects, %d expired leases, %d batches replayed, %d lost, %d handoffs delivered)\n",
		st.Rounds, st.EdgesConnected, st.EdgeReconnects, st.ExpiredEdgeLeases, st.BatchesReplayed, st.BatchesLost, st.HandoffsDelivered)
	finalParams := root.FinalParams()
	if err := root.Close(); err != nil {
		return err
	}
	if err := <-errCh; err != nil {
		return err
	}

	_, test, err := asyncfilter.GenerateData(opts.preset, opts.seed)
	if err != nil {
		return err
	}
	acc, loss, err := asyncfilter.EvaluateParams(finalParams, opts.spec, test)
	if err != nil {
		return err
	}
	fmt.Printf("aflserver: final accuracy %.2f%% (loss %.4f)\n", 100*acc, loss)
	return nil
}
