// Command aflserver runs a real asynchronous federated learning
// aggregation server over TCP, optionally guarded by AsyncFilter. Clients
// connect with the aflclient command.
//
// Usage:
//
//	aflserver -listen :9000 -dataset mnist -rounds 20 -goal 8
//	aflserver -listen :9000 -defense fedbuff    # undefended baseline
//	aflserver -listen :9000 -checkpoint srv.ckpt  # durable, crash-recoverable
//
// With -checkpoint, the server snapshots its full state (global model,
// round counter, filter history, buffered updates, client sessions) to
// the given file, restores from it at startup when it exists, and writes
// a final snapshot on SIGINT/SIGTERM before exiting — kill the process
// and rerun the same command to resume the deployment where it stopped.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	asyncfilter "github.com/asyncfl/asyncfilter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aflserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aflserver", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:9000", "listen address")
		preset  = fs.String("dataset", asyncfilter.MNIST, "dataset preset (fixes the model architecture)")
		defense = fs.String("defense", asyncfilter.DefenseAsyncFilter, "asyncfilter or fedbuff")
		goal    = fs.Int("goal", 8, "aggregation goal (buffer size)")
		limit   = fs.Int("staleness-limit", 20, "staleness limit (0 disables)")
		rounds  = fs.Int("rounds", 20, "aggregation rounds before shutdown")
		seed    = fs.Int64("seed", 1, "random seed")

		readTimeout  = fs.Duration("read-timeout", 2*time.Minute, "disconnect a client silent for this long (0 disables)")
		writeTimeout = fs.Duration("write-timeout", 30*time.Second, "per-task transmission deadline (0 disables)")
		maxMsg       = fs.Int64("max-message-bytes", 64<<20, "cap on a single client message (0 disables)")
		roundTimeout = fs.Duration("round-timeout", time.Minute, "aggregate a partial buffer stalled this long (0 disables)")

		ckptPath  = fs.String("checkpoint", "", "checkpoint file: restore from it at startup, snapshot to it while running (\"\" disables)")
		ckptEvery = fs.Int("checkpoint-every", 1, "snapshot every N aggregation rounds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := asyncfilter.ModelSpecFor(*preset)
	if err != nil {
		return err
	}
	spec.Seed = *seed
	params, err := asyncfilter.InitialParams(spec)
	if err != nil {
		return err
	}

	var filter *asyncfilter.Filter
	switch *defense {
	case asyncfilter.DefenseAsyncFilter:
		filter, err = asyncfilter.NewFilter(asyncfilter.FilterConfig{Seed: *seed})
		if err != nil {
			return err
		}
	case asyncfilter.DefenseFedBuff:
		// nil filter = pass-through
	default:
		return fmt.Errorf("unsupported defense %q for the TCP server (want asyncfilter or fedbuff)", *defense)
	}

	server, err := asyncfilter.NewServer(asyncfilter.ServerConfig{
		InitialParams:   params,
		AggregationGoal: *goal,
		StalenessLimit:  *limit,
		Rounds:          *rounds,
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		MaxMessageBytes: *maxMsg,
		RoundTimeout:    *roundTimeout,
		CheckpointPath:  *ckptPath,
		CheckpointEvery: *ckptEvery,
	}, filter)
	if err != nil {
		return err
	}
	if server.Restored() {
		fmt.Printf("aflserver: restored from %s at round %d\n", *ckptPath, server.Version())
	}

	fmt.Printf("aflserver: listening on %s (dataset=%s defense=%s goal=%d rounds=%d)\n",
		*listen, *preset, *defense, *goal, *rounds)
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe(*listen) }()

	// A termination signal triggers a graceful shutdown: Close writes a
	// final checkpoint, so rerunning the same command resumes from here.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case sig := <-sigCh:
		fmt.Printf("aflserver: %v at round %d, checkpointing and shutting down\n", sig, server.Version())
		if err := server.Close(); err != nil {
			return err
		}
		<-errCh
		return nil
	case <-server.Done():
	}
	stats := server.Stats()
	fmt.Printf("aflserver: completed %d rounds (%d clients, %d reconnects, %d watchdog rounds, %d recovered panics)\n",
		server.Version(), stats.ClientsConnected, stats.Reconnects, stats.WatchdogRounds, stats.HandlerPanics)
	if err := server.Close(); err != nil {
		return err
	}
	if err := <-errCh; err != nil {
		return err
	}

	// Report final test accuracy against the preset's held-out split.
	_, test, err := asyncfilter.GenerateData(*preset, *seed)
	if err != nil {
		return err
	}
	acc, loss, err := asyncfilter.EvaluateParams(server.FinalParams(), spec, test)
	if err != nil {
		return err
	}
	fmt.Printf("aflserver: final accuracy %.2f%% (loss %.4f)\n", 100*acc, loss)
	return nil
}
