// Command aflclient joins an aflserver deployment as one federated
// learning client, optionally acting maliciously.
//
// Usage:
//
//	aflclient -server 127.0.0.1:9000 -dataset mnist -id 3
//	aflclient -server 127.0.0.1:9000 -dataset mnist -id 7 -attack gd
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	asyncfilter "github.com/asyncfl/asyncfilter"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aflclient:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aflclient", flag.ContinueOnError)
	var (
		server = fs.String("server", "127.0.0.1:9000", "server address")
		preset = fs.String("dataset", asyncfilter.MNIST, "dataset preset (must match the server)")
		id     = fs.Int("id", 0, "client id (unique per deployment)")
		total  = fs.Int("population", 100, "total client population (for partitioning)")
		size   = fs.Int("partition", 200, "local partition size")
		alpha  = fs.Float64("alpha", 0.1, "Dirichlet concentration (<= 0 for IID)")
		atk    = fs.String("attack", "", "act maliciously: gd, lie, minmax or minsum")
		seed   = fs.Int64("seed", 1, "data seed (must match the server's dataset seed)")

		retries     = fs.Int("max-retries", 10, "consecutive failed connection attempts before giving up")
		retryBase   = fs.Duration("retry-base", 200*time.Millisecond, "initial reconnect backoff (doubles per attempt, jittered)")
		retryMax    = fs.Duration("retry-max", 10*time.Second, "reconnect backoff cap")
		dialTimeout = fs.Duration("dial-timeout", 10*time.Second, "per-connection dial timeout (0 disables)")
		heartbeat   = fs.Duration("heartbeat", 0, "keepalive heartbeat interval, well below the server's -lease (0 disables)")
		codec       = fs.String("codec", "binary", "wire codec: binary (length-prefixed frames, the default) or gob (legacy; use to roll back against old servers)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id < 0 || *id >= *total {
		return fmt.Errorf("id %d out of [0, %d)", *id, *total)
	}

	train, _, err := asyncfilter.GenerateData(*preset, *seed)
	if err != nil {
		return err
	}
	parts, err := train.PartitionDirichlet(*total, *size, *alpha, *seed)
	if err != nil {
		return err
	}
	spec, err := asyncfilter.ModelSpecFor(*preset)
	if err != nil {
		return err
	}
	spec.Seed = *seed
	trainSpec, err := asyncfilter.TrainSpecFor(*preset)
	if err != nil {
		return err
	}

	client, err := asyncfilter.NewClient(asyncfilter.ClientOptions{
		ID:                *id,
		Data:              parts[*id],
		Model:             spec,
		Train:             trainSpec,
		Attack:            *atk,
		Seed:              *seed,
		MaxRetries:        *retries,
		RetryBaseDelay:    *retryBase,
		RetryMaxDelay:     *retryMax,
		DialTimeout:       *dialTimeout,
		HeartbeatInterval: *heartbeat,
		Codec:             *codec,
	})
	if err != nil {
		return err
	}
	role := "honest"
	if *atk != "" {
		role = "malicious (" + *atk + ")"
	}
	fmt.Printf("aflclient %d: joining %s as %s client (%d local samples)\n", *id, *server, role, parts[*id].Len())
	if err := client.Run(*server); err != nil {
		// A drain Goodbye is the server's graceful-shutdown path, not a
		// client failure: exit clean so supervisors don't restart us into
		// a closed port.
		if errors.Is(err, asyncfilter.ErrServerGoodbye) {
			fmt.Printf("aflclient %d: server is draining, exiting\n", *id)
			return nil
		}
		return err
	}
	fmt.Printf("aflclient %d: server signalled completion\n", *id)
	return nil
}
