package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunRequiresExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -exp accepted")
	}
	if err := run([]string{"-exp", "table42"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
