package main_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles afllint once into a temp dir and returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "afllint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building afllint: %v\n%s", err, out)
	}
	return bin
}

// runIn executes the command in dir, returning combined output and the
// exit code.
func runIn(t *testing.T, dir string, name string, args ...string) (string, int) {
	t.Helper()
	return runInEnv(t, dir, nil, name, args...)
}

// runInEnv is runIn with extra environment variables appended.
func runInEnv(t *testing.T, dir string, env []string, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var exitErr *exec.ExitError
	if errors.As(err, &exitErr) {
		return string(out), exitErr.ExitCode()
	}
	t.Fatalf("running %s %v: %v\n%s", name, args, err, out)
	return "", 0
}

// TestListRegistersAllAnalyzers pins the suite roster: losing an analyzer
// from the multichecker must fail loudly.
func TestListRegistersAllAnalyzers(t *testing.T) {
	bin := buildTool(t)
	out, code := runIn(t, ".", bin, "-list")
	if code != 0 {
		t.Fatalf("afllint -list exited %d:\n%s", code, out)
	}
	for _, name := range []string{
		"rawrand", "vecalias", "lockio", "typederr", "floateq",
		"lockorder", "goroleak", "netdeadline", "epochfence", "hotalloc",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("afllint -list is missing analyzer %q:\n%s", name, out)
		}
	}
}

// TestStandaloneCleanAndDirty runs afllint over the fixture modules: the
// clean module must exit zero, the dirty module must report a violation
// from each planted analyzer and exit nonzero.
func TestStandaloneCleanAndDirty(t *testing.T) {
	bin := buildTool(t)

	out, code := runIn(t, "testdata/clean", bin, "./...")
	if code != 0 {
		t.Fatalf("clean module: afllint exited %d, want 0:\n%s", code, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Fatalf("clean module: unexpected diagnostics:\n%s", out)
	}

	out, code = runIn(t, "testdata/dirty", bin, "./...")
	if code == 0 {
		t.Fatalf("dirty module: afllint exited 0, want nonzero:\n%s", out)
	}
	for _, want := range []string{
		"(rawrand)", "(typederr)", "(floateq)", "(vecalias)",
		"(lockorder)", "(goroleak)", "(netdeadline)", "(epochfence)", "(hotalloc)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dirty module: no %s diagnostic in output:\n%s", want, out)
		}
	}
}

// TestBuildTags pins the loader's build-flag plumbing: the clean module
// hides a rawrand violation behind the extras tag, so afllint must pass
// without the tag and fail when it is supplied via -tags or GOFLAGS.
func TestBuildTags(t *testing.T) {
	bin := buildTool(t)

	out, code := runIn(t, "testdata/clean", bin, "./...")
	if code != 0 {
		t.Fatalf("clean module without tags: afllint exited %d, want 0:\n%s", code, out)
	}

	out, code = runIn(t, "testdata/clean", bin, "-tags", "extras", "./...")
	if code == 0 {
		t.Fatalf("clean module with -tags extras: afllint exited 0, want nonzero:\n%s", out)
	}
	if !strings.Contains(out, "(rawrand)") {
		t.Errorf("clean module with -tags extras: no rawrand diagnostic:\n%s", out)
	}

	out, code = runInEnv(t, "testdata/clean", []string{"GOFLAGS=-tags=extras"}, bin, "./...")
	if code == 0 {
		t.Fatalf("clean module with GOFLAGS=-tags=extras: afllint exited 0, want nonzero:\n%s", out)
	}
	if !strings.Contains(out, "(rawrand)") {
		t.Errorf("clean module with GOFLAGS=-tags=extras: no rawrand diagnostic:\n%s", out)
	}
}

// TestVettoolProtocol drives afllint through `go vet -vettool`, which
// exercises the -V=full handshake and the per-package cfg protocol.
func TestVettoolProtocol(t *testing.T) {
	bin := buildTool(t)

	out, code := runIn(t, "testdata/clean", "go", "vet", "-vettool="+bin, "./...")
	if code != 0 {
		t.Fatalf("clean module: go vet exited %d, want 0:\n%s", code, out)
	}

	out, code = runIn(t, "testdata/dirty", "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("dirty module: go vet exited 0, want nonzero:\n%s", out)
	}
	if !strings.Contains(out, "(rawrand)") || !strings.Contains(out, "(floateq)") {
		t.Errorf("dirty module: vet output missing expected diagnostics:\n%s", out)
	}
}
