//go:build extras

// This file is excluded from the default build: afllint only sees it
// when the extras tag is supplied (-tags or GOFLAGS), which is what the
// build-tag plumbing test pins.
package clean

import "math/rand"

// TaggedRoll draws from the global source — a rawrand violation that is
// invisible without the extras tag.
func TaggedRoll() int {
	return rand.Intn(6)
}
