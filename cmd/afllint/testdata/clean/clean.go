// Package clean holds code every afllint analyzer accepts: errors.Is for
// sentinels, no raw randomness, no exact float comparisons.
package clean

import (
	"errors"
	"io"
)

// ErrEmpty is a sentinel; compared only via errors.Is below.
var ErrEmpty = errors.New("empty")

// Mean averages xs, reporting ErrEmpty for no input.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Describe classifies an error with errors.Is.
func Describe(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrEmpty):
		return "empty"
	case errors.Is(err, io.EOF):
		return "eof"
	}
	return "other"
}
