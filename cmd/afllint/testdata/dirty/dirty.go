// Package dirty violates the rawrand, typederr and floateq invariants so
// the smoke test can assert a nonzero afllint exit.
package dirty

import (
	"errors"
	"math/rand"
	"time"
)

// ErrBad is a sentinel compared with == below.
var ErrBad = errors.New("bad")

// Roll seeds from the wall clock and draws from an ad-hoc source.
func Roll() int {
	r := rand.New(rand.NewSource(time.Now().UnixNano()))
	return r.Intn(6)
}

// IsBad compares a sentinel with ==.
func IsBad(err error) bool {
	return err == ErrBad
}

// Zero compares floats exactly.
func Zero(x float64) bool {
	return x == 0
}

// Scale allocates a fresh vector per call despite the hot-path marker.
//
//afl:hotpath
func Scale(src []float64, k float64) []float64 {
	out := make([]float64, len(src))
	for i, v := range src {
		out[i] = v * k
	}
	return out
}
