// Package core sits under an internal/core import path so the scoped
// vecalias analyzer applies to it.
package core

// Sink retains updates across calls.
type Sink struct {
	kept [][]float64
}

// Keep stores the caller-owned slice without copying.
func (s *Sink) Keep(d []float64) {
	s.kept = append(s.kept, d)
}
