// Package transport sits under an internal/transport import path so the
// scoped concurrency analyzers (lockorder, goroleak, netdeadline) apply
// to it; each invariant is violated once.
package transport

import (
	"net"
	"sync"
)

// Server holds two mutexes acquired in opposite orders below.
type Server struct {
	mu    sync.Mutex
	state sync.Mutex
	conns []net.Conn
	work  chan int
}

// lockAB acquires mu then state.
func (s *Server) lockAB() {
	s.mu.Lock()
	s.state.Lock()
	s.conns = nil
	s.state.Unlock()
	s.mu.Unlock()
}

// lockBA acquires state then mu: an ABBA inversion with lockAB.
func (s *Server) lockBA() {
	s.state.Lock()
	s.mu.Lock()
	s.conns = nil
	s.mu.Unlock()
	s.state.Unlock()
}

// Start spawns a goroutine with no stop path.
func (s *Server) Start() {
	go func() {
		for v := range s.work {
			_ = v
		}
	}()
}

// Pump reads from the conn without ever arming a deadline.
func Pump(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf)
}
