// Package topology sits under an internal/topology import path so the
// scoped epochfence analyzer applies to it.
package topology

// Root carries a fenced epoch counter.
type Root struct {
	epoch uint64
}

// Adopt raw-compares and raw-writes the epoch outside a fencing helper.
func (r *Root) Adopt(e uint64) {
	if e > r.epoch {
		r.epoch = e
	}
}
