// Command afllint runs the repository's invariant analyzers (rawrand,
// vecalias, lockio, typederr, floateq, lockorder, goroleak, netdeadline,
// epochfence, hotalloc — see internal/analysis) over Go packages. It
// supports two modes:
//
//   - standalone: `afllint [packages]` (default ./...) loads packages via
//     the go tool and prints diagnostics; exit status 1 when any are
//     found.
//   - vettool: `go vet -vettool=$(which afllint) ./...` — afllint speaks
//     the cmd/go vet protocol (-V=full version handshake, then one
//     invocation per package with a *.cfg JSON file); diagnostics go to
//     stderr with exit status 2, matching vet's convention.
//
// Suppress an individual finding with a justified directive on the line
// or the line above:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason is mandatory; a bare ignore suppresses nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/analysis"
	"github.com/asyncfl/asyncfilter/internal/analysis/suite"
)

// version is the handshake identity reported to cmd/go; the vet driver
// rejects tools that answer "devel" without a build ID.
const version = "v0.1.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// cmd/go probes `vettool -flags` for tool-specific flags (JSON list);
	// afllint exposes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}
	fs := flag.NewFlagSet("afllint", flag.ContinueOnError)
	printVersion := fs.String("V", "", "print version for the go vet handshake (-V=full)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	tags := fs.String("tags", "", "comma-separated build tags for standalone package loading (GOFLAGS is honored too)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: afllint [-list] [-tags taglist] [packages]\n       go vet -vettool=<afllint> [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *printVersion != "" {
		// cmd/go parses `<name> version <semver>` (see buildid.go).
		fmt.Printf("afllint version %s\n", version)
		return 0
	}
	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0])
	}
	var buildFlags []string
	if *tags != "" {
		buildFlags = append(buildFlags, "-tags", *tags)
	}
	return runStandalone(buildFlags, rest)
}

// runStandalone loads the patterns through the go tool and reports.
// buildFlags (e.g. -tags) are forwarded to the loader so tag-guarded
// files are analyzed under the same build configuration they compile in;
// GOFLAGS reaches the underlying go list invocation natively.
func runStandalone(buildFlags, patterns []string) int {
	pkgs, err := analysis.Load("", buildFlags, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	bad := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "afllint: %s: type error: %v\n", pkg.ImportPath, terr)
			bad = true
		}
	}
	if bad {
		// A tree that does not type-check cannot be certified clean.
		return 2
	}
	diags, err := analysis.Check(pkgs, suite.Default())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of cmd/go's vet config file afllint reads.
type vetConfig struct {
	ImportPath                string
	Dir                       string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	VetxOnly                  bool
	SucceedOnTypecheckFailure bool
}

// runVet handles one per-package invocation from `go vet -vettool`.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "afllint: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "afllint: parsing vet config: %v\n", err)
		return 2
	}
	// The driver requires the facts file to exist even though afllint
	// exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "afllint: writing vetx output: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, pkg, info, err := loadVetPackage(fset, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "afllint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	diags, err := analysis.Check(
		[]*analysis.Package{{
			ImportPath: cfg.ImportPath,
			Dir:        cfg.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
		}},
		suite.Default(),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// loadVetPackage parses and type-checks the config's GoFiles against the
// export data the driver already built for every dependency.
func loadVetPackage(fset *token.FileSet, cfg *vetConfig) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	imp := analysis.ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}
