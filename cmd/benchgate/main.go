// Command benchgate parses `go test -bench -benchmem` output and fails
// when hot-path allocation counts regress against a committed baseline.
//
// Usage:
//
//	benchgate -in bench-hot.txt -baseline BENCH_8_allocs.json \
//	    -out BENCH_10_allocs.json \
//	    -gate 'BenchmarkHotBufferAdd=0.5,BenchmarkHotWireEdgeBatch=0.5'
//
// Every benchmark in the baseline must appear in the new output (a
// silently vanished benchmark would otherwise pass its own gate) and
// must satisfy new_allocs <= baseline_allocs * ratio. The ratio is 1.0 —
// no regression — unless -gate names a stricter one. Gating is on
// allocs/op only: allocation counts are deterministic where ns/op is
// machine noise. The parsed numbers are written to -out so CI can
// archive the snapshot next to the throughput metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark's parsed -benchmem line.
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "bench output to parse (go test -bench -benchmem)")
		out      = fs.String("out", "", "write the parsed results as JSON (optional)")
		baseline = fs.String("baseline", "", "baseline JSON to gate against (optional)")
		gates    = fs.String("gate", "", "comma-separated Name=ratio overrides (default ratio 1.0)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	results, err := Parse(string(data))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("%s: no benchmark lines found", *in)
	}

	if *out != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	if *baseline == "" {
		return nil
	}
	blob, err := os.ReadFile(*baseline)
	if err != nil {
		return err
	}
	base := map[string]BenchResult{}
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("%s: %w", *baseline, err)
	}
	ratios, err := parseGates(*gates)
	if err != nil {
		return err
	}
	failures := Gate(results, base, ratios)
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		if r, ok := results[name]; ok {
			fmt.Printf("%-32s allocs/op %6.0f -> %6.0f (gate ratio %.2f)\n",
				name, b.AllocsPerOp, r.AllocsPerOp, gateRatio(ratios, name))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchgate: %d benchmarks within the allocation gate\n", len(base))
	return nil
}

// Parse extracts every `BenchmarkName  N  ns/op  B/op  allocs/op` line.
// The -cpu suffix (BenchmarkFoo-8) is stripped so baselines compare
// across machines.
func Parse(out string) (map[string]BenchResult, error) {
	results := map[string]BenchResult{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 8 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res BenchResult
		var got int
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp, got = v, got+1
			case "B/op":
				res.BytesPerOp, got = v, got+1
			case "allocs/op":
				res.AllocsPerOp, got = v, got+1
			}
		}
		if got < 3 {
			return nil, fmt.Errorf("%s: missing -benchmem columns (got %d of 3)", name, got)
		}
		results[name] = res
	}
	return results, nil
}

// Gate checks every baseline benchmark against the new results and
// returns the human-readable failures (empty = pass). A benchmark
// missing from the new run is a failure: a gate that no longer measures
// anything must not pass silently.
func Gate(results, base map[string]BenchResult, ratios map[string]float64) []string {
	var failures []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base[name]
		r, ok := results[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from the new bench output", name))
			continue
		}
		ratio := gateRatio(ratios, name)
		if limit := b.AllocsPerOp * ratio; r.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op exceeds %.1f (baseline %.0f x ratio %.2f)",
				name, r.AllocsPerOp, limit, b.AllocsPerOp, ratio))
		}
	}
	return failures
}

func gateRatio(ratios map[string]float64, name string) float64 {
	if r, ok := ratios[name]; ok {
		return r
	}
	return 1.0
}

// parseGates parses `Name=0.5,Other=0.8`.
func parseGates(s string) (map[string]float64, error) {
	ratios := map[string]float64{}
	if s == "" {
		return ratios, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad -gate entry %q (want Name=ratio)", part)
		}
		r, err := strconv.ParseFloat(val, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad -gate ratio in %q", part)
		}
		ratios[name] = r
	}
	return ratios, nil
}
