package main

import (
	"strings"
	"testing"
)

const sampleOut = `goos: linux
goarch: amd64
BenchmarkHotFilter 	   22172	     51098 ns/op	   11288 B/op	     156 allocs/op
BenchmarkHotBufferAdd-8 	 4825612	       251.9 ns/op	      54 B/op	       1 allocs/op
BenchmarkHotWireEdgeBatch    	  327783	      3570 ns/op	    2216 B/op	       5 allocs/op
PASS
ok  	example.com/x	1.0s
`

func TestParse(t *testing.T) {
	results, err := Parse(sampleOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	// The -cpu suffix must be stripped.
	r, ok := results["BenchmarkHotBufferAdd"]
	if !ok {
		t.Fatal("BenchmarkHotBufferAdd-8 not normalized")
	}
	if r.AllocsPerOp != 1 || r.BytesPerOp != 54 || r.NsPerOp != 251.9 {
		t.Fatalf("bad result: %+v", r)
	}
	if r := results["BenchmarkHotFilter"]; r.AllocsPerOp != 156 {
		t.Fatalf("bad filter result: %+v", r)
	}
}

func TestParseRejectsMissingBenchmem(t *testing.T) {
	if _, err := Parse("BenchmarkX 	 10	 100 ns/op	 5 B/op	 3 MB/s\n"); err == nil {
		t.Fatal("line without allocs/op accepted")
	}
}

func TestGate(t *testing.T) {
	results, err := Parse(sampleOut)
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]BenchResult{
		"BenchmarkHotFilter":        {AllocsPerOp: 156},
		"BenchmarkHotBufferAdd":     {AllocsPerOp: 2},
		"BenchmarkHotWireEdgeBatch": {AllocsPerOp: 11},
	}
	gates := map[string]float64{"BenchmarkHotBufferAdd": 0.5, "BenchmarkHotWireEdgeBatch": 0.5}
	if failures := Gate(results, base, gates); len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}

	// A regression past the ratio fails.
	base["BenchmarkHotBufferAdd"] = BenchResult{AllocsPerOp: 1}
	if failures := Gate(results, base, gates); len(failures) != 1 ||
		!strings.Contains(failures[0], "BenchmarkHotBufferAdd") {
		t.Fatalf("regression not caught: %v", failures)
	}
	base["BenchmarkHotBufferAdd"] = BenchResult{AllocsPerOp: 2}

	// A benchmark that vanished from the new output fails.
	base["BenchmarkHotGone"] = BenchResult{AllocsPerOp: 3}
	failures := Gate(results, base, gates)
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("missing benchmark not caught: %v", failures)
	}
}

func TestParseGates(t *testing.T) {
	ratios, err := parseGates("A=0.5, B=0.8")
	if err != nil {
		t.Fatal(err)
	}
	if ratios["A"] != 0.5 || ratios["B"] != 0.8 {
		t.Fatalf("bad ratios: %v", ratios)
	}
	for _, bad := range []string{"A", "A=", "A=0", "A=-1", "A=x"} {
		if _, err := parseGates(bad); err == nil {
			t.Errorf("parseGates(%q) accepted", bad)
		}
	}
}
