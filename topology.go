package asyncfilter

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/obsv"
	"github.com/asyncfl/asyncfilter/internal/replica"
	"github.com/asyncfl/asyncfilter/internal/topology"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// This file is the public face of the two-tier topology (DESIGN.md §12):
// edge aggregators that admit clients, run a local AsyncFilter pass and
// forward filtered batches upstream, and a root that applies each batch
// exactly once, maintains the fleet-wide model and shard map, and
// orchestrates failover when an edge dies.

// EdgeServerConfig parameterizes an edge aggregator.
type EdgeServerConfig struct {
	// EdgeID identifies this edge to the root (unique per deployment,
	// >= 0).
	EdgeID int
	// RootAddr is the root server's listen address.
	RootAddr string
	// Server configures the edge's client-facing aggregation server —
	// the same knobs as a flat deployment, including overload resilience
	// and introspection (ObsvAddr also exposes the edge's degraded
	// state on /healthz). Rounds 0 selects effectively-unbounded: the
	// root decides when the deployment is done.
	Server ServerConfig
	// HeartbeatEvery keeps the root-side lease alive on an idle uplink
	// (0 selects 500ms). Set it well below the root's EdgeLeaseDuration.
	HeartbeatEvery time.Duration
	// MaxPendingBatches bounds the degraded-mode buffer: an edge cut off
	// from its root keeps serving clients and buffering batches, shedding
	// the oldest once full (0 selects 64).
	MaxPendingBatches int
	// RetryBaseDelay / RetryMaxDelay pace the uplink's exponential
	// backoff-plus-jitter reconnects (0 selects 50ms / 2s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// Seed drives the uplink's backoff jitter.
	Seed int64
	// UplinkCodec selects the uplink wire codec: "" or "gob" for the
	// legacy stream, "binary" for the length-prefixed frame envelope
	// (DESIGN.md §14). The root auto-detects per connection, so edges
	// can migrate one at a time.
	UplinkCodec string
}

// EdgeServerStats summarizes an edge's upstream behaviour; the
// client-facing side is covered by EdgeServer.Stats' ServerStats.
type EdgeServerStats struct {
	// BatchesCommitted counts local rounds committed; BatchesSent counts
	// transmissions including replays; BatchesAcked counts distinct
	// batches the root acknowledged; BatchesShed counts batches dropped
	// oldest-first from the full degraded-mode buffer.
	BatchesCommitted, BatchesSent, BatchesAcked, BatchesShed int
	// UplinkSessions counts established root sessions (the first one and
	// every reconnect); UplinkFailures counts failed dials and broken
	// sessions.
	UplinkSessions, UplinkFailures int
	// HandoffsMerged counts dead peers' filter snapshots merged into the
	// local filter; HandoffErrors counts handoffs that failed to decode
	// or merge.
	HandoffsMerged, HandoffErrors int
}

// EdgeServer is an edge aggregator: a full client-facing server plus an
// uplink forwarding every committed batch to the root.
type EdgeServer struct {
	inner   *topology.Edge
	metrics *Metrics
	obsvLis net.Listener
	obsvSrv *http.Server
}

// NewEdgeServer builds an edge aggregator. filter nil forwards unfiltered
// batches (the root's filter, if any, is then the only defense).
func NewEdgeServer(cfg EdgeServerConfig, filter *Filter) (*EdgeServer, error) {
	var innerFilter fl.Filter
	if filter != nil {
		innerFilter = filter.inner
	}
	var metrics *Metrics
	if cfg.Server.ObsvAddr != "" {
		metrics = NewMetrics(cfg.Server.TraceDepth)
	}
	serverCfg := cfg.Server
	if serverCfg.Rounds == 0 {
		// The root's round budget ends the deployment; the local server
		// must outlast it.
		serverCfg.Rounds = 1 << 30
	}
	uplinkCodec, err := transport.ParseCodec(cfg.UplinkCodec)
	if err != nil {
		return nil, err
	}
	hub := hubOf(metrics)
	edge, err := topology.NewEdge(topology.EdgeConfig{
		EdgeID:            cfg.EdgeID,
		RootAddr:          cfg.RootAddr,
		Server:            serverCfg.transportConfig(hub),
		HeartbeatEvery:    cfg.HeartbeatEvery,
		MaxPendingBatches: cfg.MaxPendingBatches,
		RetryBaseDelay:    cfg.RetryBaseDelay,
		RetryMaxDelay:     cfg.RetryMaxDelay,
		Seed:              cfg.Seed,
		UplinkCodec:       uplinkCodec,
		Obsv:              hub,
	}, innerFilter, nil)
	if err != nil {
		return nil, err
	}
	srv := &EdgeServer{inner: edge, metrics: metrics}
	if cfg.Server.ObsvAddr != "" {
		lis, err := net.Listen("tcp", cfg.Server.ObsvAddr)
		if err != nil {
			_ = edge.Close()
			return nil, fmt.Errorf("asyncfilter: edge observability listener: %w", err)
		}
		srv.obsvLis = lis
		// Edge health is partition-aware: a lost uplink reports degraded
		// (200 with status "degraded"), distinct from draining (503).
		srv.obsvSrv = &http.Server{Handler: obsv.Handler(metrics.hub, edge.Health)}
		go func() { _ = srv.obsvSrv.Serve(lis) }()
	}
	return srv, nil
}

// Serve accepts client connections on lis and advertises lis's address to
// the root for the shard map, until Close or the root ends the
// deployment.
func (e *EdgeServer) Serve(lis net.Listener) error { return e.inner.Serve(lis) }

// ListenAndServe listens on addr and serves.
func (e *EdgeServer) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return e.Serve(lis)
}

// ObsvAddr returns the bound introspection address, or "" when disabled.
func (e *EdgeServer) ObsvAddr() string {
	if e.obsvLis == nil {
		return ""
	}
	return e.obsvLis.Addr().String()
}

// Version returns the edge's local round counter.
func (e *EdgeServer) Version() int { return e.inner.Server().Version() }

// LinkUp reports whether the root uplink currently has a live session.
func (e *EdgeServer) LinkUp() bool { return e.inner.LinkUp() }

// RootDone reports whether the root has declared the deployment
// complete; the edge keeps serving clients until Close.
func (e *EdgeServer) RootDone() bool { return e.inner.RootDone() }

// Stats returns the upstream counters; ServerStats returns the
// client-facing ones.
func (e *EdgeServer) Stats() EdgeServerStats {
	st := e.inner.Stats()
	return EdgeServerStats{
		BatchesCommitted: st.BatchesCommitted,
		BatchesSent:      st.BatchesSent,
		BatchesAcked:     st.BatchesAcked,
		BatchesShed:      st.BatchesShed,
		UplinkSessions:   st.UplinkSessions,
		UplinkFailures:   st.UplinkFailures,
		HandoffsMerged:   st.HandoffsMerged,
		HandoffErrors:    st.HandoffErrors,
	}
}

// ServerStats returns the client-facing server's lifetime counters.
func (e *EdgeServer) ServerStats() ServerStats {
	return serverStatsOf(e.inner.Server().Stats())
}

// Close stops the edge: the uplink retires, the client listener closes
// and the introspection listener (if any) is torn down.
func (e *EdgeServer) Close() error {
	err := e.inner.Close()
	if e.obsvSrv != nil {
		_ = e.obsvSrv.Close()
	}
	return err
}

// RootServerConfig parameterizes the root of a two-tier deployment.
type RootServerConfig struct {
	// InitialParams seeds the fleet-wide global model (see
	// InitialParams).
	InitialParams []float64
	// Rounds is the number of applied edge batches before the deployment
	// completes.
	Rounds int
	// StalenessLimit discards deferred updates that have waited more than
	// this many root rounds (0 disables).
	StalenessLimit int
	// ReadTimeout bounds each blocking read from an edge connection
	// (0 disables). It must cover the edges' heartbeat interval.
	ReadTimeout time.Duration
	// WriteTimeout bounds each reply transmission (0 disables).
	WriteTimeout time.Duration
	// MaxMessageBytes caps a single decoded edge message (0 disables).
	MaxMessageBytes int64
	// EdgeLeaseDuration declares an edge dead after this much silence:
	// its clients re-home to the survivors and its filter state is handed
	// off to them (0 disables failover).
	EdgeLeaseDuration time.Duration
	// CheckpointPath makes the root durable: model, per-edge batch
	// watermarks, retained filter snapshots and queued handoffs are
	// snapshotted to this file, and a restarted root resumes from it
	// without double-counting replayed batches ("" disables).
	CheckpointPath string
	// CheckpointEvery writes a snapshot every N applied batches (<= 1
	// means every batch).
	CheckpointEvery int
	// ObsvAddr serves /metrics, /trace, /healthz and /debug/pprof on this
	// address ("" disables).
	ObsvAddr string
	// TraceDepth bounds the decision trace ring for ObsvAddr (<= 0
	// selects the default).
	TraceDepth int
	// Replication, when non-nil, makes this root one node of a replicated
	// primary/standby group (DESIGN.md §13). /healthz then reports the
	// node's role and fencing epoch.
	Replication *ReplicationConfig
}

// ReplicationConfig turns a root into one node of a primary/standby
// replication group: a primary streams every committed batch to attached
// standbys; a standby mirrors the primary and promotes itself — with a
// fenced epoch — once the primary's lease expires. With VotePeers set
// the group instead elects the new primary by majority vote, so a
// minority partition refuses to serve (DESIGN.md §13).
type ReplicationConfig struct {
	// NodeID identifies this node in the group (unique, >= 0).
	NodeID int
	// ReplListen is the replication channel's listen address. The primary
	// needs it to accept standbys; standbys bind it too so they can serve
	// the next standby generation after promotion ("" disables).
	ReplListen string
	// ReplListener, when non-nil, is a pre-bound replication listener
	// used instead of ReplListen. Quorum groups bind every member's
	// listener first so the full VotePeers address mesh is known before
	// any node is constructed.
	ReplListener net.Listener
	// Upstreams lists the primary's replication addresses to mirror from.
	// Empty means this node starts as the primary.
	Upstreams []string
	// Peers is the edge-facing address of every replica, relayed to edges
	// so they can find the promoted standby when the primary dies.
	Peers []string
	// VotePeers lists the replication addresses of every OTHER group
	// member (self excluded). Non-empty switches promotion from bare
	// lease expiry to quorum elections: an expired standby becomes a
	// candidate and only serves after a majority of the group grants its
	// epoch, so a minority partition can never produce a second primary.
	VotePeers []string
	// QuorumSize is the number of distinct vote grants (the candidate's
	// own included) required to promote. 0 selects a majority of the
	// group implied by VotePeers; values above the group size are
	// rejected as unwinnable.
	QuorumSize int
	// VotePath persists this node's vote ledger so a crashed-and-
	// restarted voter cannot grant the same epoch twice ("" keeps the
	// ledger in memory only — fine for tests, not for a durable group).
	VotePath string
	// Lease is how long a standby tolerates primary silence before
	// promoting itself (0 selects 2s); Heartbeat is the primary's idle
	// push interval (0 selects Lease/4).
	Lease, Heartbeat time.Duration
	// MaxMessageBytes caps a decoded replication message (0 disables).
	MaxMessageBytes int64
	// Seed drives the standby's reconnect jitter.
	Seed int64
	// Codec selects the replication-link wire codec: "" or "gob" for the
	// legacy stream, "binary" for the length-prefixed frame envelope
	// (DESIGN.md §14). The primary auto-detects per connection, so a
	// group can migrate one node at a time.
	Codec string
}

// RootServerStats reports the root's lifetime counters.
type RootServerStats struct {
	// Rounds is the number of edge batches applied to the global model.
	Rounds int
	// BatchesApplied, BatchesReplayed and BatchesLost describe the
	// idempotent batch protocol: replays are acknowledged without
	// re-application, forward id gaps (shed in degraded mode or dropped
	// by a stateless restart) are accounted as lost.
	BatchesApplied, BatchesReplayed, BatchesLost int
	// UpdatesReceived, Accepted, Deferred and Rejected count client
	// updates inside applied batches and the root filter's decisions.
	UpdatesReceived, Accepted, Deferred, Rejected int
	// EdgesConnected counts distinct edges; EdgeReconnects counts re-Hellos
	// from known edges; ExpiredEdgeLeases counts lease evictions.
	EdgesConnected, EdgeReconnects, ExpiredEdgeLeases int
	// HandoffsQueued/Delivered/Orphaned track dead edges' filter
	// snapshots on their way to successor edges.
	HandoffsQueued, HandoffsDelivered, HandoffsOrphaned int
	// Checkpoints counts snapshots successfully written.
	Checkpoints int
}

// RootServer is the top tier of a two-tier deployment — standalone, or
// one node of a replicated group when RootServerConfig.Replication is
// set.
type RootServer struct {
	inner   *topology.Root
	node    *replica.Node
	metrics *Metrics
	obsvLis net.Listener
	obsvSrv *http.Server
}

// NewRootServer builds a root server. filter nil trusts the edges'
// filtering entirely (pass-through); a non-nil filter re-screens every
// forwarded batch.
func NewRootServer(cfg RootServerConfig, filter *Filter) (*RootServer, error) {
	var innerFilter fl.Filter
	if filter != nil {
		innerFilter = filter.inner
	}
	var metrics *Metrics
	if cfg.ObsvAddr != "" {
		metrics = NewMetrics(cfg.TraceDepth)
	}
	root, err := topology.NewRoot(topology.RootConfig{
		InitialParams:     cfg.InitialParams,
		Rounds:            cfg.Rounds,
		StalenessLimit:    cfg.StalenessLimit,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
		MaxMessageBytes:   cfg.MaxMessageBytes,
		EdgeLeaseDuration: cfg.EdgeLeaseDuration,
		CheckpointPath:    cfg.CheckpointPath,
		CheckpointEvery:   cfg.CheckpointEvery,
		Obsv:              hubOf(metrics),
	}, innerFilter, nil)
	if err != nil {
		return nil, err
	}
	srv := &RootServer{inner: root, metrics: metrics}
	if rc := cfg.Replication; rc != nil {
		replCodec, err := transport.ParseCodec(rc.Codec)
		if err != nil {
			_ = root.Close()
			return nil, err
		}
		node, err := replica.NewNode(replica.Config{
			NodeID:          rc.NodeID,
			ReplListen:      rc.ReplListen,
			ReplListener:    rc.ReplListener,
			Upstreams:       rc.Upstreams,
			Peers:           rc.Peers,
			VotePeers:       rc.VotePeers,
			QuorumSize:      rc.QuorumSize,
			VotePath:        rc.VotePath,
			Lease:           rc.Lease,
			Heartbeat:       rc.Heartbeat,
			MaxMessageBytes: rc.MaxMessageBytes,
			Seed:            rc.Seed,
			Codec:           replCodec,
			Obsv:            hubOf(metrics),
		}, root)
		if err != nil {
			_ = root.Close()
			return nil, err
		}
		srv.node = node
	}
	if cfg.ObsvAddr != "" {
		lis, err := net.Listen("tcp", cfg.ObsvAddr)
		if err != nil {
			_ = srv.closeInner()
			return nil, fmt.Errorf("asyncfilter: root observability listener: %w", err)
		}
		srv.obsvLis = lis
		// A replicated node's health carries its role and fencing epoch.
		health := root.Health
		if srv.node != nil {
			health = srv.node.Health
		}
		srv.obsvSrv = &http.Server{Handler: obsv.Handler(metrics.hub, health)}
		go func() { _ = srv.obsvSrv.Serve(lis) }()
	}
	return srv, nil
}

// closeInner tears down the node (when replicated) or the bare root.
func (r *RootServer) closeInner() error {
	if r.node != nil {
		return r.node.Close()
	}
	return r.inner.Close()
}

// Serve accepts edge connections until the configured rounds complete or
// Close is called. A replicated standby holds lis — refusing edges so
// they rotate to the live primary — and serves on it after promotion.
func (r *RootServer) Serve(lis net.Listener) error {
	if r.node != nil {
		return r.node.Serve(lis)
	}
	return r.inner.Serve(lis)
}

// ListenAndServe listens on addr and serves.
func (r *RootServer) ListenAndServe(addr string) error {
	if r.node == nil {
		return r.inner.ListenAndServe(addr)
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("asyncfilter: listen: %w", err)
	}
	return r.Serve(lis)
}

// Role reports a replicated node's current role ("primary", "standby",
// "promoting" or "fenced"); empty for an unreplicated root.
func (r *RootServer) Role() string {
	if r.node == nil {
		return ""
	}
	return r.node.Role().String()
}

// Epoch reports the fencing epoch (0 for an unreplicated root or a
// first-generation primary).
func (r *RootServer) Epoch() uint64 {
	if r.node == nil {
		return 0
	}
	return r.node.Epoch()
}

// ReplAddr returns the bound replication listener address, or "" when
// replication is disabled or has no listener.
func (r *RootServer) ReplAddr() string {
	if r.node == nil {
		return ""
	}
	return r.node.ReplAddr()
}

// ObsvAddr returns the bound introspection address, or "" when disabled.
func (r *RootServer) ObsvAddr() string {
	if r.obsvLis == nil {
		return ""
	}
	return r.obsvLis.Addr().String()
}

// Done is closed when the configured rounds have completed.
func (r *RootServer) Done() <-chan struct{} { return r.inner.Done() }

// Version returns the number of edge batches applied so far.
func (r *RootServer) Version() int { return r.inner.Version() }

// FinalParams returns a copy of the fleet-wide global parameters.
func (r *RootServer) FinalParams() []float64 { return r.inner.FinalParams() }

// Restored reports whether this root resumed from an existing
// checkpoint.
func (r *RootServer) Restored() bool { return r.inner.Restored() }

// Stats returns the root's lifetime counters.
func (r *RootServer) Stats() RootServerStats {
	st := r.inner.Stats()
	return RootServerStats{
		Rounds:            st.Rounds,
		BatchesApplied:    st.BatchesApplied,
		BatchesReplayed:   st.BatchesReplayed,
		BatchesLost:       st.BatchesLost,
		UpdatesReceived:   st.UpdatesReceived,
		Accepted:          st.Accepted,
		Deferred:          st.Deferred,
		Rejected:          st.Rejected,
		EdgesConnected:    st.EdgesConnected,
		EdgeReconnects:    st.EdgeReconnects,
		ExpiredEdgeLeases: st.ExpiredEdgeLeases,
		HandoffsQueued:    st.HandoffsQueued,
		HandoffsDelivered: st.HandoffsDelivered,
		HandoffsOrphaned:  st.HandoffsOrphaned,
		Checkpoints:       st.Checkpoints,
	}
}

// Close stops the root without marking the deployment finished: edges
// treat a closed root as a partition and keep buffering, so a restarted
// root (same CheckpointPath) resumes the deployment.
func (r *RootServer) Close() error {
	err := r.closeInner()
	if r.obsvSrv != nil {
		_ = r.obsvSrv.Close()
	}
	return err
}
