package asyncfilter

import (
	"fmt"

	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/optim"
	"github.com/asyncfl/asyncfilter/internal/randx"

	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Data is a labelled dataset handle used by the distributed client API.
type Data struct {
	inner *dataset.Dataset
}

// Len returns the number of examples.
func (d *Data) Len() int { return d.inner.Len() }

// NumClasses returns the number of label classes.
func (d *Data) NumClasses() int { return d.inner.NumClasses }

// Dim returns the feature dimensionality.
func (d *Data) Dim() int { return d.inner.Dim }

// GenerateData builds the train and test splits of a dataset preset.
func GenerateData(preset string, seed int64) (train, test *Data, err error) {
	cfg, err := dataset.Preset(preset)
	if err != nil {
		return nil, nil, err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	tr, te, err := dataset.GenerateSynthetic(cfg)
	if err != nil {
		return nil, nil, err
	}
	return &Data{inner: tr}, &Data{inner: te}, nil
}

// PartitionDirichlet splits the data into n client shards of exactly size
// examples each, with label proportions drawn from a symmetric Dirichlet
// with concentration alpha (small alpha = highly non-IID). alpha <= 0
// selects IID shards.
func (d *Data) PartitionDirichlet(n, size int, alpha float64, seed int64) ([]*Data, error) {
	r := randx.New(seed)
	var parts []*dataset.Dataset
	var err error
	if alpha > 0 {
		parts, err = dataset.PartitionDirichletFixedSize(d.inner, n, size, alpha, r)
	} else {
		parts, err = dataset.PartitionIIDFixedSize(d.inner, n, size, r)
	}
	if err != nil {
		return nil, err
	}
	out := make([]*Data, len(parts))
	for i, p := range parts {
		out[i] = &Data{inner: p}
	}
	return out, nil
}

// ModelSpec selects and sizes a classifier architecture.
type ModelSpec struct {
	// Arch is "linear" or "mlp".
	Arch string
	// InputDim and NumClasses size the model.
	InputDim   int
	NumClasses int
	// Hidden lists MLP hidden-layer widths.
	Hidden []int
	// Seed drives weight initialization.
	Seed int64
}

func (s ModelSpec) internal() model.Config {
	return model.Config{
		Arch:       s.Arch,
		InputDim:   s.InputDim,
		NumClasses: s.NumClasses,
		Hidden:     s.Hidden,
		Seed:       s.Seed,
	}
}

// ModelSpecFor returns the architecture the evaluation assigns to a
// dataset preset (linear softmax for the MNIST-class presets, a small MLP
// for the CIFAR-class presets).
func ModelSpecFor(preset string) (ModelSpec, error) {
	data, err := dataset.Preset(preset)
	if err != nil {
		return ModelSpec{}, err
	}
	mc, _ := presetModelTrainer(preset, data)
	return ModelSpec{
		Arch:       mc.Arch,
		InputDim:   mc.InputDim,
		NumClasses: mc.NumClasses,
		Hidden:     mc.Hidden,
	}, nil
}

// TrainSpec configures a client's local optimization.
type TrainSpec struct {
	// Epochs is the number of local passes (default 2).
	Epochs int
	// BatchSize is the minibatch size (default 32).
	BatchSize int
	// Optimizer is "sgd" or "adam" (default "sgd").
	Optimizer string
	// LR is the learning rate (default 0.01).
	LR float64
	// Momentum applies to SGD (default 0.9).
	Momentum float64
}

func (s TrainSpec) internal() fl.TrainerConfig {
	cfg := fl.TrainerConfig{
		Epochs:    s.Epochs,
		BatchSize: s.BatchSize,
		Optim: optim.Config{
			Name:     s.Optimizer,
			LR:       s.LR,
			Momentum: s.Momentum,
		},
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 2
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optim.Name == "" {
		cfg.Optim.Name = optim.SGDName
	}
	if vecmath.IsZero(cfg.Optim.LR) {
		cfg.Optim.LR = 0.01
	}
	if cfg.Optim.Name == optim.SGDName && vecmath.IsZero(cfg.Optim.Momentum) {
		cfg.Optim.Momentum = 0.9
	}
	return cfg
}

// TrainSpecFor returns the local-training configuration the evaluation
// assigns to a dataset preset.
func TrainSpecFor(preset string) (TrainSpec, error) {
	data, err := dataset.Preset(preset)
	if err != nil {
		return TrainSpec{}, err
	}
	_, tc := presetModelTrainer(preset, data)
	return TrainSpec{
		Epochs:    tc.Epochs,
		BatchSize: tc.BatchSize,
		Optimizer: tc.Optim.Name,
		LR:        tc.Optim.LR,
		Momentum:  tc.Optim.Momentum,
	}, nil
}

// InitialParams returns a freshly initialized flat parameter vector for
// the model spec — the value a server should be seeded with.
func InitialParams(spec ModelSpec) ([]float64, error) {
	m, err := model.New(spec.internal())
	if err != nil {
		return nil, err
	}
	p := make([]float64, m.NumParams())
	m.Params(p)
	return p, nil
}

// EvaluateParams reports the test accuracy and mean loss of the given
// parameters on data.
func EvaluateParams(params []float64, spec ModelSpec, data *Data) (accuracy, loss float64, err error) {
	m, err := model.New(spec.internal())
	if err != nil {
		return 0, 0, err
	}
	if len(params) != m.NumParams() {
		return 0, 0, fmt.Errorf("asyncfilter: %d params for a %d-parameter model", len(params), m.NumParams())
	}
	m.SetParams(params)
	acc, l := model.Evaluate(m, data.inner)
	return acc, l, nil
}
