module github.com/asyncfl/asyncfilter

go 1.22
