package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's import path (scoping decisions key on it).
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset maps positions; shared across all packages of one Load.
	Fset *token.FileSet
	// Files holds the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds type-checker facts for the files.
	Info *types.Info
	// TypeErrors collects type-check problems. Analysis runs on a
	// best-effort basis when non-empty, but drivers should surface them:
	// a tree that does not type-check cannot be certified clean.
	TypeErrors []error
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool (from dir; empty means the current
// directory), parses each matched package's non-test files and type-checks
// them against compiler export data, which `go list -export` materializes
// in the build cache without network access. Test files are intentionally
// out of scope: the invariants the suite enforces are about production
// determinism and aliasing, and tests legitimately pin exact float values
// and ad-hoc RNGs.
//
// buildFlags are extra `go list` arguments (e.g. "-tags=integration")
// inserted before the patterns, so the loaded file set matches what `go
// vet`/`go build` would see under the same flags; GOFLAGS in the
// environment is honored natively by the go tool. Without this, a
// tag-guarded file silently escapes analysis in standalone mode while the
// vettool path (which receives the post-tag-resolution file list from
// cmd/go) still checks it.
func Load(dir string, buildFlags []string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, buildFlags...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var roots []*listedPackage
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			p := lp
			roots = append(roots, &p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var pkgs []*Package
	for _, lp := range roots {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses and type-checks one listed package.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Info:       NewInfo(),
	}
	conf := types.Config{
		Importer: remapImporter{imp: imp, m: lp.ImportMap},
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// NewInfo allocates a types.Info with every fact map the analyzers use.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// ExportImporter builds a gc-export-data importer resolving import
// paths to export files through resolve. The same importer instance is
// shared across all packages of one load so shared dependencies resolve
// to identical *types.Package values (interface-satisfaction checks
// across packages depend on that identity).
func ExportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := resolve(path)
		if !ok || f == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// remapImporter applies a per-package import map (vendoring, test
// variants) before delegating to the shared export importer.
type remapImporter struct {
	imp types.Importer
	m   map[string]string
}

func (r remapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := r.m[path]; ok {
		path = mapped
	}
	return r.imp.Import(path)
}
