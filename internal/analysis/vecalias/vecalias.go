// Package vecalias flags functions that retain or return caller-owned
// []float64 data without copying.
//
// Invariant (paper Eq. 5): the filter's moving averages MA(C_k) are
// computed from update vectors that clients hand to the server. If any
// ingesting package (internal/core, internal/fl, internal/transport —
// selected by the driver's scoping) stores a parameter slice instead of
// copying it, a malicious client can mutate the buffer after submission
// and silently corrupt the statistics the defense is built on.
//
// The analysis is an intraprocedural escape-style dataflow:
//
//   - Sources: function parameters whose type carries a []float64
//     anywhere (the slice itself, a struct field like fl.Update.Delta, a
//     pointer/slice/map of such). Taint flows through selectors, indexing,
//     composite literals, &-of-tainted, append of carrier elements, and
//     local variable assignments (including range over a tainted slice).
//   - Copy boundaries: call results are never tainted (append([]float64(nil),
//     d...), vecmath.Clone(d), fl.CloneUpdate(u) all launder), appending
//     plain float64 elements copies values, and dereferencing a pointer
//     (*u) is treated as a value-copy boundary.
//   - Sinks: an assignment whose left side roots in a receiver, pointer
//     parameter, or package-level variable (retention), a return of
//     an expression whose static type is []float64 (handing the caller an
//     alias of another caller's buffer), and an argument to an
//     ownership-taking function (see below) — you cannot give away
//     memory you do not own.
//
// Ownership transfer: a function whose doc comment carries the
//
//	//afl:owned
//
// directive declares that its callers transfer ownership of every
// vector-carrying argument to it (fl.Buffer.Add after the arena rewrite,
// fl.Arena.PutVec/PutUpdate). Inside such a function parameters are NOT
// taint sources — retaining them is the point. Symmetrically, passing a
// still-caller-owned (tainted) argument *to* an ownership-taking
// function is flagged: the passer must either own the memory itself
// (be //afl:owned, or have materialized the vector locally) or clone.
// Cross-package ownership-taking functions are listed in crossOwned,
// since export data does not carry doc comments. A directive that is not
// the doc comment of a function declaration is itself flagged.
//
// Local bookkeeping — maps and slices that never leave the function —
// is deliberately not flagged.
package vecalias

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// OwnedDirective marks a function taking ownership of vector-carrying
// arguments.
const OwnedDirective = "//afl:owned"

// crossOwned lists ownership-taking functions outside the package under
// analysis, keyed by types.Func.FullName (doc comments are invisible
// through export data).
var crossOwned = map[string]bool{
	"(*github.com/asyncfl/asyncfilter/internal/fl.Buffer).Add":       true,
	"(*github.com/asyncfl/asyncfilter/internal/fl.Buffer).Requeue":   true,
	"(*github.com/asyncfl/asyncfilter/internal/fl.Buffer).RequeueAt": true,
	"(*github.com/asyncfl/asyncfilter/internal/fl.Arena).PutVec":     true,
	"(*github.com/asyncfl/asyncfilter/internal/fl.Arena).PutUpdate":  true,
}

// Analyzer is the vecalias check.
var Analyzer = &analysis.Analyzer{
	Name: "vecalias",
	Doc:  "flags storing or returning caller-owned []float64 parameters without copying (clients could mutate filter state after submission)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	owned, accepted := collectOwned(pass)
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				if isOwnedDirective(cm.Text) && !accepted[cm.Pos()] {
					pass.Reportf(cm.Pos(), "misplaced %s: the directive must be in the doc comment of a function declaration", OwnedDirective)
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, owned)
		}
	}
	return nil
}

// collectOwned gathers the //afl:owned functions of this package and the
// comment positions legitimately hosting the directive.
func collectOwned(pass *analysis.Pass) (map[*types.Func]bool, map[token.Pos]bool) {
	owned := make(map[*types.Func]bool)
	accepted := make(map[token.Pos]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, cm := range fn.Doc.List {
				if !isOwnedDirective(cm.Text) {
					continue
				}
				accepted[cm.Pos()] = true
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					owned[obj] = true
				}
			}
		}
	}
	return owned, accepted
}

func isOwnedDirective(text string) bool {
	return text == OwnedDirective || strings.HasPrefix(text, OwnedDirective+" ")
}

// funcCheck carries per-function dataflow state.
type funcCheck struct {
	pass *analysis.Pass
	// tainted holds objects (parameters and locals) known to alias
	// caller-owned vector memory.
	tainted map[types.Object]bool
	// outer holds objects whose memory outlives the call: the receiver,
	// pointer parameters, and (checked separately) package-level vars.
	outer map[types.Object]bool
	// owned holds this package's //afl:owned functions, for the
	// give-away-what-you-don't-own call check.
	owned map[*types.Func]bool
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, owned map[*types.Func]bool) {
	fc := &funcCheck{
		pass:    pass,
		tainted: make(map[types.Object]bool),
		outer:   make(map[types.Object]bool),
		owned:   owned,
	}
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					fc.outer[obj] = true
				}
			}
		}
	}
	// An //afl:owned function owns its parameters by contract: they are
	// not taint sources, so retaining them is legal.
	fnObj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	selfOwned := fnObj != nil && owned[fnObj]
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			if !selfOwned && carries(obj.Type(), nil) {
				fc.tainted[obj] = true
			}
			if _, ok := obj.Type().Underlying().(*types.Pointer); ok {
				fc.outer[obj] = true
			}
		}
	}

	// Propagate taint through local assignments to a fixpoint, then
	// report sinks. Closures share the enclosing scope, so ast.Inspect
	// over the whole body (including FuncLits) is intentional.
	for {
		before := len(fc.tainted)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				fc.propagateAssign(n)
			case *ast.RangeStmt:
				fc.propagateRange(n)
			}
			return true
		})
		if len(fc.tainted) == before {
			break
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fc.checkStore(n)
		case *ast.ReturnStmt:
			fc.checkReturn(n)
		case *ast.CallExpr:
			fc.checkGiveAway(n)
		}
		return true
	})
}

// checkGiveAway reports passing a still-caller-owned vector argument to
// an ownership-taking (//afl:owned) function: the callee will retain the
// memory, but this function never owned it.
func (fc *funcCheck) checkGiveAway(call *ast.CallExpr) {
	callee := analysis.CalleeOf(fc.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if !fc.owned[callee] && !crossOwned[callee.FullName()] {
		return
	}
	for _, arg := range call.Args {
		if fc.taintedExpr(arg) && fc.carriesExpr(arg) {
			fc.pass.Reportf(arg.Pos(), "hands caller-owned vector memory to %s, which takes ownership (%s): clone first, or mark this function %s if its callers transfer ownership", callee.Name(), OwnedDirective, OwnedDirective)
		}
	}
}

// propagateAssign taints simple local variables assigned from tainted
// expressions.
func (fc *funcCheck) propagateAssign(assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		ident, ok := lhs.(*ast.Ident)
		if !ok || i >= len(assign.Rhs) {
			continue
		}
		obj := fc.lhsObject(ident)
		if obj == nil || fc.tainted[obj] {
			continue
		}
		if fc.taintedExpr(assign.Rhs[i]) {
			fc.tainted[obj] = true
		}
	}
}

// propagateRange taints the value variable of a range over a tainted
// carrier slice or map.
func (fc *funcCheck) propagateRange(rng *ast.RangeStmt) {
	if rng.Value == nil || !fc.taintedExpr(rng.X) {
		return
	}
	ident, ok := rng.Value.(*ast.Ident)
	if !ok {
		return
	}
	obj := fc.lhsObject(ident)
	if obj == nil {
		return
	}
	if carries(obj.Type(), nil) {
		fc.tainted[obj] = true
	}
}

// lhsObject resolves an assigned identifier to its object (Defs for :=,
// Uses for =).
func (fc *funcCheck) lhsObject(ident *ast.Ident) types.Object {
	if obj := fc.pass.TypesInfo.Defs[ident]; obj != nil {
		return obj
	}
	return fc.pass.TypesInfo.Uses[ident]
}

// checkStore reports assignments that retain tainted memory beyond the
// call: the left side roots in the receiver, a pointer parameter, or a
// package-level variable.
func (fc *funcCheck) checkStore(assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		if i >= len(assign.Rhs) {
			break
		}
		if !fc.escapingLHS(lhs) || !fc.taintedExpr(assign.Rhs[i]) {
			continue
		}
		fc.pass.Reportf(assign.Pos(), "stores caller-owned vector memory without copying: a client mutating the slice after submission corrupts retained state; clone on ingest (vecmath.Clone / fl.CloneUpdate)")
	}
}

// checkReturn reports returning an alias of a parameter's []float64.
func (fc *funcCheck) checkReturn(ret *ast.ReturnStmt) {
	for _, res := range ret.Results {
		if !fc.taintedExpr(res) {
			continue
		}
		tv, ok := fc.pass.TypesInfo.Types[res]
		if !ok || !isFloatSlice(tv.Type) {
			continue
		}
		fc.pass.Reportf(res.Pos(), "returns caller-owned []float64 without copying: callers will retain an alias of the submitter's buffer; return a clone")
	}
}

// escapingLHS reports whether an assignment target writes memory that
// outlives the function: selector/index/star chains rooted in the
// receiver or a pointer parameter, or any package-level variable.
func (fc *funcCheck) escapingLHS(lhs ast.Expr) bool {
	root := lhs
	for {
		switch e := ast.Unparen(root).(type) {
		case *ast.SelectorExpr:
			root = e.X
		case *ast.IndexExpr:
			root = e.X
		case *ast.StarExpr:
			root = e.X
		case *ast.Ident:
			obj := fc.pass.TypesInfo.Uses[e]
			if obj == nil {
				return false
			}
			if fc.outer[obj] {
				// Bare `x = rhs` rebinding of a pointer parameter does not
				// write through it; require at least one selector/index/star
				// step for parameters.
				if e == ast.Unparen(lhs) {
					return isPackageLevel(obj)
				}
				return true
			}
			return isPackageLevel(obj)
		default:
			return false
		}
	}
}

func isPackageLevel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// taintedExpr reports whether expr aliases caller-owned vector memory.
func (fc *funcCheck) taintedExpr(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := fc.pass.TypesInfo.Uses[e]
		return obj != nil && fc.tainted[obj]
	case *ast.SelectorExpr:
		// msg.Delta aliases iff msg is tainted and the field itself
		// carries vector memory (float64 fields do not).
		return fc.taintedExpr(e.X) && fc.carriesExpr(e)
	case *ast.IndexExpr:
		return fc.taintedExpr(e.X) && fc.carriesExpr(e)
	case *ast.SliceExpr:
		// d[1:] shares d's backing array.
		return fc.taintedExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return fc.taintedExpr(e.X)
		}
		return false
	case *ast.StarExpr:
		// *u copies the struct value; treated as a shallow-copy boundary.
		return false
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if fc.taintedExpr(elt) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// append keeps aliasing only when the appended *elements* carry
		// vector memory; appending float64s copies values, and every
		// other call result is treated as freshly owned (Clone et al).
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, builtin := fc.pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
				return false
			}
			for i, arg := range e.Args[1:] {
				if !fc.taintedExpr(arg) {
					continue
				}
				// With append(s, d...) the appended elements have d's
				// element type, not d's type.
				if e.Ellipsis.IsValid() && i == len(e.Args)-2 {
					tv, ok := fc.pass.TypesInfo.Types[arg]
					if ok && tv.Type != nil {
						if s, isSlice := tv.Type.Underlying().(*types.Slice); isSlice && carries(s.Elem(), nil) {
							return true
						}
					}
					continue
				}
				if fc.carriesExpr(arg) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// carriesExpr reports whether the expression's static type carries a
// []float64.
func (fc *funcCheck) carriesExpr(expr ast.Expr) bool {
	tv, ok := fc.pass.TypesInfo.Types[expr]
	return ok && tv.Type != nil && carries(tv.Type, nil)
}

// carries reports whether t contains a []float64 anywhere, following
// pointers, slices, arrays, maps, and struct fields (with a cycle guard
// over named types).
func carries(t types.Type, seen map[*types.Named]bool) bool {
	switch t := t.(type) {
	case *types.Named:
		if seen[t] {
			return false
		}
		if seen == nil {
			seen = make(map[*types.Named]bool)
		}
		seen[t] = true
		return carries(t.Underlying(), seen)
	case *types.Slice:
		return isFloat64(t.Elem()) || carries(t.Elem(), seen)
	case *types.Array:
		return carries(t.Elem(), seen)
	case *types.Pointer:
		return carries(t.Elem(), seen)
	case *types.Map:
		return carries(t.Key(), seen) || carries(t.Elem(), seen)
	case *types.Chan:
		return carries(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if carries(t.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	}
	return false
}

func isFloatSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isFloat64(s.Elem())
}

func isFloat64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Float64
}
