// Fixture for the vecalias analyzer: retaining or returning caller-owned
// []float64 memory is flagged; cloning, local bookkeeping, and
// elementwise copies are not.
package a

// Update mirrors fl.Update: a struct whose Delta field carries vector
// memory.
type Update struct {
	ClientID int
	Delta    []float64
}

// Buffer retains updates across calls.
type Buffer struct {
	updates []*Update
	last    []float64
}

var global []float64

// Add retains the caller's *Update (and through it the Delta slice).
func (b *Buffer) Add(u *Update) {
	b.updates = append(b.updates, u) // want `stores caller-owned vector memory`
}

// SetLast retains the raw slice.
func (b *Buffer) SetLast(d []float64) {
	b.last = d // want `stores caller-owned vector memory`
}

// KeepDelta retains a field of a parameter struct.
func (b *Buffer) KeepDelta(u *Update) {
	b.last = u.Delta // want `stores caller-owned vector memory`
}

// TwoStep launders through a local composite literal; still an alias.
func (b *Buffer) TwoStep(u *Update) {
	nu := &Update{ClientID: u.ClientID, Delta: u.Delta}
	b.updates = append(b.updates, nu) // want `stores caller-owned vector memory`
}

// ViaRange retains an element of a parameter slice.
func (b *Buffer) ViaRange(us []*Update) {
	for _, u := range us {
		b.updates = append(b.updates, u) // want `stores caller-owned vector memory`
	}
}

// SetGlobal retains into package state.
func SetGlobal(d []float64) {
	global = d // want `stores caller-owned vector memory`
}

// SubSlice shares the parameter's backing array.
func (b *Buffer) SubSlice(d []float64) {
	b.last = d[1:] // want `stores caller-owned vector memory`
}

// Identity hands the caller an alias of the submitter's buffer.
func Identity(d []float64) []float64 {
	return d // want `returns caller-owned \[\]float64`
}

// DeltaOf likewise.
func DeltaOf(u *Update) []float64 {
	return u.Delta // want `returns caller-owned \[\]float64`
}

// AddClone copies on ingest: append of float64 elements copies values.
func (b *Buffer) AddClone(d []float64) {
	b.last = append([]float64(nil), d...)
}

// AddCopied copies elementwise into fresh memory.
func (b *Buffer) AddCopied(d []float64) {
	fresh := make([]float64, len(d))
	copy(fresh, d)
	b.last = fresh
}

// CloneUpdate is the sanctioned laundering pattern: a value copy plus a
// fresh Delta.
func CloneUpdate(u *Update) *Update {
	c := *u
	c.Delta = append([]float64(nil), u.Delta...)
	return &c
}

// AddViaClone stores a call result, which is freshly owned.
func (b *Buffer) AddViaClone(u *Update) {
	b.updates = append(b.updates, CloneUpdate(u))
}

// LocalBookkeeping groups updates in maps that never leave the function.
func LocalBookkeeping(us []*Update) int {
	members := make(map[int][]*Update)
	for _, u := range us {
		members[u.ClientID] = append(members[u.ClientID], u)
	}
	return len(members)
}

// Elementwise writes parameter values through a caller-provided
// destination; float64 elements are copies, not aliases.
func Elementwise(dst, src []float64) {
	for i := range src {
		dst[i] = src[i]
	}
}

// SumOf only reads.
func SumOf(d []float64) float64 {
	var s float64
	for _, v := range d {
		s += v
	}
	return s
}

// Requeue documents a deliberate ownership transfer.
func (b *Buffer) Requeue(u *Update) {
	//lint:ignore vecalias fixture exercises the suppression mechanism
	b.updates = append(b.updates, u)
}

// OwnedAdd declares the ownership-transfer contract: its callers hand
// the update over, so retaining it is the point, not a leak.
//
//afl:owned
func (b *Buffer) OwnedAdd(u *Update) {
	b.updates = append(b.updates, u)
}

// OwnedPut likewise adopts a raw slice.
//
//afl:owned
func (b *Buffer) OwnedPut(d []float64) {
	b.last = d
}

// GiveAway passes memory it does not own to an ownership-taking
// function: the callee will retain it, but it still belongs to this
// function's caller.
func (b *Buffer) GiveAway(u *Update) {
	b.OwnedAdd(u) // want `hands caller-owned vector memory to OwnedAdd`
}

// GiveAwayField leaks through a field of a caller-owned struct.
func GiveAwayField(b *Buffer, u *Update) {
	b.OwnedPut(u.Delta) // want `hands caller-owned vector memory to OwnedPut`
}

// ForwardOwned owns its parameter, so forwarding it onward is legal.
//
//afl:owned
func (b *Buffer) ForwardOwned(u *Update) {
	b.OwnedAdd(u)
}

// GiveAwayClone launders before the handoff; the clone is freshly owned.
func (b *Buffer) GiveAwayClone(u *Update) {
	b.OwnedAdd(CloneUpdate(u))
}

// OwnedLocal hands over locally materialized memory: never tainted.
func (b *Buffer) OwnedLocal(n int) {
	b.OwnedPut(make([]float64, n))
}

//afl:owned // want `misplaced //afl:owned`
var ownedScratch []float64
