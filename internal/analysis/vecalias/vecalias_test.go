package vecalias_test

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis/analysistest"
	"github.com/asyncfl/asyncfilter/internal/analysis/vecalias"
)

func TestVecAlias(t *testing.T) {
	analysistest.Run(t, "a", "testdata/a", vecalias.Analyzer)
}
