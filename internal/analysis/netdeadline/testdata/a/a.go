package a

import (
	"encoding/gob"
	"net"
	"time"
)

type C struct {
	conn net.Conn
	dec  *gob.Decoder
	enc  *gob.Encoder
	rt   time.Duration
}

// armRead is the repo's arming-helper shape: config-guarded, so a zero
// timeout deliberately disables deadlines.
func (c *C) armRead() {
	if c.rt > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.rt))
	}
}

func goodDirect(c *C, buf []byte) {
	_ = c.conn.SetReadDeadline(time.Now().Add(time.Second))
	_, _ = c.conn.Read(buf)
}

func goodHelper(c *C) {
	c.armRead()
	var v int
	_ = c.dec.Decode(&v)
}

// transitive: viaHelper arms because it calls armRead.
func (c *C) viaHelper() {
	c.armRead()
}

func goodTransitive(c *C) {
	c.viaHelper()
	var v int
	_ = c.dec.Decode(&v)
}

func goodBoth(c *C, buf []byte) {
	_ = c.conn.SetDeadline(time.Now().Add(time.Second))
	_, _ = c.conn.Read(buf)
	_, _ = c.conn.Write(buf)
}

func goodLoop(c *C) {
	for {
		c.armRead()
		var v int
		if err := c.dec.Decode(&v); err != nil {
			return
		}
	}
}

func badRead(c *C, buf []byte) {
	_, _ = c.conn.Read(buf) // want `net.Conn Read without a read deadline`
}

func badWrite(c *C, buf []byte) {
	_, _ = c.conn.Write(buf) // want `net.Conn Write without a write deadline`
}

func badDecode(c *C) {
	var v int
	_ = c.dec.Decode(&v) // want `gob Decode without a read deadline`
}

func badEncode(c *C) {
	_ = c.enc.Encode(1) // want `gob Encode without a write deadline`
}

// Arm after use does not count.
func badOrder(c *C, buf []byte) {
	_, _ = c.conn.Read(buf) // want `net.Conn Read without a read deadline`
	_ = c.conn.SetReadDeadline(time.Now())
}

// A read arm does not license writes.
func badWrongKind(c *C, buf []byte) {
	_ = c.conn.SetReadDeadline(time.Now())
	_, _ = c.conn.Write(buf) // want `net.Conn Write without a write deadline`
}

// A function literal is its own body: it inherits no arm from its
// lexical context (it may run on another goroutine, long after).
func badLit(c *C) {
	_ = c.conn.SetWriteDeadline(time.Now())
	f := func() {
		_ = c.enc.Encode(1) // want `gob Encode without a write deadline`
	}
	f()
}

// Listener deadlines do not arm conn I/O.
func badListener(lis *net.TCPListener, c *C, buf []byte) {
	_ = lis.SetDeadline(time.Now())
	_, _ = c.conn.Read(buf) // want `net.Conn Read without a read deadline`
}

func ignored(c *C, buf []byte) {
	//lint:ignore netdeadline fixture: suppression-path coverage for netdeadline
	_, _ = c.conn.Read(buf)
}

// wrapper implements net.Conn itself (the embedded conn supplies the
// rest of the interface); its forwarding methods are exempt, because the
// caller's SetDeadline on the wrapper forwards to the wrapped conn.
type wrapper struct {
	net.Conn
}

func (w *wrapper) Read(p []byte) (int, error)  { return w.Conn.Read(p) }
func (w *wrapper) Write(p []byte) (int, error) { return w.Conn.Write(p) }

// Using a wrapper from the outside is still checked.
func badWrapperUse(w *wrapper, buf []byte) {
	_, _ = w.Read(buf) // want `net.Conn Read without a read deadline`
}
