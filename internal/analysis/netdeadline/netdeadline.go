// Package netdeadline flags conn I/O that is not preceded by a deadline.
//
// Invariant (transport/topology/replica, established in PR 1): every
// read or write on a net.Conn — including the gob Encode/Decode calls
// that drive one — is armed by SetDeadline/SetReadDeadline/
// SetWriteDeadline first, so a stalled or malicious peer can never park a
// server goroutine forever. The convention was only enforced by fault-
// injection tests until now; this analyzer makes it static.
//
// The check is per function body (function literals count as their own
// bodies, since they may run on another goroutine): each blocking
// operation must have, earlier in the same body, either a direct
// SetXDeadline call on a value implementing net.Conn or a call to a
// same-package function that (transitively) performs one — the
// armRead/armWrite helper pattern. "Earlier in the same body" is a
// source-position dominance approximation: it accepts the standard
// config-guarded arm (`if timeout > 0 { SetReadDeadline }`), whose
// zero-value branch deliberately disables deadlines, and rejects
// arm-after-use orderings. Blocking operations are Read/Write on
// net.Conn values and Encode/Decode on encoding/gob codecs; arming is
// not tracked per conn (one conn per session function is the repo's
// shape — a function mixing conns needs its arms before its first op of
// each kind anyway). Methods on a type that itself implements net.Conn
// are exempt: such a wrapper forwards I/O to the conn it wraps, and
// deadline policy belongs to the caller arming the wrapper.
package netdeadline

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// Analyzer is the netdeadline check.
var Analyzer = &analysis.Analyzer{
	Name: "netdeadline",
	Doc:  "flags net.Conn reads/writes and gob Encode/Decode not preceded by a deadline arm in the same function",
	Run:  run,
}

type checker struct {
	pass      *analysis.Pass
	connIface *types.Interface
	// armsRead/armsWrite classify same-package functions that
	// (transitively) arm a read/write deadline on some conn.
	armsRead  map[*types.Func]string
	armsWrite map[*types.Func]string
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		connIface: analysis.NamedInterface(pass.Pkg, "net", "Conn"),
	}
	decls := analysis.FuncDecls(pass)
	c.armsRead = analysis.Classify(pass, decls, func(_ *types.Func, decl *ast.FuncDecl) string {
		return c.directArm(decl.Body, "read")
	})
	c.armsWrite = analysis.Classify(pass, decls, func(_ *types.Func, decl *ast.FuncDecl) string {
		return c.directArm(decl.Body, "write")
	})

	for _, fn := range analysis.SortedFuncs(pass, decls) {
		if c.isConnMethod(fn) {
			// A method on a type that itself implements net.Conn IS the
			// conn: a wrapper (FaultConn) forwards Read/Write to the
			// wrapped conn, and deadline policy belongs to the caller —
			// its SetDeadline forwards through the same wrapper.
			continue
		}
		c.checkBody(decls[fn].Body)
	}
	// Function literals are their own bodies: a closure may outlive the
	// deadline state of its lexical context.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkBody(lit.Body)
			}
			return true
		})
	}
	return nil
}

// isConnMethod reports whether fn is a method on a type that itself
// implements net.Conn (a conn wrapper whose bodies are exempt).
func (c *checker) isConnMethod(fn *types.Func) bool {
	if c.connIface == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return analysis.ImplementsOrPtr(sig.Recv().Type(), c.connIface)
}

// directArm reports whether the body directly arms a deadline of the
// given kind on a net.Conn.
func (c *checker) directArm(body *ast.BlockStmt, kind string) string {
	reason := ""
	analysis.InspectBody(body, func(n ast.Node) {
		if reason != "" {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if k, name := c.armKind(call); k == kind || k == "both" {
			reason = name + " call"
		}
	})
	return reason
}

// armKind classifies a call as a deadline arm on a net.Conn: "read",
// "write", "both", or "".
func (c *checker) armKind(call *ast.CallExpr) (kind, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || c.connIface == nil {
		return "", ""
	}
	switch sel.Sel.Name {
	case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
	default:
		return "", ""
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok || !analysis.ImplementsOrPtr(tv.Type, c.connIface) {
		// Listener deadlines (net.Listener, the replica's deadliner
		// interface) do not arm conn I/O.
		return "", ""
	}
	switch sel.Sel.Name {
	case "SetDeadline":
		return "both", "SetDeadline"
	case "SetReadDeadline":
		return "read", "SetReadDeadline"
	}
	return "write", "SetWriteDeadline"
}

// blockingOp classifies a call as deadline-requiring conn I/O, returning
// the kind of deadline it needs and a description.
func (c *checker) blockingOp(call *ast.CallExpr) (kind, desc string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if (name == "Read" || name == "Write") && c.connIface != nil {
		if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil && types.Implements(tv.Type, c.connIface) {
			if name == "Read" {
				return "read", "net.Conn Read"
			}
			return "write", "net.Conn Write"
		}
	}
	callee := analysis.CalleeOf(c.pass.TypesInfo, call)
	if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "encoding/gob" {
		switch name {
		case "Decode", "DecodeValue":
			return "read", "gob " + name
		case "Encode", "EncodeValue":
			return "write", "gob " + name
		}
	}
	return "", ""
}

// checkBody verifies every blocking op in one body is preceded (in source
// position) by an arm of the required kind.
func (c *checker) checkBody(body *ast.BlockStmt) {
	var armRead, armWrite token.Pos // earliest arm position, or NoPos
	note := func(kind string, pos token.Pos) {
		if (kind == "read" || kind == "both") && (armRead == token.NoPos || pos < armRead) {
			armRead = pos
		}
		if (kind == "write" || kind == "both") && (armWrite == token.NoPos || pos < armWrite) {
			armWrite = pos
		}
	}
	// First sweep: collect arm positions (direct and via helpers).
	analysis.InspectBody(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if kind, _ := c.armKind(call); kind != "" {
			note(kind, call.Pos())
			return
		}
		callee := analysis.CalleeOf(c.pass.TypesInfo, call)
		if callee == nil || callee.Pkg() != c.pass.Pkg {
			return
		}
		if c.armsRead[callee] != "" {
			note("read", call.Pos())
		}
		if c.armsWrite[callee] != "" {
			note("write", call.Pos())
		}
	})
	// Second sweep: every blocking op needs an earlier arm of its kind.
	analysis.InspectBody(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		kind, desc := c.blockingOp(call)
		if kind == "" {
			return
		}
		arm := armRead
		deadline := "SetReadDeadline"
		if kind == "write" {
			arm = armWrite
			deadline = "SetWriteDeadline"
		}
		if arm == token.NoPos || arm >= call.Pos() {
			c.pass.Reportf(call.Pos(), "%s without a %s deadline: call %s (or an arming helper) on this conn earlier in the function", desc, kind, deadline)
		}
	})
}
