package netdeadline_test

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis/analysistest"
	"github.com/asyncfl/asyncfilter/internal/analysis/netdeadline"
)

func TestNetDeadline(t *testing.T) {
	analysistest.Run(t, "a", "testdata/a", netdeadline.Analyzer)
}
