package lockorder_test

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis/analysistest"
	"github.com/asyncfl/asyncfilter/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "a", "testdata/a", lockorder.Analyzer)
}
