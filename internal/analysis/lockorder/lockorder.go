// Package lockorder builds a lock-acquisition order graph for one
// package and flags order inversions (potential ABBA deadlocks) and
// re-acquisition of a lock already held (self-deadlock — sync.Mutex is
// not reentrant).
//
// Invariant (transport/topology/replica): every pair of mutexes is always
// acquired in the same order. The multi-process topology holds several
// locks per process — server state, session, buffer, replica node — and a
// single inverted pair deadlocks two goroutines forever with no test
// failure until the exact interleaving fires. lockio already keeps
// blocking I/O out of critical sections; lockorder extends that to static
// deadlock-freedom between the locks themselves.
//
// The walk is the shared analysis.FlowWalker dominance approximation:
// path-ordered with intersection merges, `defer mu.Unlock()` holds to
// function end, goroutine bodies and function literals get a fresh lock
// state. Lock identity is the receiver's named type plus the field name
// ("Server.mu"), so two instances of the same struct share a graph node —
// deliberately conservative: instance-distinct locks of one type (e.g.
// parent/child of the same struct) flagged here need a //lint:ignore with
// the proof. Calls into same-package functions propagate the callee's
// transitively acquired lock set, so helper-mediated inversions are
// caught; cross-package calls are invisible (each package is analyzed
// against its own graph, matching the per-package vettool protocol).
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "flags inconsistent mutex acquisition order (ABBA deadlocks) and re-acquisition of a held lock",
	Run:  run,
}

// edge records the first site where `to` was acquired while `from` was
// held.
type edge struct {
	pos token.Pos
	via string
}

type checker struct {
	pass     *analysis.Pass
	decls    map[*types.Func]*ast.FuncDecl
	acquires map[*types.Func]map[string]bool
	// edges[from][to] is the first "to acquired while from held" site.
	edges map[string]map[string]edge
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		decls:    analysis.FuncDecls(pass),
		acquires: make(map[*types.Func]map[string]bool),
		edges:    make(map[string]map[string]edge),
	}
	order := analysis.SortedFuncs(pass, c.decls)

	// Pass 1: the set of locks each function (transitively) acquires.
	for _, fn := range order {
		set := make(map[string]bool)
		analysis.InspectBody(c.decls[fn].Body, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				if lock, method, ok := c.mutexOp(call); ok && (method == "Lock" || method == "RLock") {
					set[lock] = true
				}
			}
		})
		c.acquires[fn] = set
	}
	for {
		changed := false
		for _, fn := range order {
			analysis.InspectBody(c.decls[fn].Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				callee := analysis.CalleeOf(pass.TypesInfo, call)
				if callee == nil || callee.Pkg() != pass.Pkg || callee == fn {
					return
				}
				for lock := range c.acquires[callee] {
					if !c.acquires[fn][lock] {
						c.acquires[fn][lock] = true
						changed = true
					}
				}
			})
		}
		if !changed {
			break
		}
	}

	// Pass 2: path-ordered walk recording order edges.
	for _, fn := range order {
		c.walk(c.decls[fn].Body)
	}

	// Pass 3: an edge whose reverse direction is (transitively) reachable
	// closes a cycle; report at the edge site.
	c.reportCycles()
	return nil
}

// walk runs the flow walker over one body, threading the held-lock set.
func (c *checker) walk(body *ast.BlockStmt) {
	w := &analysis.FlowWalker{
		Call: c.onCall,
		Defer: func(call *ast.CallExpr, st analysis.State) {
			// defer mu.Unlock() holds the lock to function end: leave the
			// state untouched. Deferred helper calls run after the walk's
			// scope and record nothing.
		},
	}
	w.WalkFunc(body)
}

func (c *checker) onCall(call *ast.CallExpr, held analysis.State) {
	if lock, method, ok := c.mutexOp(call); ok {
		switch method {
		case "Lock", "RLock":
			if held[lock] {
				c.pass.Reportf(call.Pos(), "lock %q acquired while already held (sync mutexes are not reentrant): release it first", lock)
				return
			}
			for h := range held {
				c.addEdge(h, lock, call.Pos(), "")
			}
			held[lock] = true
		case "Unlock", "RUnlock":
			delete(held, lock)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	callee := analysis.CalleeOf(c.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() != c.pass.Pkg {
		return
	}
	for _, lock := range sortedKeys(c.acquires[callee]) {
		if held[lock] {
			c.pass.Reportf(call.Pos(), "call to %s acquires %q while it is already held (possible self-deadlock)", callee.Name(), lock)
			continue
		}
		for h := range held {
			c.addEdge(h, lock, call.Pos(), callee.Name())
		}
	}
}

func (c *checker) addEdge(from, to string, pos token.Pos, via string) {
	m := c.edges[from]
	if m == nil {
		m = make(map[string]edge)
		c.edges[from] = m
	}
	if _, seen := m[to]; !seen {
		m[to] = edge{pos: pos, via: via}
	}
}

// reportCycles flags every edge that participates in a cycle of the
// acquisition graph: both sides of an inversion are reported, at the
// position each order was first established.
func (c *checker) reportCycles() {
	type flagged struct {
		pos      token.Pos
		from, to string
		via      string
	}
	var out []flagged
	for from, tos := range c.edges {
		for to, e := range tos {
			if c.reachable(to, from) {
				out = append(out, flagged{e.pos, from, to, e.via})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	for _, f := range out {
		detail := ""
		if f.via != "" {
			detail = " (via call to " + f.via + ")"
		}
		c.pass.Reportf(f.pos, "lock order cycle: %q acquired while %q is held%s, but the reverse order also occurs in this package: establish a single acquisition order", f.to, f.from, detail)
	}
}

// reachable reports whether `to` is reachable from `from` in the edge
// graph.
func (c *checker) reachable(from, to string) bool {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == to {
			return true
		}
		for next := range c.edges[cur] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return false
}

// mutexOp classifies a call as a Lock/Unlock-family method on a
// sync.Mutex or sync.RWMutex, returning the type-qualified lock name.
// RLock/RUnlock map to the same lock node as Lock/Unlock: a read lock
// still participates in ordering (it blocks behind a queued writer).
func (c *checker) mutexOp(call *ast.CallExpr) (lock, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	s, found := c.pass.TypesInfo.Selections[sel]
	if !found {
		return "", "", false
	}
	callee, _ := s.Obj().(*types.Func)
	if callee == nil {
		return "", "", false
	}
	if !isSyncMutexMethod(callee) {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return c.lockName(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// isSyncMutexMethod reports whether f is a method of sync.Mutex or
// sync.RWMutex.
func isSyncMutexMethod(f *types.Func) bool {
	if f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return false
	}
	recv := analysis.RecvTypeName(f)
	return recv == "Mutex" || recv == "RWMutex"
}

// lockName renders a stable, type-qualified identity for the mutex
// expression: "Server.mu" for s.mu, "Server.Mutex" for an embedded mutex
// on s, plain "mu" for a local or package-level variable.
func (c *checker) lockName(x ast.Expr) string {
	x = ast.Unparen(x)
	if sel, ok := x.(*ast.SelectorExpr); ok {
		if base := analysis.NamedTypeName(c.pass.TypesInfo, sel.X); base != "" && !isMutexTypeName(base) {
			return base + "." + sel.Sel.Name
		}
		return analysis.ExprText(x, "mutex")
	}
	if base := analysis.NamedTypeName(c.pass.TypesInfo, x); base != "" && !isMutexTypeName(base) {
		// Receiver with an embedded mutex: s.Lock().
		return base + ".Mutex"
	}
	return analysis.ExprText(x, "mutex")
}

func isMutexTypeName(name string) bool {
	return name == "Mutex" || name == "RWMutex" || strings.HasSuffix(name, "Mutex")
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
