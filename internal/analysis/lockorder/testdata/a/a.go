package a

import "sync"

// Inverted pair: ab takes A then B, ba takes B then A. Both sides of the
// cycle are reported, at the site each order is established.

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock order cycle`
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want `lock order cycle`
	a.mu.Unlock()
	b.mu.Unlock()
}

// Consistent order: E before F everywhere, including with a deferred
// unlock — no findings.

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

func ef1(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func ef2(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}

// Sequential (non-nested) acquisition records no order edge.
func sequential(e *E, f *F) {
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

// Re-acquiring a held mutex self-deadlocks immediately.
func recur(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want `acquired while already held`
	a.mu.Unlock()
	a.mu.Unlock()
}

// Inversion through a same-package helper: cd holds C and calls lockD
// (which acquires D), while dc takes D then C directly.

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

func lockD(d *D) {
	d.mu.Lock()
	d.mu.Unlock()
}

func cd(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want `lock order cycle`
	c.mu.Unlock()
}

func dc(c *C, d *D) {
	d.mu.Lock()
	c.mu.Lock() // want `lock order cycle`
	c.mu.Unlock()
	d.mu.Unlock()
}

// Calling a helper that re-acquires the caller's lock self-deadlocks.
func selfVia(c *C, d *D) {
	c.mu.Lock()
	lockC(c) // want `possible self-deadlock`
	c.mu.Unlock()
}

func lockC(c *C) {
	c.mu.Lock()
	c.mu.Unlock()
}

// An RWMutex read lock participates in ordering under the same node.

type G struct{ mu sync.RWMutex }
type H struct{ mu sync.Mutex }

func gh(g *G, h *H) {
	g.mu.RLock()
	h.mu.Lock() // want `lock order cycle`
	h.mu.Unlock()
	g.mu.RUnlock()
}

func hg(g *G, h *H) {
	h.mu.Lock()
	//lint:ignore lockorder fixture: suppression-path coverage for lockorder
	g.mu.RLock()
	g.mu.RUnlock()
	h.mu.Unlock()
}

// A branch that unlocks and returns does not leak the held state into
// the fall-through path.
func branchy(a *A, b *B, cond bool) {
	b.mu.Lock()
	if cond {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	// b is no longer held here; no edge B->A is recorded... and none
	// from a goroutine body either, which starts with a fresh state.
	go func() {
		a.mu.Lock()
		a.mu.Unlock()
	}()
}
