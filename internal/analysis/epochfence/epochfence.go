// Package epochfence makes PR 7's fencing discipline machine-checked:
// replica/root epoch state moves raise-only, through named helpers.
//
// Invariant (topology/replica): an unexported integer struct field named
// `epoch` is the fencing token that decides which primary generation is
// live. It may only be written inside a fencing helper — a function whose
// name mentions epoch or fence (PromoteEpoch, ObserveEpoch,
// observeEpochLocked, fenceCheck...) — and inside such a helper every
// write must be preceded by an ordered comparison against the same field
// (the raise-only guard), so no code path can ever move an epoch
// backwards and resurrect a fenced generation. Raw ordered or equality
// comparisons against the field outside the helpers are also flagged:
// scattered staleness decisions are how a second, subtly different
// fencing rule creeps in. Plain reads (stamping an epoch into a message)
// are unrestricted, and exported wire-struct fields (`Epoch`) are out of
// scope — they are data in flight, not the fencing state.
package epochfence

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// Analyzer is the epochfence check.
var Analyzer = &analysis.Analyzer{
	Name: "epochfence",
	Doc:  "flags writes to epoch fencing fields outside raise-only helpers, unguarded writes inside them, and raw epoch comparisons",
	Run:  run,
}

type checker struct {
	pass *analysis.Pass
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	decls := analysis.FuncDecls(pass)
	for _, fn := range analysis.SortedFuncs(pass, decls) {
		c.checkFunc(fn, decls[fn])
	}
	return nil
}

// isFenceHelper reports whether the function is one of the sanctioned
// fencing helpers, by name convention.
func isFenceHelper(fn *types.Func) bool {
	name := strings.ToLower(fn.Name())
	return strings.Contains(name, "epoch") || strings.Contains(name, "fence")
}

// epochField resolves an expression to the epoch fencing field it
// accesses, or nil. Only unexported integer struct fields named exactly
// "epoch" qualify; exported wire fields (Epoch) are not fencing state.
func (c *checker) epochField(expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "epoch" {
		return nil
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok {
		return nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || !field.IsField() || field.Exported() {
		return nil
	}
	if basic, ok := field.Type().Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	return field
}

func isOrderedCmp(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

func (c *checker) checkFunc(fn *types.Func, decl *ast.FuncDecl) {
	helper := isFenceHelper(fn)

	// Collect guard positions (ordered comparisons per field) and writes,
	// then judge. The whole body — nested literals included — belongs to
	// the declared function for helper purposes: a closure inside
	// PromoteEpoch is still fencing code.
	type write struct {
		pos   token.Pos
		field *types.Var
	}
	var writes []write
	guards := make(map[*types.Var][]token.Pos)

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if f := c.epochField(lhs); f != nil {
					writes = append(writes, write{lhs.Pos(), f})
				}
			}
		case *ast.IncDecStmt:
			if f := c.epochField(n.X); f != nil {
				writes = append(writes, write{n.X.Pos(), f})
			}
		case *ast.BinaryExpr:
			fl, fr := c.epochField(n.X), c.epochField(n.Y)
			if fl == nil && fr == nil {
				return true
			}
			if isOrderedCmp(n.Op) {
				for _, f := range []*types.Var{fl, fr} {
					if f != nil {
						guards[f] = append(guards[f], n.Pos())
					}
				}
				if !helper {
					c.pass.Reportf(n.Pos(), "raw epoch comparison outside a fencing helper: route the staleness decision through an epoch/fence helper so raise-only stays in one place")
				}
			} else if n.Op == token.EQL || n.Op == token.NEQ {
				if !helper {
					c.pass.Reportf(n.Pos(), "raw epoch comparison outside a fencing helper: route the staleness decision through an epoch/fence helper so raise-only stays in one place")
				}
			}
		}
		return true
	})

	for _, w := range writes {
		if !helper {
			c.pass.Reportf(w.pos, "epoch fencing field written outside a raise-only helper (PromoteEpoch/ObserveEpoch): route the write through one so the epoch can never move backwards")
			continue
		}
		guarded := false
		for _, g := range guards[w.field] {
			if g < w.pos {
				guarded = true
				break
			}
		}
		if !guarded {
			c.pass.Reportf(w.pos, "epoch write in fencing helper %s is not preceded by a raise-only comparison against the field: guard it (if next <= current { refuse })", fn.Name())
		}
	}
}
