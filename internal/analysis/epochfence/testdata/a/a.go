package a

type root struct {
	epoch uint64
	seq   uint64
}

// Wire structs carry exported Epoch fields: data in flight, not fencing
// state — out of scope.
type msg struct {
	Epoch uint64
}

// Sanctioned raise-only helper: guard before write.
func (r *root) ObserveEpoch(e uint64) {
	if e > r.epoch {
		r.epoch = e
	}
}

func (r *root) PromoteEpoch(e uint64) bool {
	if e <= r.epoch {
		return false
	}
	r.epoch = e
	return true
}

// Comparisons inside a fence-named helper are the sanctioned home for
// staleness decisions.
func (r *root) fenceCheck(e uint64) bool {
	return e <= r.epoch
}

// Plain reads are unrestricted.
func (r *root) stamp(m *msg) {
	m.Epoch = r.epoch
}

// Exported Epoch fields are writable anywhere.
func (r *root) forward(m *msg, e uint64) {
	m.Epoch = e
}

// Other fields are not fencing state.
func (r *root) advance() {
	r.seq++
}

func (r *root) apply(e uint64) {
	if e > r.epoch { // want `raw epoch comparison`
		r.epoch = e // want `outside a raise-only helper`
	}
}

func (r *root) reset() {
	r.epoch = 0 // want `outside a raise-only helper`
}

func (r *root) bump() {
	r.epoch++ // want `outside a raise-only helper`
}

func (r *root) isCurrent(e uint64) bool {
	return e == r.epoch // want `raw epoch comparison`
}

// A helper by name that skips the guard is still wrong: nothing stops it
// moving the epoch backwards.
func (r *root) forceEpoch(e uint64) {
	r.epoch = e // want `not preceded by a raise-only comparison`
}

func (r *root) adoptEpoch(e uint64) {
	//lint:ignore epochfence fixture: suppression-path coverage for epochfence
	r.epoch = e
}
