package epochfence_test

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis/analysistest"
	"github.com/asyncfl/asyncfilter/internal/analysis/epochfence"
)

func TestEpochFence(t *testing.T) {
	analysistest.Run(t, "a", "testdata/a", epochfence.Analyzer)
}
