package analysis

import (
	"fmt"
	"regexp"
	"sort"
)

// Scoped binds an analyzer to the import paths it applies to. An empty
// Include list means every package; Exclude wins over Include. Scoping
// lives in the driver — not the analyzers — so the same analyzer code runs
// unscoped over test fixtures.
type Scoped struct {
	Analyzer *Analyzer
	// Include restricts the analyzer to packages whose import path
	// matches any of these regexps (nil/empty = all packages).
	Include []*regexp.Regexp
	// Exclude removes matching packages even when included.
	Exclude []*regexp.Regexp
}

// applies reports whether the scoped analyzer covers importPath.
func (s Scoped) applies(importPath string) bool {
	for _, re := range s.Exclude {
		if re.MatchString(importPath) {
			return false
		}
	}
	if len(s.Include) == 0 {
		return true
	}
	for _, re := range s.Include {
		if re.MatchString(importPath) {
			return true
		}
	}
	return false
}

// Check runs every applicable analyzer over every package, filters
// diagnostics through the //lint:ignore suppressions, and returns the
// survivors ordered by file position then analyzer name.
func Check(pkgs []*Package, suite []Scoped) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := newSuppressor(pkg.Fset, pkg.Files)
		// A reason-less //lint:ignore is a finding in its own right: it
		// suppresses nothing and the author believes otherwise.
		diags = append(diags, sup.malformed...)
		for _, sc := range suite {
			if !sc.applies(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer:  sc.Analyzer,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report: func(d Diagnostic) {
					if !sup.suppressed(d.Analyzer, d.Pos) {
						diags = append(diags, d)
					}
				},
			}
			if err := sc.Analyzer.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", sc.Analyzer.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
