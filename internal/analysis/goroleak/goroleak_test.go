package goroleak_test

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis/analysistest"
	"github.com/asyncfl/asyncfilter/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, "a", "testdata/a", goroleak.Analyzer)
}
