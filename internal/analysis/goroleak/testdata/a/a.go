package a

import "sync"

type S struct {
	wg       sync.WaitGroup
	stop     chan struct{}
	done     chan struct{}
	events   chan int
	never    chan struct{}
	notified chan struct{}
}

func work() {}

// WaitGroup join through a wrapper literal.
func (s *S) goodWG() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

// Loop that selects on a field channel closed by Close.
func (s *S) goodLoop() {
	go s.loop()
}

func (s *S) loop() {
	for {
		select {
		case <-s.stop:
			return
		default:
			work()
		}
	}
}

// Done-channel close: the spawner joins by receiving s.done.
func (s *S) goodSignal() {
	go s.signal()
	<-s.done
}

func (s *S) signal() {
	defer close(s.done)
	work()
}

// Transitive: runner stops because it calls loop synchronously.
func (s *S) goodTransitive() {
	go s.runner()
}

func (s *S) runner() {
	work()
	s.loop()
}

// Channel parameter, matched against a closed argument at the spawn site.
func (s *S) goodParam() {
	stop := make(chan struct{})
	go watch(stop)
	close(stop)
}

func watch(stop chan struct{}) {
	<-stop
}

// Range over a package-closed channel.
func (s *S) goodRange() {
	go s.drain()
}

func (s *S) drain() {
	for range s.events {
		work()
	}
}

func (s *S) Close() {
	close(s.stop)
	close(s.events)
}

func (s *S) badBare() {
	go work() // want `no provable stop path`
}

func (s *S) badLoop() {
	go func() { // want `no provable stop path`
		for {
			work()
		}
	}()
}

// The argument channel is never closed anywhere in the package.
func (s *S) badParam() {
	go watch(s.never) // want `no provable stop path`
}

// A go statement nested inside another goroutine's body is still judged.
func (s *S) badNested() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		go work() // want `no provable stop path`
	}()
}

// A stop path owned by a *different* goroutine does not count.
func (s *S) badInnerSpawn() {
	go func() { // want `no provable stop path`
		go s.signal()
		for {
			work()
		}
	}()
}

func (s *S) ignored() {
	//lint:ignore goroleak fixture: suppression-path coverage for goroleak
	go work()
}
