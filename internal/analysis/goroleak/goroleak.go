// Package goroleak flags goroutines spawned with no provable stop path.
//
// Invariant (transport/topology/replica): every `go` statement in
// production code must reach a registered shutdown join — a
// sync.WaitGroup.Done, a close of a done channel the spawner (or Close)
// waits on, or a loop that receives from a channel this package closes.
// A fire-and-forget goroutine survives Close, keeps a conn or a filter
// alive past drain, and under churn accumulates into the exact slow leak
// the replicated topology cannot tolerate.
//
// A goroutine body proves a stop path when it (or a same-package function
// it calls synchronously) does any of:
//
//   - call (*sync.WaitGroup).Done — the spawner joins via Wait;
//   - close(ch) — a done-channel the spawner can select on;
//   - receive from / range over / select on a channel that this package
//     closes somewhere (fields and locals are matched by object identity;
//     channel-typed parameters are matched at the spawn site against the
//     actual argument).
//
// Anything else — including goroutines whose body is a cross-package call
// — is flagged; a goroutine that legitimately runs to completion on its
// own carries a //lint:ignore goroleak with the reason.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// Analyzer is the goroleak check.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "flags fire-and-forget goroutines with no WaitGroup.Done, done-channel close, or closed-channel receive",
	Run:  run,
}

// stopFacts is the per-function classification: proven to stop, or
// conditional on channel-typed parameters (stops if the spawn-site
// argument for one of these indices is a package-closed channel).
type stopFacts struct {
	yes    bool
	params map[int]bool
}

type checker struct {
	pass *analysis.Pass
	// closed holds every channel object (local, field, package var) that
	// close() is applied to anywhere in the package.
	closed map[types.Object]bool
	decls  map[*types.Func]*ast.FuncDecl
	facts  map[*types.Func]*stopFacts
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:   pass,
		closed: make(map[types.Object]bool),
		decls:  analysis.FuncDecls(pass),
		facts:  make(map[*types.Func]*stopFacts),
	}

	// Pass 1: package-wide close() sites, wherever they appear (goroutine
	// bodies and deferred closures included).
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj := c.closeArg(call); obj != nil {
					c.closed[obj] = true
				}
			}
			return true
		})
	}

	// Pass 2: direct stop facts per declared function, then a fixpoint
	// over same-package synchronous calls.
	order := analysis.SortedFuncs(pass, c.decls)
	for _, fn := range order {
		facts := &stopFacts{params: make(map[int]bool)}
		params := paramIndex(fn)
		c.scanBody(c.decls[fn].Body, params, facts)
		c.facts[fn] = facts
	}
	for {
		changed := false
		for _, fn := range order {
			facts := c.facts[fn]
			if facts.yes {
				continue
			}
			params := paramIndex(fn)
			c.inspectCalls(c.decls[fn].Body, func(call *ast.CallExpr) {
				if facts.yes {
					return
				}
				c.applyCallee(call, params, facts)
			})
			if facts.yes {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Pass 3: judge every spawn site.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !c.spawnStops(g.Call) {
				c.pass.Reportf(g.Pos(), "goroutine has no provable stop path (no WaitGroup.Done, done-channel close, or receive from a channel this package closes): join it to shutdown or justify with //lint:ignore goroleak <reason>")
			}
			return true
		})
	}
	return nil
}

// spawnStops classifies the spawned call: a function literal is scanned
// in place; a named same-package function uses its precomputed facts,
// resolving parameter-conditional facts against the actual arguments.
func (c *checker) spawnStops(call *ast.CallExpr) bool {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		facts := &stopFacts{params: make(map[int]bool)}
		c.scanBody(lit.Body, nil, facts)
		if facts.yes {
			return true
		}
		c.inspectCalls(lit.Body, func(inner *ast.CallExpr) {
			if !facts.yes {
				c.applyCallee(inner, nil, facts)
			}
		})
		return facts.yes
	}
	callee := analysis.CalleeOf(c.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() != c.pass.Pkg {
		return false
	}
	facts := c.facts[callee]
	if facts == nil {
		return false
	}
	if facts.yes {
		return true
	}
	for idx := range facts.params {
		if idx < len(call.Args) && c.closed[c.chanObject(call.Args[idx])] {
			return true
		}
	}
	return false
}

// applyCallee folds one same-package call's facts into the caller's:
// a proven callee proves the caller; a parameter-conditional callee
// proves the caller when the argument is a closed channel, or defers the
// condition to the caller's own parameter.
func (c *checker) applyCallee(call *ast.CallExpr, callerParams map[types.Object]int, facts *stopFacts) {
	callee := analysis.CalleeOf(c.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() != c.pass.Pkg {
		return
	}
	cf := c.facts[callee]
	if cf == nil {
		return
	}
	if cf.yes {
		facts.yes = true
		return
	}
	for idx := range cf.params {
		if idx >= len(call.Args) {
			continue
		}
		obj := c.chanObject(call.Args[idx])
		if obj == nil {
			continue
		}
		if c.closed[obj] {
			facts.yes = true
			return
		}
		if i, ok := callerParams[obj]; ok {
			facts.params[i] = true
		}
	}
}

// scanBody records the direct stop facts of one body: WaitGroup.Done,
// close(), and receives from closed channels or channel parameters.
// Nested function literals are included (a deferred closure that closes
// the done channel is the standard pattern); nested go statements are
// not — a stop path registered by a *different* goroutine does not stop
// this one.
func (c *checker) scanBody(body *ast.BlockStmt, params map[types.Object]int, facts *stopFacts) {
	recv := func(x ast.Expr) {
		obj := c.chanObject(x)
		if obj == nil {
			return
		}
		if c.closed[obj] {
			facts.yes = true
		} else if i, ok := params[obj]; ok {
			facts.params[i] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if isWaitGroupDone(c.pass.TypesInfo, n) || c.closeArg(n) != nil {
				facts.yes = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				recv(n.X)
			}
		case *ast.RangeStmt:
			if tv, ok := c.pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					recv(n.X)
				}
			}
		}
		return true
	})
}

// inspectCalls visits the body's synchronous calls (skipping go-statement
// payloads, keeping nested literals — they may run deferred).
func (c *checker) inspectCalls(body *ast.BlockStmt, visit func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

// closeArg returns the object of the channel being closed, or nil when
// the call is not a close builtin on a resolvable channel.
func (c *checker) closeArg(call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil
	}
	if _, builtin := c.pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
		return nil
	}
	return c.chanObject(call.Args[0])
}

// chanObject resolves a channel expression (ident or field selector) to
// its variable object.
func (c *checker) chanObject(expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return c.pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok {
			return sel.Obj()
		}
		return c.pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// isWaitGroupDone reports whether the call is (*sync.WaitGroup).Done.
func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	callee := analysis.CalleeOf(info, call)
	if callee == nil || callee.Name() != "Done" {
		return false
	}
	if callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return false
	}
	return analysis.RecvTypeName(callee) == "WaitGroup"
}

// paramIndex maps a function's parameter objects to their indices.
func paramIndex(fn *types.Func) map[types.Object]int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		out[sig.Params().At(i)] = i
	}
	return out
}
