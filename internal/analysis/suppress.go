package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive honored by every afllint analyzer:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the same line as the diagnostic or on the line
// immediately above it. The reason is mandatory — a directive without one
// suppresses nothing and is itself reported as a diagnostic (under the
// pseudo-analyzer name MalformedIgnore) — so every deliberate exception
// in the tree is greppable and self-justifying, and a forgotten reason
// cannot silently weaken the suite.
const ignorePrefix = "lint:ignore"

// MalformedIgnore is the pseudo-analyzer name malformed //lint:ignore
// directives are reported under. It is not registered in the suite and
// cannot itself be suppressed.
const MalformedIgnore = "lintignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	line      int
	analyzers []string
	reason    string
}

// parseDirectives extracts the lint:ignore directives of one file, keyed
// by the line the comment sits on. Directives missing the mandatory
// reason come back as malformed diagnostics instead.
func parseDirectives(fset *token.FileSet, file *ast.File) (out []directive, malformed []Diagnostic) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			name, reason, ok := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			// A "reason" that is itself a trailing comment marker is no
			// reason at all.
			if !ok || name == "" || reason == "" || strings.HasPrefix(reason, "//") {
				// No reason given: the directive suppresses nothing, and
				// silently honoring it would hide that the exception is
				// unjustified. Surface it.
				malformed = append(malformed, Diagnostic{
					Analyzer: MalformedIgnore,
					Pos:      fset.Position(c.Pos()),
					Message:  "//lint:ignore directive is missing its mandatory reason: write //lint:ignore <analyzer> <reason>",
				})
				continue
			}
			out = append(out, directive{
				line:      fset.Position(c.Pos()).Line,
				analyzers: strings.Split(name, ","),
				reason:    strings.TrimSpace(reason),
			})
		}
	}
	return out, malformed
}

// suppressor answers whether a diagnostic is covered by a directive.
type suppressor struct {
	// byFile maps filename -> line -> analyzers suppressed on that line.
	byFile map[string]map[int][]string
	// malformed holds the diagnostics for reason-less directives; the
	// driver reports them once per package.
	malformed []Diagnostic
}

// newSuppressor indexes the directives of all files.
func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	s := &suppressor{byFile: make(map[string]map[int][]string)}
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		dirs, malformed := parseDirectives(fset, f)
		s.malformed = append(s.malformed, malformed...)
		for _, d := range dirs {
			m := s.byFile[name]
			if m == nil {
				m = make(map[int][]string)
				s.byFile[name] = m
			}
			m[d.line] = append(m[d.line], d.analyzers...)
		}
	}
	return s
}

// suppressed reports whether a diagnostic by analyzer at pos is covered by
// a directive on the same line or the line directly above.
func (s *suppressor) suppressed(analyzer string, pos token.Position) bool {
	m := s.byFile[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range m[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}
