package typederr_test

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis/analysistest"
	"github.com/asyncfl/asyncfilter/internal/analysis/typederr"
)

func TestTypedErr(t *testing.T) {
	analysistest.Run(t, "a", "testdata/a", typederr.Analyzer)
}
