// Fixture for the typederr analyzer: ==/!= against exported error
// sentinels (local or imported) is flagged; errors.Is, non-error
// comparisons, and unexported sentinels are not.
package a

import (
	"errors"
	"io"
)

// ErrCorrupt mirrors the repo's checkpoint sentinel.
var ErrCorrupt = errors.New("corrupt")

// ErrVersion is a second exported sentinel.
var ErrVersion = errors.New("version")

// errInternal is unexported; packages own their internal comparisons.
var errInternal = errors.New("internal")

// NotAnError is exported but not an error; ==/!= on it is fine.
var NotAnError = "sentinel-shaped string"

func direct(err error) bool {
	if err == ErrCorrupt { // want `comparison == ErrCorrupt`
		return true
	}
	if ErrVersion != err { // want `comparison != ErrVersion`
		return true
	}
	return false
}

func imported(err error) bool {
	return err == io.EOF // want `comparison == EOF`
}

func switched(err error) int {
	switch err {
	case ErrCorrupt: // want `switch case ErrCorrupt`
		return 1
	case io.EOF: // want `switch case EOF`
		return 2
	case nil:
		return 0
	}
	return 3
}

func ok(err error, s string) bool {
	if errors.Is(err, ErrCorrupt) {
		return true
	}
	if err == errInternal { // unexported: allowed
		return true
	}
	if s == NotAnError { // not an error type: allowed
		return true
	}
	return err == nil
}

func suppressed(err error) bool {
	//lint:ignore typederr fixture exercises the suppression mechanism
	return err == ErrVersion
}
