// Package typederr flags sentinel-error comparisons that use == or !=
// instead of errors.Is.
//
// Invariant (PR 2, durable state): checkpoint.Load wraps its sentinels —
// `fmt.Errorf("%w: ...", ErrCorrupt)` — so callers that compare with ==
// silently never match and corrupt snapshots are mistaken for fresh
// deployments. The check covers any comparison whose operand is an
// exported package-level variable of type error (ErrCorrupt, ErrVersion,
// io.EOF, net.ErrClosed, ...), in == / != expressions and in
// switch-case clauses.
package typederr

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// Analyzer is the typederr check.
var Analyzer = &analysis.Analyzer{
	Name: "typederr",
	Doc:  "flags ==/!= comparisons against exported error sentinels; wrapped errors never match, use errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, operand := range []ast.Expr{n.X, n.Y} {
					if name, ok := sentinel(pass, operand); ok {
						pass.Reportf(n.Pos(), "comparison %s %s: sentinel errors may arrive wrapped; use errors.Is(err, %s)", n.Op, name, name)
						break
					}
				}
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSwitch flags `switch err { case ErrX: }`, which compares with ==.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range clause.List {
			if name, ok := sentinel(pass, expr); ok {
				pass.Reportf(expr.Pos(), "switch case %s compares with ==: sentinel errors may arrive wrapped; use errors.Is(err, %s)", name, name)
			}
		}
	}
}

// sentinel reports whether expr denotes an exported package-level
// variable of type error, returning its display name.
func sentinel(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	var ident *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		ident = e
	case *ast.SelectorExpr:
		ident = e.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[ident].(*types.Var)
	if !ok || !v.Exported() || v.Pkg() == nil {
		return "", false
	}
	// Package-level: the declaring scope is the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return "", false
	}
	return v.Name(), true
}
