// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary, sized for this repository's
// own lint suite (cmd/afllint). The container this project builds in has
// no module proxy access, so the suite cannot depend on x/tools; the
// subset implemented here — Analyzer, Pass, Diagnostic, a package loader
// backed by `go list -export`, and an analysistest-style fixture runner —
// is API-shaped like the original so the analyzers would port to the real
// framework without structural change.
//
// The analyzers themselves live in subpackages (rawrand, vecalias, lockio,
// typederr, floateq); the afllint subpackage assembles them into the
// path-scoped suite that cmd/afllint runs. Each analyzer encodes one
// invariant earlier PRs introduced by convention; DESIGN.md §9 maps
// analyzers to invariants.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name diagnostics are reported
// under (and which //lint:ignore directives reference), one-line docs, and
// the Run function applied to each package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions. It
	// must be a valid identifier.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run performs the check, reporting findings through the Pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions to file locations.
	Fset *token.FileSet
	// Files holds the package's parsed syntax trees (non-test files).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression and identifier facts.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message states the violation and the repair.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}
