// Package suite binds the afllint analyzers to the import paths they
// police. Scoping lives here — in the driver, not the analyzers — so the
// analyzer code itself stays unscoped and fixture-testable.
package suite

import (
	"regexp"

	"github.com/asyncfl/asyncfilter/internal/analysis"
	"github.com/asyncfl/asyncfilter/internal/analysis/epochfence"
	"github.com/asyncfl/asyncfilter/internal/analysis/floateq"
	"github.com/asyncfl/asyncfilter/internal/analysis/goroleak"
	"github.com/asyncfl/asyncfilter/internal/analysis/hotalloc"
	"github.com/asyncfl/asyncfilter/internal/analysis/lockio"
	"github.com/asyncfl/asyncfilter/internal/analysis/lockorder"
	"github.com/asyncfl/asyncfilter/internal/analysis/netdeadline"
	"github.com/asyncfl/asyncfilter/internal/analysis/rawrand"
	"github.com/asyncfl/asyncfilter/internal/analysis/typederr"
	"github.com/asyncfl/asyncfilter/internal/analysis/vecalias"
)

// concurrencyScope matches the packages that own goroutines, locks and
// network connections; the concurrency analyzers apply there.
var concurrencyScope = regexp.MustCompile(`/internal/(transport|topology|replica)$`)

// Default returns the repository's analyzer suite:
//
//   - rawrand everywhere except internal/randx (the one package allowed
//     to touch math/rand);
//   - vecalias in the packages that ingest client vectors (core, fl,
//     transport);
//   - lockio in internal/transport, the only package mixing locks with
//     connection I/O;
//   - lockorder, goroleak and netdeadline in the concurrency-bearing
//     packages (transport, topology, replica);
//   - epochfence wherever fenced epochs live (topology, replica) plus
//     transport, which carries them on the wire;
//   - typederr, floateq and hotalloc everywhere (hotalloc only fires
//     inside functions annotated //afl:hotpath, so a repo-wide scope
//     costs nothing on unannotated packages).
func Default() []analysis.Scoped {
	return []analysis.Scoped{
		{
			Analyzer: rawrand.Analyzer,
			Exclude:  []*regexp.Regexp{regexp.MustCompile(`/internal/randx$`)},
		},
		{
			Analyzer: vecalias.Analyzer,
			Include:  []*regexp.Regexp{regexp.MustCompile(`/internal/(core|fl|transport)$`)},
		},
		{
			Analyzer: lockio.Analyzer,
			Include:  []*regexp.Regexp{regexp.MustCompile(`/internal/transport$`)},
		},
		{
			Analyzer: lockorder.Analyzer,
			Include:  []*regexp.Regexp{concurrencyScope},
		},
		{
			Analyzer: goroleak.Analyzer,
			Include:  []*regexp.Regexp{concurrencyScope},
		},
		{
			Analyzer: netdeadline.Analyzer,
			Include:  []*regexp.Regexp{concurrencyScope},
		},
		{
			Analyzer: epochfence.Analyzer,
			Include:  []*regexp.Regexp{concurrencyScope},
		},
		{Analyzer: typederr.Analyzer},
		{Analyzer: floateq.Analyzer},
		{Analyzer: hotalloc.Analyzer},
	}
}

// Analyzers returns the unscoped analyzer list, for -list output and the
// smoke tests.
func Analyzers() []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, sc := range Default() {
		out = append(out, sc.Analyzer)
	}
	return out
}
