// Fixture for the rawrand analyzer: raw math/rand, crypto/rand and
// wall-clock seeding are flagged; using *rand.Rand values handed out by a
// seeded constructor is not.
package a

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// global source draws are process-global nondeterminism.
func globalDraws() int {
	rand.Seed(42)             // want `use of math/rand.Seed`
	x := rand.Intn(10)        // want `use of math/rand.Intn`
	y := rand.Float64()       // want `use of math/rand.Float64`
	_ = y
	return x
}

// private sources must come from randx, not ad-hoc construction.
func privateSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `use of math/rand.New` `use of math/rand.NewSource`
}

// cryptoDraws can never replay.
func cryptoDraws(buf []byte) {
	_, _ = crand.Read(buf) // want `use of crypto/rand.Read`
	_ = crand.Reader       // want `use of crypto/rand.Reader`
}

// wallClockSeed defeats reproducibility even when the constructor itself
// is legal.
func wallClockSeed(r *rand.Rand) {
	r.Seed(time.Now().UnixNano()) // want `wall-clock seed passed to Seed`
}

// ok: naming the type and drawing from a supplied generator is the
// sanctioned pattern.
func ok(r *rand.Rand) float64 {
	var s rand.Source
	_ = s
	return r.Float64() + float64(r.Intn(3))
}

// okSeeded derives a child seed from a parent generator, not the clock.
func okSeeded(r *rand.Rand, newGen func(int64) *rand.Rand) *rand.Rand {
	return newGen(r.Int63())
}

// suppressed: a justified exception is honored.
func suppressed() int {
	//lint:ignore rawrand fixture exercises the suppression mechanism
	return rand.Intn(7)
}

// unjustified: an ignore without a reason suppresses nothing, and is
// itself a diagnostic.
func unjustified() int {
	//lint:ignore rawrand // want `missing its mandatory reason`
	return rand.Intn(7) // want `use of math/rand.Intn`
}
