// Package rawrand flags randomness that bypasses internal/randx.
//
// Invariant (PR 2, checkpoint determinism): every random draw in the
// repository flows through a *rand.Rand constructed by internal/randx from
// an explicit seed. Byte-identical checkpoint replay — a restored
// AsyncFilter must produce the exact same rejections as the live one —
// breaks the moment any component reads the global math/rand source,
// builds its own generator, draws from crypto/rand, or seeds from the
// wall clock.
//
// Allowed: naming the types math/rand.Rand / math/rand.Source (randx hands
// out *rand.Rand values, so consumers import math/rand for the type) and
// calling methods on such a value. Flagged:
//
//   - package-level calls or variable uses of math/rand and math/rand/v2
//     (rand.Intn, rand.New, rand.NewSource, ... — the global source is
//     process-global nondeterminism, and private sources must come from
//     randx so snapshot/restore can capture them);
//   - any function or variable of crypto/rand (nondeterministic by
//     design, never replayable);
//   - wall-clock seeding: a time.Now()-derived value passed to a seed- or
//     constructor-shaped callee (Seed, New, NewSource, NewZipf, Split, ...).
//
// The internal/randx package itself is excluded by the driver's scoping.
package rawrand

import (
	"go/ast"
	"go/types"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// Analyzer is the rawrand check.
var Analyzer = &analysis.Analyzer{
	Name: "rawrand",
	Doc:  "flags math/rand, crypto/rand and time-based seeding outside internal/randx (breaks checkpoint replay determinism)",
	Run:  run,
}

// seedCallees are callee names that accept a seed; a time.Now()-derived
// argument to any of them is wall-clock seeding.
var seedCallees = map[string]bool{
	"Seed":       true,
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
	"Split":      true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.CallExpr:
				checkSeedCall(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSelector reports package-level uses of the banned rand packages.
func checkSelector(pass *analysis.Pass, sel *ast.SelectorExpr) {
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return
	}
	switch pkgName.Imported().Path() {
	case "math/rand", "math/rand/v2":
		// Types are fine (randx vends *rand.Rand); functions and package
		// variables are draws or sources outside randx's control.
		switch obj.(type) {
		case *types.Func, *types.Var:
			pass.Reportf(sel.Pos(), "use of %s.%s outside internal/randx: route randomness through randx so checkpoint replay stays deterministic",
				pkgName.Imported().Path(), sel.Sel.Name)
		}
	case "crypto/rand":
		pass.Reportf(sel.Pos(), "use of crypto/rand.%s: crypto randomness is never replayable; derive draws from a seeded internal/randx generator",
			sel.Sel.Name)
	}
}

// checkSeedCall reports time.Now()-derived arguments to seed-shaped calls.
func checkSeedCall(pass *analysis.Pass, call *ast.CallExpr) {
	name := calleeName(call)
	if !seedCallees[name] {
		return
	}
	for _, arg := range call.Args {
		if usesTimeNow(pass, arg) {
			pass.Reportf(arg.Pos(), "wall-clock seed passed to %s: time-based seeding makes runs unreproducible; take the seed from configuration", name)
		}
	}
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// usesTimeNow reports whether expr contains a call to time.Now.
func usesTimeNow(pass *analysis.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkg, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); ok && pkg.Imported().Path() == "time" {
			found = true
			return false
		}
		return true
	})
	return found
}
