package rawrand_test

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis/analysistest"
	"github.com/asyncfl/asyncfilter/internal/analysis/rawrand"
)

func TestRawRand(t *testing.T) {
	analysistest.Run(t, "a", "testdata/a", rawrand.Analyzer)
}
