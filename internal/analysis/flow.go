package analysis

import (
	"go/ast"
)

// This file holds the shared forward dataflow walk the path-sensitive
// analyzers (lockorder, netdeadline) are built on. It generalizes the
// statement-ordered lock-state walk lockio introduced: facts are an
// arbitrary string set threaded through straight-line code, branches fork
// a copy of the state and fall-throughs merge by intersection (a fact
// survives a join only when it holds on every incoming path), and
// terminating branches (return, panic-free break/continue/goto) drop out
// of the merge. The result is a dominance approximation: at any node, the
// facts present are established on every path from function entry.

// State is the set of facts established on the current path. Hooks mutate
// it in place to add or retract facts.
type State map[string]bool

// Clone copies the state for a forked path.
func (s State) Clone() State {
	out := make(State, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// replace overwrites s with src in place.
func (s State) replace(src State) {
	for k := range s {
		delete(s, k)
	}
	for k := range src {
		s[k] = true
	}
}

// intersectState keeps only facts present in both states.
func intersectState(a, b State) State {
	out := make(State)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// FlowWalker drives the walk. Hooks that are nil are skipped.
type FlowWalker struct {
	// Call observes every call expression in evaluation order with the
	// facts established at that point; it may mutate the state (acquire a
	// lock, arm a deadline).
	Call func(call *ast.CallExpr, st State)
	// Defer observes deferred calls. Deferred work runs at return, so the
	// default is to ignore it; lockorder uses it to keep `defer
	// mu.Unlock()` from retracting the held fact.
	Defer func(call *ast.CallExpr, st State)
	// Node observes channel operations (send statements, receive
	// expressions, ranges over channels) with the current facts.
	Node func(n ast.Node, st State)
	// FuncLit, when set, is called for each nested function literal
	// instead of the default (walking its body with a fresh empty state:
	// a literal may run on another goroutine or after the facts expired,
	// so it inherits nothing).
	FuncLit func(lit *ast.FuncLit)
}

// WalkFunc walks one function body from an empty state.
func (w *FlowWalker) WalkFunc(body *ast.BlockStmt) {
	w.walkStmts(body.List, State{})
}

// walkStmts walks a statement list in order, mutating st. It returns true
// when the list terminates (return/branch), in which case callers discard
// its state changes.
func (w *FlowWalker) walkStmts(stmts []ast.Stmt, st State) bool {
	for _, stmt := range stmts {
		if w.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (w *FlowWalker) walkStmt(stmt ast.Stmt, st State) (terminates bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		w.walkExpr(s.X, st)
	case *ast.DeferStmt:
		if w.Defer != nil {
			w.Defer(s.Call, st)
		}
		for _, arg := range s.Call.Args {
			w.walkExpr(arg, st)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.enterLit(lit)
		}
	case *ast.GoStmt:
		// The spawned body runs concurrently: it inherits no path facts
		// and establishes none for the spawner. Arguments evaluate now.
		for _, arg := range s.Call.Args {
			w.walkExpr(arg, st)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.enterLit(lit)
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if comm, ok := clause.(*ast.CommClause); ok {
				sub := st.Clone()
				if comm.Comm != nil {
					w.walkStmt(comm.Comm, sub)
				}
				w.walkStmts(comm.Body, sub)
			}
		}
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.walkExpr(s.Cond, st)
		thenSt := st.Clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		elseSt := st.Clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			st.replace(elseSt)
		case elseTerm:
			st.replace(thenSt)
		default:
			st.replace(intersectState(thenSt, elseSt))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, st)
		}
		bodySt := st.Clone()
		w.walkStmts(s.Body.List, bodySt)
		st.replace(intersectState(st, bodySt))
	case *ast.RangeStmt:
		if w.Node != nil {
			w.Node(s, st)
		}
		w.walkExpr(s.X, st)
		bodySt := st.Clone()
		w.walkStmts(s.Body.List, bodySt)
		st.replace(intersectState(st, bodySt))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, st)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				sub := st.Clone()
				w.walkStmts(cc.Body, sub)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				sub := st.Clone()
				w.walkStmts(cc.Body, sub)
			}
		}
	case *ast.SendStmt:
		if w.Node != nil {
			w.Node(s, st)
		}
		w.walkExpr(s.Value, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.walkExpr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			w.walkExpr(lhs, st)
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.walkExpr(res, st)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto end straight-line flow; treating them as
		// termination keeps guard patterns from leaking state.
		return true
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.walkExpr(v, st)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IncDecStmt, *ast.EmptyStmt:
	default:
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.walkExpr(e, st)
				return false
			}
			return true
		})
	}
	return false
}

// walkExpr visits an expression tree in evaluation order, invoking the
// Call and Node hooks. Nested function literals are handed to enterLit.
func (w *FlowWalker) walkExpr(expr ast.Expr, st State) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.enterLit(n)
			return false
		case *ast.CallExpr:
			if w.Call != nil {
				w.Call(n, st)
			}
		case *ast.UnaryExpr:
			if w.Node != nil {
				w.Node(n, st)
			}
		}
		return true
	})
}

func (w *FlowWalker) enterLit(lit *ast.FuncLit) {
	if w.FuncLit != nil {
		w.FuncLit(lit)
		return
	}
	w.walkStmts(lit.Body.List, State{})
}
