// Package analysistest runs an analyzer over a directory of fixture files
// and checks its diagnostics against `// want "regexp"` comments, the same
// contract as golang.org/x/tools/go/analysis/analysistest (re-implemented
// on the standard library because this build environment has no module
// proxy). Multiple want strings on one line expect multiple diagnostics;
// a line without a want comment expects none. //lint:ignore suppressions
// are applied before matching, so fixtures can also pin the suppression
// mechanism itself.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// exportCache memoizes stdlib import path -> export data file across all
// fixture runs in the test process (each lookup shells out to go list).
var exportCache sync.Map

// exportFile resolves one import path to compiler export data via
// `go list -export`, building it into the go cache if needed.
func exportFile(path string) (string, error) {
	if v, ok := exportCache.Load(path); ok {
		return v.(string), nil
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		return "", fmt.Errorf("analysistest: go list -export %s: %v", path, err)
	}
	f := strings.TrimSpace(string(out))
	if f == "" {
		return "", fmt.Errorf("analysistest: no export data for %q", path)
	}
	exportCache.Store(path, f)
	return f, nil
}

// Run type-checks the fixture package in dir under the import path
// pkgpath (analyzers that key decisions on the package path — e.g.
// floateq's vecmath allowance — are exercised by picking it), runs the
// analyzer, and matches diagnostics against want comments.
func Run(t *testing.T, pkgpath, dir string, a *analysis.Analyzer) {
	t.Helper()
	diags, fset, files := run(t, pkgpath, dir, a)
	checkWants(t, fset, files, diags)
}

// run loads the fixture and returns surviving (unsuppressed) diagnostics.
func run(t *testing.T, pkgpath, dir string, a *analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, []*ast.File) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}

	conf := types.Config{Importer: newTestImporter(fset)}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	diags, err := analysis.Check(
		[]*analysis.Package{{
			ImportPath: pkgpath,
			Dir:        dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		}},
		[]analysis.Scoped{{Analyzer: a}},
	)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return diags, fset, files
}

// testImporter resolves fixture imports (stdlib only) through one shared
// gc importer per fixture FileSet.
type testImporter struct {
	imp types.Importer
}

func newTestImporter(fset *token.FileSet) testImporter {
	return testImporter{imp: analysis.ExportImporter(fset, func(path string) (string, bool) {
		f, err := exportFile(path)
		if err != nil {
			return "", false
		}
		return f, true
	})}
}

func (ti testImporter) Import(path string) (*types.Package, error) {
	return ti.imp.Import(path)
}

// wantRe matches one quoted expectation in a want comment: either a
// double-quoted Go string or a backquoted raw string.
var wantRe = regexp.MustCompile("`[^`]*`" + `|"(?:[^"\\]|\\.)*"`)

// checkWants compares diagnostics against // want comments line by line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				var rest string
				if strings.HasPrefix(text, "want ") {
					rest = strings.TrimPrefix(text, "want ")
				} else if i := strings.LastIndex(c.Text, "// want "); i >= 0 {
					// Embedded marker: a comment that is itself the
					// diagnostic subject (a directive, a bare ignore) can
					// carry its expectation inline.
					rest = c.Text[i+len("// want "):]
				} else {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, q := range wantRe.FindAllString(rest, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", name, line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, line, pat, err)
					}
					k := key{name, line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := make(map[key][]bool)
	for k, res := range wants {
		matched[k] = make([]bool, len(res))
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		res := wants[k]
		found := false
		for i, re := range res {
			if !matched[k][i] && re.MatchString(d.Message) {
				matched[k][i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for k, res := range wants {
		for i, re := range res {
			if !matched[k][i] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}
