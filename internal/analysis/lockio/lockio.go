// Package lockio flags blocking operations reachable while a
// sync.Mutex or sync.RWMutex is held.
//
// Invariant (transport): a server that performs I/O under its state lock
// serializes every client behind the slowest peer's network, and a stalled
// conn write while holding s.mu deadlocks heartbeats, checkpointing and
// shutdown. Blocking operations are:
//
//   - reads/writes on values implementing net.Conn;
//   - encoding/gob Encode/Decode (they drive the underlying conn);
//   - sends, receives, and ranges on channels this package provably
//     creates unbuffered (make(chan T) with no or zero capacity);
//   - Filter invocations (the full filter pass is O(buffer · dim) and
//     must not run under the connection-facing lock);
//   - calls to same-package functions that transitively do any of the
//     above (the *Locked helper pattern).
//
// The walk is statement-ordered and path-aware: a branch that unlocks
// and returns does not clear the fall-through state, defer mu.Unlock()
// holds to function end, sync.Cond.Wait is exempt (it releases the
// mutex), select statements and go statements are not flagged, and
// function literals are analyzed separately with a fresh lock state.
package lockio

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// Analyzer is the lockio check.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc:  "flags blocking calls (conn I/O, gob, unbuffered channel ops, Filter) reachable while a sync mutex is held",
	Run:  run,
}

// checker carries package-wide facts.
type checker struct {
	pass *analysis.Pass
	// decls maps same-package functions to their bodies.
	decls map[*types.Func]*ast.FuncDecl
	// blocking maps a same-package function to a short reason it can
	// block, or "" when it cannot.
	blocking map[*types.Func]string
	// unbuffered holds channel variables and struct fields that are only
	// ever assigned make(chan T) with zero capacity.
	unbuffered map[types.Object]bool
	// disqualified holds channel objects with any other assignment
	// (buffered make, parameter aliasing) — bufferedness unknown.
	disqualified map[types.Object]bool
	// connIface is net.Conn when the package imports net.
	connIface *types.Interface
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:         pass,
		decls:        make(map[*types.Func]*ast.FuncDecl),
		blocking:     make(map[*types.Func]string),
		unbuffered:   make(map[types.Object]bool),
		disqualified: make(map[types.Object]bool),
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == "net" {
			if obj, ok := imp.Scope().Lookup("Conn").(*types.TypeName); ok {
				c.connIface, _ = obj.Type().Underlying().(*types.Interface)
			}
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				c.decls[obj] = fn
			}
		}
		c.collectChannels(file)
	}

	// Fixpoint: a function blocks if it contains a direct blocking op or
	// calls a same-package function that blocks.
	for {
		changed := false
		for obj, fn := range c.decls {
			if c.blocking[obj] != "" {
				continue
			}
			if reason := c.bodyBlocks(fn.Body); reason != "" {
				c.blocking[obj] = reason
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	for _, fn := range c.decls {
		c.walkStmts(fn.Body.List, map[string]bool{})
	}
	// Function literals get their own walk with no lock held.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.walkStmts(lit.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// collectChannels records channel variables and fields whose every
// assignment is an unbuffered make.
func (c *checker) collectChannels(file *ast.File) {
	record := func(target ast.Expr, value ast.Expr) {
		obj := c.chanObject(target)
		if obj == nil {
			return
		}
		switch kind := makeChanKind(c.pass, value); kind {
		case chanUnbuffered:
			c.unbuffered[obj] = true
		default:
			c.disqualified[obj] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					record(lhs, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					record(name, n.Values[i])
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					record(kv.Key, kv.Value)
				}
			}
		}
		return true
	})
}

type chanKind int

const (
	chanOther chanKind = iota
	chanUnbuffered
)

// makeChanKind classifies an assigned value: unbuffered make, or
// anything else.
func makeChanKind(pass *analysis.Pass, expr ast.Expr) chanKind {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return chanOther
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return chanOther
	}
	if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); !builtin {
		return chanOther
	}
	if len(call.Args) == 0 {
		return chanOther
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return chanOther
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return chanOther
	}
	if len(call.Args) == 1 {
		return chanUnbuffered
	}
	if cap, ok := pass.TypesInfo.Types[call.Args[1]]; ok && cap.Value != nil && cap.Value.String() == "0" {
		return chanUnbuffered
	}
	return chanOther
}

// chanObject resolves a channel expression (ident, s.done selector, or a
// composite-literal field key) to its variable object.
func (c *checker) chanObject(expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return c.pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[e]; ok {
			return sel.Obj()
		}
		return c.pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// provablyUnbuffered reports whether every assignment seen for the
// channel expression's object is an unbuffered make.
func (c *checker) provablyUnbuffered(expr ast.Expr) bool {
	obj := c.chanObject(expr)
	return obj != nil && c.unbuffered[obj] && !c.disqualified[obj]
}

// --- direct blocking detection -------------------------------------------

// blockingCall classifies a call expression, returning a non-empty
// reason if it can block. transitive controls whether same-package
// callees marked blocking count.
func (c *checker) blockingCall(call *ast.CallExpr, transitive bool) string {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	var callee *types.Func
	if isSel {
		if s, ok := c.pass.TypesInfo.Selections[sel]; ok {
			callee, _ = s.Obj().(*types.Func)
		} else if f, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			callee = f
		}
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		callee, _ = c.pass.TypesInfo.Uses[id].(*types.Func)
	}

	if isSel && callee != nil {
		// sync.Cond.Wait releases the mutex while parked: sanctioned.
		if isSyncMethod(callee, "Cond", "Wait") {
			return ""
		}
		name := sel.Sel.Name
		// Conn I/O: a read or write on anything implementing net.Conn.
		if (name == "Read" || name == "Write") && c.connIface != nil {
			if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil && types.Implements(tv.Type, c.connIface) {
				return fmt.Sprintf("net.Conn %s on %q", name, exprText(sel.X))
			}
		}
		// gob drives the underlying reader/writer.
		if pkgOf(callee) == "encoding/gob" {
			switch name {
			case "Encode", "Decode", "EncodeValue", "DecodeValue":
				return "gob " + name
			}
		}
		// The filter pass is O(buffer · dim).
		if name == "Filter" {
			return fmt.Sprintf("Filter invocation on %q", exprText(sel.X))
		}
	}

	if transitive && callee != nil && callee.Pkg() == c.pass.Pkg {
		if reason := c.blocking[callee]; reason != "" {
			return fmt.Sprintf("call to %s (%s)", callee.Name(), reason)
		}
	}
	return ""
}

// blockingNode classifies a non-call node: channel operations on
// provably unbuffered channels.
func (c *checker) blockingNode(n ast.Node) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		if c.provablyUnbuffered(n.Chan) {
			return fmt.Sprintf("send on unbuffered channel %q", exprText(n.Chan))
		}
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && c.provablyUnbuffered(n.X) {
			return fmt.Sprintf("receive on unbuffered channel %q", exprText(n.X))
		}
	case *ast.RangeStmt:
		if tv, ok := c.pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && c.provablyUnbuffered(n.X) {
				return fmt.Sprintf("range over unbuffered channel %q", exprText(n.X))
			}
		}
	}
	return ""
}

// bodyBlocks scans a function body for any direct blocking operation,
// or a call to an already-known-blocking same-package function. Select
// clauses, go statements, and nested function literals do not make the
// enclosing function blocking.
func (c *checker) bodyBlocks(body *ast.BlockStmt) string {
	reason := ""
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.SelectStmt, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if r := c.blockingCall(n, true); r != "" {
				reason = r
				return false
			}
		default:
			if r := c.blockingNode(n); r != "" {
				reason = r
				return false
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return reason
}

// --- lock-state walk ------------------------------------------------------

// mutexOp classifies a call as a Lock/Unlock-family method on a sync
// mutex, returning the lock's display text.
func (c *checker) mutexOp(call *ast.CallExpr) (lock string, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	var callee *types.Func
	if s, found := c.pass.TypesInfo.Selections[sel]; found {
		callee, _ = s.Obj().(*types.Func)
	}
	if callee == nil {
		return "", "", false
	}
	if !isSyncMethod(callee, "Mutex", sel.Sel.Name) && !isSyncMethod(callee, "RWMutex", sel.Sel.Name) {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return exprText(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// isSyncMethod reports whether f is sync.<recv>.<name>.
func isSyncMethod(f *types.Func, recv, name string) bool {
	if f.Name() != name || pkgOf(f) != "sync" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == recv
}

func pkgOf(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// walkStmts walks a statement list in order, mutating held (lock text →
// held) and reporting blocking operations encountered while any lock is
// held. It returns true if the list terminates (return/panic), in which
// case callers discard its lock-state changes.
func (c *checker) walkStmts(stmts []ast.Stmt, held map[string]bool) bool {
	for _, stmt := range stmts {
		if c.walkStmt(stmt, held) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(stmt ast.Stmt, held map[string]bool) (terminates bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if lock, method, ok := c.mutexOp(call); ok {
				switch method {
				case "Lock", "RLock":
					held[lock] = true
				case "Unlock", "RUnlock":
					delete(held, lock)
				}
				return false
			}
		}
		c.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if lock, method, ok := c.mutexOp(s.Call); ok {
			_ = lock
			_ = method
			// defer mu.Unlock(): the lock stays held to function end;
			// leave `held` as is. Deferred Lock would be pathological.
			return false
		}
		// Deferred calls run at return, outside this walk's scope.
	case *ast.GoStmt:
		// Spawning does not block; the goroutine body is walked
		// separately with a fresh lock state.
	case *ast.SelectStmt:
		// Select blocks by design until a case is ready; flagging every
		// select would drown real findings. Walk clause bodies only.
		for _, clause := range s.Body.List {
			if comm, ok := clause.(*ast.CommClause); ok {
				sub := copyHeld(held)
				c.walkStmts(comm.Body, sub)
			}
		}
	case *ast.BlockStmt:
		return c.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		thenHeld := copyHeld(held)
		thenTerm := c.walkStmts(s.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(s.Else, elseHeld)
		}
		// Merge fall-through states; a terminating branch contributes
		// nothing. Both terminating → the statement terminates.
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			replaceHeld(held, elseHeld)
		case elseTerm:
			replaceHeld(held, thenHeld)
		default:
			replaceHeld(held, intersectHeld(thenHeld, elseHeld))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		bodyHeld := copyHeld(held)
		c.walkStmts(s.Body.List, bodyHeld)
		replaceHeld(held, intersectHeld(held, bodyHeld))
	case *ast.RangeStmt:
		if r := c.blockingNode(s); r != "" {
			c.reportHeld(s.Pos(), r, held)
		}
		c.checkExpr(s.X, held)
		bodyHeld := copyHeld(held)
		c.walkStmts(s.Body.List, bodyHeld)
		replaceHeld(held, intersectHeld(held, bodyHeld))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				c.walkStmts(cc.Body, sub)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				c.walkStmts(cc.Body, sub)
			}
		}
	case *ast.SendStmt:
		if r := c.blockingNode(s); r != "" {
			c.reportHeld(s.Pos(), r, held)
		}
		c.checkExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkExpr(rhs, held)
		}
		for _, lhs := range s.Lhs {
			c.checkExpr(lhs, held)
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			c.checkExpr(res, held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto end straight-line flow; treat like
		// termination so guard patterns don't leak state.
		return true
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, held)
	case *ast.IncDecStmt, *ast.EmptyStmt:
	default:
		// Conservative default: scan any other statement's expressions.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.checkExpr(e, held)
				return false
			}
			return true
		})
	}
	return false
}

// checkExpr reports blocking calls and channel receives inside an
// expression evaluated while locks are held. Nested function literals
// are skipped (walked separately).
func (c *checker) checkExpr(expr ast.Expr, held map[string]bool) {
	if len(held) == 0 || expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if r := c.blockingCall(n, true); r != "" {
				c.reportHeld(n.Pos(), r, held)
			}
		case *ast.UnaryExpr:
			if r := c.blockingNode(n); r != "" {
				c.reportHeld(n.Pos(), r, held)
			}
		}
		return true
	})
}

func (c *checker) reportHeld(pos token.Pos, reason string, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	lock := ""
	for l := range held {
		if lock == "" || l < lock {
			lock = l
		}
	}
	c.pass.Reportf(pos, "%s while %q is held: move blocking work outside the critical section", reason, lock)
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

func replaceHeld(dst, src map[string]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}

func intersectHeld(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// exprText renders simple ident/selector chains for messages.
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprText(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return "mutex"
}
