// Fixture for the lockio analyzer: conn I/O, gob, unbuffered channel
// ops, and Filter calls while a mutex is held are flagged — including
// through same-package helper calls. Unlock-before-I/O, guard-and-return
// branches, defers, Cond.Wait, selects, and goroutines are not.
package a

import (
	"encoding/gob"
	"net"
	"sync"
)

type filter struct{}

func (filter) Filter(xs []float64) []float64 { return xs }

type server struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	conn   net.Conn
	enc    *gob.Encoder
	dec    *gob.Decoder
	f      filter
	done   chan struct{}
	reply  chan int
	events chan int
	state  int
}

func newServer() *server {
	return &server{
		done:   make(chan struct{}),
		reply:  make(chan int, 8),
		events: make(chan int),
	}
}

func (s *server) connUnderLock(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Read(buf)  // want `net.Conn Read on "s.conn" while "s.mu" is held`
	s.conn.Write(buf) // want `net.Conn Write on "s.conn" while "s.mu" is held`
}

func (s *server) gobUnderLock(v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.enc.Encode(v); err != nil { // want `gob Encode while "s.mu" is held`
		return err
	}
	return s.dec.Decode(v) // want `gob Decode while "s.mu" is held`
}

func (s *server) filterUnderRLock(xs []float64) []float64 {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.f.Filter(xs) // want `Filter invocation on "s.f" while "s.rw" is held`
}

func (s *server) chanUnderLock() {
	s.mu.Lock()
	s.events <- 1 // want `send on unbuffered channel "s.events" while "s.mu" is held`
	<-s.done      // want `receive on unbuffered channel "s.done" while "s.mu" is held`
	s.reply <- 1  // buffered: not flagged
	s.mu.Unlock()
}

// helper blocks (gob) without locking; callers holding a lock inherit it.
func (s *server) flushLocked(v any) error {
	return s.enc.Encode(v)
}

// aggregate is blocking transitively through flushLocked.
func (s *server) aggregate(v any) error {
	return s.flushLocked(v)
}

func (s *server) transitive(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aggregate(v) // want `call to aggregate \(call to flushLocked \(gob Encode\)\) while "s.mu" is held`
}

// unlockFirst releases before doing I/O: clean.
func (s *server) unlockFirst(buf []byte) {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
	s.conn.Write(buf)
}

// guarded: the early-return branch unlocks, the fall-through path keeps
// the lock and must still be flagged.
func (s *server) guarded(buf []byte) {
	s.mu.Lock()
	if s.state == 0 {
		s.mu.Unlock()
		return
	}
	s.conn.Write(buf) // want `net.Conn Write on "s.conn" while "s.mu" is held`
	s.mu.Unlock()
}

// condWait is the sanctioned blocking-while-held pattern: Wait releases
// the mutex while parked.
func (s *server) condWait(c *sync.Cond) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.state == 0 {
		c.Wait()
	}
}

// goroutines do not block the spawner; the literal body runs with its
// own (empty) lock state.
func (s *server) spawn(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.conn.Write(buf)
	}()
}

// a literal that locks internally is still walked.
func (s *server) literal(buf []byte) func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.conn.Write(buf) // want `net.Conn Write on "s.conn" while "s.mu" is held`
	}
}

// selects are exempt: flagging every select would drown real findings.
func (s *server) selecting() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.done:
	case s.events <- 1:
	default:
	}
}

// closing a channel never blocks.
func (s *server) shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	close(s.done)
}

func (s *server) suppressed(buf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockio fixture exercises the suppression mechanism
	s.conn.Write(buf)
}
