package lockio_test

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis/analysistest"
	"github.com/asyncfl/asyncfilter/internal/analysis/lockio"
)

func TestLockIO(t *testing.T) {
	analysistest.Run(t, "a", "testdata/a", lockio.Analyzer)
}
