package a

// update has the update-struct shape: a direct []float64 field.
type update struct {
	delta []float64
	tag   int
}

// meta has no vector payload; allocating it on the hot path is fine.
type meta struct {
	tag int
}

// apply is allocation-free: in-place AXPY over caller-owned buffers.
//
//afl:hotpath
func apply(dst, src []float64) float64 {
	var sum float64
	for i := range src {
		dst[i] += src[i]
		sum += src[i]
	}
	return sum
}

//afl:hotpath
func badMake(n int) []float64 {
	return make([]float64, n) // want `allocates a \[\]float64 \(make\)`
}

//afl:hotpath
func badLit() []float64 {
	return []float64{1, 2} // want `allocates a \[\]float64 \(composite literal\)`
}

//afl:hotpath
func badAppend(dst []float64, v float64) []float64 {
	return append(dst, v) // want `appends to a \[\]float64`
}

//afl:hotpath
func badStruct(d []float64) *update {
	return &update{delta: d} // want `heap-allocates update struct update`
}

//afl:hotpath
func badNew() *update {
	return new(update) // want `heap-allocates update struct update`
}

func clone(src []float64) []float64 {
	out := make([]float64, len(src))
	copy(out, src)
	return out
}

//afl:hotpath
func badCall(src []float64) []float64 {
	return clone(src) // want `calls clone, which allocates`
}

// Transitive: wraps clone through an intermediate helper.
func cloneVia(src []float64) []float64 {
	return clone(src)
}

//afl:hotpath
func badTransitive(src []float64) []float64 {
	return cloneVia(src) // want `calls cloneVia, which call to clone`
}

// A value composite is a copy into the return slot, not a heap
// allocation.
//
//afl:hotpath
func okValue(d []float64) update {
	return update{delta: d, tag: 1}
}

// Non-vector allocations are not the hot-path concern.
//
//afl:hotpath
func okMeta(tag int) *meta {
	return &meta{tag: tag}
}

// Conversions reuse the operand's backing array.
type vec []float64

//afl:hotpath
func okConvert(src []float64) vec {
	return vec(src)
}

// Calls into another annotated function are that function's business.
//
//afl:hotpath
func okCallsHot(dst, src []float64) float64 {
	return apply(dst, src)
}

// Unannotated functions may allocate freely.
func okNotHot(n int) []float64 {
	return make([]float64, n)
}

//afl:hotpath
func ignored(n int) []float64 {
	//lint:ignore hotalloc fixture: suppression-path coverage for hotalloc
	return make([]float64, n)
}

//afl:hotpath // want `misplaced`
var scratch []float64

// getVec hands out recycled pool memory: the miss-path make below is the
// pool's own (unannotated) business, and hot-path callers are amortized.
//
//afl:pooled
func getVec(n int) []float64 {
	return make([]float64, n)
}

//afl:hotpath
func okPooled(n int) []float64 {
	v := getVec(n)
	for i := range v {
		v[i] = 0
	}
	return v
}

//afl:pooled // want `misplaced`
var pooledScratch []float64
