package hotalloc_test

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis/analysistest"
	"github.com/asyncfl/asyncfilter/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "a", "testdata/a", hotalloc.Analyzer)
}
