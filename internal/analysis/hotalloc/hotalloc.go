// Package hotalloc is the annotation-driven allocation lint preparing
// ROADMAP item 2's arena rewrite: functions marked with an
//
//	//afl:hotpath
//
// directive in their doc comment (filter apply, buffer ingest, wire
// encode/decode, replication record build) must not heap-allocate
// per-call vector state. Flagged inside a hot-path function:
//
//   - make([]float64, ...) and []float64{...} composite literals;
//   - append on a []float64 (it may grow and reallocate);
//   - address-taken composite literals (&T{...}) and new() of named
//     structs carrying a direct []float64 field (the update-struct
//     shape) — a value composite is a copy, not a heap allocation;
//   - calls to same-package functions that (transitively) do any of the
//     above, and calls whose result type is []float64 (a fresh slice in
//     any sane implementation).
//
// Pooled allocators are the sanctioned escape hatch: a function whose
// doc comment carries the
//
//	//afl:pooled
//
// directive (and the cross-package fl.Arena getters listed in
// crossPooled — export data carries no doc comments) hands out recycled
// memory, so calling it from a hot path is amortized reuse, not a
// per-call allocation, and is not flagged even when the result type is
// []float64. The allocation inside the pool's miss path lives in the
// unannotated pool package and is the pool's own business.
//
// Every surviving allocation on the hot path is therefore either fixed,
// pooled, or carries a //lint:ignore hotalloc with a justification. A
// directive (either kind) that is not the doc comment of a function
// declaration is itself flagged, so annotations cannot silently detach
// from the code they gate.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// Directive is the hot-path annotation comment.
const Directive = "//afl:hotpath"

// PooledDirective marks a function returning pooled (amortized) memory.
const PooledDirective = "//afl:pooled"

// crossPooled lists pooled allocators outside the package under
// analysis, keyed by types.Func.FullName.
var crossPooled = map[string]bool{
	"(*github.com/asyncfl/asyncfilter/internal/fl.Arena).GetVec":    true,
	"(*github.com/asyncfl/asyncfilter/internal/fl.Arena).GetUpdate": true,
}

// Analyzer is the hotalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags per-call []float64/update-struct heap allocations in functions annotated //afl:hotpath",
	Run:  run,
}

type checker struct {
	pass      *analysis.Pass
	decls     map[*types.Func]*ast.FuncDecl
	annotated map[*types.Func]bool
	pooled    map[*types.Func]bool
	allocates map[*types.Func]string
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		decls:     analysis.FuncDecls(pass),
		annotated: make(map[*types.Func]bool),
		pooled:    make(map[*types.Func]bool),
	}
	accepted := make(map[token.Pos]bool)
	order := analysis.SortedFuncs(pass, c.decls)
	for _, fn := range order {
		decl := c.decls[fn]
		if decl.Doc == nil {
			continue
		}
		for _, cm := range decl.Doc.List {
			if isDirective(cm.Text) {
				c.annotated[fn] = true
				accepted[cm.Pos()] = true
			}
			if isPooledDirective(cm.Text) {
				c.pooled[fn] = true
				accepted[cm.Pos()] = true
			}
		}
	}

	// A directive anywhere else is dead: it gates nothing.
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, cm := range cg.List {
				switch {
				case isDirective(cm.Text) && !accepted[cm.Pos()]:
					pass.Reportf(cm.Pos(), "misplaced %s: the directive must be in the doc comment of a function declaration", Directive)
				case isPooledDirective(cm.Text) && !accepted[cm.Pos()]:
					pass.Reportf(cm.Pos(), "misplaced %s: the directive must be in the doc comment of a function declaration", PooledDirective)
				}
			}
		}
	}

	// Same-package allocation classification, for flagging helper calls
	// from hot-path functions at the call site.
	c.allocates = analysis.Classify(pass, c.decls, func(_ *types.Func, decl *ast.FuncDecl) string {
		reason := ""
		analysis.InspectBody(decl.Body, func(n ast.Node) {
			if reason == "" {
				reason = c.allocSite(n, false)
			}
		})
		return reason
	})

	for _, fn := range order {
		if c.annotated[fn] {
			c.checkHot(c.decls[fn])
		}
	}
	return nil
}

func isDirective(text string) bool {
	return text == Directive || strings.HasPrefix(text, Directive+" ")
}

func isPooledDirective(text string) bool {
	return text == PooledDirective || strings.HasPrefix(text, PooledDirective+" ")
}

// checkHot reports every per-call allocation site in a hot-path body.
// Nested function literals run per call and are included; calls to other
// annotated functions are skipped (they are checked on their own).
func (c *checker) checkHot(decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if reason := c.allocSite(n, true); reason != "" {
			c.pass.Reportf(n.Pos(), "hot path (%s) %s: reuse a caller-provided buffer or pool it (ROADMAP item 2 arenas), or justify with //lint:ignore hotalloc <reason>", Directive, reason)
		}
		return true
	})
}

// allocSite classifies one node as a per-call allocation, returning a
// reason or "". When report is true, same-package callee classification
// is consulted (the Classify pass itself must only use direct sites).
func (c *checker) allocSite(n ast.Node, report bool) string {
	switch n := n.(type) {
	case *ast.CompositeLit:
		tv, ok := c.pass.TypesInfo.Types[n]
		if !ok || tv.Type == nil {
			return ""
		}
		if isFloatSlice(tv.Type) {
			return "allocates a []float64 (composite literal)"
		}
	case *ast.UnaryExpr:
		// Only an address-taken update-struct composite heap-allocates; a
		// value composite is a copy (stack or return slot).
		if n.Op != token.AND {
			return ""
		}
		lit, ok := ast.Unparen(n.X).(*ast.CompositeLit)
		if !ok {
			return ""
		}
		if tv, ok := c.pass.TypesInfo.Types[lit]; ok && tv.Type != nil {
			if name := updateStructName(tv.Type); name != "" {
				return fmt.Sprintf("heap-allocates update struct %s (carries a []float64)", name)
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			if _, builtin := c.pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
				switch id.Name {
				case "make":
					if tv, ok := c.pass.TypesInfo.Types[n]; ok && isFloatSlice(tv.Type) {
						return "allocates a []float64 (make)"
					}
				case "append":
					if tv, ok := c.pass.TypesInfo.Types[n]; ok && isFloatSlice(tv.Type) {
						return "appends to a []float64 (may grow and reallocate)"
					}
				case "new":
					if tv, ok := c.pass.TypesInfo.Types[n]; ok {
						if ptr, isPtr := tv.Type.(*types.Pointer); isPtr {
							if name := updateStructName(ptr.Elem()); name != "" {
								return fmt.Sprintf("heap-allocates update struct %s (carries a []float64)", name)
							}
						}
					}
				}
				return ""
			}
		}
		// Conversions reuse the operand's backing store.
		if tv, ok := c.pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
			return ""
		}
		callee := analysis.CalleeOf(c.pass.TypesInfo, n)
		// Pooled allocators hand out recycled memory: amortized, not a
		// per-call allocation.
		if callee != nil && (c.pooled[callee] || crossPooled[callee.FullName()]) {
			return ""
		}
		if callee != nil && callee.Pkg() == c.pass.Pkg {
			if !report {
				// Classify adds same-package transitivity itself.
				return ""
			}
			if c.annotated[callee] {
				return ""
			}
			if r := c.allocates[callee]; r != "" {
				return fmt.Sprintf("calls %s, which %s", callee.Name(), r)
			}
			return ""
		}
		// Cross-package call returning a []float64: a fresh slice in any
		// sane implementation (vecmath.Clone, stats means...).
		if tv, ok := c.pass.TypesInfo.Types[n]; ok && isFloatSlice(tv.Type) {
			name := analysis.ExprText(n.Fun, "call")
			return fmt.Sprintf("call to %s returns a fresh []float64", name)
		}
	}
	return ""
}

// isFloatSlice reports whether t is a slice of float64.
func isFloatSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Float64
}

// updateStructName returns the name of a named struct type with a direct
// []float64 field — the update-struct shape — or "".
func updateStructName(t types.Type) string {
	if t == nil {
		return ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if isFloatSlice(st.Field(i).Type()) {
			return named.Obj().Name()
		}
	}
	return ""
}
