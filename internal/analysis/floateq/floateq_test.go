package floateq_test

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/analysis/analysistest"
	"github.com/asyncfl/asyncfilter/internal/analysis/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "a", "testdata/a", floateq.Analyzer)
}

// TestFloatEqVecmath pins the helper allowance: under an
// .../internal/vecmath import path the approved helpers may compare
// exactly, other functions still may not.
func TestFloatEqVecmath(t *testing.T) {
	analysistest.Run(t, "example.com/internal/vecmath", "testdata/vecmath", floateq.Analyzer)
}
