// Package floateq flags == and != on floating-point operands.
//
// Invariant: the filter's statistics (cosine similarities, norms, EWMA
// deviations) are accumulated floating-point values; exact equality on
// them is either a latent bug (values that are "the same" differ in the
// last ulp after a different summation order) or an intent that deserves
// a name. Comparisons belong in internal/vecmath behind helpers that say
// what they mean: EqualApprox for tolerance, IsZero / ExactEqual for the
// deliberate bit-exact cases (guarding division by an exactly-zero norm,
// checkpoint round-trip checks).
//
// Allowed:
//   - the x != x NaN test (the one float comparison with a portable
//     bit-exact meaning);
//   - function bodies named IsZero / ExactEqual / EqualApprox inside
//     internal/vecmath — the approved helpers themselves.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/analysis"
)

// Analyzer is the floateq check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on floats outside internal/vecmath's approved helpers; use vecmath.EqualApprox/IsZero/ExactEqual",
	Run:  run,
}

// approvedHelpers may compare floats exactly, but only inside
// internal/vecmath.
var approvedHelpers = map[string]bool{
	"IsZero":      true,
	"ExactEqual":  true,
	"EqualApprox": true,
}

func run(pass *analysis.Pass) error {
	inVecmath := strings.HasSuffix(pass.Pkg.Path(), "internal/vecmath")
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if inVecmath && approvedHelpers[fn.Name.Name] {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass, bin.X) && !isFloat(pass, bin.Y) {
			return true
		}
		if bin.Op == token.NEQ && sameExprText(bin.X, bin.Y) {
			return true // x != x: the NaN test
		}
		pass.Reportf(bin.Pos(), "float %s comparison: exact float equality is order-sensitive; use vecmath.EqualApprox, or vecmath.IsZero/ExactEqual if bit-exact is intended", bin.Op)
		return true
	})
}

// isFloat reports whether the expression's underlying type is a float
// kind (including untyped float constants).
func isFloat(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&types.IsFloat != 0
}

// sameExprText reports whether two operands are textually identical
// identifiers or selector chains (good enough for the x != x idiom).
func sameExprText(x, y ast.Expr) bool {
	return exprText(x) != "" && exprText(x) == exprText(y)
}

func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprText(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
