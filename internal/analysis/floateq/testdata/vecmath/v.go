// Fixture loaded under an .../internal/vecmath import path: the approved
// helpers may compare exactly, everything else is still flagged.
package vecmath

// IsZero is an approved helper: exact comparison allowed.
func IsZero(x float64) bool {
	return x == 0
}

// ExactEqual is an approved helper: exact comparison allowed.
func ExactEqual(a, b float64) bool {
	return a == b
}

// EqualApprox is an approved helper (its epsilon fast path compares
// exactly).
func EqualApprox(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// Norm is not on the approved list even inside vecmath.
func Norm(x float64) bool {
	return x == 1 // want `float == comparison`
}
