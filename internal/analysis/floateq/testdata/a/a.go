// Fixture for the floateq analyzer: exact float equality is flagged,
// the x != x NaN idiom and non-float comparisons are not.
package a

func compare(a, b float64, f float32) bool {
	if a == b { // want `float == comparison`
		return true
	}
	if a == 0 { // want `float == comparison`
		return true
	}
	if f != 0 { // want `float != comparison`
		return true
	}
	return a*2 == b/3 // want `float == comparison`
}

type point struct{ x, y float64 }

func fields(p, q point) bool {
	return p.x == q.x // want `float == comparison`
}

// isNaN is the sanctioned exact comparison: NaN is the only value for
// which x != x.
func isNaN(x float64) bool {
	return x != x
}

func isNaNField(p point) bool {
	return p.x != p.x
}

func ints(a, b int, s, t string) bool {
	return a == b || s != t || a == 0
}

// IsZero is NOT approved here: the helper allowance applies only inside
// internal/vecmath, and this fixture package is not it.
func IsZero(x float64) bool {
	return x == 0 // want `float == comparison`
}

func suppressed(a float64) bool {
	//lint:ignore floateq fixture exercises the suppression mechanism
	return a == 1.5
}
