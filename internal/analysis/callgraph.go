package analysis

import (
	"go/ast"
	"go/types"
)

// This file holds the call-graph vocabulary shared by the cross-function
// analyzers (lockorder, goroleak, netdeadline, hotalloc): declaration
// indexing, callee resolution, and a transitive-property fixpoint over
// same-package calls. lockio predates these helpers and keeps its own
// copies; new analyzers should build on these.

// FuncDecls indexes every function and method declared in the pass's
// files by its type-checker object. Functions without bodies (externally
// implemented) are skipped. Iterate the result through SortedFuncs for
// deterministic diagnostics.
func FuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
		}
	}
	return decls
}

// SortedFuncs returns the declared functions in source order, so walks
// over the declaration map produce deterministic diagnostics.
func SortedFuncs(pass *Pass, decls map[*types.Func]*ast.FuncDecl) []*types.Func {
	var out []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				if _, keep := decls[obj]; keep {
					out = append(out, obj)
				}
			}
		}
	}
	return out
}

// CalleeOf resolves a call expression to the invoked function or method
// object, or nil for builtins, conversions, and dynamic calls through
// function values.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			f, _ := s.Obj().(*types.Func)
			return f
		}
		// Package-qualified call (pkg.Fn): no selection entry.
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	}
	return nil
}

// Classify computes the transitive closure of a per-function property
// over same-package calls: a function has the property when direct
// returns a non-empty reason for its declaration, or when it calls
// (outside go statements and nested function literals) a same-package
// function that has it. The result maps each qualifying function to a
// human-readable reason chain.
func Classify(pass *Pass, decls map[*types.Func]*ast.FuncDecl, direct func(fn *types.Func, decl *ast.FuncDecl) string) map[*types.Func]string {
	out := make(map[*types.Func]string)
	order := SortedFuncs(pass, decls)
	for _, fn := range order {
		if reason := direct(fn, decls[fn]); reason != "" {
			out[fn] = reason
		}
	}
	for {
		changed := false
		for _, fn := range order {
			if out[fn] != "" {
				continue
			}
			var reason string
			InspectBody(decls[fn].Body, func(n ast.Node) {
				if reason != "" {
					return
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				callee := CalleeOf(pass.TypesInfo, call)
				if callee == nil || callee.Pkg() != pass.Pkg {
					return
				}
				if r := out[callee]; r != "" {
					reason = "call to " + callee.Name() + " (" + r + ")"
				}
			})
			if reason != "" {
				out[fn] = reason
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return out
}

// InspectBody visits every node of a function body in source order,
// skipping go-statement payloads and nested function literals: work a
// function hands to another goroutine or defers into a stored closure is
// not part of its own synchronous behavior.
func InspectBody(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// NamedInterface looks up an interface type (e.g. net.Conn) among the
// package's direct imports. Returns nil when the package does not import
// path.
func NamedInterface(pkg *types.Package, path, name string) *types.Interface {
	for _, imp := range pkg.Imports() {
		if imp.Path() != path {
			continue
		}
		if obj, ok := imp.Scope().Lookup(name).(*types.TypeName); ok {
			iface, _ := obj.Type().Underlying().(*types.Interface)
			return iface
		}
	}
	return nil
}

// ImplementsOrPtr reports whether t or *t satisfies iface.
func ImplementsOrPtr(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// ExprText renders simple ident/selector chains for diagnostics; other
// expression shapes render as fallback.
func ExprText(e ast.Expr, fallback string) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := ExprText(e.X, ""); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return fallback
}

// RecvTypeName returns the name of a method's receiver named type, or ""
// for plain functions.
func RecvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// NamedTypeName resolves the named type of an expression's static type
// (unwrapping one pointer), or "".
func NamedTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
