package defense

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/asyncfl/asyncfilter/internal/cluster"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// FLDetector re-implements the synchronous state-of-the-art detector
// (Zhang et al., KDD 2022) the paper uses as its main baseline. The server
// predicts each client's next update from the client's previous update and
// an L-BFGS approximation of the integrated Hessian built from global
// model/update history; clients whose actual updates consistently deviate
// from the prediction are flagged via 2-means clustering with a gap
// statistic.
//
// FLDetector assumes synchronous participation: a client's "previous"
// update is expected to be exactly one round old. In asynchronous FL that
// assumption breaks — precisely the failure mode the paper demonstrates —
// and this implementation faithfully inherits it by predicting across
// however many rounds actually elapsed.
type FLDetectorConfig struct {
	// WindowSize bounds the L-BFGS history (paper default 10).
	WindowSize int
	// ScoreWindow is the number of per-client deviations averaged into the
	// suspicious score.
	ScoreWindow int
	// GapReferenceDraws is the number of Monte-Carlo reference sets for
	// the gap statistic.
	GapReferenceDraws int
	// Seed drives clustering and the gap statistic.
	Seed int64
}

// DefaultFLDetectorConfig mirrors the FLDetector paper's settings.
func DefaultFLDetectorConfig() FLDetectorConfig {
	return FLDetectorConfig{WindowSize: 10, ScoreWindow: 10, GapReferenceDraws: 10, Seed: 1}
}

// FLDetector is stateful across rounds and not safe for concurrent use.
type FLDetector struct {
	cfg FLDetectorConfig
	rng *rand.Rand

	// L-BFGS curvature history: sHist[k] = w_k - w_{k-1},
	// yHist[k] = gbar_k - gbar_{k-1}.
	sHist [][]float64
	yHist [][]float64

	prevGlobal []float64
	prevGbar   []float64

	clients map[int]*clientHistory
}

type clientHistory struct {
	// lastDelta is the client's most recent accepted update and lastGlobal
	// the global model it is assumed to have trained from. FLDetector's
	// synchronous assumption is baked in here: the recorded base is the
	// model that was current when the update arrived, not the (possibly
	// much older) model a stale asynchronous client actually started from.
	lastDelta  []float64
	lastGlobal []float64
	devWindow  []float64
}

var _ fl.Filter = (*FLDetector)(nil)
var _ fl.RoundObserver = (*FLDetector)(nil)

// NewFLDetector builds an FLDetector baseline.
func NewFLDetector(cfg FLDetectorConfig) (*FLDetector, error) {
	if cfg.WindowSize < 1 {
		return nil, fmt.Errorf("defense: NewFLDetector: WindowSize = %d, need >= 1", cfg.WindowSize)
	}
	if cfg.ScoreWindow < 1 {
		return nil, fmt.Errorf("defense: NewFLDetector: ScoreWindow = %d, need >= 1", cfg.ScoreWindow)
	}
	if cfg.GapReferenceDraws < 1 {
		return nil, fmt.Errorf("defense: NewFLDetector: GapReferenceDraws = %d, need >= 1", cfg.GapReferenceDraws)
	}
	return &FLDetector{
		cfg:     cfg,
		rng:     randx.New(cfg.Seed),
		clients: make(map[int]*clientHistory),
	}, nil
}

// Name implements fl.Filter.
func (d *FLDetector) Name() string { return "fldetector" }

// ObserveRound implements fl.RoundObserver: after each aggregation the
// server feeds back the new global parameters and the accepted updates so
// the detector can extend its curvature history.
func (d *FLDetector) ObserveRound(round int, global []float64, accepted []*fl.Update) {
	snapshot := vecmath.Clone(global)
	// The model the just-aggregated updates are assumed (synchronously) to
	// have trained from is the previous snapshot.
	base := d.prevGlobal

	var gbar []float64
	if len(accepted) > 0 {
		gbar = make([]float64, len(global))
		vs := make([][]float64, len(accepted))
		for i, u := range accepted {
			vs[i] = u.Delta
		}
		vecmath.MeanVector(gbar, vs)
	}

	if d.prevGlobal != nil && gbar != nil && d.prevGbar != nil {
		s := vecmath.Subbed(snapshot, d.prevGlobal)
		// Updates are negative-gradient steps, so the gradient difference
		// that pairs with s for a positive-curvature (s, y) secant is the
		// NEGATED update difference.
		y := vecmath.Subbed(d.prevGbar, gbar)
		// Skip degenerate curvature pairs.
		if vecmath.Dot(s, y) > 1e-12 {
			d.sHist = append(d.sHist, s)
			d.yHist = append(d.yHist, y)
			if len(d.sHist) > d.cfg.WindowSize {
				d.sHist = d.sHist[1:]
				d.yHist = d.yHist[1:]
			}
		}
	}
	d.prevGlobal = snapshot
	if gbar != nil {
		d.prevGbar = gbar
	}

	// Record the accepted updates as each client's latest contribution.
	for _, u := range accepted {
		d.rememberClient(u, base)
	}
}

func (d *FLDetector) rememberClient(u *fl.Update, base []float64) {
	h, ok := d.clients[u.ClientID]
	if !ok {
		h = &clientHistory{}
		d.clients[u.ClientID] = h
	}
	h.lastDelta = vecmath.Clone(u.Delta)
	h.lastGlobal = base
}

// hessianVector approximates H*v from the (s, y) history using the L-BFGS
// two-loop recursion with the roles of s and y exchanged (y_k ~ H s_k, so
// the standard inverse-Hessian recursion on swapped pairs yields the
// forward action).
func (d *FLDetector) hessianVector(v []float64) []float64 {
	m := len(d.sHist)
	if m == 0 {
		return make([]float64, len(v))
	}
	q := vecmath.Clone(v)
	alpha := make([]float64, m)
	rho := make([]float64, m)
	for k := m - 1; k >= 0; k-- {
		rho[k] = 1 / vecmath.Dot(d.yHist[k], d.sHist[k])
		alpha[k] = rho[k] * vecmath.Dot(d.yHist[k], q)
		vecmath.AXPY(q, -alpha[k], d.sHist[k])
	}
	// Initial scaling: gamma = (y.s)/(s.s) approximates the dominant
	// curvature.
	last := m - 1
	gamma := vecmath.Dot(d.yHist[last], d.sHist[last]) / vecmath.Dot(d.sHist[last], d.sHist[last])
	vecmath.Scale(q, gamma, q)
	for k := 0; k < m; k++ {
		beta := rho[k] * vecmath.Dot(d.sHist[k], q)
		vecmath.AXPY(q, alpha[k]-beta, d.yHist[k])
	}
	return q
}

// Filter implements fl.Filter.
func (d *FLDetector) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	n := len(updates)
	if n == 0 {
		return fl.FilterResult{}, nil
	}

	deviations := make([]float64, n)
	havePrediction := false
	for i, u := range updates {
		h, ok := d.clients[u.ClientID]
		if !ok || h.lastDelta == nil || h.lastGlobal == nil || d.prevGlobal == nil {
			deviations[i] = -1 // unknown: no usable prior contribution
			continue
		}
		diff := vecmath.Subbed(d.prevGlobal, h.lastGlobal)
		// Predicted gradient: g_prev + H*diff; in delta space (delta =
		// -gradient step) the Hessian term enters with a minus sign.
		pred := vecmath.Subbed(h.lastDelta, d.hessianVector(diff))
		deviations[i] = vecmath.Distance(pred, u.Delta)
		havePrediction = true
	}
	if !havePrediction {
		return fl.AcceptAll(n), nil
	}

	// Unknown clients inherit the median deviation of the known ones.
	known := make([]float64, 0, n)
	for _, dev := range deviations {
		if dev >= 0 {
			known = append(known, dev)
		}
	}
	med := medianOf(known)
	for i, dev := range deviations {
		if dev < 0 {
			deviations[i] = med
		}
	}

	// Normalize deviations into scores and fold into per-client rolling
	// windows (FLDetector averages the last ScoreWindow normalized
	// deviations).
	var total float64
	for _, dev := range deviations {
		total += dev
	}
	scores := make([]float64, n)
	for i, u := range updates {
		norm := 0.0
		if total > 0 {
			norm = deviations[i] / total
		}
		h, ok := d.clients[u.ClientID]
		if !ok {
			h = &clientHistory{}
			d.clients[u.ClientID] = h
		}
		h.devWindow = append(h.devWindow, norm)
		if len(h.devWindow) > d.cfg.ScoreWindow {
			h.devWindow = h.devWindow[1:]
		}
		var sum float64
		for _, v := range h.devWindow {
			sum += v
		}
		scores[i] = sum / float64(len(h.devWindow))
	}

	// Decide whether the score distribution is better explained by two
	// clusters (attack present) than one, via the gap statistic; if so,
	// reject the higher cluster.
	if !d.twoClustersPreferred(scores) {
		res := fl.AcceptAll(n)
		res.Scores = scores
		return res, nil
	}
	km, err := cluster.KMeans1D(scores, 2, d.rng, cluster.Options{})
	if err != nil {
		return fl.FilterResult{}, fmt.Errorf("defense: FLDetector: %w", err)
	}
	decisions := make([]fl.Decision, n)
	for i := range updates {
		if km.Assignments[i] == 1 && km.Sizes[0] > 0 {
			decisions[i] = fl.Reject
		} else {
			decisions[i] = fl.Accept
		}
	}
	return fl.FilterResult{Decisions: decisions, Scores: scores}, nil
}

// twoClustersPreferred computes a 1-D gap statistic comparing k=1 vs k=2.
func (d *FLDetector) twoClustersPreferred(scores []float64) bool {
	if len(scores) < 4 {
		return false
	}
	lo, hi := scores[0], scores[0]
	for _, s := range scores {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if hi-lo < 1e-15 {
		return false
	}
	gap1 := d.gapFor(scores, 1, lo, hi)
	gap2 := d.gapFor(scores, 2, lo, hi)
	return gap2 > gap1
}

// gapFor returns E[log W_k(reference)] - log W_k(scores).
func (d *FLDetector) gapFor(scores []float64, k int, lo, hi float64) float64 {
	w := inertia1D(scores, k, d.rng)
	var ref float64
	draws := d.cfg.GapReferenceDraws
	sample := make([]float64, len(scores))
	for b := 0; b < draws; b++ {
		for i := range sample {
			sample[i] = lo + d.rng.Float64()*(hi-lo)
		}
		ref += math.Log(inertia1D(sample, k, d.rng) + 1e-12)
	}
	ref /= float64(draws)
	return ref - math.Log(w+1e-12)
}

func inertia1D(values []float64, k int, r *rand.Rand) float64 {
	res, err := cluster.KMeans1D(values, k, r, cluster.Options{})
	if err != nil {
		return 0
	}
	return res.Inertia
}

func medianOf(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if len(sorted)%2 == 1 {
		return sorted[len(sorted)/2]
	}
	return (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
}
