package defense

import (
	"fmt"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// ServerOracle supplies the trusted reference update that Zeno++ and
// AFLGuard assume the server can compute from a clean root dataset — the
// very assumption AsyncFilter exists to remove. The simulator implements
// it by training the current global model on a held-out clean shard.
type ServerOracle interface {
	// ReferenceDelta returns a trusted parameter delta computed from the
	// global model as of the given version.
	ReferenceDelta(baseVersion int) ([]float64, error)
}

// ZenoPP re-implements Zeno++ (Xie et al., ICML 2020) as a filter: an
// update is accepted when its estimated descent score
//
//	gamma*<g_s, u> - rho*||u||^2 >= -gamma*epsilon
//
// is non-degrading, where g_s is the server's trusted update. Accepted
// updates are those whose projection onto the trusted direction is
// sufficiently positive.
type ZenoPP struct {
	oracle ServerOracle
	// Gamma scales the inner-product term (server learning rate in the
	// original formulation).
	Gamma float64
	// Rho penalizes update magnitude.
	Rho float64
	// Epsilon relaxes the acceptance bound.
	Epsilon float64
}

var _ fl.Filter = (*ZenoPP)(nil)

// NewZenoPP builds a Zeno++ filter backed by the oracle. Zero-valued
// parameters select gamma=1, rho=0.001, epsilon=0.
func NewZenoPP(oracle ServerOracle, gamma, rho, epsilon float64) (*ZenoPP, error) {
	if oracle == nil {
		return nil, fmt.Errorf("defense: NewZenoPP: nil oracle")
	}
	if vecmath.IsZero(gamma) {
		gamma = 1
	}
	if vecmath.IsZero(rho) {
		rho = 0.001
	}
	if gamma < 0 || rho < 0 {
		return nil, fmt.Errorf("defense: NewZenoPP: gamma and rho must be non-negative")
	}
	return &ZenoPP{oracle: oracle, Gamma: gamma, Rho: rho, Epsilon: epsilon}, nil
}

// Name implements fl.Filter.
func (z *ZenoPP) Name() string { return "zeno++" }

// Filter implements fl.Filter.
func (z *ZenoPP) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	n := len(updates)
	if n == 0 {
		return fl.FilterResult{}, nil
	}
	decisions := make([]fl.Decision, n)
	scores := make([]float64, n)
	refCache := make(map[int][]float64)
	for i, u := range updates {
		ref, ok := refCache[u.BaseVersion]
		if !ok {
			var err error
			ref, err = z.oracle.ReferenceDelta(u.BaseVersion)
			if err != nil {
				return fl.FilterResult{}, fmt.Errorf("defense: ZenoPP: oracle: %w", err)
			}
			refCache[u.BaseVersion] = ref
		}
		score := z.Gamma*vecmath.Dot(ref, u.Delta) - z.Rho*vecmath.SquaredNorm2(u.Delta)
		scores[i] = -score // suspicion: higher = worse
		if score >= -z.Gamma*z.Epsilon {
			decisions[i] = fl.Accept
		} else {
			decisions[i] = fl.Reject
		}
	}
	return fl.FilterResult{Decisions: decisions, Scores: scores}, nil
}

// AFLGuard re-implements AFLGuard (Fang et al., ACSAC 2022): an update is
// accepted only when it does not deviate too much from the server's
// trusted update in both magnitude and direction, captured by the single
// condition ||u - u_s|| <= lambda * ||u_s||.
type AFLGuard struct {
	oracle ServerOracle
	// Lambda is the relative deviation bound.
	Lambda float64
}

var _ fl.Filter = (*AFLGuard)(nil)

// NewAFLGuard builds an AFLGuard filter; lambda 0 selects 1.5.
func NewAFLGuard(oracle ServerOracle, lambda float64) (*AFLGuard, error) {
	if oracle == nil {
		return nil, fmt.Errorf("defense: NewAFLGuard: nil oracle")
	}
	if vecmath.IsZero(lambda) {
		lambda = 1.5
	}
	if lambda < 0 {
		return nil, fmt.Errorf("defense: NewAFLGuard: lambda = %v, need > 0", lambda)
	}
	return &AFLGuard{oracle: oracle, Lambda: lambda}, nil
}

// Name implements fl.Filter.
func (a *AFLGuard) Name() string { return "aflguard" }

// Filter implements fl.Filter.
func (a *AFLGuard) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	n := len(updates)
	if n == 0 {
		return fl.FilterResult{}, nil
	}
	decisions := make([]fl.Decision, n)
	scores := make([]float64, n)
	refCache := make(map[int][]float64)
	for i, u := range updates {
		ref, ok := refCache[u.BaseVersion]
		if !ok {
			var err error
			ref, err = a.oracle.ReferenceDelta(u.BaseVersion)
			if err != nil {
				return fl.FilterResult{}, fmt.Errorf("defense: AFLGuard: oracle: %w", err)
			}
			refCache[u.BaseVersion] = ref
		}
		dev := vecmath.Distance(u.Delta, ref)
		bound := a.Lambda * vecmath.Norm2(ref)
		scores[i] = dev
		if dev <= bound {
			decisions[i] = fl.Accept
		} else {
			decisions[i] = fl.Reject
		}
	}
	return fl.FilterResult{Decisions: decisions, Scores: scores}, nil
}
