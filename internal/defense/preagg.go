package defense

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Bucketing is the pre-aggregation scheme of Karimireddy et al. (ICLR
// 2022), cited by the paper as a heterogeneity-reduction baseline: updates
// are randomly shuffled into buckets of BucketSize, each bucket is
// averaged, and the bucket means are combined by the inner combiner. With
// a robust inner combiner this provably reduces the heterogeneity the
// robust rule must tolerate.
type Bucketing struct {
	// BucketSize is the number of updates averaged per bucket (>= 1).
	BucketSize int
	// Inner combines the bucket means; nil selects the plain mean.
	Inner fl.Combiner
	rng   *rand.Rand
}

var _ fl.Combiner = (*Bucketing)(nil)

// NewBucketing builds a bucketing pre-aggregator.
func NewBucketing(bucketSize int, inner fl.Combiner, seed int64) (*Bucketing, error) {
	if bucketSize < 1 {
		return nil, fmt.Errorf("defense: NewBucketing: BucketSize = %d, need >= 1", bucketSize)
	}
	if inner == nil {
		inner = fl.MeanCombiner{}
	}
	return &Bucketing{BucketSize: bucketSize, Inner: inner, rng: randx.New(seed)}, nil
}

// Name implements fl.Combiner.
func (b *Bucketing) Name() string {
	return fmt.Sprintf("bucketing(%d)+%s", b.BucketSize, b.Inner.Name())
}

// Combine implements fl.Combiner.
func (b *Bucketing) Combine(updates []*fl.Update, cfg fl.AggregatorConfig) ([]float64, error) {
	n := len(updates)
	if n == 0 {
		return nil, fmt.Errorf("defense: Bucketing: no updates")
	}
	perm := b.rng.Perm(n)
	var bucketed []*fl.Update
	for lo := 0; lo < n; lo += b.BucketSize {
		hi := lo + b.BucketSize
		if hi > n {
			hi = n
		}
		mean := make([]float64, len(updates[0].Delta))
		samples := 0
		maxStale := 0
		for _, idx := range perm[lo:hi] {
			u := updates[idx]
			if len(u.Delta) != len(mean) {
				return nil, fmt.Errorf("defense: Bucketing: mixed update dimensions")
			}
			vecmath.AXPY(mean, 1/float64(hi-lo), u.Delta)
			samples += u.NumSamples
			if u.Staleness > maxStale {
				maxStale = u.Staleness
			}
		}
		bucketed = append(bucketed, &fl.Update{
			Delta:      mean,
			NumSamples: samples,
			Staleness:  maxStale,
		})
	}
	return b.Inner.Combine(bucketed, cfg)
}

// NNM is Nearest Neighbor Mixing (Allouah et al., AISTATS 2023), cited by
// the paper as a dataset-free robustness baseline: each update is replaced
// by the average of itself and its Neighbors nearest neighbours before the
// inner combiner runs, shrinking the leverage of isolated poisoned
// updates.
type NNM struct {
	// Neighbors is the number of nearest neighbours mixed into each
	// update (excluding the update itself).
	Neighbors int
	// Inner combines the mixed updates; nil selects the plain mean.
	Inner fl.Combiner
}

var _ fl.Combiner = (*NNM)(nil)

// NewNNM builds a nearest-neighbour-mixing pre-aggregator.
func NewNNM(neighbors int, inner fl.Combiner) (*NNM, error) {
	if neighbors < 1 {
		return nil, fmt.Errorf("defense: NewNNM: Neighbors = %d, need >= 1", neighbors)
	}
	if inner == nil {
		inner = fl.MeanCombiner{}
	}
	return &NNM{Neighbors: neighbors, Inner: inner}, nil
}

// Name implements fl.Combiner.
func (m *NNM) Name() string {
	return fmt.Sprintf("nnm(%d)+%s", m.Neighbors, m.Inner.Name())
}

// Combine implements fl.Combiner.
func (m *NNM) Combine(updates []*fl.Update, cfg fl.AggregatorConfig) ([]float64, error) {
	n := len(updates)
	if n == 0 {
		return nil, fmt.Errorf("defense: NNM: no updates")
	}
	k := m.Neighbors
	if k > n-1 {
		k = n - 1
	}
	dim := len(updates[0].Delta)
	mixed := make([]*fl.Update, n)

	type pair struct {
		idx  int
		dist float64
	}
	for i, u := range updates {
		if len(u.Delta) != dim {
			return nil, fmt.Errorf("defense: NNM: mixed update dimensions")
		}
		neighbors := make([]pair, 0, n-1)
		for j, v := range updates {
			if i == j {
				continue
			}
			neighbors = append(neighbors, pair{idx: j, dist: vecmath.SquaredDistance(u.Delta, v.Delta)})
		}
		sort.Slice(neighbors, func(a, b int) bool {
			if !vecmath.ExactEqual(neighbors[a].dist, neighbors[b].dist) {
				return neighbors[a].dist < neighbors[b].dist
			}
			return neighbors[a].idx < neighbors[b].idx
		})
		mean := vecmath.Clone(u.Delta)
		for _, nb := range neighbors[:k] {
			vecmath.Add(mean, mean, updates[nb.idx].Delta)
		}
		vecmath.Scale(mean, 1/float64(k+1), mean)
		clone := *u
		clone.Delta = mean
		mixed[i] = &clone
	}
	return m.Inner.Combine(mixed, cfg)
}
