// Package defense implements the baseline defenses AsyncFilter is compared
// against: the FLDetector malicious-client detector (the paper's main
// detection baseline), the classic synchronous Byzantine-robust
// aggregation rules (Krum / Multi-Krum, coordinate-wise trimmed mean and
// median), and the clean-dataset asynchronous defenses Zeno++ and AFLGuard
// that the paper argues against assuming.
package defense

import (
	"fmt"
	"sort"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Krum is the Krum/Multi-Krum selection rule (Blanchard et al., NeurIPS
// 2017) expressed as a filter: each update is scored by the sum of squared
// distances to its n-f-2 nearest neighbours and only the NumSelect
// lowest-scoring updates are accepted.
type Krum struct {
	// NumMalicious is the assumed number of malicious updates per batch
	// (f in the Krum paper).
	NumMalicious int
	// NumSelect is the number of updates to accept (1 = classic Krum,
	// larger = Multi-Krum). Zero selects n - NumMalicious at filter time.
	NumSelect int
}

var _ fl.Filter = (*Krum)(nil)

// NewKrum builds a Multi-Krum filter.
func NewKrum(numMalicious, numSelect int) (*Krum, error) {
	if numMalicious < 0 {
		return nil, fmt.Errorf("defense: NewKrum: NumMalicious = %d, need >= 0", numMalicious)
	}
	if numSelect < 0 {
		return nil, fmt.Errorf("defense: NewKrum: NumSelect = %d, need >= 0", numSelect)
	}
	return &Krum{NumMalicious: numMalicious, NumSelect: numSelect}, nil
}

// Name implements fl.Filter.
func (k *Krum) Name() string { return "krum" }

// Filter implements fl.Filter.
func (k *Krum) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	n := len(updates)
	if n == 0 {
		return fl.FilterResult{}, nil
	}
	// Krum needs n >= f + 3 for the neighbourhood to be defined; smaller
	// batches pass through.
	neighbors := n - k.NumMalicious - 2
	if neighbors < 1 {
		return fl.AcceptAll(n), nil
	}

	// Pairwise squared distances.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := vecmath.SquaredDistance(updates[i].Delta, updates[j].Delta)
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	scores := make([]float64, n)
	for i := 0; i < n; i++ {
		ds := make([]float64, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				ds = append(ds, dist[i][j])
			}
		}
		sort.Float64s(ds)
		var s float64
		for _, d := range ds[:neighbors] {
			s += d
		}
		scores[i] = s
	}

	sel := k.NumSelect
	if sel == 0 {
		sel = n - k.NumMalicious
	}
	if sel > n {
		sel = n
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })

	decisions := make([]fl.Decision, n)
	for i := range decisions {
		decisions[i] = fl.Reject
	}
	for _, idx := range order[:sel] {
		decisions[idx] = fl.Accept
	}
	return fl.FilterResult{Decisions: decisions, Scores: scores}, nil
}

// TrimmedMean is the coordinate-wise trimmed-mean combiner (Yin et al.,
// ICML 2018): for each coordinate the Trim largest and Trim smallest
// values are removed before averaging.
type TrimmedMean struct {
	// Trim is the number of values trimmed from each end per coordinate.
	Trim int
}

var _ fl.Combiner = (*TrimmedMean)(nil)

// NewTrimmedMean builds a trimmed-mean combiner.
func NewTrimmedMean(trim int) (*TrimmedMean, error) {
	if trim < 0 {
		return nil, fmt.Errorf("defense: NewTrimmedMean: Trim = %d, need >= 0", trim)
	}
	return &TrimmedMean{Trim: trim}, nil
}

// Name implements fl.Combiner.
func (t *TrimmedMean) Name() string { return "trimmed-mean" }

// Combine implements fl.Combiner.
func (t *TrimmedMean) Combine(updates []*fl.Update, cfg fl.AggregatorConfig) ([]float64, error) {
	n := len(updates)
	if n == 0 {
		return nil, fmt.Errorf("defense: TrimmedMean: no updates")
	}
	if 2*t.Trim >= n {
		return nil, fmt.Errorf("defense: TrimmedMean: trimming 2*%d values from %d updates leaves nothing", t.Trim, n)
	}
	dim := len(updates[0].Delta)
	out := make([]float64, dim)
	column := make([]float64, n)
	for j := 0; j < dim; j++ {
		for i, u := range updates {
			column[i] = u.Delta[j]
		}
		sort.Float64s(column)
		var s float64
		kept := column[t.Trim : n-t.Trim]
		for _, v := range kept {
			s += v
		}
		out[j] = s / float64(len(kept))
	}
	return out, nil
}

// Median is the coordinate-wise median combiner (Yin et al., ICML 2018).
type Median struct{}

var _ fl.Combiner = Median{}

// Name implements fl.Combiner.
func (Median) Name() string { return "median" }

// Combine implements fl.Combiner.
func (Median) Combine(updates []*fl.Update, cfg fl.AggregatorConfig) ([]float64, error) {
	n := len(updates)
	if n == 0 {
		return nil, fmt.Errorf("defense: Median: no updates")
	}
	dim := len(updates[0].Delta)
	out := make([]float64, dim)
	column := make([]float64, n)
	for j := 0; j < dim; j++ {
		for i, u := range updates {
			column[i] = u.Delta[j]
		}
		sort.Float64s(column)
		if n%2 == 1 {
			out[j] = column[n/2]
		} else {
			out[j] = (column[n/2-1] + column[n/2]) / 2
		}
	}
	return out, nil
}
