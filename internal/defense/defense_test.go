package defense

import (
	"errors"
	"math"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// blobUpdates builds count benign updates around center plus poisoned
// ones scaled by poisonScale times the center, returning updates and
// ground-truth malicious flags.
func blobUpdates(seed int64, count, poisoned, dim int, poisonScale float64) ([]*fl.Update, []bool) {
	r := randx.New(seed)
	center := randx.NormalVector(r, dim, 0, 2)
	var updates []*fl.Update
	var truth []bool
	for i := 0; i < count; i++ {
		d := vecmath.Clone(center)
		vecmath.Add(d, d, randx.NormalVector(r, dim, 0, 0.2))
		updates = append(updates, &fl.Update{ClientID: i, Delta: d, NumSamples: 1})
		truth = append(truth, false)
	}
	for i := 0; i < poisoned; i++ {
		d := vecmath.Scaled(poisonScale, center)
		vecmath.Add(d, d, randx.NormalVector(r, dim, 0, 0.2))
		updates = append(updates, &fl.Update{ClientID: 1000 + i, Delta: d, NumSamples: 1})
		truth = append(truth, true)
	}
	return updates, truth
}

func TestKrumValidation(t *testing.T) {
	if _, err := NewKrum(-1, 0); err == nil {
		t.Error("negative NumMalicious accepted")
	}
	if _, err := NewKrum(0, -1); err == nil {
		t.Error("negative NumSelect accepted")
	}
}

func TestKrumRejectsOutliers(t *testing.T) {
	k, err := NewKrum(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	updates, truth := blobUpdates(1, 16, 4, 10, -3)
	res, err := k.Filter(updates, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Decisions {
		if truth[i] && d != fl.Reject {
			t.Errorf("malicious update %d not rejected", i)
		}
		if !truth[i] && d != fl.Accept {
			t.Errorf("benign update %d rejected", i)
		}
	}
	if k.Name() != "krum" {
		t.Error("name")
	}
}

func TestKrumSmallBatchPassthrough(t *testing.T) {
	k, _ := NewKrum(5, 0)
	updates, _ := blobUpdates(2, 4, 1, 6, -3) // n=5 <= f+2
	res, err := k.Filter(updates, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Decisions {
		if d != fl.Accept {
			t.Error("small batch should pass through")
		}
	}
}

func TestKrumEmpty(t *testing.T) {
	k, _ := NewKrum(2, 0)
	res, err := k.Filter(nil, 0)
	if err != nil || len(res.Decisions) != 0 {
		t.Errorf("empty batch: %v %v", res, err)
	}
}

func TestKrumSelectOne(t *testing.T) {
	k, _ := NewKrum(2, 1)
	updates, _ := blobUpdates(3, 8, 2, 6, -3)
	res, err := k.Filter(updates, 0)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, d := range res.Decisions {
		if d == fl.Accept {
			accepted++
		}
	}
	if accepted != 1 {
		t.Errorf("classic Krum accepted %d, want 1", accepted)
	}
}

func TestTrimmedMeanValidation(t *testing.T) {
	if _, err := NewTrimmedMean(-1); err == nil {
		t.Error("negative trim accepted")
	}
	tm, _ := NewTrimmedMean(2)
	if _, err := tm.Combine([]*fl.Update{{Delta: []float64{1}}}, fl.AggregatorConfig{}); err == nil {
		t.Error("over-trimming accepted")
	}
	if _, err := tm.Combine(nil, fl.AggregatorConfig{}); err == nil {
		t.Error("empty combine accepted")
	}
}

func TestTrimmedMeanDropsExtremes(t *testing.T) {
	tm, _ := NewTrimmedMean(1)
	updates := []*fl.Update{
		{Delta: []float64{-100, 1}},
		{Delta: []float64{1, 1}},
		{Delta: []float64{2, 1}},
		{Delta: []float64{3, 1}},
		{Delta: []float64{100, 1}},
	}
	out, err := tm.Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-2) > 1e-12 || math.Abs(out[1]-1) > 1e-12 {
		t.Errorf("trimmed mean = %v, want [2 1]", out)
	}
	if tm.Name() != "trimmed-mean" {
		t.Error("name")
	}
}

func TestMedianCombiner(t *testing.T) {
	m := Median{}
	updates := []*fl.Update{
		{Delta: []float64{1, 10}},
		{Delta: []float64{2, 20}},
		{Delta: []float64{300, 30}},
	}
	out, err := m.Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 20 {
		t.Errorf("median = %v, want [2 20]", out)
	}
	// Even count: midpoint.
	updates = append(updates, &fl.Update{Delta: []float64{4, 40}})
	out, err = m.Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != 25 {
		t.Errorf("even median = %v, want [3 25]", out)
	}
	if _, err := m.Combine(nil, fl.AggregatorConfig{}); err == nil {
		t.Error("empty combine accepted")
	}
	if m.Name() != "median" {
		t.Error("name")
	}
}

func TestMedianResistsPoison(t *testing.T) {
	// The median of 7 values with 3 poisoned extremes stays benign.
	updates := []*fl.Update{
		{Delta: []float64{1}}, {Delta: []float64{1.1}}, {Delta: []float64{0.9}}, {Delta: []float64{1.05}},
		{Delta: []float64{-50}}, {Delta: []float64{-60}}, {Delta: []float64{-70}},
	}
	out, err := Median{}.Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] < 0.8 || out[0] > 1.2 {
		t.Errorf("median under poison = %v, want ~1", out[0])
	}
}

// --- FLDetector ---

func TestFLDetectorValidation(t *testing.T) {
	bad := []FLDetectorConfig{
		{WindowSize: 0, ScoreWindow: 1, GapReferenceDraws: 1},
		{WindowSize: 1, ScoreWindow: 0, GapReferenceDraws: 1},
		{WindowSize: 1, ScoreWindow: 1, GapReferenceDraws: 0},
	}
	for i, cfg := range bad {
		if _, err := NewFLDetector(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestFLDetectorAcceptsWithoutHistory(t *testing.T) {
	d, err := NewFLDetector(DefaultFLDetectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	updates, _ := blobUpdates(4, 10, 3, 8, -3)
	res, err := d.Filter(updates, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, dec := range res.Decisions {
		if dec != fl.Accept {
			t.Error("first round without history should pass through")
		}
	}
	if d.Name() != "fldetector" {
		t.Error("name")
	}
}

// runFLDetectorRounds simulates a synchronous sequence of rounds with
// quadratic-loss dynamics: each benign client's update is a step toward a
// shared target (so updates evolve with the model and the L-BFGS history
// captures real curvature), and malicious clients send reversed updates.
func runFLDetectorRounds(t *testing.T, d *FLDetector, rounds int) ([]*fl.Update, []bool, fl.FilterResult) {
	t.Helper()
	const dim = 8
	r := randx.New(99)
	target := randx.NormalVector(r, dim, 0, 5)
	global := make([]float64, dim)

	var updates []*fl.Update
	var truth []bool
	var res fl.FilterResult
	for round := 0; round < rounds; round++ {
		updates = nil
		truth = nil
		for c := 0; c < 12; c++ {
			step := vecmath.Subbed(target, global)
			vecmath.Scale(step, 0.3, step)
			vecmath.Add(step, step, randx.NormalVector(r, dim, 0, 0.02))
			malicious := c >= 9
			if malicious {
				vecmath.Scale(step, -1, step)
			}
			updates = append(updates, &fl.Update{ClientID: c, BaseVersion: round, Delta: step, NumSamples: 1})
			truth = append(truth, malicious)
		}
		var err error
		res, err = d.Filter(updates, round)
		if err != nil {
			t.Fatal(err)
		}
		accepted, _, _ := res.Split(updates)
		// Apply a plain mean aggregation of everything accepted.
		if len(accepted) > 0 {
			delta, err := (fl.MeanCombiner{}).Combine(accepted, fl.AggregatorConfig{})
			if err != nil {
				t.Fatal(err)
			}
			vecmath.Add(global, global, delta)
		}
		d.ObserveRound(round, global, updates) // detector sees all reports
	}
	return updates, truth, res
}

func TestFLDetectorCatchesReversersInSyncSetting(t *testing.T) {
	d, err := NewFLDetector(FLDetectorConfig{WindowSize: 5, ScoreWindow: 3, GapReferenceDraws: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	updates, truth, res := runFLDetectorRounds(t, d, 12)
	caught, benignHit := 0, 0
	for i, dec := range res.Decisions {
		if dec == fl.Reject {
			if truth[i] {
				caught++
			} else {
				benignHit++
			}
		}
	}
	_ = updates
	if caught < 2 {
		t.Errorf("FLDetector caught %d/3 reversers in a synchronous setting, want >= 2", caught)
	}
	if benignHit > 2 {
		t.Errorf("FLDetector rejected %d benign clients", benignHit)
	}
}

func TestFLDetectorScoresHigherForMalicious(t *testing.T) {
	d, err := NewFLDetector(FLDetectorConfig{WindowSize: 5, ScoreWindow: 3, GapReferenceDraws: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, truth, res := runFLDetectorRounds(t, d, 8)
	if len(res.Scores) == 0 {
		t.Fatal("no scores recorded")
	}
	var benignMean, maliciousMean float64
	var nb, nm int
	for i, s := range res.Scores {
		if truth[i] {
			maliciousMean += s
			nm++
		} else {
			benignMean += s
			nb++
		}
	}
	benignMean /= float64(nb)
	maliciousMean /= float64(nm)
	if maliciousMean <= benignMean {
		t.Errorf("malicious mean score %v <= benign %v", maliciousMean, benignMean)
	}
}

// --- Oracle defenses ---

type fixedOracle struct {
	delta []float64
	err   error
}

func (f fixedOracle) ReferenceDelta(int) ([]float64, error) { return f.delta, f.err }

func TestZenoPPValidation(t *testing.T) {
	if _, err := NewZenoPP(nil, 0, 0, 0); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, err := NewZenoPP(fixedOracle{}, -1, 0, 0); err == nil {
		t.Error("negative gamma accepted")
	}
}

func TestZenoPPAcceptsAlignedRejectsReversed(t *testing.T) {
	ref := []float64{1, 1, 1, 1}
	z, err := NewZenoPP(fixedOracle{delta: ref}, 1, 0.001, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	updates := []*fl.Update{
		{ClientID: 0, Delta: []float64{0.9, 1.1, 1, 0.95}},  // aligned
		{ClientID: 1, Delta: []float64{-1, -1, -1, -1}},     // reversed
		{ClientID: 2, Delta: []float64{0.5, 0.4, 0.6, 0.5}}, // aligned, smaller
	}
	res, err := z.Filter(updates, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[0] != fl.Accept || res.Decisions[2] != fl.Accept {
		t.Errorf("aligned updates rejected: %v", res.Decisions)
	}
	if res.Decisions[1] != fl.Reject {
		t.Errorf("reversed update accepted")
	}
	if z.Name() != "zeno++" {
		t.Error("name")
	}
}

func TestZenoPPOracleError(t *testing.T) {
	z, _ := NewZenoPP(fixedOracle{err: errors.New("no data")}, 1, 0.001, 0)
	if _, err := z.Filter([]*fl.Update{{Delta: []float64{1}}}, 0); err == nil {
		t.Error("oracle error swallowed")
	}
}

func TestAFLGuardBounds(t *testing.T) {
	if _, err := NewAFLGuard(nil, 0); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, err := NewAFLGuard(fixedOracle{}, -0.5); err == nil {
		t.Error("negative lambda accepted")
	}
	ref := []float64{2, 0}
	a, err := NewAFLGuard(fixedOracle{delta: ref}, 1)
	if err != nil {
		t.Fatal(err)
	}
	updates := []*fl.Update{
		{ClientID: 0, Delta: []float64{2.5, 0.5}}, // within ||u - ref|| <= ||ref||
		{ClientID: 1, Delta: []float64{-2, 0}},    // deviation 4 > 2
	}
	res, err := a.Filter(updates, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions[0] != fl.Accept {
		t.Error("near update rejected")
	}
	if res.Decisions[1] != fl.Reject {
		t.Error("far update accepted")
	}
	if a.Name() != "aflguard" {
		t.Error("name")
	}
}

func TestAFLGuardEmpty(t *testing.T) {
	a, _ := NewAFLGuard(fixedOracle{delta: []float64{1}}, 0)
	res, err := a.Filter(nil, 0)
	if err != nil || len(res.Decisions) != 0 {
		t.Errorf("empty: %v %v", res, err)
	}
}

func TestMedianOfHelper(t *testing.T) {
	if got := medianOf([]float64{3, 1, 2}); got != 2 {
		t.Errorf("medianOf odd = %v", got)
	}
	if got := medianOf([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("medianOf even = %v", got)
	}
	if got := medianOf(nil); got != 0 {
		t.Errorf("medianOf empty = %v", got)
	}
}
