package defense

import (
	"math"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

func TestBucketingValidation(t *testing.T) {
	if _, err := NewBucketing(0, nil, 1); err == nil {
		t.Error("bucket size 0 accepted")
	}
	b, err := NewBucketing(2, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Combine(nil, fl.AggregatorConfig{}); err == nil {
		t.Error("empty combine accepted")
	}
	if b.Name() == "" {
		t.Error("empty name")
	}
}

func TestBucketingPreservesMean(t *testing.T) {
	// With a mean inner combiner and uniform weights, bucketing must keep
	// the overall mean (up to bucket-size weighting effects with equal
	// NumSamples and full buckets).
	updates := []*fl.Update{
		{Delta: []float64{0, 0}, NumSamples: 1},
		{Delta: []float64{2, 4}, NumSamples: 1},
		{Delta: []float64{4, 8}, NumSamples: 1},
		{Delta: []float64{6, 12}, NumSamples: 1},
	}
	b, _ := NewBucketing(2, nil, 3)
	out, err := b.Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-3) > 1e-9 || math.Abs(out[1]-6) > 1e-9 {
		t.Errorf("bucketed mean = %v, want [3 6]", out)
	}
}

func TestBucketingReducesPoisonLeverage(t *testing.T) {
	// One extreme poison among 8: bucketing into pairs then taking the
	// coordinate-wise median must land near the benign value, while a
	// plain median over mixed buckets is still robust. Compare against the
	// plain mean which the poison drags far away.
	updates := make([]*fl.Update, 8)
	for i := range updates {
		updates[i] = &fl.Update{Delta: []float64{1}, NumSamples: 1}
	}
	updates[7] = &fl.Update{Delta: []float64{-1000}, NumSamples: 1}

	mean, err := (fl.MeanCombiner{}).Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewBucketing(2, Median{}, 5)
	robust, err := b.Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(robust[0]-1) > 501 {
		t.Errorf("bucketed median = %v, want near benign 1", robust[0])
	}
	if math.Abs(robust[0]-1) >= math.Abs(mean[0]-1) {
		t.Errorf("bucketing+median (%v) should beat plain mean (%v)", robust[0], mean[0])
	}
}

func TestBucketingRejectsMixedDimensions(t *testing.T) {
	b, _ := NewBucketing(2, nil, 1)
	_, err := b.Combine([]*fl.Update{
		{Delta: []float64{1, 2}, NumSamples: 1},
		{Delta: []float64{1}, NumSamples: 1},
	}, fl.AggregatorConfig{})
	if err == nil {
		t.Error("mixed dimensions accepted")
	}
}

func TestNNMValidation(t *testing.T) {
	if _, err := NewNNM(0, nil); err == nil {
		t.Error("neighbors 0 accepted")
	}
	m, err := NewNNM(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Combine(nil, fl.AggregatorConfig{}); err == nil {
		t.Error("empty combine accepted")
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestNNMMixesTowardNeighbors(t *testing.T) {
	// Three tight benign updates and one far poison. After mixing with one
	// nearest neighbour, the poison's influence on the final mean shrinks:
	// its mixed vector is pulled toward the benign cluster.
	updates := []*fl.Update{
		{ClientID: 0, Delta: []float64{1, 0}, NumSamples: 1},
		{ClientID: 1, Delta: []float64{1.1, 0}, NumSamples: 1},
		{ClientID: 2, Delta: []float64{0.9, 0}, NumSamples: 1},
		{ClientID: 3, Delta: []float64{100, 0}, NumSamples: 1},
	}
	plain, err := (fl.MeanCombiner{}).Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewNNM(1, nil)
	mixed, err := m.Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	benignMean := 1.0
	if math.Abs(mixed[0]-benignMean) >= math.Abs(plain[0]-benignMean) {
		t.Errorf("NNM result %v not closer to benign mean than plain mean %v", mixed[0], plain[0])
	}
}

func TestNNMNeighborsClamped(t *testing.T) {
	// Neighbors larger than n-1 must not panic; it becomes full averaging.
	updates := []*fl.Update{
		{Delta: []float64{0}, NumSamples: 1},
		{Delta: []float64{2}, NumSamples: 1},
	}
	m, _ := NewNNM(10, nil)
	out, err := m.Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 1e-9 {
		t.Errorf("clamped NNM = %v, want 1", out[0])
	}
}

func TestNNMDeterministic(t *testing.T) {
	updates := []*fl.Update{
		{Delta: []float64{1, 2}, NumSamples: 1},
		{Delta: []float64{2, 1}, NumSamples: 1},
		{Delta: []float64{3, 3}, NumSamples: 1},
	}
	m, _ := NewNNM(1, nil)
	a, err := m.Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Combine(updates, fl.AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.EqualApprox(a, b, 0) {
		t.Error("NNM not deterministic")
	}
}

func TestNNMDoesNotMutateInputs(t *testing.T) {
	updates := []*fl.Update{
		{Delta: []float64{1, 2}, NumSamples: 1},
		{Delta: []float64{5, 6}, NumSamples: 1},
	}
	m, _ := NewNNM(1, nil)
	if _, err := m.Combine(updates, fl.AggregatorConfig{}); err != nil {
		t.Fatal(err)
	}
	if updates[0].Delta[0] != 1 || updates[1].Delta[0] != 5 {
		t.Error("NNM mutated input deltas")
	}
}
