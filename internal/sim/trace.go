package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceRecord is one aggregation round's structured trace entry, emitted
// as a JSON line when Config.TraceWriter is set — the raw material for
// custom analyses and plots beyond the built-in experiments.
type TraceRecord struct {
	// Round is the aggregation round (1-based).
	Round int `json:"round"`
	// Time is the simulated wall-clock time of the aggregation.
	Time float64 `json:"time"`
	// BatchSize is the number of updates presented to the filter.
	BatchSize int `json:"batch_size"`
	// Accepted, Deferred, Rejected count the filter's decisions.
	Accepted int `json:"accepted"`
	Deferred int `json:"deferred"`
	Rejected int `json:"rejected"`
	// MaliciousInBatch is the ground-truth attacker count in the batch.
	MaliciousInBatch int `json:"malicious_in_batch"`
	// MaliciousCaught is the number of attacker updates rejected.
	MaliciousCaught int `json:"malicious_caught"`
	// StalenessHistogram maps staleness level to update count.
	StalenessHistogram map[int]int `json:"staleness_histogram"`
}

// writeTrace emits one trace record when tracing is enabled.
func (s *Simulation) writeTrace(w io.Writer, rec TraceRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sim: trace: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("sim: trace: %w", err)
	}
	return nil
}
