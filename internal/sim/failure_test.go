package sim

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/core"
)

func TestFailureInjectionValidation(t *testing.T) {
	cfg := tinyConfig()
	cfg.DropoutRate = 1
	if _, err := New(cfg, nil, nil); err == nil {
		t.Error("DropoutRate=1 accepted")
	}
	cfg = tinyConfig()
	cfg.CrashRate = -0.1
	if _, err := New(cfg, nil, nil); err == nil {
		t.Error("negative CrashRate accepted")
	}
}

func TestDropoutLosesUpdatesButConverges(t *testing.T) {
	cfg := tinyConfig()
	cfg.DropoutRate = 0.3
	cfg.NumMalicious = 0
	s, err := New(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LostUpdates == 0 {
		t.Error("30% dropout produced no lost updates")
	}
	if res.Rounds != cfg.Rounds {
		t.Errorf("rounds = %d, want %d despite dropout", res.Rounds, cfg.Rounds)
	}
	if res.FinalAccuracy < 0.6 {
		t.Errorf("accuracy under dropout = %v, want >= 0.6", res.FinalAccuracy)
	}
}

func TestCrashesDelayButDoNotDeadlock(t *testing.T) {
	cfg := tinyConfig()
	cfg.CrashRate = 0.2
	s, err := New(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Error("20% crash rate produced no crashes")
	}
	if res.Rounds != cfg.Rounds {
		t.Errorf("rounds = %d, want %d despite crashes", res.Rounds, cfg.Rounds)
	}

	// Crashes stretch simulated time relative to a failure-free run.
	clean, err := New(tinyConfig(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SimTime <= cleanRes.SimTime {
		t.Logf("crash run time %v <= clean run time %v (possible with few crashes)", res.SimTime, cleanRes.SimTime)
	}
}

func TestFilterSurvivesFailureInjection(t *testing.T) {
	cfg := tinyConfig()
	cfg.DropoutRate = 0.2
	cfg.CrashRate = 0.1
	cfg.NumMalicious = 4
	cfg.Attack = attack.Config{Name: attack.GDName, Scale: 2}
	cfg.Rounds = 8
	af, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, af, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != cfg.Rounds {
		t.Errorf("rounds = %d under combined failures", res.Rounds)
	}
	if res.Detection.TP == 0 {
		t.Error("filter caught nothing under failure injection")
	}
}

func TestAdaptiveLIERunsInSimulator(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumMalicious = 4
	cfg.Attack = attack.Config{Name: attack.AdaptiveLIEName}
	af, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, af, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AttackName != attack.AdaptiveLIEName {
		t.Errorf("attack name = %q", res.AttackName)
	}
	if res.FinalAccuracy <= 0 {
		t.Error("no accuracy recorded")
	}
}
