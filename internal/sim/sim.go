// Package sim implements a deterministic event-driven simulator for
// asynchronous federated learning with FedBuff-style buffered aggregation,
// reproducing the scheduling semantics of the paper's PLATO testbed:
// clients with Zipf-distributed speeds train continuously, the server
// aggregates whenever the buffer reaches the aggregation goal, stale
// updates beyond the server limit are discarded, and malicious clients
// collude to replace their honest updates with crafted poison right before
// aggregation.
package sim

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/stats"

	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// LatencyModel names.
const (
	LatencyZipf      = "zipf"
	LatencyUniform   = "uniform"
	LatencyLogNormal = "lognormal"
)

// Config describes one simulated AFL deployment. Defaults (selected by
// Default) mirror the paper's Section 5.1 settings.
type Config struct {
	// NumClients is the client population (paper: 100).
	NumClients int
	// NumMalicious clients are controlled by the attacker (paper: 20).
	NumMalicious int
	// AggregationGoal is the buffer size that triggers aggregation
	// (paper: 40).
	AggregationGoal int
	// StalenessLimit is the maximum tolerated staleness (paper: 20);
	// 0 disables the limit.
	StalenessLimit int
	// Rounds is the number of server aggregations to run.
	Rounds int

	// Data configures the synthetic dataset standing in for the paper's
	// image corpora.
	Data dataset.SyntheticConfig
	// PartitionAlpha is the Dirichlet concentration for non-IID partitions
	// (paper default 0.1); <= 0 selects IID partitioning.
	PartitionAlpha float64
	// PartitionSize fixes each client's local dataset size, mirroring the
	// paper's Table 1 (every client trains on the same number of samples,
	// with the Dirichlet draw shaping only the label mix). Zero selects
	// TrainSize / NumClients.
	PartitionSize int

	// Model configures the trained classifier.
	Model model.Config
	// Trainer configures client local optimization.
	Trainer fl.TrainerConfig
	// Aggregator configures server aggregation weighting.
	Aggregator fl.AggregatorConfig

	// LatencyModel selects the client speed distribution.
	LatencyModel string
	// ZipfS is the Zipf exponent for client speeds (paper: 1.2; 2.5 in the
	// speed-heterogeneity study).
	ZipfS float64

	// Attack configures the poisoning attack mounted by malicious clients.
	Attack attack.Config

	// DropoutRate is the probability that a finished update is lost in
	// transit (the client restarts training regardless) — failure
	// injection for robustness testing. 0 disables.
	DropoutRate float64
	// CrashRate is the probability that a client crashes after finishing
	// a task; a crashed client stays offline for roughly ten task
	// durations before rejoining. 0 disables.
	CrashRate float64

	// EvalEvery evaluates test accuracy every EvalEvery rounds (0 = final
	// round only). The final round is always evaluated.
	EvalEvery int
	// TraceWriter, when non-nil, receives one JSON TraceRecord line per
	// aggregation round.
	TraceWriter io.Writer
	// OracleShardFraction, when positive, reserves this fraction of the
	// training data as a clean server-side shard for oracle-based defenses
	// (Zeno++/AFLGuard). The shard is removed from client partitions.
	OracleShardFraction float64

	// Seed drives every random choice in the simulation.
	Seed int64
}

// Default returns the paper's default configuration for the given dataset
// preset name.
func Default(preset string) (Config, error) {
	data, err := dataset.Preset(preset)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		NumClients:      100,
		NumMalicious:    20,
		AggregationGoal: 40,
		StalenessLimit:  20,
		Rounds:          30,
		Data:            data,
		PartitionAlpha:  0.1,
		LatencyModel:    LatencyZipf,
		ZipfS:           1.2,
		EvalEvery:       0,
		Seed:            1,
	}
	cfg.Model, cfg.Trainer = PresetModelAndTrainer(preset, data)
	return cfg, nil
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.NumClients < 1:
		return fmt.Errorf("sim: NumClients = %d, need >= 1", c.NumClients)
	case c.NumMalicious < 0 || c.NumMalicious > c.NumClients:
		return fmt.Errorf("sim: NumMalicious = %d, need [0, NumClients]", c.NumMalicious)
	case c.AggregationGoal < 1 || c.AggregationGoal > c.NumClients:
		return fmt.Errorf("sim: AggregationGoal = %d, need [1, NumClients]", c.AggregationGoal)
	case c.Rounds < 1:
		return fmt.Errorf("sim: Rounds = %d, need >= 1", c.Rounds)
	case c.StalenessLimit < 0:
		return fmt.Errorf("sim: StalenessLimit = %d, need >= 0", c.StalenessLimit)
	case c.OracleShardFraction < 0 || c.OracleShardFraction >= 1:
		return fmt.Errorf("sim: OracleShardFraction = %v, need [0, 1)", c.OracleShardFraction)
	case c.PartitionSize < 0:
		return fmt.Errorf("sim: PartitionSize = %d, need >= 0", c.PartitionSize)
	case c.DropoutRate < 0 || c.DropoutRate >= 1:
		return fmt.Errorf("sim: DropoutRate = %v, need [0, 1)", c.DropoutRate)
	case c.CrashRate < 0 || c.CrashRate >= 1:
		return fmt.Errorf("sim: CrashRate = %v, need [0, 1)", c.CrashRate)
	}
	switch c.LatencyModel {
	case LatencyZipf, LatencyUniform, LatencyLogNormal, "":
	default:
		return fmt.Errorf("sim: unknown LatencyModel %q", c.LatencyModel)
	}
	if (c.LatencyModel == LatencyZipf || c.LatencyModel == "") && c.ZipfS <= 0 {
		return fmt.Errorf("sim: ZipfS = %v, need > 0 for Zipf latency", c.ZipfS)
	}
	return nil
}

// RoundPoint is one accuracy evaluation along the simulation.
type RoundPoint struct {
	// Round is the aggregation round index (1-based; round 0 is the
	// initial model).
	Round int
	// Time is the simulated wall-clock time of the aggregation.
	Time float64
	// Accuracy is the global model's test accuracy.
	Accuracy float64
	// Loss is the global model's mean test loss.
	Loss float64
}

// Result summarizes a finished simulation.
type Result struct {
	// FinalAccuracy is the test accuracy of the final global model.
	FinalAccuracy float64
	// FinalLoss is the mean test loss of the final global model.
	FinalLoss float64
	// History holds intermediate evaluations (per Config.EvalEvery).
	History []RoundPoint
	// Detection aggregates the filter's decisions against ground truth
	// over all rounds ("flagged" = rejected).
	Detection stats.Confusion
	// Accepted, Deferred, Rejected count filter decisions over all rounds.
	Accepted, Deferred, Rejected int
	// DroppedStale counts updates discarded for exceeding the staleness
	// limit (before filtering).
	DroppedStale int
	// LostUpdates counts updates lost to injected transit failures.
	LostUpdates int
	// Crashes counts injected client crashes.
	Crashes int
	// MeanStaleness is the average staleness of updates reaching the
	// filter.
	MeanStaleness float64
	// Rounds is the number of aggregations performed.
	Rounds int
	// SimTime is the final simulated time.
	SimTime float64
	// FilterName and AttackName identify the configuration.
	FilterName string
	AttackName string
}

// event is a client completing local training.
type event struct {
	time     float64
	seq      int // tie-breaker for determinism
	clientID int
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !vecmath.ExactEqual(q[i].time, q[j].time) {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// client is one simulated device.
type client struct {
	id          int
	data        *dataset.Dataset
	latency     float64
	malicious   bool
	baseVersion int // global model version it is currently training from
	rng         *rand.Rand
}

// Simulation is a fully-constructed AFL run. Build with New, execute with
// Run.
type Simulation struct {
	cfg      Config
	filter   fl.Filter
	combiner fl.Combiner
	atk      attack.Attack

	clients   []*client
	train     *dataset.Dataset
	test      *dataset.Dataset
	rootShard *dataset.Dataset

	global    []float64
	proto     model.Model
	version   int
	snapshots map[int][]float64

	rng    *rand.Rand
	jitter *rand.Rand
}

// New builds a simulation. filter may be nil (pass-through / FedBuff);
// combiner may be nil (weighted mean).
func New(cfg Config, filter fl.Filter, combiner fl.Combiner) (*Simulation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if filter == nil {
		filter = fl.Passthrough{}
	}
	if combiner == nil {
		combiner = fl.MeanCombiner{}
	}
	atk, err := attack.New(cfg.Attack)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.LatencyModel == "" {
		cfg.LatencyModel = LatencyZipf
	}

	rng := randx.New(cfg.Seed)

	// Data: generate, carve the optional clean server shard, partition.
	dataCfg := cfg.Data
	if dataCfg.Seed == 0 {
		dataCfg.Seed = cfg.Seed
	}
	train, test, err := dataset.GenerateSynthetic(dataCfg)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s := &Simulation{
		cfg:       cfg,
		filter:    filter,
		combiner:  combiner,
		atk:       atk,
		train:     train,
		test:      test,
		snapshots: make(map[int][]float64),
		rng:       rng,
		jitter:    randx.Split(rng),
	}

	clientData := train
	if cfg.OracleShardFraction > 0 {
		shardSize := int(float64(train.Len()) * cfg.OracleShardFraction)
		if shardSize < 1 {
			shardSize = 1
		}
		perm := rng.Perm(train.Len())
		s.rootShard = train.Subset(perm[:shardSize])
		clientData = train.Subset(perm[shardSize:])
	}

	partSize := cfg.PartitionSize
	if partSize == 0 {
		partSize = clientData.Len() / cfg.NumClients
		if partSize < 1 {
			partSize = 1
		}
	}
	var parts []*dataset.Dataset
	if cfg.PartitionAlpha > 0 {
		parts, err = dataset.PartitionDirichletFixedSize(clientData, cfg.NumClients, partSize, cfg.PartitionAlpha, randx.Split(rng))
	} else {
		parts, err = dataset.PartitionIIDFixedSize(clientData, cfg.NumClients, partSize, randx.Split(rng))
	}
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	// Model.
	modelCfg := cfg.Model
	if modelCfg.Seed == 0 {
		modelCfg.Seed = cfg.Seed
	}
	s.proto, err = model.New(modelCfg)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s.global = make([]float64, s.proto.NumParams())
	s.proto.Params(s.global)
	s.snapshots[0] = append([]float64(nil), s.global...)

	// Clients: latency per device, malicious subset chosen uniformly.
	latencies, err := s.sampleLatencies(randx.Split(rng))
	if err != nil {
		return nil, err
	}
	maliciousSet := make(map[int]bool, cfg.NumMalicious)
	for _, idx := range randx.SampleWithoutReplacement(rng, cfg.NumClients, cfg.NumMalicious) {
		maliciousSet[idx] = true
	}
	s.clients = make([]*client, cfg.NumClients)
	for i := range s.clients {
		s.clients[i] = &client{
			id:        i,
			data:      parts[i],
			latency:   latencies[i],
			malicious: maliciousSet[i],
			rng:       randx.Split(rng),
		}
	}
	return s, nil
}

// sampleLatencies draws one base latency per client from the configured
// speed distribution.
func (s *Simulation) sampleLatencies(r *rand.Rand) ([]float64, error) {
	out := make([]float64, s.cfg.NumClients)
	switch s.cfg.LatencyModel {
	case LatencyZipf:
		z, err := randx.NewZipf(s.cfg.ZipfS, s.cfg.NumClients)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		for i := range out {
			// The sampled rank is the device's slowdown factor: rank 1
			// (most probable) is the fastest device; stragglers draw large
			// ranks.
			out[i] = float64(z.Sample(r))
		}
	case LatencyUniform:
		for i := range out {
			out[i] = 1 + 9*r.Float64()
		}
	case LatencyLogNormal:
		for i := range out {
			out[i] = 1 + lognormal(r, 0, 0.75)
		}
	}
	return out, nil
}

func lognormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}
