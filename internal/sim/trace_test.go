package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/attack"
)

func TestTraceWriterEmitsOneRecordPerRound(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig()
	cfg.TraceWriter = &buf
	cfg.NumMalicious = 4
	cfg.Attack = attack.Config{Name: attack.GDName}
	s, err := New(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	scanner := bufio.NewScanner(&buf)
	var records []TraceRecord
	for scanner.Scan() {
		var rec TraceRecord
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			t.Fatalf("invalid trace line: %v", err)
		}
		records = append(records, rec)
	}
	if len(records) != cfg.Rounds {
		t.Fatalf("got %d trace records, want %d", len(records), cfg.Rounds)
	}
	for i, rec := range records {
		if rec.Round != i+1 {
			t.Errorf("record %d round = %d", i, rec.Round)
		}
		if rec.BatchSize < cfg.AggregationGoal {
			t.Errorf("record %d batch size %d below goal", i, rec.BatchSize)
		}
		if rec.Accepted+rec.Deferred+rec.Rejected != rec.BatchSize {
			t.Errorf("record %d decisions don't sum to batch size", i)
		}
		total := 0
		for _, c := range rec.StalenessHistogram {
			total += c
		}
		if total != rec.BatchSize {
			t.Errorf("record %d staleness histogram sums to %d, want %d", i, total, rec.BatchSize)
		}
		if rec.MaliciousCaught > rec.MaliciousInBatch {
			t.Errorf("record %d caught more than present", i)
		}
	}
	// Time must be non-decreasing across rounds.
	for i := 1; i < len(records); i++ {
		if records[i].Time < records[i-1].Time {
			t.Error("trace times decrease")
		}
	}
}
