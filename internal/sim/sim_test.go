package sim

import (
	"math"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/defense"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/optim"
)

// tinyConfig returns a fast configuration for unit tests: a small client
// population on an easy synthetic task.
func tinyConfig() Config {
	return Config{
		NumClients:      20,
		NumMalicious:    4,
		AggregationGoal: 8,
		StalenessLimit:  10,
		Rounds:          6,
		Data: dataset.SyntheticConfig{
			Name: "tiny", NumClasses: 4, Dim: 10,
			TrainSize: 2000, TestSize: 400,
			Separation: 4, Noise: 1, Seed: 7,
		},
		PartitionAlpha: 0.5,
		PartitionSize:  60,
		Model:          model.Config{Arch: model.ArchLinear, InputDim: 10, NumClasses: 4},
		Trainer: fl.TrainerConfig{
			Epochs: 2, BatchSize: 16,
			Optim: optim.Config{Name: optim.SGDName, LR: 0.05, Momentum: 0.9},
		},
		LatencyModel: LatencyZipf,
		ZipfS:        1.2,
		Seed:         3,
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no clients", func(c *Config) { c.NumClients = 0 }},
		{"too many malicious", func(c *Config) { c.NumMalicious = c.NumClients + 1 }},
		{"zero goal", func(c *Config) { c.AggregationGoal = 0 }},
		{"goal over population", func(c *Config) { c.AggregationGoal = c.NumClients + 1 }},
		{"zero rounds", func(c *Config) { c.Rounds = 0 }},
		{"negative staleness", func(c *Config) { c.StalenessLimit = -1 }},
		{"bad latency model", func(c *Config) { c.LatencyModel = "quantum" }},
		{"zipf without s", func(c *Config) { c.ZipfS = 0 }},
		{"oracle fraction 1", func(c *Config) { c.OracleShardFraction = 1 }},
		{"negative partition size", func(c *Config) { c.PartitionSize = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig()
			tc.mutate(&cfg)
			if _, err := New(cfg, nil, nil); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestDefaultConfigsAreValid(t *testing.T) {
	for _, preset := range dataset.PresetNames() {
		cfg, err := Default(preset)
		if err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: default config invalid: %v", preset, err)
		}
		if cfg.NumClients != 100 || cfg.AggregationGoal != 40 || cfg.StalenessLimit != 20 {
			t.Errorf("%s: defaults don't match the paper's Section 5.1", preset)
		}
	}
	if _, err := Default("svhn"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestRunImprovesAccuracy(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumMalicious = 0
	s, err := New(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.8 {
		t.Errorf("final accuracy = %v, want >= 0.8 on an easy task", res.FinalAccuracy)
	}
	if res.Rounds != cfg.Rounds {
		t.Errorf("rounds = %d, want %d", res.Rounds, cfg.Rounds)
	}
	if res.SimTime <= 0 {
		t.Errorf("sim time = %v, want > 0", res.SimTime)
	}
	if res.FilterName != "fedbuff" || res.AttackName != "none" {
		t.Errorf("names: %q %q", res.FilterName, res.AttackName)
	}
	if len(res.History) == 0 {
		t.Error("history empty")
	}
	last := res.History[len(res.History)-1]
	if last.Round != cfg.Rounds || last.Accuracy != res.FinalAccuracy {
		t.Errorf("final history point mismatch: %+v", last)
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() *Result {
		s, err := New(tinyConfig(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Errorf("same seed, different accuracy: %v vs %v", a.FinalAccuracy, b.FinalAccuracy)
	}
	if a.SimTime != b.SimTime {
		t.Errorf("same seed, different sim time")
	}
	if a.Accepted != b.Accepted || a.Rejected != b.Rejected {
		t.Errorf("same seed, different decision counts")
	}
}

func TestRunSeedChangesOutcome(t *testing.T) {
	cfg := tinyConfig()
	s1, _ := New(cfg, nil, nil)
	cfg.Seed = 99
	s2, _ := New(cfg, nil, nil)
	r1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.FinalAccuracy == r2.FinalAccuracy && r1.SimTime == r2.SimTime {
		t.Error("different seeds produced identical runs")
	}
}

func TestGDAttackDegradesAccuracy(t *testing.T) {
	clean := tinyConfig()
	clean.NumMalicious = 0
	attacked := tinyConfig()
	attacked.NumMalicious = 6
	attacked.Attack = attack.Config{Name: attack.GDName, Scale: 2}

	sClean, _ := New(clean, nil, nil)
	rClean, err := sClean.Run()
	if err != nil {
		t.Fatal(err)
	}
	sAtk, _ := New(attacked, nil, nil)
	rAtk, err := sAtk.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rAtk.FinalAccuracy >= rClean.FinalAccuracy {
		t.Errorf("GD attack did not degrade accuracy: %v vs clean %v", rAtk.FinalAccuracy, rClean.FinalAccuracy)
	}
}

func TestAsyncFilterDetectsGD(t *testing.T) {
	cfg := tinyConfig()
	cfg.Rounds = 10
	cfg.NumMalicious = 5
	cfg.Attack = attack.Config{Name: attack.GDName, Scale: 2}
	af, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, af, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Detection.TP == 0 {
		t.Error("AsyncFilter never rejected a malicious update under a scaled GD attack")
	}
	if res.Detection.Precision() < 0.5 {
		t.Errorf("detection precision = %v, want >= 0.5", res.Detection.Precision())
	}
}

func TestEvalEveryRecordsHistory(t *testing.T) {
	cfg := tinyConfig()
	cfg.EvalEvery = 2
	s, _ := New(cfg, nil, nil)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 2 and 4 plus the final round 6.
	if len(res.History) != 3 {
		t.Fatalf("history has %d points, want 3: %+v", len(res.History), res.History)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Round <= res.History[i-1].Round {
			t.Error("history rounds not increasing")
		}
	}
}

func TestStalenessLimitDropsUpdates(t *testing.T) {
	cfg := tinyConfig()
	cfg.StalenessLimit = 1
	cfg.Rounds = 8
	s, _ := New(cfg, nil, nil)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedStale == 0 {
		t.Error("staleness limit 1 with Zipf stragglers should drop updates")
	}
	if res.MeanStaleness > 1 {
		t.Errorf("mean staleness %v exceeds the limit", res.MeanStaleness)
	}
}

func TestLatencyModels(t *testing.T) {
	for _, lm := range []string{LatencyZipf, LatencyUniform, LatencyLogNormal} {
		cfg := tinyConfig()
		cfg.LatencyModel = lm
		s, err := New(cfg, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", lm, err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatalf("%s: %v", lm, err)
		}
	}
}

func TestMaliciousClientsCount(t *testing.T) {
	cfg := tinyConfig()
	cfg.NumMalicious = 7
	s, err := New(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.MaliciousClients()); got != 7 {
		t.Errorf("malicious clients = %d, want 7", got)
	}
}

func TestOracleRequiresShard(t *testing.T) {
	s, _ := New(tinyConfig(), nil, nil)
	if _, err := s.Oracle(); err == nil {
		t.Error("Oracle() without shard succeeded")
	}
}

func TestOracleBackedDefenses(t *testing.T) {
	cfg := tinyConfig()
	cfg.OracleShardFraction = 0.05
	cfg.Rounds = 4
	s, err := New(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := s.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := oracle.ReferenceDelta(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("empty reference delta")
	}
	// Cached second call returns the same slice content.
	ref2, err := oracle.ReferenceDelta(0)
	if err != nil {
		t.Fatal(err)
	}
	if &ref[0] != &ref2[0] {
		t.Error("oracle did not cache the reference delta")
	}

	// A full run with Zeno++ plugged in must work end to end. The filter
	// is wired to its own simulation's oracle, as the benches do it.
	simZeno, err := New(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	zenoOracle, err := simZeno.Oracle()
	if err != nil {
		t.Fatal(err)
	}
	z, err := defense.NewZenoPP(zenoOracle, 1, 0.001, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := New(cfg, z, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run()
	if err != nil {
		t.Fatalf("Zeno++ run failed: %v", err)
	}
	if math.IsNaN(res.FinalAccuracy) {
		t.Error("NaN accuracy")
	}
}

func TestCombinerInjection(t *testing.T) {
	cfg := tinyConfig()
	med := defense.Median{}
	s, err := New(cfg, nil, med)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy <= 0.5 {
		t.Errorf("median combiner accuracy = %v, want > 0.5", res.FinalAccuracy)
	}
}

func TestRoundObserverReceivesCallbacks(t *testing.T) {
	cfg := tinyConfig()
	obs := &observingFilter{}
	s, err := New(cfg, obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.observed != cfg.Rounds {
		t.Errorf("ObserveRound called %d times, want %d", obs.observed, cfg.Rounds)
	}
	if obs.filtered == 0 {
		t.Error("Filter never called")
	}
}

type observingFilter struct {
	filtered int
	observed int
}

func (o *observingFilter) Name() string { return "observer" }
func (o *observingFilter) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	o.filtered++
	return fl.AcceptAll(len(updates)), nil
}
func (o *observingFilter) ObserveRound(round int, global []float64, accepted []*fl.Update) {
	o.observed++
}

func TestGlobalParamsCopy(t *testing.T) {
	s, _ := New(tinyConfig(), nil, nil)
	p := s.GlobalParams()
	p[0] += 1000
	q := s.GlobalParams()
	if q[0] == p[0] {
		t.Error("GlobalParams returned shared storage")
	}
	if s.Version() != 0 {
		t.Errorf("fresh simulation version = %d", s.Version())
	}
}

func TestDeferredUpdatesRequeue(t *testing.T) {
	// A filter that defers everything once would starve aggregation; defer
	// half to exercise the requeue path.
	cfg := tinyConfig()
	f := &deferHalf{}
	s, err := New(cfg, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferred == 0 {
		t.Error("no deferrals recorded")
	}
	if res.Rounds != cfg.Rounds {
		t.Errorf("rounds = %d, want %d", res.Rounds, cfg.Rounds)
	}
}

type deferHalf struct{}

func (deferHalf) Name() string { return "defer-half" }
func (deferHalf) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	res := fl.AcceptAll(len(updates))
	for i := range res.Decisions {
		if i%2 == 1 {
			res.Decisions[i] = fl.Defer
		}
	}
	return res, nil
}
