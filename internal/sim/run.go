package sim

import (
	"container/heap"
	"fmt"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/optim"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// PresetModelAndTrainer returns the model architecture and trainer
// configuration the paper's Table 1 assigns to each dataset: a LeNet-5
// stand-in (linear softmax) with SGD+momentum for MNIST/FashionMNIST, and
// a VGG-16 stand-in (MLP) with Adam for CIFAR-10/CINIC-10. Local epochs
// and the Adam learning rate are scaled down from Table 1 (5 epochs, lr
// 0.01) to 2 epochs / lr 0.003: the synthetic substrate converges orders
// of magnitude faster than the paper's image corpora, and keeping the
// original budget over-drifts the local models.
func PresetModelAndTrainer(preset string, data dataset.SyntheticConfig) (model.Config, fl.TrainerConfig) {
	switch preset {
	case dataset.CIFAR10, dataset.CINIC10:
		return model.Config{
				Arch:       model.ArchMLP,
				InputDim:   data.Dim,
				NumClasses: data.NumClasses,
				Hidden:     []int{32},
			}, fl.TrainerConfig{
				Epochs:    3,
				BatchSize: 128,
				Optim:     optim.Config{Name: optim.AdamName, LR: 0.01},
			}
	default:
		return model.Config{
				Arch:       model.ArchLinear,
				InputDim:   data.Dim,
				NumClasses: data.NumClasses,
			}, fl.TrainerConfig{
				Epochs:    2,
				BatchSize: 32,
				Optim:     optim.Config{Name: optim.SGDName, LR: 0.01, Momentum: 0.9},
			}
	}
}

// Run executes the simulation to completion.
func (s *Simulation) Run() (*Result, error) {
	res := &Result{
		FilterName: s.filter.Name(),
		AttackName: s.atk.Name(),
	}

	buffer, err := fl.NewBuffer(s.cfg.AggregationGoal, s.cfg.StalenessLimit)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	// Prime the event queue: every client starts training at t=0 from
	// version 0 (the paper's sampler selects all clients each round).
	queue := &eventQueue{}
	heap.Init(queue)
	seq := 0
	schedule := func(c *client, now float64) {
		c.baseVersion = s.version
		jitter := 0.9 + 0.2*s.jitter.Float64()
		delay := c.latency * jitter
		if s.cfg.CrashRate > 0 && s.jitter.Float64() < s.cfg.CrashRate {
			// Injected crash: the device goes dark for roughly ten task
			// durations before rejoining with a fresh model.
			res.Crashes++
			delay += 10 * c.latency
		}
		heap.Push(queue, event{time: now + delay, seq: seq, clientID: c.id})
		seq++
	}
	for _, c := range s.clients {
		schedule(c, 0)
	}

	var stalenessSum float64
	var stalenessCount int
	now := 0.0

	for s.version < s.cfg.Rounds {
		if queue.Len() == 0 {
			return nil, fmt.Errorf("sim: event queue drained before round %d", s.version)
		}
		ev := heap.Pop(queue).(event)
		now = ev.time
		c := s.clients[ev.clientID]

		staleness := s.version - c.baseVersion
		if s.cfg.StalenessLimit > 0 && staleness > s.cfg.StalenessLimit {
			// The server would discard this update on arrival; skip the
			// (wasted) training work entirely.
			res.DroppedStale++
			schedule(c, now)
			continue
		}

		base, ok := s.snapshots[c.baseVersion]
		if !ok {
			return nil, fmt.Errorf("sim: missing snapshot for version %d", c.baseVersion)
		}
		delta, err := s.localTrain(c, base)
		if err != nil {
			return nil, fmt.Errorf("sim: client %d: %w", c.id, err)
		}
		if s.cfg.DropoutRate > 0 && s.jitter.Float64() < s.cfg.DropoutRate {
			// Injected transit failure: the update never reaches the
			// server; the client starts over on the latest model.
			res.LostUpdates++
			schedule(c, now)
			continue
		}
		update := &fl.Update{
			ClientID:    c.id,
			BaseVersion: c.baseVersion,
			Staleness:   staleness,
			Delta:       delta,
			NumSamples:  c.data.Len(),
		}
		if buffer.Add(update) {
			stalenessSum += float64(staleness)
			stalenessCount++
		} else {
			res.DroppedStale++
		}
		schedule(c, now)

		if !buffer.Ready() {
			continue
		}
		if err := s.aggregateRound(buffer, res, now); err != nil {
			return nil, err
		}
	}

	if stalenessCount > 0 {
		res.MeanStaleness = stalenessSum / float64(stalenessCount)
	}
	res.Rounds = s.version
	res.SimTime = now
	res.FinalAccuracy, res.FinalLoss = s.evaluate()
	if len(res.History) == 0 || res.History[len(res.History)-1].Round != s.version {
		res.History = append(res.History, RoundPoint{
			Round: s.version, Time: now,
			Accuracy: res.FinalAccuracy, Loss: res.FinalLoss,
		})
	}
	return res, nil
}

// localTrain runs one client's local optimization from the given base
// parameters and returns the honest delta.
func (s *Simulation) localTrain(c *client, base []float64) ([]float64, error) {
	m := s.proto.Clone()
	m.SetParams(base)
	return fl.LocalTrain(m, c.data, s.cfg.Trainer, c.rng)
}

// aggregateRound runs attack crafting, filtering and aggregation on the
// full buffer, advancing the global model by one version.
func (s *Simulation) aggregateRound(buffer *fl.Buffer, res *Result, now float64) error {
	updates := buffer.Drain()

	// Attack crafting: the malicious clients present in this batch collude,
	// replacing their honest deltas with crafted poison. Staleness-aware
	// (adaptive) attacks additionally receive each colluder's staleness.
	var maliciousIdx []int
	var honest [][]float64
	var staleness []int
	for i, u := range updates {
		if s.clients[u.ClientID].malicious {
			maliciousIdx = append(maliciousIdx, i)
			honest = append(honest, u.Delta)
			staleness = append(staleness, u.Staleness)
		}
	}
	if len(maliciousIdx) > 0 {
		var crafted [][]float64
		var err error
		if ga, ok := s.atk.(attack.GroupAware); ok {
			crafted, err = ga.CraftGrouped(honest, staleness, s.rng)
		} else {
			crafted, err = s.atk.Craft(honest, s.rng)
		}
		if err != nil {
			return fmt.Errorf("sim: attack crafting: %w", err)
		}
		for j, i := range maliciousIdx {
			updates[i].Delta = crafted[j]
		}
	}

	round := s.version + 1
	fres, err := s.filter.Filter(updates, round)
	if err != nil {
		return fmt.Errorf("sim: filter: %w", err)
	}
	accepted, deferred, rejected := fres.Split(updates)
	res.Accepted += len(accepted)
	res.Deferred += len(deferred)
	res.Rejected += len(rejected)
	maliciousInBatch, maliciousCaught := 0, 0
	for i, u := range updates {
		malicious := s.clients[u.ClientID].malicious
		flagged := fres.Decisions[i] == fl.Reject
		if malicious {
			maliciousInBatch++
			if flagged {
				maliciousCaught++
			}
		}
		res.Detection.Observe(malicious, flagged)
	}
	if s.cfg.TraceWriter != nil {
		hist := make(map[int]int)
		for _, u := range updates {
			hist[u.Staleness]++
		}
		if err := s.writeTrace(s.cfg.TraceWriter, TraceRecord{
			Round:              round,
			Time:               now,
			BatchSize:          len(updates),
			Accepted:           len(accepted),
			Deferred:           len(deferred),
			Rejected:           len(rejected),
			MaliciousInBatch:   maliciousInBatch,
			MaliciousCaught:    maliciousCaught,
			StalenessHistogram: hist,
		}); err != nil {
			return err
		}
	}

	if len(accepted) > 0 {
		delta, err := s.combiner.Combine(accepted, s.cfg.Aggregator)
		if err != nil {
			return fmt.Errorf("sim: combine: %w", err)
		}
		lr := s.cfg.Aggregator.ServerLR
		if vecmath.IsZero(lr) {
			lr = 1
		}
		if s.combiner.Name() == "mean" {
			// MeanCombiner already applied staleness/sample weighting and
			// the server learning rate semantics of fl.Aggregate.
			vecmath.Add(s.global, s.global, delta)
		} else {
			vecmath.AXPY(s.global, lr, delta)
		}
	}

	// Advance the version even when nothing was accepted: the round
	// happened, and staleness accounting depends on it.
	s.version++
	s.snapshots[s.version] = append([]float64(nil), s.global...)
	s.pruneSnapshots()

	buffer.Requeue(deferred)

	if obs, ok := s.filter.(fl.RoundObserver); ok {
		obs.ObserveRound(s.version, s.global, accepted)
	}

	if s.cfg.EvalEvery > 0 && s.version%s.cfg.EvalEvery == 0 && s.version < s.cfg.Rounds {
		acc, loss := s.evaluate()
		res.History = append(res.History, RoundPoint{Round: s.version, Time: now, Accuracy: acc, Loss: loss})
	}
	return nil
}

// pruneSnapshots drops model snapshots no in-flight client can still
// reference.
func (s *Simulation) pruneSnapshots() {
	oldest := s.version
	for _, c := range s.clients {
		if c.baseVersion < oldest {
			oldest = c.baseVersion
		}
	}
	for v := range s.snapshots {
		if v < oldest {
			delete(s.snapshots, v)
		}
	}
}

// evaluate returns the global model's test accuracy and loss.
func (s *Simulation) evaluate() (float64, float64) {
	m := s.proto.Clone()
	m.SetParams(s.global)
	return model.Evaluate(m, s.test)
}

// GlobalParams returns a copy of the current global parameters.
func (s *Simulation) GlobalParams() []float64 {
	return append([]float64(nil), s.global...)
}

// Version returns the current global model version.
func (s *Simulation) Version() int { return s.version }

// MaliciousClients returns the IDs of attacker-controlled clients.
func (s *Simulation) MaliciousClients() []int {
	var out []int
	for _, c := range s.clients {
		if c.malicious {
			out = append(out, c.id)
		}
	}
	return out
}

// Oracle returns a ServerOracle-compatible reference-update source backed
// by the clean server shard, or an error when the simulation was built
// without OracleShardFraction. The returned oracle trains a clone of the
// global model (at the requested version) on the clean shard with the same
// trainer configuration the clients use.
func (s *Simulation) Oracle() (*CleanShardOracle, error) {
	if s.rootShard == nil {
		return nil, fmt.Errorf("sim: no oracle shard configured (set OracleShardFraction)")
	}
	return &CleanShardOracle{sim: s, cache: make(map[int][]float64)}, nil
}

// CleanShardOracle computes trusted reference deltas from the server's
// clean data shard — the capability Zeno++ and AFLGuard assume.
type CleanShardOracle struct {
	sim   *Simulation
	cache map[int][]float64
}

// ReferenceDelta implements defense.ServerOracle.
func (o *CleanShardOracle) ReferenceDelta(baseVersion int) ([]float64, error) {
	if d, ok := o.cache[baseVersion]; ok {
		return d, nil
	}
	base, ok := o.sim.snapshots[baseVersion]
	if !ok {
		// The snapshot was pruned; fall back to the nearest retained
		// version (the oracle is only consulted for in-limit staleness, so
		// this is rare).
		base = o.sim.global
	}
	m := o.sim.proto.Clone()
	m.SetParams(base)
	delta, err := fl.LocalTrain(m, o.sim.rootShard, o.sim.cfg.Trainer, o.sim.jitter)
	if err != nil {
		return nil, fmt.Errorf("sim: oracle training: %w", err)
	}
	o.cache[baseVersion] = delta
	return delta, nil
}
