package replica

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/obsv"
	"github.com/asyncfl/asyncfilter/internal/optim"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/topology"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// The full-deployment helpers below mirror the topology package's
// failover/fault test scaffolding (package-internal there): a linear
// model over synthetic data, gradient-deviation attackers, and per-edge
// observability hubs for measuring detection quality.

func testModelConfig() model.Config {
	return model.Config{Arch: model.ArchLinear, InputDim: 8, NumClasses: 3, Seed: 1}
}

func testTrainer() fl.TrainerConfig {
	return fl.TrainerConfig{
		Epochs: 1, BatchSize: 16,
		Optim: optim.Config{Name: optim.SGDName, LR: 0.05, Momentum: 0.9},
	}
}

func testData(t *testing.T, n int) []*dataset.Dataset {
	t.Helper()
	train, _, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name: "t", NumClasses: 3, Dim: 8,
		TrainSize: 1200, TestSize: 60,
		Separation: 4, Noise: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.PartitionIIDFixedSize(train, n, 60, randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

func initialParams(t *testing.T) []float64 {
	t.Helper()
	m, err := model.New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, m.NumParams())
	m.Params(p)
	return p
}

func startClients(t *testing.T, n, malicious int, addrs []string) ([]*transport.Client, func()) {
	t.Helper()
	parts := testData(t, n)
	clients := make([]*transport.Client, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		cfg := transport.ClientConfig{
			ID:             i,
			Data:           parts[i],
			Model:          testModelConfig(),
			Trainer:        testTrainer(),
			Seed:           int64(100 + i),
			MaxRetries:     25,
			RetryBaseDelay: 5 * time.Millisecond,
			RetryMaxDelay:  100 * time.Millisecond,
		}
		if i < malicious {
			cfg.Attack = attack.Config{Name: attack.GDName, Scale: 2}
		}
		client, err := transport.NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = client
		addr := addrs[i%len(addrs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Servers are killed and closed throughout this test; client
			// errors at teardown are expected.
			_ = client.Run(addr)
		}()
	}
	return clients, wg.Wait
}

func maliciousRejectRate(t *testing.T, hubs []*obsv.Hub, malicious int) float64 {
	t.Helper()
	rejected, seen := 0, 0
	for _, hub := range hubs {
		for _, rec := range hub.Tracer.Last(0) {
			if rec.Kind != obsv.KindDecision || rec.ClientID >= malicious {
				continue
			}
			seen++
			if rec.Decision == obsv.DecisionReject {
				rejected++
			}
		}
	}
	if seen == 0 {
		t.Fatal("no malicious decisions traced")
	}
	return float64(rejected) / float64(seen)
}

func singleServerBaseline(t *testing.T, numClients, malicious int) float64 {
	t.Helper()
	hub := obsv.NewHub(0)
	server, err := transport.NewServer(transport.ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: 8,
		StalenessLimit:  10,
		Rounds:          12,
		Obsv:            hub,
	}, newFilter(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	_, wait := startClients(t, numClients, malicious, []string{lis.Addr().String()})
	select {
	case <-server.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("baseline did not finish: %+v", server.Stats())
	}
	_ = server.Close()
	wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("baseline serve: %v", err)
	}
	return maliciousRejectRate(t, []*obsv.Hub{hub}, malicious)
}

func startEdge(t *testing.T, cfg topology.EdgeConfig, filter fl.Filter) (*topology.Edge, string) {
	t.Helper()
	edge, err := topology.NewEdge(cfg, filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = edge.Serve(lis) }()
	t.Cleanup(func() { _ = edge.Close() })
	return edge, lis.Addr().String()
}

func waitVersion(t *testing.T, root *topology.Root, v int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for root.Version() < v {
		if time.Now().After(deadline) {
			t.Fatalf("root stuck at version %d < %d; stats = %+v", root.Version(), v, root.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// replNode builds a node over a fresh root with the test's standard
// deployment config.
func replNode(t *testing.T, cfg Config) (*Node, *topology.Root) {
	t.Helper()
	root, err := topology.NewRoot(topology.RootConfig{
		InitialParams: initialParams(t),
		Rounds:        100000,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(cfg, root)
	if err != nil {
		t.Fatal(err)
	}
	return node, root
}

// TestKillPrimaryUnderAttackAndFaults is the acceptance scenario for the
// replicated root: a two-edge deployment with gradient-deviation
// attackers and heavily faulted edge->root links loses its primary root
// mid-run. The standby must promote within the lease, the edges must
// find it through the relayed peer list and reconcile from their batch
// watermarks, no batch may be applied twice across the failover, and
// edge-level detection must stay within tolerance of the single-server
// baseline.
func TestKillPrimaryUnderAttackAndFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-the-primary runs full deployments")
	}
	const (
		numClients = 8
		malicious  = 2
		lease      = 500 * time.Millisecond
	)

	baseline := singleServerBaseline(t, numClients, malicious)

	// Both roots' edge-facing listeners are bound up front: their
	// addresses form the static peer list the primary relays to edges.
	lisP, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lisS, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := []string{lisP.Addr().String(), lisS.Addr().String()}

	pNode, pRoot := replNode(t, Config{
		NodeID:     0,
		ReplListen: "127.0.0.1:0",
		Peers:      peers,
		Lease:      lease,
		Seed:       1,
	})
	go func() { _ = pNode.Serve(lisP) }()
	t.Cleanup(func() { _ = pNode.Close() })

	sNode, sRoot := replNode(t, Config{
		NodeID:    1,
		Upstreams: []string{pNode.ReplAddr()},
		Peers:     peers,
		Lease:     lease,
		Seed:      2,
	})
	go func() { _ = sNode.Serve(lisS) }()
	t.Cleanup(func() { _ = sNode.Close() })

	hubs := []*obsv.Hub{obsv.NewHub(0), obsv.NewHub(0)}
	mkEdge := func(id int) topology.EdgeConfig {
		return topology.EdgeConfig{
			EdgeID:   id,
			RootAddr: peers[0],
			Server: transport.ServerConfig{
				InitialParams: initialParams(t),
				// Goal 6 = AsyncFilter's default MinBatch, so the per-edge
				// filters genuinely cluster every round.
				AggregationGoal: 6,
				StalenessLimit:  10,
				Rounds:          100000,
				Obsv:            hubs[id],
			},
			// ResetProb applies per low-level I/O op; an exchange is a
			// handful of ops, so 5% per op kills well over a third of
			// exchanges mid-flight — the "flaky link" floor this scenario
			// must survive.
			Dial: transport.FaultDialer(transport.FaultConfig{
				Seed:      int64(31 + id),
				ResetProb: 0.05,
			}),
			HeartbeatEvery:    40 * time.Millisecond,
			RetryBaseDelay:    5 * time.Millisecond,
			RetryMaxDelay:     50 * time.Millisecond,
			MaxPendingBatches: 8,
			Seed:              int64(id),
		}
	}
	edge0, addr0 := startEdge(t, mkEdge(0), newFilter(t))
	edge1, addr1 := startEdge(t, mkEdge(1), newFilter(t))
	_, wait := startClients(t, numClients, malicious, []string{addr0, addr1})

	// The deployment must make real progress through the flaky links —
	// and the edges must have learned the peer list — before the kill.
	waitVersion(t, pRoot, 6, 30*time.Second)

	killedAt := time.Now()
	atKill := sRoot.Version()
	if err := pNode.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sNode.Role() != RolePrimary {
		if time.Now().After(deadline) {
			t.Fatalf("standby never promoted: role %s, stats %+v", sNode.Role(), sNode.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Lease 500ms + watchdog granularity lease/4 + epoch persist: the
	// promotion must land within a small multiple of one lease.
	if took := time.Since(killedAt); took > 4*lease {
		t.Errorf("promotion took %v, want within ~one %v lease", took, lease)
	}
	if got := sNode.Epoch(); got != 1 {
		t.Errorf("promoted epoch = %d, want 1", got)
	}

	// Edges re-home to the promoted standby via the relayed peer list and
	// the deployment keeps converging under attack and faults.
	waitVersion(t, sRoot, atKill+6, 30*time.Second)
	if r0, r1 := edge0.Stats().UplinkRehomes, edge1.Stats().UplinkRehomes; r0+r1 == 0 {
		t.Errorf("no edge re-homed after the failover (edge0 %d, edge1 %d)", r0, r1)
	}

	_ = edge0.Close()
	_ = edge1.Close()
	_ = sNode.Close()
	wait()

	// Zero-double-count audit. Every batch the old primary applied is in
	// its commit ring; every batch the promoted standby applied itself is
	// in its own (reset at promotion). A double count across the failover
	// — the same (edge, batch) applied by both generations, or twice by
	// one — would show up as a duplicate pair.
	type pair struct {
		edge  int
		batch uint64
	}
	applied := make(map[pair]string)
	audit := func(n *Node, label string) {
		n.mu.Lock()
		defer n.mu.Unlock()
		for _, rec := range n.ring {
			p := pair{edge: rec.EdgeID, batch: rec.BatchID}
			if prev, ok := applied[p]; ok {
				t.Errorf("batch (edge %d, id %d) applied by %s AND %s — double count across failover",
					p.edge, p.batch, prev, label)
			}
			applied[p] = label
		}
	}
	audit(pNode, "old primary")
	audit(sNode, "promoted standby")
	if len(applied) == 0 {
		t.Error("audit saw no applied batches at all")
	}
	rs := sRoot.Stats()
	if rs.BatchesApplied != rs.Rounds {
		t.Errorf("standby applied %d batches at version %d — application and version must move together",
			rs.BatchesApplied, rs.Rounds)
	}
	t.Logf("failover: primary applied %d, standby mirrored to %d at kill, finished at %d (%d replayed, %d lost)",
		pRoot.Version(), atKill, sRoot.Version(), rs.BatchesReplayed, rs.BatchesLost)

	// Detection quality: the per-edge filters, despite the root failover,
	// flaky links and partitioned views, stay within tolerance of the
	// single-server filter on the same attack mix.
	twoTier := maliciousRejectRate(t, hubs, malicious)
	if twoTier < baseline-0.35 {
		t.Errorf("replicated-root malicious rejection rate %.2f fell too far below baseline %.2f", twoTier, baseline)
	}
	t.Logf("malicious rejection rate: baseline %.2f, replicated root under faults %.2f", baseline, twoTier)
}
