package replica

import "github.com/asyncfl/asyncfilter/internal/obsv"

// statMirror maps every /metrics counter of the afl_replica family to
// the Stats field it mirrors, in the transport statMirror idiom: the
// mirroring runs as an OnCollect callback so a scrape always reflects
// Node.Stats() exactly, and a reflection test asserts the table covers
// every Stats field — a counter added to Stats without a mirror entry
// (RecordsLostOnPromote and Promotions once lived only in Stats()) fails
// the build's tests, not a production debugging session.
var statMirror = []struct {
	Name string
	Get  func(st *Stats) int
}{
	{"afl_replica_records_streamed_total", func(st *Stats) int { return st.RecordsStreamed }},
	{"afl_replica_snapshots_served_total", func(st *Stats) int { return st.SnapshotsServed }},
	{"afl_replica_standby_attaches_total", func(st *Stats) int { return st.StandbyAttaches }},
	{"afl_replica_records_applied_total", func(st *Stats) int { return st.RecordsApplied }},
	{"afl_replica_snapshots_installed_total", func(st *Stats) int { return st.SnapshotsInstalled }},
	{"afl_replica_uplink_failures_total", func(st *Stats) int { return st.UplinkFailures }},
	{"afl_replica_promotions_total", func(st *Stats) int { return st.Promotions }},
	{"afl_replica_records_lost_on_promote_total", func(st *Stats) int { return st.RecordsLostOnPromote }},
	{"afl_replica_fenced_nacks_sent_total", func(st *Stats) int { return st.FencedNacksSent }},
	{"afl_replica_fenced_observed_total", func(st *Stats) int { return st.FencedObserved }},
	{"afl_replica_elections_started_total", func(st *Stats) int { return st.ElectionsStarted }},
	{"afl_replica_elections_won_total", func(st *Stats) int { return st.ElectionsWon }},
	{"afl_replica_elections_lost_total", func(st *Stats) int { return st.ElectionsLost }},
	{"afl_replica_votes_total", func(st *Stats) int { return st.VotesGranted }},
	{"afl_replica_votes_refused_total", func(st *Stats) int { return st.VotesRefused }},
}

// registerStatMirror wires the stats mirror into the node's hub. The
// collector calls n.Stats() on the scraping goroutine, so the mirrored
// counters are exactly the values Stats() returns at scrape time.
func (n *Node) registerStatMirror() {
	if n.cfg.Obsv == nil {
		return
	}
	reg := n.cfg.Obsv.Registry
	mirror := make([]*obsv.Counter, len(statMirror))
	for i, m := range statMirror {
		mirror[i] = reg.Counter(m.Name)
	}
	reg.OnCollect(func() {
		st := n.Stats()
		for i, m := range statMirror {
			mirror[i].Set(uint64(m.Get(&st)))
		}
	})
}
