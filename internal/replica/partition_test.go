package replica

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/obsv"
	"github.com/asyncfl/asyncfilter/internal/topology"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// errPartitioned is what a gated connection returns once its side of the
// network is cut.
var errPartitioned = errors.New("replica test: partitioned")

// gatedConn fails every operation once cut flips: the established
// replication sessions crossing a partition must break, not just new
// dials. (New dials while cut go through a FaultConn that resets every
// op instead — the fault-injection path the drill is required to use.)
type gatedConn struct {
	net.Conn
	cut *atomic.Bool
}

func (c *gatedConn) Read(p []byte) (int, error) {
	if c.cut.Load() {
		return 0, errPartitioned
	}
	return c.Conn.Read(p)
}

func (c *gatedConn) Write(p []byte) (int, error) {
	if c.cut.Load() {
		return 0, errPartitioned
	}
	return c.Conn.Write(p)
}

// TestSymmetricPartitionDrill is the quorum acceptance drill: a
// three-node group under gradient-deviation attackers and flaky edge
// links is partitioned 1/2. The minority node runs candidacies through
// fault-injected links that can never reach quorum and must never bind
// its edge listener, while the majority side keeps serving. After the
// partition heals and the primary is killed, exactly one survivor wins
// the election, the deployment converges on it, and the commit-ring
// audit proves no batch was double-counted across the whole sequence.
func TestSymmetricPartitionDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("partition drill runs a full deployment")
	}
	const (
		numClients = 8
		malicious  = 2
		lease      = 500 * time.Millisecond
	)

	replLis, replAddrs := bindRepl(t, 3)
	var edgeLis [3]net.Listener
	var peers []string
	for i := range edgeLis {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		edgeLis[i] = l
		peers = append(peers, l.Addr().String())
	}

	// The partition: node 2 alone on one side. Established connections
	// break through the gate; dials attempted while cut succeed but get a
	// FaultConn resetting every op, so vote exchanges die mid-flight the
	// way a real flapping link kills them.
	var cut atomic.Bool
	partDial := func(seed int64, minority bool) func(string) (net.Conn, error) {
		return func(addr string) (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
			if err != nil {
				return nil, err
			}
			if !minority && addr != replAddrs[2] {
				// Majority-internal links never cross the partition.
				return conn, nil
			}
			if cut.Load() {
				return transport.NewFaultConn(conn, transport.FaultConfig{Seed: seed, ResetProb: 1}), nil
			}
			return &gatedConn{Conn: conn, cut: &cut}, nil
		}
	}

	nodes := make([]*Node, 3)
	roots := make([]*topology.Root, 3)
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		cfg := quorumConfig(i, replLis, replAddrs, lease, dir)
		cfg.Peers = peers
		cfg.Dial = partDial(int64(50+i), i == 2)
		node, root := replNode(t, cfg)
		nodes[i] = node
		roots[i] = root
		go func(n *Node, lis net.Listener) { _ = n.Serve(lis) }(node, edgeLis[i])
		t.Cleanup(func() { _ = node.Close() })
	}
	waitFor(t, 10*time.Second, "both standbys attached", func() bool {
		return nodes[0].Stats().StandbyAttaches >= 2
	})

	hubs := []*obsv.Hub{obsv.NewHub(0), obsv.NewHub(0)}
	mkEdge := func(id int) topology.EdgeConfig {
		return topology.EdgeConfig{
			EdgeID:   id,
			RootAddr: peers[0],
			Server: transport.ServerConfig{
				InitialParams:   initialParams(t),
				AggregationGoal: 6,
				StalenessLimit:  10,
				Rounds:          100000,
				Obsv:            hubs[id],
			},
			Dial: transport.FaultDialer(transport.FaultConfig{
				Seed:      int64(31 + id),
				ResetProb: 0.05,
			}),
			HeartbeatEvery:    40 * time.Millisecond,
			RetryBaseDelay:    5 * time.Millisecond,
			RetryMaxDelay:     50 * time.Millisecond,
			MaxPendingBatches: 8,
			Seed:              int64(id),
		}
	}
	edge0, addr0 := startEdge(t, mkEdge(0), newFilter(t))
	edge1, addr1 := startEdge(t, mkEdge(1), newFilter(t))
	_, wait := startClients(t, numClients, malicious, []string{addr0, addr1})

	waitVersion(t, roots[0], 6, 30*time.Second)

	// --- Phase 1: cut node 2 off alone.
	cut.Store(true)
	beforeCut := roots[0].Version()

	// The minority's lease expires and its candidacies start failing
	// through the faulted links.
	waitFor(t, 20*time.Second, "minority candidacies failing", func() bool {
		st := nodes[2].Stats()
		return st.ElectionsStarted >= 1 && st.ElectionsLost >= 1
	})
	// While the majority keeps committing rounds, the minority must never
	// leave the standby/candidate states or fence an epoch.
	hold := time.Now().Add(4 * lease)
	for time.Now().Before(hold) {
		switch r := nodes[2].Role(); r {
		case RoleStandby, RoleCandidate:
		default:
			t.Fatalf("minority node reached role %s during the partition", r)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := nodes[2].Stats(); st.ElectionsWon != 0 {
		t.Fatalf("minority node won %d elections during the partition", st.ElectionsWon)
	}
	if got := nodes[2].Epoch(); got != 0 {
		t.Fatalf("minority node fenced epoch %d without quorum", got)
	}
	waitVersion(t, roots[0], beforeCut+6, 30*time.Second)

	// --- Phase 2: heal, then kill the primary.
	cut.Store(false)
	atKill := roots[1].Version()
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}

	winner := -1
	deadline := time.Now().Add(20 * time.Second)
	for winner < 0 {
		primaries := 0
		for i := 1; i < 3; i++ {
			if nodes[i].Role() == RolePrimary {
				primaries++
				winner = i
			}
		}
		if primaries > 1 {
			t.Fatal("two survivors serve as primary concurrently")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no winner after heal+kill: node1 %s %+v, node2 %s %+v",
				nodes[1].Role(), nodes[1].Stats(), nodes[2].Role(), nodes[2].Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	loser := 3 - winner

	// The deployment re-homes to the winner and keeps converging under
	// attack; the loser must never co-serve.
	waitVersion(t, roots[winner], atKill+6, 30*time.Second)
	if nodes[loser].Role() == RolePrimary {
		t.Fatal("election loser serves as primary")
	}
	if r0, r1 := edge0.Stats().UplinkRehomes, edge1.Stats().UplinkRehomes; r0+r1 == 0 {
		t.Errorf("no edge re-homed after the failover (edge0 %d, edge1 %d)", r0, r1)
	}

	_ = edge0.Close()
	_ = edge1.Close()
	for _, n := range nodes {
		_ = n.Close()
	}
	wait()

	// Zero-double-count audit across all three generations' commit rings:
	// the same (edge, batch) applied by two nodes — or twice by one —
	// would surface as a duplicate pair.
	type pair struct {
		edge  int
		batch uint64
	}
	applied := make(map[pair]string)
	labels := []string{"old primary", "node 1", "node 2"}
	for i, n := range nodes {
		n.mu.Lock()
		for _, rec := range n.ring {
			p := pair{edge: rec.EdgeID, batch: rec.BatchID}
			if prev, ok := applied[p]; ok {
				t.Errorf("batch (edge %d, id %d) applied by %s AND %s — double count across the partition",
					p.edge, p.batch, prev, labels[i])
			}
			applied[p] = labels[i]
		}
		n.mu.Unlock()
	}
	if len(applied) == 0 {
		t.Error("audit saw no applied batches at all")
	}
	rs := roots[winner].Stats()
	if rs.BatchesApplied != rs.Rounds {
		t.Errorf("winner applied %d batches at version %d — application and version must move together",
			rs.BatchesApplied, rs.Rounds)
	}

	// Detection kept working through partition and failover: the traced
	// decisions must include rejects for the attacker IDs.
	rate := maliciousRejectRate(t, hubs, malicious)
	t.Logf("partition drill: winner node %d at epoch %d, version %d; malicious rejection rate %.2f",
		winner, nodes[winner].Epoch(), roots[winner].Version(), rate)
}
