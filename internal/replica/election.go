package replica

import (
	"errors"
	"fmt"
	"io/fs"
	"log"
	"sync"
	"time"

	"github.com/asyncfl/asyncfilter/internal/checkpoint"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// This file is the quorum election: the vote ledger (one durable grant
// per epoch, written before the grant leaves the wire), the candidate
// side (fan out VoteRequests, count distinct granting voters, promote
// only behind a majority) and the voter side (answer a peer's
// VoteRequest against the ledger).
//
// Safety rests on quorum intersection: any two majorities of the group
// share at least one voter, a voter grants each epoch to at most one
// candidate, and the grant is persisted BEFORE it is sent — so even
// across voter crashes two candidates can never both assemble a majority
// for the same epoch, and the fencing invariant ("an epoch is bumped
// exactly once per promotion") holds before the winner serves its first
// edge rather than being repaired by NackFenced afterwards.
//
// Liveness is best-effort, as in any quorum system: a minority partition
// (including either half of a symmetric 1-1 split of a two-node group)
// stays in RoleCandidate forever and never binds the edge listener —
// /healthz shows role "candidate" with a stale epoch, which is the
// operator's cue (see the README split-brain runbook).

// voteLedger is a node's durable election memory: the highest epoch it
// has granted a vote in and who received it. All epoch movement is
// raise-only and routed through grantEpoch, keeping the epochfence
// analyzer's contract over this field too.
type voteLedger struct {
	path string // "" keeps the ledger in memory only (tests, ephemeral nodes)

	mu       sync.Mutex
	epoch    uint64
	votedFor int
}

// newVoteLedger opens (or initializes) the ledger at path. A missing
// file is a fresh ledger; a corrupt one is an error — serving elections
// with amnesia would break the double-grant guarantee.
func newVoteLedger(path string) (*voteLedger, error) {
	l := &voteLedger{path: path, votedFor: -1}
	if path == "" {
		return l, nil
	}
	var rec checkpoint.VoteRecord
	err := checkpoint.Load(path, &rec)
	if errors.Is(err, fs.ErrNotExist) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("replica: vote ledger: %w", err)
	}
	l.restoreVoteEpoch(rec)
	return l, nil
}

// restoreVoteEpoch adopts a persisted vote record into the fresh ledger
// (raise-only; a fresh ledger is at epoch zero).
func (l *voteLedger) restoreVoteEpoch(rec checkpoint.VoteRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if rec.Epoch > l.epoch {
		l.epoch = rec.Epoch
		l.votedFor = rec.VotedFor
	}
}

// grantEpoch records a vote for candidate at epoch. It returns whether
// the vote was granted and the ledger's epoch after the call. Each epoch
// is granted to exactly one candidate, persistently: a new high epoch is
// written to disk before the grant becomes visible, re-granting the same
// epoch to the same candidate is idempotent, and everything else is
// refused.
func (l *voteLedger) grantEpoch(epoch uint64, candidate int) (bool, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch < l.epoch {
		return false, l.epoch, nil
	}
	if epoch == l.epoch {
		return l.epoch != 0 && l.votedFor == candidate, l.epoch, nil
	}
	if l.path != "" {
		if err := checkpoint.Save(l.path, &checkpoint.VoteRecord{Epoch: epoch, VotedFor: candidate}); err != nil {
			return false, l.epoch, err
		}
	}
	l.epoch = epoch
	l.votedFor = candidate
	return true, l.epoch, nil
}

// last returns the highest granted epoch and its candidate (-1 when the
// ledger has never granted).
func (l *voteLedger) last() (uint64, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch, l.votedFor
}

// nextElectionEpoch picks the epoch a new candidacy targets: strictly
// above every epoch this node has observed serving (root), voted in
// (ledger), or been refused with (a voter's advertised ledger), so a won
// election can never reuse a spent generation and a retry jumps past a
// rival's self-grants instead of chasing them one epoch at a time.
func (n *Node) nextElectionEpoch() uint64 {
	seen := n.root.Epoch()
	voted, _ := n.ledger.last()
	if voted > seen {
		seen = voted
	}
	n.mu.Lock()
	if n.epochHint > seen {
		seen = n.epochHint
	}
	n.mu.Unlock()
	return seen + 1
}

// runElection runs one candidacy end to end: durably self-grant the
// target epoch, fan VoteRequests out to every peer, and promote only
// when a majority of the group (self included) granted the same epoch.
// Returns true when the node promoted to primary. A lost election
// demotes back to standby and pushes the next attempt out by a random
// fraction of the lease so rival candidates interleave instead of
// re-colliding every round.
func (n *Node) runElection() bool {
	n.mu.Lock()
	if n.role != RoleStandby || n.closed {
		n.mu.Unlock()
		return false
	}
	n.role = RoleCandidate
	n.stats.ElectionsStarted++
	n.mu.Unlock()
	n.noteRole(RoleCandidate)
	started := time.Now()
	applied := uint64(n.root.Version())

	epoch := n.nextElectionEpoch()
	granted := false
	for tries := 0; tries < 8; tries++ {
		ok, cur, err := n.ledger.grantEpoch(epoch, n.cfg.NodeID)
		if err != nil {
			return n.loseElection(fmt.Sprintf("vote ledger: %v", err))
		}
		if ok {
			granted = true
			break
		}
		epoch = cur + 1
	}
	if !granted {
		return n.loseElection("could not self-grant a fresh epoch")
	}

	votes, seen, peerSeq := n.collectVotes(epoch, applied)
	if seen > epoch {
		n.mu.Lock()
		if seen > n.epochHint {
			n.epochHint = seen
		}
		n.mu.Unlock()
	}
	if votes < n.quorum {
		why := fmt.Sprintf("%d/%d votes at epoch %d", votes, n.quorum, epoch)
		if peerSeq > applied {
			// A reachable voter's log is ahead of ours: it refuses us
			// every round and the tie-break cannot save us. Stand down
			// for a full lease so the better-qualified peer wins instead
			// of dueling it epoch for epoch.
			return n.loseElectionAfter(n.cfg.Lease, why+fmt.Sprintf(" (a voter is at seq %d, ours %d)", peerSeq, applied))
		}
		return n.loseElection(why)
	}

	// Quorum in hand — but if the primary resurfaced while the votes were
	// in flight, stand down rather than fence a live generation.
	n.mu.Lock()
	heard := !n.lastHeard.IsZero() && time.Since(n.lastHeard) <= n.cfg.Lease
	n.mu.Unlock()
	if heard {
		return n.loseElection(fmt.Sprintf("primary resurfaced during the epoch-%d election", epoch))
	}

	lost, ok := n.beginPromoting()
	if !ok {
		return false
	}
	if n.promotingHook != nil {
		// Test seam: a candidate killed right here has persisted its
		// self-grant but not its fenced epoch (satellite: crash during
		// RolePromoting).
		n.promotingHook()
	}
	if err := n.root.PromoteEpoch(epoch); err != nil {
		// A higher epoch landed while the election ran: another candidate
		// won and this node already observed the new generation. Stand
		// down; the ledger keeps the spent epoch.
		n.mu.Lock()
		if n.role == RolePromoting && !n.closed {
			n.role = RoleStandby
		}
		n.stats.ElectionsLost++
		// The winner is serving; give it a full lease to reach us before
		// the next candidacy.
		n.nextElection = time.Now().Add(n.cfg.Lease)
		n.mu.Unlock()
		n.noteRole(RoleStandby)
		log.Printf("replica: node %d: election at epoch %d overtaken: %v", n.cfg.NodeID, epoch, err)
		return false
	}
	n.mu.Lock()
	n.stats.ElectionsWon++
	n.mu.Unlock()
	log.Printf("replica: node %d: won election at epoch %d with %d/%d votes (%d records behind)",
		n.cfg.NodeID, epoch, votes, n.quorum, lost)
	n.completePromotion(lost)
	n.noteElectionLatency(time.Since(started))
	return true
}

// collectVotes asks every vote peer for a grant at epoch and returns the
// number of distinct granting voters (this node included), the highest
// epoch any reply advertised — a refusal carries the voter's ledger,
// which the next candidacy must clear — and the highest applied seq any
// refusing voter reported, which tells an out-of-date candidate to stand
// down. Replies are deduplicated by VoterID, so a misconfigured mesh
// that loops back to the candidate cannot double-count its self-grant.
func (n *Node) collectVotes(epoch, lastSeq uint64) (int, uint64, uint64) {
	replies := make(chan *transport.VoteGrant, len(n.cfg.VotePeers))
	var wg sync.WaitGroup
	for _, addr := range n.cfg.VotePeers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			if g := n.requestVote(addr, epoch, lastSeq); g != nil {
				replies <- g
			}
		}(addr)
	}
	wg.Wait()
	close(replies)
	grantedBy := map[int]struct{}{n.cfg.NodeID: {}}
	seen := epoch
	var peerSeq uint64
	for g := range replies {
		if g.Granted {
			grantedBy[g.VoterID] = struct{}{}
		}
		if g.Epoch > seen {
			seen = g.Epoch
		}
		if !g.Granted && g.LastSeq > peerSeq {
			peerSeq = g.LastSeq
		}
	}
	return len(grantedBy), seen, peerSeq
}

// requestVote runs one strict request-reply vote exchange with a peer.
// Any transport failure is simply a missing vote — elections are retried,
// never blocked on a dead peer.
func (n *Node) requestVote(addr string, epoch, lastSeq uint64) *transport.VoteGrant {
	conn, err := n.dial(addr)
	if err != nil {
		return nil
	}
	defer conn.Close()
	timeout := n.cfg.Lease / 2
	if timeout <= 0 {
		timeout = time.Second
	}
	uc := transport.NewUpstreamConnCodec(conn, n.cfg.Codec, n.cfg.MaxMessageBytes, timeout, timeout)
	req := &transport.ReplicaMsg{
		Vote:  &transport.VoteRequest{CandidateID: n.cfg.NodeID, Epoch: epoch, LastSeq: lastSeq},
		Epoch: n.root.Epoch(),
	}
	if err := uc.WriteReplica(req); err != nil {
		return nil
	}
	msg, err := uc.ReadPrimary()
	if err != nil || msg.Grant == nil {
		return nil
	}
	return msg.Grant
}

// loseElection demotes a failed candidate back to standby and jitters
// the next attempt through nextElection — never through lastHeard, which
// must only ever record genuinely hearing a primary: rival candidates
// that faked their lease clocks here would refuse each other's votes as
// "lease still fresh" and livelock. Always returns false so callers can
// tail-call it.
func (n *Node) loseElection(why string) bool {
	return n.loseElectionAfter(0, why)
}

// loseElectionAfter is loseElection with a floor added to the backoff,
// for losses where retrying soon cannot help (a better-qualified peer
// exists and needs a clear window to win).
func (n *Node) loseElectionAfter(floor time.Duration, why string) bool {
	n.mu.Lock()
	n.stats.ElectionsLost++
	if n.role == RoleCandidate && !n.closed {
		n.role = RoleStandby
	}
	backoff := time.Duration(0)
	if n.cfg.Lease > 0 {
		// Rank-staggered: the tie-break favors low node IDs, so a
		// higher-ID loser waits longer and hands the favorite a clear
		// window instead of re-colliding with it every round.
		rank := time.Duration(n.cfg.NodeID)
		if rank > 4 {
			rank = 4
		}
		backoff = rank*(n.cfg.Lease/8) + time.Duration(n.rng.Int63n(int64(n.cfg.Lease/2)+1))
	}
	n.nextElection = time.Now().Add(floor + backoff)
	n.mu.Unlock()
	n.noteRole(RoleStandby)
	log.Printf("replica: node %d: election lost: %s", n.cfg.NodeID, why)
	return false
}

// answerVote handles one inbound vote exchange on the replication
// listener: decide against the ledger (persisting any grant first) and
// send exactly one reply.
func (n *Node) answerVote(uc *transport.UpstreamConn, req *transport.VoteRequest) {
	grant := n.decideVote(req)
	_ = uc.WritePrimary(&transport.PrimaryMsg{Grant: grant, Epoch: n.root.Epoch(), LatestSeq: n.latestSeq()})
}

// decideVote applies the voter-side election rules in order: a malformed
// or stale-epoch request is refused outright; a node that is serving (or
// can still hear a primary inside its lease) defends the live generation
// by refusing; a candidate running behind this node's applied log is
// refused so the most-caught-up standby wins; equal logs tie-break on
// CandidateID (lowest wins). Only then is the ledger consulted, which
// persists the grant before it becomes visible.
func (n *Node) decideVote(req *transport.VoteRequest) *transport.VoteGrant {
	ours := uint64(n.root.Version())
	grant := &transport.VoteGrant{VoterID: n.cfg.NodeID, LastSeq: ours}
	refuse := func(why string) *transport.VoteGrant {
		n.mu.Lock()
		n.stats.VotesRefused++
		n.mu.Unlock()
		voted, _ := n.ledger.last()
		if seen := n.root.Epoch(); seen > voted {
			voted = seen
		}
		grant.Epoch = voted
		if req != nil {
			log.Printf("replica: node %d: refusing vote for candidate %d at epoch %d: %s",
				n.cfg.NodeID, req.CandidateID, req.Epoch, why)
		}
		return grant
	}

	if err := req.Validate(); err != nil {
		return refuse(err.Error())
	}
	n.mu.Lock()
	role := n.role
	fresh := !n.lastHeard.IsZero() && time.Since(n.lastHeard) <= n.cfg.Lease
	n.mu.Unlock()
	if req.Epoch <= n.root.Epoch() {
		return refuse("epoch already spent")
	}
	switch {
	case role == RolePrimary || role == RolePromoting:
		return refuse("this node is serving")
	case role == RoleStandby && fresh:
		return refuse("primary lease still fresh")
	}
	if req.LastSeq < ours {
		return refuse(fmt.Sprintf("candidate at seq %d is behind our %d", req.LastSeq, ours))
	}
	if req.LastSeq == ours && !fresh && req.CandidateID > n.cfg.NodeID &&
		(role == RoleStandby || role == RoleCandidate) {
		return refuse("tie-break: this node outranks the candidate")
	}
	ok, cur, err := n.ledger.grantEpoch(req.Epoch, req.CandidateID)
	if err != nil {
		return refuse(fmt.Sprintf("vote ledger: %v", err))
	}
	if !ok {
		return refuse(fmt.Sprintf("epoch %d already granted", cur))
	}
	n.mu.Lock()
	n.stats.VotesGranted++
	n.mu.Unlock()
	grant.Granted = true
	grant.Epoch = req.Epoch
	return grant
}

// noteElectionLatency mirrors lease-expiry-to-primary latency of the last
// won election into afl_replica_election_seconds.
func (n *Node) noteElectionLatency(d time.Duration) {
	if n.cfg.Obsv == nil {
		return
	}
	n.cfg.Obsv.Registry.Gauge("afl_replica_election_seconds").Set(d.Seconds())
}
