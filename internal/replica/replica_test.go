package replica

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/obsv"
	"github.com/asyncfl/asyncfilter/internal/topology"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

const testDim = 4

// sedge drives a root through the raw edge protocol (the scripted-edge
// idiom from the topology tests, duplicated here because those helpers
// are package-internal).
type sedge struct {
	t  *testing.T
	uc *transport.UpstreamConn
}

func dialEdge(t *testing.T, addr string) *sedge {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial root: %v", err)
	}
	uc := transport.NewUpstreamConn(conn, 0, 5*time.Second, 5*time.Second)
	t.Cleanup(func() { uc.Close() })
	return &sedge{t: t, uc: uc}
}

func (s *sedge) roundTrip(msg *transport.EdgeMsg) *transport.RootMsg {
	s.t.Helper()
	if err := s.uc.WriteEdge(msg); err != nil {
		s.t.Fatalf("write edge msg: %v", err)
	}
	reply, err := s.uc.ReadRoot()
	if err != nil {
		s.t.Fatalf("read root reply: %v", err)
	}
	return reply
}

func (s *sedge) hello(edgeID int, nextBatch uint64) *transport.RootMsg {
	s.t.Helper()
	return s.roundTrip(&transport.EdgeMsg{Hello: &transport.EdgeHello{
		EdgeID:     edgeID,
		ModelDim:   testDim,
		ClientAddr: "127.0.0.1:1",
		NextBatch:  nextBatch,
	}})
}

func (s *sedge) batch(id uint64, updates ...*fl.Update) *transport.RootMsg {
	s.t.Helper()
	return s.roundTrip(&transport.EdgeMsg{Batch: &transport.BatchMsg{BatchID: id, Updates: updates}})
}

func testUpdate(clientID int, v float64) *fl.Update {
	delta := make([]float64, testDim)
	for i := range delta {
		delta[i] = v
	}
	return &fl.Update{ClientID: clientID, Delta: delta, NumSamples: 10}
}

func testRoot(t *testing.T, filter fl.Filter) *topology.Root {
	t.Helper()
	root, err := topology.NewRoot(topology.RootConfig{
		InitialParams: make([]float64, testDim),
		Rounds:        100000,
	}, filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// startNode serves a node on a fresh edge listener, returning the node's
// edge-facing address. The caller owns Close (nodes are killed mid-test);
// cleanup closes again, which is idempotent.
func startNode(t *testing.T, n *Node) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = n.Serve(lis) }()
	t.Cleanup(func() { _ = n.Close() })
	return lis.Addr().String()
}

func waitFor(t *testing.T, within time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func newFilter(t *testing.T) *core.AsyncFilter {
	t.Helper()
	f, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{NodeID: -1},
		{Lease: -time.Second},
		{Heartbeat: -time.Second},
		{Lease: time.Second, Heartbeat: 2 * time.Second},
		{MaxMessageBytes: -1},
		{QuorumSize: -1},
		// Unwinnable: 3 grants can never arrive in a group of 2.
		{QuorumSize: 3, VotePeers: []string{"127.0.0.1:1"}},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := NewNode(Config{}, nil); err == nil {
		t.Error("NewNode accepted a nil root")
	}
}

// TestMirrorPromoteAndReconcile is the deterministic failover walk: a
// standby attaches to a live primary, mirrors its commits record by
// record (filter deltas included), promotes when the primary dies, and
// answers the edge's replayed batch with a bare ack — plus the
// byte-comparability check: the standby's filter state equals a reference
// replay of the exact same snapshot/delta stream, byte for byte.
func TestMirrorPromoteAndReconcile(t *testing.T) {
	primaryFilter, standbyFilter := newFilter(t), newFilter(t)
	hub := obsv.NewHub(0)

	pRoot := testRoot(t, primaryFilter)
	pNode, err := NewNode(Config{
		NodeID:     0,
		ReplListen: "127.0.0.1:0",
		Peers:      []string{"127.0.0.1:9001", "127.0.0.1:9002"},
		Lease:      400 * time.Millisecond,
	}, pRoot)
	if err != nil {
		t.Fatal(err)
	}
	pAddr := startNode(t, pNode)
	if pNode.Role() != RolePrimary {
		t.Fatalf("no-upstream node started as %s", pNode.Role())
	}

	sRoot := testRoot(t, standbyFilter)
	sNode, err := NewNode(Config{
		NodeID:    1,
		Upstreams: []string{pNode.ReplAddr()},
		Peers:     []string{"127.0.0.1:9001", "127.0.0.1:9002"},
		Lease:     400 * time.Millisecond,
		Obsv:      hub,
	}, sRoot)
	if err != nil {
		t.Fatal(err)
	}
	sAddr := startNode(t, sNode)
	if sNode.Role() != RoleStandby {
		t.Fatalf("upstream-configured node started as %s", sNode.Role())
	}

	// Attach before the first batch so the standby takes the pure record
	// stream (no snapshot) — each commit must then arrive as one record.
	waitFor(t, 5*time.Second, "standby attach", func() bool {
		return pNode.Stats().StandbyAttaches >= 1
	})

	edge := dialEdge(t, pAddr)
	if reply := edge.hello(3, 1); reply.Nack != 0 {
		t.Fatalf("hello refused: %v", reply.Nack)
	}
	for b := uint64(1); b <= 3; b++ {
		if reply := edge.batch(b, testUpdate(int(b), 0.25)); reply.Nack != 0 || reply.Ack != b {
			t.Fatalf("batch %d: nack=%v ack=%d", b, reply.Nack, reply.Ack)
		}
	}
	waitFor(t, 5*time.Second, "standby to mirror 3 records", func() bool {
		return sRoot.Version() == 3
	})
	st := sNode.Stats()
	if st.RecordsApplied != 3 {
		t.Errorf("standby applied %d records, want 3", st.RecordsApplied)
	}
	if st.SnapshotsInstalled != 0 {
		t.Errorf("pure stream attach installed %d snapshots", st.SnapshotsInstalled)
	}

	// Byte-comparability: replay the exact record stream the primary
	// emitted (held in its ring) into a reference filter. The standby
	// performed the identical restore/merge sequence, so its serialized
	// filter state must match byte for byte.
	pNode.mu.Lock()
	stream := append([]*transport.ReplRecord(nil), pNode.ring...)
	pNode.mu.Unlock()
	if len(stream) != 3 {
		t.Fatalf("primary ring holds %d records, want 3", len(stream))
	}
	ref := newFilter(t)
	for i, rec := range stream {
		if len(rec.FilterState) == 0 {
			t.Fatalf("record %d carries no filter state", i)
		}
		if rec.FilterFull {
			if err := ref.RestoreState(rec.FilterState); err != nil {
				t.Fatal(err)
			}
		} else if err := ref.MergeState(rec.FilterState); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	got, err := standbyFilter.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("promoted-side filter state is not byte-identical to the reference merge of the record stream")
	}

	// Kill the primary. The standby's lease expires, it promotes under
	// epoch 1, and starts serving edges on its own listener.
	killedAt := time.Now()
	if err := pNode.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "standby promotion", func() bool {
		return sNode.Role() == RolePrimary
	})
	if took := time.Since(killedAt); took > 4*400*time.Millisecond {
		t.Errorf("promotion took %v, want within a few leases of 400ms", took)
	}
	if got := sNode.Epoch(); got != 1 {
		t.Errorf("promoted epoch = %d, want 1", got)
	}
	ns := sNode.Stats()
	if ns.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", ns.Promotions)
	}
	if ns.RecordsLostOnPromote != 0 {
		t.Errorf("lost %d records on a fully-mirrored promotion", ns.RecordsLostOnPromote)
	}

	// Role/epoch surfaces: gauges and /healthz payload.
	if v := hub.Registry.Gauge("afl_replica_role").Value(); v != RolePrimary.gaugeValue() {
		t.Errorf("afl_replica_role = %v, want %v", v, RolePrimary.gaugeValue())
	}
	if v := hub.Registry.Gauge("afl_replica_epoch").Value(); v != 1 {
		t.Errorf("afl_replica_epoch = %v, want 1", v)
	}
	if h := sNode.Health(); h.Role != "primary" || h.Epoch != 1 {
		t.Errorf("health = role %q epoch %d, want primary/1", h.Role, h.Epoch)
	}

	// The edge re-homes and reconciles from its watermark: the replayed
	// batch gets a bare ack (never a second application), the next batch
	// applies normally, and the reply carries the promoted epoch.
	rehomed := dialEdge(t, sAddr)
	if reply := rehomed.hello(3, 4); reply.Nack != 0 {
		t.Fatalf("re-homed hello refused: %v", reply.Nack)
	}
	reply := rehomed.batch(3, testUpdate(3, 0.25))
	if reply.Nack != 0 || reply.Ack != 3 {
		t.Fatalf("replayed batch: nack=%v ack=%d, want bare ack 3", reply.Nack, reply.Ack)
	}
	if reply.Epoch != 1 {
		t.Errorf("promoted root replies at epoch %d, want 1", reply.Epoch)
	}
	reply = rehomed.batch(4, testUpdate(4, 0.5))
	if reply.Nack != 0 || reply.Ack != 4 {
		t.Fatalf("post-failover batch: nack=%v ack=%d", reply.Nack, reply.Ack)
	}
	rs := sRoot.Stats()
	if rs.BatchesApplied != 4 || rs.BatchesReplayed != 1 {
		t.Errorf("applied %d replayed %d, want 4 and 1 — a double count would corrupt the model",
			rs.BatchesApplied, rs.BatchesReplayed)
	}
}

// TestLateAttachFallsBackToSnapshot: a standby attaching behind a primary
// whose ring no longer covers its next seq is re-grounded from a full
// checkpoint snapshot, then streams on.
func TestLateAttachFallsBackToSnapshot(t *testing.T) {
	pRoot := testRoot(t, nil)
	pNode, err := NewNode(Config{
		NodeID:     0,
		ReplListen: "127.0.0.1:0",
		Lease:      time.Second,
		LogDepth:   1, // ring keeps only the newest record: any gap forces a snapshot
	}, pRoot)
	if err != nil {
		t.Fatal(err)
	}
	pAddr := startNode(t, pNode)

	edge := dialEdge(t, pAddr)
	edge.hello(1, 1)
	for b := uint64(1); b <= 5; b++ {
		edge.batch(b, testUpdate(int(b), 0.1))
	}

	sRoot := testRoot(t, nil)
	sNode, err := NewNode(Config{
		NodeID:    1,
		Upstreams: []string{pNode.ReplAddr()},
		Lease:     time.Minute, // never promote during this test
	}, sRoot)
	if err != nil {
		t.Fatal(err)
	}
	startNode(t, sNode)

	waitFor(t, 5*time.Second, "snapshot install", func() bool {
		return sRoot.Version() == 5
	})
	st := sNode.Stats()
	if st.SnapshotsInstalled == 0 {
		t.Errorf("late attach never installed a snapshot: %+v", st)
	}
	// Post-snapshot commits stream as records.
	edge.batch(6, testUpdate(6, 0.1))
	waitFor(t, 5*time.Second, "post-snapshot record", func() bool {
		return sRoot.Version() == 6
	})
	if st := sNode.Stats(); st.RecordsApplied == 0 {
		t.Errorf("post-snapshot commit did not stream as a record: %+v", st)
	}
}

// TestReplicationLinkFaults runs the replication channel over a link that
// randomly resets, delays and drops writes: broken sessions burn uplink
// failures, every reattach resyncs from the ring or a snapshot, and the
// standby still converges to the primary's exact version.
func TestReplicationLinkFaults(t *testing.T) {
	pRoot := testRoot(t, nil)
	pNode, err := NewNode(Config{
		NodeID:     0,
		ReplListen: "127.0.0.1:0",
		Lease:      time.Second,
		Heartbeat:  20 * time.Millisecond,
	}, pRoot)
	if err != nil {
		t.Fatal(err)
	}
	pAddr := startNode(t, pNode)

	sRoot := testRoot(t, nil)
	sNode, err := NewNode(Config{
		NodeID:    1,
		Upstreams: []string{pNode.ReplAddr()},
		Lease:     time.Minute, // faults must trigger resyncs, not promotion
		Dial: transport.FaultDialer(transport.FaultConfig{
			Seed:          11,
			ResetProb:     0.05,
			DelayProb:     0.2,
			Delay:         2 * time.Millisecond,
			DropWriteProb: 0.02,
		}),
		RetryBaseDelay: 2 * time.Millisecond,
		RetryMaxDelay:  20 * time.Millisecond,
	}, sRoot)
	if err != nil {
		t.Fatal(err)
	}
	startNode(t, sNode)

	edge := dialEdge(t, pAddr)
	edge.hello(1, 1)
	for b := uint64(1); b <= 40; b++ {
		edge.batch(b, testUpdate(int(b%7), 0.05))
	}

	waitFor(t, 30*time.Second, "standby to converge through the faulty link", func() bool {
		return sRoot.Version() == 40
	})
	st := sNode.Stats()
	if st.UplinkFailures == 0 {
		t.Errorf("fault injection never broke a session: %+v", st)
	}
	if st.RecordsApplied == 0 && st.SnapshotsInstalled == 0 {
		t.Errorf("standby converged without mirroring anything: %+v", st)
	}
	if sNode.Role() != RoleStandby {
		t.Errorf("faulty link promoted the standby: %s", sNode.Role())
	}
}

// TestUnreachablePrimaryPromotesWithinLease: a standby that can never
// reach its primary still promotes one lease after starting — the lease
// clock starts at boot, not at the first heartbeat.
func TestUnreachablePrimaryPromotesWithinLease(t *testing.T) {
	lease := 200 * time.Millisecond
	sRoot := testRoot(t, nil)
	sNode, err := NewNode(Config{
		NodeID:    1,
		Upstreams: []string{"127.0.0.1:1"},
		Lease:     lease,
		Dial: func(string) (net.Conn, error) {
			return nil, errors.New("injected: unreachable")
		},
		RetryBaseDelay: 5 * time.Millisecond,
		RetryMaxDelay:  20 * time.Millisecond,
	}, sRoot)
	if err != nil {
		t.Fatal(err)
	}
	started := time.Now()
	addr := startNode(t, sNode)

	waitFor(t, 5*time.Second, "promotion", func() bool { return sNode.Role() == RolePrimary })
	if took := time.Since(started); took < lease {
		t.Errorf("promoted after %v, before the %v lease expired", took, lease)
	}
	if sNode.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", sNode.Epoch())
	}
	if st := sNode.Stats(); st.UplinkFailures == 0 {
		t.Errorf("unreachable upstream burned no uplink failures: %+v", st)
	}

	// The promoted node serves edges on the listener it was refusing on.
	edge := dialEdge(t, addr)
	if reply := edge.hello(1, 1); reply.Nack != 0 {
		t.Fatalf("promoted node refused an edge: %v", reply.Nack)
	}
}

// TestResurrectedPrimaryFencedByEdge is the fencing acceptance scenario:
// an old primary comes back from the dead at its stale epoch, and the
// first edge that has seen the promoted standby's epoch makes it refuse
// (NackFenced) and demote cleanly instead of split-braining.
func TestResurrectedPrimaryFencedByEdge(t *testing.T) {
	oldRoot := testRoot(t, nil)
	oldNode, err := NewNode(Config{NodeID: 0, ReplListen: "127.0.0.1:0", Lease: time.Second}, oldRoot)
	if err != nil {
		t.Fatal(err)
	}
	addr := startNode(t, oldNode)

	edge := dialEdge(t, addr)
	reply := edge.roundTrip(&transport.EdgeMsg{
		Hello: &transport.EdgeHello{EdgeID: 1, ModelDim: testDim, ClientAddr: "127.0.0.1:1", NextBatch: 1},
		Epoch: 2, // this edge has talked to the epoch-2 promoted standby
	})
	if reply.Nack != transport.NackFenced {
		t.Fatalf("resurrected primary answered %v, want NackFenced", reply.Nack)
	}
	if oldNode.Role() != RoleFenced {
		t.Fatalf("resurrected primary role = %s, want fenced", oldNode.Role())
	}
	select {
	case <-oldRoot.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("fenced primary never fired Done")
	}
	if rs := oldRoot.Stats(); rs.FencedNacks != 1 || rs.BatchesApplied != 0 {
		t.Errorf("fenced primary stats: %+v", rs)
	}
	if err := oldNode.Close(); err != nil {
		t.Errorf("fenced primary did not demote cleanly: %v", err)
	}
}

// TestStaleUpstreamFencedByStandby is the same invariant on the
// replication channel: a standby carrying a promoted epoch refuses to
// mirror a stale primary, and the stale primary demotes the moment the
// standby's hello proves the newer epoch exists.
func TestStaleUpstreamFencedByStandby(t *testing.T) {
	staleRoot := testRoot(t, nil)
	staleNode, err := NewNode(Config{NodeID: 0, ReplListen: "127.0.0.1:0", Lease: time.Second}, staleRoot)
	if err != nil {
		t.Fatal(err)
	}
	startNode(t, staleNode)

	// The standby's root already holds epoch 3 — it mirrored a primary
	// that was promoted twice since the stale node last served.
	sRoot := testRoot(t, nil)
	if err := sRoot.PromoteEpoch(3); err != nil {
		t.Fatal(err)
	}
	sNode, err := NewNode(Config{
		NodeID:         1,
		Upstreams:      []string{staleNode.ReplAddr()},
		Lease:          400 * time.Millisecond,
		RetryBaseDelay: 5 * time.Millisecond,
		RetryMaxDelay:  20 * time.Millisecond,
	}, sRoot)
	if err != nil {
		t.Fatal(err)
	}
	startNode(t, sNode)

	waitFor(t, 5*time.Second, "stale primary to demote", func() bool {
		return staleNode.Role() == RoleFenced
	})
	if st := staleNode.Stats(); st.FencedNacksSent == 0 {
		t.Errorf("stale primary sent no fenced nack: %+v", st)
	}
	// The standby never adopts anything from the stale generation and,
	// with no live primary left, promotes itself ABOVE its own epoch.
	waitFor(t, 5*time.Second, "standby promotion", func() bool {
		return sNode.Role() == RolePrimary
	})
	if got := sNode.Epoch(); got != 4 {
		t.Errorf("promoted epoch = %d, want 4 (above the mirrored 3)", got)
	}
	if st := sNode.Stats(); st.FencedObserved == 0 {
		t.Errorf("standby never observed the stale upstream: %+v", st)
	}
	if v := sRoot.Version(); v != 0 {
		t.Errorf("standby mirrored %d records from a stale primary", v)
	}
}
