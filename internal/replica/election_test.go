package replica

import (
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/checkpoint"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// bindRepl pre-binds n replication listeners so the full vote mesh is
// known before any node is constructed (the ReplListener path).
func bindRepl(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	lis := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lis {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lis[i] = l
		addrs[i] = l.Addr().String()
	}
	return lis, addrs
}

// quorumConfig builds the i-th member's config for a group whose
// replication mesh is addrs: node 0 starts primary, everyone else
// standby, and every node votes with every other.
func quorumConfig(i int, lis []net.Listener, addrs []string, lease time.Duration, dir string) Config {
	cfg := Config{
		NodeID:       i,
		ReplListener: lis[i],
		Lease:        lease,
		Seed:         int64(i + 1),
		VotePath:     filepath.Join(dir, "vote"+string(rune('0'+i))+".ckpt"),
	}
	for j, a := range addrs {
		if j != i {
			cfg.VotePeers = append(cfg.VotePeers, a)
		}
	}
	if i != 0 {
		cfg.Upstreams = []string{addrs[0]}
	}
	return cfg
}

// TestVoteLedgerDurability pins the ledger's contract: one grant per
// epoch, persisted before it becomes visible, idempotent only for the
// same candidate, raise-only across restarts, and corruption is an
// error rather than amnesia.
func TestVoteLedgerDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vote.ckpt")
	l, err := newVoteLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if e, v := l.last(); e != 0 || v != -1 {
		t.Fatalf("fresh ledger = (%d, %d), want (0, -1)", e, v)
	}

	check := func(epoch uint64, candidate int, wantOK bool, wantCur uint64) {
		t.Helper()
		ok, cur, err := l.grantEpoch(epoch, candidate)
		if err != nil {
			t.Fatalf("grantEpoch(%d, %d): %v", epoch, candidate, err)
		}
		if ok != wantOK || cur != wantCur {
			t.Errorf("grantEpoch(%d, %d) = (%v, %d), want (%v, %d)",
				epoch, candidate, ok, cur, wantOK, wantCur)
		}
	}
	check(3, 7, true, 3)  // first grant
	check(2, 9, false, 3) // lower epoch refused
	check(3, 9, false, 3) // same epoch, different candidate: refused
	check(3, 7, true, 3)  // same epoch, same candidate: idempotent
	check(5, 9, true, 5)  // higher epoch grants

	// Restart: the ledger must come back exactly as persisted.
	l2, err := newVoteLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if e, v := l2.last(); e != 5 || v != 9 {
		t.Errorf("restarted ledger = (%d, %d), want (5, 9)", e, v)
	}

	// Epoch 0 is never grantable, even "idempotently" on a fresh ledger —
	// a candidate at epoch 0 would not fence anything.
	mem, err := newVoteLedger("")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := mem.grantEpoch(0, 0); ok {
		t.Error("fresh ledger granted epoch 0")
	}

	// A corrupt ledger file must refuse to open: voting with amnesia
	// would break the one-grant-per-epoch guarantee.
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := newVoteLedger(path); err == nil {
		t.Error("corrupt ledger opened without error")
	}
}

// TestOutclassedCandidateStandsDown: a candidate refused by a voter
// whose applied log is ahead can never win (the LastSeq rule refuses it
// every round), so the loss must push its next candidacy out by at
// least a full lease — a clear window for the better-qualified peer —
// rather than the usual sub-lease jitter, and the voter's advertised
// epoch must land in the epoch hint.
func TestOutclassedCandidateStandsDown(t *testing.T) {
	fake, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer fake.Close()
	go func() {
		for {
			conn, err := fake.Accept()
			if err != nil {
				return
			}
			uc := transport.NewUpstreamConn(conn, 0, time.Second, time.Second)
			if msg, err := uc.ReadReplica(); err == nil && msg.Vote != nil {
				_ = uc.WritePrimary(&transport.PrimaryMsg{Grant: &transport.VoteGrant{
					VoterID: 9, Epoch: msg.Vote.Epoch + 3, LastSeq: 99,
				}})
			}
			conn.Close()
		}
	}()

	const lease = time.Second
	node, _ := replNode(t, Config{
		NodeID:    1,
		Upstreams: []string{fake.Addr().String()},
		VotePeers: []string{fake.Addr().String()},
		Lease:     lease,
	})
	defer node.Close()

	before := time.Now()
	if node.runElection() {
		t.Fatal("outclassed candidate won an election")
	}
	node.mu.Lock()
	next := node.nextElection
	hint := node.epochHint
	role := node.role
	st := node.stats
	node.mu.Unlock()
	if role != RoleStandby {
		t.Errorf("role after loss = %v, want standby", role)
	}
	if got := next.Sub(before); got < lease {
		t.Errorf("next candidacy only %v away, want >= the %v lease", got, lease)
	}
	if hint < 4 {
		t.Errorf("epoch hint = %d, want >= 4 (the voter advertised epoch+3)", hint)
	}
	if st.ElectionsLost != 1 || st.ElectionsWon != 0 {
		t.Errorf("elections lost/won = %d/%d, want exactly one lost", st.ElectionsLost, st.ElectionsWon)
	}
}

// TestOutclassedStandDownRealVoter is the same stand-down contract
// driven through a real voter node instead of a scripted one: the
// voter's decideVote refusal (whatever its reason) must carry the
// voter's applied position back across the wire, and the behind
// candidate must read it out of the reply and step aside.
func TestOutclassedStandDownRealVoter(t *testing.T) {
	const lease = time.Second
	lis, addrs := bindRepl(t, 2)
	dir := t.TempDir()

	// Two standbys pointed at a dead upstream, voting with each other.
	mk := func(i int) Config {
		cfg := quorumConfig(i, lis, addrs, lease, dir)
		cfg.Upstreams = []string{"127.0.0.1:1"}
		return cfg
	}
	behind, err := NewNode(mk(0), testRoot(t, newFilter(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer behind.Close()
	ahead, err := NewNode(mk(1), testRoot(t, newFilter(t)))
	if err != nil {
		t.Fatal(err)
	}
	// The voter is two records ahead, so its refusal advertises seq 2.
	for seq := uint64(1); seq <= 2; seq++ {
		if err := ahead.root.ApplyRecord(&transport.ReplRecord{Seq: seq, EdgeID: 0, BatchID: seq}); err != nil {
			t.Fatal(err)
		}
	}
	startNode(t, ahead)

	before := time.Now()
	if behind.runElection() {
		t.Fatal("behind candidate won against an ahead voter")
	}
	behind.mu.Lock()
	next := behind.nextElection
	behind.mu.Unlock()
	if got := next.Sub(before); got < lease {
		t.Errorf("next candidacy only %v away, want >= the %v lease", got, lease)
	}
}

// TestQuorumElectionKillPrimary is the tentpole acceptance walk: a
// three-node group loses its primary and must elect exactly one new one
// within a small multiple of the lease. The loser demotes and
// re-attaches to the winner through the vote-peer rotation, and at no
// sampled instant do two nodes serve as primary.
func TestQuorumElectionKillPrimary(t *testing.T) {
	const lease = 300 * time.Millisecond
	lis, addrs := bindRepl(t, 3)
	dir := t.TempDir()

	nodes := make([]*Node, 3)
	edgeAddrs := make([]string, 3)
	for i := 0; i < 3; i++ {
		n, err := NewNode(quorumConfig(i, lis, addrs, lease, dir), testRoot(t, newFilter(t)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		edgeAddrs[i] = startNode(t, n)
	}
	waitFor(t, 10*time.Second, "both standbys attached", func() bool {
		return nodes[0].Stats().StandbyAttaches >= 2
	})

	// Commit a few batches so the election runs over real log state.
	edge := dialEdge(t, edgeAddrs[0])
	if reply := edge.hello(7, 1); reply.Nack != 0 {
		t.Fatalf("hello refused: %v", reply.Nack)
	}
	for b := uint64(1); b <= 3; b++ {
		if reply := edge.batch(b, testUpdate(int(b), 0.25)); reply.Nack != 0 {
			t.Fatalf("batch %d refused: %v", b, reply.Nack)
		}
	}
	waitFor(t, 10*time.Second, "standbys caught up", func() bool {
		return nodes[1].Stats().RecordsApplied >= 3 && nodes[2].Stats().RecordsApplied >= 3
	})

	killedAt := time.Now()
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}

	// Exactly one survivor may reach RolePrimary — sampled continuously,
	// never just at the end.
	winner := -1
	deadline := time.Now().Add(15 * time.Second)
	for winner < 0 {
		primaries := 0
		for i := 1; i < 3; i++ {
			if nodes[i].Role() == RolePrimary {
				primaries++
				winner = i
			}
		}
		if primaries > 1 {
			t.Fatal("two nodes serve as primary concurrently")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no election winner: node1 %s %+v, node2 %s %+v",
				nodes[1].Role(), nodes[1].Stats(), nodes[2].Role(), nodes[2].Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	took := time.Since(killedAt)
	// Lease expiry (1 lease) + watchdog tick (lease/4) + one split-vote
	// retry round with jittered backoff must fit comfortably here.
	if took > 6*lease {
		t.Errorf("election took %v, want within ~2 %v leases", took, lease)
	}
	loser := 3 - winner
	if winner != 1 {
		t.Logf("winner is node %d (tie-break favors node 1; acceptable under vote splits)", winner)
	}
	if got := nodes[winner].Epoch(); got < 1 {
		t.Errorf("winner serves at epoch %d, want >= 1 (fenced above the dead generation)", got)
	}
	if st := nodes[winner].Stats(); st.ElectionsWon != 1 {
		t.Errorf("winner ElectionsWon = %d, want 1", st.ElectionsWon)
	}

	// The loser demotes back to standby and re-attaches to the winner via
	// the vote-peer rotation; the winner streams to it.
	waitFor(t, 15*time.Second, "loser re-attached to winner", func() bool {
		return nodes[loser].Role() == RoleStandby && nodes[winner].Stats().StandbyAttaches >= 1
	})
	if nodes[loser].Epoch() > nodes[winner].Epoch() {
		t.Errorf("loser epoch %d above winner epoch %d", nodes[loser].Epoch(), nodes[winner].Epoch())
	}

	// The winner serves edges on its own listener.
	edge2 := dialEdge(t, edgeAddrs[winner])
	if reply := edge2.hello(8, 1); reply.Nack != 0 {
		t.Errorf("winner refused an edge hello: %v", reply.Nack)
	}
	t.Logf("election: node %d won in %v at epoch %d", winner, took, nodes[winner].Epoch())
}

// TestSymmetricSplitRefusesToServe pins the no-split-brain side of the
// quorum: in a two-node group, either half of a symmetric 1-1 split is a
// minority. The surviving standby keeps running candidacies that can
// never reach quorum and must park without ever binding the edge
// listener.
func TestSymmetricSplitRefusesToServe(t *testing.T) {
	const lease = 200 * time.Millisecond
	lis, addrs := bindRepl(t, 2)
	dir := t.TempDir()

	pNode, err := NewNode(quorumConfig(0, lis, addrs, lease, dir), testRoot(t, newFilter(t)))
	if err != nil {
		t.Fatal(err)
	}
	startNode(t, pNode)
	sNode, err := NewNode(quorumConfig(1, lis, addrs, lease, dir), testRoot(t, newFilter(t)))
	if err != nil {
		t.Fatal(err)
	}
	sAddr := startNode(t, sNode)
	if sNode.quorum != 2 {
		t.Fatalf("two-node group quorum = %d, want 2", sNode.quorum)
	}
	waitFor(t, 10*time.Second, "standby attached", func() bool {
		return pNode.Stats().StandbyAttaches >= 1
	})

	// The split: from the standby's side, losing the primary IS the
	// symmetric partition — its only vote peer is unreachable.
	if err := pNode.Close(); err != nil {
		t.Fatal(err)
	}

	// Candidacies must start and keep failing.
	waitFor(t, 15*time.Second, "repeated failed candidacies", func() bool {
		st := sNode.Stats()
		return st.ElectionsStarted >= 2 && st.ElectionsLost >= 2
	})
	hold := time.Now().Add(4 * lease)
	for time.Now().Before(hold) {
		switch r := sNode.Role(); r {
		case RoleStandby, RoleCandidate:
		default:
			t.Fatalf("minority half reached role %s", r)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := sNode.Stats(); st.ElectionsWon != 0 {
		t.Errorf("minority half won %d elections", st.ElectionsWon)
	}
	if got := sNode.Epoch(); got != 0 {
		t.Errorf("minority half fenced epoch %d without quorum", got)
	}

	// The edge listener is still the refusal loop: a dial is accepted and
	// immediately cut, never served.
	conn, err := net.DialTimeout("tcp", sAddr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial refused-but-bound edge listener: %v", err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Error("minority half served bytes on the edge listener")
	}

	// /healthz surfaces the stuck state: role standby or candidate with a
	// stale (zero) epoch — the operator's cue in the split-brain runbook.
	h := sNode.Health()
	if h.Role != "standby" && h.Role != "candidate" {
		t.Errorf("stuck minority reports role %q", h.Role)
	}
	if h.Epoch != 0 {
		t.Errorf("stuck minority reports epoch %d", h.Epoch)
	}
}

// TestCandidateCrashDuringPromoting kills a candidate in the crash
// window the vote protocol is built around: the self-grant is persisted
// (it has already been counted by voters) but the fenced epoch is not.
// The node restarted from that exact disk state must honor the grant —
// refuse the spent epoch to any other candidate, allow only the
// idempotent self re-grant — and target a strictly higher epoch for its
// next candidacy.
func TestCandidateCrashDuringPromoting(t *testing.T) {
	const lease = 250 * time.Millisecond
	lis, addrs := bindRepl(t, 3)
	dir := t.TempDir()

	// Node 1 is the tie-break favorite (lowest standby ID): the unique
	// possible winner while it lives, so the hook below always fires on it.
	nodes := make([]*Node, 3)
	for i := 0; i < 3; i++ {
		n, err := NewNode(quorumConfig(i, lis, addrs, lease, dir), testRoot(t, newFilter(t)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	nodes[1].promotingHook = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	for _, n := range nodes {
		startNode(t, n)
	}
	// Runs before the node cleanups: unblocks the frozen candidate so
	// Close's wg.Wait can finish.
	t.Cleanup(func() { close(release) })

	waitFor(t, 10*time.Second, "both standbys attached", func() bool {
		return nodes[0].Stats().StandbyAttaches >= 2
	})
	if err := nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(20 * time.Second):
		t.Fatalf("no candidate reached RolePromoting: node1 %+v, node2 %+v",
			nodes[1].Stats(), nodes[2].Stats())
	}

	// The crash window is real: the self-grant is on disk, the fenced
	// epoch is not.
	votePath := nodes[1].cfg.VotePath
	var rec checkpoint.VoteRecord
	if err := checkpoint.Load(votePath, &rec); err != nil {
		t.Fatalf("vote record not persisted at the promoting seam: %v", err)
	}
	if rec.VotedFor != 1 || rec.Epoch < 1 {
		t.Fatalf("persisted vote record = %+v, want a self-grant at epoch >= 1", rec)
	}
	if got := nodes[1].Epoch(); got >= rec.Epoch {
		t.Fatalf("epoch %d already persisted at the crash point (grant epoch %d)", got, rec.Epoch)
	}

	// "Kill" the candidate: snapshot its ledger file exactly as the crash
	// would leave it and restart a fresh node from that disk state. (The
	// frozen original is released and torn down at cleanup.)
	data, err := os.ReadFile(votePath)
	if err != nil {
		t.Fatal(err)
	}
	restartPath := filepath.Join(dir, "vote1-restart.ckpt")
	if err := os.WriteFile(restartPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	restarted, err := NewNode(Config{
		NodeID:    1,
		Upstreams: []string{addrs[2]},
		VotePeers: []string{addrs[2]},
		VotePath:  restartPath,
		Lease:     lease,
		Seed:      9,
	}, testRoot(t, newFilter(t)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = restarted.Close() })

	if e, v := restarted.ledger.last(); e != rec.Epoch || v != 1 {
		t.Errorf("restarted ledger = (%d, %d), want (%d, 1)", e, v, rec.Epoch)
	}
	// Never regress: the next candidacy targets strictly above the
	// persisted grant, so the spent epoch is not reused.
	if next := restarted.nextElectionEpoch(); next != rec.Epoch+1 {
		t.Errorf("nextElectionEpoch = %d, want %d", next, rec.Epoch+1)
	}
	// Never double-grant: another candidate asking for the spent epoch is
	// refused by the ledger (ID 0 outranks the tie-break, so only the
	// ledger can be the refusal).
	g := restarted.decideVote(&transport.VoteRequest{CandidateID: 0, Epoch: rec.Epoch, LastSeq: 99})
	if g.Granted {
		t.Error("restarted voter double-granted its persisted epoch")
	}
	if g.Epoch != rec.Epoch {
		t.Errorf("refusal advertises epoch %d, want %d", g.Epoch, rec.Epoch)
	}
	// The idempotent path stays open: the same candidate may re-collect
	// its own grant after the crash.
	ok, cur, err := restarted.ledger.grantEpoch(rec.Epoch, 1)
	if err != nil || !ok || cur != rec.Epoch {
		t.Errorf("idempotent self re-grant = (%v, %d, %v), want (true, %d, nil)", ok, cur, err, rec.Epoch)
	}
}
