// Package replica turns a topology.Root into one node of a replicated
// root group: a primary that serves edges and streams every committed
// batch to standbys, and standbys that mirror the primary's state and
// promote themselves when its lease expires.
//
// Replication is log shipping (transport/replication.go): on attach a
// standby receives either the tail of the primary's in-memory record
// ring or a full checkpoint snapshot, then one ReplRecord per committed
// batch. Failover is lease-based with fenced epochs: a standby that has
// not heard from its primary for a full lease bumps the fencing epoch,
// persists it, and starts serving edges; edges carry the epoch on every
// request, so a resurrected old primary is refused with NackFenced by
// the first edge that reaches it and demotes itself instead of
// split-braining the deployment.
//
// The fencing invariant (see internal/topology/replication.go): an
// epoch is bumped exactly once per promotion and persisted before the
// promoted root accepts its first edge, so two roots can never both
// believe they own the same epoch.
//
// With Config.VotePeers set the group promotes by quorum election
// instead of bare lease expiry (election.go): an expired standby becomes
// a candidate, durably grants itself a fresh epoch, and may only enter
// RolePromoting after a majority of the group grants the same epoch —
// each voter persisting its grant (internal/checkpoint.VoteRecord)
// before the reply leaves the wire. Quorum intersection then guarantees
// at most one winner per epoch even across voter crashes, and a
// minority partition parks in RoleCandidate without ever binding the
// edge listener.
package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/asyncfl/asyncfilter/internal/obsv"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/topology"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// Role is a node's position in the replication group.
type Role int

const (
	// RolePrimary serves edges and streams records to standbys.
	RolePrimary Role = iota
	// RoleStandby mirrors the primary and refuses edge connections.
	RoleStandby
	// RolePromoting is the transient state between lease expiry and the
	// promoted epoch being persisted.
	RolePromoting
	// RoleFenced is a demoted old primary: a peer proved a newer epoch
	// exists and the node has torn itself down.
	RoleFenced
	// RoleCandidate is a standby whose lease expired in a quorum group:
	// it is collecting votes and serves nothing until a majority of the
	// group grants its epoch. A minority partition parks here forever.
	RoleCandidate
)

// String names the role for /healthz and logs.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleStandby:
		return "standby"
	case RolePromoting:
		return "promoting"
	case RoleFenced:
		return "fenced"
	case RoleCandidate:
		return "candidate"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// gaugeValue encodes the role for the afl_replica_role gauge:
// 0 primary, 1 standby, 2 promoting, 3 fenced, 4 candidate.
func (r Role) gaugeValue() float64 { return float64(int(r)) }

// Config parameterizes one replication node.
type Config struct {
	// NodeID identifies this node within the replication group (>= 0,
	// unique per group).
	NodeID int
	// ReplListen is the address the replication channel listens on. A
	// primary must set it to accept standbys; a standby binds it too so
	// it can answer vote requests and serve the next generation of
	// standbys after promotion. Empty disables the replication listener.
	ReplListen string
	// ReplListener, when non-nil, is a pre-bound replication listener
	// used instead of ReplListen. Group deployments bind every member's
	// listener first so the full VotePeers/Upstreams address mesh is
	// known before any node is constructed.
	ReplListener net.Listener
	// Upstreams is the list of primary replication addresses a standby
	// dials (rotating on failure). Empty means this node starts as the
	// primary.
	Upstreams []string
	// Peers is the static edge-facing address list of every replica in
	// the group, relayed to edges through task replies so they can find
	// the promoted standby when the primary dies. Should include this
	// node's own edge address.
	Peers []string
	// VotePeers lists the replication addresses of every OTHER group
	// member (self excluded). Non-empty switches promotion from
	// lease-only to quorum elections: a standby whose lease expires
	// becomes a candidate and may only promote after a majority of the
	// group grants its epoch. Standbys also rotate through these
	// addresses when re-attaching, so an election loser finds the winner.
	VotePeers []string
	// QuorumSize is the number of distinct grants (the candidate's own
	// durable self-grant included) required to promote. 0 selects a
	// majority of the group implied by VotePeers: (len(VotePeers)+1)/2+1.
	// Values above the group size are rejected as unwinnable.
	QuorumSize int
	// VotePath persists the node's vote ledger (internal/checkpoint
	// format) so a crash-and-restart voter cannot grant the same epoch
	// twice. Empty keeps the ledger in memory only — acceptable for
	// tests, not for a durable group.
	VotePath string
	// Lease is how long a standby waits without hearing from its primary
	// before promoting itself. 0 selects a default; a standby group
	// should use the same lease everywhere.
	Lease time.Duration
	// Heartbeat is the primary's idle push interval; it must be well
	// under Lease. 0 selects Lease/4.
	Heartbeat time.Duration
	// ReadTimeout and WriteTimeout bound each replication channel
	// operation (0 selects defaults derived from Lease).
	ReadTimeout, WriteTimeout time.Duration
	// MaxMessageBytes caps a decoded replication message (0 disables).
	MaxMessageBytes int64
	// RetryBaseDelay and RetryMaxDelay shape the standby's reconnect
	// backoff (defaults 50ms / 2s).
	RetryBaseDelay, RetryMaxDelay time.Duration
	// Seed drives the reconnect jitter.
	Seed int64
	// Codec selects the replication wire codec (zero = gob, the legacy
	// stream). transport.CodecBinary negotiates the binary frame
	// envelope: attaching standbys and vote candidates announce it with
	// the connection preamble, and every member's replication listener
	// sniffs, so mixed-codec groups interoperate during a rollout.
	Codec transport.Codec
	// Dial overrides the replication dialer (tests inject faulty links).
	Dial func(addr string) (net.Conn, error)
	// LogDepth bounds the in-memory record ring a late-attaching standby
	// can catch up from before falling back to a snapshot (<= 0 selects
	// 1024).
	LogDepth int
	// Obsv, when non-nil, attaches replication gauges: afl_replica_role,
	// afl_replica_epoch, afl_replica_lag_records.
	Obsv *obsv.Hub
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.NodeID < 0 {
		return fmt.Errorf("replica: Config: NodeID = %d, need >= 0", c.NodeID)
	}
	if c.Lease < 0 || c.Heartbeat < 0 || c.ReadTimeout < 0 || c.WriteTimeout < 0 {
		return errors.New("replica: Config: negative duration")
	}
	if c.Heartbeat > 0 && c.Lease > 0 && c.Heartbeat >= c.Lease {
		return fmt.Errorf("replica: Config: Heartbeat %v must be below Lease %v", c.Heartbeat, c.Lease)
	}
	if c.MaxMessageBytes < 0 {
		return fmt.Errorf("replica: Config: MaxMessageBytes = %d, need >= 0", c.MaxMessageBytes)
	}
	if c.Codec != transport.CodecGob && c.Codec != transport.CodecBinary {
		return fmt.Errorf("replica: Config: unknown Codec %v", c.Codec)
	}
	if c.QuorumSize < 0 {
		return fmt.Errorf("replica: Config: QuorumSize = %d, need >= 0", c.QuorumSize)
	}
	if group := len(c.VotePeers) + 1; c.QuorumSize > group {
		return fmt.Errorf("replica: Config: QuorumSize %d is unwinnable in a group of %d (VotePeers + self)",
			c.QuorumSize, group)
	}
	return nil
}

// withDefaults returns the config with zero values resolved.
func (c Config) withDefaults() Config {
	if c.Lease == 0 {
		c.Lease = 2 * time.Second
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = c.Lease / 4
	}
	if c.ReadTimeout == 0 {
		// A standby's read blocks until the primary's next push, which
		// arrives at least every Heartbeat; the primary's read waits only
		// for the standby's immediate ack. One lease covers both with
		// slack for a loaded scheduler.
		c.ReadTimeout = 2 * c.Lease
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = c.Lease
	}
	if c.RetryBaseDelay == 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.RetryMaxDelay == 0 {
		c.RetryMaxDelay = 2 * time.Second
	}
	if c.LogDepth <= 0 {
		c.LogDepth = 1024
	}
	return c
}

// Stats counts a node's replication activity.
type Stats struct {
	// RecordsStreamed counts records pushed to standbys (one per record
	// per standby); SnapshotsServed counts full snapshots sent; and
	// StandbyAttaches counts accepted standby hellos. Primary side.
	RecordsStreamed, SnapshotsServed, StandbyAttaches int
	// RecordsApplied and SnapshotsInstalled count what a standby
	// mirrored; UplinkFailures counts failed dials or broken sessions.
	RecordsApplied, SnapshotsInstalled, UplinkFailures int
	// Promotions counts promotions to primary (0 or 1 per node);
	// RecordsLostOnPromote is the replication lag at promotion time —
	// committed primary batches the standby never received. The edges'
	// batch replay reconciles most of them; the watermark audit counts
	// the rest as BatchesLost, never as double-applies.
	Promotions           int
	RecordsLostOnPromote int
	// FencedNacksSent counts standbys this node refused for carrying a
	// newer epoch; FencedObserved counts times this node learned it was
	// stale (or its upstream was) from a replication exchange.
	FencedNacksSent, FencedObserved int
	// ElectionsStarted, ElectionsWon and ElectionsLost count this node's
	// candidacies in a quorum group: every lease expiry starts one, a
	// majority of grants wins it, anything else (no quorum, a resurfaced
	// primary, an overtaking epoch) loses it back to standby.
	ElectionsStarted, ElectionsWon, ElectionsLost int
	// VotesGranted and VotesRefused count this node's voter-side
	// decisions. A grant is durable before it is counted: the ledger
	// persists (epoch, candidate) before the reply leaves the wire.
	VotesGranted, VotesRefused int
}

// subscriber is one attached standby on the primary side. The record
// channel is buffered; onCommit never blocks on a slow standby — it
// marks the subscriber overflowed instead, which forces that standby to
// reconnect and resynchronize.
type subscriber struct {
	ch       chan *transport.ReplRecord
	overflow bool
	acked    uint64
}

// Node is one member of a replicated root group. Create with NewNode,
// start with Serve (blocks like Root.Serve), stop with Close.
type Node struct {
	cfg  Config
	root *topology.Root

	mu          sync.Mutex
	role        Role
	lastSeq     uint64 // newest committed record seq (primary side)
	primarySeq  uint64 // primary's advertised newest seq (standby side)
	lastHeard   time.Time
	dirty       bool // standby apply failed; next hello demands a snapshot
	subs        map[*subscriber]struct{}
	ring        []*transport.ReplRecord
	ringBase    uint64 // seq of ring[0]; meaningless while the ring is empty
	stats       Stats
	closed      bool
	standbyConn net.Conn // current upstream session, closed on promote/Close
	rng         *rand.Rand

	ledger       *voteLedger
	quorum       int       // grants needed to promote; <= 1 selects lease-only promotion
	uplinks      []string  // Upstreams ∪ VotePeers: the standby's dial rotation
	nextElection time.Time // candidacy backoff; separate from lastHeard so a lost election never reads as a live primary
	epochHint    uint64    // highest epoch a refusing voter advertised; the next candidacy jumps above it

	// promotingHook, when non-nil, runs after the node enters
	// RolePromoting and before the won epoch is persisted — the test seam
	// for killing a candidate mid-promotion.
	promotingHook func()

	replLis  net.Listener
	promoted chan struct{}
	refusal  chan struct{} // closed when the standby refusal loop releases the edge listener
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewNode builds a replication node around a root. The root must not be
// serving yet: NewNode installs the commit tap and, for a standby, the
// root stays unserved until promotion. With a ReplListen address the
// replication listener is bound immediately so ReplAddr is usable before
// Serve.
func NewNode(cfg Config, root *topology.Root) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if root == nil {
		return nil, errors.New("replica: NewNode: nil root")
	}
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:      cfg,
		root:     root,
		subs:     make(map[*subscriber]struct{}),
		rng:      randx.New(cfg.Seed),
		promoted: make(chan struct{}),
		stop:     make(chan struct{}),
	}
	if len(cfg.Upstreams) == 0 {
		n.role = RolePrimary
		n.lastSeq = uint64(root.Version())
	} else {
		n.role = RoleStandby
	}
	ledger, err := newVoteLedger(cfg.VotePath)
	if err != nil {
		return nil, err
	}
	n.ledger = ledger
	n.quorum = cfg.QuorumSize
	if n.quorum == 0 && len(cfg.VotePeers) > 0 {
		n.quorum = (len(cfg.VotePeers)+1)/2 + 1
	}
	if n.quorum < 1 {
		n.quorum = 1
	}
	// Standbys rotate over every known replication address: the configured
	// upstreams first, then the vote mesh, so an election loser finds
	// whichever peer won.
	seen := make(map[string]struct{})
	for _, addr := range append(append([]string{}, cfg.Upstreams...), cfg.VotePeers...) {
		if _, dup := seen[addr]; dup {
			continue
		}
		seen[addr] = struct{}{}
		n.uplinks = append(n.uplinks, addr)
	}
	switch {
	case cfg.ReplListener != nil:
		n.replLis = cfg.ReplListener
	case cfg.ReplListen != "":
		lis, err := net.Listen("tcp", cfg.ReplListen)
		if err != nil {
			return nil, fmt.Errorf("replica: listen %s: %w", cfg.ReplListen, err)
		}
		n.replLis = lis
	}
	root.SetOnCommit(n.onCommit)
	if n.role == RolePrimary && len(cfg.Peers) > 0 {
		root.SetPeers(cfg.Peers)
	}
	n.noteRole(n.role)
	n.noteEpoch()
	n.noteQuorum()
	n.registerStatMirror()
	return n, nil
}

// ReplAddr returns the replication listener address (empty when no
// listener is configured).
func (n *Node) ReplAddr() string {
	if n.replLis == nil {
		return ""
	}
	return n.replLis.Addr().String()
}

// Role returns the node's current role. A root fenced behind the node's
// back (an edge proved a newer epoch) reads as RoleFenced.
func (n *Node) Role() Role {
	n.mu.Lock()
	r := n.role
	n.mu.Unlock()
	if r != RoleFenced && n.root.Fenced() {
		return RoleFenced
	}
	return r
}

// Epoch returns the fencing epoch the node's root holds.
func (n *Node) Epoch() uint64 { return n.root.Epoch() }

// Stats returns the lifetime replication counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Health reports the wrapped root's health decorated with the
// replication role and epoch.
func (n *Node) Health() obsv.Health {
	h := n.root.Health()
	h.Role = n.Role().String()
	h.Epoch = n.root.Epoch()
	return h
}

// Serve runs the node until Close (or, for a primary, until the root's
// deployment completes). edgeLis is the edge-facing listener: a primary
// hands it straight to Root.Serve; a standby holds it — refusing every
// connection immediately so edges rotate to the real primary — and
// serves on it after promotion.
func (n *Node) Serve(edgeLis net.Listener) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return edgeLis.Close()
	}
	role := n.role
	n.mu.Unlock()

	// The replication listener answers from the start on every role: a
	// primary accepts standbys, and any group member — standby included —
	// must answer vote exchanges for elections to make quorum.
	if n.replLis != nil {
		n.wg.Add(1)
		go n.acceptStandbys()
	}

	if role == RolePrimary {
		return n.servePrimary(edgeLis)
	}

	n.wg.Add(2)
	go n.standbyLoop()
	go n.watchdog()
	refusal := make(chan struct{})
	n.mu.Lock()
	n.refusal = refusal
	n.mu.Unlock()
	go func() {
		defer close(refusal)
		n.refuseUntilPromoted(edgeLis)
	}()

	select {
	case <-n.stop:
		<-refusal
		n.wg.Wait()
		return nil
	case <-n.promoted:
		<-refusal
		return n.servePrimary(edgeLis)
	}
}

// servePrimary serves edges (the replication accept loop is already
// running — Serve starts it for every role).
func (n *Node) servePrimary(edgeLis net.Listener) error {
	err := n.root.Serve(edgeLis)
	if n.root.Fenced() {
		n.noteFenced()
	}
	return err
}

// Close stops the node: the replication listener, any standby session,
// the wrapped root, and every helper goroutine.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	replLis := n.replLis
	conn := n.standbyConn
	n.mu.Unlock()
	n.stopOnce.Do(func() { close(n.stop) })
	if replLis != nil {
		_ = replLis.Close()
	}
	if conn != nil {
		_ = conn.Close()
	}
	err := n.root.Close()
	n.wg.Wait()
	return err
}

// noteFenced flips the node into RoleFenced (idempotent) and tears down
// replication so a demoted primary stops streaming stale records.
func (n *Node) noteFenced() {
	n.root.Fence()
	n.mu.Lock()
	already := n.role == RoleFenced
	n.role = RoleFenced
	n.mu.Unlock()
	if !already {
		n.noteRole(RoleFenced)
	}
	n.stopOnce.Do(func() { close(n.stop) })
}

// dial opens one replication connection.
func (n *Node) dial(addr string) (net.Conn, error) {
	if n.cfg.Dial != nil {
		return n.cfg.Dial(addr)
	}
	return net.DialTimeout("tcp", addr, n.cfg.WriteTimeout)
}

// sleepBackoff pauses before reconnect attempt k, reporting false when
// the node stopped or promoted while sleeping.
func (n *Node) sleepBackoff(k int) bool {
	n.mu.Lock()
	jitter := 0.5 + n.rng.Float64()
	n.mu.Unlock()
	delay := transport.BackoffDelay(jitter, n.cfg.RetryBaseDelay, n.cfg.RetryMaxDelay, k)
	select {
	case <-n.stop:
		return false
	case <-n.promoted:
		return false
	case <-time.After(delay):
		return true
	}
}

// noteRole mirrors the role into the afl_replica_role gauge
// (0 primary, 1 standby, 2 promoting, 3 fenced).
func (n *Node) noteRole(r Role) {
	if n.cfg.Obsv == nil {
		return
	}
	n.cfg.Obsv.Registry.Gauge("afl_replica_role").Set(r.gaugeValue())
}

// noteEpoch mirrors the root's fencing epoch into afl_replica_epoch.
func (n *Node) noteEpoch() {
	if n.cfg.Obsv == nil {
		return
	}
	n.cfg.Obsv.Registry.Gauge("afl_replica_epoch").Set(float64(n.root.Epoch()))
}

// noteQuorum mirrors the configured quorum size into
// afl_replica_quorum_size (1 means lease-only promotion).
func (n *Node) noteQuorum() {
	if n.cfg.Obsv == nil {
		return
	}
	n.cfg.Obsv.Registry.Gauge("afl_replica_quorum_size").Set(float64(n.quorum))
}

// noteLag mirrors the replication lag in records into
// afl_replica_lag_records: how far behind the primary this standby is,
// or — on the primary — how far behind the slowest attached standby is.
func (n *Node) noteLag(lag uint64) {
	if n.cfg.Obsv == nil {
		return
	}
	n.cfg.Obsv.Registry.Gauge("afl_replica_lag_records").Set(float64(lag))
}
