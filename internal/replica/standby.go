package replica

import (
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"github.com/asyncfl/asyncfilter/internal/transport"
)

// This file is the standby side: the uplink loop that mirrors the
// primary's commits, the lease watchdog that decides the primary is
// dead, and the promotion sequence.

var errPrimaryGoodbye = errors.New("replica: primary shut down")

// standbyLoop dials the configured upstreams in rotation and runs one
// replication session at a time until the node stops or promotes.
func (n *Node) standbyLoop() {
	defer n.wg.Done()
	n.mu.Lock()
	// The lease clock starts now: a standby that can never reach its
	// primary still promotes one lease after starting, rather than
	// waiting forever for a first heartbeat.
	n.lastHeard = time.Now()
	n.mu.Unlock()

	attempt := 0
	target := 0
	for {
		select {
		case <-n.stop:
			return
		case <-n.promoted:
			return
		default:
		}
		addr := n.uplinks[target%len(n.uplinks)]
		conn, err := n.dial(addr)
		if err != nil {
			n.mu.Lock()
			n.stats.UplinkFailures++
			n.mu.Unlock()
			target++
			attempt++
			if !n.sleepBackoff(attempt) {
				return
			}
			continue
		}
		err = n.standbySession(conn)
		_ = conn.Close()
		if err == nil {
			return
		}
		n.mu.Lock()
		n.stats.UplinkFailures++
		n.mu.Unlock()
		if !errors.Is(err, errPrimaryGoodbye) {
			log.Printf("replica: node %d: session with %s ended: %v", n.cfg.NodeID, addr, err)
		}
		target++
		attempt++
		if !n.sleepBackoff(attempt) {
			return
		}
	}
}

// standbySession runs one attach-and-mirror session: hello, then apply
// every push and ack it. Returns nil only when the node is stopping.
func (n *Node) standbySession(conn net.Conn) error {
	n.mu.Lock()
	// A candidate keeps mirroring: hearing a live primary mid-election
	// refreshes lastHeard, which makes the election stand down instead of
	// fencing a healthy generation.
	if n.closed || (n.role != RoleStandby && n.role != RoleCandidate) {
		n.mu.Unlock()
		return nil
	}
	n.standbyConn = conn
	dirty := n.dirty
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		if n.standbyConn == conn {
			n.standbyConn = nil
		}
		n.mu.Unlock()
	}()

	uc := transport.NewUpstreamConnCodec(conn, n.cfg.Codec, n.cfg.MaxMessageBytes, n.cfg.ReadTimeout, n.cfg.WriteTimeout)
	hello := &transport.ReplicaMsg{Hello: &transport.ReplHello{
		NodeID:   n.cfg.NodeID,
		Epoch:    n.root.Epoch(),
		NextSeq:  uint64(n.root.Version()) + 1,
		FullSync: dirty,
	}}
	if err := uc.WriteReplica(hello); err != nil {
		return fmt.Errorf("hello: %w", err)
	}

	for {
		msg, err := uc.ReadPrimary()
		if err != nil {
			select {
			case <-n.stop:
				return nil
			case <-n.promoted:
				return nil
			default:
			}
			return err
		}
		if msg.Nack == transport.NackFenced {
			// The upstream proved STALER than us (our epoch is above its
			// own): a resurrected old primary. Rotate away; never adopt
			// anything from it.
			n.mu.Lock()
			n.stats.FencedObserved++
			n.mu.Unlock()
			return fmt.Errorf("upstream at epoch %d is stale, rotating", msg.Epoch)
		}
		if msg.Nack != 0 {
			return fmt.Errorf("upstream refused: %s", msg.Nack)
		}
		// Epochs are adopted from every push — heartbeats included — so a
		// standby idling behind a post-failover primary still promotes
		// above it, never into a dead generation's epoch.
		n.root.ObserveEpoch(msg.Epoch)
		n.noteEpoch()
		n.mu.Lock()
		n.lastHeard = time.Now()
		if msg.LatestSeq > n.primarySeq {
			n.primarySeq = msg.LatestSeq
		}
		n.mu.Unlock()

		switch {
		case msg.Goodbye:
			// A clean primary shutdown is not a promotion trigger — the
			// primary may be restarting. The lease watchdog decides.
			return errPrimaryGoodbye
		case len(msg.Snapshot) > 0:
			if _, err := n.root.InstallSnapshot(msg.Snapshot); err != nil {
				return fmt.Errorf("install snapshot: %w", err)
			}
			n.mu.Lock()
			n.dirty = false
			n.stats.SnapshotsInstalled++
			n.mu.Unlock()
		case msg.Record != nil:
			if err := n.root.ApplyRecord(msg.Record); err != nil {
				// The standby's model may now be ahead of its filter:
				// demand a snapshot on the next attach instead of
				// streaming on from a diverged base.
				n.mu.Lock()
				n.dirty = true
				n.mu.Unlock()
				return fmt.Errorf("apply record: %w", err)
			}
			n.mu.Lock()
			n.stats.RecordsApplied++
			n.mu.Unlock()
		}

		applied := uint64(n.root.Version())
		ack := &transport.ReplicaMsg{AckSeq: applied, Epoch: n.root.Epoch()}
		if err := uc.WriteReplica(ack); err != nil {
			return fmt.Errorf("ack: %w", err)
		}
		n.mu.Lock()
		lag := uint64(0)
		if n.primarySeq > applied {
			lag = n.primarySeq - applied
		}
		n.mu.Unlock()
		n.noteLag(lag)
	}
}

// watchdog reacts to an expired primary lease: in a quorum group it runs
// elections (retrying on loss — a minority partition retries forever and
// never serves); without a quorum it promotes outright, PR 7's
// lease-only behavior.
func (n *Node) watchdog() {
	defer n.wg.Done()
	interval := n.cfg.Lease / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-n.promoted:
			return
		case <-ticker.C:
			n.mu.Lock()
			expired := n.role == RoleStandby && !n.closed &&
				!n.lastHeard.IsZero() && time.Since(n.lastHeard) > n.cfg.Lease &&
				time.Now().After(n.nextElection)
			n.mu.Unlock()
			if !expired {
				continue
			}
			if n.quorum <= 1 {
				n.promote()
				return
			}
			if n.runElection() {
				return
			}
		}
	}
}

// promote runs the lease-only promotion sequence of a non-quorum group:
// cut the upstream session, bump and persist the fencing epoch, publish
// the peer list, and flip to primary so Serve hands the edge listener to
// the root. Quorum groups reach the same tail through runElection.
func (n *Node) promote() {
	lost, ok := n.beginPromoting()
	if !ok {
		return
	}

	// PromoteEpoch persists the new epoch before returning; it can only
	// refuse when a concurrent adoption raised the epoch first, in which
	// case go above that one.
	for {
		next := n.root.Epoch() + 1
		if err := n.root.PromoteEpoch(next); err == nil {
			log.Printf("replica: node %d: lease expired, promoting to primary at epoch %d (%d records behind)",
				n.cfg.NodeID, next, lost)
			break
		}
	}
	n.completePromotion(lost)
}

// beginPromoting moves a standby (or an election-winning candidate) into
// RolePromoting: it cuts the upstream session and freezes the lag
// accounting. Returns the records lost and false when the node is not in
// a promotable state.
func (n *Node) beginPromoting() (uint64, bool) {
	n.mu.Lock()
	if (n.role != RoleStandby && n.role != RoleCandidate) || n.closed {
		n.mu.Unlock()
		return 0, false
	}
	n.role = RolePromoting
	conn := n.standbyConn
	applied := uint64(n.root.Version())
	lost := uint64(0)
	if n.primarySeq > applied {
		lost = n.primarySeq - applied
	}
	n.mu.Unlock()
	n.noteRole(RolePromoting)
	if conn != nil {
		// Break any in-flight session so no record from the dead
		// generation lands after the epoch bump.
		_ = conn.Close()
	}
	return lost, true
}

// completePromotion finishes a promotion whose epoch is already
// persisted: publish the peer list, release the edge listener, and flip
// to primary.
func (n *Node) completePromotion(lost uint64) {
	if len(n.cfg.Peers) > 0 {
		n.root.SetPeers(n.cfg.Peers)
	}

	// Release the edge listener before publishing the new role: the
	// refusal loop may hold one last accepted connection, and an edge that
	// dials after observing RolePrimary must never be reset by it. (The
	// root is already promoted — epoch persisted, peers set — so Serve can
	// start accepting edges in parallel.)
	close(n.promoted)
	n.mu.Lock()
	refusal := n.refusal
	n.mu.Unlock()
	if refusal != nil {
		<-refusal
	}

	n.mu.Lock()
	n.role = RolePrimary
	n.lastSeq = uint64(n.root.Version())
	n.ring = nil
	n.stats.Promotions++
	n.stats.RecordsLostOnPromote += int(lost)
	n.mu.Unlock()
	n.noteRole(RolePrimary)
	n.noteEpoch()
}

// deadliner is the listener deadline control refuseUntilPromoted needs
// (satisfied by *net.TCPListener).
type deadliner interface {
	SetDeadline(time.Time) error
}

// refuseUntilPromoted holds the edge listener while standby, accepting
// and immediately closing every connection so edges get a fast
// connection-reset — and rotate to the next peer — instead of hanging in
// a read timeout against an unbound address.
func (n *Node) refuseUntilPromoted(lis net.Listener) {
	d, ok := lis.(deadliner)
	for {
		select {
		case <-n.stop:
			return
		case <-n.promoted:
			if ok {
				_ = d.SetDeadline(time.Time{})
			}
			return
		default:
		}
		if ok {
			_ = d.SetDeadline(time.Now().Add(50 * time.Millisecond))
		}
		conn, err := lis.Accept()
		if err == nil {
			_ = conn.Close()
			continue
		}
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			continue
		}
		return
	}
}
