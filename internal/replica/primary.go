package replica

import (
	"log"
	"net"
	"time"

	"github.com/asyncfl/asyncfilter/internal/transport"
)

// This file is the primary side of the replication channel: the commit
// tap that fans records out to subscribers, the standby accept loop, and
// the per-standby push/ack handler.

// onCommit receives one record per batch the root applies. It is called
// while the root holds the round slot, so records arrive in strict
// version order; it must never block — a subscriber whose buffer is full
// is marked overflowed and will be forced to reconnect and resync.
func (n *Node) onCommit(rec *transport.ReplRecord) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.ring) == 0 {
		n.ringBase = rec.Seq
	}
	n.ring = append(n.ring, rec)
	for len(n.ring) > n.cfg.LogDepth {
		n.ring = n.ring[1:]
		n.ringBase++
	}
	n.lastSeq = rec.Seq
	for sub := range n.subs {
		select {
		case sub.ch <- rec:
		default:
			sub.overflow = true
		}
	}
}

// acceptStandbys runs the replication accept loop until the listener
// closes (node Close, or Fence tearing the node down).
func (n *Node) acceptStandbys() {
	defer n.wg.Done()
	for {
		conn, err := n.replLis.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			n.handleStandby(conn)
		}()
	}
}

// handleStandby drives one inbound replication connection. A VoteRequest
// makes it a one-shot vote exchange; a Hello attaches a standby:
// validate it, decide between ring catch-up and a full snapshot, then
// push records (and heartbeats while idle) until the connection breaks
// or the node stops.
func (n *Node) handleStandby(conn net.Conn) {
	// Acceptor side: the attaching standby's (or vote candidate's) first
	// bytes negotiate gob or binary.
	uc := transport.AcceptUpstreamConn(conn, n.cfg.MaxMessageBytes, n.cfg.ReadTimeout, n.cfg.WriteTimeout)
	first, err := uc.ReadReplica()
	if err != nil {
		return
	}
	if first.Vote != nil {
		n.answerVote(uc, first.Vote)
		return
	}
	if first.Hello == nil {
		return
	}
	hello := first.Hello
	if err := hello.Validate(); err != nil {
		_ = uc.WritePrimary(&transport.PrimaryMsg{Nack: transport.NackMalformed, Epoch: n.root.Epoch()})
		return
	}
	if r := n.Role(); r != RolePrimary {
		// Every group member answers on this listener so votes can reach
		// it, but only a primary has an authoritative log to stream.
		// NackNotPrimary sends the dialer rotating WITHOUT refreshing its
		// lease — a mesh of leaderless standbys must still elect.
		_ = uc.WritePrimary(&transport.PrimaryMsg{Nack: transport.NackNotPrimary, Epoch: n.root.Epoch()})
		return
	}
	if hello.Epoch > n.root.Epoch() {
		// The standby has seen a newer primary than us: we are the stale
		// one. Refuse it and demote.
		n.mu.Lock()
		n.stats.FencedNacksSent++
		n.mu.Unlock()
		_ = uc.WritePrimary(&transport.PrimaryMsg{Nack: transport.NackFenced, Epoch: n.root.Epoch()})
		log.Printf("replica: node %d: standby %d carries epoch %d above ours, demoting",
			n.cfg.NodeID, hello.NodeID, hello.Epoch)
		n.noteFenced()
		return
	}

	// Register the subscriber and take the catch-up decision under the
	// same lock, so no committed record can fall between the backlog we
	// copy here and the first record the channel delivers.
	sub := &subscriber{ch: make(chan *transport.ReplRecord, n.cfg.LogDepth)}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	var backlog []*transport.ReplRecord
	needSnapshot := hello.FullSync
	switch {
	case needSnapshot:
	case hello.NextSeq == n.lastSeq+1:
		// Fully caught up: stream from the channel alone.
	case len(n.ring) > 0 && hello.NextSeq >= n.ringBase && hello.NextSeq <= n.lastSeq:
		backlog = append(backlog, n.ring[hello.NextSeq-n.ringBase:]...)
	default:
		// Behind the ring, or claiming a future the primary never
		// committed (a leftover from a dead sibling): re-ground it.
		needSnapshot = true
	}
	n.subs[sub] = struct{}{}
	n.stats.StandbyAttaches++
	n.mu.Unlock()
	defer n.dropSub(sub)

	// sent is the highest seq this standby holds; channel records at or
	// below it (queued while the backlog/snapshot was prepared) are
	// skipped, and any gap above it forces a resync via reconnect.
	sent := hello.NextSeq - 1
	if needSnapshot {
		blob, version, err := n.root.SnapshotBlob()
		if err != nil {
			log.Printf("replica: node %d: snapshot for standby %d failed: %v", n.cfg.NodeID, hello.NodeID, err)
			return
		}
		if !n.push(uc, sub, &transport.PrimaryMsg{Snapshot: blob}) {
			return
		}
		sent = version
		n.mu.Lock()
		n.stats.SnapshotsServed++
		n.mu.Unlock()
	}
	for _, rec := range backlog {
		if !n.pushRecord(uc, sub, rec) {
			return
		}
		sent = rec.Seq
	}

	hb := time.NewTicker(n.cfg.Heartbeat)
	defer hb.Stop()
	for {
		if n.subOverflowed(sub) {
			// The standby fell behind the channel buffer; records were
			// dropped. Cut the connection — it reconnects and catches up
			// from the ring or a snapshot.
			return
		}
		select {
		case rec := <-sub.ch:
			if rec.Seq <= sent {
				continue
			}
			if rec.Seq != sent+1 {
				return
			}
			if !n.pushRecord(uc, sub, rec) {
				return
			}
			sent = rec.Seq
		case <-hb.C:
			if !n.push(uc, sub, &transport.PrimaryMsg{Heartbeat: true}) {
				return
			}
		case <-n.stop:
			_ = uc.WritePrimary(&transport.PrimaryMsg{Goodbye: true, Epoch: n.root.Epoch(), LatestSeq: n.latestSeq()})
			return
		}
	}
}

// pushRecord pushes one log record and counts it.
func (n *Node) pushRecord(uc *transport.UpstreamConn, sub *subscriber, rec *transport.ReplRecord) bool {
	if !n.push(uc, sub, &transport.PrimaryMsg{Record: rec}) {
		return false
	}
	n.mu.Lock()
	n.stats.RecordsStreamed++
	n.mu.Unlock()
	return true
}

// push sends one primary message stamped with the current epoch and
// latest seq, then reads the standby's ack. A standby acking with a
// newer epoch proves this primary was superseded: it demotes.
func (n *Node) push(uc *transport.UpstreamConn, sub *subscriber, msg *transport.PrimaryMsg) bool {
	msg.Epoch = n.root.Epoch()
	msg.LatestSeq = n.latestSeq()
	if err := uc.WritePrimary(msg); err != nil {
		return false
	}
	ack, err := uc.ReadReplica()
	if err != nil {
		return false
	}
	if ack.Epoch > n.root.Epoch() {
		n.mu.Lock()
		n.stats.FencedObserved++
		n.mu.Unlock()
		log.Printf("replica: node %d: standby ack carries epoch %d above ours, demoting", n.cfg.NodeID, ack.Epoch)
		n.noteFenced()
		return false
	}
	n.mu.Lock()
	sub.acked = ack.AckSeq
	lag := uint64(0)
	for s := range n.subs {
		if d := n.lastSeq - s.acked; n.lastSeq > s.acked && d > lag {
			lag = d
		}
	}
	n.mu.Unlock()
	n.noteLag(lag)
	return true
}

// latestSeq returns the newest committed record seq.
func (n *Node) latestSeq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastSeq
}

// subOverflowed reports whether a subscriber lost records to a full
// buffer.
func (n *Node) subOverflowed(sub *subscriber) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return sub.overflow
}

// dropSub unregisters a subscriber.
func (n *Node) dropSub(sub *subscriber) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.subs, sub)
}
