package replica

import (
	"reflect"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/obsv"
)

// statMirror must cover every Stats field exactly once: the /metrics
// contract is "afl_replica counters match Node.Stats() exactly", so a
// new stats field without a mirror entry — RecordsLostOnPromote and
// Promotions once lived only in Stats() — is a bug this test catches.
func TestReplicaStatMirrorCoversAllStats(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	if typ.NumField() != len(statMirror) {
		t.Fatalf("Stats has %d fields but statMirror has %d entries — add the missing mirror",
			typ.NumField(), len(statMirror))
	}

	// Give every field a distinct value and demand every getter reads a
	// distinct field: the multiset of getter outputs must be exactly the
	// field values.
	var st Stats
	v := reflect.ValueOf(&st).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(int64(i + 1))
	}
	seen := make(map[int]string, len(statMirror))
	for _, m := range statMirror {
		got := m.Get(&st)
		if got < 1 || got > typ.NumField() {
			t.Errorf("%s reads %d, not a planted field value", m.Name, got)
			continue
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s and %s read the same Stats field", m.Name, prev)
		}
		seen[got] = m.Name
	}

	// The ISSUE-named series must exist under these exact names.
	names := make(map[string]bool, len(statMirror))
	for _, m := range statMirror {
		names[m.Name] = true
	}
	for _, want := range []string{
		"afl_replica_promotions_total",
		"afl_replica_records_lost_on_promote_total",
		"afl_replica_votes_total",
	} {
		if !names[want] {
			t.Errorf("statMirror is missing the %s series", want)
		}
	}
}

// TestPromotionCountersOnMetrics walks a lease-only failover with the
// hub attached and asserts the promotion counters land on a scrape
// exactly as Stats() reports them.
func TestPromotionCountersOnMetrics(t *testing.T) {
	hub := obsv.NewHub(0)
	pNode, err := NewNode(Config{
		NodeID:     0,
		ReplListen: "127.0.0.1:0",
		Lease:      200 * time.Millisecond,
	}, testRoot(t, newFilter(t)))
	if err != nil {
		t.Fatal(err)
	}
	startNode(t, pNode)

	sNode, err := NewNode(Config{
		NodeID:    1,
		Upstreams: []string{pNode.ReplAddr()},
		Lease:     200 * time.Millisecond,
		Obsv:      hub,
	}, testRoot(t, newFilter(t)))
	if err != nil {
		t.Fatal(err)
	}
	startNode(t, sNode)

	waitFor(t, 10*time.Second, "standby attached", func() bool {
		return pNode.Stats().StandbyAttaches >= 1
	})
	if err := pNode.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "standby promoted", func() bool {
		return sNode.Role() == RolePrimary
	})

	st := sNode.Stats()
	snap := hub.Registry.Snapshot()
	if got := snap.Counters["afl_replica_promotions_total"]; got != uint64(st.Promotions) || got != 1 {
		t.Errorf("afl_replica_promotions_total = %d, want %d (and 1)", got, st.Promotions)
	}
	if got := snap.Counters["afl_replica_records_lost_on_promote_total"]; got != uint64(st.RecordsLostOnPromote) {
		t.Errorf("afl_replica_records_lost_on_promote_total = %d, want %d", got, st.RecordsLostOnPromote)
	}
	// A lease-only pair scrapes quorum size 1 — the gauge distinguishes
	// it from a real quorum group on a dashboard.
	if got := snap.Gauges["afl_replica_quorum_size"]; got != 1 {
		t.Errorf("afl_replica_quorum_size = %v, want 1", got)
	}
}
