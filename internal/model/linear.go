package model

import (
	"math"

	"github.com/asyncfl/asyncfilter/internal/randx"

	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Linear is a multinomial logistic-regression classifier: a single
// fully-connected layer followed by softmax. Parameters are laid out as
// [W (classes × dim) row-major | b (classes)].
type Linear struct {
	dim     int
	classes int
	w       []float64 // len = classes*dim + classes
}

var _ Model = (*Linear)(nil)

// NewLinear builds a linear softmax classifier. initScale 0 selects
// 1/sqrt(dim).
func NewLinear(dim, classes int, initScale float64, seed int64) *Linear {
	if vecmath.IsZero(initScale) {
		initScale = 1 / math.Sqrt(float64(dim))
	}
	m := &Linear{
		dim:     dim,
		classes: classes,
		w:       make([]float64, classes*dim+classes),
	}
	initWeights(m.w[:classes*dim], initScale, randx.New(seed))
	return m
}

// NumParams implements Model.
func (m *Linear) NumParams() int { return len(m.w) }

// Params implements Model.
func (m *Linear) Params(dst []float64) {
	if len(dst) != len(m.w) {
		panic("model: Linear.Params: bad destination length")
	}
	copy(dst, m.w)
}

// SetParams implements Model.
func (m *Linear) SetParams(src []float64) {
	if len(src) != len(m.w) {
		panic("model: Linear.SetParams: bad source length")
	}
	copy(m.w, src)
}

// logits computes W*x + b into out (length classes).
func (m *Linear) logits(out, x []float64) {
	bias := m.w[m.classes*m.dim:]
	for c := 0; c < m.classes; c++ {
		row := m.w[c*m.dim : (c+1)*m.dim]
		var s float64
		for j, xj := range x {
			s += row[j] * xj
		}
		out[c] = s + bias[c]
	}
}

// Loss implements Model.
func (m *Linear) Loss(x []float64, label int) float64 {
	probs := make([]float64, m.classes)
	m.logits(probs, x)
	softmaxInPlace(probs)
	return crossEntropy(probs, label)
}

// Gradient implements Model.
func (m *Linear) Gradient(grad []float64, x []float64, label int) float64 {
	if len(grad) != len(m.w) {
		panic("model: Linear.Gradient: bad gradient length")
	}
	probs := make([]float64, m.classes)
	m.logits(probs, x)
	softmaxInPlace(probs)
	loss := crossEntropy(probs, label)

	// dL/dlogit_c = p_c - 1{c == label}
	biasGrad := grad[m.classes*m.dim:]
	for c := 0; c < m.classes; c++ {
		delta := probs[c]
		if c == label {
			delta--
		}
		row := grad[c*m.dim : (c+1)*m.dim]
		for j, xj := range x {
			row[j] += delta * xj
		}
		biasGrad[c] += delta
	}
	return loss
}

// Predict implements Model.
func (m *Linear) Predict(x []float64) int {
	logits := make([]float64, m.classes)
	m.logits(logits, x)
	best := 0
	for c := 1; c < m.classes; c++ {
		if logits[c] > logits[best] {
			best = c
		}
	}
	return best
}

// Clone implements Model.
func (m *Linear) Clone() Model {
	clone := &Linear{
		dim:     m.dim,
		classes: m.classes,
		w:       make([]float64, len(m.w)),
	}
	copy(clone.w, m.w)
	return clone
}
