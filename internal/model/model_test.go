package model

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/randx"
)

func newTestLinear(t *testing.T) Model {
	t.Helper()
	m, err := New(Config{Arch: ArchLinear, InputDim: 6, NumClasses: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestMLP(t *testing.T) Model {
	t.Helper()
	m, err := New(Config{Arch: ArchMLP, InputDim: 6, NumClasses: 3, Hidden: []int{8, 5}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Arch: ArchLinear, InputDim: 0, NumClasses: 3},
		{Arch: ArchLinear, InputDim: 4, NumClasses: 1},
		{Arch: ArchMLP, InputDim: 4, NumClasses: 3},                   // missing hidden
		{Arch: ArchMLP, InputDim: 4, NumClasses: 3, Hidden: []int{0}}, // zero width
		{Arch: "transformer", InputDim: 4, NumClasses: 3},             // unknown
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestParamsRoundTrip(t *testing.T) {
	for name, m := range map[string]Model{"linear": newTestLinear(t), "mlp": newTestMLP(t)} {
		p := make([]float64, m.NumParams())
		m.Params(p)
		p[0] = 42
		m.SetParams(p)
		q := make([]float64, m.NumParams())
		m.Params(q)
		if q[0] != 42 {
			t.Errorf("%s: SetParams/Params round-trip failed", name)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	for name, m := range map[string]Model{"linear": newTestLinear(t), "mlp": newTestMLP(t)} {
		clone := m.Clone()
		p := make([]float64, m.NumParams())
		m.Params(p)
		p[0] += 100
		m.SetParams(p)
		q := make([]float64, clone.NumParams())
		clone.Params(q)
		if q[0] == p[0] {
			t.Errorf("%s: clone shares parameter storage", name)
		}
		x := []float64{1, -1, 0.5, 0, 2, -2}
		if m.Loss(x, 0) == clone.Loss(x, 0) {
			// Losses could coincide by chance, but with a +100 weight shift
			// that would be extraordinary.
			t.Errorf("%s: clone loss unchanged after mutating original", name)
		}
	}
}

// gradientCheck compares analytic gradients against central finite
// differences on a handful of random coordinates.
func gradientCheck(t *testing.T, m Model, name string) {
	t.Helper()
	r := randx.New(7)
	x := randx.NormalVector(r, 6, 0, 1)
	label := 1

	n := m.NumParams()
	grad := make([]float64, n)
	m.Gradient(grad, x, label)

	params := make([]float64, n)
	m.Params(params)
	const h = 1e-6
	checked := 0
	for _, i := range r.Perm(n) {
		if checked >= 25 {
			break
		}
		orig := params[i]
		params[i] = orig + h
		m.SetParams(params)
		lp := m.Loss(x, label)
		params[i] = orig - h
		m.SetParams(params)
		lm := m.Loss(x, label)
		params[i] = orig
		m.SetParams(params)

		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("%s: grad[%d] = %v, finite difference = %v", name, i, grad[i], numeric)
		}
		checked++
	}
}

func TestLinearGradientCheck(t *testing.T) { gradientCheck(t, newTestLinear(t), "linear") }
func TestMLPGradientCheck(t *testing.T)    { gradientCheck(t, newTestMLP(t), "mlp") }

func TestGradientAccumulates(t *testing.T) {
	m := newTestLinear(t)
	x := []float64{1, 0, -1, 0.5, 2, -0.5}
	g1 := make([]float64, m.NumParams())
	m.Gradient(g1, x, 0)
	g2 := make([]float64, m.NumParams())
	m.Gradient(g2, x, 0)
	m.Gradient(g2, x, 0) // accumulate twice
	for i := range g1 {
		if math.Abs(g2[i]-2*g1[i]) > 1e-12 {
			t.Fatalf("gradient did not accumulate: g2[%d]=%v, want %v", i, g2[i], 2*g1[i])
		}
	}
}

func TestLossMatchesGradientReturn(t *testing.T) {
	for name, m := range map[string]Model{"linear": newTestLinear(t), "mlp": newTestMLP(t)} {
		x := []float64{0.3, -0.2, 1, 0, -1, 0.7}
		grad := make([]float64, m.NumParams())
		got := m.Gradient(grad, x, 2)
		want := m.Loss(x, 2)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: Gradient returned loss %v, Loss = %v", name, got, want)
		}
	}
}

func TestPredictDeterministic(t *testing.T) {
	for name, m := range map[string]Model{"linear": newTestLinear(t), "mlp": newTestMLP(t)} {
		x := []float64{1, 2, 3, 4, 5, 6}
		p1, p2 := m.Predict(x), m.Predict(x)
		if p1 != p2 {
			t.Errorf("%s: Predict not deterministic", name)
		}
		if p1 < 0 || p1 >= 3 {
			t.Errorf("%s: Predict out of range: %d", name, p1)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	logits := []float64{1000, 1001, 999}
	softmaxInPlace(logits)
	var sum float64
	for _, p := range logits {
		if math.IsNaN(p) || p < 0 {
			t.Fatalf("softmax produced invalid probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sums to %v", sum)
	}
}

func TestCrossEntropyFloor(t *testing.T) {
	if l := crossEntropy([]float64{0, 1}, 0); math.IsInf(l, 0) {
		t.Error("crossEntropy overflowed to Inf on zero probability")
	}
}

func TestEvaluateOnSeparableData(t *testing.T) {
	cfg := dataset.SyntheticConfig{
		Name: "sep", NumClasses: 3, Dim: 6,
		TrainSize: 600, TestSize: 150,
		Separation: 6, Noise: 0.5, Seed: 3,
	}
	train, test, err := dataset.GenerateSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewLinear(6, 3, 0, 4)

	// A few epochs of plain gradient descent should nearly solve a
	// well-separated mixture.
	grad := make([]float64, m.NumParams())
	params := make([]float64, m.NumParams())
	for epoch := 0; epoch < 30; epoch++ {
		for _, ex := range train.Examples {
			for i := range grad {
				grad[i] = 0
			}
			m.Gradient(grad, ex.Features, ex.Label)
			m.Params(params)
			for i := range params {
				params[i] -= 0.05 * grad[i]
			}
			m.SetParams(params)
		}
	}
	acc, loss := Evaluate(m, test)
	if acc < 0.95 {
		t.Errorf("linear accuracy on separable data = %v, want >= 0.95", acc)
	}
	if loss <= 0 {
		t.Errorf("mean loss = %v, want > 0", loss)
	}
}

func TestEvaluateEmptyDataset(t *testing.T) {
	m := newTestLinear(t)
	acc, loss := Evaluate(m, &dataset.Dataset{NumClasses: 3, Dim: 6})
	if acc != 0 || loss != 0 {
		t.Errorf("Evaluate(empty) = %v, %v, want 0, 0", acc, loss)
	}
}

func TestMLPParamCount(t *testing.T) {
	m := NewMLP(4, []int{3}, 2, 0, 1)
	// 4*3 + 3 + 3*2 + 2 = 23
	if got := m.NumParams(); got != 23 {
		t.Errorf("NumParams = %d, want 23", got)
	}
}

func TestPropertySoftmaxIsDistribution(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		logits := randx.NormalVector(randx.New(seed), n, 0, 50)
		softmaxInPlace(logits)
		var sum float64
		for _, p := range logits {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyGradientZeroAtPerfectPrediction(t *testing.T) {
	// When the model already assigns probability ~1 to the true label, the
	// gradient should be near zero.
	m := NewLinear(2, 2, 0, 9)
	p := make([]float64, m.NumParams())
	// Strong weights toward class 0 for positive x[0].
	p[0] = 100 // W[0][0]
	m.SetParams(p)
	grad := make([]float64, m.NumParams())
	m.Gradient(grad, []float64{1, 0}, 0)
	for i, g := range grad {
		if math.Abs(g) > 1e-6 {
			t.Errorf("grad[%d] = %v, want ~0 at saturated correct prediction", i, g)
		}
	}
}
