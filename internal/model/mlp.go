package model

import (
	"math"

	"github.com/asyncfl/asyncfilter/internal/randx"

	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// MLP is a fully-connected feed-forward network with ReLU hidden
// activations and a softmax output, standing in for the paper's deeper
// convolutional models. Parameters for each layer l (weights then biases)
// are packed consecutively into one flat vector.
type MLP struct {
	sizes []int // [input, hidden..., classes]
	w     []float64
	// offsets[l] is the start of layer l's weight block; biases follow the
	// weights within each block.
	offsets []int
}

var _ Model = (*MLP)(nil)

// NewMLP builds an MLP with the given hidden widths. initScale 0 selects
// He initialization (sqrt(2/fanIn)) per layer.
func NewMLP(dim int, hidden []int, classes int, initScale float64, seed int64) *MLP {
	sizes := make([]int, 0, len(hidden)+2)
	sizes = append(sizes, dim)
	sizes = append(sizes, hidden...)
	sizes = append(sizes, classes)

	total := 0
	offsets := make([]int, len(sizes)-1)
	for l := 0; l < len(sizes)-1; l++ {
		offsets[l] = total
		total += sizes[l]*sizes[l+1] + sizes[l+1]
	}
	m := &MLP{sizes: sizes, w: make([]float64, total), offsets: offsets}

	r := randx.New(seed)
	for l := 0; l < len(sizes)-1; l++ {
		scale := initScale
		if vecmath.IsZero(scale) {
			scale = math.Sqrt(2 / float64(sizes[l]))
		}
		wBlock := m.weights(l)
		initWeights(wBlock, scale, r)
		// Biases start at zero.
	}
	return m
}

// weights returns the weight sub-slice of layer l (out × in, row-major).
func (m *MLP) weights(l int) []float64 {
	start := m.offsets[l]
	n := m.sizes[l] * m.sizes[l+1]
	return m.w[start : start+n]
}

// biases returns the bias sub-slice of layer l.
func (m *MLP) biases(l int) []float64 {
	start := m.offsets[l] + m.sizes[l]*m.sizes[l+1]
	return m.w[start : start+m.sizes[l+1]]
}

// NumParams implements Model.
func (m *MLP) NumParams() int { return len(m.w) }

// Params implements Model.
func (m *MLP) Params(dst []float64) {
	if len(dst) != len(m.w) {
		panic("model: MLP.Params: bad destination length")
	}
	copy(dst, m.w)
}

// SetParams implements Model.
func (m *MLP) SetParams(src []float64) {
	if len(src) != len(m.w) {
		panic("model: MLP.SetParams: bad source length")
	}
	copy(m.w, src)
}

// forward runs the network, returning per-layer activations. acts[0] is the
// input; acts[len(sizes)-1] holds the output probabilities.
func (m *MLP) forward(x []float64) [][]float64 {
	layers := len(m.sizes) - 1
	acts := make([][]float64, layers+1)
	acts[0] = x
	for l := 0; l < layers; l++ {
		in := acts[l]
		out := make([]float64, m.sizes[l+1])
		w := m.weights(l)
		b := m.biases(l)
		inDim := m.sizes[l]
		for o := range out {
			row := w[o*inDim : (o+1)*inDim]
			var s float64
			for j, xj := range in {
				s += row[j] * xj
			}
			out[o] = s + b[o]
		}
		if l < layers-1 {
			for o := range out {
				if out[o] < 0 {
					out[o] = 0 // ReLU
				}
			}
		} else {
			softmaxInPlace(out)
		}
		acts[l+1] = out
	}
	return acts
}

// Loss implements Model.
func (m *MLP) Loss(x []float64, label int) float64 {
	acts := m.forward(x)
	return crossEntropy(acts[len(acts)-1], label)
}

// Gradient implements Model.
func (m *MLP) Gradient(grad []float64, x []float64, label int) float64 {
	if len(grad) != len(m.w) {
		panic("model: MLP.Gradient: bad gradient length")
	}
	layers := len(m.sizes) - 1
	acts := m.forward(x)
	probs := acts[layers]
	loss := crossEntropy(probs, label)

	// delta starts as softmax+CE gradient at the output layer.
	delta := make([]float64, len(probs))
	copy(delta, probs)
	delta[label]--

	for l := layers - 1; l >= 0; l-- {
		in := acts[l]
		inDim := m.sizes[l]
		wStart := m.offsets[l]
		bStart := wStart + inDim*m.sizes[l+1]
		for o, dl := range delta {
			if vecmath.IsZero(dl) {
				continue
			}
			gRow := grad[wStart+o*inDim : wStart+(o+1)*inDim]
			for j, xj := range in {
				gRow[j] += dl * xj
			}
			grad[bStart+o] += dl
		}
		if l == 0 {
			break
		}
		// Backpropagate delta to the previous layer through W and ReLU.
		w := m.weights(l)
		prev := make([]float64, inDim)
		for o, dl := range delta {
			if vecmath.IsZero(dl) {
				continue
			}
			row := w[o*inDim : (o+1)*inDim]
			for j := range prev {
				prev[j] += dl * row[j]
			}
		}
		for j := range prev {
			if in[j] <= 0 {
				prev[j] = 0 // ReLU gate (activation was clamped)
			}
		}
		delta = prev
	}
	return loss
}

// Predict implements Model.
func (m *MLP) Predict(x []float64) int {
	acts := m.forward(x)
	probs := acts[len(acts)-1]
	best := 0
	for c := 1; c < len(probs); c++ {
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best
}

// Clone implements Model.
func (m *MLP) Clone() Model {
	clone := &MLP{
		sizes:   append([]int(nil), m.sizes...),
		w:       append([]float64(nil), m.w...),
		offsets: append([]int(nil), m.offsets...),
	}
	return clone
}
