// Package model implements the trainable classifiers the federated clients
// optimize. Models expose their parameters as a single flat []float64
// vector — the representation every other layer of the stack (updates,
// attacks, filters, aggregation) operates on.
//
// Two architectures are provided, standing in for the paper's LeNet-5 and
// VGG-16 (see DESIGN.md §2): a linear softmax classifier and a multi-layer
// perceptron with ReLU activations. Both compute exact gradients of the
// cross-entropy loss.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/asyncfl/asyncfilter/internal/dataset"
)

// Model is a classifier with flat-vector parameter access.
//
// Implementations must be deterministic: identical parameters and inputs
// produce identical outputs and gradients.
type Model interface {
	// NumParams returns the length of the flat parameter vector.
	NumParams() int
	// Params copies the current parameters into dst, which must have
	// length NumParams().
	Params(dst []float64)
	// SetParams overwrites the parameters from src, which must have length
	// NumParams().
	SetParams(src []float64)
	// Loss returns the cross-entropy loss of a single example.
	Loss(x []float64, label int) float64
	// Gradient accumulates the gradient of the single-example loss into
	// grad (length NumParams()) and returns the loss.
	Gradient(grad []float64, x []float64, label int) float64
	// Predict returns the most probable class for x.
	Predict(x []float64) int
	// Clone returns an independent deep copy.
	Clone() Model
}

// Config selects and sizes an architecture.
type Config struct {
	// Arch is "linear" or "mlp".
	Arch string
	// InputDim is the feature dimensionality.
	InputDim int
	// NumClasses is the number of output classes.
	NumClasses int
	// Hidden lists hidden-layer widths (MLP only).
	Hidden []int
	// InitScale is the standard deviation of the Gaussian weight
	// initialization; 0 selects a sensible default.
	InitScale float64
	// Seed drives the weight initialization.
	Seed int64
}

// Architecture names.
const (
	ArchLinear = "linear"
	ArchMLP    = "mlp"
)

// New builds a model from the configuration.
func New(cfg Config) (Model, error) {
	if cfg.InputDim < 1 {
		return nil, fmt.Errorf("model: InputDim = %d, need >= 1", cfg.InputDim)
	}
	if cfg.NumClasses < 2 {
		return nil, fmt.Errorf("model: NumClasses = %d, need >= 2", cfg.NumClasses)
	}
	switch cfg.Arch {
	case ArchLinear:
		return NewLinear(cfg.InputDim, cfg.NumClasses, cfg.InitScale, cfg.Seed), nil
	case ArchMLP:
		if len(cfg.Hidden) == 0 {
			return nil, fmt.Errorf("model: MLP requires at least one hidden layer")
		}
		for _, h := range cfg.Hidden {
			if h < 1 {
				return nil, fmt.Errorf("model: hidden width %d, need >= 1", h)
			}
		}
		return NewMLP(cfg.InputDim, cfg.Hidden, cfg.NumClasses, cfg.InitScale, cfg.Seed), nil
	default:
		return nil, fmt.Errorf("model: unknown architecture %q (want %q or %q)", cfg.Arch, ArchLinear, ArchMLP)
	}
}

// softmaxInPlace converts logits to probabilities with the usual max-shift
// for numerical stability.
func softmaxInPlace(logits []float64) {
	maxLogit := logits[0]
	for _, l := range logits[1:] {
		if l > maxLogit {
			maxLogit = l
		}
	}
	var sum float64
	for i, l := range logits {
		e := math.Exp(l - maxLogit)
		logits[i] = e
		sum += e
	}
	for i := range logits {
		logits[i] /= sum
	}
}

// crossEntropy returns -log p[label], floored to avoid Inf on underflow.
func crossEntropy(probs []float64, label int) float64 {
	p := probs[label]
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

// Evaluate returns the accuracy and mean loss of the model on the dataset.
func Evaluate(m Model, d *dataset.Dataset) (accuracy, meanLoss float64) {
	if d.Len() == 0 {
		return 0, 0
	}
	correct := 0
	var lossSum float64
	for _, ex := range d.Examples {
		if m.Predict(ex.Features) == ex.Label {
			correct++
		}
		lossSum += m.Loss(ex.Features, ex.Label)
	}
	n := float64(d.Len())
	return float64(correct) / n, lossSum / n
}

// initWeights fills w with N(0, scale^2) draws.
func initWeights(w []float64, scale float64, r *rand.Rand) {
	for i := range w {
		w[i] = scale * r.NormFloat64()
	}
}
