package transport

import (
	"time"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/obsv"
)

// statMirror maps every /metrics counter of the afl_server family to the
// ServerStats field it mirrors. The mirroring runs as an OnCollect
// callback (see newServerObs), so a scrape always reflects Server.Stats()
// exactly — the table is the single source of truth shared by the
// collector, the integration tests and the README's field-mapping docs.
// A reflection test asserts the table covers every ServerStats field.
var statMirror = []struct {
	Name string
	Get  func(st *ServerStats) int
}{
	{"afl_rounds_total", func(st *ServerStats) int { return st.Rounds }},
	{"afl_accepted_total", func(st *ServerStats) int { return st.Accepted }},
	{"afl_deferred_total", func(st *ServerStats) int { return st.Deferred }},
	{"afl_rejected_total", func(st *ServerStats) int { return st.Rejected }},
	{"afl_dropped_stale_total", func(st *ServerStats) int { return st.DroppedStale }},
	{"afl_dropped_malformed_total", func(st *ServerStats) int { return st.DroppedMalformed }},
	{"afl_dropped_oversize_total", func(st *ServerStats) int { return st.DroppedOversize }},
	{"afl_updates_received_total", func(st *ServerStats) int { return st.UpdatesReceived }},
	{"afl_watchdog_rounds_total", func(st *ServerStats) int { return st.WatchdogRounds }},
	{"afl_clients_connected", func(st *ServerStats) int { return st.ClientsConnected }},
	{"afl_reconnects_total", func(st *ServerStats) int { return st.Reconnects }},
	{"afl_handler_panics_total", func(st *ServerStats) int { return st.HandlerPanics }},
	{"afl_checkpoints_total", func(st *ServerStats) int { return st.Checkpoints }},
	{"afl_dropped_shed_total", func(st *ServerStats) int { return st.DroppedShed }},
	{"afl_dropped_rate_limited_total", func(st *ServerStats) int { return st.DroppedRateLimited }},
	{"afl_dropped_quarantined_total", func(st *ServerStats) int { return st.DroppedQuarantined }},
	{"afl_quarantined_clients_total", func(st *ServerStats) int { return st.QuarantinedClients }},
	{"afl_expired_leases_total", func(st *ServerStats) int { return st.ExpiredLeases }},
	{"afl_heartbeats_total", func(st *ServerStats) int { return st.Heartbeats }},
	{"afl_nacks_sent_total", func(st *ServerStats) int { return st.NacksSent }},
}

// nackCodes enumerates every NackCode for per-code counter registration.
var nackCodes = []NackCode{
	NackRateLimited, NackOverloaded, NackQuarantined, NackDraining, NackMalformed,
}

// serverObs holds the transport's event-driven metric handles. A nil
// *serverObs (observability disabled) is valid: every method nil-checks
// the receiver, so instrumentation sites need no conditionals.
type serverObs struct {
	hub          *obsv.Hub
	roundLatency *obsv.Histogram
	batchSize    *obsv.Histogram
	nacks        map[NackCode]*obsv.Counter
}

// newServerObs wires a hub to a server: the stats-mirror collector, the
// round-latency and batch-size histograms, and the per-code NACK
// counters. The collector calls s.Stats() on the scraping goroutine —
// never while s.mu is held by the scraper itself — so the mirrored
// counters are exactly the values Stats() returns at scrape time.
func newServerObs(hub *obsv.Hub, s *Server) *serverObs {
	o := &serverObs{
		hub:          hub,
		roundLatency: hub.Registry.Histogram("afl_round_latency_seconds", obsv.DefLatencyBuckets),
		batchSize:    hub.Registry.Histogram("afl_round_batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128}),
		nacks:        make(map[NackCode]*obsv.Counter, len(nackCodes)),
	}
	for _, code := range nackCodes {
		o.nacks[code] = hub.Registry.Counter(`afl_nacks_total{code="` + code.String() + `"}`)
	}
	mirror := make([]*obsv.Counter, len(statMirror))
	for i, m := range statMirror {
		mirror[i] = hub.Registry.Counter(m.Name)
	}
	hub.Registry.OnCollect(func() {
		st := s.Stats()
		for i, m := range statMirror {
			mirror[i].Set(uint64(m.Get(&st)))
		}
	})
	return o
}

// noteNack counts one typed refusal actually sent to a client. Called
// from connection handlers outside s.mu.
func (o *serverObs) noteNack(code NackCode) {
	if o == nil {
		return
	}
	if c := o.nacks[code]; c != nil {
		c.Inc()
	}
}

// roundCommitted records one committed aggregation round: commit latency
// (drain to model-apply) and batch composition, as a histogram sample
// each plus one trace record. Called outside s.mu.
func (o *serverObs) roundCommitted(version int, latency time.Duration, batch, accepted, deferred, rejected int) {
	if o == nil {
		return
	}
	o.roundLatency.Observe(latency.Seconds())
	o.batchSize.Observe(float64(batch))
	o.hub.Tracer.Record(obsv.Record{
		Kind:         obsv.KindRound,
		Round:        version,
		Batch:        batch,
		Accepted:     accepted,
		Deferred:     deferred,
		Rejected:     rejected,
		LatencyNanos: int64(latency),
	})
}

// wireObsv attaches the hub's sinks to the server's buffer and filter
// (when the filter supports observation) and builds the serverObs. Runs
// once from NewServer, after any checkpoint restore, before the server
// is shared with any goroutine.
func (s *Server) wireObsv(hub *obsv.Hub) {
	s.obs = newServerObs(hub, s)
	s.buffer.SetObserver(obsv.NewBufferSink(hub))
	if of, ok := s.filter.(fl.ObservableFilter); ok {
		of.SetObserver(obsv.NewFilterSink(hub))
	}
}

// Draining reports whether a graceful drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Finished reports whether the deployment has completed its rounds (or
// a drain flushed the final one).
func (s *Server) Finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finished
}
