package transport

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"time"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Default reconnect pacing, used when retries are enabled but the delays
// are left zero.
const (
	defaultRetryBaseDelay = 50 * time.Millisecond
	defaultRetryMaxDelay  = 2 * time.Second
)

// ClientConfig parameterizes a transport client.
type ClientConfig struct {
	// ID identifies the client to the server.
	ID int
	// Data is the client's local dataset.
	Data *dataset.Dataset
	// Model builds the local model (must match the server's parameter
	// dimension).
	Model model.Config
	// Trainer configures local optimization.
	Trainer fl.TrainerConfig
	// Attack optionally turns the client malicious: its honest delta is
	// crafted through the attack before transmission. Leave zero-valued
	// for an honest client.
	Attack attack.Config
	// ThinkTime pauses between tasks, simulating device speed (0 = none).
	ThinkTime time.Duration
	// Seed drives local randomness.
	Seed int64
	// MaxRetries is the budget of consecutive failed connection attempts
	// before Run gives up (0 = no reconnect, fail on the first error).
	// The budget refills whenever a connection makes progress (completes
	// at least one training task).
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff between reconnect
	// attempts (default 50ms when MaxRetries > 0).
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff (default 2s).
	RetryMaxDelay time.Duration
	// DialTimeout bounds each connection attempt (0 = no timeout).
	DialTimeout time.Duration
	// Dial overrides how connections are established (nil = plain TCP).
	// Tests plug in FaultDialer here to run a client through a flaky
	// network.
	Dial func(addr string) (net.Conn, error)
}

// Client is a federated learning client speaking the transport protocol.
type Client struct {
	cfg ClientConfig
	atk attack.Attack
	rng *rand.Rand
	// TasksRun counts the local training rounds executed.
	TasksRun int
	// Reconnects counts successful re-dials after a dropped connection.
	Reconnects int
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Data == nil || cfg.Data.Len() == 0 {
		return nil, fmt.Errorf("transport: NewClient: empty dataset")
	}
	if err := cfg.Trainer.Validate(); err != nil {
		return nil, fmt.Errorf("transport: NewClient: %w", err)
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("transport: NewClient: MaxRetries = %d, need >= 0", cfg.MaxRetries)
	}
	atk, err := attack.New(cfg.Attack)
	if err != nil {
		return nil, fmt.Errorf("transport: NewClient: %w", err)
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = defaultRetryBaseDelay
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = defaultRetryMaxDelay
	}
	return &Client{
		cfg: cfg,
		atk: atk,
		rng: randx.New(cfg.Seed + int64(cfg.ID)),
	}, nil
}

// Run connects to the server and participates until the server signals
// completion. When the connection drops mid-deployment it reconnects with
// exponential backoff plus jitter, re-introduces itself and resumes from
// the freshly issued global model. Run fails once MaxRetries consecutive
// attempts make no progress.
func (c *Client) Run(addr string) error {
	failures := 0
	connected := false
	for {
		conn, err := c.dial(addr)
		if err == nil {
			if connected {
				c.Reconnects++
			}
			connected = true
			tasksBefore := c.TasksRun
			err = c.RunConn(conn)
			conn.Close()
			if err == nil {
				return nil // server signalled Done
			}
			if c.TasksRun > tasksBefore {
				failures = 0 // the connection made progress: refill budget
			}
		}
		failures++
		if failures > c.cfg.MaxRetries {
			return fmt.Errorf("transport: client %d: giving up after %d consecutive failures: %w",
				c.cfg.ID, failures, err)
		}
		time.Sleep(c.backoff(failures))
	}
}

// dial opens one connection using the configured dialer.
func (c *Client) dial(addr string) (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial(addr)
	}
	conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	return conn, nil
}

// backoff returns the sleep before retry attempt n (1-based): exponential
// growth from RetryBaseDelay capped at RetryMaxDelay, with ±50% jitter so
// a fleet of clients dropped by the same fault does not reconnect in
// lockstep.
func (c *Client) backoff(n int) time.Duration {
	d := c.cfg.RetryBaseDelay
	for i := 1; i < n && d < c.cfg.RetryMaxDelay; i++ {
		d *= 2
	}
	if d > c.cfg.RetryMaxDelay {
		d = c.cfg.RetryMaxDelay
	}
	jitter := 0.5 + c.rng.Float64() // in [0.5, 1.5)
	return time.Duration(float64(d) * jitter)
}

// RunConn participates over an established connection (useful for tests
// and custom transports). It returns nil only when the server signals
// completion; any transport error is returned for the caller (Run) to
// decide whether to reconnect.
func (c *Client) RunConn(conn net.Conn) error {
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	hello := ClientMsg{Hello: &Hello{ClientID: c.cfg.ID, NumSamples: c.cfg.Data.Len()}}
	if err := enc.Encode(&hello); err != nil {
		return fmt.Errorf("transport: hello: %w", err)
	}

	m, err := model.New(c.cfg.Model)
	if err != nil {
		return fmt.Errorf("transport: model: %w", err)
	}

	for {
		var msg ServerMsg
		if err := dec.Decode(&msg); err != nil {
			return fmt.Errorf("transport: receive: %w", err)
		}
		if msg.Done {
			return nil
		}
		if msg.Task == nil {
			continue
		}
		if len(msg.Task.Params) != m.NumParams() {
			return fmt.Errorf("transport: task has %d params, model needs %d", len(msg.Task.Params), m.NumParams())
		}
		if c.cfg.ThinkTime > 0 {
			time.Sleep(c.cfg.ThinkTime)
		}
		m.SetParams(msg.Task.Params)
		delta, err := fl.LocalTrain(m, c.cfg.Data, c.cfg.Trainer, c.rng)
		if err != nil {
			return fmt.Errorf("transport: local training: %w", err)
		}
		crafted, err := c.atk.Craft([][]float64{delta}, c.rng)
		if err != nil {
			return fmt.Errorf("transport: attack: %w", err)
		}
		if len(crafted) != 1 {
			// A malfunctioning attack must not silently fall back to the
			// honest delta: that would misreport the deployment under test.
			return fmt.Errorf("transport: attack crafted %d deltas for 1 honest input", len(crafted))
		}
		delta = crafted[0]
		c.TasksRun++
		out := ClientMsg{Update: &UpdateMsg{
			BaseVersion: msg.Task.Version,
			Delta:       vecmath.Clone(delta),
		}}
		if err := enc.Encode(&out); err != nil {
			return fmt.Errorf("transport: send update: %w", err)
		}
	}
}
