package transport

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"time"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// ClientConfig parameterizes a transport client.
type ClientConfig struct {
	// ID identifies the client to the server.
	ID int
	// Data is the client's local dataset.
	Data *dataset.Dataset
	// Model builds the local model (must match the server's parameter
	// dimension).
	Model model.Config
	// Trainer configures local optimization.
	Trainer fl.TrainerConfig
	// Attack optionally turns the client malicious: its honest delta is
	// crafted through the attack before transmission. Leave zero-valued
	// for an honest client.
	Attack attack.Config
	// ThinkTime pauses between tasks, simulating device speed (0 = none).
	ThinkTime time.Duration
	// Seed drives local randomness.
	Seed int64
}

// Client is a federated learning client speaking the transport protocol.
type Client struct {
	cfg ClientConfig
	atk attack.Attack
	rng *rand.Rand
	// TasksRun counts the local training rounds executed.
	TasksRun int
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Data == nil || cfg.Data.Len() == 0 {
		return nil, fmt.Errorf("transport: NewClient: empty dataset")
	}
	if err := cfg.Trainer.Validate(); err != nil {
		return nil, fmt.Errorf("transport: NewClient: %w", err)
	}
	atk, err := attack.New(cfg.Attack)
	if err != nil {
		return nil, fmt.Errorf("transport: NewClient: %w", err)
	}
	return &Client{
		cfg: cfg,
		atk: atk,
		rng: rand.New(rand.NewSource(cfg.Seed + int64(cfg.ID))),
	}, nil
}

// Run connects to the server and participates until the server signals
// completion or the connection drops.
func (c *Client) Run(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: dial: %w", err)
	}
	defer conn.Close()
	return c.RunConn(conn)
}

// RunConn participates over an established connection (useful for tests
// and custom transports).
func (c *Client) RunConn(conn net.Conn) error {
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)

	hello := ClientMsg{Hello: &Hello{ClientID: c.cfg.ID, NumSamples: c.cfg.Data.Len()}}
	if err := enc.Encode(&hello); err != nil {
		return fmt.Errorf("transport: hello: %w", err)
	}

	m, err := model.New(c.cfg.Model)
	if err != nil {
		return fmt.Errorf("transport: model: %w", err)
	}

	for {
		var msg ServerMsg
		if err := dec.Decode(&msg); err != nil {
			return fmt.Errorf("transport: receive: %w", err)
		}
		if msg.Done {
			return nil
		}
		if msg.Task == nil {
			continue
		}
		if len(msg.Task.Params) != m.NumParams() {
			return fmt.Errorf("transport: task has %d params, model needs %d", len(msg.Task.Params), m.NumParams())
		}
		if c.cfg.ThinkTime > 0 {
			time.Sleep(c.cfg.ThinkTime)
		}
		m.SetParams(msg.Task.Params)
		delta, err := fl.LocalTrain(m, c.cfg.Data, c.cfg.Trainer, c.rng)
		if err != nil {
			return fmt.Errorf("transport: local training: %w", err)
		}
		crafted, err := c.atk.Craft([][]float64{delta}, c.rng)
		if err != nil {
			return fmt.Errorf("transport: attack: %w", err)
		}
		if len(crafted) == 1 {
			delta = crafted[0]
		}
		c.TasksRun++
		out := ClientMsg{Update: &UpdateMsg{
			BaseVersion: msg.Task.Version,
			Delta:       vecmath.Clone(delta),
		}}
		if err := enc.Encode(&out); err != nil {
			return fmt.Errorf("transport: send update: %w", err)
		}
	}
}
