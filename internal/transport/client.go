package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Default reconnect pacing, used when retries are enabled but the delays
// are left zero.
const (
	defaultRetryBaseDelay = 50 * time.Millisecond
	defaultRetryMaxDelay  = 2 * time.Second
)

// ClientConfig parameterizes a transport client.
type ClientConfig struct {
	// ID identifies the client to the server.
	ID int
	// Data is the client's local dataset.
	Data *dataset.Dataset
	// Model builds the local model (must match the server's parameter
	// dimension).
	Model model.Config
	// Trainer configures local optimization.
	Trainer fl.TrainerConfig
	// Attack optionally turns the client malicious: its honest delta is
	// crafted through the attack before transmission. Leave zero-valued
	// for an honest client.
	Attack attack.Config
	// ThinkTime pauses between tasks, simulating device speed (0 = none).
	ThinkTime time.Duration
	// Seed drives local randomness.
	Seed int64
	// MaxRetries is the budget of consecutive failed connection attempts
	// before Run gives up (0 = no reconnect, fail on the first error).
	// The budget refills whenever a connection makes progress (completes
	// at least one training task).
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff between reconnect
	// attempts (default 50ms when MaxRetries > 0).
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff (default 2s).
	RetryMaxDelay time.Duration
	// DialTimeout bounds each connection attempt (0 = no timeout).
	DialTimeout time.Duration
	// HeartbeatInterval sends a heartbeat this often while the connection
	// is up (0 disables), keeping the server-side lease alive through
	// long local training and NACK backoff pauses. Set it well below the
	// server's LeaseDuration.
	HeartbeatInterval time.Duration
	// WriteTimeout arms a write deadline before each outbound encode
	// (0 = no deadline), so a peer that stops draining its socket fails
	// the client's send instead of parking it forever. Reads are
	// deliberately unbounded: the protocol blocks on the server's
	// schedule between tasks, and the lease/heartbeat machinery owns
	// liveness in that direction.
	WriteTimeout time.Duration
	// Dial overrides how connections are established (nil = plain TCP).
	// Tests plug in FaultDialer here to run a client through a flaky
	// network.
	Dial func(addr string) (net.Conn, error)
	// Codec selects the wire codec. The zero value is CodecGob — the
	// legacy reflective stream, byte-identical to previous releases —
	// so existing deployments (and the deterministic fault-injection
	// schedules that count its I/O operations) are unaffected.
	// CodecBinary negotiates the length-prefixed binary envelope via the
	// connection preamble; the server answers in kind. Roll back to gob
	// by leaving this zero (or passing -codec gob to the CLI).
	Codec Codec
}

// ErrServerGoodbye is returned by Run and RunConn when the server said
// Goodbye: it is draining and wants the client to reconnect elsewhere.
// The caller decides where "elsewhere" is; Run does not retry the same
// address.
var ErrServerGoodbye = errors.New("transport: server is draining (goodbye)")

// Client is a federated learning client speaking the transport protocol.
type Client struct {
	cfg ClientConfig
	atk attack.Attack
	rng *rand.Rand
	// shards / shardVersion hold the latest shard-address push received
	// from a hierarchical edge (nil for single-server deployments). Only
	// touched from the Run/RunConn goroutine.
	shards       []string
	shardVersion int
	// rotations counts how many times Run has moved to an alternative
	// shard address (Goodbyes and repeated failures advance it).
	rotations int
	// TasksRun counts the local training rounds executed.
	TasksRun int
	// Reconnects counts successful re-dials after a dropped connection.
	Reconnects int
	// Rehomes counts re-homings to a different shard address after a
	// Goodbye or repeated connection failures.
	Rehomes int
	// Nacks counts typed NACK replies received from the server; each one
	// paused the client for the server's RetryAfter hint.
	Nacks int
}

// NewClient builds a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Data == nil || cfg.Data.Len() == 0 {
		return nil, fmt.Errorf("transport: NewClient: empty dataset")
	}
	if err := cfg.Trainer.Validate(); err != nil {
		return nil, fmt.Errorf("transport: NewClient: %w", err)
	}
	if cfg.MaxRetries < 0 {
		return nil, fmt.Errorf("transport: NewClient: MaxRetries = %d, need >= 0", cfg.MaxRetries)
	}
	if cfg.WriteTimeout < 0 {
		return nil, fmt.Errorf("transport: NewClient: WriteTimeout = %v, need >= 0", cfg.WriteTimeout)
	}
	if cfg.Codec != CodecGob && cfg.Codec != CodecBinary {
		return nil, fmt.Errorf("transport: NewClient: unknown codec %v", cfg.Codec)
	}
	atk, err := attack.New(cfg.Attack)
	if err != nil {
		return nil, fmt.Errorf("transport: NewClient: %w", err)
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = defaultRetryBaseDelay
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = defaultRetryMaxDelay
	}
	return &Client{
		cfg: cfg,
		atk: atk,
		rng: randx.New(cfg.Seed + int64(cfg.ID)),
	}, nil
}

// Run connects to the server and participates until the server signals
// completion. When the connection drops mid-deployment it reconnects with
// exponential backoff plus jitter, re-introduces itself and resumes from
// the freshly issued global model. Run fails once MaxRetries consecutive
// attempts make no progress.
//
// In a hierarchical deployment the server pushes the shard address list
// with its tasks; from then on the client re-homes instead of giving up: a
// Goodbye (its edge is draining or dead) or a failed connection attempt
// rotates to the next shard address, starting from the client's assigned
// home (clientID modulo the list length — the same assignment the root's
// shard map computes). Without a shard push the behavior is unchanged: a
// Goodbye surfaces as ErrServerGoodbye and failures retry addr.
func (c *Client) Run(addr string) error {
	failures := 0
	connected := false
	for {
		conn, err := c.dial(c.pickAddr(addr))
		if err == nil {
			if connected {
				c.Reconnects++
			}
			connected = true
			tasksBefore := c.TasksRun
			err = c.RunConn(conn)
			conn.Close()
			if err == nil {
				return nil // server signalled Done
			}
			if errors.Is(err, ErrServerGoodbye) {
				if len(c.shards) < 2 {
					// No alternatives: retrying the same address would just
					// collect more Goodbyes. Surface the redirect.
					return err
				}
				c.rotations++
				c.Rehomes++
			}
			if c.TasksRun > tasksBefore {
				failures = 0 // the connection made progress: refill budget
			}
		} else if len(c.shards) >= 2 {
			// The address may be a dead edge; try the next shard. The
			// failure budget still bounds the total number of attempts.
			c.rotations++
			c.Rehomes++
		}
		failures++
		if failures > c.cfg.MaxRetries {
			return fmt.Errorf("transport: client %d: giving up after %d consecutive failures: %w",
				c.cfg.ID, failures, err)
		}
		time.Sleep(c.backoff(failures))
	}
}

// pickAddr returns the address to dial: the seed address until a shard
// list arrives, then the client's home shard advanced by the rotation
// count.
func (c *Client) pickAddr(seed string) string {
	if len(c.shards) == 0 {
		return seed
	}
	id := c.cfg.ID
	if id < 0 {
		id = -id
	}
	return c.shards[(id+c.rotations)%len(c.shards)]
}

// dial opens one connection using the configured dialer.
func (c *Client) dial(addr string) (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial(addr)
	}
	conn, err := net.DialTimeout("tcp", addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	return conn, nil
}

// backoff returns the sleep before retry attempt n (1-based): the shared
// exponential schedule from RetryBaseDelay capped at RetryMaxDelay, with
// ±50% jitter so a fleet of clients dropped by the same fault does not
// reconnect in lockstep.
func (c *Client) backoff(n int) time.Duration {
	jitter := 0.5 + c.rng.Float64() // in [0.5, 1.5)
	return BackoffDelay(jitter, c.cfg.RetryBaseDelay, c.cfg.RetryMaxDelay, n)
}

// clientWire abstracts the client side of a connection over the
// negotiated codec: one encoder and one decoder whose concurrent use is
// disciplined by the caller (a single writer — the protocol loop or the
// connWriter goroutine — and a single reader).
type clientWire interface {
	// writeMsg transmits one client message.
	writeMsg(msg *ClientMsg) error
	// readMsg decodes the next server message into msg (which must be
	// freshly zeroed; decoded task parameters may reuse a scratch buffer
	// owned by the wire, valid until the next readMsg).
	readMsg(msg *ServerMsg) error
}

// gobClientWire is the legacy reflective gob stream.
type gobClientWire struct {
	enc *gob.Encoder
	dec *gob.Decoder
}

func (w *gobClientWire) writeMsg(msg *ClientMsg) error {
	//lint:ignore netdeadline forwarding wrapper: deadline policy belongs to the caller (startConnWriter arms the write before every flush)
	return w.enc.Encode(msg)
}

func (w *gobClientWire) readMsg(msg *ServerMsg) error {
	//lint:ignore netdeadline forwarding wrapper: the protocol read loop in RunConn owns the (deliberately unarmed) read policy
	return w.dec.Decode(msg)
}

// binClientWire is the binary frame envelope. Task parameters decode
// into a reused scratch slab: the protocol loop copies them into the
// local model (model.SetParams copies) and never retains the slice.
type binClientWire struct {
	bin    *binConn
	params []float64
}

func (w *binClientWire) writeMsg(msg *ClientMsg) error { return w.bin.writeClientMsg(msg) }

// readMsg owns the scratch slab it threads through readServerMsg; the
// decoded Task aliases it only until the next call, and the protocol
// loop copies parameters into the model before reading again.
//
//afl:owned
func (w *binClientWire) readMsg(msg *ServerMsg) error {
	params, err := w.bin.readServerMsg(msg, w.params)
	w.params = params
	return err
}

// newClientWire builds the wire for one established connection. A binary
// client announces itself with the connection preamble before its first
// frame; a gob client's byte stream is identical to previous releases.
func newClientWire(conn net.Conn, codec Codec) clientWire {
	if codec == CodecBinary {
		return &binClientWire{bin: newBinConn(conn, 0, true)}
	}
	return &gobClientWire{enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// connWriter owns all writes on a client connection. Heartbeats must go
// out while the main loop is busy training, and neither a gob encoder
// nor the binary framing state is safe for concurrent writers, so every
// outbound message funnels through one writer goroutine via a buffered
// queue — no lock is ever held around the blocking encode. A failed
// encode closes the connection so the reader side unblocks too.
type connWriter struct {
	queue chan *ClientMsg
	dead  chan struct{}
	stop  chan struct{}
	wg    sync.WaitGroup
}

func startConnWriter(conn net.Conn, wire clientWire, writeTimeout time.Duration) *connWriter {
	w := &connWriter{
		queue: make(chan *ClientMsg, 8),
		dead:  make(chan struct{}),
		stop:  make(chan struct{}),
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer close(w.dead)
		for {
			select {
			case <-w.stop:
				return
			case msg := <-w.queue:
				if writeTimeout > 0 {
					_ = conn.SetWriteDeadline(time.Now().Add(writeTimeout))
				}
				if err := wire.writeMsg(msg); err != nil {
					// Unblock the decode loop: a one-sided write failure
					// must not leave the client hanging on a read.
					_ = conn.Close()
					return
				}
			}
		}
	}()
	return w
}

// send enqueues a message, failing once the writer has died.
func (w *connWriter) send(msg *ClientMsg) error {
	select {
	case w.queue <- msg:
		return nil
	case <-w.dead:
		return errors.New("connection writer closed")
	}
}

// trySend enqueues without blocking (heartbeats are droppable: a full
// queue means real traffic is flowing, which renews the lease anyway).
func (w *connWriter) trySend(msg *ClientMsg) {
	select {
	case w.queue <- msg:
	default:
	}
}

// close stops the writer and waits for it to exit.
func (w *connWriter) close() {
	close(w.stop)
	w.wg.Wait()
}

// RunConn participates over an established connection (useful for tests
// and custom transports). It returns nil only when the server signals
// completion; ErrServerGoodbye when the server is draining; any other
// transport error is returned for the caller (Run) to decide whether to
// reconnect.
func (c *Client) RunConn(conn net.Conn) error {
	wire := newClientWire(conn, c.cfg.Codec)

	m, err := model.New(c.cfg.Model)
	if err != nil {
		return fmt.Errorf("transport: model: %w", err)
	}

	// Without heartbeats the wire is driven synchronously from the
	// protocol loop, preserving the strict write-then-read operation order
	// that deterministic fault-injection schedules count on. With
	// heartbeats enabled, a single-writer goroutine owns the wire's write
	// side so keepalives can go out while this loop is blocked in local
	// training — concurrency by message passing, never a lock around the
	// blocking encode.
	var send func(*ClientMsg) error
	if c.cfg.HeartbeatInterval > 0 {
		w := startConnWriter(conn, wire, c.cfg.WriteTimeout)
		defer w.close()
		send = w.send

		hbStop := make(chan struct{})
		defer close(hbStop)
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			ticker := time.NewTicker(c.cfg.HeartbeatInterval)
			defer ticker.Stop()
			for {
				select {
				case <-hbStop:
					return
				case <-w.dead:
					return
				case <-ticker.C:
					w.trySend(&ClientMsg{Heartbeat: true})
				}
			}
		}()
	} else {
		send = func(msg *ClientMsg) error {
			if c.cfg.WriteTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
			}
			return wire.writeMsg(msg)
		}
	}

	hello := &ClientMsg{Hello: &Hello{
		ClientID:   c.cfg.ID,
		NumSamples: c.cfg.Data.Len(),
		ModelDim:   m.NumParams(),
		Codec:      c.cfg.Codec,
	}}
	if err := send(hello); err != nil {
		return fmt.Errorf("transport: hello: %w", err)
	}

	for {
		var msg ServerMsg
		//lint:ignore netdeadline the protocol read blocks on the server's task schedule by design; lease heartbeats (not deadlines) bound liveness here
		if err := wire.readMsg(&msg); err != nil {
			return fmt.Errorf("transport: receive: %w", err)
		}
		if len(msg.Shards) > 0 && msg.ShardVersion > c.shardVersion {
			// A fresh shard push replaces the held list and re-anchors the
			// client at its home shard for the next re-homing decision.
			c.shards = append([]string(nil), msg.Shards...)
			c.shardVersion = msg.ShardVersion
			c.rotations = 0
		}
		if msg.Done {
			return nil
		}
		if msg.Goodbye {
			return ErrServerGoodbye
		}
		if msg.Nack != 0 {
			// Typed refusal: back off for the server's pacing hint
			// instead of retrying hot. A Nack without a task (a refused
			// Hello) is terminal for this connection.
			c.Nacks++
			if msg.Task == nil {
				return fmt.Errorf("transport: server refused hello: %s", msg.Nack)
			}
			if msg.RetryAfter > 0 {
				time.Sleep(msg.RetryAfter)
			}
		}
		if msg.Task == nil {
			continue // Pong or empty envelope
		}
		if len(msg.Task.Params) != m.NumParams() {
			return fmt.Errorf("transport: task has %d params, model needs %d", len(msg.Task.Params), m.NumParams())
		}
		if c.cfg.ThinkTime > 0 {
			time.Sleep(c.cfg.ThinkTime)
		}
		m.SetParams(msg.Task.Params)
		delta, err := fl.LocalTrain(m, c.cfg.Data, c.cfg.Trainer, c.rng)
		if err != nil {
			return fmt.Errorf("transport: local training: %w", err)
		}
		crafted, err := c.atk.Craft([][]float64{delta}, c.rng)
		if err != nil {
			return fmt.Errorf("transport: attack: %w", err)
		}
		if len(crafted) != 1 {
			// A malfunctioning attack must not silently fall back to the
			// honest delta: that would misreport the deployment under test.
			return fmt.Errorf("transport: attack crafted %d deltas for 1 honest input", len(crafted))
		}
		delta = crafted[0]
		c.TasksRun++
		out := &ClientMsg{Update: &UpdateMsg{
			BaseVersion: msg.Task.Version,
			Delta:       vecmath.Clone(delta),
		}}
		if err := send(out); err != nil {
			return fmt.Errorf("transport: send update: %w", err)
		}
	}
}
