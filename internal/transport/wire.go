package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/asyncfl/asyncfilter/internal/fl"
)

// This file implements the binary wire codec of ROADMAP item 2: a
// length-prefixed frame envelope carrying raw little-endian float64
// slabs, replacing gob's reflective encoding on every per-update hot
// path while keeping gob as the fuzz-hardened fallback and the legacy
// protocol.
//
// Negotiation is per connection and initiator-driven: a binary-codec
// initiator sends a 4-byte preamble before its first frame, and the
// accepting side sniffs the first byte of the stream to pick the
// connection's codec. The preamble starts with 0x00, a byte no gob
// stream can begin with (gob frames every message with a non-zero
// varint byte count, and a zero-length message is never emitted), so
// legacy gob connections are recognized without consuming anything a
// gob decoder needs: the sniffed byte is re-prepended and the gob byte
// stream stays byte-for-byte identical to previous releases — which is
// what keeps the deterministic fault-injection schedules (they count
// I/O operations) aligned. The client additionally declares its codec
// in Hello.Codec, so the negotiation is also visible at the protocol
// level and the server can cross-check framing against declaration.
//
// After the preamble the connection is a sequence of frames:
//
//	kind (1 byte) | payload length (uint32 LE) | payload
//
// Hot message shapes get dedicated raw kinds whose payloads are fixed
// scalar fields plus float64 slabs (encoded bit-exactly via
// math.Float64bits, so NaN payloads and signed zeros survive). Every
// other message — Hellos, shard pushes, snapshots, votes, Done/Goodbye
// — travels as kind 0: a self-contained gob encoding of the envelope
// struct inside one frame. That keeps total message coverage (and the
// gob fallback exercised) while the steady-state path never touches
// reflection.
//
// The payload length is checked against the connection's byte budget
// BEFORE any allocation, mirroring the limitReader guard of the gob
// path: a hostile 4 GiB length prefix trips the oversize counter and
// kills the connection without allocating.

// Codec identifies a negotiated wire codec.
type Codec int

const (
	// CodecGob is the legacy reflective gob stream (the zero value, so
	// unconfigured deployments keep their exact wire behavior).
	CodecGob Codec = iota
	// CodecBinary is the length-prefixed binary frame envelope.
	CodecBinary
)

// String implements fmt.Stringer.
func (c Codec) String() string {
	switch c {
	case CodecGob:
		return "gob"
	case CodecBinary:
		return "binary"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// ParseCodec maps a -codec flag value to a Codec. The empty string
// selects gob, matching the zero value.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "gob":
		return CodecGob, nil
	case "binary":
		return CodecBinary, nil
	default:
		return 0, fmt.Errorf("transport: unknown codec %q (want gob or binary)", s)
	}
}

// binaryPreamble is the connection preamble of a binary-codec initiator:
// an impossible-for-gob first byte, a protocol tag, and a codec version.
var binaryPreamble = [4]byte{0x00, 'A', 'F', 1}

// ErrBadFrame reports a structurally invalid binary frame: an unknown
// kind, a payload that does not parse, or trailing garbage.
var ErrBadFrame = errors.New("transport: malformed binary frame")

// frameHeaderLen is kind byte plus uint32 payload length.
const frameHeaderLen = 5

// Frame kinds. frameGob is the universal fallback; the rest are raw
// encodings of the hot message shapes, one namespace across all four
// protocols (each Read* method accepts only the kinds of its direction).
const (
	frameGob           byte = 0x00
	frameUpdate        byte = 0x01
	frameHeartbeat     byte = 0x02
	frameTask          byte = 0x03
	framePong          byte = 0x04
	frameEdgeBatch     byte = 0x05
	frameEdgeHeartbeat byte = 0x06
	frameRootReply     byte = 0x07
	frameReplAck       byte = 0x08
	frameReplRecord    byte = 0x09
	frameReplHeartbeat byte = 0x0A
)

// binConn is one side's framing state on a binary-codec connection: a
// grow-only write scratch, a grow-only read buffer, and the oversize
// trip flag. Not safe for concurrent use; the transport's single-reader
// / single-writer discipline applies, with reads and writes
// independently owned (the two buffers never alias).
type binConn struct {
	r   io.Reader
	w   io.Writer
	max int64
	// sendPreamble arms the one-shot preamble write of an initiator.
	sendPreamble bool
	trip         bool
	hdr          [frameHeaderLen]byte
	rbuf         []byte
	wbuf         []byte
}

// newBinConn builds framing state over a connection. max caps a frame
// payload (0 disables, like the gob path's limitReader). sendPreamble
// selects the initiator role: the 4-byte preamble goes out before the
// first frame.
func newBinConn(rw io.ReadWriter, max int64, sendPreamble bool) *binConn {
	return &binConn{r: rw, w: rw, max: max, sendPreamble: sendPreamble}
}

// begin returns the write scratch positioned after the frame header.
func (c *binConn) begin() []byte {
	if cap(c.wbuf) < frameHeaderLen {
		c.wbuf = make([]byte, frameHeaderLen, 512)
	}
	return c.wbuf[:frameHeaderLen]
}

// flush stamps the header and writes the frame (preceded by the one-shot
// preamble on an initiator). b must have come from begin() + appends.
func (c *binConn) flush(kind byte, b []byte) error {
	c.wbuf = b[:0]
	b[0] = kind
	binary.LittleEndian.PutUint32(b[1:frameHeaderLen], uint32(len(b)-frameHeaderLen))
	if c.sendPreamble {
		c.sendPreamble = false
		if _, err := c.w.Write(binaryPreamble[:]); err != nil {
			return err
		}
	}
	_, err := c.w.Write(b)
	return err
}

// flushGob writes v as a self-contained gob payload in a frameGob frame.
func (c *binConn) flushGob(v any) error {
	var buf bytes.Buffer
	//lint:ignore netdeadline encodes to an in-memory buffer; the conn write below goes through flush, whose caller armed the deadline
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return c.flush(frameGob, append(c.begin(), buf.Bytes()...))
}

// readFrame reads one frame header and payload. The payload slice is the
// connection's reusable buffer: it is valid until the next readFrame,
// and decoded messages must copy what they keep. The byte budget is
// enforced before the payload buffer is (re)allocated.
func (c *binConn) readFrame() (byte, []byte, error) {
	if _, err := io.ReadFull(c.r, c.hdr[:]); err != nil {
		return 0, nil, err
	}
	kind := c.hdr[0]
	n := int64(binary.LittleEndian.Uint32(c.hdr[1:frameHeaderLen]))
	if c.max > 0 && n > c.max {
		c.trip = true
		return 0, nil, fmt.Errorf("binary frame of %d bytes: %w", n, ErrMessageTooLarge)
	}
	if int64(cap(c.rbuf)) < n {
		c.rbuf = make([]byte, n)
	}
	buf := c.rbuf[:n]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return 0, nil, err
	}
	return kind, buf, nil
}

// tripped reports whether a frame exceeded the byte budget.
func (c *binConn) tripped() bool { return c.trip }

// badFrame builds a typed decode error.
func badFrame(kind byte, what string) error {
	return fmt.Errorf("kind 0x%02x: %s: %w", kind, what, ErrBadFrame)
}

// --- payload building ---

func appendU32(b []byte, v uint32) []byte {
	var t [4]byte
	binary.LittleEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}

func appendU64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}

// appendI64 writes an int as two's-complement little-endian 64-bit.
func appendI64(b []byte, v int) []byte {
	return appendU64(b, uint64(int64(v)))
}

// appendF64s writes a float64 slab bit-exactly.
func appendF64s(b []byte, v []float64) []byte {
	for _, x := range v {
		var t [8]byte
		binary.LittleEndian.PutUint64(t[:], math.Float64bits(x))
		b = append(b, t[:]...)
	}
	return b
}

// appendBlob writes a uint32-length-prefixed byte string (nil and empty
// both encode as length 0; the decoder yields nil, matching gob's
// empty-is-absent round-trip behavior).
func appendBlob(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// --- payload parsing ---

// binCursor walks a frame payload. The first structural violation sets
// bad and every later read yields zero values, so decoders can parse
// straight-line and check once at the end.
type binCursor struct {
	b   []byte
	off int
	bad bool
}

// need returns the next n payload bytes, or nil (setting bad) when the
// payload is too short.
func (c *binCursor) need(n int) []byte {
	if c.bad || n < 0 || len(c.b)-c.off < n {
		c.bad = true
		return nil
	}
	p := c.b[c.off : c.off+n]
	c.off += n
	return p
}

func (c *binCursor) u8() byte {
	p := c.need(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (c *binCursor) u32() uint32 {
	p := c.need(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (c *binCursor) u64() uint64 {
	p := c.need(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (c *binCursor) i64() int {
	return int(int64(c.u64()))
}

// blob copies out a length-prefixed byte string (the frame buffer is
// reused, so retained bytes must not alias it). Length 0 yields nil.
func (c *binCursor) blob() []byte {
	n := int(c.u32())
	p := c.need(n)
	if len(p) == 0 {
		return nil
	}
	return append([]byte(nil), p...)
}

func (c *binCursor) str() string {
	n := int(c.u32())
	return string(c.need(n))
}

// f64sInto fills dst bit-exactly from the payload.
func (c *binCursor) f64sInto(dst []float64) {
	p := c.need(8 * len(dst))
	if p == nil {
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
}

// restDim interprets every remaining payload byte as a float64 slab and
// returns its element count (bad on a non-multiple of 8).
func (c *binCursor) restDim() int {
	rem := len(c.b) - c.off
	if rem%8 != 0 {
		c.bad = true
		return 0
	}
	return rem / 8
}

// done reports a structural violation or trailing garbage.
func (c *binCursor) done(kind byte) error {
	if c.bad {
		return badFrame(kind, "short or misaligned payload")
	}
	if c.off != len(c.b) {
		return badFrame(kind, "trailing bytes")
	}
	return nil
}

// gobFromFrame decodes one self-contained gob payload into v.
func gobFromFrame(payload []byte, v any) error {
	//lint:ignore netdeadline decodes from an already-read in-memory payload; it cannot block on the network
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("gob payload: %s: %w", err, ErrBadFrame)
	}
	return nil
}

// --- client protocol (client <-> server) ---

// writeClientMsg encodes one client->server envelope: raw frames for the
// hot shapes (update, heartbeat), gob-in-frame for Hello and anything
// unusual.
//
//afl:hotpath
func (c *binConn) writeClientMsg(msg *ClientMsg) error {
	switch {
	case msg.Update != nil && msg.Hello == nil && !msg.Heartbeat:
		b := c.begin()
		b = appendI64(b, msg.Update.BaseVersion)
		b = appendF64s(b, msg.Update.Delta)
		return c.flush(frameUpdate, b)
	case msg.Heartbeat && msg.Hello == nil && msg.Update == nil:
		return c.flush(frameHeartbeat, c.begin())
	default:
		return c.flushGob(msg)
	}
}

// writeServerMsg encodes one server->client envelope: raw frames for
// task(+nack) and pong, gob-in-frame for Done/Goodbye/shard pushes.
//
//afl:hotpath
func (c *binConn) writeServerMsg(msg *ServerMsg) error {
	switch {
	case msg.Task != nil && !msg.Pong && !msg.Done && !msg.Goodbye && msg.Shards == nil && msg.ShardVersion == 0:
		b := c.begin()
		b = appendI64(b, msg.Task.Version)
		b = appendI64(b, int(msg.Nack))
		b = appendI64(b, int(msg.RetryAfter))
		b = appendF64s(b, msg.Task.Params)
		return c.flush(frameTask, b)
	case msg.Pong && msg.Task == nil && msg.Nack == 0 && !msg.Done && !msg.Goodbye && msg.Shards == nil && msg.ShardVersion == 0:
		return c.flush(framePong, c.begin())
	default:
		return c.flushGob(msg)
	}
}

// readServerMsg decodes the next server->client envelope (client side)
// into msg, reusing params as the task-parameter scratch across calls
// (model.SetParams copies, so the protocol loop never retains it). It
// returns the possibly-grown scratch. The caller transfers ownership of
// params in and receives it back: the decoded Task aliases it until the
// next call, by design.
//
//afl:owned
func (c *binConn) readServerMsg(msg *ServerMsg, params []float64) ([]float64, error) {
	kind, payload, err := c.readFrame()
	if err != nil {
		return params, err
	}
	*msg = ServerMsg{}
	switch kind {
	case frameGob:
		return params, gobFromFrame(payload, msg)
	case framePong:
		if len(payload) != 0 {
			return params, badFrame(kind, "trailing bytes")
		}
		msg.Pong = true
		return params, nil
	case frameTask:
		cur := binCursor{b: payload}
		version := cur.i64()
		nack := cur.i64()
		retry := cur.i64()
		dim := cur.restDim()
		if cap(params) < dim {
			params = make([]float64, dim)
		}
		params = params[:dim]
		cur.f64sInto(params)
		if err := cur.done(kind); err != nil {
			return params, err
		}
		// An empty slab decodes as a nil Params, matching gob; the
		// scratch (possibly non-nil with spare capacity) is kept either
		// way.
		taskParams := params
		if dim == 0 {
			taskParams = nil
		}
		msg.Task = &Task{Version: version, Params: taskParams}
		msg.Nack = NackCode(nack)
		msg.RetryAfter = durationFromI64(retry)
		return params, nil
	default:
		return params, badFrame(kind, "unknown kind in server->client direction")
	}
}

// --- edge <-> root protocol ---

// writeEdgeMsg encodes one edge->root envelope: a raw frame for the
// batch push (the uplink hot path) and the idle heartbeat, gob-in-frame
// for the Hello.
//
//afl:hotpath
func (c *binConn) writeEdgeMsg(msg *EdgeMsg) error {
	switch {
	case msg.Batch != nil && msg.Hello == nil && !msg.Heartbeat:
		b := c.begin()
		b = appendU64(b, msg.Epoch)
		b = appendU64(b, msg.Batch.BatchID)
		b = appendI64(b, msg.Batch.EdgeVersion)
		b = appendBlob(b, msg.Batch.FilterState)
		b = appendU32(b, uint32(len(msg.Batch.Updates)))
		for _, u := range msg.Batch.Updates {
			b = appendI64(b, u.ClientID)
			b = appendI64(b, u.BaseVersion)
			b = appendI64(b, u.Staleness)
			b = appendI64(b, u.NumSamples)
			b = appendU32(b, uint32(len(u.Delta)))
			b = appendF64s(b, u.Delta)
		}
		return c.flush(frameEdgeBatch, b)
	case msg.Heartbeat && msg.Hello == nil && msg.Batch == nil:
		return c.flush(frameEdgeHeartbeat, appendU64(c.begin(), msg.Epoch))
	default:
		return c.flushGob(msg)
	}
}

// minWireUpdate is the smallest raw-encoded update (four scalars plus a
// dimension prefix and an empty slab): the update-count sanity bound
// that keeps a hostile count prefix from allocating ahead of the bytes
// actually on the wire.
const minWireUpdate = 4*8 + 4

// readEdgeMsg decodes the next edge->root envelope (root side). Decoded
// updates are freshly allocated and owned by the caller.
func (c *binConn) readEdgeMsg() (*EdgeMsg, error) {
	kind, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	switch kind {
	case frameGob:
		msg := new(EdgeMsg)
		return msg, gobFromFrame(payload, msg)
	case frameEdgeHeartbeat:
		cur := binCursor{b: payload}
		msg := &EdgeMsg{Heartbeat: true, Epoch: cur.u64()}
		return msg, cur.done(kind)
	case frameEdgeBatch:
		cur := binCursor{b: payload}
		msg := &EdgeMsg{Epoch: cur.u64()}
		batch := &BatchMsg{
			BatchID:     cur.u64(),
			EdgeVersion: cur.i64(),
			FilterState: cur.blob(),
		}
		n := int(cur.u32())
		if rem := len(cur.b) - cur.off; n > rem/minWireUpdate {
			return nil, badFrame(kind, "update count exceeds payload")
		}
		if n > 0 {
			batch.Updates = make([]*fl.Update, 0, n)
		}
		for i := 0; i < n; i++ {
			u := &fl.Update{
				ClientID:    cur.i64(),
				BaseVersion: cur.i64(),
				Staleness:   cur.i64(),
				NumSamples:  cur.i64(),
			}
			if dim := int(cur.u32()); dim > 0 {
				if cur.need(0) == nil || dim > (len(cur.b)-cur.off)/8 {
					return nil, badFrame(kind, "slab exceeds payload")
				}
				u.Delta = make([]float64, dim)
				cur.f64sInto(u.Delta)
			}
			batch.Updates = append(batch.Updates, u)
		}
		msg.Batch = batch
		return msg, cur.done(kind)
	default:
		return nil, badFrame(kind, "unknown kind in edge->root direction")
	}
}

// writeRootMsg encodes one root->edge envelope: a raw frame for the
// steady-state reply (ack + epoch + optional task, optionally a pong),
// gob-in-frame for shard/handoff/peer pushes, nacks and terminal
// messages.
//
//afl:hotpath
func (c *binConn) writeRootMsg(msg *RootMsg) error {
	plain := msg.Shards == nil && msg.Handoff == nil && msg.Peers == nil &&
		msg.PeersVersion == 0 && msg.Nack == 0 && !msg.Done && !msg.Goodbye
	if !plain {
		return c.flushGob(msg)
	}
	var flags byte
	if msg.Task != nil {
		flags |= 1
	}
	if msg.Pong {
		flags |= 2
	}
	b := append(c.begin(), flags)
	b = appendU64(b, msg.Ack)
	b = appendU64(b, msg.Epoch)
	if msg.Task != nil {
		b = appendI64(b, msg.Task.Version)
		b = appendF64s(b, msg.Task.Params)
	}
	return c.flush(frameRootReply, b)
}

// readRootMsg decodes the next root->edge envelope (edge side).
func (c *binConn) readRootMsg() (*RootMsg, error) {
	kind, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	switch kind {
	case frameGob:
		msg := new(RootMsg)
		return msg, gobFromFrame(payload, msg)
	case frameRootReply:
		cur := binCursor{b: payload}
		flags := cur.u8()
		if flags&^byte(3) != 0 {
			return nil, badFrame(kind, "unknown flag bits")
		}
		msg := &RootMsg{
			Ack:   cur.u64(),
			Epoch: cur.u64(),
			Pong:  flags&2 != 0,
		}
		if flags&1 != 0 {
			version := cur.i64()
			var params []float64
			// Allocate only a non-empty slab: gob decodes an empty
			// Params as nil, and the codecs must agree byte for byte.
			if dim := cur.restDim(); dim > 0 {
				params = make([]float64, dim)
				cur.f64sInto(params)
			}
			msg.Task = &Task{Version: version, Params: params}
		}
		return msg, cur.done(kind)
	default:
		return nil, badFrame(kind, "unknown kind in root->edge direction")
	}
}

// --- replication protocol (primary <-> standby) ---

// writeReplicaMsg encodes one standby->primary envelope: a raw frame for
// the per-push acknowledgement, gob-in-frame for Hello and votes.
//
//afl:hotpath
func (c *binConn) writeReplicaMsg(msg *ReplicaMsg) error {
	if msg.Hello != nil || msg.Vote != nil {
		return c.flushGob(msg)
	}
	b := appendU64(c.begin(), msg.AckSeq)
	b = appendU64(b, msg.Epoch)
	return c.flush(frameReplAck, b)
}

// readReplicaMsg decodes the next standby->primary envelope (primary
// side).
func (c *binConn) readReplicaMsg() (*ReplicaMsg, error) {
	kind, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	switch kind {
	case frameGob:
		msg := new(ReplicaMsg)
		return msg, gobFromFrame(payload, msg)
	case frameReplAck:
		cur := binCursor{b: payload}
		msg := &ReplicaMsg{AckSeq: cur.u64(), Epoch: cur.u64()}
		return msg, cur.done(kind)
	default:
		return nil, badFrame(kind, "unknown kind in standby->primary direction")
	}
}

// writePrimaryMsg encodes one primary->standby envelope: raw frames for
// the log record push (the replication hot path) and the idle heartbeat,
// gob-in-frame for snapshots, nacks, grants and Goodbye.
//
//afl:hotpath
func (c *binConn) writePrimaryMsg(msg *PrimaryMsg) error {
	switch {
	case msg.Record != nil && msg.Snapshot == nil && msg.Nack == 0 &&
		!msg.Goodbye && !msg.Heartbeat && msg.Grant == nil:
		rec := msg.Record
		b := c.begin()
		b = appendU64(b, msg.Epoch)
		b = appendU64(b, msg.LatestSeq)
		b = appendU64(b, rec.Seq)
		b = appendU64(b, rec.Epoch)
		b = appendI64(b, rec.EdgeID)
		b = appendU64(b, rec.BatchID)
		b = appendString(b, rec.EdgeAddr)
		b = appendI64(b, rec.ShardVersion)
		b = appendI64(b, rec.Accepted)
		b = appendI64(b, rec.Deferred)
		b = appendI64(b, rec.Rejected)
		var flags byte
		if rec.FilterFull {
			flags = 1
		}
		b = append(b, flags)
		b = appendBlob(b, rec.FilterState)
		b = appendU32(b, uint32(len(rec.Delta)))
		b = appendF64s(b, rec.Delta)
		return c.flush(frameReplRecord, b)
	case msg.Heartbeat && msg.Record == nil && msg.Snapshot == nil &&
		msg.Nack == 0 && !msg.Goodbye && msg.Grant == nil:
		b := appendU64(c.begin(), msg.Epoch)
		b = appendU64(b, msg.LatestSeq)
		return c.flush(frameReplHeartbeat, b)
	default:
		return c.flushGob(msg)
	}
}

// readPrimaryMsg decodes the next primary->standby envelope (standby
// side).
func (c *binConn) readPrimaryMsg() (*PrimaryMsg, error) {
	kind, payload, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	switch kind {
	case frameGob:
		msg := new(PrimaryMsg)
		return msg, gobFromFrame(payload, msg)
	case frameReplHeartbeat:
		cur := binCursor{b: payload}
		msg := &PrimaryMsg{Heartbeat: true, Epoch: cur.u64(), LatestSeq: cur.u64()}
		return msg, cur.done(kind)
	case frameReplRecord:
		cur := binCursor{b: payload}
		msg := &PrimaryMsg{Epoch: cur.u64(), LatestSeq: cur.u64()}
		rec := &ReplRecord{
			Seq:          cur.u64(),
			Epoch:        cur.u64(),
			EdgeID:       cur.i64(),
			BatchID:      cur.u64(),
			EdgeAddr:     cur.str(),
			ShardVersion: cur.i64(),
			Accepted:     cur.i64(),
			Deferred:     cur.i64(),
			Rejected:     cur.i64(),
		}
		flags := cur.u8()
		if flags&^byte(1) != 0 {
			return nil, badFrame(kind, "unknown flag bits")
		}
		rec.FilterFull = flags&1 != 0
		rec.FilterState = cur.blob()
		if dim := int(cur.u32()); dim > 0 {
			if cur.need(0) == nil || dim > (len(cur.b)-cur.off)/8 {
				return nil, badFrame(kind, "slab exceeds payload")
			}
			rec.Delta = make([]float64, dim)
			cur.f64sInto(rec.Delta)
		}
		msg.Record = rec
		return msg, cur.done(kind)
	default:
		return nil, badFrame(kind, "unknown kind in primary->standby direction")
	}
}

// durationFromI64 rebuilds a time.Duration from its nanosecond count.
func durationFromI64(v int) time.Duration { return time.Duration(v) }
