package transport

import "time"

// minTick floors the polling interval of the background sweepers (round
// watchdog, lease sweeper). Deriving the interval from a tiny configured
// timeout must not produce a busy ticker: a 1 ms RoundTimeout would
// otherwise poll the server lock a thousand times a second for no gain in
// detection latency worth having.
const minTick = 10 * time.Millisecond

// clampTick returns d floored at minTick.
func clampTick(d time.Duration) time.Duration {
	if d < minTick {
		return minTick
	}
	return d
}

// watchRounds is the round-progress watchdog: when the buffer has held at
// least one update but stayed below the aggregation goal for RoundTimeout,
// it aggregates the partial buffer (FedBuff-with-timeout). Crashed or
// wedged clients therefore delay a round by at most RoundTimeout instead
// of stalling the deployment forever. Started once from Serve; exits when
// the deployment completes, the server closes, or Serve exits (stop).
//
// Contract: RoundTimeout == 0 disables the watchdog entirely (Serve never
// starts this goroutine). A positive RoundTimeout polls at a quarter of
// the timeout, floored at minTick, so a tiny timeout cannot degenerate
// into a busy loop.
func (s *Server) watchRounds(stop <-chan struct{}) {
	defer s.wg.Done()
	ticker := time.NewTicker(clampTick(s.cfg.RoundTimeout / 4))
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-stop:
			return
		case <-ticker.C:
			s.tickWatchdog()
		}
	}
}

// tickWatchdog runs one watchdog check. The per-tick recover guard keeps
// a panic out of a forced partial aggregation (e.g. from a misbehaving
// combiner) from killing the watchdog goroutine — and with it the
// deployment's only defense against stalled rounds. A draining server is
// left alone: the drain sequence owns the final flush.
func (s *Server) tickWatchdog() {
	defer s.recoverPanic("watchdog")
	s.mu.Lock()
	stalled := !s.finished && !s.draining && !s.aggregating &&
		s.buffer.Len() > 0 && !s.buffer.Ready() &&
		time.Since(s.lastProgress) >= s.cfg.RoundTimeout
	s.mu.Unlock()
	if stalled {
		// The forced round (and its WatchdogRounds accounting) re-checks
		// state under the lock; a racing regular round simply wins.
		s.maybeAggregate(forceWatchdog)
	}
}
