package transport

import "time"

// watchRounds is the round-progress watchdog: when the buffer has held at
// least one update but stayed below the aggregation goal for RoundTimeout,
// it aggregates the partial buffer (FedBuff-with-timeout). Crashed or
// wedged clients therefore delay a round by at most RoundTimeout instead
// of stalling the deployment forever. Started once from Serve; exits when
// the deployment completes, the server closes, or Serve exits (stop).
func (s *Server) watchRounds(stop <-chan struct{}) {
	defer s.wg.Done()
	interval := s.cfg.RoundTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-stop:
			return
		case <-ticker.C:
			s.tickWatchdog()
		}
	}
}

// tickWatchdog runs one watchdog check. The per-tick recover guard keeps
// a panic out of a forced partial aggregation (e.g. from a misbehaving
// combiner) from killing the watchdog goroutine — and with it the
// deployment's only defense against stalled rounds.
func (s *Server) tickWatchdog() {
	defer s.recoverPanic("watchdog")
	s.mu.Lock()
	stalled := !s.finished && !s.aggregating &&
		s.buffer.Len() > 0 && !s.buffer.Ready() &&
		time.Since(s.lastProgress) >= s.cfg.RoundTimeout
	s.mu.Unlock()
	if stalled {
		// The forced round (and its WatchdogRounds accounting) re-checks
		// state under the lock; a racing regular round simply wins.
		s.maybeAggregate(true)
	}
}
