package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"
)

// recordConn is a net.Conn stub that records everything written to it, so
// the delivery-mangling fault modes can be asserted byte for byte.
type recordConn struct {
	nopConn
	mu  sync.Mutex
	buf bytes.Buffer
}

func (r *recordConn) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.Write(p)
}

func (r *recordConn) sent() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.buf.String()
}

func TestFaultConnDupWrite(t *testing.T) {
	rec := &recordConn{}
	fc := NewFaultConn(rec, FaultConfig{Seed: 1, DupWriteProb: 1})
	n, err := fc.Write([]byte("abc"))
	if err != nil || n != 3 {
		t.Fatalf("write = (%d, %v), want (3, nil)", n, err)
	}
	if got := rec.sent(); got != "abcabc" {
		t.Errorf("peer saw %q, want the payload duplicated back-to-back", got)
	}
}

func TestFaultConnDropWrite(t *testing.T) {
	rec := &recordConn{}
	fc := NewFaultConn(rec, FaultConfig{Seed: 1, DropWriteProb: 1})
	n, err := fc.Write([]byte("abc"))
	if err != nil || n != 3 {
		t.Fatalf("dropped write must still report success, got (%d, %v)", n, err)
	}
	if got := rec.sent(); got != "" {
		t.Errorf("peer saw %q, want nothing (silent outbound drop)", got)
	}
}

func TestFaultConnReorderWrite(t *testing.T) {
	rec := &recordConn{}
	fc := NewFaultConn(rec, FaultConfig{Seed: 1, ReorderWriteProb: 1})
	// With probability 1 the hold/release states alternate: the first
	// write is parked, the second releases it after itself — the swap.
	if _, err := fc.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if got := rec.sent(); got != "" {
		t.Fatalf("held payload leaked early: peer saw %q", got)
	}
	if _, err := fc.Write([]byte("bb")); err != nil {
		t.Fatal(err)
	}
	if got := rec.sent(); got != "bbaaaa" {
		t.Errorf("peer saw %q, want \"bbaaaa\" (two messages swapped)", got)
	}
	// The third write is parked again; Close discards it as lost in
	// flight rather than delivering it after the connection died.
	if _, err := fc.Write([]byte("cc")); err != nil {
		t.Fatal(err)
	}
	_ = fc.Close()
	if got := rec.sent(); got != "bbaaaa" {
		t.Errorf("peer saw %q after close, want the held payload discarded", got)
	}
}

func TestFaultConnReadStallOneShot(t *testing.T) {
	const stall = 150 * time.Millisecond
	fc := NewFaultConn(nopConn{}, FaultConfig{
		Seed:               1,
		StallReadsAfterOps: 1,
		StallDuration:      stall,
	})
	buf := make([]byte, 4)
	start := time.Now()
	if _, err := fc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < stall {
		t.Errorf("first read returned after %v, want a >= %v stall", elapsed, stall)
	}
	// The stall is one-shot: later reads proceed at full speed.
	start = time.Now()
	if _, err := fc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= stall {
		t.Errorf("second read took %v, want the stall to have disarmed", elapsed)
	}
}

// A deployment whose flaky clients suffer duplicated, reordered and
// silently dropped writes must still complete: duplicates are absorbed as
// redundant updates, mangled gob streams kill the connection and the
// client reconnects, and a dropped message is broken out of by the
// server's read deadline.
func TestDeploymentSurvivesLossyWrites(t *testing.T) {
	const (
		numClients = 6
		lossy      = 3
		goal       = 3
		rounds     = 3
	)
	server, err := NewServer(ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: goal,
		StalenessLimit:  10,
		Rounds:          rounds,
		ReadTimeout:     500 * time.Millisecond,
		WriteTimeout:    10 * time.Second,
		MaxMessageBytes: 1 << 20,
		RoundTimeout:    300 * time.Millisecond,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	parts := testData(t, numClients)
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		cfg := ClientConfig{
			ID: i, Data: parts[i], Model: testModelConfig(), Trainer: testTrainer(),
			Seed:           int64(100 + i),
			ThinkTime:      2 * time.Millisecond,
			MaxRetries:     40,
			RetryBaseDelay: time.Millisecond,
			RetryMaxDelay:  20 * time.Millisecond,
		}
		if i < lossy {
			cfg.Dial = FaultDialer(FaultConfig{
				Seed:             int64(2000 + i),
				DupWriteProb:     0.05,
				ReorderWriteProb: 0.05,
				DropWriteProb:    0.05,
			})
		}
		client, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = client.Run(lis.Addr().String())
		}()
	}

	select {
	case <-server.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("lossy deployment did not finish within 60s")
	}
	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if got := server.Version(); got != rounds {
		t.Errorf("version = %d, want %d", got, rounds)
	}
	stats := server.Stats()
	if stats.Accepted == 0 {
		t.Error("no updates accepted through the lossy network")
	}
	t.Logf("lossy deployment: %d received, %d accepted, %d reconnects",
		stats.UpdatesReceived, stats.Accepted, stats.Reconnects)
}
