package transport

import (
	"context"
	"net"
	"time"
)

// Drain gracefully takes the server out of a deployment: it stops
// admitting updates and says Goodbye on every live connection — both in
// reply to in-flight requests and proactively to clients that are busy
// training (their blocked handler reads are nudged awake) — waits for
// the in-flight aggregation round to commit, force-flushes whatever the
// buffer still holds into one final round, writes a final checkpoint
// when checkpointing is configured, lets connections wind down so every
// client actually reads its Goodbye, and tears down the listener and
// remaining connections so Serve returns.
//
// Drain respects ctx: when the deadline expires before the flush
// completes, Drain hard-closes the network and returns ctx.Err() while
// the flush and final checkpoint finish in the background (the
// aggregating round cannot be interrupted mid-filter). Drain is
// idempotent — concurrent or repeated calls wait on the same sequence.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()

	if !alreadyDraining {
		// Wake every handler blocked in a read so it can say Goodbye to
		// its client proactively: a client that is busy training (or
		// sleeping on a NACK pacing hint) would otherwise never hear
		// about the drain until the socket died under it.
		s.nudgeConns()
		s.drainOnce.Do(func() {
			go s.drainSequence()
		})
	}

	var err error
	select {
	case <-s.drained:
		// The flush and final checkpoint are done. Give the farewells a
		// moment to be read — handlers exit once their client takes the
		// Goodbye and closes — before hard-closing the stragglers.
		s.awaitWinddown(ctx)
	case <-ctx.Done():
		err = ctx.Err()
		// The flush is taking too long: mark the deployment finished so
		// handlers and rounds stop, and let the background sequence write
		// its checkpoint whenever the in-flight round lets go.
		s.mu.Lock()
		if !s.finished {
			s.finished = true
			close(s.done)
		}
		s.mu.Unlock()
	}
	if cerr := s.closeNetwork(); err == nil {
		err = cerr
	}
	return err
}

// nudgeConns expires the read deadline on every live connection, booting
// blocked handler reads into their draining path. The deadlines are set
// outside s.mu — SetReadDeadline never blocks, but the lock discipline
// here is the same as for every other conn operation.
func (s *Server) nudgeConns() {
	s.mu.Lock()
	open := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		open = append(open, conn)
	}
	s.mu.Unlock()
	for _, conn := range open {
		_ = conn.SetReadDeadline(time.Now())
	}
}

// awaitWinddown waits for live connections to wind down after the drain
// flush: clients read their Goodbye and close, handlers exit. Bounded by
// ctx and by the farewell linger budget — a comatose client must not pin
// the drain, and whatever remains is hard-closed by the caller.
func (s *Server) awaitWinddown(ctx context.Context) {
	deadline := time.NewTimer(drainLinger)
	defer deadline.Stop()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.mu.Lock()
		open := len(s.conns)
		s.mu.Unlock()
		if open == 0 {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-deadline.C:
			return
		case <-ticker.C:
		}
	}
}

// drainSequence is the background half of Drain: flush, finish,
// checkpoint, then signal completion by closing s.drained. Runs without
// s.mu held (each step takes the lock itself).
func (s *Server) drainSequence() {
	defer close(s.drained)
	defer s.recoverPanic("drain")

	// Wait for the in-flight round to commit; the draining flag already
	// stops new updates, and the watchdog stands down for a draining
	// server, so no new round can start behind our back.
	s.mu.Lock()
	for s.aggregating {
		s.aggDone.Wait()
	}
	s.mu.Unlock()

	// Force-flush the remaining buffer into one final round. Deferred
	// updates the filter sends back stay in the buffer and land in the
	// final checkpoint instead of being silently lost.
	s.maybeAggregate(forceDrain)

	s.mu.Lock()
	if !s.finished {
		s.finished = true
		close(s.done)
	}
	var snap *serverSnapshot
	if s.cfg.CheckpointPath != "" {
		snap = s.captureSnapshotLocked()
	}
	s.mu.Unlock()
	if snap != nil {
		s.writeSnapshot(snap)
	}
}
