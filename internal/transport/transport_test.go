package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/optim"
	"github.com/asyncfl/asyncfilter/internal/randx"
)

func testModelConfig() model.Config {
	return model.Config{Arch: model.ArchLinear, InputDim: 8, NumClasses: 3, Seed: 1}
}

func testTrainer() fl.TrainerConfig {
	return fl.TrainerConfig{
		Epochs: 1, BatchSize: 16,
		Optim: optim.Config{Name: optim.SGDName, LR: 0.05, Momentum: 0.9},
	}
}

func testData(t *testing.T, n int) []*dataset.Dataset {
	t.Helper()
	train, _, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name: "t", NumClasses: 3, Dim: 8,
		TrainSize: 1200, TestSize: 60,
		Separation: 4, Noise: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := dataset.PartitionIIDFixedSize(train, n, 60, randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	return parts
}

func initialParams(t *testing.T) []float64 {
	t.Helper()
	m, err := model.New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, m.NumParams())
	m.Params(p)
	return p
}

func TestServerConfigValidation(t *testing.T) {
	base := ServerConfig{InitialParams: []float64{1}, AggregationGoal: 1, Rounds: 1}
	cases := []func(*ServerConfig){
		func(c *ServerConfig) { c.InitialParams = nil },
		func(c *ServerConfig) { c.AggregationGoal = 0 },
		func(c *ServerConfig) { c.Rounds = 0 },
		func(c *ServerConfig) { c.StalenessLimit = -1 },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := NewServer(cfg, nil, nil); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{Trainer: testTrainer()}); err == nil {
		t.Error("client without data accepted")
	}
	parts := testData(t, 1)
	if _, err := NewClient(ClientConfig{Data: parts[0]}); err == nil {
		t.Error("client without trainer accepted")
	}
	if _, err := NewClient(ClientConfig{Data: parts[0], Trainer: testTrainer(), Attack: attack.Config{Name: "wormhole"}}); err == nil {
		t.Error("client with unknown attack accepted")
	}
}

// runDeployment spins a server plus clients over loopback TCP and waits
// for completion, returning the server.
func runDeployment(t *testing.T, filter fl.Filter, numClients, malicious, goal, rounds int) *Server {
	t.Helper()
	server, err := NewServer(ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: goal,
		StalenessLimit:  10,
		Rounds:          rounds,
	}, filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	parts := testData(t, numClients)
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		cfg := ClientConfig{
			ID:      i,
			Data:    parts[i],
			Model:   testModelConfig(),
			Trainer: testTrainer(),
			Seed:    int64(100 + i),
		}
		if i < malicious {
			cfg.Attack = attack.Config{Name: attack.GDName, Scale: 2}
		}
		client, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The server closes connections at shutdown; clients may see
			// a receive error then, which is expected.
			_ = client.Run(lis.Addr().String())
		}()
	}

	select {
	case <-server.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("deployment did not finish within 30s")
	}
	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	return server
}

func TestDeploymentCompletesRounds(t *testing.T) {
	server := runDeployment(t, nil, 6, 0, 4, 3)
	if got := server.Version(); got != 3 {
		t.Errorf("version = %d, want 3", got)
	}
	stats := server.Stats()
	if stats.Rounds != 3 {
		t.Errorf("stats rounds = %d", stats.Rounds)
	}
	if stats.Accepted == 0 {
		t.Error("no updates accepted")
	}
	if stats.UpdatesReceived < stats.Accepted {
		t.Error("received < accepted")
	}
}

func TestDeploymentImprovesModel(t *testing.T) {
	server := runDeployment(t, nil, 6, 0, 4, 5)
	final := server.FinalParams()

	m, err := model.New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, test, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name: "t", NumClasses: 3, Dim: 8,
		TrainSize: 300, TestSize: 300,
		Separation: 4, Noise: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	accBefore, _ := model.Evaluate(m, test)
	m.SetParams(final)
	accAfter, _ := model.Evaluate(m, test)
	if accAfter <= accBefore {
		t.Errorf("deployment did not improve accuracy: %v -> %v", accBefore, accAfter)
	}
}

func TestDeploymentWithAsyncFilterAndAttackers(t *testing.T) {
	af, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	server := runDeployment(t, af, 8, 2, 6, 4)
	if server.Version() != 4 {
		t.Errorf("version = %d, want 4", server.Version())
	}
}

func TestFinalParamsIsCopy(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams: []float64{1, 2}, AggregationGoal: 1, Rounds: 1,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := server.FinalParams()
	p[0] = 99
	if server.FinalParams()[0] == 99 {
		t.Error("FinalParams returned shared storage")
	}
	if server.Addr() != "" {
		t.Error("Addr before Serve should be empty")
	}
}

func TestCloseBeforeServe(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams: []float64{1}, AggregationGoal: 1, Rounds: 1,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Fatalf("close before serve: %v", err)
	}
	select {
	case <-server.Done():
	default:
		t.Error("Done not closed after Close")
	}
}

func TestServerDropsDimensionMismatch(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams: []float64{1, 2, 3}, AggregationGoal: 1, Rounds: 1,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := &clientSession{id: 1, numSamples: 10}
	server.receiveUpdate(sess, 0, []float64{1})
	if server.Version() != 0 {
		t.Error("mismatched update triggered aggregation")
	}
	stats := server.Stats()
	if stats.DroppedMalformed != 1 {
		t.Errorf("DroppedMalformed = %d, want 1", stats.DroppedMalformed)
	}
	if stats.UpdatesReceived != 1 {
		t.Errorf("UpdatesReceived = %d, want 1", stats.UpdatesReceived)
	}
	// A well-formed update still aggregates.
	server.receiveUpdate(sess, 0, []float64{1, 1, 1})
	if server.Version() != 1 {
		t.Error("well-formed update did not aggregate")
	}
	if got := server.Stats().DroppedMalformed; got != 1 {
		t.Errorf("DroppedMalformed after valid update = %d, want 1", got)
	}
}
