package transport

import (
	"fmt"
	"sort"
	"time"

	"github.com/asyncfl/asyncfilter/internal/fl"
)

// This file defines the edge<->root wire protocol of the two-tier
// topology (internal/topology). It lives in transport so the upstream
// envelope shares the hardening the client protocol gets: the
// byte-budget limitReader, the fuzz harness (fuzz_upstream_test.go) and
// the envelope-shape discipline — flat structs with pointer/bool fields,
// because gob emits one typedef per struct type and deterministic fault
// schedules count I/O operations, so envelope shape stability matters.
//
// The protocol is strict request-reply, like the client protocol: the
// edge sends EdgeMsg, the root answers each with exactly one RootMsg.
// That keeps a single writer per connection side with no extra locking.
//
//	edge -> root: Hello, then (Batch | Heartbeat)*
//	root -> edge: one RootMsg per EdgeMsg
//
// Reliability is layered on top with idempotent batch ids: every batch an
// edge commits gets the next value of a monotone per-edge counter
// (starting at 1), the root acknowledges the highest id it has applied,
// and after a reconnect the edge resends everything unacknowledged. The
// root keeps a high-watermark per edge and answers replayed ids with a
// bare ack, so a batch is applied exactly once no matter how often the
// link flaps — even across a root restart, because the watermarks ride in
// the root's checkpoint.

// EdgeHello introduces an edge aggregator to the root.
type EdgeHello struct {
	// EdgeID identifies the edge (unique per deployment, >= 0).
	EdgeID int
	// ModelDim is the edge's model parameter dimension; a mismatch with
	// the root's global model is refused at Hello time.
	ModelDim int
	// ClientAddr is the edge's client-facing listen address — the address
	// the root publishes in the shard map so clients can be re-homed to
	// this edge.
	ClientAddr string
	// NextBatch is the id the edge's next new batch will carry. It lets
	// the root detect an edge that lost its own state (NextBatch below the
	// root's watermark is answered with the watermark so the edge can
	// resynchronize its counter).
	NextBatch uint64
}

// BatchMsg carries one locally-filtered, locally-committed batch of
// updates from an edge to the root.
type BatchMsg struct {
	// BatchID is the per-edge monotone batch id (1-based).
	BatchID uint64
	// EdgeVersion is the edge's local model version when this batch
	// committed, for diagnostics.
	EdgeVersion int
	// Updates are the filter-accepted updates of one edge round. Staleness
	// is the edge-local staleness at commit time.
	Updates []*fl.Update
	// FilterState, when non-nil, is the edge filter's detection state at
	// commit time in the internal/checkpoint container format. The root
	// retains the latest snapshot per edge and hands it to the successor
	// edge when this edge dies, so re-homed clients keep their learned
	// group estimates.
	FilterState []byte
}

// EdgeMsg is the edge->root envelope. Flat on purpose; see the package
// note above.
type EdgeMsg struct {
	Hello *EdgeHello
	Batch *BatchMsg
	// Heartbeat renews the edge's lease at the root while no batches are
	// flowing; the root answers with Pong (and piggybacks shard-map or
	// handoff pushes).
	Heartbeat bool
	// Epoch is the highest fencing epoch this edge has observed
	// (internal/replica). It rides on every request so a resurrected old
	// primary — whose epoch is lower — learns it has been superseded and
	// answers NackFenced instead of applying state a newer primary owns.
	// 0 means the edge has never seen a replicated root.
	Epoch uint64
}

// RootMsg is the root->edge envelope: exactly one per EdgeMsg.
type RootMsg struct {
	// Task, when non-nil, carries the root's current global model; the
	// edge adopts it so its clients train against the fleet-wide state.
	Task *Task
	// Ack is the highest batch id the root has applied for this edge
	// (0 = none yet). The edge drops acknowledged batches from its resend
	// buffer.
	Ack uint64
	// Shards, when non-nil, is the current shard map push. The edge
	// forwards the client-facing addresses to its own clients.
	Shards *ShardMap
	// Handoff, when non-nil, is a dead edge's last filter snapshot in the
	// internal/checkpoint container format; the receiving edge merges it
	// into its running filter so re-homed clients inherit their group
	// moving averages.
	Handoff []byte
	// Nack, when non-zero, reports a refused Hello (dimension mismatch)
	// or batch.
	Nack NackCode
	// Pong acknowledges a Heartbeat.
	Pong bool
	// Done signals the deployment completed its rounds.
	Done bool
	// Goodbye signals the root is draining.
	Goodbye bool
	// Epoch is the root's current fencing epoch. Edges adopt the highest
	// epoch they see and carry it back on every request (EdgeMsg.Epoch).
	Epoch uint64
	// Peers, together with PeersVersion, relays the static root peer
	// list — the edge-facing addresses of every replica in the root's
	// replication group — through the same piggyback mechanism as the
	// shard map. Edges rotate through it to find the promoted standby
	// after their primary dies. Nil when the root runs unreplicated.
	Peers        []string
	PeersVersion int
}

// ShardEntry maps one edge to its client-facing address.
type ShardEntry struct {
	EdgeID int
	Addr   string
}

// ShardMap assigns clients to edges. Entries are kept sorted by EdgeID so
// every party — root, edges, clients — computes the same assignment from
// the same map version.
type ShardMap struct {
	// Version increments on every membership change; receivers ignore
	// maps older than what they already hold.
	Version int
	// Edges are the live edges, sorted by EdgeID.
	Edges []ShardEntry
}

// Clone returns a deep copy.
func (m *ShardMap) Clone() *ShardMap {
	if m == nil {
		return nil
	}
	return &ShardMap{Version: m.Version, Edges: append([]ShardEntry(nil), m.Edges...)}
}

// Normalize sorts the entries by EdgeID (the canonical order every
// assignment computation assumes).
func (m *ShardMap) Normalize() {
	sort.Slice(m.Edges, func(i, j int) bool { return m.Edges[i].EdgeID < m.Edges[j].EdgeID })
}

// Addrs returns the client-facing addresses in canonical (EdgeID) order —
// the form pushed to clients in ServerMsg.Shards.
func (m *ShardMap) Addrs() []string {
	addrs := make([]string, len(m.Edges))
	for i, e := range m.Edges {
		addrs[i] = e.Addr
	}
	return addrs
}

// HomeIndex returns the index of the edge a client is assigned to:
// clientID modulo the number of live edges. Negative client ids hash by
// magnitude. Returns -1 for an empty map.
func (m *ShardMap) HomeIndex(clientID int) int {
	if m == nil || len(m.Edges) == 0 {
		return -1
	}
	if clientID < 0 {
		clientID = -clientID
	}
	return clientID % len(m.Edges)
}

// HomeEdge returns the ShardEntry a client is assigned to and whether the
// map is non-empty.
func (m *ShardMap) HomeEdge(clientID int) (ShardEntry, bool) {
	i := m.HomeIndex(clientID)
	if i < 0 {
		return ShardEntry{}, false
	}
	return m.Edges[i], true
}

// Validate checks a received shard map before it replaces a held one.
func (m *ShardMap) Validate() error {
	if m.Version < 0 {
		return fmt.Errorf("transport: ShardMap: Version = %d, need >= 0", m.Version)
	}
	seen := make(map[int]bool, len(m.Edges))
	for _, e := range m.Edges {
		if e.EdgeID < 0 {
			return fmt.Errorf("transport: ShardMap: EdgeID = %d, need >= 0", e.EdgeID)
		}
		if seen[e.EdgeID] {
			return fmt.Errorf("transport: ShardMap: duplicate EdgeID %d", e.EdgeID)
		}
		seen[e.EdgeID] = true
		if e.Addr == "" {
			return fmt.Errorf("transport: ShardMap: edge %d has empty Addr", e.EdgeID)
		}
	}
	return nil
}

// AdoptGlobal replaces the server's global parameters with a newer model
// published by an upstream aggregator, without advancing the local round
// counter: edge rounds, not root pushes, drive an edge's version. The
// params are copied on ingest. Updates trained against the pre-adoption
// params keep their BaseVersion — edge-local staleness bookkeeping is
// unaffected by adoption.
func (s *Server) AdoptGlobal(params []float64) error {
	if len(params) == 0 {
		return fmt.Errorf("transport: AdoptGlobal: empty params")
	}
	clone := append([]float64(nil), params...)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(clone) != len(s.global) {
		return fmt.Errorf("transport: AdoptGlobal: %d params, model has %d", len(clone), len(s.global))
	}
	s.global = clone
	return nil
}

// WithFilterQuiescent runs fn while no aggregation round is in flight,
// holding the round slot so no round starts until fn returns. fn runs
// without s.mu held (it may be slow: filter-state merges are O(groups ·
// dim)); connection handlers keep flowing, only round commits wait. The
// hierarchical edge uses this to merge a handed-off filter state into the
// live filter without racing a Filter call.
func (s *Server) WithFilterQuiescent(fn func()) {
	s.mu.Lock()
	for s.aggregating {
		s.aggDone.Wait()
	}
	s.aggregating = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.aggregating = false
		s.aggDone.Broadcast()
		s.mu.Unlock()
	}()
	fn()
}

// Filter returns the server's filter. The filter is not safe for
// concurrent use with aggregation; callers needing to touch its state use
// WithFilterQuiescent.
func (s *Server) Filter() fl.Filter { return s.filter }

// SetShardAddrs publishes a new client-facing shard address list. Every
// connected client receives the new list in its next task envelope;
// clients use it to re-home (clientID modulo list length) when their edge
// says Goodbye or stops answering. An empty list withdraws the push.
func (s *Server) SetShardAddrs(addrs []string) {
	clone := append([]string(nil), addrs...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shardAddrs = clone
	s.shardVersion++
}

// shardPushLocked returns the shard list to piggyback on a reply when the
// handler's last-sent version is stale, updating the handler's cursor.
// Callers hold s.mu.
func (s *Server) shardPushLocked(sent *int) ([]string, int) {
	if *sent == s.shardVersion || len(s.shardAddrs) == 0 {
		return nil, 0
	}
	*sent = s.shardVersion
	return append([]string(nil), s.shardAddrs...), s.shardVersion
}

// BackoffDelay is the shared exponential-backoff-plus-jitter reconnect
// pacing: attempt n (1-based) sleeps base·2^(n-1) capped at max, scaled by
// a jitter in [0.5, 1.5) so a fleet dropped by the same fault does not
// reconnect in lockstep. Both the client and the edge->root uplink
// (internal/topology) draw their delays from it.
func BackoffDelay(jitter float64, base, max time.Duration, n int) time.Duration {
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return time.Duration(float64(d) * jitter)
}
