package transport

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/obsv"
)

// statMirror must cover every ServerStats field exactly once: the
// /metrics contract is "counters match Server.Stats() exactly", so a new
// stats field without a mirror entry is a bug this test catches.
func TestStatMirrorCoversAllStats(t *testing.T) {
	typ := reflect.TypeOf(ServerStats{})
	if typ.NumField() != len(statMirror) {
		t.Fatalf("ServerStats has %d fields but statMirror has %d entries — add the missing mirror",
			typ.NumField(), len(statMirror))
	}

	// Give every field a distinct value and demand every getter reads a
	// distinct field: the multiset of getter outputs must be exactly the
	// field values.
	var st ServerStats
	v := reflect.ValueOf(&st).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(int64(i + 1))
	}
	seen := make(map[int]string, len(statMirror))
	for _, m := range statMirror {
		got := m.Get(&st)
		if got < 1 || got > typ.NumField() {
			t.Errorf("%s reads %d, not a planted field value", m.Name, got)
			continue
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s and %s read the same ServerStats field", m.Name, prev)
		}
		seen[got] = m.Name
	}
}

// parseMetrics reads Prometheus text into name -> integer value,
// skipping comments and non-integer samples.
func parseMetrics(t *testing.T, body string) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		name, val := line[:idx], line[idx+1:]
		n, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[name] = int(n)
	}
	return out
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// The tentpole integration test: a faulty-network attack deployment with
// the introspection handler live. After a graceful drain, /metrics must
// match Server.Stats() exactly, /trace must hold reject records naming
// the attacker client IDs, and /healthz must report the drained state.
// (Observability neutrality — byte-identical aggregation with the hub on
// and off — is asserted on the deterministic simulator in
// internal/experiments, where runs are reproducible; TCP deployments are
// timing-dependent by nature.)
func TestObsvFaultyAttackDeployment(t *testing.T) {
	const (
		numClients = 10
		malicious  = 2 // client IDs 0 and 1 run the GD attack
		flaky      = 3
		goal       = 6  // >= core MinBatch (2*K) so batches are clustered, not wholesale
		rounds     = 40 // high ceiling: the drain ends the run, not Rounds
	)

	filter, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hub := obsv.NewHub(0)
	server, err := NewServer(ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: goal,
		StalenessLimit:  10,
		Rounds:          rounds,
		ReadTimeout:     10 * time.Second,
		WriteTimeout:    10 * time.Second,
		MaxMessageBytes: 1 << 20,
		// Generous watchdog: it is here for liveness if the flaky clients
		// all stall at once, not to race the healthy ones. A short timeout
		// makes every round a watchdog-flushed partial batch on a loaded
		// CI machine, and partial batches below the filter's MinBatch are
		// accepted wholesale — the run would never reject anything.
		RoundTimeout: 2 * time.Second,
		Obsv:         hub,
	}, filter, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The same introspection handler serve.go mounts on -obsv-addr.
	introspect := httptest.NewServer(obsv.Handler(hub, func() obsv.Health {
		return obsv.Health{
			Draining: server.Draining(),
			Finished: server.Finished(),
			Restored: server.Restored(),
			Rounds:   server.Version(),
		}
	}))
	defer introspect.Close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	parts := testData(t, numClients)
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		cfg := ClientConfig{
			ID: i, Data: parts[i], Model: testModelConfig(), Trainer: testTrainer(),
			Seed:           int64(100 + i),
			ThinkTime:      2 * time.Millisecond,
			MaxRetries:     40,
			RetryBaseDelay: time.Millisecond,
			RetryMaxDelay:  20 * time.Millisecond,
		}
		if i < malicious {
			cfg.Attack = attack.Config{Name: attack.GDName, Scale: 2}
		}
		if i >= numClients-flaky {
			cfg.Dial = FaultDialer(FaultConfig{
				Seed:             int64(1000 + i),
				ResetProb:        0.01,
				ResetAfterOps:    6,
				DelayProb:        0.2,
				Delay:            time.Millisecond,
				PartialWriteProb: 0.05,
			})
		}
		client, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = client.Run(lis.Addr().String())
		}()
	}

	// Wait for enough rounds AND at least one rejection before draining,
	// so the filter assertions below can never be vacuous. On a loaded
	// machine early rounds may be watchdog-flushed partial batches
	// (accepted wholesale below MinBatch); the attackers submit every
	// round, so a full batch — and with it a rejection — arrives once the
	// scheduler catches up.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st := server.Stats(); server.Version() >= 6 && st.Rejected > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no rejection within 60s: stats %+v", server.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A mid-run scrape must work while rounds are committing (exercises
	// the collector against a live server under -race).
	if code, _ := httpGet(t, introspect.URL+"/metrics"); code != http.StatusOK {
		t.Fatalf("mid-run /metrics status = %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	err = server.Drain(ctx)
	cancel()
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// 1. /metrics mirrors Server.Stats() exactly, field for field.
	st := server.Stats()
	_, body := httpGet(t, introspect.URL+"/metrics")
	metrics := parseMetrics(t, body)
	for _, m := range statMirror {
		got, ok := metrics[m.Name]
		if !ok {
			t.Errorf("/metrics missing %s", m.Name)
			continue
		}
		if want := m.Get(&st); got != want {
			t.Errorf("%s = %d, want %d (Stats mismatch)", m.Name, got, want)
		}
	}

	// Event-driven series exist alongside the mirror: one latency sample
	// per committed round, and buffer counters that tie out with stats.
	if got := metrics["afl_round_latency_seconds_count"]; got != st.Rounds {
		t.Errorf("round latency samples = %d, want %d rounds", got, st.Rounds)
	}
	if metrics["afl_updates_received_total"] == 0 {
		t.Error("no updates recorded")
	}
	if st.Rejected == 0 {
		t.Fatal("attack scenario rejected nothing; filter assertions below are vacuous")
	}
	if got := metrics[`afl_filter_decisions_total{decision="reject"}`]; got != st.Rejected {
		t.Errorf("filter reject events = %d, want %d", got, st.Rejected)
	}

	// 2. /trace holds reject records for the attacker client IDs.
	_, body = httpGet(t, introspect.URL+"/trace")
	var payload struct {
		Records []struct {
			Kind     string `json:"kind"`
			ClientID *int   `json:"client_id"`
			Decision string `json:"decision"`
		} `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("trace unmarshal: %v", err)
	}
	rejectedAttackers := make(map[int]bool)
	rejects := 0
	for _, r := range payload.Records {
		if r.Kind != "decision" || r.Decision != "reject" {
			continue
		}
		rejects++
		if r.ClientID != nil && *r.ClientID < malicious {
			rejectedAttackers[*r.ClientID] = true
		}
	}
	if rejects == 0 {
		t.Error("/trace holds no reject records")
	}
	if len(rejectedAttackers) == 0 {
		t.Error("/trace holds no reject records for attacker client IDs")
	}

	// 3. /healthz reports the drained lifecycle state with a 503.
	code, body := httpGet(t, introspect.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain /healthz status = %d, want 503", code)
	}
	var health obsv.Health
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatal(err)
	}
	if !health.Draining || !health.Finished || health.Rounds != server.Version() {
		t.Errorf("post-drain health = %+v", health)
	}

	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}
}

// An undefended (Passthrough) server still mirrors its stats; the filter
// series simply stay absent. Guards the nil-filter wiring path.
func TestObsvPassthroughDeployment(t *testing.T) {
	hub := obsv.NewHub(32)
	server, err := NewServer(ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: 3,
		StalenessLimit:  10,
		Rounds:          2,
		Obsv:            hub,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	parts := testData(t, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		client, err := NewClient(ClientConfig{
			ID: i, Data: parts[i], Model: testModelConfig(), Trainer: testTrainer(),
			Seed: int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = client.Run(lis.Addr().String())
		}()
	}
	select {
	case <-server.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("deployment did not finish")
	}
	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	wg.Wait()
	<-serveErr

	st := server.Stats()
	snap := hub.Registry.Snapshot()
	if snap.Counters["afl_rounds_total"] != uint64(st.Rounds) {
		t.Errorf("afl_rounds_total = %d, want %d", snap.Counters["afl_rounds_total"], st.Rounds)
	}
	if snap.Counters["afl_accepted_total"] != uint64(st.Accepted) {
		t.Errorf("afl_accepted_total mismatch")
	}
	if _, present := snap.Counters["afl_filter_rounds_total"]; present {
		t.Error("passthrough deployment registered filter series")
	}
	// Buffer churn flowed through the sink.
	if snap.Counters["afl_buffer_drained_total"] == 0 {
		t.Error("buffer sink saw no drains")
	}
}
