package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/fl"
)

// This file fuzzes the binary frame codec the same way the gob fuzzers
// drive the legacy stream: adversarial bytes against every direction's
// decoder must yield typed errors — ErrBadFrame, ErrMessageTooLarge, or
// a short-read io error — never a panic, never unbounded allocation (the
// byte budget is checked before the payload buffer exists, and hostile
// update counts and slab dimensions are bounded by the bytes actually on
// the wire).

// binSeed records the frames an encode function emits, giving the fuzzer
// structurally valid binary streams to mutate.
func binSeed(t testing.TB, encode func(*binConn) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := encode(newBinConn(&buf, 0, false)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// binFuzzBudget caps one fuzzed frame payload, like MaxMessageBytes on a
// live connection.
const binFuzzBudget = 1 << 16

// binReader builds read-only framing state over a byte stream (the fuzz
// decoders never write).
func binReader(r io.Reader, max int64) *binConn {
	return &binConn{r: r, max: max}
}

// binFuzzTypedError reports whether err is one the transport maps to a
// drop: a structural frame error, the oversize trip, or a short read.
func binFuzzTypedError(err error) bool {
	return errors.Is(err, ErrBadFrame) ||
		errors.Is(err, ErrMessageTooLarge) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// binFuzzSeeds is one valid stream per raw frame kind plus gob-fallback
// frames, across all six directions.
func binFuzzSeeds(f testing.TB) [][]byte {
	f.Helper()
	slab := []float64{1.5, -2.25, 0, 3e300}
	return [][]byte{
		binSeed(f, func(c *binConn) error {
			if err := c.writeClientMsg(&ClientMsg{Hello: &Hello{ClientID: 1, NumSamples: 10, ModelDim: 4, Codec: CodecBinary}}); err != nil {
				return err
			}
			if err := c.writeClientMsg(&ClientMsg{Update: &UpdateMsg{BaseVersion: 2, Delta: slab}}); err != nil {
				return err
			}
			return c.writeClientMsg(&ClientMsg{Heartbeat: true})
		}),
		binSeed(f, func(c *binConn) error {
			if err := c.writeServerMsg(&ServerMsg{Task: &Task{Version: 3, Params: slab}, Nack: NackOverloaded, RetryAfter: 50}); err != nil {
				return err
			}
			return c.writeServerMsg(&ServerMsg{Pong: true})
		}),
		binSeed(f, func(c *binConn) error {
			if err := c.writeEdgeMsg(&EdgeMsg{Epoch: 7, Batch: &BatchMsg{
				BatchID:     9,
				EdgeVersion: 4,
				FilterState: []byte{1, 2, 3},
				Updates: []*fl.Update{
					{ClientID: 1, BaseVersion: 2, Staleness: 1, NumSamples: 5, Delta: slab},
					{ClientID: 2, NumSamples: 1},
				},
			}}); err != nil {
				return err
			}
			return c.writeEdgeMsg(&EdgeMsg{Heartbeat: true, Epoch: 7})
		}),
		binSeed(f, func(c *binConn) error {
			if err := c.writeRootMsg(&RootMsg{Ack: 9, Epoch: 7, Task: &Task{Version: 5, Params: slab}, Pong: true}); err != nil {
				return err
			}
			return c.writeRootMsg(&RootMsg{Nack: NackFenced, Epoch: 8})
		}),
		binSeed(f, func(c *binConn) error {
			if err := c.writeReplicaMsg(&ReplicaMsg{Hello: &ReplHello{NodeID: 1, NextSeq: 4}}); err != nil {
				return err
			}
			return c.writeReplicaMsg(&ReplicaMsg{AckSeq: 12, Epoch: 3})
		}),
		binSeed(f, func(c *binConn) error {
			if err := c.writePrimaryMsg(&PrimaryMsg{Epoch: 3, LatestSeq: 12, Record: &ReplRecord{
				Seq: 12, Epoch: 3, EdgeID: 1, BatchID: 9, EdgeAddr: "127.0.0.1:9100",
				ShardVersion: 2, Delta: slab, Accepted: 2, FilterState: []byte{4, 5}, FilterFull: true,
			}}); err != nil {
				return err
			}
			return c.writePrimaryMsg(&PrimaryMsg{Heartbeat: true, Epoch: 3, LatestSeq: 12})
		}),
	}
}

// FuzzDecodeBinaryEnvelope drives every direction's binary decoder with
// adversarial bytes. Each direction gets its own cursor over the input
// (a frame valid in one direction is an ErrBadFrame in another — that
// asymmetry is part of the contract under test).
func FuzzDecodeBinaryEnvelope(f *testing.F) {
	seeds := binFuzzSeeds(f)
	for _, s := range seeds {
		f.Add(s)
	}
	full := seeds[0]
	f.Add(full[:len(full)/2])                             // truncated mid-frame
	f.Add([]byte{})                                       // empty stream
	f.Add([]byte{frameUpdate, 0xff, 0xff, 0xff, 0xff})    // hostile 4 GiB length prefix
	f.Add([]byte{0x7f, 0, 0, 0, 0})                       // unknown kind, empty payload
	f.Add([]byte{frameHeartbeat, 3, 0, 0, 0, 1, 2, 3})    // trailing bytes on an empty-payload kind
	f.Add([]byte{frameEdgeBatch, 4, 0, 0, 0, 9, 9, 9, 9}) // short batch payload

	srv := &Server{arena: fl.NewArena(4)}
	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(what string, err error, tripped bool) {
			t.Helper()
			if err == nil {
				return
			}
			if !binFuzzTypedError(err) {
				t.Fatalf("%s: untyped error %v", what, err)
			}
			if errors.Is(err, ErrMessageTooLarge) && !tripped {
				t.Fatalf("%s: oversize error without the trip flag", what)
			}
		}
		// A connection decodes many frames through one binConn; bound
		// the loop so a stream of tiny valid frames still terminates.
		decodeAll := func(what string, next func(*binConn) error) {
			bin := binReader(bytes.NewReader(data), binFuzzBudget)
			for i := 0; i < 16; i++ {
				if err := next(bin); err != nil {
					check(what, err, bin.tripped())
					return
				}
			}
		}
		decodeAll("client->server", func(bin *binConn) error {
			wire := &binServerWire{bin: bin, srv: srv}
			frame, err := wire.readMsg()
			if err == nil && frame.hasUpdate {
				srv.arena.PutVec(frame.delta)
			}
			return err
		})
		var scratch []float64
		decodeAll("server->client", func(bin *binConn) error {
			var msg ServerMsg
			var err error
			scratch, err = bin.readServerMsg(&msg, scratch)
			return err
		})
		decodeAll("edge->root", func(bin *binConn) error {
			_, err := bin.readEdgeMsg()
			return err
		})
		decodeAll("root->edge", func(bin *binConn) error {
			_, err := bin.readRootMsg()
			return err
		})
		decodeAll("standby->primary", func(bin *binConn) error {
			_, err := bin.readReplicaMsg()
			return err
		})
		decodeAll("primary->standby", func(bin *binConn) error {
			_, err := bin.readPrimaryMsg()
			return err
		})
	})
}

// The binary seed corpus must decode cleanly in its own direction —
// guards against the seeds rotting if the frame format changes.
func TestBinaryFuzzSeedsDecode(t *testing.T) {
	seeds := binFuzzSeeds(t)
	readers := []func(*binConn) error{
		func(bin *binConn) error {
			wire := &binServerWire{bin: bin, srv: &Server{arena: fl.NewArena(4)}}
			_, err := wire.readMsg()
			return err
		},
		func(bin *binConn) error {
			var msg ServerMsg
			_, err := bin.readServerMsg(&msg, nil)
			return err
		},
		func(bin *binConn) error { _, err := bin.readEdgeMsg(); return err },
		func(bin *binConn) error { _, err := bin.readRootMsg(); return err },
		func(bin *binConn) error { _, err := bin.readReplicaMsg(); return err },
		func(bin *binConn) error { _, err := bin.readPrimaryMsg(); return err },
	}
	for i, seed := range seeds {
		bin := binReader(bytes.NewReader(seed), binFuzzBudget)
		for {
			err := readers[i](bin)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("seed %d: %v", i, err)
			}
		}
	}
	// The hostile length prefix must trip the budget before allocating.
	bin := binReader(bytes.NewReader([]byte{frameUpdate, 0xff, 0xff, 0xff, 0xff}), binFuzzBudget)
	if _, _, err := bin.readFrame(); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("hostile length prefix: got %v, want ErrMessageTooLarge", err)
	}
	if !bin.tripped() {
		t.Fatal("hostile length prefix did not trip the budget")
	}
}
