package transport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/checkpoint"
	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/fl"
)

// recordedReplicaSession encodes the standby->primary half of a realistic
// replication session — attach Hello, per-push acknowledgements, a
// re-attach Hello demanding a full sync — through the production gob
// path, so the fuzzer starts from bytes a real deployment would put on
// the replication wire.
func recordedReplicaSession(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	msgs := []ReplicaMsg{
		{Hello: &ReplHello{NodeID: 1, Epoch: 0, NextSeq: 1}},
		{AckSeq: 1, Epoch: 0},
		{AckSeq: 2, Epoch: 0},
		// Re-attach after a failed incremental apply: full sync demanded,
		// and the standby has meanwhile observed a newer epoch.
		{Hello: &ReplHello{NodeID: 1, Epoch: 2, NextSeq: 3, FullSync: true}},
		{AckSeq: 3, Epoch: 2},
	}
	for i := range msgs {
		if err := enc.Encode(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// recordedPrimarySession encodes the primary->standby half: a full
// checkpoint snapshot, an initial log record carrying a complete filter
// snapshot, an incremental record carrying a mergeable CMA delta,
// heartbeats, a fencing nack and a clean goodbye.
func recordedPrimarySession(t testing.TB) []byte {
	t.Helper()
	filter, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch := []*fl.Update{
		{ClientID: 3, BaseVersion: 1, Staleness: 0, Delta: []float64{0.5, -1, 2}, NumSamples: 12},
		{ClientID: 8, BaseVersion: 1, Staleness: 1, Delta: []float64{-0.25, 0.5, 1}, NumSamples: 4},
	}
	if _, err := filter.Filter(batch, 1); err != nil {
		t.Fatal(err)
	}
	full, err := filter.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := filter.Filter(batch, 2); err != nil {
		t.Fatal(err)
	}
	delta, err := filter.DiffState(full)
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot push carries the primary's durable root state in the
	// checkpoint container format; the container layer is what transport
	// guards, so any CRC-sealed payload exercises it.
	snapshot, err := checkpoint.Encode(full)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	msgs := []PrimaryMsg{
		{Snapshot: snapshot, Epoch: 1, LatestSeq: 1},
		{Record: &ReplRecord{
			Seq: 2, Epoch: 1, EdgeID: 0, BatchID: 5, EdgeAddr: "127.0.0.1:9201",
			ShardVersion: 1, Delta: []float64{0.5, -1, 2},
			Accepted: 2, FilterState: full, FilterFull: true,
		}, Epoch: 1, LatestSeq: 2},
		{Record: &ReplRecord{
			Seq: 3, Epoch: 1, EdgeID: 1, BatchID: 2, EdgeAddr: "127.0.0.1:9202",
			ShardVersion: 2, Delta: []float64{-0.25, 0.5, 1},
			Accepted: 1, Rejected: 1, FilterState: delta,
		}, Epoch: 1, LatestSeq: 3},
		{Heartbeat: true, Epoch: 1, LatestSeq: 3},
		{Nack: NackFenced, Epoch: 4},
		{Goodbye: true, Epoch: 1, LatestSeq: 3},
	}
	for i := range msgs {
		if err := enc.Encode(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzDecodeReplicaMsg drives the primary's replication decode path — a
// gob decoder behind the byte-budget limitReader, exactly as the standby
// handler builds it — with adversarial bytes. Same contract as the other
// wire fuzzers: typed errors or decoded messages, never a panic, never
// unbounded memory.
func FuzzDecodeReplicaMsg(f *testing.F) {
	session := recordedReplicaSession(f)
	f.Add(session)
	f.Add(session[:len(session)/2])    // truncated mid-message
	f.Add(session[1:])                 // missing type preamble
	f.Add([]byte{})                    // empty stream
	f.Add([]byte{0xff, 0xff, 0xff})    // junk length prefix
	f.Add(bytes.Repeat([]byte{5}, 64)) // repetitive garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		lim := newLimitReader(bytes.NewReader(data), 1<<16)
		dec := gob.NewDecoder(lim)
		for i := 0; i < 16; i++ {
			lim.reset()
			var msg ReplicaMsg
			if err := dec.Decode(&msg); err != nil {
				return // typed error: the primary drops the standby here
			}
			// Mirror what the primary does with a decoded message: hello
			// validation, then ack/epoch bookkeeping.
			if msg.Hello != nil {
				_ = msg.Hello.Validate()
			}
			_, _ = msg.AckSeq, msg.Epoch
		}
	})
}

// FuzzDecodePrimaryMsg drives the standby-side decode of primary pushes
// with the same contract, including the layers behind the envelope: a
// hostile Snapshot must die in the checkpoint container's CRC/type
// checks, and a hostile Record.FilterState must be rejected by the
// filter's own state decoder — never a panic in any layer.
func FuzzDecodePrimaryMsg(f *testing.F) {
	session := recordedPrimarySession(f)
	f.Add(session)
	f.Add(session[:len(session)/3])
	f.Add(session[2:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xCD}, 48))

	f.Fuzz(func(t *testing.T, data []byte) {
		lim := newLimitReader(bytes.NewReader(data), 1<<16)
		dec := gob.NewDecoder(lim)
		for i := 0; i < 16; i++ {
			lim.reset()
			var msg PrimaryMsg
			if err := dec.Decode(&msg); err != nil {
				return // typed error: the standby rotates upstreams here
			}
			if len(msg.Snapshot) > 0 {
				var inner []byte
				_ = checkpoint.Decode(msg.Snapshot, &inner, "fuzz")
			}
			if msg.Record != nil {
				_ = len(msg.Record.Delta)
				_ = len(msg.Record.EdgeAddr)
				if len(msg.Record.FilterState) > 0 {
					if af, err := core.New(core.DefaultConfig()); err == nil {
						if msg.Record.FilterFull {
							_ = af.RestoreState(msg.Record.FilterState)
						} else {
							_ = af.MergeState(msg.Record.FilterState)
						}
					}
				}
			}
		}
	})
}

// TestReplicaFuzzSeedsDecode guards the recorded replication sessions
// against rot: both halves must decode cleanly end to end through the
// production decode stack, including the checkpoint container and the
// filter-state payloads the records carry.
func TestReplicaFuzzSeedsDecode(t *testing.T) {
	lim := newLimitReader(bytes.NewReader(recordedReplicaSession(t)), 1<<16)
	dec := gob.NewDecoder(lim)
	hellos := 0
	for i := 0; i < 5; i++ {
		lim.reset()
		var msg ReplicaMsg
		if err := dec.Decode(&msg); err != nil {
			t.Fatalf("replica session message %d: %v", i, err)
		}
		if msg.Hello != nil {
			if err := msg.Hello.Validate(); err != nil {
				t.Fatalf("replica session message %d: recorded hello invalid: %v", i, err)
			}
			hellos++
		}
	}
	if hellos != 2 {
		t.Fatalf("replica session decoded %d hellos, want 2", hellos)
	}

	lim = newLimitReader(bytes.NewReader(recordedPrimarySession(t)), 1<<16)
	dec = gob.NewDecoder(lim)
	records := 0
	for i := 0; i < 6; i++ {
		lim.reset()
		var msg PrimaryMsg
		if err := dec.Decode(&msg); err != nil {
			t.Fatalf("primary session message %d: %v", i, err)
		}
		if len(msg.Snapshot) > 0 {
			var inner []byte
			if err := checkpoint.Decode(msg.Snapshot, &inner, "seed"); err != nil {
				t.Fatalf("primary session message %d: snapshot not in checkpoint container: %v", i, err)
			}
		}
		if msg.Record == nil {
			continue
		}
		records++
		restored, err := core.New(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if msg.Record.FilterFull {
			if err := restored.RestoreState(msg.Record.FilterState); err != nil {
				t.Fatalf("primary session message %d: full filter state does not restore: %v", i, err)
			}
		} else if err := restored.MergeState(msg.Record.FilterState); err != nil {
			t.Fatalf("primary session message %d: filter delta does not merge: %v", i, err)
		}
	}
	if records != 2 {
		t.Fatalf("primary session decoded %d records, want 2", records)
	}
}
