package transport

import (
	"net"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/fl"
)

// BenchmarkHotWireEdgeBatch measures the annotated //afl:hotpath wire
// codec (WriteEdge/ReadEdge): one edge batch encoded and decoded over an
// in-memory pipe per iteration. allocs/op covers both gob sides and is
// the wire baseline for the ROADMAP item 2 arena work. Run via
// `make bench-hot` (with -benchmem).
func BenchmarkHotWireEdgeBatch(b *testing.B) {
	const dim = 256
	edgeConn, rootConn := net.Pipe()
	defer edgeConn.Close()
	defer rootConn.Close()
	edge := NewUpstreamConn(edgeConn, 0, 0, 0)
	root := NewUpstreamConn(rootConn, 0, 0, 0)

	msg := &EdgeMsg{Batch: &BatchMsg{
		BatchID: 1,
		Updates: []*fl.Update{{ClientID: 1, Delta: make([]float64, dim), NumSamples: 10}},
	}}
	errc := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(errc)
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := root.ReadEdge(); err != nil {
				errc <- err
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Batch.BatchID = uint64(i + 1)
		if err := edge.WriteEdge(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(done)
	edgeConn.Close()
	if err := <-errc; err != nil && b.N > 0 {
		// The reader exits with a closed-pipe error once the bench ends;
		// anything before that would have stalled the writer anyway.
		_ = err
	}
}
