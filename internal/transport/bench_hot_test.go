package transport

import (
	"net"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/fl"
)

// benchWireEdgeBatch drives one edge batch per iteration through an
// initiator/acceptor UpstreamConn pair over an in-memory pipe — the
// annotated //afl:hotpath wire codec end to end, write and read sides
// both counted in allocs/op.
func benchWireEdgeBatch(b *testing.B, codec Codec) {
	const dim = 256
	edgeConn, rootConn := net.Pipe()
	defer edgeConn.Close()
	defer rootConn.Close()
	edge := NewUpstreamConnCodec(edgeConn, codec, 0, 0, 0)
	root := AcceptUpstreamConn(rootConn, 0, 0, 0)

	msg := &EdgeMsg{Batch: &BatchMsg{
		BatchID: 1,
		Updates: []*fl.Update{{ClientID: 1, Delta: make([]float64, dim), NumSamples: 10}},
	}}
	errc := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(errc)
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := root.ReadEdge(); err != nil {
				errc <- err
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Batch.BatchID = uint64(i + 1)
		if err := edge.WriteEdge(msg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(done)
	edgeConn.Close()
	if err := <-errc; err != nil && b.N > 0 {
		// The reader exits with a closed-pipe error once the bench ends;
		// anything before that would have stalled the writer anyway.
		_ = err
	}
}

// BenchmarkHotWireEdgeBatch measures the binary frame envelope — the
// serving codec since ROADMAP item 2 — and is gated against the gob-era
// BENCH_8 baseline by cmd/benchgate. Run via `make bench-hot`.
func BenchmarkHotWireEdgeBatch(b *testing.B) {
	benchWireEdgeBatch(b, CodecBinary)
}

// BenchmarkHotWireEdgeBatchGob measures the legacy gob stream over the
// same pipe, keeping the rollback codec's cost visible next to the
// binary numbers.
func BenchmarkHotWireEdgeBatchGob(b *testing.B) {
	benchWireEdgeBatch(b, CodecGob)
}
