package transport

import (
	"encoding/gob"
	"net"
	"time"
)

// UpstreamConn wraps one side of an established edge<->root connection
// with the same wire hardening the client protocol gets: a gob codec
// behind the byte-budget limitReader, and a read/write deadline armed
// before every blocking I/O operation. Both sides of the upstream
// protocol (internal/topology) speak through it — the edge with
// WriteEdge/ReadRoot, the root with ReadEdge/WriteRoot — so the decode
// path the fuzz harness drives (fuzz_upstream_test.go) is exactly the
// production one.
//
// An UpstreamConn is owned by a single goroutine per side; the strict
// request-reply shape of the protocol (one RootMsg per EdgeMsg) makes
// that the natural structure and keeps the gob codecs free of locking.
type UpstreamConn struct {
	conn         net.Conn
	lim          *limitReader
	dec          *gob.Decoder
	enc          *gob.Encoder
	readTimeout  time.Duration
	writeTimeout time.Duration
}

// NewUpstreamConn dresses conn with the upstream codec. maxMessageBytes
// caps a single decoded message (0 disables the guard); readTimeout and
// writeTimeout bound each blocking read and write (0 disables).
func NewUpstreamConn(conn net.Conn, maxMessageBytes int64, readTimeout, writeTimeout time.Duration) *UpstreamConn {
	lim := newLimitReader(conn, maxMessageBytes)
	return &UpstreamConn{
		conn:         conn,
		lim:          lim,
		dec:          gob.NewDecoder(lim),
		enc:          gob.NewEncoder(conn),
		readTimeout:  readTimeout,
		writeTimeout: writeTimeout,
	}
}

// armRead refreshes the read deadline before a blocking decode.
func (u *UpstreamConn) armRead() {
	if u.readTimeout > 0 {
		_ = u.conn.SetReadDeadline(time.Now().Add(u.readTimeout))
	}
}

// armWrite refreshes the write deadline before a blocking encode.
func (u *UpstreamConn) armWrite() {
	if u.writeTimeout > 0 {
		_ = u.conn.SetWriteDeadline(time.Now().Add(u.writeTimeout))
	}
}

// ReadEdge decodes the next edge->root envelope (root side).
//
//afl:hotpath
func (u *UpstreamConn) ReadEdge() (*EdgeMsg, error) {
	u.armRead()
	u.lim.reset()
	var msg EdgeMsg
	if err := u.dec.Decode(&msg); err != nil {
		return nil, err
	}
	return &msg, nil
}

// WriteRoot encodes one root->edge reply (root side).
//
//afl:hotpath
func (u *UpstreamConn) WriteRoot(msg *RootMsg) error {
	u.armWrite()
	return u.enc.Encode(msg)
}

// ReadRoot decodes the next root->edge envelope (edge side).
//
//afl:hotpath
func (u *UpstreamConn) ReadRoot() (*RootMsg, error) {
	u.armRead()
	u.lim.reset()
	var msg RootMsg
	if err := u.dec.Decode(&msg); err != nil {
		return nil, err
	}
	return &msg, nil
}

// WriteEdge encodes one edge->root request (edge side).
//
//afl:hotpath
func (u *UpstreamConn) WriteEdge(msg *EdgeMsg) error {
	u.armWrite()
	return u.enc.Encode(msg)
}

// Oversize reports whether the last failed read was killed by the
// byte-budget guard rather than an ordinary stream error.
func (u *UpstreamConn) Oversize() bool { return u.lim.tripped() }

// Close closes the underlying connection.
func (u *UpstreamConn) Close() error { return u.conn.Close() }
