package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"time"
)

// UpstreamConn wraps one side of an established edge<->root (or
// primary<->standby, internal/replica) connection with the same wire
// hardening the client protocol gets: the negotiated codec behind the
// byte-budget guard, and a read/write deadline armed before every
// blocking I/O operation. Both sides of the upstream protocol
// (internal/topology) speak through it — the edge with
// WriteEdge/ReadRoot, the root with ReadEdge/WriteRoot — so the decode
// path the fuzz harness drives (fuzz_upstream_test.go) is exactly the
// production one.
//
// Codec negotiation follows the client protocol's preamble scheme: the
// initiating side (the edge, the attaching standby) either writes the
// binary preamble before its first frame or opens with a bare gob
// stream, and the accepting side (the root, the primary) sniffs the
// first byte lazily on its first read. NewUpstreamConn builds a legacy
// gob initiator; NewUpstreamConnCodec selects the codec;
// AcceptUpstreamConn builds the sniffing acceptor.
//
// An UpstreamConn is owned by a single goroutine per side; the strict
// request-reply shape of the protocol (one RootMsg per EdgeMsg) makes
// that the natural structure and keeps the codecs free of locking.
type UpstreamConn struct {
	conn net.Conn
	// Gob codec state; nil on a binary connection.
	lim *limitReader
	dec *gob.Decoder
	enc *gob.Encoder
	// Binary codec state; nil on a gob connection.
	bin *binConn
	// sniffPending marks an acceptor that has not classified the peer's
	// first byte yet; max is retained until then.
	sniffPending bool
	max          int64
	readTimeout  time.Duration
	writeTimeout time.Duration
}

// NewUpstreamConn dresses conn with the legacy gob codec (the historical
// constructor, kept so every existing call site and wire stream stays
// byte-identical). maxMessageBytes caps a single decoded message (0
// disables the guard); readTimeout and writeTimeout bound each blocking
// read and write (0 disables).
func NewUpstreamConn(conn net.Conn, maxMessageBytes int64, readTimeout, writeTimeout time.Duration) *UpstreamConn {
	return NewUpstreamConnCodec(conn, CodecGob, maxMessageBytes, readTimeout, writeTimeout)
}

// NewUpstreamConnCodec dresses the initiating side of a connection with
// the chosen codec. A binary initiator sends the connection preamble
// before its first frame; in every upstream protocol the initiator
// writes first, so the acceptor's sniff always has a byte to classify.
func NewUpstreamConnCodec(conn net.Conn, codec Codec, maxMessageBytes int64, readTimeout, writeTimeout time.Duration) *UpstreamConn {
	u := &UpstreamConn{
		conn:         conn,
		max:          maxMessageBytes,
		readTimeout:  readTimeout,
		writeTimeout: writeTimeout,
	}
	if codec == CodecBinary {
		u.bin = newBinConn(conn, maxMessageBytes, true)
	} else {
		u.initGob(conn)
	}
	return u
}

// AcceptUpstreamConn dresses the accepting side of a connection. The
// codec is negotiated lazily on the first read by sniffing the peer's
// first byte (under that read's deadline), so legacy gob dialers keep
// working against upgraded acceptors unchanged.
func AcceptUpstreamConn(conn net.Conn, maxMessageBytes int64, readTimeout, writeTimeout time.Duration) *UpstreamConn {
	return &UpstreamConn{
		conn:         conn,
		sniffPending: true,
		max:          maxMessageBytes,
		readTimeout:  readTimeout,
		writeTimeout: writeTimeout,
	}
}

// initGob builds the gob codec over r (the sniffed-byte replay reader on
// an acceptor, the raw conn on an initiator).
func (u *UpstreamConn) initGob(r io.Reader) {
	u.lim = newLimitReader(r, u.max)
	u.dec = gob.NewDecoder(u.lim)
	u.enc = gob.NewEncoder(u.conn)
}

// ensureSniffed classifies an acceptor's peer on the first read: the
// binary preamble's 0x00 first byte (impossible for gob) selects the
// binary codec, anything else replays the byte into a gob decoder.
func (u *UpstreamConn) ensureSniffed() error {
	if !u.sniffPending {
		return nil
	}
	u.sniffPending = false
	var first [1]byte
	if _, err := io.ReadFull(u.conn, first[:]); err != nil {
		return err
	}
	if first[0] != binaryPreamble[0] {
		u.initGob(io.MultiReader(bytes.NewReader(first[:]), u.conn))
		return nil
	}
	var rest [3]byte
	if _, err := io.ReadFull(u.conn, rest[:]); err != nil {
		return err
	}
	if rest != [3]byte{binaryPreamble[1], binaryPreamble[2], binaryPreamble[3]} {
		return badFrame(0, "bad binary preamble")
	}
	u.bin = newBinConn(u.conn, u.max, false)
	return nil
}

// errWriteBeforeSniff guards the acceptor protocol shape: every upstream
// protocol has the initiator speak first, so an acceptor write before
// the codec is known is a programming error, not a peer fault.
var errWriteBeforeSniff = errors.New("transport: upstream acceptor write before first read negotiated the codec")

// armRead refreshes the read deadline before a blocking decode.
func (u *UpstreamConn) armRead() {
	if u.readTimeout > 0 {
		_ = u.conn.SetReadDeadline(time.Now().Add(u.readTimeout))
	}
}

// armWrite refreshes the write deadline before a blocking encode.
func (u *UpstreamConn) armWrite() {
	if u.writeTimeout > 0 {
		_ = u.conn.SetWriteDeadline(time.Now().Add(u.writeTimeout))
	}
}

// ReadEdge decodes the next edge->root envelope (root side).
//
//afl:hotpath
func (u *UpstreamConn) ReadEdge() (*EdgeMsg, error) {
	u.armRead()
	if err := u.ensureSniffed(); err != nil {
		return nil, err
	}
	if u.bin != nil {
		//lint:ignore hotalloc the binary decode materializes each batched update exactly once per message (bounded by the frame's sanity caps); the root's round pipeline owns and retires them
		return u.bin.readEdgeMsg()
	}
	u.lim.reset()
	var msg EdgeMsg
	if err := u.dec.Decode(&msg); err != nil {
		return nil, err
	}
	return &msg, nil
}

// WriteRoot encodes one root->edge reply (root side).
//
//afl:hotpath
func (u *UpstreamConn) WriteRoot(msg *RootMsg) error {
	if u.sniffPending {
		return errWriteBeforeSniff
	}
	u.armWrite()
	if u.bin != nil {
		return u.bin.writeRootMsg(msg)
	}
	return u.enc.Encode(msg)
}

// ReadRoot decodes the next root->edge envelope (edge side).
//
//afl:hotpath
func (u *UpstreamConn) ReadRoot() (*RootMsg, error) {
	u.armRead()
	if err := u.ensureSniffed(); err != nil {
		return nil, err
	}
	if u.bin != nil {
		//lint:ignore hotalloc the binary decode materializes the task parameters once per reply; the edge copies them into its model and drops the slice
		return u.bin.readRootMsg()
	}
	u.lim.reset()
	var msg RootMsg
	if err := u.dec.Decode(&msg); err != nil {
		return nil, err
	}
	return &msg, nil
}

// WriteEdge encodes one edge->root request (edge side).
//
//afl:hotpath
func (u *UpstreamConn) WriteEdge(msg *EdgeMsg) error {
	if u.sniffPending {
		return errWriteBeforeSniff
	}
	u.armWrite()
	if u.bin != nil {
		return u.bin.writeEdgeMsg(msg)
	}
	return u.enc.Encode(msg)
}

// Oversize reports whether the last failed read was killed by the
// byte-budget guard rather than an ordinary stream error.
func (u *UpstreamConn) Oversize() bool {
	if u.bin != nil {
		return u.bin.tripped()
	}
	if u.lim != nil {
		return u.lim.tripped()
	}
	return false
}

// Close closes the underlying connection.
func (u *UpstreamConn) Close() error { return u.conn.Close() }
