package transport

import (
	"bytes"
	"encoding/gob"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/randx"
)

// This file proves codec coexistence end to end: a fleet where some
// clients speak the binary envelope and some the legacy gob stream must
// drive the server to EXACTLY the state an all-gob fleet produces — the
// same global parameters and byte-identical filter detection state. The
// wire format is allowed to change how bytes travel, never what the
// filter sees.
//
// Determinism comes from lockstep scripting: the protocol is strictly
// request-reply per connection, and rounds commit synchronously inside
// receiveUpdate, so driving the clients one at a time in a fixed order
// fixes the admission order — any state divergence between the runs can
// then only come from the codecs.

// scriptedWire is one scripted client connection in either codec.
type scriptedWire struct {
	conn net.Conn
	// gob codec
	enc *gob.Encoder
	dec *gob.Decoder
	// binary codec
	bin     *binConn
	scratch []float64
}

func dialScripted(t *testing.T, addr string, codec Codec) *scriptedWire {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	w := &scriptedWire{conn: conn}
	if codec == CodecBinary {
		w.bin = newBinConn(conn, 0, true)
	} else {
		w.enc = gob.NewEncoder(conn)
		w.dec = gob.NewDecoder(conn)
	}
	return w
}

func (w *scriptedWire) send(t *testing.T, msg *ClientMsg) {
	t.Helper()
	var err error
	if w.bin != nil {
		err = w.bin.writeClientMsg(msg)
	} else {
		err = w.enc.Encode(msg)
	}
	if err != nil {
		t.Fatalf("scripted send: %v", err)
	}
}

func (w *scriptedWire) recv(t *testing.T) *ServerMsg {
	t.Helper()
	var msg ServerMsg
	var err error
	if w.bin != nil {
		w.scratch, err = w.bin.readServerMsg(&msg, w.scratch)
	} else {
		err = w.dec.Decode(&msg)
	}
	if err != nil {
		t.Fatalf("scripted recv: %v", err)
	}
	return &msg
}

// scriptDelta is the deterministic update of client i at step s: honest
// clients send small deltas, client 0 runs a crude gradient-scaling
// attack the filter should learn to reject.
func scriptDelta(i, step, dim int) []float64 {
	scale := 0.05
	if i == 0 {
		scale = 20
	}
	return randx.NormalVector(randx.New(int64(1000*i+step)), dim, 0, scale)
}

// runScriptedDeployment drives one server with one scripted client per
// codec in lockstep until the deployment completes, returning the final
// global parameters and the filter's serialized detection state.
func runScriptedDeployment(t *testing.T, codecs []Codec, rounds int) ([]float64, []byte) {
	t.Helper()
	af, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	initial := initialParams(t)
	server, err := NewServer(ServerConfig{
		InitialParams:   initial,
		AggregationGoal: len(codecs),
		StalenessLimit:  10,
		Rounds:          rounds,
	}, af, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	clients := make([]*scriptedWire, len(codecs))
	version := make([]int, len(codecs))
	for i, codec := range codecs {
		clients[i] = dialScripted(t, lis.Addr().String(), codec)
		clients[i].send(t, &ClientMsg{Hello: &Hello{
			ClientID:   i,
			NumSamples: 10 + i,
			ModelDim:   len(initial),
			Codec:      codec,
		}})
		reply := clients[i].recv(t)
		if reply.Task == nil {
			t.Fatalf("client %d: no initial task in %+v", i, reply)
		}
		version[i] = reply.Task.Version
	}

	done := false
	for step := 0; !done; step++ {
		if step > 100*rounds {
			t.Fatal("deployment did not complete within the step budget")
		}
		for i, c := range clients {
			if done {
				break
			}
			c.send(t, &ClientMsg{Update: &UpdateMsg{
				BaseVersion: version[i],
				Delta:       scriptDelta(i, step, len(initial)),
			}})
			reply := c.recv(t)
			switch {
			case reply.Done:
				done = true
			case reply.Task != nil:
				version[i] = reply.Task.Version
			default:
				t.Fatalf("client %d: unexpected reply %+v", i, reply)
			}
		}
	}
	for _, c := range clients {
		_ = c.conn.Close()
	}
	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}

	state, err := af.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	return server.FinalParams(), state
}

// TestMixedCodecFleetMatchesAllGob runs the same scripted deployment —
// same clients, same update schedule, same attacker — once with a mixed
// gob/binary fleet and once all-gob, and demands identical outcomes.
func TestMixedCodecFleetMatchesAllGob(t *testing.T) {
	const rounds = 4
	mixed := []Codec{CodecGob, CodecBinary, CodecGob, CodecBinary}
	control := []Codec{CodecGob, CodecGob, CodecGob, CodecGob}

	mixedParams, mixedState := runScriptedDeployment(t, mixed, rounds)
	controlParams, controlState := runScriptedDeployment(t, control, rounds)

	if !reflect.DeepEqual(mixedParams, controlParams) {
		t.Errorf("final params diverge between mixed-codec and all-gob fleets:\n mixed:   %v\n control: %v",
			mixedParams, controlParams)
	}
	if !bytes.Equal(mixedState, controlState) {
		t.Errorf("filter state diverges between mixed-codec and all-gob fleets (%d vs %d bytes)",
			len(mixedState), len(controlState))
	}
}
