package transport

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// fuzzSeed gob-encodes a sequence of client messages the way a real
// client stream would, giving the fuzzer structurally valid starting
// points to mutate.
func fuzzSeed(t testing.TB, msgs ...ClientMsg) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for i := range msgs {
		if err := enc.Encode(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzDecodeClientMsg drives the server's wire-decode path — a gob
// decoder behind the byte-budget limitReader, exactly as handle() builds
// it — with adversarial bytes. The contract under fuzzing: every input
// yields either decoded messages or an error; never a panic, and never
// unbounded memory (the limiter trips first). Malformed streams map to
// DroppedMalformed at the call sites; here we only assert the decode
// layer's memory- and panic-safety.
func FuzzDecodeClientMsg(f *testing.F) {
	f.Add(fuzzSeed(f, ClientMsg{Hello: &Hello{ClientID: 1, NumSamples: 10, ModelDim: 8}}))
	f.Add(fuzzSeed(f,
		ClientMsg{Hello: &Hello{ClientID: 3, NumSamples: 40, ModelDim: 4}},
		ClientMsg{Update: &UpdateMsg{BaseVersion: 2, Delta: []float64{0.25, -1, 3.5, 0}}},
		ClientMsg{Heartbeat: true},
	))
	full := fuzzSeed(f, ClientMsg{Update: &UpdateMsg{BaseVersion: 1, Delta: []float64{1, 2, 3}}})
	f.Add(full[:len(full)/2])          // truncated mid-message
	f.Add(full[1:])                    // missing type preamble
	f.Add([]byte{})                    // empty stream
	f.Add([]byte{0xff, 0xff, 0xff})    // junk length prefix
	f.Add(bytes.Repeat([]byte{7}, 64)) // repetitive garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		lim := newLimitReader(bytes.NewReader(data), 1<<16)
		dec := gob.NewDecoder(lim)
		// A connection decodes many messages through one decoder with the
		// budget reset per message; bound the loop so a stream of tiny
		// valid messages still terminates.
		for i := 0; i < 16; i++ {
			lim.reset()
			var msg ClientMsg
			if err := dec.Decode(&msg); err != nil {
				if lim.tripped() && err == nil {
					t.Fatal("limiter tripped without a decode error")
				}
				return // typed error: the server drops the connection here
			}
			// Mirror the nil-checks the handler performs on a decoded
			// message so a fuzzed payload can't find a nil-deref there.
			switch {
			case msg.Hello != nil:
				_ = msg.Hello.ClientID + msg.Hello.NumSamples + msg.Hello.ModelDim
			case msg.Update != nil:
				_ = msg.Update.BaseVersion + len(msg.Update.Delta)
			}
		}
	})
}

// The seed corpus itself must decode cleanly end to end — guards against
// the seeds rotting if the wire format changes.
func TestFuzzSeedsDecode(t *testing.T) {
	data := fuzzSeed(t,
		ClientMsg{Hello: &Hello{ClientID: 1, NumSamples: 10, ModelDim: 8}},
		ClientMsg{Update: &UpdateMsg{BaseVersion: 0, Delta: []float64{1, 2}}},
		ClientMsg{Heartbeat: true},
	)
	lim := newLimitReader(bytes.NewReader(data), 1<<16)
	dec := gob.NewDecoder(lim)
	for i := 0; i < 3; i++ {
		lim.reset()
		var msg ClientMsg
		if err := dec.Decode(&msg); err != nil {
			t.Fatalf("seed message %d: %v", i, err)
		}
	}
}
