package transport

import (
	"bytes"
	"encoding/gob"
	"io"
	"net"
)

// clientFrame is one decoded client->server message, codec-independent.
// The delta slice is owned by the receiving handler (the wire never
// reuses it): either a fresh gob allocation or arena memory handed over
// through receiveUpdate's ownership-transfer contract.
type clientFrame struct {
	hello     *Hello
	heartbeat bool
	// hasUpdate distinguishes "update present" from an empty envelope;
	// baseVersion and delta are only meaningful when it is set.
	hasUpdate   bool
	baseVersion int
	delta       []float64
}

// serverWire abstracts the server side of one client connection over the
// negotiated codec. Read deadlines are armed by the caller (the handler
// owns the net.Conn); the wire owns framing, decoding and the oversize
// budget.
type serverWire interface {
	// readMsg blocks for the next client message. The returned frame's
	// delta is owned by the caller.
	readMsg() (clientFrame, error)
	// writeMsg transmits one reply in the connection's codec.
	writeMsg(msg *ServerMsg) error
	// oversize reports whether a read failed because the peer exceeded
	// the byte budget (the connection is condemned).
	oversize() bool
	// codec identifies the negotiated codec, for cross-checking the
	// client's declarative Hello.Codec.
	codec() Codec
}

// gobServerWire is the legacy reflective gob stream.
type gobServerWire struct {
	lim *limitReader
	dec *gob.Decoder
	enc *gob.Encoder
}

func newGobServerWire(r io.Reader, w io.Writer, max int64) *gobServerWire {
	lim := newLimitReader(r, max)
	return &gobServerWire{lim: lim, dec: gob.NewDecoder(lim), enc: gob.NewEncoder(w)}
}

// readMsg decodes into a fresh ClientMsg every time: gob reuses slice
// backing arrays when decoding into a dirty struct, and an update's delta
// must be exclusively owned by the admission pipeline.
func (w *gobServerWire) readMsg() (clientFrame, error) {
	w.lim.reset()
	var msg ClientMsg
	//lint:ignore netdeadline forwarding wrapper: Server.handle arms the read deadline before every readMsg
	if err := w.dec.Decode(&msg); err != nil {
		return clientFrame{}, err
	}
	frame := clientFrame{hello: msg.Hello, heartbeat: msg.Heartbeat}
	if msg.Update != nil {
		frame.hasUpdate = true
		frame.baseVersion = msg.Update.BaseVersion
		frame.delta = msg.Update.Delta
	}
	return frame, nil
}

func (w *gobServerWire) writeMsg(msg *ServerMsg) error {
	//lint:ignore netdeadline forwarding wrapper: Server.send arms the write deadline before every writeMsg
	return w.enc.Encode(msg)
}
func (w *gobServerWire) oversize() bool { return w.lim.tripped() }
func (w *gobServerWire) codec() Codec   { return CodecGob }

// binServerWire is the length-prefixed binary envelope. Update deltas are
// decoded into arena vectors (when the dimension matches the deployment)
// and ownership transfers through receiveUpdate into the buffer.
type binServerWire struct {
	bin *binConn
	srv *Server
}

func (w *binServerWire) readMsg() (clientFrame, error) {
	kind, payload, err := w.bin.readFrame()
	if err != nil {
		return clientFrame{}, err
	}
	switch kind {
	case frameGob:
		var msg ClientMsg
		if err := gobFromFrame(payload, &msg); err != nil {
			return clientFrame{}, err
		}
		frame := clientFrame{hello: msg.Hello, heartbeat: msg.Heartbeat}
		if msg.Update != nil {
			frame.hasUpdate = true
			frame.baseVersion = msg.Update.BaseVersion
			frame.delta = msg.Update.Delta
		}
		return frame, nil
	case frameHeartbeat:
		if len(payload) != 0 {
			return clientFrame{}, badFrame(kind, "trailing bytes")
		}
		return clientFrame{heartbeat: true}, nil
	case frameUpdate:
		cur := binCursor{b: payload}
		base := cur.i64()
		dim := cur.restDim()
		if cur.bad {
			return clientFrame{}, badFrame(kind, "short or misaligned payload")
		}
		delta := w.srv.getDeltaVec(dim)
		cur.f64sInto(delta)
		if err := cur.done(kind); err != nil {
			w.srv.arena.PutVec(delta)
			return clientFrame{}, err
		}
		return clientFrame{hasUpdate: true, baseVersion: base, delta: delta}, nil
	default:
		return clientFrame{}, badFrame(kind, "unknown kind in client->server direction")
	}
}

func (w *binServerWire) writeMsg(msg *ServerMsg) error { return w.bin.writeServerMsg(msg) }
func (w *binServerWire) oversize() bool                { return w.bin.tripped() }
func (w *binServerWire) codec() Codec                  { return CodecBinary }

// getDeltaVec returns an update-delta buffer of length n: recycled arena
// memory when n matches the deployment's model dimension, a cold fresh
// slice otherwise (the dimension-mismatch path rejects it right after).
//
//afl:pooled
func (s *Server) getDeltaVec(n int) []float64 {
	if n == s.arena.Dim() {
		return s.arena.GetVec()
	}
	return make([]float64, n)
}

// sniffWire classifies a fresh client connection by its first byte and
// builds the matching wire. Gob streams never begin with 0x00 (every gob
// message opens with a non-zero varint byte count), so that byte — the
// start of the binary preamble — is an unambiguous codec signal. The
// sniffed bytes of a gob stream are re-prepended, keeping the legacy
// byte stream untouched.
func (s *Server) sniffWire(conn net.Conn) (serverWire, error) {
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return nil, err
	}
	if first[0] != binaryPreamble[0] {
		r := io.MultiReader(bytes.NewReader(first[:]), conn)
		return newGobServerWire(r, conn, s.cfg.MaxMessageBytes), nil
	}
	var rest [3]byte
	if _, err := io.ReadFull(conn, rest[:]); err != nil {
		return nil, err
	}
	if rest != [3]byte{binaryPreamble[1], binaryPreamble[2], binaryPreamble[3]} {
		return nil, badFrame(0, "bad binary preamble")
	}
	return &binServerWire{bin: newBinConn(conn, s.cfg.MaxMessageBytes, false), srv: s}, nil
}
