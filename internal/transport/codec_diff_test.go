package transport

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/randx"
)

// This file is the differential codec suite: for every wire envelope, a
// randomized message encoded by the binary codec and decoded by its
// binary reader must be reflect.DeepEqual to the SAME message round-
// tripped through the legacy gob stream. Gob is the reference semantics
// (it has been fuzz-hardened since PR 1), so any divergence — a dropped
// field, a sign flip, a nil-vs-empty mismatch — fails here before it can
// ship. Generators use finite floats because reflect.DeepEqual cannot
// compare NaN; bit-exactness of non-finite slabs has its own test below.

// diffTrials is the number of randomized messages per direction. The
// suite runs under -race in make check, so keep it brisk.
const diffTrials = 300

// gobRT round-trips v through a fresh gob stream into out (a pointer to
// a zero struct), yielding the reference decoding.
func gobRT(t *testing.T, v, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
}

// binPair builds a writer/reader binConn pair over one in-memory buffer
// (no preamble: the test drives frames directly).
func binPair(max int64) (*binConn, *binConn) {
	var buf bytes.Buffer
	w := newBinConn(&buf, max, false)
	r := newBinConn(&buf, max, false)
	return w, r
}

// genVec returns a finite random vector of the given length (nil when
// n == 0, matching gob's empty-is-absent decoding).
func genVec(r *rand.Rand, n int) []float64 {
	if n == 0 {
		return nil
	}
	return randx.NormalVector(r, n, 0, 3)
}

// genBlob returns nil or a short random byte string.
func genBlob(r *rand.Rand) []byte {
	if r.Intn(2) == 0 {
		return nil
	}
	b := make([]byte, 1+r.Intn(24))
	r.Read(b)
	return b
}

func genUpdate(r *rand.Rand) *fl.Update {
	return &fl.Update{
		ClientID:    r.Intn(100),
		BaseVersion: r.Intn(1000) - 2,
		Staleness:   r.Intn(50) - 1,
		NumSamples:  1 + r.Intn(500),
		Delta:       genVec(r, r.Intn(7)),
	}
}

func genClientMsg(r *rand.Rand) *ClientMsg {
	switch r.Intn(4) {
	case 0:
		return &ClientMsg{Heartbeat: true}
	case 1:
		return &ClientMsg{Hello: &Hello{
			ClientID:   r.Intn(100),
			NumSamples: 1 + r.Intn(500),
			ModelDim:   1 + r.Intn(8),
			Codec:      Codec(r.Intn(2)),
		}}
	default:
		// The hot shape. Deltas are never empty on the wire: Hello
		// validation pins ModelDim >= 1 before the first update.
		return &ClientMsg{Update: &UpdateMsg{
			BaseVersion: r.Intn(1000),
			Delta:       genVec(r, 1+r.Intn(6)),
		}}
	}
}

func genServerMsg(r *rand.Rand) *ServerMsg {
	switch r.Intn(6) {
	case 0:
		return &ServerMsg{Pong: true}
	case 1:
		return &ServerMsg{Done: true, Goodbye: r.Intn(2) == 0}
	case 2:
		return &ServerMsg{
			Nack:       NackCode(1 + r.Intn(7)),
			RetryAfter: time.Duration(r.Intn(5000)) * time.Millisecond,
		}
	case 3:
		shards := make([]string, 1+r.Intn(3))
		for i := range shards {
			shards[i] = "127.0.0.1:9000"
		}
		return &ServerMsg{
			Task:         &Task{Version: r.Intn(100), Params: genVec(r, 1+r.Intn(6))},
			Shards:       shards,
			ShardVersion: 1 + r.Intn(10),
		}
	default:
		// The hot shape: a task, optionally carrying a nack verdict.
		msg := &ServerMsg{Task: &Task{Version: r.Intn(1000), Params: genVec(r, r.Intn(7))}}
		if r.Intn(2) == 0 {
			msg.Nack = NackCode(1 + r.Intn(7))
			msg.RetryAfter = time.Duration(r.Intn(5000)) * time.Millisecond
		}
		return msg
	}
}

func genEdgeMsg(r *rand.Rand) *EdgeMsg {
	switch r.Intn(5) {
	case 0:
		return &EdgeMsg{Heartbeat: true, Epoch: uint64(r.Intn(50))}
	case 1:
		return &EdgeMsg{Hello: &EdgeHello{
			EdgeID:     r.Intn(10),
			ModelDim:   1 + r.Intn(8),
			ClientAddr: "127.0.0.1:9100",
			NextBatch:  uint64(1 + r.Intn(100)),
		}, Epoch: uint64(r.Intn(50))}
	default:
		// The hot shape: a committed batch of filter-accepted updates.
		batch := &BatchMsg{
			BatchID:     uint64(1 + r.Intn(1000)),
			EdgeVersion: r.Intn(500),
			FilterState: genBlob(r),
		}
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			batch.Updates = append(batch.Updates, genUpdate(r))
		}
		return &EdgeMsg{Batch: batch, Epoch: uint64(r.Intn(50))}
	}
}

func genRootMsg(r *rand.Rand) *RootMsg {
	switch r.Intn(6) {
	case 0:
		return &RootMsg{Nack: NackCode(1 + r.Intn(7)), Epoch: uint64(r.Intn(50))}
	case 1:
		return &RootMsg{Done: r.Intn(2) == 0, Goodbye: r.Intn(2) == 1, Nack: NackCode(r.Intn(2))}
	case 2:
		return &RootMsg{
			Ack:   uint64(r.Intn(100)),
			Epoch: uint64(r.Intn(50)),
			Shards: &ShardMap{Version: 1 + r.Intn(10), Edges: []ShardEntry{
				{EdgeID: r.Intn(5), Addr: "127.0.0.1:9100"},
			}},
			Handoff:      genBlob(r),
			Peers:        []string{"127.0.0.1:9200"},
			PeersVersion: 1 + r.Intn(5),
		}
	default:
		// The hot shape: ack + epoch, optionally a task push or a pong.
		msg := &RootMsg{Ack: uint64(r.Intn(1000)), Epoch: uint64(r.Intn(50))}
		if r.Intn(2) == 0 {
			msg.Task = &Task{Version: r.Intn(500), Params: genVec(r, r.Intn(7))}
		}
		msg.Pong = r.Intn(2) == 0
		return msg
	}
}

func genReplicaMsg(r *rand.Rand) *ReplicaMsg {
	switch r.Intn(4) {
	case 0:
		return &ReplicaMsg{Hello: &ReplHello{
			NodeID:   r.Intn(5),
			Epoch:    uint64(r.Intn(50)),
			NextSeq:  uint64(1 + r.Intn(100)),
			FullSync: r.Intn(2) == 0,
		}}
	case 1:
		return &ReplicaMsg{Vote: &VoteRequest{
			CandidateID: r.Intn(5),
			Epoch:       uint64(1 + r.Intn(50)),
			LastSeq:     uint64(r.Intn(100)),
		}}
	default:
		// The hot shape: one acknowledgement per primary push.
		return &ReplicaMsg{AckSeq: uint64(r.Intn(1000)), Epoch: uint64(r.Intn(50))}
	}
}

func genPrimaryMsg(r *rand.Rand) *PrimaryMsg {
	switch r.Intn(7) {
	case 0:
		return &PrimaryMsg{Heartbeat: true, Epoch: uint64(r.Intn(50)), LatestSeq: uint64(r.Intn(1000))}
	case 1:
		return &PrimaryMsg{Snapshot: append(genBlob(r), 1), Epoch: uint64(r.Intn(50)), LatestSeq: uint64(r.Intn(1000))}
	case 2:
		return &PrimaryMsg{Nack: NackCode(1 + r.Intn(7)), Epoch: uint64(r.Intn(50))}
	case 3:
		return &PrimaryMsg{Goodbye: true, Epoch: uint64(r.Intn(50))}
	case 4:
		return &PrimaryMsg{Grant: &VoteGrant{
			VoterID: r.Intn(5),
			Granted: r.Intn(2) == 0,
			Epoch:   uint64(1 + r.Intn(50)),
			LastSeq: uint64(r.Intn(100)),
		}}
	default:
		// The hot shape: one incremental replication log record.
		return &PrimaryMsg{
			Epoch:     uint64(r.Intn(50)),
			LatestSeq: uint64(r.Intn(1000)),
			Record: &ReplRecord{
				Seq:          uint64(1 + r.Intn(1000)),
				Epoch:        uint64(r.Intn(50)),
				EdgeID:       r.Intn(10),
				BatchID:      uint64(1 + r.Intn(1000)),
				EdgeAddr:     "127.0.0.1:9100",
				ShardVersion: r.Intn(10),
				Delta:        genVec(r, r.Intn(7)),
				Accepted:     r.Intn(20),
				Deferred:     r.Intn(20),
				Rejected:     r.Intn(20),
				FilterState:  genBlob(r),
				FilterFull:   r.Intn(2) == 0,
			},
		}
	}
}

// TestDifferentialClientToServer compares the server-side decodings of
// the two codecs frame by frame (hello, heartbeat, update).
func TestDifferentialClientToServer(t *testing.T) {
	r := randx.New(1)
	// Arena dimension 4 sits inside the generator's 1..6 range, so some
	// trials exercise the arena-recycled delta path and some the
	// cold-allocation mismatch path.
	srv := &Server{arena: fl.NewArena(4)}
	for i := 0; i < diffTrials; i++ {
		msg := genClientMsg(r)

		bw, br := binPair(0)
		if err := bw.writeClientMsg(msg); err != nil {
			t.Fatalf("trial %d: binary write: %v", i, err)
		}
		wire := &binServerWire{bin: br, srv: srv}
		got, err := wire.readMsg()
		if err != nil {
			t.Fatalf("trial %d: binary read: %v", i, err)
		}

		var gbuf bytes.Buffer
		gw := newGobServerWire(&gbuf, &gbuf, 0)
		if err := gob.NewEncoder(&gbuf).Encode(msg); err != nil {
			t.Fatalf("trial %d: gob write: %v", i, err)
		}
		want, err := gw.readMsg()
		if err != nil {
			t.Fatalf("trial %d: gob read: %v", i, err)
		}

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: codecs disagree on %+v:\n binary: %+v\n    gob: %+v", i, msg, got, want)
		}
	}
}

// TestDifferentialServerToClient compares the client-side decodings.
func TestDifferentialServerToClient(t *testing.T) {
	r := randx.New(2)
	for i := 0; i < diffTrials; i++ {
		msg := genServerMsg(r)

		bw, br := binPair(0)
		if err := bw.writeServerMsg(msg); err != nil {
			t.Fatalf("trial %d: binary write: %v", i, err)
		}
		var got ServerMsg
		if _, err := br.readServerMsg(&got, nil); err != nil {
			t.Fatalf("trial %d: binary read: %v", i, err)
		}

		var want ServerMsg
		gobRT(t, msg, &want)

		if !reflect.DeepEqual(&got, &want) {
			t.Fatalf("trial %d: codecs disagree on %+v:\n binary: %+v\n    gob: %+v", i, msg, &got, &want)
		}
	}
}

// TestDifferentialEdgeToRoot compares the root-side decodings.
func TestDifferentialEdgeToRoot(t *testing.T) {
	r := randx.New(3)
	for i := 0; i < diffTrials; i++ {
		msg := genEdgeMsg(r)

		bw, br := binPair(0)
		if err := bw.writeEdgeMsg(msg); err != nil {
			t.Fatalf("trial %d: binary write: %v", i, err)
		}
		got, err := br.readEdgeMsg()
		if err != nil {
			t.Fatalf("trial %d: binary read: %v", i, err)
		}

		want := new(EdgeMsg)
		gobRT(t, msg, want)

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: codecs disagree on %+v:\n binary: %+v\n    gob: %+v", i, msg, got, want)
		}
	}
}

// TestDifferentialRootToEdge compares the edge-side decodings.
func TestDifferentialRootToEdge(t *testing.T) {
	r := randx.New(4)
	for i := 0; i < diffTrials; i++ {
		msg := genRootMsg(r)

		bw, br := binPair(0)
		if err := bw.writeRootMsg(msg); err != nil {
			t.Fatalf("trial %d: binary write: %v", i, err)
		}
		got, err := br.readRootMsg()
		if err != nil {
			t.Fatalf("trial %d: binary read: %v", i, err)
		}

		want := new(RootMsg)
		gobRT(t, msg, want)

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: codecs disagree on %+v:\n binary: %+v\n    gob: %+v", i, msg, got, want)
		}
	}
}

// TestDifferentialStandbyToPrimary compares the primary-side decodings.
func TestDifferentialStandbyToPrimary(t *testing.T) {
	r := randx.New(5)
	for i := 0; i < diffTrials; i++ {
		msg := genReplicaMsg(r)

		bw, br := binPair(0)
		if err := bw.writeReplicaMsg(msg); err != nil {
			t.Fatalf("trial %d: binary write: %v", i, err)
		}
		got, err := br.readReplicaMsg()
		if err != nil {
			t.Fatalf("trial %d: binary read: %v", i, err)
		}

		want := new(ReplicaMsg)
		gobRT(t, msg, want)

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: codecs disagree on %+v:\n binary: %+v\n    gob: %+v", i, msg, got, want)
		}
	}
}

// TestDifferentialPrimaryToStandby compares the standby-side decodings.
func TestDifferentialPrimaryToStandby(t *testing.T) {
	r := randx.New(6)
	for i := 0; i < diffTrials; i++ {
		msg := genPrimaryMsg(r)

		bw, br := binPair(0)
		if err := bw.writePrimaryMsg(msg); err != nil {
			t.Fatalf("trial %d: binary write: %v", i, err)
		}
		got, err := br.readPrimaryMsg()
		if err != nil {
			t.Fatalf("trial %d: binary read: %v", i, err)
		}

		want := new(PrimaryMsg)
		gobRT(t, msg, want)

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: codecs disagree on %+v:\n binary: %+v\n    gob: %+v", i, msg, got, want)
		}
	}
}

// TestBinarySlabBitPatterns proves raw float64 slabs survive bit-exactly
// through every raw frame kind that carries one: NaN payloads (which a
// poisoned client could craft), infinities and signed zeros must arrive
// with the very bits that were sent, so the filter judges exactly what
// the client produced. reflect.DeepEqual cannot check this (NaN != NaN),
// hence the dedicated bit-level comparison.
func TestBinarySlabBitPatterns(t *testing.T) {
	patterns := []uint64{
		math.Float64bits(math.NaN()),
		0x7ff8dead_beeff001, // arena debug poison
		0x7ff00000_00000000, // +Inf
		0xfff00000_00000000, // -Inf
		0x80000000_00000000, // -0
		0x00000000_00000001, // smallest subnormal
		math.Float64bits(math.MaxFloat64),
	}
	slab := make([]float64, len(patterns))
	for i, bits := range patterns {
		slab[i] = math.Float64frombits(bits)
	}
	checkBits := func(t *testing.T, got []float64) {
		t.Helper()
		if len(got) != len(patterns) {
			t.Fatalf("slab length %d, want %d", len(got), len(patterns))
		}
		for i, x := range got {
			if math.Float64bits(x) != patterns[i] {
				t.Fatalf("slab[%d] = %016x, want %016x", i, math.Float64bits(x), patterns[i])
			}
		}
	}

	t.Run("update", func(t *testing.T) {
		bw, br := binPair(0)
		msg := &ClientMsg{Update: &UpdateMsg{BaseVersion: 7, Delta: slab}}
		if err := bw.writeClientMsg(msg); err != nil {
			t.Fatal(err)
		}
		wire := &binServerWire{bin: br, srv: &Server{arena: fl.NewArena(len(slab))}}
		frame, err := wire.readMsg()
		if err != nil {
			t.Fatal(err)
		}
		checkBits(t, frame.delta)
	})

	t.Run("task", func(t *testing.T) {
		bw, br := binPair(0)
		msg := &ServerMsg{Task: &Task{Version: 3, Params: slab}}
		if err := bw.writeServerMsg(msg); err != nil {
			t.Fatal(err)
		}
		var got ServerMsg
		if _, err := br.readServerMsg(&got, nil); err != nil {
			t.Fatal(err)
		}
		checkBits(t, got.Task.Params)
	})

	t.Run("edge-batch", func(t *testing.T) {
		bw, br := binPair(0)
		msg := &EdgeMsg{Batch: &BatchMsg{BatchID: 1, Updates: []*fl.Update{
			{ClientID: 1, NumSamples: 1, Delta: slab},
		}}}
		if err := bw.writeEdgeMsg(msg); err != nil {
			t.Fatal(err)
		}
		got, err := br.readEdgeMsg()
		if err != nil {
			t.Fatal(err)
		}
		checkBits(t, got.Batch.Updates[0].Delta)
	})

	t.Run("root-reply", func(t *testing.T) {
		bw, br := binPair(0)
		msg := &RootMsg{Ack: 1, Task: &Task{Version: 2, Params: slab}}
		if err := bw.writeRootMsg(msg); err != nil {
			t.Fatal(err)
		}
		got, err := br.readRootMsg()
		if err != nil {
			t.Fatal(err)
		}
		checkBits(t, got.Task.Params)
	})

	t.Run("repl-record", func(t *testing.T) {
		bw, br := binPair(0)
		msg := &PrimaryMsg{Record: &ReplRecord{Seq: 1, Delta: slab}}
		if err := bw.writePrimaryMsg(msg); err != nil {
			t.Fatal(err)
		}
		got, err := br.readPrimaryMsg()
		if err != nil {
			t.Fatal(err)
		}
		checkBits(t, got.Record.Delta)
	})
}
