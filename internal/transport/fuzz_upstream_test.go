package transport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/checkpoint"
	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/fl"
)

// recordedEdgeSession encodes the edge->root half of a realistic two-tier
// session — Hello, a filtered batch carrying a real checkpoint-encoded
// filter snapshot, a replayed batch after a reconnect Hello, heartbeats —
// through the production gob path, so the fuzzer starts from bytes an
// actual deployment would put on the wire.
func recordedEdgeSession(t testing.TB) []byte {
	t.Helper()
	filter, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	batch := []*fl.Update{
		{ClientID: 4, BaseVersion: 2, Staleness: 1, Delta: []float64{0.5, -0.25, 1}, NumSamples: 20},
		{ClientID: 9, BaseVersion: 3, Staleness: 0, Delta: []float64{-1, 0.75, 0.1}, NumSamples: 5},
	}
	if _, err := filter.Filter(batch, 1); err != nil {
		t.Fatal(err)
	}
	snapBytes, err := filter.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	// Production wraps the opaque snapshot bytes in the checkpoint
	// container (magic, format version, CRC) before they hit the wire.
	state, err := checkpoint.Encode(snapBytes)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	msgs := []EdgeMsg{
		{Hello: &EdgeHello{EdgeID: 1, ModelDim: 3, ClientAddr: "127.0.0.1:9101", NextBatch: 1}},
		{Batch: &BatchMsg{BatchID: 1, EdgeVersion: 1, Updates: batch, FilterState: state}},
		{Heartbeat: true},
		// Reconnect: re-Hello, then replay the unacknowledged batch.
		{Hello: &EdgeHello{EdgeID: 1, ModelDim: 3, ClientAddr: "127.0.0.1:9101", NextBatch: 2}},
		{Batch: &BatchMsg{BatchID: 1, EdgeVersion: 1, Updates: batch, FilterState: state}},
		{Heartbeat: true},
	}
	for i := range msgs {
		if err := enc.Encode(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// recordedRootSession encodes the root->edge half: task pushes with acks,
// a shard-map push, and a filter-state handoff in the checkpoint container
// format.
func recordedRootSession(t testing.TB) []byte {
	t.Helper()
	filter, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := filter.Filter([]*fl.Update{
		{ClientID: 2, Staleness: 0, Delta: []float64{1, 2, 3}, NumSamples: 8},
	}, 1); err != nil {
		t.Fatal(err)
	}
	snapBytes, err := filter.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	handoff, err := checkpoint.Encode(snapBytes)
	if err != nil {
		t.Fatal(err)
	}
	shards := &ShardMap{Version: 3, Edges: []ShardEntry{
		{EdgeID: 1, Addr: "127.0.0.1:9101"},
		{EdgeID: 2, Addr: "127.0.0.1:9102"},
	}}

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	msgs := []RootMsg{
		{Task: &Task{Version: 0, Params: []float64{0, 0, 0}}, Shards: shards},
		{Task: &Task{Version: 1, Params: []float64{0.5, -1, 2}}, Ack: 1},
		{Pong: true},
		{Task: &Task{Version: 2, Params: []float64{1, -2, 4}}, Ack: 2, Shards: shards, Handoff: handoff},
		{Nack: NackMalformed},
		{Goodbye: true},
	}
	for i := range msgs {
		if err := enc.Encode(&msgs[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzDecodeEdgeMsg drives the root's wire-decode path — a gob decoder
// behind the byte-budget limitReader, exactly as the root session builds
// it — with adversarial bytes. Same contract as FuzzDecodeClientMsg:
// typed errors or decoded messages, never a panic, never unbounded memory.
func FuzzDecodeEdgeMsg(f *testing.F) {
	session := recordedEdgeSession(f)
	f.Add(session)
	f.Add(session[:len(session)/2])    // truncated mid-message
	f.Add(session[1:])                 // missing type preamble
	f.Add([]byte{})                    // empty stream
	f.Add([]byte{0xff, 0xff, 0xff})    // junk length prefix
	f.Add(bytes.Repeat([]byte{7}, 64)) // repetitive garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		lim := newLimitReader(bytes.NewReader(data), 1<<16)
		dec := gob.NewDecoder(lim)
		for i := 0; i < 16; i++ {
			lim.reset()
			var msg EdgeMsg
			if err := dec.Decode(&msg); err != nil {
				return // typed error: the root drops the connection here
			}
			// Mirror the nil-checks the root session performs, plus the
			// validation a decoded batch goes through, so fuzzed payloads
			// cannot find a panic past the decode layer either.
			switch {
			case msg.Hello != nil:
				_ = msg.Hello.EdgeID
				_ = len(msg.Hello.ClientAddr)
			case msg.Batch != nil:
				for _, u := range msg.Batch.Updates {
					if u != nil {
						_ = len(u.Delta)
					}
				}
				if len(msg.Batch.FilterState) > 0 {
					// Corrupt handoffs must surface as typed errors at the
					// container layer, and garbage that survives the CRC must
					// still be rejected by the filter's own state decoder —
					// never a panic in either layer.
					var inner []byte
					if checkpoint.Decode(msg.Batch.FilterState, &inner, "fuzz") == nil {
						if af, err := core.New(core.DefaultConfig()); err == nil {
							_ = af.MergeState(inner)
						}
					}
				}
			}
		}
	})
}

// FuzzDecodeRootMsg drives the edge-side decode of root replies with the
// same contract.
func FuzzDecodeRootMsg(f *testing.F) {
	session := recordedRootSession(f)
	f.Add(session)
	f.Add(session[:len(session)/3])
	f.Add(session[2:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAB}, 48))

	f.Fuzz(func(t *testing.T, data []byte) {
		lim := newLimitReader(bytes.NewReader(data), 1<<16)
		dec := gob.NewDecoder(lim)
		for i := 0; i < 16; i++ {
			lim.reset()
			var msg RootMsg
			if err := dec.Decode(&msg); err != nil {
				return
			}
			if msg.Task != nil {
				_ = len(msg.Task.Params)
			}
			if msg.Shards != nil {
				// A hostile shard map must be rejected by validation, not
				// crash the edge.
				_ = msg.Shards.Validate()
				_ = msg.Shards.HomeIndex(7)
			}
			if len(msg.Handoff) > 0 {
				var inner []byte
				if checkpoint.Decode(msg.Handoff, &inner, "fuzz") == nil {
					if af, err := core.New(core.DefaultConfig()); err == nil {
						_ = af.MergeState(inner)
					}
				}
			}
		}
	})
}

// TestUpstreamFuzzSeedsDecode guards the recorded-session seeds against
// rot: both halves must decode cleanly end to end through the production
// decode stack, including the embedded checkpoint containers.
func TestUpstreamFuzzSeedsDecode(t *testing.T) {
	lim := newLimitReader(bytes.NewReader(recordedEdgeSession(t)), 1<<16)
	dec := gob.NewDecoder(lim)
	batches := 0
	for i := 0; i < 6; i++ {
		lim.reset()
		var msg EdgeMsg
		if err := dec.Decode(&msg); err != nil {
			t.Fatalf("edge session message %d: %v", i, err)
		}
		if msg.Batch != nil {
			batches++
			var inner []byte
			if err := checkpoint.Decode(msg.Batch.FilterState, &inner, "seed"); err != nil {
				t.Fatalf("edge session message %d: filter snapshot not in checkpoint container: %v", i, err)
			}
			restored, err := core.New(core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.RestoreState(inner); err != nil {
				t.Fatalf("edge session message %d: snapshot does not restore: %v", i, err)
			}
		}
	}
	if batches != 2 {
		t.Fatalf("edge session decoded %d batches, want 2", batches)
	}

	lim = newLimitReader(bytes.NewReader(recordedRootSession(t)), 1<<16)
	dec = gob.NewDecoder(lim)
	handoffs := 0
	for i := 0; i < 6; i++ {
		lim.reset()
		var msg RootMsg
		if err := dec.Decode(&msg); err != nil {
			t.Fatalf("root session message %d: %v", i, err)
		}
		if len(msg.Handoff) > 0 {
			var inner []byte
			if err := checkpoint.Decode(msg.Handoff, &inner, "seed"); err != nil {
				t.Fatalf("root session message %d: handoff does not decode: %v", i, err)
			}
			restored, err := core.New(core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.MergeState(inner); err != nil {
				t.Fatalf("root session message %d: handoff does not merge: %v", i, err)
			}
			handoffs++
		}
	}
	if handoffs != 1 {
		t.Fatalf("root session decoded %d handoffs, want 1", handoffs)
	}
}
