package transport

import (
	"bytes"
	"encoding/gob"
	"testing"
)

// recordedVoteSession encodes a realistic election through the
// production gob path, both directions interleaved the way a voter's
// wire sees them: a candidate's VoteRequest, the voter's persisted
// grant, a rival's request for the same epoch, the refusal advertising
// the spent epoch, and a retry one epoch up. The fuzzer starts from
// bytes a real quorum election puts on the replication wire.
func recordedVoteSession(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	requests := []ReplicaMsg{
		{Vote: &VoteRequest{CandidateID: 1, Epoch: 3, LastSeq: 17}, Epoch: 2},
		{Vote: &VoteRequest{CandidateID: 2, Epoch: 3, LastSeq: 17}, Epoch: 2},
		{Vote: &VoteRequest{CandidateID: 2, Epoch: 4, LastSeq: 17}, Epoch: 3},
	}
	grants := []PrimaryMsg{
		{Grant: &VoteGrant{VoterID: 0, Granted: true, Epoch: 3, LastSeq: 17}, Epoch: 2, LatestSeq: 17},
		{Grant: &VoteGrant{VoterID: 0, Granted: false, Epoch: 3, LastSeq: 17}, Epoch: 2, LatestSeq: 17},
		{Grant: &VoteGrant{VoterID: 0, Granted: true, Epoch: 4, LastSeq: 17}, Epoch: 3, LatestSeq: 17},
	}
	for i := range requests {
		if err := enc.Encode(&requests[i]); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&grants[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzDecodeVoteMsg drives the vote protocol's decode paths — the
// voter's ReplicaMsg decode and the candidate's PrimaryMsg decode, both
// behind the byte-budget limitReader exactly as the election code builds
// them — with adversarial bytes. Same contract as the other wire
// fuzzers: typed errors or decoded messages, never a panic, never
// unbounded memory. Decoded VoteRequests additionally go through
// Validate, the first gate answerVote applies.
func FuzzDecodeVoteMsg(f *testing.F) {
	session := recordedVoteSession(f)
	f.Add(session)
	f.Add(session[:len(session)/2])    // truncated mid-exchange
	f.Add(session[1:])                 // missing type preamble
	f.Add([]byte{})                    // empty stream
	f.Add([]byte{0xff, 0xff, 0xff})    // junk length prefix
	f.Add(bytes.Repeat([]byte{7}, 64)) // repetitive garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		// Voter side: a one-shot vote exchange reads one ReplicaMsg.
		lim := newLimitReader(bytes.NewReader(data), 1<<16)
		dec := gob.NewDecoder(lim)
		for i := 0; i < 16; i++ {
			lim.reset()
			var msg ReplicaMsg
			if err := dec.Decode(&msg); err != nil {
				break // typed error: the voter hangs up here
			}
			if msg.Vote != nil {
				_ = msg.Vote.Validate()
			}
		}
		// Candidate side: the reply must carry a Grant or be dropped.
		lim = newLimitReader(bytes.NewReader(data), 1<<16)
		dec = gob.NewDecoder(lim)
		for i := 0; i < 16; i++ {
			lim.reset()
			var msg PrimaryMsg
			if err := dec.Decode(&msg); err != nil {
				return // typed error: a missing vote, never a panic
			}
			if msg.Grant != nil {
				_, _, _ = msg.Grant.Granted, msg.Grant.Epoch, msg.Grant.VoterID
			}
		}
	})
}

// TestVoteFuzzSeedDecodes guards the recorded election against rot: the
// interleaved session must decode cleanly through both sides'
// production decode stacks, every request passing Validate and the
// grants alternating granted/refused/granted as recorded.
func TestVoteFuzzSeedDecodes(t *testing.T) {
	session := recordedVoteSession(t)
	lim := newLimitReader(bytes.NewReader(session), 1<<16)
	dec := gob.NewDecoder(lim)
	votes, grants, granted := 0, 0, 0
	for i := 0; i < 6; i++ {
		lim.reset()
		// The stream alternates request/reply; decode each into its own
		// side's envelope.
		if i%2 == 0 {
			var msg ReplicaMsg
			if err := dec.Decode(&msg); err != nil {
				t.Fatalf("vote session message %d: %v", i, err)
			}
			if msg.Vote == nil {
				t.Fatalf("vote session message %d: no VoteRequest", i)
			}
			if err := msg.Vote.Validate(); err != nil {
				t.Fatalf("vote session message %d: recorded request invalid: %v", i, err)
			}
			votes++
			continue
		}
		var msg PrimaryMsg
		if err := dec.Decode(&msg); err != nil {
			t.Fatalf("vote session message %d: %v", i, err)
		}
		if msg.Grant == nil {
			t.Fatalf("vote session message %d: no VoteGrant", i)
		}
		grants++
		if msg.Grant.Granted {
			granted++
		}
	}
	if votes != 3 || grants != 3 || granted != 2 {
		t.Fatalf("vote session decoded %d requests, %d grants (%d granted); want 3, 3, 2", votes, grants, granted)
	}
}
