package transport

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/checkpoint"
	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// panicConn panics on the first read, standing in for a crafted payload
// that panics the decoder.
type panicConn struct{ nopConn }

func (panicConn) Read(p []byte) (int, error) { panic("crafted payload") }

func TestHandlerPanicIsolated(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams: []float64{1, 2}, AggregationGoal: 1, Rounds: 1,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// handle carries the recover guard itself: a panic while decoding one
	// connection must neither escape nor wedge the server.
	server.handle(panicConn{})
	stats := server.Stats()
	if stats.HandlerPanics != 1 {
		t.Errorf("HandlerPanics = %d, want 1", stats.HandlerPanics)
	}
	if server.Version() != 0 {
		t.Errorf("panicking connection advanced the model to version %d", server.Version())
	}
	// The server still works after the panic.
	sess := &clientSession{id: 1, numSamples: 5}
	server.receiveUpdate(sess, 0, []float64{1, 1})
	if server.Version() != 1 {
		t.Error("server wedged after a recovered handler panic")
	}
}

// panicFilter panics on every batch — the worst-case misbehaving plugin.
type panicFilter struct{}

func (panicFilter) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	panic("filter bug")
}
func (panicFilter) Name() string { return "panic" }

func TestFilterPanicFallsBackToAcceptAll(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams: []float64{0, 0}, AggregationGoal: 1, Rounds: 2,
	}, panicFilter{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := &clientSession{id: 1, numSamples: 5}
	server.receiveUpdate(sess, 0, []float64{1, 1})
	server.receiveUpdate(sess, 1, []float64{1, 1})
	stats := server.Stats()
	if server.Version() != 2 {
		t.Errorf("version = %d, want 2 (panicking filter must not lose rounds)", server.Version())
	}
	if stats.HandlerPanics != 2 {
		t.Errorf("HandlerPanics = %d, want 2", stats.HandlerPanics)
	}
	if stats.Accepted != 2 {
		t.Errorf("Accepted = %d, want 2 (fallback is accept-all)", stats.Accepted)
	}
}

// panicCombiner panics when invoked, to exercise the watchdog's guard.
type panicCombiner struct{}

func (panicCombiner) Combine(accepted []*fl.Update, cfg fl.AggregatorConfig) ([]float64, error) {
	panic("combiner bug")
}
func (panicCombiner) Name() string { return "panic-combiner" }

func TestWatchdogSurvivesAggregationPanic(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams:   []float64{0, 0},
		AggregationGoal: 4, // never reached: the watchdog must fire
		Rounds:          3,
		RoundTimeout:    30 * time.Millisecond,
	}, nil, panicCombiner{})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	sess := &clientSession{id: 1, numSamples: 5}
	server.receiveUpdate(sess, 0, []float64{1, 1})

	deadline := time.Now().Add(5 * time.Second)
	for server.Stats().HandlerPanics == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stats := server.Stats()
	if stats.HandlerPanics == 0 {
		t.Fatal("watchdog never recovered the combiner panic")
	}
	if stats.WatchdogRounds == 0 {
		t.Error("watchdog round not counted")
	}
	// The server is still standing: it accepts another update without
	// wedging, even though the panicked round's batch was lost.
	server.receiveUpdate(sess, 0, []float64{1, 1})
	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

func TestNewServerRejectsCorruptCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "server.ckpt")
	if err := os.WriteFile(path, []byte("garbage, not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewServer(ServerConfig{
		InitialParams: []float64{1}, AggregationGoal: 1, Rounds: 1,
		CheckpointPath: path,
	}, nil, nil)
	if !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("NewServer on corrupt checkpoint: err = %v, want ErrCorrupt", err)
	}
}

func TestNewServerRejectsForeignFilterCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "server.ckpt")
	server, err := NewServer(ServerConfig{
		InitialParams: []float64{0, 0}, AggregationGoal: 1, Rounds: 3,
		CheckpointPath: path,
	}, nil, nil) // pass-through filter writes the checkpoint
	if err != nil {
		t.Fatal(err)
	}
	sess := &clientSession{id: 1, numSamples: 5}
	server.receiveUpdate(sess, 0, []float64{1, 1})

	af, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(ServerConfig{
		InitialParams: []float64{0, 0}, AggregationGoal: 1, Rounds: 3,
		CheckpointPath: path,
	}, af, nil); err == nil {
		t.Fatal("NewServer restored a fedbuff checkpoint into asyncfilter")
	}
}

func TestCheckpointRestoreRoundTripWithoutClients(t *testing.T) {
	path := filepath.Join(t.TempDir(), "server.ckpt")
	cfg := ServerConfig{
		InitialParams:   []float64{0, 0, 0},
		AggregationGoal: 1,
		Rounds:          5,
		CheckpointPath:  path,
	}
	server, err := NewServer(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if server.Restored() {
		t.Fatal("fresh server claims to be restored")
	}
	sess := &clientSession{id: 7, numSamples: 11}
	server.sessions[7] = sess
	server.receiveUpdate(sess, 0, []float64{1, 2, 3})
	server.receiveUpdate(sess, 1, []float64{1, 2, 3})
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	wantParams := server.FinalParams()
	wantStats := server.Stats()

	restoredServer, err := NewServer(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !restoredServer.Restored() {
		t.Fatal("server with existing checkpoint not restored")
	}
	if restoredServer.Version() != 2 {
		t.Errorf("restored version = %d, want 2", restoredServer.Version())
	}
	gotParams := restoredServer.FinalParams()
	for i := range wantParams {
		if gotParams[i] != wantParams[i] {
			t.Fatalf("restored params %v, want %v", gotParams, wantParams)
		}
	}
	gotStats := restoredServer.Stats()
	if gotStats.UpdatesReceived != wantStats.UpdatesReceived || gotStats.Accepted != wantStats.Accepted {
		t.Errorf("restored stats %+v, want %+v", gotStats, wantStats)
	}
	if restoredServer.sessions[7] == nil || restoredServer.sessions[7].numSamples != 11 {
		t.Error("client session weight did not survive the restore")
	}

	// Finish the deployment and restore once more: a checkpoint of a
	// completed deployment restores as completed.
	for v := restoredServer.Version(); v < cfg.Rounds; v++ {
		restoredServer.receiveUpdate(restoredServer.sessions[7], v, []float64{1, 2, 3})
	}
	select {
	case <-restoredServer.Done():
	default:
		t.Fatal("deployment did not complete")
	}
	if err := restoredServer.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := NewServer(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-final.Done():
	default:
		t.Error("restored completed deployment not marked done")
	}
}

// launchClients starts numClients clients against addr: the first
// malicious ones run the GD attack, the next flaky ones dial through the
// fault harness. The returned WaitGroup completes when every client
// exits.
func launchClients(t *testing.T, addr string, numClients, malicious, flaky int) *sync.WaitGroup {
	t.Helper()
	parts := testData(t, numClients)
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		cfg := ClientConfig{
			ID: i, Data: parts[i], Model: testModelConfig(), Trainer: testTrainer(),
			Seed:      int64(100 + i),
			ThinkTime: 2 * time.Millisecond,
			// Budget sized to ride out injected faults and the restart
			// window (the gap is tens of milliseconds; failed dials burn
			// one retry each at 2-30ms backoff) without dragging out the
			// post-shutdown drain.
			MaxRetries:     60,
			RetryBaseDelay: 2 * time.Millisecond,
			RetryMaxDelay:  30 * time.Millisecond,
		}
		if i < malicious {
			// Scale 8 keeps the reversed gradients visible to the filter
			// even late in the run: at Scale 4 a nearly-converged model
			// shrinks honest deltas until the attack is indistinguishable
			// noise, and a whole post-restart window can pass without a
			// single non-accept verdict for the assertion below to see.
			cfg.Attack = attack.Config{Name: attack.GDName, Scale: 8}
		} else if i < malicious+flaky {
			cfg.Dial = FaultDialer(FaultConfig{
				Seed:          int64(2000 + i),
				ResetAfterOps: 8,
				ResetProb:     0.01,
			})
		}
		client, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = client.Run(addr)
		}()
	}
	return &wg
}

// TestKillAndRestoreMidDeployment is the end-to-end crash-recovery test:
// a checkpointing server is killed mid-deployment while attackers and the
// fault harness are active, restarted from its checkpoint on the same
// address, and must complete all configured rounds with (a) the global
// model parameters restored exactly as killed, (b) the filter's
// per-group moving averages byte-identically restored — demonstrated both
// by snapshot equality and by the restored filter rejecting attackers
// after the restart instead of re-learning from zero.
func TestKillAndRestoreMidDeployment(t *testing.T) {
	const (
		numClients = 9
		// Two attackers, not three: the filter's majority guard accepts a
		// 6-update batch wholesale when the clusters below the suspect one
		// don't hold a strict majority, and with three attackers among
		// nine same-pace clients the rounds can phase-lock into exactly
		// that 3-of-6 composition for the whole run. With two attackers
		// every full batch containing them is eligible for rejection, so
		// the rejected-after-restart assertion measures restored filter
		// state, not batch-composition luck.
		malicious = 2
		flaky     = 2
		goal      = 6 // == DefaultConfig MinBatch, so every full batch is clustered
		// Ten post-restart rounds give the restored filter plenty of full
		// batches to reject attackers in; the rejected-after-restart
		// assertion below must not depend on the luck of a narrow window.
		rounds = 14
		killAt = 4
	)
	ckptPath := filepath.Join(t.TempDir(), "server.ckpt")
	serverCfg := ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: goal,
		StalenessLimit:  10,
		Rounds:          rounds,
		ReadTimeout:     10 * time.Second,
		WriteTimeout:    10 * time.Second,
		MaxMessageBytes: 1 << 20,
		RoundTimeout:    time.Second,
		CheckpointPath:  ckptPath,
		CheckpointEvery: 1,
	}

	// Uninterrupted baseline with the same defense and client mix.
	baselineFilter, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := NewServer(ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: goal,
		StalenessLimit:  10,
		Rounds:          rounds,
		ReadTimeout:     10 * time.Second,
		WriteTimeout:    10 * time.Second,
		MaxMessageBytes: 1 << 20,
		RoundTimeout:    time.Second,
	}, baselineFilter, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baseServeErr := make(chan error, 1)
	go func() { baseServeErr <- baseline.Serve(baseLis) }()
	baseWG := launchClients(t, baseLis.Addr().String(), numClients, malicious, flaky)
	select {
	case <-baseline.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("baseline deployment did not finish")
	}
	if err := baseline.Close(); err != nil {
		t.Logf("baseline close: %v", err)
	}
	baseWG.Wait()
	if err := <-baseServeErr; err != nil {
		t.Fatalf("baseline serve: %v", err)
	}

	// Phase 1: checkpointing server, killed once killAt rounds complete.
	filter1, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	server1, err := NewServer(serverCfg, filter1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if server1.Restored() {
		t.Fatal("phase-1 server restored from a nonexistent checkpoint")
	}
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis1.Addr().String()
	serve1Err := make(chan error, 1)
	go func() { serve1Err <- server1.Serve(lis1) }()
	clientWG := launchClients(t, addr, numClients, malicious, flaky)

	deadline := time.Now().Add(60 * time.Second)
	for server1.Version() < killAt && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if server1.Version() < killAt {
		t.Fatal("phase-1 server never reached the kill point")
	}
	// Kill: Close writes the final checkpoint and tears down connections.
	// The clients keep retrying against the dead address.
	if err := server1.Close(); err != nil {
		t.Logf("phase-1 close: %v", err)
	}
	if err := <-serve1Err; err != nil {
		t.Fatalf("phase-1 serve: %v", err)
	}
	statsAtKill := server1.Stats()
	versionAtKill := server1.Version()
	if statsAtKill.Checkpoints == 0 {
		t.Fatal("phase-1 server wrote no checkpoints")
	}

	// Phase 2: restart from the checkpoint on the same address.
	var lis2 net.Listener
	for attempt := 0; attempt < 100; attempt++ {
		lis2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	filter2, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	server2, err := NewServer(serverCfg, filter2, nil)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !server2.Restored() {
		t.Fatal("phase-2 server did not restore from the checkpoint")
	}
	if got := server2.Version(); got != versionAtKill {
		t.Fatalf("restored version = %d, killed at %d", got, versionAtKill)
	}
	statsAtRestore := server2.Stats()
	if statsAtRestore.Rounds != versionAtKill {
		t.Errorf("restored stats.Rounds = %d, want %d", statsAtRestore.Rounds, versionAtKill)
	}

	// The filter's Eq. 5 state survived byte-for-byte: filter1 (live at
	// kill time) and filter2 (restored from disk) serialize identically,
	// including the aligned RNG stream.
	blob1, err := filter1.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := filter2.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob1, blob2) {
		t.Fatal("restored filter state is not byte-identical to the killed server's")
	}
	if filter2.GroupCount() == 0 {
		t.Fatal("restored filter has no staleness groups: moving averages were lost")
	}
	// So did the global model: the restored parameters are exactly the
	// killed server's, element for element — restore corrupts nothing.
	killedParams := server1.FinalParams()
	restoredParams := server2.FinalParams()
	if len(restoredParams) != len(killedParams) {
		t.Fatalf("restored %d params, killed server had %d", len(restoredParams), len(killedParams))
	}
	for i := range killedParams {
		if !vecmath.ExactEqual(restoredParams[i], killedParams[i]) {
			t.Fatalf("restored param[%d] = %v, killed server had %v", i, restoredParams[i], killedParams[i])
		}
	}

	serve2Err := make(chan error, 1)
	go func() { serve2Err <- server2.Serve(lis2) }()
	select {
	case <-server2.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("restored deployment did not complete its remaining rounds")
	}
	if err := server2.Close(); err != nil {
		t.Logf("phase-2 close: %v", err)
	}
	clientWG.Wait()
	if err := <-serve2Err; err != nil {
		t.Fatalf("phase-2 serve: %v", err)
	}

	finalStats := server2.Stats()
	if got := server2.Version(); got != rounds {
		t.Fatalf("restored deployment completed %d rounds, want %d", got, rounds)
	}
	if finalStats.Rounds != rounds {
		t.Errorf("stats.Rounds = %d, want %d", finalStats.Rounds, rounds)
	}
	// Stats are cumulative across the restart, not reset.
	if finalStats.UpdatesReceived <= statsAtKill.UpdatesReceived {
		t.Errorf("lifetime UpdatesReceived did not carry across the restart: %d -> %d",
			statsAtKill.UpdatesReceived, finalStats.UpdatesReceived)
	}
	if finalStats.ClientsConnected != numClients {
		t.Errorf("ClientsConnected = %d, want %d (restart double-counted sessions)",
			finalStats.ClientsConnected, numClients)
	}
	// The restored moving averages keep catching attackers immediately:
	// non-accept verdicts recorded after the restart, on top of phase 1's.
	// Rejects and defers both count — the default MiddlePolicy sends a
	// middle-cluster attacker to Defer, where the staleness limit ages it
	// out, so a run can neutralize the attack without a single outright
	// Reject.
	flaggedAtRestore := statsAtRestore.Rejected + statsAtRestore.Deferred
	flaggedAfterRestart := finalStats.Rejected + finalStats.Deferred - flaggedAtRestore
	t.Logf("flagged (rejected+deferred): %d before kill, %d after restart; rejected %d -> %d",
		flaggedAtRestore, flaggedAfterRestart, statsAtRestore.Rejected, finalStats.Rejected)
	if flaggedAfterRestart == 0 {
		t.Error("no attacker rejections or deferrals after the restart: filter history did not survive")
	}

	// Final accuracies are logged for the record but deliberately not
	// asserted against each other: with GD attackers in the mix the
	// outcome of any single deployment is bimodal (a late watchdog round
	// that admits an attacker pair wholesale can crater an otherwise
	// clean run), so two independent draws routinely differ by far more
	// than any sane tolerance — the baseline itself ranges from ~0 to
	// ~0.9 across seeds. The model-integrity claim the comparison was
	// standing in for is the deterministic params-equality check at
	// restore time above.
	baseAcc := evalAccuracy(t, baseline.FinalParams())
	restoredAcc := evalAccuracy(t, server2.FinalParams())
	t.Logf("baseline accuracy %.3f, kill-and-restore accuracy %.3f", baseAcc, restoredAcc)
}
