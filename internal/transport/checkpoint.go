package transport

import (
	"errors"
	"fmt"
	"io/fs"
	"log"
	"runtime/debug"
	"sort"
	"time"

	"github.com/asyncfl/asyncfilter/internal/checkpoint"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// serverSnapshot is the durable server state embedded in a checkpoint
// file: everything a restarted server needs to let reconnecting clients
// resume at the correct model version with filter history intact.
// Sessions are stored as a sorted slice so equal states serialize
// identically.
type serverSnapshot struct {
	// FilterName guards against restoring one filter's state into another.
	FilterName string
	Global     []float64
	Version    int
	Stats      ServerStats
	Sessions   []sessionSnapshot
	Buffer     fl.BufferState
	// Filter is the fl.StateSnapshotter payload; nil when the filter is
	// stateless.
	Filter []byte
}

// sessionSnapshot preserves one client's identity, aggregation weight and
// admission-control bookkeeping. Quarantine and lease deadlines are stored
// as remaining durations relative to capture time, not absolute clocks: a
// snapshot restored minutes (or on a machine with a different clock) later
// re-arms the same remaining cooldown, so a restart never un-quarantines a
// known attacker early.
type sessionSnapshot struct {
	ClientID   int
	NumSamples int
	// ConsecRejects is the client's consecutive filter-rejection streak
	// feeding the quarantine circuit breaker.
	ConsecRejects int
	// HalfOpen marks a breaker awaiting its half-open probe verdict.
	HalfOpen bool
	// QuarantineRemaining is the cooldown left on an open breaker at
	// capture time (0 = breaker closed).
	QuarantineRemaining time.Duration
	// LeaseRemaining is the lease time left at capture (0 = no live lease).
	LeaseRemaining time.Duration
}

// shouldCheckpointLocked reports whether this round's state should be
// snapshotted: checkpointing is enabled and the round counter hits the
// configured cadence (or the deployment just finished). Callers hold
// s.mu.
func (s *Server) shouldCheckpointLocked() bool {
	if s.cfg.CheckpointPath == "" {
		return false
	}
	every := s.cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	return s.version%every == 0 || s.finished
}

// captureSnapshotLocked deep-copies the server's durable fields into a
// snapshot. Callers hold s.mu. The filter's own state is deliberately
// absent: it is captured later by writeSnapshot, outside the lock, once
// the round's ObserveRound has run.
func (s *Server) captureSnapshotLocked() *serverSnapshot {
	snap := &serverSnapshot{
		FilterName: s.filter.Name(),
		Global:     vecmath.Clone(s.global),
		Version:    s.version,
		Stats:      s.stats,
		Buffer:     s.buffer.Snapshot(),
		Sessions:   make([]sessionSnapshot, 0, len(s.sessions)),
	}
	now := time.Now()
	for id, sess := range s.sessions {
		ss := sessionSnapshot{
			ClientID:      id,
			NumSamples:    sess.numSamples,
			ConsecRejects: sess.consecRejects,
			HalfOpen:      sess.halfOpen,
		}
		if rem := sess.quarantinedUntil.Sub(now); rem > 0 {
			ss.QuarantineRemaining = rem
		}
		if !sess.leaseExpiry.IsZero() {
			if rem := sess.leaseExpiry.Sub(now); rem > 0 {
				ss.LeaseRemaining = rem
			}
		}
		snap.Sessions = append(snap.Sessions, ss)
	}
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].ClientID < snap.Sessions[j].ClientID })
	return snap
}

// writeSnapshot adds the filter state to a captured snapshot and writes
// the result atomically to the configured path. It runs without s.mu so
// the gob encode and file I/O never stall connection handlers; callers
// (the aggregation round, Close) guarantee the filter is quiescent.
// Write failures are logged and counted against nothing: a failed
// checkpoint must not wedge the deployment, the next cadence point simply
// tries again.
func (s *Server) writeSnapshot(snap *serverSnapshot) {
	// Recover guard: SnapshotState calls into the (possibly buggy) filter
	// while the aggregating flag is set; a panic escaping here would leave
	// the flag stuck and wedge Close.
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.stats.HandlerPanics++
			s.mu.Unlock()
			log.Printf("transport: recovered checkpoint panic: %v\n%s", r, debug.Stack())
		}
	}()
	if snapshotter, ok := s.filter.(fl.StateSnapshotter); ok {
		data, err := snapshotter.SnapshotState()
		if err != nil {
			log.Printf("transport: checkpoint skipped: filter snapshot failed: %v", err)
			return
		}
		snap.Filter = data
	}
	if err := checkpoint.Save(s.cfg.CheckpointPath, snap); err != nil {
		log.Printf("transport: checkpoint write failed: %v", err)
		return
	}
	s.mu.Lock()
	s.stats.Checkpoints++
	s.mu.Unlock()
}

// restoreFromCheckpoint loads an existing snapshot into a freshly built
// server. A missing file means a fresh deployment and is not an error;
// anything else — corruption, a format-version mismatch, state written by
// a different filter or model — fails NewServer loudly rather than
// restoring partial state. The filter's state is restored before any
// server field is committed, so a failed restore leaves nothing half
// applied.
func (s *Server) restoreFromCheckpoint(path string) error {
	var snap serverSnapshot
	err := checkpoint.Load(path, &snap)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("transport: restore from %s: %w", path, err)
	}
	if len(snap.Global) != len(s.cfg.InitialParams) {
		return fmt.Errorf("transport: restore from %s: checkpoint holds a %d-parameter model, config expects %d",
			path, len(snap.Global), len(s.cfg.InitialParams))
	}
	if snap.Version < 0 {
		return fmt.Errorf("transport: restore from %s: negative version %d", path, snap.Version)
	}
	if snap.FilterName != s.filter.Name() {
		return fmt.Errorf("transport: restore from %s: checkpoint written by filter %q, server runs %q",
			path, snap.FilterName, s.filter.Name())
	}
	if len(snap.Filter) > 0 {
		snapshotter, ok := s.filter.(fl.StateSnapshotter)
		if !ok {
			return fmt.Errorf("transport: restore from %s: checkpoint carries filter state but filter %q cannot restore it",
				path, s.filter.Name())
		}
		if err := snapshotter.RestoreState(snap.Filter); err != nil {
			return fmt.Errorf("transport: restore from %s: %w", path, err)
		}
	}

	s.global = vecmath.Clone(snap.Global)
	s.version = snap.Version
	s.stats = snap.Stats
	s.buffer.Restore(snap.Buffer)
	now := time.Now()
	for _, ss := range snap.Sessions {
		sess := &clientSession{
			id:            ss.ClientID,
			numSamples:    ss.NumSamples,
			consecRejects: ss.ConsecRejects,
			halfOpen:      ss.HalfOpen,
		}
		if ss.QuarantineRemaining > 0 {
			sess.quarantinedUntil = now.Add(ss.QuarantineRemaining)
		}
		if ss.LeaseRemaining > 0 {
			sess.leaseExpiry = now.Add(ss.LeaseRemaining)
		}
		s.sessions[ss.ClientID] = sess
	}
	s.restored = true
	if s.version >= s.cfg.Rounds {
		// The checkpoint captured an already-completed deployment.
		s.finished = true
		close(s.done)
	}
	return nil
}
