package transport

import (
	"errors"
	"io"
)

// ErrMessageTooLarge is returned through the gob decoder when a single
// client message exceeds ServerConfig.MaxMessageBytes.
var ErrMessageTooLarge = errors.New("transport: message exceeds size limit")

// limitReader enforces a per-message byte budget on the stream feeding a
// gob decoder. The server resets the budget before each Decode, so no
// single message — in particular a maliciously huge Delta — can make the
// decoder allocate without bound. The gob decoder's internal read-ahead
// buffering can charge a few KB of the next message against the current
// budget; the limit is an OOM guard, not an exact accounting.
type limitReader struct {
	r    io.Reader
	max  int64 // 0 disables the guard
	n    int64 // bytes consumed since the last reset
	trip bool  // whether the budget was exceeded
}

func newLimitReader(r io.Reader, max int64) *limitReader {
	return &limitReader{r: r, max: max}
}

// reset starts a fresh message budget. Called before each Decode. The
// trip flag is cleared too: an oversize message condemns that message
// (and typically the connection), not every later message on a reader
// that happens to be reused.
func (l *limitReader) reset() {
	l.n = 0
	l.trip = false
}

// tripped reports whether a read exceeded the budget since the last reset.
func (l *limitReader) tripped() bool { return l.trip }

func (l *limitReader) Read(p []byte) (int, error) {
	if l.max > 0 {
		if l.n >= l.max {
			l.trip = true
			return 0, ErrMessageTooLarge
		}
		if remaining := l.max - l.n; int64(len(p)) > remaining {
			p = p[:remaining]
		}
	}
	n, err := l.r.Read(p)
	l.n += int64(n)
	return n, err
}
