// Package transport runs asynchronous federated learning over real TCP
// connections, mirroring the PLATO deployment mode the paper evaluates on:
// a central server accepts WebSocket-style persistent connections from
// remote clients, hands out the current global model, buffers returned
// updates, filters them (AsyncFilter or any fl.Filter) and aggregates.
//
// The wire protocol is gob-encoded message structs over a single
// long-lived TCP connection per client:
//
//	client -> server: Hello, then Update*
//	server -> client: Task* (new model to train), then Done
//
// The same fl.Filter / fl.Combiner implementations drive both this real
// transport and the in-process simulator, demonstrating the "plug and
// play" property of the filter module.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Hello introduces a client to the server.
type Hello struct {
	// ClientID identifies the client (unique per deployment).
	ClientID int
	// NumSamples is the client's local dataset size (aggregation weight).
	NumSamples int
}

// Task carries the global model to train on.
type Task struct {
	// Version is the global model version.
	Version int
	// Params is the flat global parameter vector.
	Params []float64
}

// UpdateMsg carries a trained delta back to the server.
type UpdateMsg struct {
	// BaseVersion is the model version the delta was trained from.
	BaseVersion int
	// Delta is the flat parameter delta.
	Delta []float64
}

// ClientMsg is the client->server envelope.
type ClientMsg struct {
	Hello  *Hello
	Update *UpdateMsg
}

// ServerMsg is the server->client envelope.
type ServerMsg struct {
	Task *Task
	// Done signals that training is complete and the client should exit.
	Done bool
}

// ServerConfig parameterizes a transport server.
type ServerConfig struct {
	// InitialParams seeds the global model.
	InitialParams []float64
	// AggregationGoal triggers aggregation when the buffer reaches it.
	AggregationGoal int
	// StalenessLimit discards updates staler than this (0 disables).
	StalenessLimit int
	// Rounds is the number of aggregations before the server completes.
	Rounds int
	// Aggregator configures aggregation weighting.
	Aggregator fl.AggregatorConfig
}

// Validate checks the configuration.
func (c *ServerConfig) Validate() error {
	if len(c.InitialParams) == 0 {
		return errors.New("transport: ServerConfig: empty InitialParams")
	}
	if c.AggregationGoal < 1 {
		return fmt.Errorf("transport: ServerConfig: AggregationGoal = %d, need >= 1", c.AggregationGoal)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("transport: ServerConfig: Rounds = %d, need >= 1", c.Rounds)
	}
	if c.StalenessLimit < 0 {
		return fmt.Errorf("transport: ServerConfig: StalenessLimit = %d, need >= 0", c.StalenessLimit)
	}
	return nil
}

// Server is the asynchronous FL aggregation server. Create with NewServer,
// start with Serve, wait on Done.
type Server struct {
	cfg      ServerConfig
	filter   fl.Filter
	combiner fl.Combiner

	mu       sync.Mutex
	global   []float64
	version  int
	buffer   *fl.Buffer
	finished bool
	stats    ServerStats

	done     chan struct{}
	listener net.Listener
	wg       sync.WaitGroup
}

// ServerStats summarizes a finished deployment.
type ServerStats struct {
	// Rounds is the number of aggregations performed.
	Rounds int
	// Accepted, Deferred, Rejected count filter decisions.
	Accepted, Deferred, Rejected int
	// DroppedStale counts updates discarded for staleness.
	DroppedStale int
	// UpdatesReceived counts all updates that reached the server.
	UpdatesReceived int
}

// NewServer builds a server. filter nil selects pass-through (FedBuff);
// combiner nil selects the weighted mean.
func NewServer(cfg ServerConfig, filter fl.Filter, combiner fl.Combiner) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if filter == nil {
		filter = fl.Passthrough{}
	}
	if combiner == nil {
		combiner = fl.MeanCombiner{}
	}
	buffer, err := fl.NewBuffer(cfg.AggregationGoal, cfg.StalenessLimit)
	if err != nil {
		return nil, err
	}
	return &Server{
		cfg:      cfg,
		filter:   filter,
		combiner: combiner,
		global:   vecmath.Clone(cfg.InitialParams),
		buffer:   buffer,
		done:     make(chan struct{}),
	}, nil
}

// Serve accepts client connections on lis until the configured number of
// rounds completes or Close is called. It returns after the accept loop
// exits and all client handlers have drained.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.listener = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			// Closed listener means shutdown (normal path).
			select {
			case <-s.done:
				s.wg.Wait()
				return nil
			default:
			}
			s.wg.Wait()
			return fmt.Errorf("transport: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen: %w", err)
	}
	return s.Serve(lis)
}

// Addr returns the listener address (empty before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Done is closed when the configured rounds have completed.
func (s *Server) Done() <-chan struct{} { return s.done }

// Close stops accepting connections and unblocks Serve.
func (s *Server) Close() error {
	s.mu.Lock()
	lis := s.listener
	finished := s.finished
	if !finished {
		s.finished = true
		close(s.done)
	}
	s.mu.Unlock()
	if lis != nil {
		return lis.Close()
	}
	return nil
}

// FinalParams returns a copy of the current global parameters.
func (s *Server) FinalParams() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return vecmath.Clone(s.global)
}

// Version returns the current global model version.
func (s *Server) Version() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Stats returns the lifetime counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// handle drives one client connection.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var hello ClientMsg
	if err := dec.Decode(&hello); err != nil || hello.Hello == nil {
		return
	}
	clientID := hello.Hello.ClientID
	numSamples := hello.Hello.NumSamples

	// Send the initial task.
	if !s.sendTask(enc) {
		return
	}
	for {
		var msg ClientMsg
		if err := dec.Decode(&msg); err != nil {
			return
		}
		if msg.Update == nil {
			continue
		}
		s.receiveUpdate(clientID, numSamples, msg.Update)
		if !s.sendTask(enc) {
			return
		}
	}
}

// sendTask transmits the latest model, or Done when training finished.
// It reports whether the connection should stay open.
func (s *Server) sendTask(enc *gob.Encoder) bool {
	s.mu.Lock()
	finished := s.finished
	task := Task{Version: s.version, Params: vecmath.Clone(s.global)}
	s.mu.Unlock()
	if finished {
		_ = enc.Encode(&ServerMsg{Done: true})
		return false
	}
	return enc.Encode(&ServerMsg{Task: &task}) == nil
}

// receiveUpdate buffers one update and aggregates when the goal is hit.
func (s *Server) receiveUpdate(clientID, numSamples int, msg *UpdateMsg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return
	}
	s.stats.UpdatesReceived++
	update := &fl.Update{
		ClientID:    clientID,
		BaseVersion: msg.BaseVersion,
		Staleness:   s.version - msg.BaseVersion,
		Delta:       msg.Delta,
		NumSamples:  numSamples,
	}
	if len(update.Delta) != len(s.global) {
		return // dimension mismatch: drop silently, client is broken
	}
	if !s.buffer.Add(update) {
		s.stats.DroppedStale++
		return
	}
	if !s.buffer.Ready() {
		return
	}
	s.aggregateLocked()
}

// aggregateLocked runs one filter+aggregate round. Callers hold s.mu.
func (s *Server) aggregateLocked() {
	updates := s.buffer.Drain()
	round := s.version + 1
	fres, err := s.filter.Filter(updates, round)
	if err != nil {
		// A failing filter must not wedge the deployment: fall back to
		// accepting the batch (FedBuff behaviour) for this round.
		fres = fl.AcceptAll(len(updates))
	}
	accepted, deferred, rejected := fres.Split(updates)
	s.stats.Accepted += len(accepted)
	s.stats.Deferred += len(deferred)
	s.stats.Rejected += len(rejected)

	if len(accepted) > 0 {
		delta, err := s.combiner.Combine(accepted, s.cfg.Aggregator)
		if err == nil {
			vecmath.Add(s.global, s.global, delta)
		}
	}
	s.version++
	s.stats.Rounds = s.version
	s.buffer.Requeue(deferred)

	if obs, ok := s.filter.(fl.RoundObserver); ok {
		obs.ObserveRound(s.version, s.global, accepted)
	}

	if s.version >= s.cfg.Rounds {
		s.finished = true
		close(s.done)
	}
}
