// Package transport runs asynchronous federated learning over real TCP
// connections, mirroring the PLATO deployment mode the paper evaluates on:
// a central server accepts WebSocket-style persistent connections from
// remote clients, hands out the current global model, buffers returned
// updates, filters them (AsyncFilter or any fl.Filter) and aggregates.
//
// The wire protocol is gob-encoded message structs over a single
// long-lived TCP connection per client:
//
//	client -> server: Hello, then Update*
//	server -> client: Task* (new model to train), then Done
//
// The same fl.Filter / fl.Combiner implementations drive both this real
// transport and the in-process simulator, demonstrating the "plug and
// play" property of the filter module.
//
// The layer is hardened for real deployments: per-connection read/write
// deadlines, a max-message-size guard on decode, per-client sessions that
// survive reconnects, a round-progress watchdog that aggregates a partial
// buffer when crashed clients would otherwise stall a round, client-side
// reconnect with exponential backoff (client.go), and a deterministic
// fault-injection harness for tests (fault.go).
//
// On top of that sits an overload-resilience layer: a bounded in-flight
// update budget with per-client token-bucket rate limits and typed NACK
// replies (admission.go), staleness-aware load shedding that evicts the
// stalest buffered updates first when the budget is exceeded, client
// leases renewed by heartbeats with eviction of dead sessions
// (session.go),
// a per-client quarantine circuit breaker for clients whose recent
// submissions were all filter-rejected, and a graceful drain path
// (drain.go) that stops admissions, flushes the in-flight round, writes a
// final checkpoint and sends clients a Goodbye so they can reconnect
// elsewhere.
package transport

import (
	"errors"
	"fmt"
	"log"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/obsv"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Hello introduces a client to the server.
type Hello struct {
	// ClientID identifies the client (unique per deployment).
	ClientID int
	// NumSamples is the client's local dataset size (aggregation weight).
	NumSamples int
	// ModelDim is the parameter dimension of the client's local model
	// (0 = unknown). A non-zero mismatch against the live global model is
	// rejected at Hello time with a NackMalformed instead of letting the
	// client train a round it can never submit.
	ModelDim int
	// Codec declares the wire codec this client speaks (see Codec). The
	// connection's framing is negotiated by the binary preamble before
	// the Hello is readable, so this field is the declarative record of
	// that choice: the server cross-checks it against the sniffed framing
	// and refuses a mismatch with NackMalformed. Legacy clients leave it
	// zero (CodecGob), which matches their preamble-less gob stream.
	Codec Codec
}

// NackCode classifies why the server refused an update.
type NackCode int

// NackCode values.
const (
	// NackRateLimited: the client exceeded its per-client token-bucket
	// rate limit; retry after RetryAfter.
	NackRateLimited NackCode = iota + 1
	// NackOverloaded: the in-flight update budget is full and the update
	// was the stalest candidate, so staleness-aware shedding dropped it.
	NackOverloaded
	// NackQuarantined: the client's recent submissions were all
	// filter-rejected and its circuit breaker is open; RetryAfter is the
	// remaining cooldown.
	NackQuarantined
	// NackDraining: the server is draining and admits no new work.
	NackDraining
	// NackMalformed: the Hello advertised a model dimension that does not
	// match the live global model.
	NackMalformed
	// NackFenced: the sender's fencing epoch proves a newer primary has
	// been promoted; the receiving root is stale and demotes itself
	// rather than split-braining the filter state (internal/replica).
	NackFenced
	// NackNotPrimary: a standby-attach reached a replica-group member
	// that is not the primary (every member answers on the replication
	// listener so vote exchanges can reach it). The dialer rotates to the
	// next peer; deliberately not a lease-refreshing reply, so a mesh of
	// leaderless standbys still expires its leases and elects.
	NackNotPrimary
)

// String implements fmt.Stringer.
func (c NackCode) String() string {
	switch c {
	case NackRateLimited:
		return "rate-limited"
	case NackOverloaded:
		return "overloaded"
	case NackQuarantined:
		return "quarantined"
	case NackDraining:
		return "draining"
	case NackMalformed:
		return "malformed"
	case NackFenced:
		return "fenced"
	case NackNotPrimary:
		return "not-primary"
	default:
		return fmt.Sprintf("NackCode(%d)", int(c))
	}
}

// Task carries the global model to train on.
type Task struct {
	// Version is the global model version.
	Version int
	// Params is the flat global parameter vector.
	Params []float64
}

// UpdateMsg carries a trained delta back to the server.
type UpdateMsg struct {
	// BaseVersion is the model version the delta was trained from.
	BaseVersion int
	// Delta is the flat parameter delta.
	Delta []float64
}

// ClientMsg is the client->server envelope. The new heartbeat field is a
// plain bool (not a nested struct) on purpose: gob emits one extra wire
// message per struct type it meets, and keeping the envelope flat keeps
// the deterministic fault-injection schedules — which count I/O
// operations — aligned across protocol revisions.
type ClientMsg struct {
	Hello  *Hello
	Update *UpdateMsg
	// Heartbeat keeps the client's lease alive while it is busy with
	// local training or backing off from a NACK; the server renews the
	// lease and answers with Pong.
	Heartbeat bool
}

// ServerMsg is the server->client envelope. Exactly one reply is sent per
// client message: Pong answers a Heartbeat, Task (optionally carrying a
// Nack in the same envelope) answers an Update, and Done or Goodbye ends
// the conversation.
type ServerMsg struct {
	Task *Task
	// Nack, when non-zero, reports that the client's update (or Hello)
	// was refused and why; a Task in the same envelope still carries the
	// current model so the client can resume after backing off.
	Nack NackCode
	// RetryAfter is the server's pacing hint for a Nack (0 = client's
	// choice).
	RetryAfter time.Duration
	// Pong acknowledges a Heartbeat (the lease was renewed).
	Pong bool
	// Done signals that training is complete and the client should exit.
	Done bool
	// Goodbye signals that this server is draining: the client should
	// drop the connection and reconnect elsewhere.
	Goodbye bool
	// Shards, when non-nil, is the current client-facing shard address
	// list of a hierarchical deployment, sorted by edge id. A client
	// re-homes to Shards[clientID % len(Shards)] when its edge says
	// Goodbye or stops answering. Pushed once per connection and again
	// whenever the list changes (see ShardVersion); single-server
	// deployments never set it.
	Shards []string
	// ShardVersion versions the Shards push; receivers ignore pushes not
	// newer than what they hold.
	ShardVersion int
}

// ServerConfig parameterizes a transport server.
type ServerConfig struct {
	// InitialParams seeds the global model.
	InitialParams []float64
	// AggregationGoal triggers aggregation when the buffer reaches it.
	AggregationGoal int
	// StalenessLimit discards updates staler than this (0 disables).
	StalenessLimit int
	// Rounds is the number of aggregations before the server completes.
	Rounds int
	// Aggregator configures aggregation weighting.
	Aggregator fl.AggregatorConfig
	// ReadTimeout bounds each blocking read from a client connection: a
	// client that goes silent for longer is disconnected (0 disables).
	// It must cover the client's local training time plus think time.
	ReadTimeout time.Duration
	// WriteTimeout bounds each task transmission to a client (0 disables).
	WriteTimeout time.Duration
	// MaxMessageBytes caps the size of a single decoded client message so
	// a malicious client cannot exhaust server memory with a giant delta
	// (0 disables the guard).
	MaxMessageBytes int64
	// RoundTimeout arms the round-progress watchdog: when the buffer has
	// held at least one update but stayed below the aggregation goal for
	// this long, the server aggregates the partial buffer instead of
	// waiting forever on crashed or wedged clients (0 disables).
	RoundTimeout time.Duration
	// CheckpointPath, when non-empty, makes the server state durable: a
	// snapshot of the global model, round counter, lifetime stats, pending
	// buffer, client sessions and filter state is written atomically to
	// this path during aggregation and on graceful Close, and NewServer
	// restores from an existing snapshot at startup so a restarted server
	// resumes the deployment instead of silently starting over at round 0.
	CheckpointPath string
	// CheckpointEvery writes a snapshot after every N aggregations (<= 0
	// selects 1, i.e. every aggregation). The final aggregation and
	// graceful Close always checkpoint regardless of N. Only meaningful
	// with CheckpointPath.
	CheckpointEvery int
	// MaxPendingUpdates bounds the in-flight update budget: the buffer
	// never holds more than this many updates (0 disables). When a new
	// update would exceed the budget the stalest buffered updates are
	// shed to make room — unless the incoming update is itself the
	// stalest candidate, in which case it is refused with NackOverloaded.
	// Must be >= AggregationGoal when set, or the goal could never be
	// reached.
	MaxPendingUpdates int
	// ClientRateLimit caps each client's sustained update rate in
	// updates/second via a per-session token bucket (0 disables). Updates
	// over budget are refused with NackRateLimited and a RetryAfter
	// pacing hint.
	ClientRateLimit float64
	// ClientBurst is the token-bucket capacity (<= 0 selects 1). Only
	// meaningful with ClientRateLimit.
	ClientBurst int
	// LeaseDuration arms client leases: every message from a client
	// renews its session lease for this long, and a lease sweeper evicts
	// sessions whose lease expired — closing their connection and freeing
	// their in-flight accounting — so a client that dies without a TCP
	// reset is noticed within a lease period (0 disables). Clients should
	// heartbeat at a fraction of this interval.
	LeaseDuration time.Duration
	// QuarantineAfter opens a per-client circuit breaker after this many
	// consecutive filter-rejected submissions: further updates from the
	// client are refused with NackQuarantined until QuarantineCooldown
	// passes, then a single half-open probe update is admitted — an
	// accepted probe closes the breaker, a rejected one re-opens it
	// (0 disables).
	QuarantineAfter int
	// QuarantineCooldown is how long a quarantined client is refused
	// before the half-open probe (<= 0 selects 30s). Only meaningful with
	// QuarantineAfter.
	QuarantineCooldown time.Duration
	// Obsv, when non-nil, attaches the observability layer: server stats
	// are mirrored into the hub's registry on every scrape, admission
	// NACKs / round latencies / buffer occupancy become metrics, and
	// filter decisions stream into the hub's tracer when the filter
	// supports observation. Purely observational — enabling it changes
	// no aggregation outcome.
	Obsv *obsv.Hub
	// OnRoundCommitted, when non-nil, is called after every committed
	// aggregation round with the new model version and the updates the
	// filter accepted into it. It runs outside the server lock while the
	// round slot is still held (the filter is quiescent), in strict round
	// order. Ownership of the slice and the updates transfers to the
	// callback — the server never touches them again — which is what lets
	// a hierarchical edge forward them upstream without copying. A panic
	// in the callback is recovered and counted in HandlerPanics.
	OnRoundCommitted func(version int, accepted []*fl.Update)
}

// Validate checks the configuration.
func (c *ServerConfig) Validate() error {
	if len(c.InitialParams) == 0 {
		return errors.New("transport: ServerConfig: empty InitialParams")
	}
	if c.AggregationGoal < 1 {
		return fmt.Errorf("transport: ServerConfig: AggregationGoal = %d, need >= 1", c.AggregationGoal)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("transport: ServerConfig: Rounds = %d, need >= 1", c.Rounds)
	}
	if c.StalenessLimit < 0 {
		return fmt.Errorf("transport: ServerConfig: StalenessLimit = %d, need >= 0", c.StalenessLimit)
	}
	if c.ReadTimeout < 0 || c.WriteTimeout < 0 || c.RoundTimeout < 0 {
		return errors.New("transport: ServerConfig: negative timeout")
	}
	if c.MaxMessageBytes < 0 {
		return fmt.Errorf("transport: ServerConfig: MaxMessageBytes = %d, need >= 0", c.MaxMessageBytes)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("transport: ServerConfig: CheckpointEvery = %d, need >= 0", c.CheckpointEvery)
	}
	if c.MaxPendingUpdates < 0 {
		return fmt.Errorf("transport: ServerConfig: MaxPendingUpdates = %d, need >= 0", c.MaxPendingUpdates)
	}
	if c.MaxPendingUpdates > 0 && c.MaxPendingUpdates < c.AggregationGoal {
		return fmt.Errorf("transport: ServerConfig: MaxPendingUpdates = %d below AggregationGoal = %d (the goal could never be reached)",
			c.MaxPendingUpdates, c.AggregationGoal)
	}
	if c.ClientRateLimit < 0 {
		return fmt.Errorf("transport: ServerConfig: ClientRateLimit = %v, need >= 0", c.ClientRateLimit)
	}
	if c.LeaseDuration < 0 {
		return errors.New("transport: ServerConfig: negative LeaseDuration")
	}
	if c.QuarantineAfter < 0 {
		return fmt.Errorf("transport: ServerConfig: QuarantineAfter = %d, need >= 0", c.QuarantineAfter)
	}
	return nil
}

// Server is the asynchronous FL aggregation server. Create with NewServer,
// start with Serve, wait on Done.
type Server struct {
	cfg      ServerConfig
	filter   fl.Filter
	combiner fl.Combiner

	// arena recycles update-delta vectors and Update structs across the
	// receive -> buffer -> filter -> round-commit pipeline. Deltas
	// decoded from the binary wire are arena-backed; ownership transfers
	// through receiveUpdate and Buffer.Add, and the round that retires an
	// update returns its memory here (see maybeAggregate).
	arena *fl.Arena

	mu           sync.Mutex
	global       []float64
	version      int
	buffer       *fl.Buffer
	finished     bool
	restored     bool
	draining     bool
	netClosed    bool
	stats        ServerStats
	sessions     map[int]*clientSession
	conns        map[net.Conn]struct{}
	lastProgress time.Time
	// shardAddrs / shardVersion hold the latest SetShardAddrs push;
	// handlers piggyback the list on task replies when their last-sent
	// version is stale.
	shardAddrs   []string
	shardVersion int
	// shedObserver, when non-nil, is invoked (outside s.mu) with the
	// server version at shed time and the evicted updates. Test-only
	// hook for asserting the stalest-first shedding invariant.
	shedObserver func(version int, shed []*fl.Update)
	// obs holds the event-driven metric handles when ServerConfig.Obsv
	// is set; nil otherwise (all methods are nil-receiver safe).
	obs *serverObs
	// aggregating marks an aggregation round in flight. Rounds run the
	// filter and combiner *outside* s.mu (they are O(buffer · dim) and
	// must not stall every connection handler); the flag serializes rounds
	// so filter state still sees a strict round order.
	aggregating bool
	// aggDone (on mu) is broadcast when aggregating falls back to false;
	// Close waits on it so the final checkpoint includes the in-flight
	// round.
	aggDone *sync.Cond

	done         chan struct{}
	listener     net.Listener
	wg           sync.WaitGroup
	watchdog     sync.Once
	leaseSweeper sync.Once
	drainOnce    sync.Once
	// drained is closed when a Drain sequence has finished its flush and
	// final checkpoint (possibly after the Drain call itself timed out).
	drained chan struct{}
}

// ServerStats summarizes a finished deployment.
type ServerStats struct {
	// Rounds is the number of aggregations performed.
	Rounds int
	// Accepted, Deferred, Rejected count filter decisions.
	Accepted, Deferred, Rejected int
	// DroppedStale counts updates discarded for staleness.
	DroppedStale int
	// DroppedMalformed counts updates discarded for a dimension mismatch
	// with the global model.
	DroppedMalformed int
	// DroppedOversize counts client messages rejected by the
	// MaxMessageBytes guard (the connection is closed).
	DroppedOversize int
	// UpdatesReceived counts all updates that reached the server.
	UpdatesReceived int
	// WatchdogRounds counts aggregations forced by the round-progress
	// watchdog on a partial buffer.
	WatchdogRounds int
	// ClientsConnected counts distinct client IDs that completed a Hello.
	ClientsConnected int
	// Reconnects counts Hello messages from already-known client IDs.
	Reconnects int
	// HandlerPanics counts panics recovered in connection handlers, the
	// round watchdog and the filter — faults that are now isolated to the
	// offending goroutine or round instead of killing the deployment.
	HandlerPanics int
	// Checkpoints counts state snapshots successfully written.
	Checkpoints int
	// DroppedShed counts updates evicted by staleness-aware load
	// shedding: the stalest buffered updates (or an incoming update that
	// was itself the stalest candidate) dropped to keep the buffer within
	// MaxPendingUpdates.
	DroppedShed int
	// DroppedRateLimited counts updates refused by the per-client
	// token-bucket rate limit.
	DroppedRateLimited int
	// DroppedQuarantined counts updates refused from quarantined clients.
	DroppedQuarantined int
	// QuarantinedClients counts circuit-breaker openings (a client
	// re-quarantined after a failed half-open probe counts again).
	QuarantinedClients int
	// ExpiredLeases counts sessions evicted by the lease sweeper because
	// the client stopped sending (updates or heartbeats) for a full
	// LeaseDuration.
	ExpiredLeases int
	// Heartbeats counts heartbeat messages received (each renews a lease
	// and is answered with a Pong).
	Heartbeats int
	// NacksSent counts typed NACK replies sent to clients.
	NacksSent int
}

// NewServer builds a server. filter nil selects pass-through (FedBuff);
// combiner nil selects the weighted mean.
func NewServer(cfg ServerConfig, filter fl.Filter, combiner fl.Combiner) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if filter == nil {
		filter = fl.Passthrough{}
	}
	if combiner == nil {
		combiner = fl.MeanCombiner{}
	}
	buffer, err := fl.NewBuffer(cfg.AggregationGoal, cfg.StalenessLimit)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		filter:   filter,
		combiner: combiner,
		arena:    fl.NewArena(len(cfg.InitialParams)),
		global:   vecmath.Clone(cfg.InitialParams),
		buffer:   buffer,
		sessions: make(map[int]*clientSession),
		conns:    make(map[net.Conn]struct{}),
		done:     make(chan struct{}),
		drained:  make(chan struct{}),
	}
	s.aggDone = sync.NewCond(&s.mu)
	if cfg.CheckpointPath != "" {
		if err := s.restoreFromCheckpoint(cfg.CheckpointPath); err != nil {
			return nil, err
		}
	}
	// Observability wires up after any restore so the sinks observe the
	// live buffer and filter rather than pre-restore instances.
	if cfg.Obsv != nil {
		s.wireObsv(cfg.Obsv)
	}
	return s, nil
}

// Serve accepts client connections on lis until the configured number of
// rounds completes or Close is called. It returns after the accept loop
// exits and all client handlers have drained.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	s.listener = lis
	s.lastProgress = time.Now()
	s.mu.Unlock()
	// stop ends the watchdog when Serve exits for any reason, including
	// accept errors that happen before the deployment completes.
	stop := make(chan struct{})
	if s.cfg.RoundTimeout > 0 {
		s.watchdog.Do(func() {
			s.wg.Add(1)
			go s.watchRounds(stop)
		})
	}

	if s.cfg.LeaseDuration > 0 {
		s.leaseSweeper.Do(func() {
			s.wg.Add(1)
			go s.watchLeases(stop)
		})
	}

	var serveErr error
	for serveErr == nil {
		conn, err := lis.Accept()
		if err != nil {
			// Closed listener means shutdown (normal path).
			select {
			case <-s.done:
			default:
				serveErr = fmt.Errorf("transport: accept: %w", err)
			}
			break
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
	close(stop)
	s.wg.Wait()
	return serveErr
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: listen: %w", err)
	}
	return s.Serve(lis)
}

// Addr returns the listener address (empty before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Done is closed when the configured rounds have completed.
func (s *Server) Done() <-chan struct{} { return s.done }

// Finish marks the deployment complete without tearing the network down:
// connected clients receive Done on their next task request and exit
// cleanly instead of burning reconnect budgets against a closed socket,
// and no further aggregation round starts. Serve keeps accepting until
// Close. An edge server calls this when its root declares the fleet-wide
// deployment done.
func (s *Server) Finish() {
	s.mu.Lock()
	if !s.finished {
		s.finished = true
		close(s.done)
	}
	s.mu.Unlock()
}

// Close stops accepting connections, disconnects all clients and unblocks
// Serve. It waits for any in-flight aggregation round to commit, then —
// when checkpointing is configured — writes a final snapshot of the
// resulting state, so a graceful shutdown is always resumable. Setting
// finished first guarantees no new round starts while Close waits.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.finished {
		s.finished = true
		close(s.done)
	}
	for s.aggregating {
		s.aggDone.Wait()
	}
	var snap *serverSnapshot
	// A draining server's final checkpoint belongs to the drain sequence,
	// which also snapshots the filter; capturing here too would race it.
	if s.cfg.CheckpointPath != "" && !s.draining {
		snap = s.captureSnapshotLocked()
	}
	s.mu.Unlock()

	if snap != nil {
		s.writeSnapshot(snap)
	}
	return s.closeNetwork()
}

// closeNetwork tears down the listener and every live connection exactly
// once; later calls are no-ops returning nil, so Close after Drain does
// not report a spuriously double-closed listener.
func (s *Server) closeNetwork() error {
	s.mu.Lock()
	if s.netClosed {
		s.mu.Unlock()
		return nil
	}
	s.netClosed = true
	lis := s.listener
	open := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		open = append(open, conn)
	}
	s.mu.Unlock()

	var err error
	if lis != nil {
		err = lis.Close()
	}
	for _, conn := range open {
		_ = conn.Close()
	}
	return err
}

// FinalParams returns a copy of the current global parameters.
func (s *Server) FinalParams() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return vecmath.Clone(s.global)
}

// Version returns the current global model version.
func (s *Server) Version() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Stats returns the lifetime counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Restored reports whether NewServer resumed this server's state from an
// existing checkpoint.
func (s *Server) Restored() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restored
}

// recoverPanic absorbs a panic in a server goroutine, logging the stack
// and counting it in HandlerPanics. A malformed or adversarial message
// that panics one connection handler must take down that connection only,
// never the deployment. Callers must not hold s.mu when the deferred call
// runs.
func (s *Server) recoverPanic(where string) {
	if r := recover(); r != nil {
		s.mu.Lock()
		s.stats.HandlerPanics++
		s.mu.Unlock()
		log.Printf("transport: recovered %s panic: %v\n%s", where, r, debug.Stack())
	}
}

// handle drives one client connection. The recover guard isolates panics
// (a crafted payload that panics the decoder, or a misbehaving filter
// reached through receiveUpdate) to this connection.
func (s *Server) handle(conn net.Conn) {
	defer s.recoverPanic("handler")
	defer conn.Close()
	if !s.trackConn(conn) {
		return
	}
	defer s.untrackConn(conn)

	// The first byte of the stream picks the codec (see sniffWire): the
	// binary preamble's 0x00 or a gob varint. Both reads run under the
	// same read deadline as the Hello they precede.
	s.armRead(conn)
	wire, err := s.sniffWire(conn)
	if err != nil {
		// Nothing was negotiated, so there is no codec to say Goodbye in.
		return
	}

	hello, err := wire.readMsg()
	if err != nil || hello.hello == nil {
		if hello.hello == nil && s.isDraining() {
			// The read was nudged awake by a starting drain (or the
			// stream broke mid-drain): say Goodbye so the client stops
			// retrying against a server on its way out.
			s.farewell(conn, wire)
		}
		return
	}
	if hello.hello.Codec != wire.codec() || !s.admitHello(hello.hello) {
		// The advertised model dimension cannot match this deployment
		// (or the declared codec contradicts the negotiated framing):
		// refuse at Hello time instead of letting the client train a
		// round it can never submit.
		if hello.hello.Codec != wire.codec() {
			s.mu.Lock()
			s.stats.DroppedMalformed++
			s.stats.NacksSent++
			s.mu.Unlock()
		}
		s.obs.noteNack(NackMalformed)
		s.send(conn, wire, &ServerMsg{Nack: NackMalformed})
		return
	}
	sess := s.register(hello.hello, conn)
	defer s.release(sess, conn)
	if s.isDraining() {
		// A client connecting (or reconnecting) into a drain gets a
		// polite redirect instead of silence.
		s.farewell(conn, wire)
		return
	}

	// sentShard tracks which shard-list version this connection has been
	// sent; -1 forces a push in the first task envelope when a list exists.
	sentShard := -1

	// Send the initial task.
	if !s.sendTask(conn, wire, &sentShard) {
		if s.isDraining() {
			s.linger(conn, wire)
		}
		return
	}
	for {
		s.armRead(conn)
		// Checked between arming and decoding on purpose: a drain that
		// begins before this check is seen here, and one that begins
		// after it re-arms the deadline to "now" (Drain nudges every
		// live connection), so a handler can never sit out a drain
		// blocked in Decode waiting for a client that is busy training.
		if s.isDraining() {
			s.farewell(conn, wire)
			return
		}
		msg, err := wire.readMsg()
		if err != nil {
			if wire.oversize() {
				s.mu.Lock()
				s.stats.DroppedOversize++
				s.mu.Unlock()
				return
			}
			if s.isDraining() {
				s.farewell(conn, wire)
			}
			return
		}
		if msg.heartbeat {
			if !s.heartbeat(sess) {
				s.farewell(conn, wire)
				return
			}
			if !s.send(conn, wire, &ServerMsg{Pong: true}) {
				return
			}
			continue
		}
		if !msg.hasUpdate {
			continue
		}
		verdict := s.receiveUpdate(sess, msg.baseVersion, msg.delta)
		if verdict.goodbye {
			s.farewell(conn, wire)
			return
		}
		if verdict.nack != 0 {
			s.obs.noteNack(verdict.nack)
			// The refusal and the current model travel in one envelope:
			// the client backs off for RetryAfter, then resumes from the
			// fresh task, keeping the protocol strictly request-reply.
			if !s.sendTaskNack(conn, wire, verdict.nack, verdict.retryAfter, &sentShard) {
				if s.isDraining() {
					s.linger(conn, wire)
				}
				return
			}
			continue
		}
		if !s.sendTask(conn, wire, &sentShard) {
			if s.isDraining() {
				s.linger(conn, wire)
			}
			return
		}
	}
}

// admitHello reports whether a Hello's advertised model dimension is
// compatible with the live global model (0 = not advertised, accepted).
func (s *Server) admitHello(h *Hello) bool {
	if h.ModelDim == 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.ModelDim == len(s.global) {
		return true
	}
	s.stats.DroppedMalformed++
	s.stats.NacksSent++
	return false
}

// isDraining reports whether Drain has stopped admissions.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// heartbeat renews a session's lease. It reports false when the server is
// draining, in which case the caller should say Goodbye.
func (s *Server) heartbeat(sess *clientSession) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Heartbeats++
	if s.draining {
		return false
	}
	if s.cfg.LeaseDuration > 0 {
		sess.leaseExpiry = time.Now().Add(s.cfg.LeaseDuration)
	}
	return true
}

// send transmits one server message under the write deadline, reporting
// whether the connection is still usable. Never called with s.mu held.
func (s *Server) send(conn net.Conn, wire serverWire, msg *ServerMsg) bool {
	if s.cfg.WriteTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	return wire.writeMsg(msg) == nil
}

// armRead refreshes the read deadline before a blocking decode.
func (s *Server) armRead(conn net.Conn) {
	if s.cfg.ReadTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	}
}

// drainLinger bounds how long a handler keeps a connection open after a
// drain Goodbye so the peer can read it before the socket dies. Closing
// immediately would race the client's next in-flight write: data arriving
// on a closed socket triggers a TCP reset, which discards the queued
// farewell from the peer's receive buffer and turns a polite redirect
// into a reconnect storm against a dead address.
const drainLinger = 5 * time.Second

// farewell sends a drain Goodbye and lingers until the client has read it
// and closed its end. In the lock-step protocol the queued Goodbye
// answers the client's next request, so in-flight requests are decoded
// and discarded here rather than replied to twice. The current shard list
// (if any) rides along so a redirected client knows where "elsewhere" is.
func (s *Server) farewell(conn net.Conn, wire serverWire) {
	s.mu.Lock()
	shards := append([]string(nil), s.shardAddrs...)
	sv := s.shardVersion
	s.mu.Unlock()
	if s.send(conn, wire, &ServerMsg{Goodbye: true, Shards: shards, ShardVersion: sv}) {
		s.linger(conn, wire)
	}
}

// linger drains and discards a connection's remaining inbound messages
// until the peer closes (typically right after reading a Goodbye already
// on the wire), the linger budget runs out, or drain teardown closes the
// socket.
func (s *Server) linger(conn net.Conn, wire serverWire) {
	_ = conn.SetReadDeadline(time.Now().Add(drainLinger))
	for {
		msg, err := wire.readMsg()
		if err != nil {
			return
		}
		// Discarded request: recycle an update's arena-backed delta.
		if msg.hasUpdate {
			s.arena.PutVec(msg.delta)
		}
	}
}

// sendTask transmits the latest model, or Done/Goodbye when training
// finished. It reports whether the connection should stay open. sentShard
// is the handler's shard-push cursor (see shardPushLocked).
func (s *Server) sendTask(conn net.Conn, wire serverWire, sentShard *int) bool {
	return s.sendTaskNack(conn, wire, 0, 0, sentShard)
}

// sendTaskNack transmits an optional NACK together with the latest model
// in one envelope (or Done/Goodbye when the deployment ended). It reports
// whether the connection should stay open.
func (s *Server) sendTaskNack(conn net.Conn, wire serverWire, nack NackCode, retryAfter time.Duration, sentShard *int) bool {
	s.mu.Lock()
	finished := s.finished
	draining := s.draining
	task := Task{Version: s.version, Params: vecmath.Clone(s.global)}
	shards, sv := s.shardPushLocked(sentShard)
	s.mu.Unlock()
	if finished || draining {
		s.send(conn, wire, &ServerMsg{Done: finished && !draining, Goodbye: draining, Shards: shards, ShardVersion: sv})
		return false
	}
	return s.send(conn, wire, &ServerMsg{Task: &task, Nack: nack, RetryAfter: retryAfter, Shards: shards, ShardVersion: sv})
}

// forceMode distinguishes why an aggregation round was forced below the
// aggregation goal (or not forced at all).
type forceMode int

const (
	// forceNone aggregates only when the buffer is Ready.
	forceNone forceMode = iota
	// forceWatchdog is a round-progress watchdog round on a partial
	// buffer (counted in WatchdogRounds).
	forceWatchdog
	// forceDrain is the final flush of a graceful drain.
	forceDrain
)

// maybeAggregate runs filter+aggregate rounds while the buffer is ready
// (or once unconditionally when forced by the watchdog or a drain). The
// filter and the combiner are O(buffer · dim) and run *outside* s.mu —
// holding the lock across them would serialize every connection handler
// behind the round and let a stalled filter wedge heartbeats and
// shutdown. Rounds themselves stay strictly ordered: the aggregating flag
// admits one round at a time, and a round that commits while the buffer
// is ready again loops rather than handing off.
func (s *Server) maybeAggregate(force forceMode) {
	forced := force != forceNone
	s.mu.Lock()
	if s.aggregating || s.finished {
		// An in-flight round re-checks readiness when it commits, so a
		// ready buffer is never stranded.
		s.mu.Unlock()
		return
	}
	if !forced && !s.buffer.Ready() {
		s.mu.Unlock()
		return
	}
	if force == forceWatchdog && s.buffer.Len() > 0 {
		s.stats.WatchdogRounds++
	}
	s.aggregating = true
	for {
		updates := s.buffer.Drain()
		if len(updates) == 0 {
			break
		}
		// Staleness is recomputed at drain time so updates that waited in
		// the buffer across watchdog rounds (or were requeued after a
		// deferral) carry their true age into the filter and the staleness
		// discount.
		for _, u := range updates {
			u.Staleness = s.version - u.BaseVersion
		}
		round := s.version + 1
		s.mu.Unlock()

		roundStart := time.Now()
		fres, err := s.filterBatch(updates, round)
		if err != nil {
			// A failing filter must not wedge the deployment: fall back to
			// accepting the batch (FedBuff behaviour) for this round.
			fres = fl.AcceptAll(len(updates))
		}
		accepted, deferred, rejected := fres.Split(updates)
		delta := s.combineBatch(accepted, round)

		s.mu.Lock()
		if delta != nil {
			vecmath.Add(s.global, s.global, delta)
		}
		s.stats.Accepted += len(accepted)
		s.stats.Deferred += len(deferred)
		s.stats.Rejected += len(rejected)
		s.noteFilterOutcomesLocked(accepted, rejected)
		s.version++
		s.stats.Rounds = s.version
		s.stats.DroppedStale += s.buffer.RequeueAt(deferred, s.version)
		s.lastProgress = time.Now()
		version := s.version
		obs, isObs := s.filter.(fl.RoundObserver)
		var obsGlobal []float64
		if isObs {
			obsGlobal = vecmath.Clone(s.global)
		}
		if s.version >= s.cfg.Rounds && !s.finished {
			s.finished = true
			close(s.done)
		}
		var snap *serverSnapshot
		if s.shouldCheckpointLocked() {
			snap = s.captureSnapshotLocked()
		}
		s.mu.Unlock()

		// Observer, commit hook and checkpoint run unlocked too: the
		// aggregating flag keeps the filter quiescent, so ObserveRound,
		// OnRoundCommitted and SnapshotState see exactly this round's
		// state, in order.
		s.obs.roundCommitted(version, time.Since(roundStart),
			len(updates), len(accepted), len(deferred), len(rejected))
		if isObs {
			s.observeRound(obs, version, obsGlobal, accepted)
		}
		if s.cfg.OnRoundCommitted != nil {
			s.notifyRoundCommitted(version, accepted)
		}
		if snap != nil {
			s.writeSnapshot(snap)
		}

		// The round retired these updates, so their memory returns to the
		// arena: rejected ones were only read (the breaker bookkeeping and
		// the filter copy what they keep), and accepted ones are recycled
		// unless OnRoundCommitted took ownership of them (hierarchical
		// edges forward them upstream). Deferred updates went back into
		// the buffer and stay alive.
		for _, u := range rejected {
			s.arena.PutUpdate(u)
		}
		if s.cfg.OnRoundCommitted == nil {
			for _, u := range accepted {
				s.arena.PutUpdate(u)
			}
		}

		s.mu.Lock()
		if s.finished || !s.buffer.Ready() {
			break
		}
	}
	s.aggregating = false
	s.aggDone.Broadcast()
	s.mu.Unlock()
}

// filterBatch runs the filter with a recover guard: a panicking filter is
// downgraded to a failing filter (the caller accepts the batch wholesale,
// FedBuff behaviour) instead of tearing down the deployment and losing
// the round's updates. Runs without s.mu held.
func (s *Server) filterBatch(updates []*fl.Update, round int) (fres fl.FilterResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.stats.HandlerPanics++
			s.mu.Unlock()
			log.Printf("transport: recovered filter panic in round %d: %v\n%s", round, r, debug.Stack())
			err = fmt.Errorf("transport: filter panic: %v", r)
		}
	}()
	return s.filter.Filter(updates, round)
}

// combineBatch runs the combiner with the same recover guard as
// filterBatch: a panicking or failing combiner drops this round's delta
// (the batch is lost) but the round still commits and the server keeps
// serving. A panic escaping here would unwind past the code that clears
// the aggregating flag and wedge Close forever. Runs without s.mu held.
func (s *Server) combineBatch(accepted []*fl.Update, round int) (delta []float64) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.stats.HandlerPanics++
			s.mu.Unlock()
			log.Printf("transport: recovered combiner panic in round %d: %v\n%s", round, r, debug.Stack())
			delta = nil
		}
	}()
	if len(accepted) == 0 {
		return nil
	}
	d, err := s.combiner.Combine(accepted, s.cfg.Aggregator)
	if err != nil {
		log.Printf("transport: combiner failed in round %d: %v", round, err)
		return nil
	}
	return d
}

// notifyRoundCommitted hands a committed round's accepted updates to the
// configured OnRoundCommitted callback behind the same recover guard as
// the other unlocked round-commit work: a panicking callback must not
// leave the aggregating flag set. Runs without s.mu held.
func (s *Server) notifyRoundCommitted(version int, accepted []*fl.Update) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.stats.HandlerPanics++
			s.mu.Unlock()
			log.Printf("transport: recovered round-commit callback panic in round %d: %v\n%s", version, r, debug.Stack())
		}
	}()
	s.cfg.OnRoundCommitted(version, accepted)
}

// observeRound delivers the committed round to a RoundObserver filter
// behind a recover guard, for the same reason as combineBatch: observer
// panics must not leave the aggregating flag set. Runs without s.mu held.
func (s *Server) observeRound(obs fl.RoundObserver, version int, global []float64, accepted []*fl.Update) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.stats.HandlerPanics++
			s.mu.Unlock()
			log.Printf("transport: recovered observer panic in round %d: %v\n%s", version, r, debug.Stack())
		}
	}()
	obs.ObserveRound(version, global, accepted)
}
