package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/fl"
)

// gateFilter blocks its first Filter call until released, keeping an
// aggregation round in flight so a test can pile updates up behind it.
// Later calls accept everything immediately.
type gateFilter struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGateFilter() *gateFilter {
	return &gateFilter{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateFilter) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return fl.AcceptAll(len(updates)), nil
}

func (g *gateFilter) Name() string { return "gate" }

// clientRejectFilter rejects every update from one client ID and accepts
// the rest — a stand-in for a filter that has pinned down a poisoner.
type clientRejectFilter struct {
	mu       sync.Mutex
	rejectID int
}

func (f *clientRejectFilter) setReject(id int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rejectID = id
}

func (f *clientRejectFilter) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	f.mu.Lock()
	id := f.rejectID
	f.mu.Unlock()
	res := fl.FilterResult{Decisions: make([]fl.Decision, len(updates))}
	for i, u := range updates {
		if u.ClientID == id {
			res.Decisions[i] = fl.Reject
		} else {
			res.Decisions[i] = fl.Accept
		}
	}
	return res, nil
}

func (f *clientRejectFilter) Name() string { return "client-reject" }

// slowCombiner delays each aggregation long enough for eager clients to
// overrun the in-flight budget, forcing the shedding path.
type slowCombiner struct {
	lag   time.Duration
	inner fl.MeanCombiner
}

func (c slowCombiner) Combine(updates []*fl.Update, cfg fl.AggregatorConfig) ([]float64, error) {
	time.Sleep(c.lag)
	return c.inner.Combine(updates, cfg)
}

func (c slowCombiner) Name() string { return "slow-" + c.inner.Name() }

func TestReceiveUpdateRateLimitNack(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams:   []float64{0, 0},
		AggregationGoal: 100,
		Rounds:          1,
		// Half a token per second: the second update inside the test
		// window must find an empty bucket.
		ClientRateLimit: 0.5,
		ClientBurst:     1,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess := &clientSession{id: 1, numSamples: 5}
	if v := server.receiveUpdate(sess, 0, []float64{1, 1}); v.nack != 0 || v.goodbye {
		t.Fatalf("first update refused: %+v", v)
	}
	v := server.receiveUpdate(sess, 0, []float64{1, 1})
	if v.nack != NackRateLimited {
		t.Fatalf("second update verdict = %+v, want NackRateLimited", v)
	}
	if v.retryAfter <= 0 {
		t.Error("rate-limit NACK carried no RetryAfter pacing hint")
	}
	stats := server.Stats()
	if stats.DroppedRateLimited != 1 {
		t.Errorf("DroppedRateLimited = %d, want 1", stats.DroppedRateLimited)
	}
	if stats.NacksSent != 1 {
		t.Errorf("NacksSent = %d, want 1", stats.NacksSent)
	}

	// Back-date the last refill instead of sleeping: four seconds at half
	// a token per second refills well past one token.
	server.mu.Lock()
	sess.lastRefill = sess.lastRefill.Add(-4 * time.Second)
	server.mu.Unlock()
	if v := server.receiveUpdate(sess, 0, []float64{1, 1}); v.nack != 0 {
		t.Fatalf("refilled bucket still refused: %+v", v)
	}
}

func TestReceiveUpdateShedsStalestFirst(t *testing.T) {
	gate := newGateFilter()
	server, err := NewServer(ServerConfig{
		InitialParams:     []float64{0, 0},
		AggregationGoal:   1,
		Rounds:            100,
		MaxPendingUpdates: 4,
	}, gate, nil)
	if err != nil {
		t.Fatal(err)
	}
	var obsMu sync.Mutex
	var observed [][]int // BaseVersions of each shed batch, in shed order
	server.shedObserver = func(version int, shed []*fl.Update) {
		obsMu.Lock()
		defer obsMu.Unlock()
		batch := make([]int, len(shed))
		for i, u := range shed {
			batch[i] = u.BaseVersion
		}
		observed = append(observed, batch)
	}
	sess := func(id int) *clientSession { return &clientSession{id: id, numSamples: 1} }
	submit := func(id, base int) admissionVerdict {
		return server.receiveUpdate(sess(id), base, []float64{1, 1})
	}

	// The first update reaches the goal and starts a round; the gate
	// filter holds that round in flight so the next four arrivals pile up
	// in the buffer to exactly MaxPendingUpdates.
	roundDone := make(chan struct{})
	go func() {
		defer close(roundDone)
		submit(0, 0)
	}()
	<-gate.entered
	for i, base := range []int{10, 12, 11, 13} {
		if v := submit(1+i, base); v.nack != 0 {
			t.Fatalf("buffered update %d refused: %+v", i, v)
		}
	}

	// A fresher arrival sheds the stalest buffered update (BaseVersion 10).
	if v := submit(5, 14); v.nack != 0 {
		t.Fatalf("fresh arrival refused: %+v", v)
	}
	// An arrival staler than everything buffered is itself the victim.
	v := submit(6, 5)
	if v.nack != NackOverloaded {
		t.Fatalf("stalest arrival verdict = %+v, want NackOverloaded", v)
	}
	if v.retryAfter <= 0 {
		t.Error("overload NACK carried no RetryAfter pacing hint")
	}

	close(gate.release)
	<-roundDone
	if err := server.Close(); err != nil {
		t.Errorf("close: %v", err)
	}

	obsMu.Lock()
	defer obsMu.Unlock()
	want := [][]int{{10}, {5}}
	if !reflect.DeepEqual(observed, want) {
		t.Errorf("shed batches (BaseVersions) = %v, want %v", observed, want)
	}
	stats := server.Stats()
	if stats.DroppedShed != 2 {
		t.Errorf("DroppedShed = %d, want 2", stats.DroppedShed)
	}
}

func TestQuarantineCircuitBreaker(t *testing.T) {
	filter := &clientRejectFilter{rejectID: 7}
	server, err := NewServer(ServerConfig{
		InitialParams:      []float64{0, 0},
		AggregationGoal:    1,
		Rounds:             100,
		QuarantineAfter:    2,
		QuarantineCooldown: time.Hour,
	}, filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := server.register(&Hello{ClientID: 7, NumSamples: 5}, nil)
	good := server.register(&Hello{ClientID: 8, NumSamples: 5}, nil)
	submit := func(sess *clientSession) admissionVerdict {
		return server.receiveUpdate(sess, server.Version(), []float64{1, 1})
	}
	expireQuarantine := func(sess *clientSession) {
		server.mu.Lock()
		sess.quarantinedUntil = time.Now().Add(-time.Millisecond)
		server.mu.Unlock()
	}

	// With goal 1 every admitted update commits a round synchronously, so
	// each submission carries its filter verdict into the breaker before
	// the next one. Two consecutive rejections open it.
	for i := 0; i < 2; i++ {
		if v := submit(bad); v.nack != 0 {
			t.Fatalf("rejection %d refused admission: %+v", i, v)
		}
	}
	v := submit(bad)
	if v.nack != NackQuarantined {
		t.Fatalf("post-quarantine verdict = %+v, want NackQuarantined", v)
	}
	if v.retryAfter <= 0 {
		t.Error("quarantine NACK carried no cooldown hint")
	}
	st := server.Stats()
	if st.QuarantinedClients != 1 {
		t.Errorf("QuarantinedClients = %d, want 1", st.QuarantinedClients)
	}
	if st.DroppedQuarantined != 1 {
		t.Errorf("DroppedQuarantined = %d, want 1", st.DroppedQuarantined)
	}

	// The honest client is untouched by its neighbour's breaker.
	if v := submit(good); v.nack != 0 {
		t.Fatalf("honest client refused: %+v", v)
	}

	// After the cooldown the next update is admitted as the half-open
	// probe; a rejected probe re-opens the breaker immediately, without
	// needing QuarantineAfter fresh rejections.
	expireQuarantine(bad)
	if v := submit(bad); v.nack != 0 {
		t.Fatalf("half-open probe refused admission: %+v", v)
	}
	if st := server.Stats(); st.QuarantinedClients != 2 {
		t.Errorf("failed probe: QuarantinedClients = %d, want 2 (re-opened)", st.QuarantinedClients)
	}
	if v := submit(bad); v.nack != NackQuarantined {
		t.Fatalf("after failed probe: verdict = %+v, want NackQuarantined", v)
	}

	// A probe the filter accepts closes the breaker for good.
	filter.setReject(-1)
	expireQuarantine(bad)
	if v := submit(bad); v.nack != 0 {
		t.Fatalf("accepted probe refused admission: %+v", v)
	}
	if v := submit(bad); v.nack != 0 {
		t.Fatalf("client still penalized after breaker closed: %+v", v)
	}
	if st := server.Stats(); st.QuarantinedClients != 2 {
		t.Errorf("closed breaker re-opened: QuarantinedClients = %d, want 2", st.QuarantinedClients)
	}
	if err := server.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}

// rawHello dials the server, introduces a client and returns the gob
// codec pair after consuming the initial task.
func rawHello(t *testing.T, addr string, id, numSamples, modelDim int) (net.Conn, *gob.Encoder, *gob.Decoder) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&ClientMsg{Hello: &Hello{ClientID: id, NumSamples: numSamples, ModelDim: modelDim}}); err != nil {
		t.Fatal(err)
	}
	var msg ServerMsg
	if err := dec.Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if msg.Task == nil {
		t.Fatalf("hello answered with %+v, want a task", msg)
	}
	return conn, enc, dec
}

func TestHelloModelDimMismatchNacked(t *testing.T) {
	server, addr, serveErr := startBareServer(t, ServerConfig{
		InitialParams:   []float64{0, 0},
		AggregationGoal: 1,
		Rounds:          1,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&ClientMsg{Hello: &Hello{ClientID: 1, NumSamples: 5, ModelDim: 7}}); err != nil {
		t.Fatal(err)
	}
	var msg ServerMsg
	if err := dec.Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if msg.Nack != NackMalformed || msg.Task != nil {
		t.Errorf("mismatched hello answered with %+v, want bare NackMalformed", msg)
	}
	// The refusal is terminal for the connection.
	if err := dec.Decode(&msg); err == nil {
		t.Error("connection stayed open after a refused hello")
	}

	st := server.Stats()
	if st.DroppedMalformed != 1 {
		t.Errorf("DroppedMalformed = %d, want 1", st.DroppedMalformed)
	}
	if st.NacksSent != 1 {
		t.Errorf("NacksSent = %d, want 1", st.NacksSent)
	}
	if st.ClientsConnected != 0 {
		t.Errorf("refused client registered a session (ClientsConnected = %d)", st.ClientsConnected)
	}
	if err := server.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve: %v", err)
	}
}

func TestClientSurfacesRefusedHello(t *testing.T) {
	// A 5-parameter global model cannot match the test model's dimension,
	// so the client's Hello is refused before it trains a single round.
	server, addr, serveErr := startBareServer(t, ServerConfig{
		InitialParams:   make([]float64, 5),
		AggregationGoal: 1,
		Rounds:          1,
	})
	parts := testData(t, 1)
	client, err := NewClient(ClientConfig{
		ID: 1, Data: parts[0], Model: testModelConfig(), Trainer: testTrainer(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	runErr := client.Run(addr)
	if runErr == nil || !strings.Contains(runErr.Error(), "refused hello") {
		t.Fatalf("run error = %v, want a refused-hello error", runErr)
	}
	if client.Nacks != 1 {
		t.Errorf("client.Nacks = %d, want 1", client.Nacks)
	}
	if client.TasksRun != 0 {
		t.Errorf("client trained %d tasks against an incompatible server", client.TasksRun)
	}
	if err := server.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve: %v", err)
	}
}

func TestEvictExpiredLeases(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams:   []float64{0, 0},
		AggregationGoal: 1,
		Rounds:          1,
		LeaseDuration:   time.Second,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, p1 := net.Pipe()
	s2, p2 := net.Pipe()
	defer p1.Close()
	defer s2.Close()
	defer p2.Close()
	stale := server.register(&Hello{ClientID: 1, NumSamples: 1}, s1)
	fresh := server.register(&Hello{ClientID: 2, NumSamples: 1}, s2)

	server.mu.Lock()
	stale.leaseExpiry = time.Now().Add(-time.Second)
	server.mu.Unlock()
	server.evictExpiredLeases(time.Now())

	server.mu.Lock()
	staleConn, freshConn := stale.conn, fresh.conn
	server.mu.Unlock()
	if staleConn != nil {
		t.Error("expired session kept its connection")
	}
	if freshConn == nil {
		t.Error("live session was evicted")
	}
	if st := server.Stats(); st.ExpiredLeases != 1 {
		t.Errorf("ExpiredLeases = %d, want 1", st.ExpiredLeases)
	}
	// The evicted connection was closed: its peer observes EOF.
	_ = p1.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := p1.Read(make([]byte, 1)); err == nil {
		t.Error("evicted connection still open")
	}
}

func TestHeartbeatRenewsLeaseSilentClientEvicted(t *testing.T) {
	server, addr, serveErr := startBareServer(t, ServerConfig{
		InitialParams:   []float64{0, 0},
		AggregationGoal: 10,
		Rounds:          1,
		LeaseDuration:   200 * time.Millisecond,
	})
	connA, encA, decA := rawHello(t, addr, 1, 5, 0)
	defer connA.Close()
	connB, _, decB := rawHello(t, addr, 2, 5, 0)
	defer connB.Close()

	// A heartbeats at a quarter of the lease; B goes silent. Four lease
	// periods later A must still be connected and B must be gone.
	deadline := time.Now().Add(900 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := encA.Encode(&ClientMsg{Heartbeat: true}); err != nil {
			t.Fatalf("heartbeating client lost its connection: %v", err)
		}
		var msg ServerMsg
		if err := decA.Decode(&msg); err != nil {
			t.Fatalf("heartbeating client lost its connection: %v", err)
		}
		if !msg.Pong {
			t.Fatalf("heartbeat answered with %+v, want Pong", msg)
		}
		time.Sleep(50 * time.Millisecond)
	}

	_ = connB.SetReadDeadline(time.Now().Add(2 * time.Second))
	var msg ServerMsg
	if err := decB.Decode(&msg); err == nil {
		t.Errorf("silent client still connected a full lease period later (got %+v)", msg)
	}

	st := server.Stats()
	if st.ExpiredLeases < 1 {
		t.Errorf("ExpiredLeases = %d, want >= 1", st.ExpiredLeases)
	}
	if st.Heartbeats < 3 {
		t.Errorf("Heartbeats = %d, want >= 3", st.Heartbeats)
	}
	if err := server.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve: %v", err)
	}
}

func TestReconnectDuringDrainGetsGoodbye(t *testing.T) {
	gate := newGateFilter()
	server, err := NewServer(ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: 1,
		Rounds:          100,
	}, gate, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()
	addr := lis.Addr().String()

	// A raw client submits the update that starts the gated round, so the
	// drain sequence has an in-flight round to wait for.
	conn, enc, _ := rawHello(t, addr, 1, 5, 0)
	defer conn.Close()
	if err := enc.Encode(&ClientMsg{Update: &UpdateMsg{BaseVersion: 0, Delta: make([]float64, len(initialParams(t)))}}); err != nil {
		t.Fatal(err)
	}
	<-gate.entered

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- server.Drain(ctx)
	}()
	waitFor := time.After(5 * time.Second)
	for !server.isDraining() {
		select {
		case <-waitFor:
			t.Fatal("server never entered draining state")
		case <-time.After(time.Millisecond):
		}
	}

	// A client (re)connecting into the drain gets a polite Goodbye, which
	// Run surfaces as ErrServerGoodbye without burning retries on the
	// same address.
	parts := testData(t, 1)
	client, err := NewClient(ClientConfig{
		ID: 2, Data: parts[0], Model: testModelConfig(), Trainer: testTrainer(),
		Seed: 3, MaxRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if runErr := client.Run(addr); !errors.Is(runErr, ErrServerGoodbye) {
		t.Fatalf("run during drain = %v, want ErrServerGoodbye", runErr)
	}

	close(gate.release)
	// Hang up the raw client so the drain can wind down without waiting
	// out its farewell-linger budget on our half-open connection.
	conn.Close()
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve after drain: %v", err)
	}
}

// A drain must reach clients that are not talking to the server: a
// client busy training has no request in flight, so its handler sits in
// a blocked read and only the proactive nudge-and-farewell path can
// deliver the Goodbye. Before that path existed, idle clients learned
// about a drain from a connection reset and burned their whole retry
// budget against the closed port.
func TestDrainDeliversGoodbyeToIdleClients(t *testing.T) {
	server, addr, serveErr := startBareServer(t, ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: 1,
		Rounds:          100,
	})

	// Two clients connect, take their initial task, and go quiet — the
	// transport picture of a client that is busy training.
	type idleConn struct {
		conn net.Conn
		dec  *gob.Decoder
	}
	idle := make([]idleConn, 0, 2)
	for id := 1; id <= 2; id++ {
		conn, _, dec := rawHello(t, addr, id, 5, 0)
		defer conn.Close()
		idle = append(idle, idleConn{conn, dec})
	}

	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- server.Drain(ctx)
	}()

	// Each idle connection must hear Goodbye without ever asking.
	for i, ic := range idle {
		if err := ic.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
			t.Fatal(err)
		}
		var msg ServerMsg
		if err := ic.dec.Decode(&msg); err != nil {
			t.Fatalf("idle client %d never heard about the drain: %v", i+1, err)
		}
		if !msg.Goodbye {
			t.Fatalf("idle client %d read %+v, want Goodbye", i+1, msg)
		}
		if err := ic.conn.Close(); err != nil {
			t.Errorf("close idle client %d: %v", i+1, err)
		}
	}

	// With every farewell read and every socket closed, the drain winds
	// down promptly instead of waiting out the full linger budget.
	start := time.Now()
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Errorf("drain took %v after clients left, want a prompt return", waited)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve after drain: %v", err)
	}
}

// waitForVersion polls until the server reaches version v or the deadline
// passes.
func waitForVersion(t *testing.T, server *Server, v int, deadline time.Duration) {
	t.Helper()
	stop := time.After(deadline)
	for server.Version() < v {
		select {
		case <-stop:
			t.Fatalf("server stuck at version %d, want >= %d within %v", server.Version(), v, deadline)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestDrainUnderFaultInjection(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "state.gob")
	cfg := ServerConfig{
		InitialParams:     initialParams(t),
		AggregationGoal:   3,
		StalenessLimit:    10,
		Rounds:            1000, // far more than the test runs: Drain ends the deployment
		RoundTimeout:      300 * time.Millisecond,
		CheckpointPath:    ckpt,
		CheckpointEvery:   1,
		LeaseDuration:     2 * time.Second,
		MaxPendingUpdates: 6,
	}
	server, err := NewServer(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	// Clients run through a lossy, slow network and keep heartbeating;
	// tight retry pacing keeps the post-drain dial-refused exits quick.
	dial := FaultDialer(FaultConfig{
		Seed: 23, DelayProb: 0.2, Delay: time.Millisecond, PartialWriteProb: 0.02,
	})
	parts := testData(t, 5)
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		client, err := NewClient(ClientConfig{
			ID: i, Data: parts[i], Model: testModelConfig(), Trainer: testTrainer(),
			Seed: int64(40 + i), MaxRetries: 10,
			RetryBaseDelay: 20 * time.Millisecond, RetryMaxDelay: 100 * time.Millisecond,
			HeartbeatInterval: 50 * time.Millisecond,
			Dial:              dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = client.Run(lis.Addr().String()) // errors expected at drain
		}()
	}

	// Let a few rounds commit under fire, then drain gracefully.
	waitForVersion(t, server, 2, 15*time.Second)
	before := server.Version()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := server.Drain(ctx); err != nil {
		t.Fatalf("drain: %v (after %v)", err, time.Since(start))
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve after drain: %v", err)
	}
	wg.Wait()

	// The final checkpoint must be present and restorable, resuming at or
	// past the version the drain flushed.
	restored, err := NewServer(cfg, nil, nil)
	if err != nil {
		t.Fatalf("restore after drain: %v", err)
	}
	if !restored.Restored() {
		t.Fatal("drain left no restorable checkpoint")
	}
	if v := restored.Version(); v < before {
		t.Errorf("restored version %d < drain-time version %d", v, before)
	}
}

// TestOverloadedDeploymentStillConverges is the acceptance test for the
// overload layer: ~3x more clients than each round admits hammer a server
// whose combiner is artificially slow, so the in-flight budget overflows
// and staleness-aware shedding runs continuously. The deployment must
// still finish, answer heartbeats, shed stalest-first, and land within
// tolerance of an unloaded baseline.
func TestOverloadedDeploymentStillConverges(t *testing.T) {
	baseline := runDeployment(t, nil, 6, 0, 3, 6)
	baseAcc := evalAccuracy(t, baseline.FinalParams())

	server, err := NewServer(ServerConfig{
		InitialParams:     initialParams(t),
		AggregationGoal:   3,
		StalenessLimit:    10,
		Rounds:            6,
		MaxPendingUpdates: 4,
		LeaseDuration:     2 * time.Second,
	}, nil, slowCombiner{lag: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var obsMu sync.Mutex
	shedBatches, outOfOrder := 0, 0
	server.shedObserver = func(version int, shed []*fl.Update) {
		obsMu.Lock()
		defer obsMu.Unlock()
		shedBatches++
		for i := 1; i < len(shed); i++ {
			if shed[i].BaseVersion < shed[i-1].BaseVersion {
				outOfOrder++
			}
		}
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	parts := testData(t, 10)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		client, err := NewClient(ClientConfig{
			ID: i, Data: parts[i], Model: testModelConfig(), Trainer: testTrainer(),
			Seed: int64(60 + i), MaxRetries: 5,
			// Think time dwarfs the heartbeat interval, so every client
			// provably heartbeats between tasks.
			ThinkTime:         25 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = client.Run(lis.Addr().String()) // shutdown errors expected
		}()
	}

	select {
	case <-server.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("overloaded deployment did not finish within 30s")
	}
	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}

	st := server.Stats()
	if st.DroppedShed == 0 {
		t.Error("overloaded deployment shed nothing; the budget never bound")
	}
	if st.Heartbeats == 0 {
		t.Error("no heartbeats answered under load")
	}
	obsMu.Lock()
	oo, batches := outOfOrder, shedBatches
	obsMu.Unlock()
	if oo != 0 {
		t.Errorf("%d shed victims out of stalest-first order across %d batches", oo, batches)
	}
	if st.UpdatesReceived < 2*st.Accepted {
		t.Logf("offered/admitted ratio modest: received %d, accepted %d", st.UpdatesReceived, st.Accepted)
	}

	acc := evalAccuracy(t, server.FinalParams())
	t.Logf("baseline accuracy %.3f, overloaded %.3f (shed %d of %d received)",
		baseAcc, acc, st.DroppedShed, st.UpdatesReceived)
	if acc < baseAcc-0.15 {
		t.Errorf("overloaded accuracy %.3f fell more than 0.15 below baseline %.3f", acc, baseAcc)
	}
}

func TestDrainIdempotentAndCloseAfterDrain(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams:   []float64{0, 0},
		AggregationGoal: 1,
		Rounds:          1,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = server.Drain(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent drain %d: %v", i, err)
		}
	}
	if err := server.Drain(ctx); err != nil {
		t.Errorf("repeated drain: %v", err)
	}
	if err := server.Close(); err != nil {
		t.Errorf("close after drain: %v", err)
	}
}
