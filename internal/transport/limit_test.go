package transport

import (
	"errors"
	"strings"
	"testing"
)

// readUntilError drains the reader with small reads until it fails,
// returning the terminal error and the number of bytes that got through.
func readUntilError(lim *limitReader) (int, error) {
	buf := make([]byte, 8)
	total := 0
	for {
		n, err := lim.Read(buf)
		total += n
		if err != nil {
			return total, err
		}
	}
}

func TestLimitReaderTripsOnOversizeMessage(t *testing.T) {
	lim := newLimitReader(strings.NewReader(strings.Repeat("x", 64)), 16)
	got, err := readUntilError(lim)
	if !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("oversize read error = %v, want ErrMessageTooLarge", err)
	}
	if got != 16 {
		t.Errorf("read %d bytes before tripping, want 16", got)
	}
	if !lim.tripped() {
		t.Error("tripped() = false after exceeding the budget")
	}
}

func TestLimitReaderResetClearsTrip(t *testing.T) {
	lim := newLimitReader(strings.NewReader(strings.Repeat("x", 64)), 16)
	if _, err := readUntilError(lim); !errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("setup: oversize read error = %v", err)
	}
	if !lim.tripped() {
		t.Fatal("setup: reader did not trip")
	}

	// reset starts the next message: both the byte budget and the trip
	// flag must clear, or a reused reader would misreport every later
	// message as oversize.
	lim.reset()
	if lim.tripped() {
		t.Error("trip flag survived reset")
	}
	n, err := lim.Read(make([]byte, 8))
	if err != nil || n != 8 {
		t.Errorf("read after reset = (%d, %v), want a fresh 8-byte budget", n, err)
	}
	if lim.tripped() {
		t.Error("in-budget read after reset reported a trip")
	}
}

func TestLimitReaderZeroMaxDisablesGuard(t *testing.T) {
	lim := newLimitReader(strings.NewReader(strings.Repeat("x", 256)), 0)
	got, err := readUntilError(lim)
	if errors.Is(err, ErrMessageTooLarge) {
		t.Fatalf("disabled guard tripped: %v", err)
	}
	if got != 256 {
		t.Errorf("read %d bytes, want all 256", got)
	}
	if lim.tripped() {
		t.Error("tripped() = true with the guard disabled")
	}
}
