package transport

import (
	"encoding/gob"
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
)

// nopConn is a net.Conn stub whose reads and writes always succeed,
// isolating FaultConn schedule tests from real sockets.
type nopConn struct{}

func (nopConn) Read(p []byte) (int, error)       { return len(p), nil }
func (nopConn) Write(p []byte) (int, error)      { return len(p), nil }
func (nopConn) Close() error                     { return nil }
func (nopConn) LocalAddr() net.Addr              { return nil }
func (nopConn) RemoteAddr() net.Addr             { return nil }
func (nopConn) SetDeadline(time.Time) error      { return nil }
func (nopConn) SetReadDeadline(time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(time.Time) error { return nil }

// firstFailure returns the 1-based op index at which the fault schedule
// resets the connection (0 = never within n ops).
func firstFailure(cfg FaultConfig, n int) int {
	fc := NewFaultConn(nopConn{}, cfg)
	buf := make([]byte, 64)
	for i := 1; i <= n; i++ {
		var err error
		if i%2 == 0 {
			_, err = fc.Write(buf)
		} else {
			_, err = fc.Read(buf)
		}
		if err != nil {
			return i
		}
	}
	return 0
}

func TestFaultConnDeterministicSchedule(t *testing.T) {
	cfg := FaultConfig{Seed: 42, ResetProb: 0.05}
	first := firstFailure(cfg, 1000)
	if first == 0 {
		t.Fatal("fault schedule with ResetProb 0.05 never fired in 1000 ops")
	}
	for i := 0; i < 3; i++ {
		if got := firstFailure(cfg, 1000); got != first {
			t.Fatalf("schedule not deterministic: first failure at op %d, then %d", first, got)
		}
	}
	if got := firstFailure(FaultConfig{Seed: 43, ResetProb: 0.05}, 1000); got == first {
		t.Log("different seed produced the same first failure (possible but unlikely); not fatal")
	}
}

func TestFaultConnResetAfterOps(t *testing.T) {
	if got := firstFailure(FaultConfig{Seed: 1, ResetAfterOps: 7}, 100); got != 7 {
		t.Fatalf("ResetAfterOps 7: first failure at op %d, want 7", got)
	}
	fc := NewFaultConn(nopConn{}, FaultConfig{Seed: 1, ResetAfterOps: 1})
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("read after reset: %v, want ErrInjectedFault", err)
	}
	if _, err := fc.Write(make([]byte, 1)); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("conn did not stay broken: %v", err)
	}
}

func TestFaultConnPartialWrite(t *testing.T) {
	fc := NewFaultConn(nopConn{}, FaultConfig{Seed: 5, PartialWriteProb: 1})
	n, err := fc.Write(make([]byte, 10))
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("partial write err = %v, want ErrInjectedFault", err)
	}
	if n != 5 {
		t.Fatalf("partial write transmitted %d bytes, want 5", n)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjectedFault) {
		t.Fatal("conn usable after partial-write reset")
	}
}

func TestClientBackoffBounds(t *testing.T) {
	parts := testData(t, 1)
	c, err := NewClient(ClientConfig{
		Data: parts[0], Model: testModelConfig(), Trainer: testTrainer(),
		MaxRetries: 5, RetryBaseDelay: 10 * time.Millisecond, RetryMaxDelay: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 10; n++ {
		d := c.backoff(n)
		if d < 5*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("backoff(%d) = %v outside jittered [5ms, 120ms]", n, d)
		}
	}
	// Attempt 1 must stay near the base delay even with maximal jitter.
	if d := c.backoff(1); d > 15*time.Millisecond {
		t.Fatalf("backoff(1) = %v, want <= 15ms", d)
	}
}

// craftZero is a broken attack returning no deltas, to exercise the
// crafted-cardinality guard.
type craftZero struct{}

func (craftZero) Craft(honest [][]float64, r *rand.Rand) ([][]float64, error) {
	return nil, nil
}
func (craftZero) Name() string { return "craft-zero" }

func TestClientRejectsWrongCraftCardinality(t *testing.T) {
	parts := testData(t, 1)
	client, err := NewClient(ClientConfig{
		ID: 1, Data: parts[0], Model: testModelConfig(), Trainer: testTrainer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	client.atk = craftZero{}

	clientConn, serverConn := net.Pipe()
	defer serverConn.Close()
	go func() {
		dec := gob.NewDecoder(serverConn)
		enc := gob.NewEncoder(serverConn)
		var hello ClientMsg
		if err := dec.Decode(&hello); err != nil {
			return
		}
		m, err := model.New(testModelConfig())
		if err != nil {
			return
		}
		params := make([]float64, m.NumParams())
		m.Params(params)
		_ = enc.Encode(&ServerMsg{Task: &Task{Version: 0, Params: params}})
	}()

	err = client.RunConn(clientConn)
	clientConn.Close()
	if err == nil || !strings.Contains(err.Error(), "crafted") {
		t.Fatalf("RunConn with broken attack: err = %v, want crafted-cardinality error", err)
	}
}

func TestWatchdogAggregatesPartialBuffer(t *testing.T) {
	// One client can never fill an aggregation goal of 4; only the
	// watchdog lets the deployment finish.
	server, err := NewServer(ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: 4,
		Rounds:          2,
		ReadTimeout:     10 * time.Second,
		WriteTimeout:    10 * time.Second,
		RoundTimeout:    50 * time.Millisecond,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	// The protocol answers every update with a fresh task, so a fast
	// client would fill even a goal-4 buffer alone; the think time keeps
	// at most one update per watchdog window in flight.
	parts := testData(t, 1)
	client, err := NewClient(ClientConfig{
		ID: 0, Data: parts[0], Model: testModelConfig(), Trainer: testTrainer(), Seed: 9,
		ThinkTime: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = client.Run(lis.Addr().String()) }()

	select {
	case <-server.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("watchdog did not complete the deployment")
	}
	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	stats := server.Stats()
	if stats.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", stats.Rounds)
	}
	if stats.WatchdogRounds == 0 {
		t.Error("WatchdogRounds = 0, want > 0")
	}
}

func TestClientReconnectsWithConsistentAccounting(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: 1,
		Rounds:          3,
		ReadTimeout:     10 * time.Second,
		WriteTimeout:    10 * time.Second,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	parts := testData(t, 1)
	client, err := NewClient(ClientConfig{
		ID: 7, Data: parts[0], Model: testModelConfig(), Trainer: testTrainer(), Seed: 3,
		MaxRetries:     50,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  10 * time.Millisecond,
		// Every connection dies after 9 I/O ops — mid-deployment, so the
		// client must reconnect repeatedly to finish three rounds.
		Dial: FaultDialer(FaultConfig{Seed: 11, ResetAfterOps: 9}),
	})
	if err != nil {
		t.Fatal(err)
	}
	clientErr := make(chan error, 1)
	go func() { clientErr <- client.Run(lis.Addr().String()) }()

	select {
	case <-server.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("deployment with reconnecting client did not finish")
	}
	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	<-clientErr // completion or a final-connection error; both acceptable
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}

	stats := server.Stats()
	if stats.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", stats.Rounds)
	}
	if stats.ClientsConnected != 1 {
		t.Errorf("ClientsConnected = %d, want 1 (Hello double-counted)", stats.ClientsConnected)
	}
	if stats.Reconnects == 0 {
		t.Error("server saw no reconnects despite injected resets")
	}
	if client.Reconnects == 0 {
		t.Error("client recorded no reconnects despite injected resets")
	}
	if stats.UpdatesReceived < stats.Rounds {
		t.Errorf("UpdatesReceived = %d < rounds %d", stats.UpdatesReceived, stats.Rounds)
	}
}

func TestServerRejectsOversizeMessage(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams:   make([]float64, 8),
		AggregationGoal: 1,
		Rounds:          1,
		ReadTimeout:     5 * time.Second,
		MaxMessageBytes: 2048,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()
	defer func() {
		_ = server.Close()
		<-serveErr
	}()

	conn, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&ClientMsg{Hello: &Hello{ClientID: 1, NumSamples: 10}}); err != nil {
		t.Fatal(err)
	}
	var task ServerMsg
	if err := dec.Decode(&task); err != nil {
		t.Fatal(err)
	}
	// 16k floats ≈ 128KB on the wire: far past the 2KB budget.
	huge := ClientMsg{Update: &UpdateMsg{BaseVersion: 0, Delta: make([]float64, 16384)}}
	_ = enc.Encode(&huge) // the server closes the conn partway through

	deadline := time.Now().Add(5 * time.Second)
	for {
		stats := server.Stats()
		if stats.DroppedOversize >= 1 {
			if stats.UpdatesReceived != 0 {
				t.Errorf("oversize message still counted: UpdatesReceived = %d", stats.UpdatesReceived)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never rejected the oversize message: stats = %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// recordingFilter defers a chosen client's updates for deferRounds rounds
// and records the staleness each update carries into every filter call.
type recordingFilter struct {
	deferClient int
	deferRounds int
	seen        map[int][]int // clientID -> staleness per observed round
}

func (f *recordingFilter) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	decisions := make([]fl.Decision, len(updates))
	for i, u := range updates {
		f.seen[u.ClientID] = append(f.seen[u.ClientID], u.Staleness)
		if u.ClientID == f.deferClient && round <= f.deferRounds {
			decisions[i] = fl.Defer
		} else {
			decisions[i] = fl.Accept
		}
	}
	return fl.FilterResult{Decisions: decisions}, nil
}

func (f *recordingFilter) Name() string { return "recording" }

func TestDeferredStalenessRecomputedAtDrain(t *testing.T) {
	filter := &recordingFilter{deferClient: 99, deferRounds: 2, seen: map[int][]int{}}
	server, err := NewServer(ServerConfig{
		InitialParams:   []float64{0, 0},
		AggregationGoal: 2,
		StalenessLimit:  10,
		Rounds:          3,
	}, filter, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := &clientSession{id: 99, numSamples: 5}
	other := &clientSession{id: 1, numSamples: 5}

	// Round 1: the victim's update (base 0) arrives alongside a fresh one.
	server.receiveUpdate(victim, 0, []float64{1, 1})
	server.receiveUpdate(other, 0, []float64{1, 1})
	// Rounds 2 and 3: only fresh updates from the other client; the
	// victim's deferred update rides along in the buffer.
	server.receiveUpdate(other, 1, []float64{1, 1})
	server.receiveUpdate(other, 2, []float64{1, 1})

	if server.Version() != 3 {
		t.Fatalf("version = %d, want 3", server.Version())
	}
	// The deferred update trained from version 0, so by rounds 1, 2, 3
	// (versions 0, 1, 2 at drain) its staleness must read 0, 1, 2.
	want := []int{0, 1, 2}
	got := filter.seen[99]
	if len(got) != len(want) {
		t.Fatalf("victim observed %d times (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("victim staleness per round = %v, want %v", got, want)
		}
	}
}

func TestCloseRacesActiveHandlers(t *testing.T) {
	server, err := NewServer(ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: 3,
		Rounds:          1000, // never finishes naturally
		ReadTimeout:     10 * time.Second,
		WriteTimeout:    10 * time.Second,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	const numClients = 8
	parts := testData(t, numClients)
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		client, err := NewClient(ClientConfig{
			ID: i, Data: parts[i], Model: testModelConfig(), Trainer: testTrainer(), Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = client.Run(lis.Addr().String())
		}()
	}

	// Let a few aggregations happen mid-flight, then yank the server.
	deadline := time.Now().Add(5 * time.Second)
	for server.Version() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("clients did not unblock after Close")
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve after Close: %v", err)
	}
	stats := server.Stats()
	if terminal := stats.Accepted + stats.Rejected + stats.DroppedStale + stats.DroppedMalformed; terminal > stats.UpdatesReceived {
		t.Errorf("accounting: terminal outcomes %d > received %d", terminal, stats.UpdatesReceived)
	}
}

// evalAccuracy measures params on the shared synthetic test split.
func evalAccuracy(t *testing.T, params []float64) float64 {
	t.Helper()
	m, err := model.New(testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, test, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name: "t", NumClasses: 3, Dim: 8,
		TrainSize: 300, TestSize: 300,
		Separation: 4, Noise: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetParams(params)
	acc, _ := model.Evaluate(m, test)
	return acc
}

// runFlakyDeployment drives a full deployment where flaky of numClients
// clients dial through the fault harness, and returns the server.
func runFlakyDeployment(t *testing.T, numClients, flaky, goal, rounds int) *Server {
	t.Helper()
	server, err := NewServer(ServerConfig{
		InitialParams:   initialParams(t),
		AggregationGoal: goal,
		StalenessLimit:  10,
		Rounds:          rounds,
		ReadTimeout:     10 * time.Second,
		WriteTimeout:    10 * time.Second,
		MaxMessageBytes: 1 << 20,
		RoundTimeout:    300 * time.Millisecond,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()

	parts := testData(t, numClients)
	var wg sync.WaitGroup
	for i := 0; i < numClients; i++ {
		cfg := ClientConfig{
			ID: i, Data: parts[i], Model: testModelConfig(), Trainer: testTrainer(),
			Seed:           int64(100 + i),
			ThinkTime:      2 * time.Millisecond,
			MaxRetries:     40,
			RetryBaseDelay: time.Millisecond,
			RetryMaxDelay:  20 * time.Millisecond,
		}
		if i < flaky {
			// Every flaky connection dies mid-stream after six I/O ops
			// (roughly one task round-trip past the Hello), with
			// occasional random resets, slow reads and truncated writes
			// on top.
			cfg.Dial = FaultDialer(FaultConfig{
				Seed:             int64(1000 + i),
				ResetProb:        0.01,
				ResetAfterOps:    6,
				DelayProb:        0.2,
				Delay:            time.Millisecond,
				PartialWriteProb: 0.05,
			})
		}
		client, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = client.Run(lis.Addr().String())
		}()
	}

	select {
	case <-server.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("flaky deployment did not finish within 60s")
	}
	if err := server.Close(); err != nil {
		t.Logf("close: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	return server
}

func TestFlakyDeploymentStillConverges(t *testing.T) {
	const (
		numClients = 9
		flaky      = 3 // 33% of connections killed mid-round
		goal       = 4
		rounds     = 8
	)
	clean := runDeployment(t, nil, numClients, 0, goal, rounds)
	faulty := runFlakyDeployment(t, numClients, flaky, goal, rounds)

	if got := faulty.Version(); got != rounds {
		t.Fatalf("flaky deployment completed %d rounds, want %d", got, rounds)
	}
	stats := faulty.Stats()
	if stats.ClientsConnected != numClients {
		t.Errorf("ClientsConnected = %d, want %d", stats.ClientsConnected, numClients)
	}
	if stats.Reconnects == 0 {
		t.Error("no reconnects recorded despite fault injection")
	}
	if stats.Accepted == 0 {
		t.Error("no updates accepted")
	}
	if terminal := stats.Accepted + stats.Rejected + stats.DroppedStale + stats.DroppedMalformed; terminal > stats.UpdatesReceived {
		t.Errorf("accounting: terminal outcomes %d > received %d", terminal, stats.UpdatesReceived)
	}

	cleanAcc := evalAccuracy(t, clean.FinalParams())
	faultyAcc := evalAccuracy(t, faulty.FinalParams())
	t.Logf("clean accuracy %.3f, flaky accuracy %.3f", cleanAcc, faultyAcc)
	if faultyAcc < cleanAcc-0.15 {
		t.Errorf("flaky accuracy %.3f fell more than 0.15 below clean %.3f", faultyAcc, cleanAcc)
	}
}
