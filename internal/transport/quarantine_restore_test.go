package transport

import (
	"path/filepath"
	"testing"
	"time"
)

// TestRestoreKeepsQuarantineAndLeases is the kill-and-restore-under-attack
// regression for checkpointed admission control: a server that has
// quarantined a poisoner (and is mid-streak on a second one) is killed and
// rebuilt from its checkpoint. The restored server must refuse the known
// attacker without re-learning anything, keep the second attacker's
// rejection streak, and re-arm session leases from their remaining time.
func TestRestoreKeepsQuarantineAndLeases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "server.ckpt")
	mk := func(rejectID int) *Server {
		t.Helper()
		server, err := NewServer(ServerConfig{
			InitialParams:      []float64{0, 0},
			AggregationGoal:    1,
			Rounds:             100,
			QuarantineAfter:    2,
			QuarantineCooldown: time.Hour,
			LeaseDuration:      time.Hour,
			CheckpointPath:     path,
		}, &clientRejectFilter{rejectID: rejectID}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return server
	}
	submit := func(s *Server, sess *clientSession) admissionVerdict {
		return s.receiveUpdate(sess, s.Version(), []float64{1, 1})
	}

	server := mk(7)
	bad := server.register(&Hello{ClientID: 7, NumSamples: 5}, nil)
	streak := server.register(&Hello{ClientID: 9, NumSamples: 5}, nil)

	// Two rejections open client 7's breaker (goal 1: each admitted update
	// commits synchronously, feeding the breaker before the next).
	for i := 0; i < 2; i++ {
		if v := submit(server, bad); v.nack != 0 {
			t.Fatalf("rejection %d refused admission: %+v", i, v)
		}
	}
	if v := submit(server, bad); v.nack != NackQuarantined {
		t.Fatalf("pre-kill verdict = %+v, want NackQuarantined", v)
	}
	// Client 9 collects one rejection: mid-streak, breaker still closed.
	server.mu.Lock()
	server.filter.(*clientRejectFilter).rejectID = 9
	server.mu.Unlock()
	if v := submit(server, streak); v.nack != 0 {
		t.Fatalf("streak rejection refused admission: %+v", v)
	}

	// Kill: a graceful Close writes the final checkpoint.
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}

	restored := mk(9)
	if !restored.Restored() {
		t.Fatal("restored server did not load the checkpoint")
	}
	defer restored.Close()

	// The known attacker reconnects into a still-open breaker: refused
	// outright, no fresh rejections needed.
	bad2 := restored.register(&Hello{ClientID: 7, NumSamples: 5}, nil)
	v := submit(restored, bad2)
	if v.nack != NackQuarantined {
		t.Fatalf("post-restore verdict = %+v, want NackQuarantined", v)
	}
	if v.retryAfter <= 0 || v.retryAfter > time.Hour {
		t.Errorf("restored cooldown hint = %v, want in (0, 1h]", v.retryAfter)
	}

	// The mid-streak client needs only one more rejection, not a fresh
	// QuarantineAfter run: its streak survived the restart.
	streak2 := restored.register(&Hello{ClientID: 9, NumSamples: 5}, nil)
	if v := submit(restored, streak2); v.nack != 0 {
		t.Fatalf("post-restore streak rejection refused admission: %+v", v)
	}
	if v := submit(restored, streak2); v.nack != NackQuarantined {
		t.Fatalf("streak did not survive restore: verdict = %+v, want NackQuarantined", v)
	}

	// Lease bookkeeping came back as remaining time, re-armed at restore.
	restored.mu.Lock()
	lease := restored.sessions[7].leaseExpiry
	restored.mu.Unlock()
	if lease.IsZero() || !lease.After(time.Now()) {
		t.Errorf("restored lease expiry = %v, want a live future lease", lease)
	}
}
