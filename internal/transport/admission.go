package transport

import (
	"time"

	"github.com/asyncfl/asyncfilter/internal/fl"
)

// defaultQuarantineCooldown is used when QuarantineAfter is set but no
// cooldown was configured.
const defaultQuarantineCooldown = 30 * time.Second

// overloadRetryAfter is the pacing hint sent with NackOverloaded: the
// buffer is full of fresher work, so there is no point retrying before
// roughly a round's worth of drain time has passed.
const overloadRetryAfter = 200 * time.Millisecond

// admissionVerdict is the outcome of offering one update to the server.
// The zero value admits the update.
type admissionVerdict struct {
	// nack, when non-zero, is the typed refusal to send back (together
	// with the current task, so the client can back off and resume).
	nack NackCode
	// retryAfter is the pacing hint accompanying nack.
	retryAfter time.Duration
	// goodbye tells the handler to end the conversation with a Goodbye:
	// the server is draining.
	goodbye bool
}

// burst returns the effective token-bucket capacity.
func (s *Server) burst() float64 {
	if s.cfg.ClientBurst > 0 {
		return float64(s.cfg.ClientBurst)
	}
	return 1
}

// quarantineCooldown returns the effective quarantine cooldown.
func (s *Server) quarantineCooldown() time.Duration {
	if s.cfg.QuarantineCooldown > 0 {
		return s.cfg.QuarantineCooldown
	}
	return defaultQuarantineCooldown
}

// receiveUpdate runs admission control on one update and buffers it on
// success, then aggregates (outside the lock) when the goal is hit. The
// admission pipeline, in order: drain gate, dimension check, quarantine
// circuit breaker, per-client rate limit, staleness limit, and the
// bounded in-flight budget with staleness-aware shedding. All decisions
// happen under s.mu; replies are the caller's job, outside the lock.
//
// Ownership of delta transfers to the server: an admitted update carries
// it into the buffer (and the arena recycles it when the round that
// drains it commits), a refused one is recycled here. Callers must not
// touch delta after this call.
//
//afl:owned
func (s *Server) receiveUpdate(sess *clientSession, baseVersion int, delta []float64) admissionVerdict {
	now := time.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.arena.PutVec(delta)
		return admissionVerdict{goodbye: true}
	}
	if s.finished {
		s.mu.Unlock()
		s.arena.PutVec(delta)
		return admissionVerdict{}
	}
	s.stats.UpdatesReceived++
	if len(delta) != len(s.global) {
		s.stats.DroppedMalformed++
		s.mu.Unlock()
		s.arena.PutVec(delta)
		return admissionVerdict{}
	}
	if s.cfg.LeaseDuration > 0 {
		sess.leaseExpiry = now.Add(s.cfg.LeaseDuration)
	}

	// Quarantine circuit breaker: an open breaker refuses outright; an
	// expired one admits this update as the half-open probe.
	if s.cfg.QuarantineAfter > 0 && !sess.quarantinedUntil.IsZero() {
		if now.Before(sess.quarantinedUntil) {
			s.stats.DroppedQuarantined++
			s.stats.NacksSent++
			retry := sess.quarantinedUntil.Sub(now)
			s.mu.Unlock()
			s.arena.PutVec(delta)
			return admissionVerdict{nack: NackQuarantined, retryAfter: retry}
		}
		sess.quarantinedUntil = time.Time{}
		sess.halfOpen = true
	}

	// Per-client token bucket.
	if s.cfg.ClientRateLimit > 0 {
		sess.refill(now, s.cfg.ClientRateLimit, s.burst())
		if sess.tokens < 1 {
			s.stats.DroppedRateLimited++
			s.stats.NacksSent++
			retry := time.Duration((1 - sess.tokens) / s.cfg.ClientRateLimit * float64(time.Second))
			s.mu.Unlock()
			s.arena.PutVec(delta)
			return admissionVerdict{nack: NackRateLimited, retryAfter: retry}
		}
		sess.tokens--
	}

	update := s.arena.GetUpdate()
	update.ClientID = sess.id
	update.BaseVersion = baseVersion
	update.Staleness = s.version - baseVersion
	update.Delta = delta
	update.NumSamples = sess.weight()

	// Bounded in-flight budget with staleness-aware shedding: the stalest
	// work is the least valuable to the model and the most filter-hostile,
	// so it is the first to go. When the incoming update is itself the
	// stalest candidate (its BaseVersion is at or below everything
	// buffered), shedding stalest-first means dropping it.
	var shed []*fl.Update
	shedVersion := s.version
	if s.cfg.MaxPendingUpdates > 0 && s.buffer.Len() >= s.cfg.MaxPendingUpdates {
		if oldest, ok := s.buffer.OldestBase(); ok && update.BaseVersion <= oldest {
			s.stats.DroppedShed++
			s.stats.NacksSent++
			s.mu.Unlock()
			s.observeShed(shedVersion, []*fl.Update{update})
			s.recycleShed([]*fl.Update{update})
			return admissionVerdict{nack: NackOverloaded, retryAfter: overloadRetryAfter}
		}
		shed = s.buffer.Shed(s.buffer.Len() - s.cfg.MaxPendingUpdates + 1)
		s.stats.DroppedShed += len(shed)
	}

	// Buffer.Add adopts the update on success; a staleness drop leaves
	// ownership here and the memory goes straight back to the arena.
	added := s.buffer.Add(update)
	if !added {
		s.stats.DroppedStale++
	} else {
		s.lastProgress = time.Now()
	}
	s.mu.Unlock()

	if !added {
		s.arena.PutUpdate(update)
	}
	s.observeShed(shedVersion, shed)
	s.recycleShed(shed)
	if added {
		s.maybeAggregate(forceNone)
	}
	return admissionVerdict{}
}

// recycleShed returns shed updates to the arena — unless the shed
// observer test hook is installed, in which case the hook keeps them.
// Runs without s.mu held, after observeShed. Callers transfer ownership
// of the shed updates: they must not touch them after this call.
//
//afl:owned
func (s *Server) recycleShed(shed []*fl.Update) {
	if s.shedObserver != nil {
		return
	}
	for _, u := range shed {
		s.arena.PutUpdate(u)
	}
}

// observeShed recomputes the true staleness of shed updates against the
// version at shed time and delivers them to the test hook. Runs without
// s.mu held.
func (s *Server) observeShed(version int, shed []*fl.Update) {
	if s.shedObserver == nil || len(shed) == 0 {
		return
	}
	for _, u := range shed {
		u.Staleness = version - u.BaseVersion
	}
	s.shedObserver(version, shed)
}

// noteFilterOutcomesLocked feeds a committed round's filter decisions to
// the quarantine circuit breakers: an accepted update closes its client's
// breaker and resets the rejection streak, a rejected one extends the
// streak and — at QuarantineAfter consecutive rejections, or immediately
// for a failed half-open probe — opens the breaker for the cooldown.
// Callers hold s.mu.
func (s *Server) noteFilterOutcomesLocked(accepted, rejected []*fl.Update) {
	if s.cfg.QuarantineAfter <= 0 {
		return
	}
	now := time.Now()
	for _, u := range accepted {
		if sess := s.sessions[u.ClientID]; sess != nil {
			sess.consecRejects = 0
			sess.halfOpen = false
		}
	}
	for _, u := range rejected {
		sess := s.sessions[u.ClientID]
		if sess == nil {
			continue
		}
		sess.consecRejects++
		if sess.halfOpen || sess.consecRejects >= s.cfg.QuarantineAfter {
			sess.quarantinedUntil = now.Add(s.quarantineCooldown())
			sess.halfOpen = false
			sess.consecRejects = 0
			s.stats.QuarantinedClients++
		}
	}
}
