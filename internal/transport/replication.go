package transport

import "fmt"

// This file defines the primary<->standby replication protocol of the
// replicated root (internal/replica). Like the upstream protocol it lives
// in transport so the envelope shares the full wire hardening: the
// byte-budget limitReader, per-operation deadlines, the fuzz harness
// (fuzz_replica_test.go) and the flat-envelope shape discipline.
//
// The protocol is strict push-reply, mirroring the upstream protocol's
// single-writer-per-side structure but with the roles swapped: the
// standby opens the connection and sends one ReplicaMsg Hello, then the
// PRIMARY drives — it pushes one PrimaryMsg at a time (a full snapshot,
// an incremental log record, or an idle heartbeat) and the standby
// answers each push with exactly one ReplicaMsg acknowledgement.
//
//	standby -> primary: Hello, then one ack per push
//	primary -> standby: (Snapshot | Record | Heartbeat)*
//
// Replication is log-shipping over the root's committed batches: every
// batch the primary applies becomes one ReplRecord with a sequence number
// equal to the resulting global model version, so the record stream IS
// the version history and a standby at seq S needs exactly the records
// S+1, S+2, ... to catch up. A standby that attaches too far behind the
// primary's in-memory record ring receives a full checkpoint snapshot
// (the internal/checkpoint container, CRC-guarded) and resumes the log
// from the snapshot's version.
//
// Every message in both directions carries the sender's fencing epoch.
// An epoch is bumped exactly once per promotion and never reused, so
// whichever side observes a higher epoch than its own knows it is stale:
// a stale primary answers with NackFenced and demotes itself, a stale
// standby adopts the higher epoch. See internal/replica for the fencing
// invariant.
//
// The same listener also carries the quorum election protocol, a strict
// request-reply exchange between replica-group peers: a candidate whose
// lease expired opens a connection and sends one ReplicaMsg carrying a
// VoteRequest instead of a Hello; the voter answers with exactly one
// PrimaryMsg carrying a VoteGrant and the connection closes. A voter
// persists its grant (raise-only per epoch, internal/checkpoint format)
// BEFORE the grant leaves the wire, so a voter that crashes and restarts
// can never hand the same epoch to a second candidate.

// ReplHello introduces a standby to the primary it wants to stream from.
type ReplHello struct {
	// NodeID identifies the standby (unique per replication group, >= 0).
	NodeID int
	// Epoch is the highest fencing epoch the standby has observed.
	Epoch uint64
	// NextSeq is the first log sequence number the standby is missing
	// (its applied version + 1). The primary resumes the stream there
	// when its record ring still covers it, and sends a full snapshot
	// otherwise.
	NextSeq uint64
	// FullSync demands a snapshot regardless of NextSeq — a standby
	// whose incremental apply failed mid-record (model ahead of filter)
	// must be re-grounded rather than streamed to.
	FullSync bool
}

// ReplRecord is one incremental replication log record: everything a
// standby must apply to mirror one committed batch on the primary.
type ReplRecord struct {
	// Seq is the log sequence number — the primary's global model version
	// after applying the batch. Records are applied strictly in order.
	Seq uint64
	// Epoch is the primary's fencing epoch when the batch committed.
	Epoch uint64
	// EdgeID and BatchID advance the per-edge idempotency watermark on
	// the standby, so a promoted standby answers replayed batches with a
	// bare ack exactly as the dead primary would have.
	EdgeID  int
	BatchID uint64
	// EdgeAddr is the edge's client-facing address (shard-map entry).
	EdgeAddr string
	// ShardVersion is the primary's shard-map version at commit time.
	ShardVersion int
	// Delta is the combined model delta the batch contributed (nil when
	// every update was rejected or deferred).
	Delta []float64
	// Accepted, Deferred and Rejected are the filter verdict counts of
	// the batch, mirrored into the standby's stats.
	Accepted, Deferred, Rejected int
	// FilterState, when non-nil, carries the primary's root-filter
	// detection state: an incremental CMA delta since the previous record
	// (mergeable via internal/core/merge) unless FilterFull is set, in
	// which case it is a complete snapshot to restore. Both are the
	// fl.StateSnapshotter gob payload.
	FilterState []byte
	// FilterFull marks FilterState as a complete snapshot rather than a
	// mergeable delta (the first record of a stream, or a batch whose
	// state change had no exact delta).
	FilterFull bool
}

// VoteRequest asks a replica-group peer for its vote in a quorum
// election. A candidate may only enter RolePromoting after a majority of
// the configured group has granted it the same epoch.
type VoteRequest struct {
	// CandidateID is the requesting node's id (unique per group, >= 0).
	CandidateID int
	// Epoch is the fencing epoch the candidate wants to promote under —
	// strictly above every epoch it has observed or voted in.
	Epoch uint64
	// LastSeq is the candidate's applied log position. Voters refuse
	// candidates behind their own position, so the most-caught-up standby
	// wins ties and RecordsLostOnPromote shrinks.
	LastSeq uint64
}

// Validate checks a received vote request before the voter consults its
// ledger.
func (v *VoteRequest) Validate() error {
	if v == nil {
		return fmt.Errorf("transport: VoteRequest: nil")
	}
	if v.CandidateID < 0 {
		return fmt.Errorf("transport: VoteRequest: CandidateID = %d, need >= 0", v.CandidateID)
	}
	if v.Epoch == 0 {
		return fmt.Errorf("transport: VoteRequest: Epoch = 0, need >= 1")
	}
	return nil
}

// VoteGrant is the voter's reply to a VoteRequest. Granted is only set
// after the voter has durably recorded the (epoch, candidate) pair, so
// each voter hands out at most one grant per epoch across restarts.
type VoteGrant struct {
	// VoterID identifies the voter; candidates count grants by distinct
	// voter, never by connection.
	VoterID int
	// Granted reports whether the voter's ledger accepted the request.
	Granted bool
	// Epoch echoes the requested epoch when granted; on refusal it is the
	// highest epoch the voter has granted or observed, letting a stale
	// candidate pick a higher target for its next attempt.
	Epoch uint64
	// LastSeq is the voter's own applied log position (diagnostics: a
	// refused candidate can see how far behind it was).
	LastSeq uint64
}

// PrimaryMsg is the primary->standby envelope: one per exchange, pushed
// by the primary. Flat on purpose; see the package note in upstream.go.
type PrimaryMsg struct {
	// Snapshot, when non-nil, is the primary's full durable state in the
	// internal/checkpoint container format (the same bytes a root
	// checkpoint file holds). The standby replaces its state with it.
	Snapshot []byte
	// Record, when non-nil, is the next incremental log record.
	Record *ReplRecord
	// Heartbeat keeps the standby's promotion lease renewed while no
	// batches are flowing.
	Heartbeat bool
	// Epoch is the primary's current fencing epoch.
	Epoch uint64
	// LatestSeq is the primary's newest log sequence number, letting the
	// standby compute its replication lag on every exchange.
	LatestSeq uint64
	// Nack, when non-zero, refuses the standby (NackFenced: the standby's
	// epoch proves this primary is stale and it is demoting itself;
	// NackMalformed: a broken Hello).
	Nack NackCode
	// Goodbye signals the primary is shutting down cleanly.
	Goodbye bool
	// Grant, when non-nil, answers a ReplicaMsg VoteRequest; it is the
	// only message of a vote exchange's reply direction.
	Grant *VoteGrant
}

// ReplicaMsg is the standby->primary envelope: the initial Hello, then
// one acknowledgement per primary push.
type ReplicaMsg struct {
	Hello *ReplHello
	// AckSeq is the highest log sequence number the standby has durably
	// applied. The primary uses it for lag accounting and ring trimming.
	AckSeq uint64
	// Epoch is the highest fencing epoch the standby has observed. A
	// primary that sees an epoch above its own has been superseded and
	// demotes itself.
	Epoch uint64
	// Vote, when non-nil, makes this connection a one-shot vote exchange
	// instead of a replication session: the peer answers with a single
	// PrimaryMsg Grant and both sides hang up.
	Vote *VoteRequest
}

// Validate checks a received hello before the primary registers the
// standby.
func (h *ReplHello) Validate() error {
	if h == nil {
		return fmt.Errorf("transport: ReplHello: nil")
	}
	if h.NodeID < 0 {
		return fmt.Errorf("transport: ReplHello: NodeID = %d, need >= 0", h.NodeID)
	}
	if h.NextSeq == 0 {
		return fmt.Errorf("transport: ReplHello: NextSeq = 0, need >= 1")
	}
	return nil
}

// ReadReplica decodes the next standby->primary envelope (primary side).
//
//afl:hotpath
func (u *UpstreamConn) ReadReplica() (*ReplicaMsg, error) {
	u.armRead()
	if err := u.ensureSniffed(); err != nil {
		return nil, err
	}
	if u.bin != nil {
		return u.bin.readReplicaMsg()
	}
	u.lim.reset()
	var msg ReplicaMsg
	if err := u.dec.Decode(&msg); err != nil {
		return nil, err
	}
	return &msg, nil
}

// WritePrimary encodes one primary->standby push (primary side).
//
//afl:hotpath
func (u *UpstreamConn) WritePrimary(msg *PrimaryMsg) error {
	if u.sniffPending {
		return errWriteBeforeSniff
	}
	u.armWrite()
	if u.bin != nil {
		return u.bin.writePrimaryMsg(msg)
	}
	return u.enc.Encode(msg)
}

// ReadPrimary decodes the next primary->standby envelope (standby side).
//
//afl:hotpath
func (u *UpstreamConn) ReadPrimary() (*PrimaryMsg, error) {
	u.armRead()
	if err := u.ensureSniffed(); err != nil {
		return nil, err
	}
	if u.bin != nil {
		//lint:ignore hotalloc the binary decode materializes one log record's delta per push; the standby applies it to its shadow state and drops the slice
		return u.bin.readPrimaryMsg()
	}
	u.lim.reset()
	var msg PrimaryMsg
	if err := u.dec.Decode(&msg); err != nil {
		return nil, err
	}
	return &msg, nil
}

// WriteReplica encodes one standby->primary message (standby side).
//
//afl:hotpath
func (u *UpstreamConn) WriteReplica(msg *ReplicaMsg) error {
	if u.sniffPending {
		return errWriteBeforeSniff
	}
	u.armWrite()
	if u.bin != nil {
		return u.bin.writeReplicaMsg(msg)
	}
	return u.enc.Encode(msg)
}
