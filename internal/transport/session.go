package transport

import "net"

// clientSession is the server-side identity of one client across however
// many TCP connections it opens. A client that reconnects after a network
// fault resumes its existing session: its Hello weight is not
// double-counted and the stale connection is torn down so at most one
// handler speaks for a client ID at a time.
type clientSession struct {
	id         int
	numSamples int
	// conn is the connection currently owned by this session (nil when
	// the client is disconnected). Guarded by Server.mu.
	conn net.Conn
}

// weight returns the aggregation weight for this client's updates.
// Callers hold Server.mu.
func (c *clientSession) weight() int { return c.numSamples }

// trackConn registers a live connection for shutdown teardown. It reports
// false when the server is already finished, in which case the caller
// should drop the connection immediately.
func (s *Server) trackConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

// untrackConn forgets a connection that finished handling.
func (s *Server) untrackConn(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

// register resolves a Hello to the client's session, creating it on first
// contact. On reconnect the previous connection (if any) is closed so the
// superseded handler exits, and the sample count is refreshed only from a
// non-zero Hello so a hasty reconnect cannot zero the client's weight.
func (s *Server) register(h *Hello, conn net.Conn) *clientSession {
	s.mu.Lock()
	sess, ok := s.sessions[h.ClientID]
	if !ok {
		sess = &clientSession{id: h.ClientID, numSamples: h.NumSamples}
		s.sessions[h.ClientID] = sess
		s.stats.ClientsConnected++
	} else {
		s.stats.Reconnects++
		if h.NumSamples > 0 {
			sess.numSamples = h.NumSamples
		}
	}
	old := sess.conn
	sess.conn = conn
	s.mu.Unlock()

	if old != nil && old != conn {
		_ = old.Close()
	}
	return sess
}

// release detaches conn from its session when a handler exits. A newer
// connection that already took over the session is left untouched.
func (s *Server) release(sess *clientSession, conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess.conn == conn {
		sess.conn = nil
	}
}
