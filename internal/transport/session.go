package transport

import (
	"net"
	"time"
)

// clientSession is the server-side identity of one client across however
// many TCP connections it opens. A client that reconnects after a network
// fault resumes its existing session: its Hello weight is not
// double-counted and the stale connection is torn down so at most one
// handler speaks for a client ID at a time. All fields besides id are
// guarded by Server.mu.
type clientSession struct {
	id         int
	numSamples int
	// conn is the connection currently owned by this session (nil when
	// the client is disconnected).
	conn net.Conn
	// leaseExpiry is when the session's lease runs out; the lease sweeper
	// evicts sessions past it. Zero when leases are disabled or the
	// client is disconnected.
	leaseExpiry time.Time
	// tokens and lastRefill implement the per-client token-bucket rate
	// limit: tokens accrue at ClientRateLimit per second up to the burst
	// capacity, and each admitted update spends one.
	tokens     float64
	lastRefill time.Time
	// consecRejects counts consecutive filter-rejected submissions; at
	// QuarantineAfter the circuit breaker opens.
	consecRejects int
	// quarantinedUntil is when an open circuit breaker allows its
	// half-open probe (zero = closed breaker).
	quarantinedUntil time.Time
	// halfOpen marks the probe state: the next filter verdict decides
	// whether the breaker closes or re-opens.
	halfOpen bool
}

// weight returns the aggregation weight for this client's updates.
// Callers hold Server.mu.
func (c *clientSession) weight() int { return c.numSamples }

// refill accrues rate-limit tokens for the elapsed time since the last
// refill, capped at the burst capacity. Callers hold Server.mu.
func (c *clientSession) refill(now time.Time, rate, burst float64) {
	if c.lastRefill.IsZero() {
		c.tokens = burst
	} else if elapsed := now.Sub(c.lastRefill); elapsed > 0 {
		c.tokens += elapsed.Seconds() * rate
		if c.tokens > burst {
			c.tokens = burst
		}
	}
	c.lastRefill = now
}

// trackConn registers a live connection for shutdown teardown. It reports
// false when the server is already finished, in which case the caller
// should drop the connection immediately.
func (s *Server) trackConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

// untrackConn forgets a connection that finished handling.
func (s *Server) untrackConn(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

// register resolves a Hello to the client's session, creating it on first
// contact. On reconnect the previous connection (if any) is closed so the
// superseded handler exits, and the sample count is refreshed only from a
// non-zero Hello so a hasty reconnect cannot zero the client's weight.
// Registration starts (or renews) the session lease.
func (s *Server) register(h *Hello, conn net.Conn) *clientSession {
	s.mu.Lock()
	sess, ok := s.sessions[h.ClientID]
	if !ok {
		sess = &clientSession{id: h.ClientID, numSamples: h.NumSamples}
		s.sessions[h.ClientID] = sess
		s.stats.ClientsConnected++
	} else {
		s.stats.Reconnects++
		if h.NumSamples > 0 {
			sess.numSamples = h.NumSamples
		}
	}
	old := sess.conn
	sess.conn = conn
	if s.cfg.LeaseDuration > 0 {
		sess.leaseExpiry = time.Now().Add(s.cfg.LeaseDuration)
	}
	s.mu.Unlock()

	if old != nil && old != conn {
		_ = old.Close()
	}
	return sess
}

// release detaches conn from its session when a handler exits. A newer
// connection that already took over the session is left untouched.
func (s *Server) release(sess *clientSession, conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess.conn == conn {
		sess.conn = nil
		sess.leaseExpiry = time.Time{}
	}
}

// watchLeases is the lease sweeper: a dead client — one that stopped
// sending updates and heartbeats without a TCP reset — is evicted within
// roughly a lease period, freeing its connection and in-flight
// accounting, instead of lingering until a blocking read happens to time
// out. Started once from Serve when LeaseDuration > 0; exits when the
// deployment completes, the server closes, or Serve exits (stop).
func (s *Server) watchLeases(stop <-chan struct{}) {
	defer s.wg.Done()
	ticker := time.NewTicker(clampTick(s.cfg.LeaseDuration / 4))
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-stop:
			return
		case <-ticker.C:
			s.evictExpiredLeases(time.Now())
		}
	}
}

// evictExpiredLeases closes the connections of sessions whose lease
// expired. The connection close is performed outside s.mu; the handler
// owning the connection observes the close as a read error and exits
// through its usual teardown (release, untrackConn).
func (s *Server) evictExpiredLeases(now time.Time) {
	defer s.recoverPanic("lease sweep")
	s.mu.Lock()
	var victims []net.Conn
	for _, sess := range s.sessions {
		if sess.conn != nil && !sess.leaseExpiry.IsZero() && now.After(sess.leaseExpiry) {
			victims = append(victims, sess.conn)
			sess.conn = nil
			sess.leaseExpiry = time.Time{}
			s.stats.ExpiredLeases++
		}
	}
	s.mu.Unlock()
	for _, conn := range victims {
		_ = conn.Close()
	}
}
