package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/asyncfl/asyncfilter/internal/randx"
)

// ErrInjectedFault is the error surfaced by a FaultConn when it resets the
// connection. Peers observe an ordinary connection error (closed socket).
var ErrInjectedFault = errors.New("transport: injected connection fault")

// FaultConfig parameterizes deterministic fault injection on a net.Conn.
// All probabilities are per I/O operation and drawn from a private RNG
// seeded with Seed, so a given config replays the same fault schedule.
type FaultConfig struct {
	// Seed drives the fault schedule.
	Seed int64
	// ResetProb is the probability that an operation resets the
	// connection: the underlying conn is closed and ErrInjectedFault is
	// returned, now and for every later operation.
	ResetProb float64
	// ResetAfterOps unconditionally resets the connection after this many
	// combined reads+writes (0 disables) — a deterministic mid-stream
	// crash.
	ResetAfterOps int
	// DelayProb is the probability that an operation first sleeps for
	// Delay, simulating a slow or congested link.
	DelayProb float64
	// Delay is the injected latency for delayed operations.
	Delay time.Duration
	// PartialWriteProb is the probability that a write transmits only a
	// prefix of its buffer before resetting the connection, leaving the
	// peer a truncated gob message.
	PartialWriteProb float64
	// DupWriteProb is the probability that a write's payload is
	// transmitted twice back-to-back — a retransmitting middlebox
	// delivering a duplicate message.
	DupWriteProb float64
	// ReorderWriteProb is the probability that a write is held back and
	// transmitted after the next write instead, delivering two messages
	// out of order. A held payload that never sees a next write is
	// discarded on Close (it was "lost in flight").
	ReorderWriteProb float64
	// DropWriteProb is the probability that a write is silently swallowed
	// while still reported as successful — the outbound half of an
	// asymmetric partition: the peer stops hearing from us but we keep
	// hearing from them.
	DropWriteProb float64
	// StallReadsAfterOps arms a one-shot inbound stall: once this many
	// combined reads+writes have run (0 disables), the next read first
	// blocks for StallDuration — the inbound half of an asymmetric
	// partition, exercising read deadlines and lease expiry.
	StallReadsAfterOps int
	// StallDuration is how long the stalled read blocks before
	// proceeding normally.
	StallDuration time.Duration
}

// FaultConn wraps a net.Conn with injectable drops, delays, partial writes
// and mid-stream resets for testing transport robustness. Safe for the
// usual one-reader/one-writer connection usage.
type FaultConn struct {
	net.Conn
	cfg FaultConfig

	mu      sync.Mutex
	rng     *rand.Rand
	ops     int
	broken  bool
	stalled bool   // the one-shot read stall already fired
	held    []byte // payload parked by a reorder fault, awaiting the next write
}

// NewFaultConn wraps conn with fault injection.
func NewFaultConn(conn net.Conn, cfg FaultConfig) *FaultConn {
	return &FaultConn{
		Conn: conn,
		cfg:  cfg,
		rng:  randx.New(cfg.Seed),
	}
}

// fault rolls the fault schedule for one operation. It returns the number
// of bytes a write may transmit (limit < n means partial write then
// reset), or a non-nil error when the connection resets outright.
func (f *FaultConn) fault(isWrite bool, n int) (int, error) {
	f.mu.Lock()
	if f.broken {
		f.mu.Unlock()
		return 0, ErrInjectedFault
	}
	f.ops++
	var delay time.Duration
	if f.cfg.DelayProb > 0 && f.rng.Float64() < f.cfg.DelayProb {
		delay = f.cfg.Delay
	}
	if !isWrite && !f.stalled && f.cfg.StallReadsAfterOps > 0 &&
		f.ops >= f.cfg.StallReadsAfterOps {
		f.stalled = true
		delay += f.cfg.StallDuration
	}
	reset := f.cfg.ResetAfterOps > 0 && f.ops >= f.cfg.ResetAfterOps
	if !reset && f.cfg.ResetProb > 0 && f.rng.Float64() < f.cfg.ResetProb {
		reset = true
	}
	limit := n
	if isWrite && !reset && f.cfg.PartialWriteProb > 0 && n > 1 &&
		f.rng.Float64() < f.cfg.PartialWriteProb {
		limit = n / 2
		reset = true // the remainder of the message is lost
	}
	if reset {
		f.broken = true
	}
	f.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if reset && limit == n {
		_ = f.Conn.Close()
		return 0, ErrInjectedFault
	}
	return limit, nil
}

// Read implements net.Conn.
func (f *FaultConn) Read(p []byte) (int, error) {
	if _, err := f.fault(false, len(p)); err != nil {
		return 0, err
	}
	return f.Conn.Read(p)
}

// writeShuffle rolls the delivery-mangling faults for one write: drop
// (swallow silently), hold (park the payload for reordering), dup
// (transmit twice). It also releases any previously held payload, which
// the caller must transmit after the current one — that inversion is the
// reorder. Decisions happen under the lock; all I/O stays with the
// caller.
func (f *FaultConn) writeShuffle(p []byte) (drop, hold, dup bool, release []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.DropWriteProb > 0 && f.rng.Float64() < f.cfg.DropWriteProb {
		return true, false, false, nil
	}
	release = f.held
	f.held = nil
	if release == nil && f.cfg.ReorderWriteProb > 0 &&
		f.rng.Float64() < f.cfg.ReorderWriteProb {
		f.held = append([]byte(nil), p...)
		return false, true, false, nil
	}
	dup = f.cfg.DupWriteProb > 0 && f.rng.Float64() < f.cfg.DupWriteProb
	return false, false, dup, release
}

// Write implements net.Conn. A partial-write fault transmits a prefix,
// closes the underlying connection and reports ErrInjectedFault. Drop,
// reorder and dup faults mangle delivery while reporting success, the
// way a lossy or retransmitting network path would.
func (f *FaultConn) Write(p []byte) (int, error) {
	limit, err := f.fault(true, len(p))
	if err != nil {
		return 0, err
	}
	if limit < len(p) {
		n, _ := f.Conn.Write(p[:limit])
		_ = f.Conn.Close()
		return n, ErrInjectedFault
	}
	drop, hold, dup, release := f.writeShuffle(p)
	if drop || hold {
		// Swallowed or parked: the caller sees an ordinary success, the
		// peer sees nothing (yet).
		return len(p), nil
	}
	n, err := f.Conn.Write(p)
	if err != nil {
		return n, err
	}
	if release != nil {
		if _, err := f.Conn.Write(release); err != nil {
			return n, err
		}
	}
	if dup {
		if _, err := f.Conn.Write(p); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Close implements net.Conn. A payload still held for reordering is
// discarded — it was lost in flight.
func (f *FaultConn) Close() error {
	f.mu.Lock()
	f.broken = true
	f.held = nil
	f.mu.Unlock()
	return f.Conn.Close()
}

// FaultDialer returns a dial function (pluggable via ClientConfig.Dial)
// whose connections inject faults per cfg. Each successive connection gets
// an independent schedule derived from cfg.Seed, so reconnect paths are
// exercised deterministically.
func FaultDialer(cfg FaultConfig) func(addr string) (net.Conn, error) {
	var mu sync.Mutex
	attempt := int64(0)
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("transport: fault dial: %w", err)
		}
		mu.Lock()
		attempt++
		connCfg := cfg
		connCfg.Seed = cfg.Seed + attempt*7919
		mu.Unlock()
		return NewFaultConn(conn, connCfg), nil
	}
}
