package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/asyncfl/asyncfilter/internal/randx"
)

// ErrInjectedFault is the error surfaced by a FaultConn when it resets the
// connection. Peers observe an ordinary connection error (closed socket).
var ErrInjectedFault = errors.New("transport: injected connection fault")

// FaultConfig parameterizes deterministic fault injection on a net.Conn.
// All probabilities are per I/O operation and drawn from a private RNG
// seeded with Seed, so a given config replays the same fault schedule.
type FaultConfig struct {
	// Seed drives the fault schedule.
	Seed int64
	// ResetProb is the probability that an operation resets the
	// connection: the underlying conn is closed and ErrInjectedFault is
	// returned, now and for every later operation.
	ResetProb float64
	// ResetAfterOps unconditionally resets the connection after this many
	// combined reads+writes (0 disables) — a deterministic mid-stream
	// crash.
	ResetAfterOps int
	// DelayProb is the probability that an operation first sleeps for
	// Delay, simulating a slow or congested link.
	DelayProb float64
	// Delay is the injected latency for delayed operations.
	Delay time.Duration
	// PartialWriteProb is the probability that a write transmits only a
	// prefix of its buffer before resetting the connection, leaving the
	// peer a truncated gob message.
	PartialWriteProb float64
}

// FaultConn wraps a net.Conn with injectable drops, delays, partial writes
// and mid-stream resets for testing transport robustness. Safe for the
// usual one-reader/one-writer connection usage.
type FaultConn struct {
	net.Conn
	cfg FaultConfig

	mu     sync.Mutex
	rng    *rand.Rand
	ops    int
	broken bool
}

// NewFaultConn wraps conn with fault injection.
func NewFaultConn(conn net.Conn, cfg FaultConfig) *FaultConn {
	return &FaultConn{
		Conn: conn,
		cfg:  cfg,
		rng:  randx.New(cfg.Seed),
	}
}

// fault rolls the fault schedule for one operation. It returns the number
// of bytes a write may transmit (limit < n means partial write then
// reset), or a non-nil error when the connection resets outright.
func (f *FaultConn) fault(isWrite bool, n int) (int, error) {
	f.mu.Lock()
	if f.broken {
		f.mu.Unlock()
		return 0, ErrInjectedFault
	}
	f.ops++
	var delay time.Duration
	if f.cfg.DelayProb > 0 && f.rng.Float64() < f.cfg.DelayProb {
		delay = f.cfg.Delay
	}
	reset := f.cfg.ResetAfterOps > 0 && f.ops >= f.cfg.ResetAfterOps
	if !reset && f.cfg.ResetProb > 0 && f.rng.Float64() < f.cfg.ResetProb {
		reset = true
	}
	limit := n
	if isWrite && !reset && f.cfg.PartialWriteProb > 0 && n > 1 &&
		f.rng.Float64() < f.cfg.PartialWriteProb {
		limit = n / 2
		reset = true // the remainder of the message is lost
	}
	if reset {
		f.broken = true
	}
	f.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if reset && limit == n {
		_ = f.Conn.Close()
		return 0, ErrInjectedFault
	}
	return limit, nil
}

// Read implements net.Conn.
func (f *FaultConn) Read(p []byte) (int, error) {
	if _, err := f.fault(false, len(p)); err != nil {
		return 0, err
	}
	return f.Conn.Read(p)
}

// Write implements net.Conn. A partial-write fault transmits a prefix,
// closes the underlying connection and reports ErrInjectedFault.
func (f *FaultConn) Write(p []byte) (int, error) {
	limit, err := f.fault(true, len(p))
	if err != nil {
		return 0, err
	}
	if limit < len(p) {
		n, _ := f.Conn.Write(p[:limit])
		_ = f.Conn.Close()
		return n, ErrInjectedFault
	}
	return f.Conn.Write(p)
}

// Close implements net.Conn.
func (f *FaultConn) Close() error {
	f.mu.Lock()
	f.broken = true
	f.mu.Unlock()
	return f.Conn.Close()
}

// FaultDialer returns a dial function (pluggable via ClientConfig.Dial)
// whose connections inject faults per cfg. Each successive connection gets
// an independent schedule derived from cfg.Seed, so reconnect paths are
// exercised deterministically.
func FaultDialer(cfg FaultConfig) func(addr string) (net.Conn, error) {
	var mu sync.Mutex
	attempt := int64(0)
	return func(addr string) (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("transport: fault dial: %w", err)
		}
		mu.Lock()
		attempt++
		connCfg := cfg
		connCfg.Seed = cfg.Seed + attempt*7919
		mu.Unlock()
		return NewFaultConn(conn, connCfg), nil
	}
}
