package transport

import (
	"net"
	"testing"
	"time"
)

// TestClientWriteDeadlineUnsticksStalledPeer: a peer that accepts the
// connection but never drains its socket must fail the client's send
// once WriteTimeout elapses instead of parking it forever. Both write
// paths are pinned: the synchronous encoder (no heartbeats) and the
// single-writer goroutine (heartbeats enabled).
func TestClientWriteDeadlineUnsticksStalledPeer(t *testing.T) {
	parts := testData(t, 1)
	for _, tc := range []struct {
		name string
		hb   time.Duration
	}{
		{"sync-writer", 0},
		{"conn-writer", time.Hour},
	} {
		t.Run(tc.name, func(t *testing.T) {
			client, err := NewClient(ClientConfig{
				ID: 1, Data: parts[0], Model: testModelConfig(), Trainer: testTrainer(),
				WriteTimeout:      50 * time.Millisecond,
				HeartbeatInterval: tc.hb,
			})
			if err != nil {
				t.Fatal(err)
			}
			clientConn, serverConn := net.Pipe()
			defer clientConn.Close()
			defer serverConn.Close()
			// The server side never reads: without a write deadline the
			// hello encode would block on the pipe indefinitely.
			done := make(chan error, 1)
			go func() { done <- client.RunConn(clientConn) }()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("RunConn succeeded against a peer that never reads")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("RunConn still blocked after 5s: the write deadline did not fire")
			}
		})
	}
}

// TestClientRejectsNegativeWriteTimeout pins the config validation.
func TestClientRejectsNegativeWriteTimeout(t *testing.T) {
	parts := testData(t, 1)
	_, err := NewClient(ClientConfig{
		Data: parts[0], Model: testModelConfig(), Trainer: testTrainer(),
		WriteTimeout: -time.Second,
	})
	if err == nil {
		t.Fatal("NewClient accepted a negative WriteTimeout")
	}
}
