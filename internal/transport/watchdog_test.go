package transport

import (
	"net"
	"testing"
	"time"
)

func TestClampTick(t *testing.T) {
	cases := []struct{ in, want time.Duration }{
		{0, minTick},
		{time.Microsecond, minTick},
		{minTick - 1, minTick},
		{minTick, minTick},
		{time.Second, time.Second},
	}
	for _, c := range cases {
		if got := clampTick(c.in); got != c.want {
			t.Errorf("clampTick(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// startBareServer spins a server on loopback with no clients, returning
// its dial address (taken from the listener, not Server.Addr, which is
// only set once the Serve goroutine gets going).
func startBareServer(t *testing.T, cfg ServerConfig) (*Server, string, chan error) {
	t.Helper()
	server, err := NewServer(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(lis) }()
	return server, lis.Addr().String(), serveErr
}

// A RoundTimeout far below minTick must still fire the watchdog — the
// ticker is clamped, not dropped. This is the regression test for the
// busy-ticker clamp: before it, a 1ms timeout armed a 250µs ticker.
func TestWatchdogFiresWithTinyRoundTimeout(t *testing.T) {
	server, _, serveErr := startBareServer(t, ServerConfig{
		InitialParams:   []float64{0, 0},
		AggregationGoal: 2,
		Rounds:          1,
		RoundTimeout:    time.Millisecond,
	})
	sess := &clientSession{id: 1, numSamples: 1}
	if v := server.receiveUpdate(sess, 0, []float64{1, 1}); v.nack != 0 || v.goodbye {
		t.Fatalf("update refused: %+v", v)
	}
	select {
	case <-server.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not flush the partial buffer within 5s")
	}
	if err := server.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve: %v", err)
	}
	stats := server.Stats()
	if stats.WatchdogRounds != 1 {
		t.Errorf("WatchdogRounds = %d, want 1", stats.WatchdogRounds)
	}
	if got := server.Version(); got != 1 {
		t.Errorf("version = %d, want 1", got)
	}
}

// RoundTimeout == 0 disables the watchdog entirely: a partial buffer sits
// until the goal is reached, and no forced round ever fires.
func TestWatchdogDisabledWithZeroRoundTimeout(t *testing.T) {
	server, _, serveErr := startBareServer(t, ServerConfig{
		InitialParams:   []float64{0, 0},
		AggregationGoal: 2,
		Rounds:          1,
	})
	sess := &clientSession{id: 1, numSamples: 1}
	if v := server.receiveUpdate(sess, 0, []float64{1, 1}); v.nack != 0 || v.goodbye {
		t.Fatalf("update refused: %+v", v)
	}
	// Give a hypothetical (buggy) watchdog several minTick periods to
	// fire; nothing may aggregate the one-update buffer.
	time.Sleep(8 * minTick)
	if got := server.Version(); got != 0 {
		t.Errorf("version = %d after sleep, want 0 (no forced round)", got)
	}
	if stats := server.Stats(); stats.WatchdogRounds != 0 {
		t.Errorf("WatchdogRounds = %d, want 0", stats.WatchdogRounds)
	}
	if err := server.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("serve: %v", err)
	}
}
