package fl

import (
	"math"
	"sync"
	"sync/atomic"
)

// Arena pools fixed-dimension update vectors and Update structs for the
// serving hot path. The transport layer decodes every incoming delta into
// an arena vector, hands the resulting Update to Buffer.Add (transferring
// ownership — see Buffer.Add), and recycles it after round commit, so the
// steady-state ingest path performs no per-update allocations.
//
// Ownership contract: a vector obtained from GetVec (or an Update from
// GetUpdate) is owned by exactly one holder at a time. PutVec/PutUpdate
// end that ownership; touching the memory afterwards is a bug, as is
// returning the same vector twice. Recycling is best-effort — an update
// that leaves the arena's sight (dropped by Buffer.RequeueAt, retained by
// a round-commit callback) is simply collected by the GC.
//
// All methods are safe for concurrent use.
type Arena struct {
	dim int

	vecs    sync.Pool // of *[]float64
	updates sync.Pool // of *Update

	vecGets  atomic.Int64
	vecPuts  atomic.Int64
	vecNews  atomic.Int64
	vecDrops atomic.Int64
	updGets  atomic.Int64
	updPuts  atomic.Int64
	updNews  atomic.Int64

	// Debug state (see EnableDebug). When enabled the sync.Pool for
	// vectors is replaced by an explicit free list under mu so that
	// double-put and use-after-return detection are deterministic.
	debug       bool
	mu          sync.Mutex
	free        []*[]float64
	returned    map[*float64]bool
	onViolation func(kind string)
}

// ArenaStats is a snapshot of an arena's counters. In a quiescent state
// (every borrowed vector returned) VecGets == VecPuts + leaked, where
// leaked counts vectors deliberately released to the GC.
type ArenaStats struct {
	// VecGets / VecPuts count GetVec and accepted PutVec calls.
	VecGets, VecPuts int64
	// VecNews counts GetVec calls that had to allocate a fresh vector.
	VecNews int64
	// VecDrops counts PutVec calls rejected for a dimension mismatch.
	VecDrops int64
	// UpdateGets / UpdatePuts / UpdateNews mirror the above for Updates.
	UpdateGets, UpdatePuts, UpdateNews int64
}

// poisonBits is the quiet-NaN payload written over every element of a
// returned vector in debug mode. Comparing bit patterns (not float values)
// sidesteps NaN != NaN.
const poisonBits uint64 = 0x7ff8deadbeeff001

// NewArena returns an arena pooling vectors of exactly dim elements.
func NewArena(dim int) *Arena {
	if dim < 1 {
		panic("fl: NewArena: dim must be >= 1")
	}
	return &Arena{dim: dim}
}

// Dim reports the fixed vector dimension served by the arena.
func (a *Arena) Dim() int { return a.dim }

// EnableDebug is a test hook: it switches the vector pool to a
// deterministic free list that poisons returned vectors, detects
// double-put and use-after-return, and reports each violation kind
// ("double-put", "use-after-return") to onViolation. Call before any
// Get/Put traffic; not for production use.
func (a *Arena) EnableDebug(onViolation func(kind string)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.debug = true
	a.returned = make(map[*float64]bool)
	a.onViolation = onViolation
}

// GetVec returns a vector of length Dim with undefined contents. The
// caller owns it until PutVec.
func (a *Arena) GetVec() []float64 {
	a.vecGets.Add(1)
	if a.debug {
		return a.debugGetVec()
	}
	if p, ok := a.vecs.Get().(*[]float64); ok {
		return (*p)[:a.dim]
	}
	a.vecNews.Add(1)
	return make([]float64, a.dim)
}

// PutVec returns v to the pool, ending the caller's ownership. Vectors
// whose capacity does not match the arena dimension (e.g. decoded by a
// foreign codec with extra capacity) are silently dropped to the GC.
//
//afl:owned
func (a *Arena) PutVec(v []float64) {
	if cap(v) != a.dim {
		a.vecDrops.Add(1)
		return
	}
	v = v[:a.dim]
	if a.debug {
		a.debugPutVec(v)
		return
	}
	a.vecPuts.Add(1)
	a.vecs.Put(&v)
}

// GetUpdate returns a zeroed Update with a nil Delta; pair it with a
// GetVec vector (or any owned vector) before buffering. The caller owns
// the struct until PutUpdate.
func (a *Arena) GetUpdate() *Update {
	a.updGets.Add(1)
	if u, ok := a.updates.Get().(*Update); ok {
		return u
	}
	a.updNews.Add(1)
	return new(Update)
}

// PutUpdate recycles u and its Delta (via PutVec), ending the caller's
// ownership of both.
//
//afl:owned
func (a *Arena) PutUpdate(u *Update) {
	if u == nil {
		return
	}
	if u.Delta != nil {
		a.PutVec(u.Delta)
	}
	*u = Update{}
	a.updPuts.Add(1)
	a.updates.Put(u)
}

// Stats snapshots the arena counters.
func (a *Arena) Stats() ArenaStats {
	return ArenaStats{
		VecGets:    a.vecGets.Load(),
		VecPuts:    a.vecPuts.Load(),
		VecNews:    a.vecNews.Load(),
		VecDrops:   a.vecDrops.Load(),
		UpdateGets: a.updGets.Load(),
		UpdatePuts: a.updPuts.Load(),
		UpdateNews: a.updNews.Load(),
	}
}

func (a *Arena) debugGetVec() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.free)
	if n == 0 {
		a.vecNews.Add(1)
		return make([]float64, a.dim)
	}
	p := a.free[n-1]
	a.free = a.free[:n-1]
	v := (*p)[:a.dim]
	delete(a.returned, &v[0])
	for i := range v {
		if math.Float64bits(v[i]) != poisonBits {
			a.violationLocked("use-after-return")
			break
		}
	}
	for i := range v {
		v[i] = 0
	}
	return v
}

//afl:owned
func (a *Arena) debugPutVec(v []float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.returned[&v[0]] {
		a.violationLocked("double-put")
		return
	}
	for i := range v {
		v[i] = math.Float64frombits(poisonBits)
	}
	a.returned[&v[0]] = true
	a.vecPuts.Add(1)
	a.free = append(a.free, &v)
}

func (a *Arena) violationLocked(kind string) {
	if a.onViolation != nil {
		a.onViolation(kind)
	}
}
