package fl

import "testing"

// recordingBufferObserver captures every BufferEvent in order.
type recordingBufferObserver struct {
	events []BufferEvent
}

func (r *recordingBufferObserver) ObserveBuffer(ev BufferEvent) {
	r.events = append(r.events, ev)
}

func (r *recordingBufferObserver) last(t *testing.T) BufferEvent {
	t.Helper()
	if len(r.events) == 0 {
		t.Fatal("no buffer events recorded")
	}
	return r.events[len(r.events)-1]
}

func mkUpdate(client, base, staleness int) *Update {
	return &Update{
		ClientID:    client,
		BaseVersion: base,
		Staleness:   staleness,
		Delta:       []float64{1, 2},
		NumSamples:  1,
	}
}

func TestBufferObserverAddAndStale(t *testing.T) {
	b, err := NewBuffer(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingBufferObserver{}
	b.SetObserver(rec)

	if !b.Add(mkUpdate(0, 0, 1)) {
		t.Fatal("fresh update rejected")
	}
	ev := rec.last(t)
	if ev.Added != 1 || ev.Pending != 1 || ev.Fresh != 1 || ev.Ready {
		t.Fatalf("add event: %+v", ev)
	}

	if b.Add(mkUpdate(1, 0, 10)) {
		t.Fatal("stale update accepted")
	}
	ev = rec.last(t)
	if ev.DroppedStale != 1 || ev.Added != 0 || ev.Pending != 1 {
		t.Fatalf("stale event: %+v", ev)
	}

	b.Add(mkUpdate(2, 0, 0))
	ev = rec.last(t)
	if !ev.Ready || ev.Pending != 2 {
		t.Fatalf("ready event: %+v", ev)
	}
}

func TestBufferObserverDrainRequeueShed(t *testing.T) {
	b, err := NewBuffer(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingBufferObserver{}
	b.SetObserver(rec)

	b.Add(mkUpdate(0, 0, 0))
	b.Add(mkUpdate(1, 1, 0))
	drained := b.Drain()
	ev := rec.last(t)
	if ev.Drained != 2 || ev.Pending != 0 || ev.Fresh != 0 {
		t.Fatalf("drain event: %+v", ev)
	}

	// One requeued survivor and one pushed past the limit.
	drained[0].Staleness = 5 // ages to 6 > limit
	b.Requeue(drained)
	ev = rec.last(t)
	if ev.Requeued != 1 || ev.DroppedStale != 1 || ev.Pending != 1 {
		t.Fatalf("requeue event: %+v", ev)
	}

	b.Add(mkUpdate(2, 2, 0))
	shed := b.Shed(1)
	if len(shed) != 1 {
		t.Fatalf("shed %d updates", len(shed))
	}
	ev = rec.last(t)
	if ev.Shed != 1 || ev.Pending != 1 {
		t.Fatalf("shed event: %+v", ev)
	}
}

func TestBufferObserverRequeueAt(t *testing.T) {
	b, err := NewBuffer(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingBufferObserver{}
	b.SetObserver(rec)

	updates := []*Update{mkUpdate(0, 0, 0), mkUpdate(1, 4, 0)}
	dropped := b.RequeueAt(updates, 5)
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (staleness 5 > limit 3)", dropped)
	}
	ev := rec.last(t)
	if ev.Requeued != 1 || ev.DroppedStale != 1 {
		t.Fatalf("requeueAt event: %+v", ev)
	}
}

func TestBufferObserverRestoreAndNilSafety(t *testing.T) {
	b, err := NewBuffer(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No observer: mutations must not panic.
	b.Add(mkUpdate(0, 0, 0))
	b.Add(mkUpdate(1, 0, 0))
	snap := b.Snapshot()

	b2, err := NewBuffer(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingBufferObserver{}
	b2.SetObserver(rec)
	b2.Restore(snap)
	ev := rec.last(t)
	if ev.Added != 2 || ev.Pending != 2 || !ev.Ready {
		t.Fatalf("restore event: %+v", ev)
	}
}

// The observer must be purely observational: an attached observer
// changes no buffer behavior or state transitions.
func TestBufferObserverNeutrality(t *testing.T) {
	run := func(obs BufferObserver) (int, int, int, bool) {
		b, err := NewBuffer(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		b.SetObserver(obs)
		for i := 0; i < 6; i++ {
			b.Add(mkUpdate(i, i%3, i%5))
		}
		b.Shed(1)
		drained := b.Drain()
		b.Requeue(drained[:2])
		received, stale := b.Stats()
		return received, stale, b.Len(), b.Ready()
	}
	r1, s1, l1, rdy1 := run(nil)
	r2, s2, l2, rdy2 := run(&recordingBufferObserver{})
	if r1 != r2 || s1 != s2 || l1 != l2 || rdy1 != rdy2 {
		t.Fatalf("observer changed behavior: (%d %d %d %v) vs (%d %d %d %v)",
			r1, s1, l1, rdy1, r2, s2, l2, rdy2)
	}
}
