package fl

import (
	"sync"
	"testing"
)

func TestArenaRejectsBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewArena(0) did not panic")
		}
	}()
	NewArena(0)
}

// TestArenaBalance drives the debug free list and asserts the get/put
// counters stay balanced and that returned vectors are actually reused.
func TestArenaBalance(t *testing.T) {
	const dim, n = 8, 32
	a := NewArena(dim)
	var violations []string
	a.EnableDebug(func(kind string) { violations = append(violations, kind) })

	vecs := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		v := a.GetVec()
		if len(v) != dim {
			t.Fatalf("GetVec len = %d, want %d", len(v), dim)
		}
		for j := range v {
			v[j] = float64(i)
		}
		vecs = append(vecs, v)
	}
	for _, v := range vecs {
		a.PutVec(v)
	}
	// Second wave must be served entirely from the free list.
	for i := 0; i < n; i++ {
		v := a.GetVec()
		for j := range v {
			if v[j] != 0 {
				t.Fatalf("reused vector not zeroed: v[%d] = %v", j, v[j])
			}
		}
		vecs[i] = v
	}
	s := a.Stats()
	if s.VecGets != 2*n || s.VecPuts != n || s.VecNews != n {
		t.Fatalf("stats = %+v, want gets=%d puts=%d news=%d", s, 2*n, n, n)
	}
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
}

func TestArenaDoublePut(t *testing.T) {
	a := NewArena(4)
	var violations []string
	a.EnableDebug(func(kind string) { violations = append(violations, kind) })

	v := a.GetVec()
	a.PutVec(v)
	a.PutVec(v)
	if len(violations) != 1 || violations[0] != "double-put" {
		t.Fatalf("violations = %v, want [double-put]", violations)
	}
	if s := a.Stats(); s.VecPuts != 1 {
		t.Fatalf("VecPuts = %d, want 1 (second put rejected)", s.VecPuts)
	}
}

func TestArenaUseAfterReturn(t *testing.T) {
	a := NewArena(4)
	var violations []string
	a.EnableDebug(func(kind string) { violations = append(violations, kind) })

	v := a.GetVec()
	a.PutVec(v)
	v[2] = 42 // illegal: ownership ended at PutVec
	_ = a.GetVec()
	if len(violations) != 1 || violations[0] != "use-after-return" {
		t.Fatalf("violations = %v, want [use-after-return]", violations)
	}
}

func TestArenaWrongDimDropped(t *testing.T) {
	a := NewArena(4)
	a.PutVec(make([]float64, 5))
	a.PutVec(nil)
	s := a.Stats()
	if s.VecDrops != 2 || s.VecPuts != 0 {
		t.Fatalf("stats = %+v, want 2 drops, 0 puts", s)
	}
}

func TestArenaUpdateRecycle(t *testing.T) {
	a := NewArena(4)
	u := a.GetUpdate()
	u.ClientID = 7
	u.BaseVersion = 3
	u.Delta = a.GetVec()
	a.PutUpdate(u)
	a.PutUpdate(nil) // no-op

	u2 := a.GetUpdate()
	if u2.ClientID != 0 || u2.BaseVersion != 0 || u2.Delta != nil {
		t.Fatalf("recycled update not zeroed: %+v", u2)
	}
	s := a.Stats()
	if s.UpdateGets != 2 || s.UpdatePuts != 1 || s.VecPuts != 1 {
		t.Fatalf("stats = %+v, want updGets=2 updPuts=1 vecPuts=1", s)
	}
}

// TestArenaConcurrentStress exercises the production sync.Pool path with
// concurrent ingest (GetUpdate/GetVec -> Buffer.Add) and drain
// (Drain -> PutUpdate), the exact shape of the serving hot path (where
// the server mutex plays the role of mu here; the Buffer itself is not
// concurrency-safe). Run under -race this proves the ownership handoff
// publishes safely.
func TestArenaConcurrentStress(t *testing.T) {
	const dim, producers, perProducer = 16, 8, 200
	a := NewArena(dim)
	buf, err := NewBuffer(1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				u := a.GetUpdate()
				u.ClientID = p
				u.BaseVersion = i
				u.NumSamples = 1
				u.Delta = a.GetVec()
				for j := range u.Delta {
					u.Delta[j] = float64(p*perProducer + i)
				}
				mu.Lock()
				buf.Add(u)
				mu.Unlock()
			}
		}(p)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	drained := 0
	recycle := func() {
		mu.Lock()
		batch := buf.Drain()
		mu.Unlock()
		for _, u := range batch {
			want := u.Delta[0]
			for j := range u.Delta {
				if u.Delta[j] != want {
					t.Errorf("torn vector: u.Delta[%d] = %v, want %v", j, u.Delta[j], want)
					break
				}
			}
			a.PutUpdate(u)
			drained++
		}
	}
	for {
		select {
		case <-done:
			recycle()
			if want := producers * perProducer; drained != want {
				t.Fatalf("drained %d updates, want %d", drained, want)
			}
			s := a.Stats()
			if s.VecGets != s.VecPuts || s.VecDrops != 0 {
				t.Fatalf("unbalanced arena after quiesce: %+v", s)
			}
			return
		default:
			recycle()
		}
	}
}
