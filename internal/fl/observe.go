package fl

// Observability contracts. These interfaces live in fl (not in the
// obsv package) so that core and fl stay import-free of the
// observability layer: obsv provides sink implementations, the filter
// and buffer only hold an interface value that is nil when tracing is
// disabled. Observer callbacks must be fast and must not call back into
// the component that emitted the event — they may run with the caller's
// locks held.
//
// Naming note: no observer method may be literally named "Filter" — the
// lockio analyzer treats any call to a method of that name as a
// potentially-blocking filter invocation.

// DecisionEvent describes one filter verdict for one client update.
type DecisionEvent struct {
	// Round is the aggregation round the verdict was produced for.
	Round int
	// ClientID identifies the update's sender.
	ClientID int
	// Group is the staleness group the update was scored in.
	Group int
	// Cluster is the update's k-means cluster index (clusters sorted
	// ascending by center), or -1 when the batch was accepted wholesale
	// without clustering (below MinBatch).
	Cluster int
	// Score is the normalized suspicion score (Eq. 7).
	Score float64
	// Decision is the final verdict, after any amnesty adjustment.
	Decision Decision
	// Amnesty is true when a rejection was flipped to accept by the
	// reject-cooldown amnesty rule.
	Amnesty bool
}

// FilterRoundEvent summarizes one filter invocation over a batch.
type FilterRoundEvent struct {
	Round    int
	Batch    int
	Accepted int
	Deferred int
	Rejected int
	// Groups is the number of staleness groups with live estimates
	// after this round.
	Groups int
	// Wholesale is true when the batch bypassed clustering (MinBatch).
	Wholesale bool
}

// FilterObserver receives filter decision telemetry.
type FilterObserver interface {
	ObserveDecision(DecisionEvent)
	ObserveFilterRound(FilterRoundEvent)
}

// ObservableFilter is implemented by filters that can emit decision
// telemetry. SetObserver must be called before the filter is shared
// across goroutines (observers are not swappable mid-deployment).
type ObservableFilter interface {
	SetObserver(FilterObserver)
}

// BufferEvent is a snapshot of buffer state plus the deltas of the
// mutation that produced it. Exactly one mutation happened per event;
// the delta fields say which.
type BufferEvent struct {
	// Pending is the buffered update count after the mutation.
	Pending int
	// Fresh is the number of first-hand (non-requeued) updates.
	Fresh int
	// Ready reports whether the buffer has reached its aggregation goal.
	Ready bool

	// Added counts updates admitted by this mutation.
	Added int
	// DroppedStale counts updates dropped for exceeding the staleness
	// limit by this mutation.
	DroppedStale int
	// Requeued counts deferred updates returned by the filter.
	Requeued int
	// Shed counts updates evicted by overload shedding.
	Shed int
	// Drained counts updates handed to an aggregation round.
	Drained int
}

// BufferObserver receives buffer occupancy telemetry.
type BufferObserver interface {
	ObserveBuffer(BufferEvent)
}
