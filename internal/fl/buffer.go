package fl

import "fmt"

// Buffer is the FedBuff server-side update buffer: arriving client updates
// accumulate until the aggregation goal is reached, and updates staler than
// the server's staleness limit are discarded on arrival.
//
// Buffer is not safe for concurrent use; the simulator and the transport
// server serialize access.
type Buffer struct {
	goal           int
	stalenessLimit int
	updates        []*Update
	droppedStale   int
	received       int
}

// NewBuffer builds a buffer that signals readiness once goal updates are
// held and rejects updates with staleness above limit (limit <= 0 disables
// the staleness check).
func NewBuffer(goal, limit int) (*Buffer, error) {
	if goal < 1 {
		return nil, fmt.Errorf("fl: NewBuffer: goal = %d, need >= 1", goal)
	}
	return &Buffer{goal: goal, stalenessLimit: limit}, nil
}

// Add offers an update to the buffer. It returns false when the update was
// discarded for exceeding the staleness limit.
func (b *Buffer) Add(u *Update) bool {
	b.received++
	if b.stalenessLimit > 0 && u.Staleness > b.stalenessLimit {
		b.droppedStale++
		return false
	}
	b.updates = append(b.updates, u)
	return true
}

// Ready reports whether the aggregation goal has been reached.
func (b *Buffer) Ready() bool { return len(b.updates) >= b.goal }

// Len returns the number of buffered updates.
func (b *Buffer) Len() int { return len(b.updates) }

// Goal returns the aggregation goal.
func (b *Buffer) Goal() int { return b.goal }

// StalenessLimit returns the configured limit (<= 0 means disabled).
func (b *Buffer) StalenessLimit() int { return b.stalenessLimit }

// Drain removes and returns all buffered updates.
func (b *Buffer) Drain() []*Update {
	out := b.updates
	b.updates = nil
	return out
}

// Requeue returns deferred updates to the buffer so they participate in the
// next aggregation round. Their staleness is incremented to reflect the
// extra round they waited; updates pushed past the staleness limit are
// dropped and counted.
func (b *Buffer) Requeue(updates []*Update) {
	for _, u := range updates {
		u.Staleness++
		if b.stalenessLimit > 0 && u.Staleness > b.stalenessLimit {
			b.droppedStale++
			continue
		}
		b.updates = append(b.updates, u)
	}
}

// RequeueAt returns deferred updates to the buffer with staleness
// recomputed against the server's current model version (version -
// BaseVersion), rather than incrementally aged. This keeps staleness
// exact for updates deferred across several rounds, including partial
// watchdog rounds. Updates past the staleness limit are dropped; the
// number dropped is returned so callers can account for them.
func (b *Buffer) RequeueAt(updates []*Update, version int) (dropped int) {
	for _, u := range updates {
		u.Staleness = version - u.BaseVersion
		if b.stalenessLimit > 0 && u.Staleness > b.stalenessLimit {
			b.droppedStale++
			dropped++
			continue
		}
		b.updates = append(b.updates, u)
	}
	return dropped
}

// Stats reports lifetime counters: total updates offered and updates
// dropped for staleness.
func (b *Buffer) Stats() (received, droppedStale int) {
	return b.received, b.droppedStale
}
