package fl

import (
	"fmt"
	"sort"
)

// Buffer is the FedBuff server-side update buffer: arriving client updates
// accumulate until the aggregation goal is reached, and updates staler than
// the server's staleness limit are discarded on arrival.
//
// Buffer is not safe for concurrent use; the simulator and the transport
// server serialize access.
type Buffer struct {
	goal           int
	stalenessLimit int
	updates        []*Update
	droppedStale   int
	received       int
	// fresh counts updates accepted by Add since the last Drain. Requeued
	// deferrals do not count: readiness requires new information (see
	// Ready).
	fresh int
	// obs, when non-nil, receives one BufferEvent per mutating call.
	// Purely observational: no emission may alter buffer behavior.
	obs BufferObserver
}

// NewBuffer builds a buffer that signals readiness once goal updates are
// held and rejects updates with staleness above limit (limit <= 0 disables
// the staleness check).
func NewBuffer(goal, limit int) (*Buffer, error) {
	if goal < 1 {
		return nil, fmt.Errorf("fl: NewBuffer: goal = %d, need >= 1", goal)
	}
	return &Buffer{goal: goal, stalenessLimit: limit}, nil
}

// SetObserver attaches an observer that receives one BufferEvent per
// mutating call (nil detaches). Call before the buffer is shared; the
// buffer itself is not safe for concurrent use.
func (b *Buffer) SetObserver(obs BufferObserver) { b.obs = obs }

// notify emits a state-stamped event; deltas come from the caller.
func (b *Buffer) notify(ev BufferEvent) {
	if b.obs == nil {
		return
	}
	ev.Pending = len(b.updates)
	ev.Fresh = b.fresh
	ev.Ready = b.Ready()
	b.obs.ObserveBuffer(ev)
}

// Add offers an update to the buffer and takes ownership of it. The
// vecalias invariant — the buffer must never share memory with a client
// that can still mutate it, or a malicious client could rewrite its delta
// after submission and corrupt the filter statistics computed from the
// buffered batch (Eq. 5) — used to be enforced by a defensive deep copy
// here. It is now an ownership transfer: the codec layer materializes
// each delta into memory no client aliases (an Arena vector or a freshly
// gob-decoded slice) and Add adopts it, so the invariant holds with zero
// copies. On a true return the buffer owns u and the caller must not
// touch it again; on a false return (staleness drop) ownership stays
// with the caller, who may recycle it into an Arena.
//
//afl:hotpath
//afl:owned
func (b *Buffer) Add(u *Update) bool {
	b.received++
	if b.stalenessLimit > 0 && u.Staleness > b.stalenessLimit {
		b.droppedStale++
		b.notify(BufferEvent{DroppedStale: 1})
		return false
	}
	b.updates = append(b.updates, u)
	b.fresh++
	b.notify(BufferEvent{Added: 1})
	return true
}

// Ready reports whether the aggregation goal has been reached with at
// least one fresh arrival since the last Drain. Requeued deferrals alone
// never re-arm readiness: after a partial (watchdog) drain, the deferred
// remainder can push the buffer back over the goal, and without the
// fresh-arrival requirement every Ready poll would re-aggregate the same
// deferred batch in a tight loop — burning rounds, inflating staleness and
// extracting no new information.
func (b *Buffer) Ready() bool { return b.fresh > 0 && len(b.updates) >= b.goal }

// Len returns the number of buffered updates.
func (b *Buffer) Len() int { return len(b.updates) }

// Goal returns the aggregation goal.
func (b *Buffer) Goal() int { return b.goal }

// StalenessLimit returns the configured limit (<= 0 means disabled).
func (b *Buffer) StalenessLimit() int { return b.stalenessLimit }

// Drain removes and returns all buffered updates.
func (b *Buffer) Drain() []*Update {
	out := b.updates
	b.updates = nil
	b.fresh = 0
	b.notify(BufferEvent{Drained: len(out)})
	return out
}

// Requeue returns deferred updates to the buffer so they participate in the
// next aggregation round. Their staleness is incremented to reflect the
// extra round they waited; updates pushed past the staleness limit are
// dropped and counted. Requeued updates may grow the buffer past the goal
// but do not by themselves make it Ready. Ownership of every update in
// the slice — requeued or dropped — transfers to the buffer: they came
// from Drain, no client alias remains, and dropped ones go to the GC.
//
//afl:owned
func (b *Buffer) Requeue(updates []*Update) {
	requeued, stale := 0, 0
	for _, u := range updates {
		u.Staleness++
		if b.stalenessLimit > 0 && u.Staleness > b.stalenessLimit {
			b.droppedStale++
			stale++
			continue
		}
		b.updates = append(b.updates, u)
		requeued++
	}
	if requeued > 0 || stale > 0 {
		b.notify(BufferEvent{Requeued: requeued, DroppedStale: stale})
	}
}

// RequeueAt returns deferred updates to the buffer with staleness
// recomputed against the server's current model version (version -
// BaseVersion), rather than incrementally aged. This keeps staleness
// exact for updates deferred across several rounds, including partial
// watchdog rounds. Updates past the staleness limit are dropped; the
// number dropped is returned so callers can account for them. Like
// Requeue, it never re-arms Ready by itself, and like Requeue it takes
// ownership of every update in the slice (dropped ones go to the GC —
// arena recycling is deliberately best-effort on this cold path).
//
//afl:owned
func (b *Buffer) RequeueAt(updates []*Update, version int) (dropped int) {
	requeued := 0
	for _, u := range updates {
		u.Staleness = version - u.BaseVersion
		if b.stalenessLimit > 0 && u.Staleness > b.stalenessLimit {
			b.droppedStale++
			dropped++
			continue
		}
		b.updates = append(b.updates, u)
		requeued++
	}
	if requeued > 0 || dropped > 0 {
		b.notify(BufferEvent{Requeued: requeued, DroppedStale: dropped})
	}
	return dropped
}

// OldestBase returns the smallest BaseVersion among buffered updates and
// whether the buffer is non-empty. At any fixed server version the update
// with the smallest BaseVersion is exactly the stalest one, so admission
// control can compare an incoming update against the buffer without the
// buffer knowing the current version.
func (b *Buffer) OldestBase() (int, bool) {
	if len(b.updates) == 0 {
		return 0, false
	}
	oldest := b.updates[0].BaseVersion
	for _, u := range b.updates[1:] {
		if u.BaseVersion < oldest {
			oldest = u.BaseVersion
		}
	}
	return oldest, true
}

// Shed removes and returns the n stalest buffered updates, for
// staleness-aware load shedding: under overload the stalest updates are
// the least valuable to the model and the most hostile to the filter, so
// they are the first to go. Staleness order is BaseVersion order — the
// recorded Staleness fields were computed at different arrival versions
// and are not mutually comparable, but at any fixed server version
// ordering by ascending BaseVersion is exactly ordering by descending
// true staleness. Ties (equal BaseVersion) shed the earlier arrival
// first, and the returned victims are ordered stalest first. The
// survivors keep their arrival order, and the fresh-arrival counter is
// left untouched: shedding removes information, it must not re-arm or
// disarm readiness on its own.
func (b *Buffer) Shed(n int) []*Update {
	if n <= 0 || len(b.updates) == 0 {
		return nil
	}
	if n > len(b.updates) {
		n = len(b.updates)
	}
	// Select the n victims by index: smallest BaseVersion first, earlier
	// arrival breaking ties.
	idx := make([]int, len(b.updates))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return b.updates[idx[i]].BaseVersion < b.updates[idx[j]].BaseVersion
	})
	victim := make(map[int]bool, n)
	shed := make([]*Update, 0, n)
	for _, i := range idx[:n] {
		victim[i] = true
		shed = append(shed, b.updates[i])
	}
	kept := b.updates[:0]
	for i, u := range b.updates {
		if !victim[i] {
			kept = append(kept, u)
		}
	}
	// Clear the tail so shed updates are not retained by the backing array.
	for i := len(kept); i < len(b.updates); i++ {
		b.updates[i] = nil
	}
	b.updates = kept
	b.notify(BufferEvent{Shed: len(shed)})
	return shed
}

// Stats reports lifetime counters: total updates offered and updates
// dropped for staleness.
func (b *Buffer) Stats() (received, droppedStale int) {
	return b.received, b.droppedStale
}

// BufferState is the serializable snapshot of a Buffer's durable state:
// the pending updates plus the lifetime counters. The aggregation goal
// and staleness limit are configuration, not state, and stay with the
// server config across a restore.
type BufferState struct {
	Updates      []*Update
	Received     int
	DroppedStale int
}

// Snapshot deep-copies the buffer's durable state for checkpointing.
func (b *Buffer) Snapshot() BufferState {
	st := BufferState{
		Updates:      make([]*Update, len(b.updates)),
		Received:     b.received,
		DroppedStale: b.droppedStale,
	}
	for i, u := range b.updates {
		st.Updates[i] = CloneUpdate(u)
	}
	return st
}

// Restore replaces the buffer's contents and counters with a snapshot,
// deep-copying the updates. Restored updates count as fresh: they were
// live arrivals when the snapshot was taken, so a restored buffer at goal
// aggregates as soon as the server consumes it.
func (b *Buffer) Restore(st BufferState) {
	b.updates = make([]*Update, len(st.Updates))
	for i, u := range st.Updates {
		b.updates[i] = CloneUpdate(u)
	}
	b.received = st.Received
	b.droppedStale = st.DroppedStale
	b.fresh = len(b.updates)
	b.notify(BufferEvent{Added: len(b.updates)})
}
