package fl

import "testing"

// BenchmarkHotBufferAdd measures the annotated //afl:hotpath ingest path
// as the server drives it since the arena work: an Update and its delta
// vector come from the arena, ownership transfers through Buffer.Add,
// and a periodic drain recycles everything — the full steady-state
// lifecycle, which should be allocation-free once the pools are warm.
// Run via `make bench-hot` (with -benchmem); the allocs/op gate lives in
// cmd/benchgate.
func BenchmarkHotBufferAdd(b *testing.B) {
	const dim = 256
	buf, err := NewBuffer(1<<30, 0)
	if err != nil {
		b.Fatal(err)
	}
	arena := NewArena(dim)
	src := make([]float64, dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := arena.GetUpdate()
		u.ClientID = 1
		u.NumSamples = 10
		u.Delta = arena.GetVec()
		copy(u.Delta, src)
		if !buf.Add(u) {
			b.Fatal("update dropped")
		}
		if buf.Len() >= 1024 {
			for _, d := range buf.Drain() {
				arena.PutUpdate(d)
			}
		}
	}
}
