package fl

import "testing"

// BenchmarkHotBufferAdd measures the annotated //afl:hotpath ingest
// path: the deep copy per accepted update is the vecalias contract, and
// its allocs/op is the baseline for the ROADMAP item 2 arena work. Run
// via `make bench-hot` (with -benchmem).
func BenchmarkHotBufferAdd(b *testing.B) {
	const dim = 256
	buf, err := NewBuffer(1<<30, 0)
	if err != nil {
		b.Fatal(err)
	}
	u := &Update{ClientID: 1, Delta: make([]float64, dim), NumSamples: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !buf.Add(u) {
			b.Fatal("update dropped")
		}
		if len(buf.updates) >= 1024 {
			b.StopTimer()
			buf.updates = buf.updates[:0]
			b.StartTimer()
		}
	}
}
