// Package fl defines the core federated-learning types shared by the
// simulator, the transport layer, the attacks and the defenses: client
// model updates, staleness bookkeeping, local training, and aggregation
// rules (weighted FedAvg with FedBuff-style staleness discounting).
package fl

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/optim"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Update is one client's contribution to a server aggregation round.
type Update struct {
	// ClientID identifies the reporting client.
	ClientID int
	// BaseVersion is the global model version the client trained from.
	BaseVersion int
	// Staleness is the number of server rounds that elapsed between the
	// client receiving its base model and the server consuming the update:
	// currentRound - BaseVersion.
	Staleness int
	// Delta is the flat parameter delta: local model minus base model.
	Delta []float64
	// NumSamples is the client's local dataset size (aggregation weight).
	NumSamples int
}

// CloneUpdate returns a deep copy of u.
func CloneUpdate(u *Update) *Update {
	c := *u
	c.Delta = vecmath.Clone(u.Delta)
	return &c
}

// TrainerConfig controls a client's local optimization, mirroring the
// paper's Table 1 (local epochs, batch size, optimizer, learning rate,
// momentum).
type TrainerConfig struct {
	// Epochs is the number of passes over the local partition.
	Epochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// Optim configures the local optimizer.
	Optim optim.Config
	// ClipNorm, when positive, clips the per-batch gradient norm.
	ClipNorm float64
	// LRDecayPerEpoch multiplies the learning rate by this factor after
	// each local epoch (0 or 1 disables decay).
	LRDecayPerEpoch float64
}

// Validate checks the trainer configuration.
func (c *TrainerConfig) Validate() error {
	if c.Epochs < 1 {
		return fmt.Errorf("fl: TrainerConfig: Epochs = %d, need >= 1", c.Epochs)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("fl: TrainerConfig: BatchSize = %d, need >= 1", c.BatchSize)
	}
	if c.LRDecayPerEpoch < 0 || c.LRDecayPerEpoch > 1 {
		return fmt.Errorf("fl: TrainerConfig: LRDecayPerEpoch = %v, need [0, 1]", c.LRDecayPerEpoch)
	}
	return nil
}

// LocalTrain runs cfg.Epochs of minibatch training of m on data and returns
// the resulting parameter delta (trained params minus starting params).
// m is left holding the trained parameters; callers that need the starting
// point should keep their own copy.
func LocalTrain(m model.Model, data *dataset.Dataset, cfg TrainerConfig, r *rand.Rand) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if data.Len() == 0 {
		return nil, fmt.Errorf("fl: LocalTrain: empty dataset")
	}
	optCfg := cfg.Optim
	opt, err := optim.New(optCfg, m.NumParams())
	if err != nil {
		return nil, fmt.Errorf("fl: LocalTrain: %w", err)
	}

	start := make([]float64, m.NumParams())
	m.Params(start)

	params := make([]float64, m.NumParams())
	grad := make([]float64, m.NumParams())
	order := make([]int, data.Len())
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if epoch > 0 && cfg.LRDecayPerEpoch > 0 && cfg.LRDecayPerEpoch < 1 {
			// Step-decay schedule: rebuild the optimizer with the decayed
			// rate, preserving the decay across epochs. Momentum state
			// restarts with the new rate, matching the common step-decay
			// implementation.
			optCfg.LR *= cfg.LRDecayPerEpoch
			opt, err = optim.New(optCfg, m.NumParams())
			if err != nil {
				return nil, fmt.Errorf("fl: LocalTrain: %w", err)
			}
		}
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < len(order); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > len(order) {
				hi = len(order)
			}
			vecmath.Fill(grad, 0)
			for _, idx := range order[lo:hi] {
				ex := data.Examples[idx]
				m.Gradient(grad, ex.Features, ex.Label)
			}
			vecmath.Scale(grad, 1/float64(hi-lo), grad)
			if cfg.ClipNorm > 0 {
				vecmath.ClipNorm(grad, cfg.ClipNorm)
			}
			m.Params(params)
			opt.Step(params, grad)
			m.SetParams(params)
		}
	}

	m.Params(params)
	delta := vecmath.Subbed(params, start)
	if !vecmath.AllFinite(delta) {
		return nil, fmt.Errorf("fl: LocalTrain: training diverged to non-finite parameters")
	}
	return delta, nil
}

// StalenessWeight returns the FedBuff polynomial staleness discount
// (1 + tau)^(-exponent). Exponent 0 disables discounting.
func StalenessWeight(staleness int, exponent float64) float64 {
	if staleness < 0 {
		staleness = 0
	}
	if vecmath.IsZero(exponent) {
		return 1
	}
	return math.Pow(1+float64(staleness), -exponent)
}

// AggregatorConfig controls update aggregation.
type AggregatorConfig struct {
	// StalenessExponent is the polynomial staleness-discount exponent a in
	// (1+tau)^-a. Zero disables staleness discounting.
	StalenessExponent float64
	// SampleWeighted weights updates by NumSamples when true; otherwise
	// uniformly.
	SampleWeighted bool
	// ServerLR scales the aggregated delta before it is applied to the
	// global model. Zero selects 1.
	ServerLR float64
}

// Aggregate applies the weighted mean of the updates' deltas to the global
// parameter vector in place, returning the per-update normalized weights
// actually used. An empty update set is a no-op returning nil.
func Aggregate(global []float64, updates []*Update, cfg AggregatorConfig) ([]float64, error) {
	if len(updates) == 0 {
		return nil, nil
	}
	weights := make([]float64, len(updates))
	var total float64
	for i, u := range updates {
		if len(u.Delta) != len(global) {
			return nil, fmt.Errorf("fl: Aggregate: update %d has dimension %d, global has %d", i, len(u.Delta), len(global))
		}
		w := StalenessWeight(u.Staleness, cfg.StalenessExponent)
		if cfg.SampleWeighted {
			w *= float64(u.NumSamples)
		}
		weights[i] = w
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("fl: Aggregate: aggregation weights sum to %v", total)
	}
	lr := cfg.ServerLR
	if vecmath.IsZero(lr) {
		lr = 1
	}
	for i := range weights {
		weights[i] /= total
	}
	for i, u := range updates {
		vecmath.AXPY(global, lr*weights[i], u.Delta)
	}
	return weights, nil
}

// Filter inspects a batch of buffered updates before aggregation and
// decides the fate of each. It is the extension point AsyncFilter plugs
// into; FedBuff corresponds to a pass-through filter.
//
// Implementations must treat updates as read-only and must not retain the
// slice past the call. Decisions are returned positionally: len(Decisions)
// == len(updates).
type Filter interface {
	// Filter classifies each update for the given server round.
	Filter(updates []*Update, round int) (FilterResult, error)
	// Name identifies the filter in experiment reports.
	Name() string
}

// RoundObserver is implemented by filters that need post-aggregation
// feedback. After applying an aggregation, the server calls ObserveRound
// with the new global parameters and the updates that were accepted.
type RoundObserver interface {
	ObserveRound(round int, global []float64, accepted []*Update)
}

// StateSnapshotter is implemented by filters whose detection state must
// survive server restarts (AsyncFilter's per-group moving averages, for
// example — losing them would force the filter to re-learn every group
// estimate from zero after a crash). The transport server embeds the
// snapshot in its checkpoint and restores it before serving.
//
// SnapshotState returns an opaque serialization of the filter's internal
// state. RestoreState must be all-or-nothing: on error the filter keeps
// its prior state untouched.
type StateSnapshotter interface {
	SnapshotState() ([]byte, error)
	RestoreState(data []byte) error
}

// StateMerger is implemented by filters whose detection state can absorb
// another instance's snapshot instead of replacing its own — the
// hierarchical deployments need it twice: a root folds per-edge snapshots
// into its global view, and an edge that inherits a crashed peer's clients
// folds the handed-off state into its running filter so the re-homed
// clients keep their learned group estimates. MergeState must be
// all-or-nothing: on error the filter keeps its prior state untouched.
// data is the same opaque payload a StateSnapshotter produces.
type StateMerger interface {
	MergeState(data []byte) error
}

// StateDiffer is implemented by filters that can express the change
// between a previously-snapshotted state and their current state as a
// mergeable delta: MergeState(DiffState(prev)) applied to a filter
// holding prev reproduces the current state. The replicated root uses it
// to ship one small incremental per committed batch instead of a full
// snapshot. DiffState returns an error when no exact delta exists (the
// caller falls back to a full snapshot); data is the same opaque payload
// a StateSnapshotter produces.
type StateDiffer interface {
	DiffState(prev []byte) ([]byte, error)
}

// Decision is a filter's verdict for one update.
type Decision int

// Decision values. Accept feeds the update to the aggregator now, Defer
// re-queues it for a later round (its staleness keeps growing), Reject
// drops it permanently.
const (
	Accept Decision = iota + 1
	Defer
	Reject
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Accept:
		return "accept"
	case Defer:
		return "defer"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// FilterResult carries per-update decisions plus optional diagnostic
// scores (higher = more suspicious) for logging and analysis.
type FilterResult struct {
	// Decisions holds one verdict per input update, positionally.
	Decisions []Decision
	// Scores optionally holds the filter's per-update suspicion scores.
	Scores []float64
}

// Split partitions updates by decision, preserving order.
func (r FilterResult) Split(updates []*Update) (accepted, deferred, rejected []*Update) {
	for i, u := range updates {
		switch r.Decisions[i] {
		case Accept:
			accepted = append(accepted, u)
		case Defer:
			deferred = append(deferred, u)
		case Reject:
			rejected = append(rejected, u)
		}
	}
	return accepted, deferred, rejected
}

// AcceptAll builds a FilterResult accepting n updates.
func AcceptAll(n int) FilterResult {
	d := make([]Decision, n)
	for i := range d {
		d[i] = Accept
	}
	return FilterResult{Decisions: d}
}

// Passthrough is the no-defense filter; a server running Passthrough is
// exactly FedBuff.
type Passthrough struct{}

var _ Filter = Passthrough{}

// Filter implements Filter by accepting everything.
func (Passthrough) Filter(updates []*Update, round int) (FilterResult, error) {
	return AcceptAll(len(updates)), nil
}

// Name implements Filter.
func (Passthrough) Name() string { return "fedbuff" }
