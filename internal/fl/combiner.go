package fl

import "fmt"

// Combiner turns a batch of accepted updates into a single delta to apply
// to the global model. The default combiner is the weighted mean used by
// Aggregate; Byzantine-robust aggregation rules (trimmed mean, median,
// Krum) provide alternatives.
type Combiner interface {
	// Combine returns the delta to add to the global model.
	Combine(updates []*Update, cfg AggregatorConfig) ([]float64, error)
	// Name identifies the combiner.
	Name() string
}

// MeanCombiner is the FedAvg/FedBuff weighted-mean combiner, equivalent to
// Aggregate with a zero starting point.
type MeanCombiner struct{}

var _ Combiner = MeanCombiner{}

// Combine implements Combiner.
func (MeanCombiner) Combine(updates []*Update, cfg AggregatorConfig) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: MeanCombiner: no updates")
	}
	delta := make([]float64, len(updates[0].Delta))
	if _, err := Aggregate(delta, updates, cfg); err != nil {
		return nil, err
	}
	return delta, nil
}

// Name implements Combiner.
func (MeanCombiner) Name() string { return "mean" }
