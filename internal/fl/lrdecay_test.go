package fl

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/optim"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

func TestLRDecayValidation(t *testing.T) {
	train, _ := testData(t)
	m, _ := model.New(model.Config{Arch: model.ArchLinear, InputDim: 8, NumClasses: 3, Seed: 1})
	cfg := testTrainerConfig()
	cfg.LRDecayPerEpoch = -0.5
	if _, err := LocalTrain(m, train, cfg, randx.New(1)); err == nil {
		t.Error("negative decay accepted")
	}
	cfg.LRDecayPerEpoch = 1.5
	if _, err := LocalTrain(m, train, cfg, randx.New(1)); err == nil {
		t.Error("decay > 1 accepted")
	}
}

func TestLRDecayShrinksLaterEpochs(t *testing.T) {
	train, _ := testData(t)
	run := func(decay float64) []float64 {
		m, _ := model.New(model.Config{Arch: model.ArchLinear, InputDim: 8, NumClasses: 3, Seed: 2})
		cfg := TrainerConfig{
			Epochs:          4,
			BatchSize:       16,
			Optim:           optim.Config{Name: optim.SGDName, LR: 0.05},
			LRDecayPerEpoch: decay,
		}
		delta, err := LocalTrain(m, train, cfg, randx.New(3))
		if err != nil {
			t.Fatal(err)
		}
		return delta
	}
	noDecay := run(0)
	strongDecay := run(0.1)
	// With lr shrinking 10x per epoch, the total parameter movement must
	// be smaller than with a constant rate.
	if vecmath.Norm2(strongDecay) >= vecmath.Norm2(noDecay) {
		t.Errorf("decayed run moved %v >= undecayed %v", vecmath.Norm2(strongDecay), vecmath.Norm2(noDecay))
	}
	// Decay factor 1 must behave exactly like no decay.
	decayOne := run(1)
	if !vecmath.EqualApprox(decayOne, noDecay, 1e-12) {
		t.Error("decay=1 differs from decay disabled")
	}
}
