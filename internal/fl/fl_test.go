package fl

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/optim"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

func testData(t *testing.T) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	train, test, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name: "t", NumClasses: 3, Dim: 8,
		TrainSize: 300, TestSize: 90,
		Separation: 4, Noise: 0.8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func testTrainerConfig() TrainerConfig {
	return TrainerConfig{
		Epochs:    3,
		BatchSize: 16,
		Optim:     optim.Config{Name: optim.SGDName, LR: 0.05, Momentum: 0.9},
	}
}

func TestLocalTrainImprovesModel(t *testing.T) {
	train, test := testData(t)
	m, err := model.New(model.Config{Arch: model.ArchLinear, InputDim: 8, NumClasses: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	accBefore, _ := model.Evaluate(m, test)
	delta, err := LocalTrain(m, train, testTrainerConfig(), randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	accAfter, _ := model.Evaluate(m, test)
	if accAfter <= accBefore {
		t.Errorf("accuracy did not improve: %v -> %v", accBefore, accAfter)
	}
	if accAfter < 0.9 {
		t.Errorf("accuracy after training = %v, want >= 0.9", accAfter)
	}
	if vecmath.Norm2(delta) == 0 {
		t.Error("training produced zero delta")
	}
}

func TestLocalTrainDeltaConsistency(t *testing.T) {
	train, _ := testData(t)
	m, _ := model.New(model.Config{Arch: model.ArchLinear, InputDim: 8, NumClasses: 3, Seed: 2})
	start := make([]float64, m.NumParams())
	m.Params(start)
	delta, err := LocalTrain(m, train, testTrainerConfig(), randx.New(6))
	if err != nil {
		t.Fatal(err)
	}
	end := make([]float64, m.NumParams())
	m.Params(end)
	if !vecmath.EqualApprox(vecmath.Added(start, delta), end, 1e-12) {
		t.Error("delta != trained params - start params")
	}
}

func TestLocalTrainDeterminism(t *testing.T) {
	train, _ := testData(t)
	run := func() []float64 {
		m, _ := model.New(model.Config{Arch: model.ArchLinear, InputDim: 8, NumClasses: 3, Seed: 3})
		delta, err := LocalTrain(m, train, testTrainerConfig(), randx.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return delta
	}
	if !vecmath.EqualApprox(run(), run(), 0) {
		t.Error("identical seeds produced different deltas")
	}
}

func TestLocalTrainValidation(t *testing.T) {
	train, _ := testData(t)
	m, _ := model.New(model.Config{Arch: model.ArchLinear, InputDim: 8, NumClasses: 3, Seed: 4})
	if _, err := LocalTrain(m, train, TrainerConfig{Epochs: 0, BatchSize: 8, Optim: optim.Config{Name: optim.SGDName, LR: 0.1}}, randx.New(1)); err == nil {
		t.Error("Epochs=0 accepted")
	}
	if _, err := LocalTrain(m, train, TrainerConfig{Epochs: 1, BatchSize: 0, Optim: optim.Config{Name: optim.SGDName, LR: 0.1}}, randx.New(1)); err == nil {
		t.Error("BatchSize=0 accepted")
	}
	empty := &dataset.Dataset{NumClasses: 3, Dim: 8}
	if _, err := LocalTrain(m, empty, testTrainerConfig(), randx.New(1)); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestStalenessWeight(t *testing.T) {
	if got := StalenessWeight(0, 0.5); got != 1 {
		t.Errorf("StalenessWeight(0) = %v, want 1", got)
	}
	if got := StalenessWeight(3, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("StalenessWeight(3, 0.5) = %v, want 0.5", got)
	}
	if got := StalenessWeight(5, 0); got != 1 {
		t.Errorf("disabled discount = %v, want 1", got)
	}
	if got := StalenessWeight(-2, 0.5); got != 1 {
		t.Errorf("negative staleness = %v, want 1", got)
	}
	if StalenessWeight(10, 0.5) >= StalenessWeight(1, 0.5) {
		t.Error("weight should decrease with staleness")
	}
}

func TestAggregateUniform(t *testing.T) {
	global := []float64{0, 0}
	updates := []*Update{
		{ClientID: 1, Delta: []float64{2, 0}, NumSamples: 10},
		{ClientID: 2, Delta: []float64{0, 4}, NumSamples: 10},
	}
	weights, err := Aggregate(global, updates, AggregatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.EqualApprox(global, []float64{1, 2}, 1e-12) {
		t.Errorf("global = %v, want [1 2]", global)
	}
	if !vecmath.EqualApprox(weights, []float64{0.5, 0.5}, 1e-12) {
		t.Errorf("weights = %v", weights)
	}
}

func TestAggregateSampleWeighted(t *testing.T) {
	global := []float64{0}
	updates := []*Update{
		{Delta: []float64{1}, NumSamples: 30},
		{Delta: []float64{5}, NumSamples: 10},
	}
	if _, err := Aggregate(global, updates, AggregatorConfig{SampleWeighted: true}); err != nil {
		t.Fatal(err)
	}
	// (30*1 + 10*5)/40 = 2
	if math.Abs(global[0]-2) > 1e-12 {
		t.Errorf("global = %v, want 2", global[0])
	}
}

func TestAggregateStalenessDiscount(t *testing.T) {
	global := []float64{0}
	updates := []*Update{
		{Delta: []float64{1}, Staleness: 0, NumSamples: 1},
		{Delta: []float64{1}, Staleness: 8, NumSamples: 1},
	}
	weights, err := Aggregate(global, updates, AggregatorConfig{StalenessExponent: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if weights[1] >= weights[0] {
		t.Errorf("stale update weight %v >= fresh weight %v", weights[1], weights[0])
	}
}

func TestAggregateServerLR(t *testing.T) {
	global := []float64{0}
	updates := []*Update{{Delta: []float64{2}, NumSamples: 1}}
	if _, err := Aggregate(global, updates, AggregatorConfig{ServerLR: 0.5}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(global[0]-1) > 1e-12 {
		t.Errorf("global = %v, want 1", global[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	global := []float64{0, 0}
	if _, err := Aggregate(global, []*Update{{Delta: []float64{1}}}, AggregatorConfig{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	got, err := Aggregate(global, nil, AggregatorConfig{})
	if err != nil || got != nil {
		t.Errorf("empty aggregation: weights=%v err=%v", got, err)
	}
}

func TestPropertyAggregateConvexHull(t *testing.T) {
	// With uniform weights and no discount, the applied step equals the
	// mean delta, which must lie inside the per-coordinate hull.
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%6) + 1
		r := randx.New(seed)
		updates := make([]*Update, k)
		for i := range updates {
			updates[i] = &Update{Delta: randx.NormalVector(r, 4, 0, 5), NumSamples: 1}
		}
		global := make([]float64, 4)
		if _, err := Aggregate(global, updates, AggregatorConfig{}); err != nil {
			return false
		}
		for j := 0; j < 4; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, u := range updates {
				lo = math.Min(lo, u.Delta[j])
				hi = math.Max(hi, u.Delta[j])
			}
			if global[j] < lo-1e-9 || global[j] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneUpdate(t *testing.T) {
	u := &Update{ClientID: 3, Delta: []float64{1, 2}, Staleness: 4}
	c := CloneUpdate(u)
	c.Delta[0] = 99
	if u.Delta[0] != 1 {
		t.Error("CloneUpdate shares delta storage")
	}
	if c.ClientID != 3 || c.Staleness != 4 {
		t.Error("CloneUpdate dropped fields")
	}
}

func TestDecisionString(t *testing.T) {
	if Accept.String() != "accept" || Defer.String() != "defer" || Reject.String() != "reject" {
		t.Error("Decision strings wrong")
	}
	if Decision(0).String() == "accept" {
		t.Error("zero Decision should not stringify as accept")
	}
}

func TestFilterResultSplit(t *testing.T) {
	updates := []*Update{{ClientID: 1}, {ClientID: 2}, {ClientID: 3}}
	res := FilterResult{Decisions: []Decision{Accept, Reject, Defer}}
	acc, def, rej := res.Split(updates)
	if len(acc) != 1 || acc[0].ClientID != 1 {
		t.Errorf("accepted = %v", acc)
	}
	if len(def) != 1 || def[0].ClientID != 3 {
		t.Errorf("deferred = %v", def)
	}
	if len(rej) != 1 || rej[0].ClientID != 2 {
		t.Errorf("rejected = %v", rej)
	}
}

func TestPassthroughAcceptsAll(t *testing.T) {
	updates := []*Update{{ClientID: 1}, {ClientID: 2}}
	res, err := Passthrough{}.Filter(updates, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range res.Decisions {
		if d != Accept {
			t.Errorf("decision[%d] = %v, want accept", i, d)
		}
	}
	if (Passthrough{}).Name() != "fedbuff" {
		t.Error("Passthrough name should be fedbuff")
	}
}

func TestBufferBasics(t *testing.T) {
	b, err := NewBuffer(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.Ready() {
		t.Error("empty buffer reports ready")
	}
	if !b.Add(&Update{Staleness: 0}) {
		t.Error("fresh update rejected")
	}
	if b.Add(&Update{Staleness: 6}) {
		t.Error("over-limit staleness accepted")
	}
	b.Add(&Update{Staleness: 5}) // at the limit: accepted
	if !b.Ready() {
		t.Error("buffer at goal not ready")
	}
	got := b.Drain()
	if len(got) != 2 || b.Len() != 0 {
		t.Errorf("drain returned %d, buffer len %d", len(got), b.Len())
	}
	received, dropped := b.Stats()
	if received != 3 || dropped != 1 {
		t.Errorf("stats = %d received, %d dropped", received, dropped)
	}
}

func TestBufferValidation(t *testing.T) {
	if _, err := NewBuffer(0, 5); err == nil {
		t.Error("goal=0 accepted")
	}
}

func TestBufferNoLimit(t *testing.T) {
	b, _ := NewBuffer(1, 0)
	if !b.Add(&Update{Staleness: 1000}) {
		t.Error("limit disabled but stale update rejected")
	}
}

func TestBufferRequeue(t *testing.T) {
	b, _ := NewBuffer(3, 4)
	b.Requeue([]*Update{{Staleness: 2}, {Staleness: 4}})
	if b.Len() != 1 {
		t.Fatalf("requeue kept %d updates, want 1 (the other crossed the limit)", b.Len())
	}
	u := b.Drain()[0]
	if u.Staleness != 3 {
		t.Errorf("requeued staleness = %d, want 3", u.Staleness)
	}
	_, dropped := b.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}

func TestBufferRequeueAt(t *testing.T) {
	b, _ := NewBuffer(3, 4)
	// Version 5: an update trained from version 2 reads staleness 3
	// regardless of whatever stale value it carried; one trained from
	// version 0 crosses the limit and is dropped.
	dropped := b.RequeueAt([]*Update{
		{BaseVersion: 2, Staleness: 0},
		{BaseVersion: 0, Staleness: 1},
	}, 5)
	if dropped != 1 {
		t.Fatalf("RequeueAt dropped %d, want 1", dropped)
	}
	if b.Len() != 1 {
		t.Fatalf("RequeueAt kept %d updates, want 1", b.Len())
	}
	u := b.Drain()[0]
	if u.Staleness != 3 {
		t.Errorf("requeued staleness = %d, want 3 (recomputed as version-base)", u.Staleness)
	}
	_, droppedStale := b.Stats()
	if droppedStale != 1 {
		t.Errorf("dropped counter = %d, want 1", droppedStale)
	}
}

func TestBufferOldestBase(t *testing.T) {
	b, _ := NewBuffer(2, 0)
	if _, ok := b.OldestBase(); ok {
		t.Error("empty buffer reported an oldest base")
	}
	b.Add(&Update{BaseVersion: 7})
	b.Add(&Update{BaseVersion: 3})
	b.Add(&Update{BaseVersion: 9})
	if oldest, ok := b.OldestBase(); !ok || oldest != 3 {
		t.Errorf("OldestBase = %d, %v, want 3, true", oldest, ok)
	}
}

func TestBufferShedStalestFirst(t *testing.T) {
	b, _ := NewBuffer(2, 0)
	// Arrival order deliberately scrambled relative to BaseVersion; the
	// recorded Staleness fields are garbage on purpose — shedding must
	// order by BaseVersion, not by the stored staleness (which was
	// computed at different arrival versions and is not comparable).
	for _, u := range []*Update{
		{ClientID: 0, BaseVersion: 5, Staleness: 99},
		{ClientID: 1, BaseVersion: 2, Staleness: 0},
		{ClientID: 2, BaseVersion: 8, Staleness: 50},
		{ClientID: 3, BaseVersion: 2, Staleness: 7},
		{ClientID: 4, BaseVersion: 6, Staleness: 1},
	} {
		b.Add(u)
	}
	shed := b.Shed(3)
	if len(shed) != 3 {
		t.Fatalf("shed %d updates, want 3", len(shed))
	}
	// Victims: both BaseVersion-2 updates (earlier arrival first), then
	// BaseVersion 5.
	wantIDs := []int{1, 3, 0}
	for i, u := range shed {
		if u.ClientID != wantIDs[i] {
			t.Errorf("shed[%d] = client %d (base %d), want client %d",
				i, u.ClientID, u.BaseVersion, wantIDs[i])
		}
	}
	// Survivors keep arrival order.
	kept := b.Drain()
	if len(kept) != 2 || kept[0].ClientID != 2 || kept[1].ClientID != 4 {
		t.Errorf("survivors wrong: %+v", kept)
	}
}

func TestBufferShedBounds(t *testing.T) {
	b, _ := NewBuffer(2, 0)
	if got := b.Shed(3); got != nil {
		t.Errorf("shedding an empty buffer returned %v", got)
	}
	b.Add(&Update{BaseVersion: 1})
	b.Add(&Update{BaseVersion: 2})
	if got := b.Shed(0); got != nil {
		t.Errorf("Shed(0) returned %v", got)
	}
	if got := b.Shed(10); len(got) != 2 || b.Len() != 0 {
		t.Errorf("oversized shed returned %d, left %d buffered", len(got), b.Len())
	}
}

func TestBufferShedDoesNotDisarmReady(t *testing.T) {
	b, _ := NewBuffer(2, 0)
	b.Add(&Update{BaseVersion: 0})
	b.Add(&Update{BaseVersion: 1})
	b.Add(&Update{BaseVersion: 2})
	b.Shed(1)
	if !b.Ready() {
		t.Error("buffer at goal with fresh arrivals lost readiness after a shed")
	}
}

func TestBufferAccessors(t *testing.T) {
	b, _ := NewBuffer(7, 9)
	if b.Goal() != 7 || b.StalenessLimit() != 9 {
		t.Errorf("accessors: goal=%d limit=%d", b.Goal(), b.StalenessLimit())
	}
}

// TestBufferRequeueDoesNotRearmReady is the regression test for the
// partial-drain tight loop: after a watchdog drains a partial buffer and
// the deferred remainder is requeued past the goal, Ready must stay false
// until a fresh update arrives — otherwise every Ready poll would
// re-aggregate the same deferred batch with no new information.
func TestBufferRequeueDoesNotRearmReady(t *testing.T) {
	b, _ := NewBuffer(2, 0)
	b.Add(&Update{ClientID: 1})
	b.Add(&Update{ClientID: 2})
	b.Add(&Update{ClientID: 3})
	if !b.Ready() {
		t.Fatal("buffer past goal with fresh updates not ready")
	}
	deferred := b.Drain()
	if b.Ready() {
		t.Fatal("drained buffer still ready")
	}

	b.Requeue(deferred)
	if b.Len() < b.Goal() {
		t.Fatalf("requeue kept %d updates, goal is %d; test needs len >= goal", b.Len(), b.Goal())
	}
	if b.Ready() {
		t.Error("requeued deferrals alone re-armed Ready (tight-loop regression)")
	}

	b.Add(&Update{ClientID: 4})
	if !b.Ready() {
		t.Error("fresh arrival on a full buffer did not arm Ready")
	}

	// Same property for the drain-time-staleness variant.
	b2, _ := NewBuffer(2, 0)
	b2.RequeueAt([]*Update{{BaseVersion: 0}, {BaseVersion: 1}, {BaseVersion: 2}}, 3)
	if b2.Ready() {
		t.Error("RequeueAt alone re-armed Ready")
	}
	b2.Add(&Update{ClientID: 5})
	if !b2.Ready() {
		t.Error("fresh arrival after RequeueAt did not arm Ready")
	}
}

func TestBufferSnapshotRestore(t *testing.T) {
	b, _ := NewBuffer(3, 5)
	b.Add(&Update{ClientID: 1, BaseVersion: 2, Staleness: 1, Delta: []float64{1, 2}, NumSamples: 7})
	b.Add(&Update{ClientID: 2, BaseVersion: 3, Staleness: 0, Delta: []float64{3, 4}, NumSamples: 9})
	b.Add(&Update{ClientID: 3, Staleness: 9}) // dropped for staleness
	st := b.Snapshot()

	// The snapshot must be a deep copy: mutating it cannot reach back.
	st.Updates[0].Delta[0] = 99
	if b.Drain()[0].Delta[0] == 99 {
		t.Fatal("snapshot shares delta storage with the buffer")
	}
	st.Updates[0].Delta[0] = 1

	r, _ := NewBuffer(3, 5)
	r.Restore(st)
	if r.Len() != 2 {
		t.Fatalf("restored %d updates, want 2", r.Len())
	}
	received, dropped := r.Stats()
	if received != 3 || dropped != 1 {
		t.Errorf("restored stats = %d received, %d dropped; want 3, 1", received, dropped)
	}
	// Restored updates count as fresh: one more arrival reaches the goal.
	if r.Ready() {
		t.Error("restored buffer below goal reports ready")
	}
	r.Add(&Update{ClientID: 4, Delta: []float64{5, 6}})
	if !r.Ready() {
		t.Error("restored buffer at goal with fresh arrival not ready")
	}
	got := r.Drain()
	if got[0].ClientID != 1 || got[0].Delta[1] != 2 || got[1].NumSamples != 9 {
		t.Errorf("restored updates lost fields: %+v %+v", got[0], got[1])
	}
}
