package obsv

import (
	"github.com/asyncfl/asyncfilter/internal/fl"
)

// FilterSink adapts a Hub into an fl.FilterObserver: each decision
// event becomes a labeled counter bump, a score-histogram sample and a
// trace record; each round event becomes counters/gauges and a trace
// record. All metric handles are resolved once at construction so the
// callback path is allocation-free map-lookup-free.
type FilterSink struct {
	hub *Hub

	accepted  *Counter
	deferred  *Counter
	rejected  *Counter
	amnesty   *Counter
	rounds    *Counter
	wholesale *Counter
	scores    *Histogram
	groups    *Gauge
}

var _ fl.FilterObserver = (*FilterSink)(nil)

// NewFilterSink builds a filter sink over hub.
func NewFilterSink(hub *Hub) *FilterSink {
	r := hub.Registry
	return &FilterSink{
		hub:       hub,
		accepted:  r.Counter(`afl_filter_decisions_total{decision="accept"}`),
		deferred:  r.Counter(`afl_filter_decisions_total{decision="defer"}`),
		rejected:  r.Counter(`afl_filter_decisions_total{decision="reject"}`),
		amnesty:   r.Counter("afl_filter_amnesty_total"),
		rounds:    r.Counter("afl_filter_rounds_total"),
		wholesale: r.Counter("afl_filter_wholesale_rounds_total"),
		scores:    r.Histogram("afl_filter_suspicion_score", DefScoreBuckets),
		groups:    r.Gauge("afl_filter_groups"),
	}
}

// ObserveDecision implements fl.FilterObserver.
func (s *FilterSink) ObserveDecision(ev fl.DecisionEvent) {
	switch ev.Decision {
	case fl.Accept:
		s.accepted.Inc()
	case fl.Defer:
		s.deferred.Inc()
	case fl.Reject:
		s.rejected.Inc()
	}
	if ev.Amnesty {
		s.amnesty.Inc()
	}
	s.scores.Observe(ev.Score)
	s.hub.Tracer.Record(Record{
		Kind:      KindDecision,
		Round:     ev.Round,
		ClientID:  ev.ClientID,
		Group:     ev.Group,
		Cluster:   ev.Cluster,
		Score:     ev.Score,
		Decision:  int(ev.Decision),
		Amnesty:   ev.Amnesty,
		Wholesale: ev.Cluster < 0,
	})
}

// ObserveFilterRound implements fl.FilterObserver.
func (s *FilterSink) ObserveFilterRound(ev fl.FilterRoundEvent) {
	s.rounds.Inc()
	if ev.Wholesale {
		s.wholesale.Inc()
	}
	s.groups.Set(float64(ev.Groups))
	s.hub.Tracer.Record(Record{
		Kind:      KindRound,
		Round:     ev.Round,
		Batch:     ev.Batch,
		Accepted:  ev.Accepted,
		Deferred:  ev.Deferred,
		Rejected:  ev.Rejected,
		Wholesale: ev.Wholesale,
	})
}

// BufferSink adapts a Hub into an fl.BufferObserver: occupancy gauges
// plus churn counters.
type BufferSink struct {
	pending      *Gauge
	fresh        *Gauge
	ready        *Gauge
	added        *Counter
	droppedStale *Counter
	requeued     *Counter
	shed         *Counter
	drained      *Counter
}

var _ fl.BufferObserver = (*BufferSink)(nil)

// NewBufferSink builds a buffer sink over hub.
func NewBufferSink(hub *Hub) *BufferSink {
	r := hub.Registry
	return &BufferSink{
		pending:      r.Gauge("afl_buffer_pending"),
		fresh:        r.Gauge("afl_buffer_fresh"),
		ready:        r.Gauge("afl_buffer_ready"),
		added:        r.Counter("afl_buffer_added_total"),
		droppedStale: r.Counter("afl_buffer_dropped_stale_total"),
		requeued:     r.Counter("afl_buffer_requeued_total"),
		shed:         r.Counter("afl_buffer_shed_total"),
		drained:      r.Counter("afl_buffer_drained_total"),
	}
}

// ObserveBuffer implements fl.BufferObserver.
func (s *BufferSink) ObserveBuffer(ev fl.BufferEvent) {
	s.pending.Set(float64(ev.Pending))
	s.fresh.Set(float64(ev.Fresh))
	ready := 0.0
	if ev.Ready {
		ready = 1.0
	}
	s.ready.Set(ready)
	s.added.Add(uint64(ev.Added))
	s.droppedStale.Add(uint64(ev.DroppedStale))
	s.requeued.Add(uint64(ev.Requeued))
	s.shed.Add(uint64(ev.Shed))
	s.drained.Add(uint64(ev.Drained))
}
