package obsv

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerMetrics(t *testing.T) {
	hub := NewHub(16)
	hub.Registry.Counter("afl_rounds_total").Add(3)
	srv := httptest.NewServer(Handler(hub, nil))
	defer srv.Close()

	code, body := getBody(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "# TYPE afl_rounds_total counter") ||
		!strings.Contains(body, "afl_rounds_total 3") {
		t.Fatalf("metrics body:\n%s", body)
	}
}

func TestHandlerTrace(t *testing.T) {
	hub := NewHub(16)
	hub.Tracer.Record(Record{
		Kind: KindDecision, Round: 2, ClientID: 0, Group: 1, Cluster: 2,
		Score: 0.9, Decision: DecisionReject,
	})
	hub.Tracer.Record(Record{
		Kind: KindRound, Round: 2, Batch: 8, Accepted: 6, Deferred: 1,
		Rejected: 1, LatencyNanos: 1500,
	})
	srv := httptest.NewServer(Handler(hub, nil))
	defer srv.Close()

	code, body := getBody(t, srv, "/trace")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var payload struct {
		Total   uint64 `json:"total"`
		Records []struct {
			Seq      uint64 `json:"seq"`
			Kind     string `json:"kind"`
			Round    int    `json:"round"`
			ClientID *int   `json:"client_id"`
			Cluster  *int   `json:"cluster"`
			Decision string `json:"decision"`
			Batch    *int   `json:"batch"`
			Rejected *int   `json:"rejected"`
		} `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if payload.Total != 2 || len(payload.Records) != 2 {
		t.Fatalf("payload: %+v", payload)
	}
	dec := payload.Records[0]
	if dec.Kind != "decision" || dec.Decision != "reject" || dec.ClientID == nil || *dec.ClientID != 0 {
		t.Errorf("decision record: %+v", dec)
	}
	rnd := payload.Records[1]
	if rnd.Kind != "round" || rnd.Batch == nil || *rnd.Batch != 8 || rnd.Rejected == nil || *rnd.Rejected != 1 {
		t.Errorf("round record: %+v", rnd)
	}

	// ?n=1 trims to the newest record.
	_, body = getBody(t, srv, "/trace?n=1")
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Records) != 1 || payload.Records[0].Kind != "round" {
		t.Fatalf("trace?n=1: %+v", payload.Records)
	}

	// Bad n is a 400, not a panic.
	if code, _ := getBody(t, srv, "/trace?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad n status = %d, want 400", code)
	}
}

func TestHandlerHealthz(t *testing.T) {
	state := Health{Rounds: 4}
	srv := httptest.NewServer(Handler(NewHub(4), func() Health { return state }))
	defer srv.Close()

	code, body := getBody(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy status = %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Rounds != 4 || h.Draining {
		t.Fatalf("health: %+v", h)
	}
	if h.Status != "ok" {
		t.Fatalf("healthy Status = %q, want ok", h.Status)
	}

	// Degraded (an edge running without its root) is impaired but still
	// accepting work: 200 with the state visible in the body, so health
	// checks do not rotate out the only servers still taking clients.
	state.Degraded = true
	code, body = getBody(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("degraded status = %d, want 200", code)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if !h.Degraded || h.Status != "degraded" {
		t.Fatalf("degraded health: %+v", h)
	}

	// Draining refuses work and wins over degraded: 503.
	state.Draining = true
	code, body = getBody(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining status = %d, want 503", code)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Fatalf("draining Status = %q, want draining", h.Status)
	}
	state.Draining = false
	state.Degraded = false

	// nil health func serves a zero Health at 200.
	srv2 := httptest.NewServer(Handler(NewHub(4), nil))
	defer srv2.Close()
	if code, _ := getBody(t, srv2, "/healthz"); code != http.StatusOK {
		t.Fatalf("nil health status = %d", code)
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(NewHub(4), nil))
	defer srv.Close()
	code, body := getBody(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: status %d\n%.200s", code, body)
	}
}
