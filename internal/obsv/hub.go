package obsv

// Hub bundles a metrics registry with an event tracer — the unit of
// observability a server or experiment run carries around. A nil *Hub
// is the universal "observability disabled" value; instrumentation
// sites nil-check the hub (or the sinks built from it) and skip.
type Hub struct {
	Registry *Registry
	Tracer   *Tracer
}

// NewHub returns a hub with a fresh registry and a tracer of the given
// depth (DefaultTraceDepth when depth <= 0).
func NewHub(traceDepth int) *Hub {
	return &Hub{Registry: NewRegistry(), Tracer: NewTracer(traceDepth)}
}
