package obsv

import (
	"sync"
	"testing"
)

func TestTracerDefaults(t *testing.T) {
	if d := NewTracer(0).Depth(); d != DefaultTraceDepth {
		t.Fatalf("default depth = %d, want %d", d, DefaultTraceDepth)
	}
	if d := NewTracer(-3).Depth(); d != DefaultTraceDepth {
		t.Fatalf("negative depth = %d, want %d", d, DefaultTraceDepth)
	}
	if d := NewTracer(16).Depth(); d != 16 {
		t.Fatalf("depth = %d, want 16", d)
	}
}

func TestTracerLastOrderingAndWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Record{Kind: KindRound, Round: i})
	}
	if got := tr.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}

	// The ring holds the last 4, oldest first.
	recs := tr.Last(0)
	if len(recs) != 4 {
		t.Fatalf("len = %d, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Round != 6+i {
			t.Errorf("recs[%d].Round = %d, want %d", i, r.Round, 6+i)
		}
		if r.Seq != uint64(6+i) {
			t.Errorf("recs[%d].Seq = %d, want %d", i, r.Seq, 6+i)
		}
	}

	// Last(2) trims to the newest two.
	recs = tr.Last(2)
	if len(recs) != 2 || recs[0].Round != 8 || recs[1].Round != 9 {
		t.Fatalf("Last(2) = %+v", recs)
	}

	// Asking for more than held returns what is held.
	if got := len(tr.Last(100)); got != 4 {
		t.Fatalf("Last(100) len = %d, want 4", got)
	}
}

func TestTracerBeforeWrap(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Record{Kind: KindDecision, ClientID: 7})
	recs := tr.Last(0)
	if len(recs) != 1 || recs[0].ClientID != 7 || recs[0].Seq != 0 {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].UnixNanos == 0 {
		t.Error("record not timestamped")
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Record{Kind: KindDecision, Round: i})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = tr.Last(16)
			_ = tr.Total()
		}
	}()
	wg.Wait()
	if got := tr.Total(); got != 8*500 {
		t.Fatalf("total = %d, want %d", got, 8*500)
	}
	// Sequence numbers in the ring are strictly increasing.
	recs := tr.Last(0)
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("non-contiguous seqs at %d: %d then %d", i, recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestKindAndDecisionStrings(t *testing.T) {
	if KindDecision.String() != "decision" || KindRound.String() != "round" || Kind(99).String() != "unknown" {
		t.Error("Kind.String mismatch")
	}
	if DecisionString(DecisionAccept) != "accept" ||
		DecisionString(DecisionDefer) != "defer" ||
		DecisionString(DecisionReject) != "reject" ||
		DecisionString(0) != "" {
		t.Error("DecisionString mismatch")
	}
}
