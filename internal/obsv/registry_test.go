package obsv

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("get-or-create returned a different counter for the same name")
	}
	c.Set(42)
	if got := c.Value(); got != 42 {
		t.Fatalf("after Set: %d, want 42", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got < 1.999 || got > 2.001 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	if r.Gauge("depth") != g {
		t.Fatal("get-or-create returned a different gauge for the same name")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	snap := h.snapshot()
	// 0.5 and 1 land in le=1 (upper-inclusive), 5 in le=10, 50 in
	// le=100, 500 overflows.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, snap.Buckets[i], w, snap.Buckets)
		}
	}
	if snap.Sum < 556.4 || snap.Sum > 556.6 {
		t.Fatalf("sum = %v, want 556.5", snap.Sum)
	}
}

// A single observation must produce a coherent histogram — the
// degenerate case that trips off-by-one cumulative-bucket logic.
func TestHistogramSingleElement(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("one", []float64{1, 2})
	h.Observe(1.5)
	snap := h.snapshot()
	if snap.Count != 1 {
		t.Fatalf("count = %d, want 1", snap.Count)
	}
	if snap.Buckets[0] != 0 || snap.Buckets[1] != 1 || snap.Buckets[2] != 0 {
		t.Fatalf("buckets = %v, want [0 1 0]", snap.Buckets)
	}
	if snap.Sum < 1.49 || snap.Sum > 1.51 {
		t.Fatalf("sum = %v, want 1.5", snap.Sum)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`one_bucket{le="1"} 0`,
		`one_bucket{le="2"} 1`,
		`one_bucket{le="+Inf"} 1`,
		"one_sum 1.5",
		"one_count 1",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestHistogramUnsortedBoundsSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{10, 1})
	h.Observe(5)
	snap := h.snapshot()
	if snap.Bounds[0] > snap.Bounds[1] {
		t.Fatalf("bounds not sorted: %v", snap.Bounds)
	}
	if snap.Buckets[1] != 1 {
		t.Fatalf("5 should land in le=10: %v", snap.Buckets)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`req_total{code="a"}`).Add(2)
	r.Counter(`req_total{code="b"}`).Add(3)
	r.Counter("plain_total").Inc()
	r.Gauge("depth").Set(7)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// One TYPE line per family even with multiple labeled series.
	if got := strings.Count(out, "# TYPE req_total counter"); got != 1 {
		t.Errorf("TYPE req_total lines = %d, want 1\n%s", got, out)
	}
	for _, line := range []string{
		`req_total{code="a"} 2`,
		`req_total{code="b"} 3`,
		"plain_total 1",
		"# TYPE depth gauge",
		"depth 7",
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}

	// Deterministic output: a second render is byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("two renders of an unchanged registry differ")
	}
}

func TestOnCollectRunsBeforeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mirrored_total")
	source := 0
	r.OnCollect(func() { c.Set(uint64(source)) })

	source = 9
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mirrored_total 9") {
		t.Fatalf("collector did not run before render:\n%s", sb.String())
	}

	source = 12
	snap := r.Snapshot()
	if snap.Counters["mirrored_total"] != 12 {
		t.Fatalf("collector did not run before snapshot: %v", snap.Counters)
	}
}

func TestSnapshotContents(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(1.25)
	r.Histogram("h", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	if snap.Counters["c_total"] != 3 {
		t.Errorf("counter snapshot: %v", snap.Counters)
	}
	if v := snap.Gauges["g"]; v < 1.24 || v > 1.26 {
		t.Errorf("gauge snapshot: %v", snap.Gauges)
	}
	h := snap.Histograms["h"]
	if h.Count != 1 || h.Buckets[0] != 1 {
		t.Errorf("histogram snapshot: %+v", h)
	}
}

// Hammer every metric type from many goroutines while concurrently
// rendering; run under -race this is the registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c_total")
			g := r.Gauge("g")
			h := r.Histogram("h", []float64{1, 2, 4})
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			_ = r.WritePrometheus(&sb)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()

	if got := r.Counter("c_total").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("g").Value(); math.Abs(got-workers*iters) > 0.5 {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}
