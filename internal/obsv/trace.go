package obsv

import (
	"sync"
	"time"
)

// DefaultTraceDepth is the ring capacity used when a Tracer is created
// with depth <= 0. At ~100 bytes per record that is ~400KB of fixed
// memory holding the last few hundred rounds of an 8-goal deployment.
const DefaultTraceDepth = 4096

// Kind discriminates trace record types.
type Kind uint8

const (
	// KindDecision is one filter verdict for one client update.
	KindDecision Kind = iota + 1
	// KindRound is one committed aggregation round.
	KindRound
)

// String returns the JSON-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindDecision:
		return "decision"
	case KindRound:
		return "round"
	default:
		return "unknown"
	}
}

// Decision values mirror fl.Decision (obsv cannot import fl — the sinks
// in this package translate). Zero means "not a decision record".
const (
	DecisionAccept = 1
	DecisionDefer  = 2
	DecisionReject = 3
)

// DecisionString renders a Decision* value for JSON output.
func DecisionString(d int) string {
	switch d {
	case DecisionAccept:
		return "accept"
	case DecisionDefer:
		return "defer"
	case DecisionReject:
		return "reject"
	default:
		return ""
	}
}

// Record is one trace event. It is a flat value struct — no pointers,
// no strings — so the ring buffer is a single contiguous allocation and
// recording is a struct copy. Fields are kind-specific:
//
//   - KindDecision uses Round, ClientID, Group, Cluster (-1 when the
//     filter accepted the batch wholesale without clustering), Score,
//     Decision and Amnesty.
//   - KindRound uses Round, Batch, Accepted, Deferred, Rejected,
//     Wholesale and LatencyNanos (zero when latency is not tracked,
//     e.g. simulator rounds).
type Record struct {
	Seq       uint64
	UnixNanos int64
	Kind      Kind

	Round    int
	ClientID int
	Group    int
	Cluster  int
	Score    float64
	Decision int
	Amnesty  bool

	Batch        int
	Accepted     int
	Deferred     int
	Rejected     int
	Wholesale    bool
	LatencyNanos int64
}

// Tracer is a bounded ring buffer of Records. Record overwrites the
// oldest entry once the ring is full; Last copies out the newest
// entries. Safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	ring  []Record
	total uint64 // records ever written; next Seq
}

// NewTracer returns a tracer holding the last depth records
// (DefaultTraceDepth when depth <= 0). The ring is allocated up front.
func NewTracer(depth int) *Tracer {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	return &Tracer{ring: make([]Record, depth)}
}

// Depth returns the ring capacity.
func (t *Tracer) Depth() int { return len(t.ring) }

// Record stamps rec with a sequence number and wall-clock time and
// stores it, overwriting the oldest record when the ring is full.
func (t *Tracer) Record(rec Record) {
	now := time.Now().UnixNano()
	t.mu.Lock()
	rec.Seq = t.total
	rec.UnixNanos = now
	t.ring[t.total%uint64(len(t.ring))] = rec
	t.total++
	t.mu.Unlock()
}

// Total returns the number of records ever written (>= what the ring
// still holds).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Last returns up to n of the most recent records, oldest first. n <= 0
// means everything the ring still holds.
func (t *Tracer) Last(n int) []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	held := t.total
	if held > uint64(len(t.ring)) {
		held = uint64(len(t.ring))
	}
	if n > 0 && uint64(n) < held {
		held = uint64(n)
	}
	out := make([]Record, held)
	for i := uint64(0); i < held; i++ {
		out[i] = t.ring[(t.total-held+i)%uint64(len(t.ring))]
	}
	return out
}
