// Package obsv is the observability layer: a stdlib-only metrics
// registry (counters, gauges, histograms with atomic hot paths and
// snapshot-on-read), a bounded ring-buffer event tracer for per-decision
// and per-round records, and an HTTP introspection handler exposing
// /metrics (Prometheus text format), /trace (JSON), /healthz and pprof.
//
// Design constraints:
//   - Hot paths (Counter.Inc, Gauge.Set, Histogram.Observe, Tracer.Record)
//     never allocate and never block on anything slower than a mutex.
//   - Reads (WritePrometheus, Snapshot, Last) see a consistent point-in-time
//     view without stalling writers.
//   - Everything is safe for concurrent use; the package has no goroutines
//     of its own.
package obsv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use; Inc/Add are a single atomic op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value. It exists for OnCollect collectors that
// mirror an externally-owned counter (e.g. transport.ServerStats) into
// the registry just before a scrape; ordinary instrumentation should
// only ever Inc/Add.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current value.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 metric (queue depths, ratios).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Observe is
// allocation-free: a linear scan over the (small) bound slice, one
// atomic bucket increment, one atomic count increment and a CAS loop
// for the sum. Bounds are upper-inclusive like Prometheus ("le").
type Histogram struct {
	bounds  []float64       // sorted ascending; immutable after New
	buckets []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefLatencyBuckets covers round-commit latencies from sub-millisecond
// simulator rounds to multi-minute stalled deployments.
var DefLatencyBuckets = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120,
}

// DefScoreBuckets covers normalized suspicion scores, which land in
// [0, 1] by construction (Eq. 7) with most mass near the extremes.
var DefScoreBuckets = []float64{
	.05, .1, .2, .3, .4, .5, .6, .7, .8, .9, .95, 1,
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds) // +Inf overflow bucket
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Buckets are per-bucket (not cumulative) counts aligned with Bounds;
// the final extra entry is the +Inf overflow bucket.
type HistogramSnapshot struct {
	Count   uint64    `json:"count"`
	Sum     float64   `json:"sum"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     h.Sum(),
		Bounds:  h.bounds, // immutable, safe to share
		Buckets: make([]uint64, len(h.buckets)),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Registry holds named metrics and renders them. Metric handles are
// get-or-create by full name — including any label suffix, so
// `afl_nacks_total{code="rate-limited"}` and
// `afl_nacks_total{code="overloaded"}` are distinct series that render
// under one TYPE line. Handle lookup takes the registry mutex; callers
// on hot paths should look up once and retain the handle.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds if needed. Bounds are fixed at creation;
// a second registration under the same name returns the original
// histogram and ignores the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// OnCollect registers fn to run before every WritePrometheus or
// Snapshot, in registration order. Collectors bridge pull-model state
// (e.g. Server.Stats) into the registry so a scrape always reflects the
// authoritative source. fn runs on the scraping goroutine without the
// registry mutex held, so it may call Counter/Gauge/Histogram.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (r *Registry) collect() {
	r.mu.Lock()
	fns := make([]func(), len(r.collectors))
	copy(fns, r.collectors)
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// Snapshot is a point-in-time JSON-marshalable copy of every metric.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot runs the collectors and copies out every metric.
func (r *Registry) Snapshot() Snapshot {
	r.collect()
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// baseName strips a trailing {label="..."} suffix, returning the metric
// family name a TYPE comment applies to.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus runs the collectors and renders every metric in the
// Prometheus text exposition format, sorted by name for deterministic
// output. Labeled series of one family share a single TYPE line.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.collect()

	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h.snapshot()
	}
	r.mu.Unlock()

	var sb strings.Builder
	writeFamily := func(names []string, typ string, value func(string) string) {
		sort.Strings(names)
		lastBase := ""
		for _, name := range names {
			if b := baseName(name); b != lastBase {
				fmt.Fprintf(&sb, "# TYPE %s %s\n", b, typ)
				lastBase = b
			}
			fmt.Fprintf(&sb, "%s %s\n", name, value(name))
		}
	}

	cnames := make([]string, 0, len(counters))
	for name := range counters {
		cnames = append(cnames, name)
	}
	writeFamily(cnames, "counter", func(n string) string {
		return strconv.FormatUint(counters[n], 10)
	})

	gnames := make([]string, 0, len(gauges))
	for name := range gauges {
		gnames = append(gnames, name)
	}
	writeFamily(gnames, "gauge", func(n string) string {
		return formatFloat(gauges[n])
	})

	hnames := make([]string, 0, len(hists))
	for name := range hists {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := hists[name]
		fmt.Fprintf(&sb, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
		}
		cum += h.Buckets[len(h.Buckets)-1]
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&sb, "%s_sum %s\n", name, formatFloat(h.Sum))
		fmt.Fprintf(&sb, "%s_count %d\n", name, h.Count)
	}

	_, err := io.WriteString(w, sb.String())
	return err
}
