package obsv

import (
	"testing"

	"github.com/asyncfl/asyncfilter/internal/fl"
)

func TestFilterSinkTranslation(t *testing.T) {
	hub := NewHub(16)
	sink := NewFilterSink(hub)

	sink.ObserveDecision(fl.DecisionEvent{
		Round: 1, ClientID: 3, Group: 2, Cluster: 2, Score: 0.95,
		Decision: fl.Reject,
	})
	sink.ObserveDecision(fl.DecisionEvent{
		Round: 1, ClientID: 4, Group: 0, Cluster: 0, Score: 0.05,
		Decision: fl.Accept, Amnesty: true,
	})
	sink.ObserveFilterRound(fl.FilterRoundEvent{
		Round: 1, Batch: 2, Accepted: 1, Rejected: 1, Groups: 2,
	})

	snap := hub.Registry.Snapshot()
	if snap.Counters[`afl_filter_decisions_total{decision="reject"}`] != 1 {
		t.Errorf("reject counter: %v", snap.Counters)
	}
	if snap.Counters[`afl_filter_decisions_total{decision="accept"}`] != 1 {
		t.Errorf("accept counter: %v", snap.Counters)
	}
	if snap.Counters["afl_filter_amnesty_total"] != 1 {
		t.Errorf("amnesty counter: %v", snap.Counters)
	}
	if snap.Counters["afl_filter_rounds_total"] != 1 {
		t.Errorf("rounds counter: %v", snap.Counters)
	}
	if g := snap.Gauges["afl_filter_groups"]; g < 1.9 || g > 2.1 {
		t.Errorf("groups gauge = %v, want 2", g)
	}
	if snap.Histograms["afl_filter_suspicion_score"].Count != 2 {
		t.Errorf("score histogram: %+v", snap.Histograms)
	}

	recs := hub.Tracer.Last(0)
	if len(recs) != 3 {
		t.Fatalf("trace records = %d, want 3", len(recs))
	}
	if recs[0].Kind != KindDecision || recs[0].Decision != DecisionReject || recs[0].ClientID != 3 {
		t.Errorf("first record: %+v", recs[0])
	}
	if recs[2].Kind != KindRound || recs[2].Batch != 2 {
		t.Errorf("round record: %+v", recs[2])
	}
}

func TestFilterSinkWholesaleCluster(t *testing.T) {
	hub := NewHub(16)
	sink := NewFilterSink(hub)
	sink.ObserveDecision(fl.DecisionEvent{
		Round: 1, ClientID: 0, Cluster: -1, Score: 0, Decision: fl.Accept,
	})
	recs := hub.Tracer.Last(0)
	if !recs[0].Wholesale || recs[0].Cluster != -1 {
		t.Fatalf("wholesale record: %+v", recs[0])
	}
}

func TestBufferSinkTranslation(t *testing.T) {
	hub := NewHub(4)
	sink := NewBufferSink(hub)

	sink.ObserveBuffer(fl.BufferEvent{Pending: 3, Fresh: 2, Ready: false, Added: 1})
	sink.ObserveBuffer(fl.BufferEvent{Pending: 4, Fresh: 3, Ready: true, Added: 1})
	sink.ObserveBuffer(fl.BufferEvent{Pending: 0, Fresh: 0, Drained: 4})
	sink.ObserveBuffer(fl.BufferEvent{Pending: 2, Requeued: 2, DroppedStale: 1})
	sink.ObserveBuffer(fl.BufferEvent{Pending: 1, Shed: 1})

	snap := hub.Registry.Snapshot()
	if v := snap.Gauges["afl_buffer_pending"]; v < 0.9 || v > 1.1 {
		t.Errorf("pending gauge = %v, want 1", v)
	}
	checks := map[string]uint64{
		"afl_buffer_added_total":         2,
		"afl_buffer_drained_total":       4,
		"afl_buffer_requeued_total":      2,
		"afl_buffer_dropped_stale_total": 1,
		"afl_buffer_shed_total":          1,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if v := snap.Gauges["afl_buffer_ready"]; v > 0.1 {
		t.Errorf("ready gauge = %v, want 0", v)
	}
}
