package obsv

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Health is what /healthz reports about a server's lifecycle state.
type Health struct {
	// Draining is true once a graceful drain has begun.
	Draining bool `json:"draining"`
	// Finished is true once the deployment has completed its rounds
	// (or a drain flushed the final one).
	Finished bool `json:"finished"`
	// Degraded is true while the server is partition-tolerant but
	// impaired: a hierarchical edge whose upstream root link is down
	// keeps admitting, filtering and buffering, so it still serves —
	// /healthz stays 200 — but operators and orchestrators should see
	// the impairment. Distinct from Draining, which refuses work (503).
	Degraded bool `json:"degraded"`
	// Status is the single-word state summary: "ok", "degraded",
	// "draining" or "finished". Filled in by the handler.
	Status string `json:"status,omitempty"`
	// Restored is true when the server recovered its state from a
	// checkpoint at startup.
	Restored bool `json:"restored"`
	// Rounds is the current committed round (model version).
	Rounds int `json:"rounds"`
	// Role is the replication role of a replicated root — "primary",
	// "standby", "promoting" or "fenced" (internal/replica). Empty for
	// unreplicated servers.
	Role string `json:"role,omitempty"`
	// Epoch is the replicated root's fencing epoch (omitted at 0: a
	// first-generation primary that has never failed over).
	Epoch uint64 `json:"epoch,omitempty"`
}

// status summarizes the lifecycle into one word. Draining/finished win
// over degraded: a server on its way out is not coming back, regardless
// of its upstream link.
func (h Health) status() string {
	switch {
	case h.Finished:
		return "finished"
	case h.Draining:
		return "draining"
	case h.Degraded:
		return "degraded"
	default:
		return "ok"
	}
}

// recordView is the JSON shape of a trace Record: enums become strings,
// kind-irrelevant fields are dropped.
type recordView struct {
	Seq       uint64 `json:"seq"`
	UnixNanos int64  `json:"unix_nanos"`
	Kind      string `json:"kind"`
	Round     int    `json:"round"`

	ClientID *int    `json:"client_id,omitempty"`
	Group    *int    `json:"group,omitempty"`
	Cluster  *int    `json:"cluster,omitempty"`
	Score    *string `json:"score,omitempty"`
	Decision string  `json:"decision,omitempty"`
	Amnesty  bool    `json:"amnesty,omitempty"`

	Batch        *int  `json:"batch,omitempty"`
	Accepted     *int  `json:"accepted,omitempty"`
	Deferred     *int  `json:"deferred,omitempty"`
	Rejected     *int  `json:"rejected,omitempty"`
	Wholesale    bool  `json:"wholesale,omitempty"`
	LatencyNanos int64 `json:"latency_nanos,omitempty"`
}

func viewOf(r Record) recordView {
	v := recordView{
		Seq:       r.Seq,
		UnixNanos: r.UnixNanos,
		Kind:      r.Kind.String(),
		Round:     r.Round,
	}
	switch r.Kind {
	case KindDecision:
		// Pointer fields so valid zero values (client 0, group 0,
		// cluster 0) are not swallowed by omitempty.
		cid, grp, cl := r.ClientID, r.Group, r.Cluster
		v.ClientID, v.Group, v.Cluster = &cid, &grp, &cl
		score := formatFloat(r.Score)
		v.Score = &score
		v.Decision = DecisionString(r.Decision)
		v.Amnesty = r.Amnesty
		v.Wholesale = r.Wholesale
	case KindRound:
		batch, acc, def, rej := r.Batch, r.Accepted, r.Deferred, r.Rejected
		v.Batch, v.Accepted, v.Deferred, v.Rejected = &batch, &acc, &def, &rej
		v.Wholesale = r.Wholesale
		v.LatencyNanos = r.LatencyNanos
	}
	return v
}

// TraceJSON renders the tracer's last n records (n <= 0: all held) as
// the same JSON document the /trace endpoint serves.
func TraceJSON(tr *Tracer, n int) ([]byte, error) {
	records := tr.Last(n)
	views := make([]recordView, len(records))
	for i, r := range records {
		views[i] = viewOf(r)
	}
	return json.MarshalIndent(struct {
		Total   uint64       `json:"total"`
		Records []recordView `json:"records"`
	}{Total: tr.Total(), Records: views}, "", "  ")
}

// Handler serves the introspection endpoints for a hub:
//
//	GET /metrics        Prometheus text exposition of the registry
//	GET /trace?n=N      last N trace records as JSON (default: all held)
//	GET /healthz        lifecycle state; 503 once draining or finished
//	GET /debug/pprof/*  net/http/pprof
//
// health may be nil, in which case /healthz always reports a zero
// Health with status 200.
func Handler(hub *Hub, health func() Health) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = hub.Registry.WritePrometheus(w)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if raw := req.URL.Query().Get("n"); raw != "" {
			parsed, err := strconv.Atoi(raw)
			if err != nil || parsed < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = parsed
		}
		body, err := TraceJSON(hub.Tracer, n)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
		_, _ = w.Write([]byte("\n"))
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		var h Health
		if health != nil {
			h = health()
		}
		h.Status = h.status()
		w.Header().Set("Content-Type", "application/json")
		// A draining or finished server is no longer accepting work:
		// report 503 so load-balancer-style checks rotate it out while
		// humans can still read the JSON body. A degraded server (edge
		// running partition-tolerant without its root) still accepts
		// work and must NOT be rotated out — that would amplify a root
		// outage into a client outage — so it stays 200 with the
		// impairment visible in the body.
		if h.Draining || h.Finished {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}
