package experiments

import (
	"strings"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/sim"
)

// shrink rescales a simulation config so experiment tests run in
// milliseconds while preserving structure.
func shrink(c *sim.Config) {
	c.NumClients = 16
	c.NumMalicious = 3
	c.AggregationGoal = 8
	c.Rounds = 3
	c.Data.TrainSize = 1500
	c.Data.TestSize = 200
	c.PartitionSize = 40
	c.Trainer.Epochs = 1
}

func TestNewFilterKnownNames(t *testing.T) {
	for _, name := range SortedFilterNames() {
		f, err := NewFilter(name, 1)
		if err != nil {
			t.Errorf("NewFilter(%q): %v", name, err)
			continue
		}
		if name == FilterFedBuff {
			if f != nil {
				t.Error("fedbuff should map to nil (pass-through)")
			}
			continue
		}
		if f == nil {
			t.Errorf("NewFilter(%q) returned nil", name)
		}
	}
	if _, err := NewFilter("unknown", 1); err == nil {
		t.Error("unknown filter accepted")
	}
}

func TestTableSpecsCoverPaper(t *testing.T) {
	for _, id := range []string{"table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9", "table10"} {
		spec, err := TableSpecByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if spec.ID != id || spec.Preset == "" || len(spec.Attacks) == 0 || len(spec.Filters) == 0 {
			t.Errorf("%s: incomplete spec %+v", id, spec)
		}
	}
	if _, err := TableSpecByID("table99"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := TableSpecByID("fig6"); err == nil {
		t.Error("figure id accepted as table")
	}
}

func TestIDsListAllExperiments(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("IDs() has %d entries, want 13 (9 tables + 4 figures)", len(ids))
	}
}

func TestRunTableShrunken(t *testing.T) {
	spec := TableSpec{
		ID: "test-table", Title: "shrunken",
		Preset:  "mnist",
		Attacks: []string{attack.NoneName, attack.GDName},
		Filters: []string{FilterFedBuff, FilterAsyncFilter},
		Mutate:  shrink,
	}
	table, err := RunTable(spec, Scale{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range spec.Filters {
		for _, a := range spec.Attacks {
			c, ok := table.Get(f, a)
			if !ok {
				t.Fatalf("missing cell %s/%s", f, a)
			}
			if c.Accuracy <= 0 || c.Accuracy > 1 {
				t.Errorf("cell %s/%s accuracy = %v", f, a, c.Accuracy)
			}
		}
	}
	out := table.Render()
	if !strings.Contains(out, "| Method |") || !strings.Contains(out, "GD") {
		t.Errorf("render missing structure:\n%s", out)
	}
	csv := table.CSV()
	if !strings.Contains(csv, "test-table,fedbuff,none,") {
		t.Errorf("CSV missing rows:\n%s", csv)
	}
}

func TestRunTableRepeatsProduceStd(t *testing.T) {
	spec := TableSpec{
		ID: "t", Title: "t", Preset: "mnist",
		Attacks: []string{attack.NoneName},
		Filters: []string{FilterFedBuff},
		Mutate:  shrink,
	}
	table, err := RunTable(spec, Scale{Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := table.Get(FilterFedBuff, attack.NoneName)
	if c.Std == 0 {
		t.Log("std across 2 seeds is exactly 0; unusual but not impossible")
	}
}

func TestRunEmbeddingShrunken(t *testing.T) {
	// RunEmbedding uses the MNIST preset internally; shrink via Scale only.
	res, err := RunEmbedding("fig3-test", 0, Scale{Rounds: 2, BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no embedded points")
	}
	for _, p := range res.Points {
		if p.Staleness < 0 {
			t.Errorf("negative staleness %d", p.Staleness)
		}
	}
	if !strings.Contains(res.Render(), "x,y,staleness,client") {
		t.Error("render missing CSV header")
	}
}

func TestGetMissing(t *testing.T) {
	table := &Table{Cells: map[string]map[string]Cell{}}
	if _, ok := table.Get("nope", "nada"); ok {
		t.Error("Get on empty table returned ok")
	}
}

func TestAttackLabels(t *testing.T) {
	for name, want := range map[string]string{
		attack.GDName:     "GD",
		attack.LIEName:    "LIE",
		attack.MinMaxName: "Min-Max",
		attack.MinSumName: "Min-Sum",
		attack.NoneName:   "No attack",
		"custom":          "custom",
	} {
		if got := attackLabel(name); got != want {
			t.Errorf("attackLabel(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestSweepAndAblationRenderers(t *testing.T) {
	sweep := &SweepResult{ID: "fig6", Title: "t", Points: []SweepPoint{{StalenessLimit: 5, Attack: attack.GDName, Mean: 0.8, Std: 0.01}}}
	if !strings.Contains(sweep.Render(), "| 5 | GD | 80.0%") {
		t.Errorf("sweep render:\n%s", sweep.Render())
	}
	abl := &AblationResult{ID: "fig7", Title: "t", Bars: []AblationBar{{Attack: attack.LIEName, Variant: "asyncfilter", Accuracy: 0.9, RejectedBenign: 3}}}
	if !strings.Contains(abl.Render(), "| LIE | asyncfilter | 90.0% | 3 |") {
		t.Errorf("ablation render:\n%s", abl.Render())
	}
}

func TestRunDetectionTableShrunken(t *testing.T) {
	// The detection table runs at the preset's population; shrink rounds
	// only and accept the cost (~seconds).
	res, err := RunDetectionTable("mnist", Scale{Rounds: 2, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 attacks x 2 filters)", len(res.Rows))
	}
	out := res.Render()
	if !strings.Contains(out, "| Filter | Attack | Precision |") {
		t.Errorf("render:\n%s", out)
	}
}
