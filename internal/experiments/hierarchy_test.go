package experiments

import (
	"strings"
	"testing"
)

// TestShardComparisonRows runs the shard experiment at a reduced round
// count and checks its shape: every paper attack crossed with all three
// sharding modes, rendered with one row each.
func TestShardComparisonRows(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 12 simulations")
	}
	res, err := RunShardComparison("fashionmnist", Scale{Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	attacks := robustnessAttacks()
	if want := len(attacks) * 3; len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	modes := map[string]int{}
	for _, row := range res.Rows {
		modes[row.Mode]++
		if row.Accuracy <= 0 {
			t.Errorf("%s/%s: accuracy %v, want > 0", row.Attack, row.Mode, row.Accuracy)
		}
	}
	for _, mode := range []string{"single", "per-shard", "merged"} {
		if modes[mode] != len(attacks) {
			t.Errorf("mode %s has %d rows, want %d", mode, modes[mode], len(attacks))
		}
	}
	out := res.Render()
	for _, label := range []string{"GD", "LIE", "Min-Max", "Min-Sum", "merged"} {
		if !strings.Contains(out, label) {
			t.Errorf("render lost %q:\n%s", label, out)
		}
	}
}

// TestHierarchyLegs runs the hierarchy benchmark at a reduced round count
// over real loopback TCP: both legs must complete, commit rounds, and see
// client updates.
func TestHierarchyLegs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two TCP deployments")
	}
	res, err := RunHierarchy(Scale{Rounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Legs) != 2 {
		t.Fatalf("legs = %d, want 2", len(res.Legs))
	}
	for _, leg := range res.Legs {
		if leg.Rounds == 0 {
			t.Errorf("%s: no rounds committed", leg.System)
		}
		if leg.UpdatesReceived == 0 {
			t.Errorf("%s: no updates received", leg.System)
		}
		if leg.Duration <= 0 {
			t.Errorf("%s: duration %v", leg.System, leg.Duration)
		}
	}
	single, twoTier := res.Legs[0], res.Legs[1]
	if single.System != "single" || twoTier.System != "two-tier" {
		t.Fatalf("leg order = %q, %q", single.System, twoTier.System)
	}
	if single.BatchesApplied != 0 {
		t.Errorf("single leg reports edge batches: %+v", single)
	}
	if twoTier.BatchesApplied == 0 {
		t.Errorf("two-tier leg applied no edge batches: %+v", twoTier)
	}
}
