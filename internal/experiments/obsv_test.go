package experiments

import (
	"bytes"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/obsv"
	"github.com/asyncfl/asyncfilter/internal/sim"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Observation must be free of side effects on the science: the same
// seeded simulation with and without a hub attached has to produce the
// identical result — same accuracy and loss bit for bit, same
// accept/reject ledger, and byte-identical serialized filter state (the
// filter's moving averages feed every future decision, so any
// observer-induced drift would compound).
func TestObsvScaleNeutral(t *testing.T) {
	run := func(hub *obsv.Hub) (*sim.Result, []byte) {
		cfg, err := sim.Default("mnist")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = 3
		cfg.Rounds = 6
		cfg.Attack = attack.Config{Name: attack.GDName}
		filter, err := NewFilter(FilterAsyncFilter, 3)
		if err != nil {
			t.Fatal(err)
		}
		if hub != nil {
			filter.(fl.ObservableFilter).SetObserver(obsv.NewFilterSink(hub))
		}
		s, err := sim.New(cfg, filter, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		state, err := filter.(fl.StateSnapshotter).SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		return res, state
	}

	plain, plainState := run(nil)
	hub := obsv.NewHub(0)
	observed, observedState := run(hub)

	if !vecmath.ExactEqual(plain.FinalAccuracy, observed.FinalAccuracy) {
		t.Errorf("accuracy %v vs %v under observation", plain.FinalAccuracy, observed.FinalAccuracy)
	}
	if !vecmath.ExactEqual(plain.FinalLoss, observed.FinalLoss) {
		t.Errorf("loss %v vs %v under observation", plain.FinalLoss, observed.FinalLoss)
	}
	if plain.Rounds != observed.Rounds || plain.Accepted != observed.Accepted || plain.Rejected != observed.Rejected {
		t.Errorf("ledger differs: %d/%d/%d vs %d/%d/%d",
			plain.Rounds, plain.Accepted, plain.Rejected,
			observed.Rounds, observed.Accepted, observed.Rejected)
	}
	if len(plain.History) != len(observed.History) {
		t.Fatalf("history length %d vs %d", len(plain.History), len(observed.History))
	}
	for i := range plain.History {
		if !vecmath.ExactEqual(plain.History[i].Accuracy, observed.History[i].Accuracy) ||
			!vecmath.ExactEqual(plain.History[i].Loss, observed.History[i].Loss) {
			t.Errorf("history point %d differs", i)
		}
	}
	if !bytes.Equal(plainState, observedState) {
		t.Error("observation changed the serialized filter state")
	}

	// The hub was not idle: it saw one round event per filter call and a
	// decision stream matching the ledger.
	snap := hub.Registry.Snapshot()
	if snap.Counters["afl_filter_rounds_total"] == 0 {
		t.Error("hub recorded no filter rounds")
	}
	wantRejects := uint64(observed.Rejected)
	if got := snap.Counters[`afl_filter_decisions_total{decision="reject"}`]; got != wantRejects {
		t.Errorf("hub reject count = %d, want %d", got, wantRejects)
	}
}

// The Scale.Obsv plumbing reaches runCell's filters: a table cell run
// under a hub must register filter series, and the fedbuff baseline
// (nil filter) must not crash on the attach path.
func TestScaleObsvPlumbing(t *testing.T) {
	spec, err := TableSpecByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	hub := obsv.NewHub(64)
	scale := Scale{Rounds: 3, Repeats: 1, BaseSeed: 1, Obsv: hub}
	if _, err := runCell(spec, FilterAsyncFilter, attack.GDName, scale); err != nil {
		t.Fatal(err)
	}
	if _, err := runCell(spec, FilterFedBuff, attack.GDName, scale); err != nil {
		t.Fatalf("fedbuff cell under observation: %v", err)
	}
	snap := hub.Registry.Snapshot()
	if snap.Counters["afl_filter_rounds_total"] == 0 {
		t.Error("observed cell registered no filter rounds")
	}
	if hub.Tracer.Total() == 0 {
		t.Error("observed cell traced no decisions")
	}
}
