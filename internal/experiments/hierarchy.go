package experiments

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/dataset"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/model"
	"github.com/asyncfl/asyncfilter/internal/optim"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/topology"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// Hierarchy experiment defaults: a small linear model on synthetic data
// keeps each leg to a few seconds of wall clock while still pushing real
// gob traffic, filtering and aggregation through loopback TCP.
const (
	hierarchyClients      = 12
	hierarchyMalicious    = 3
	hierarchyInputDim     = 8
	hierarchyClasses      = 3
	hierarchyEdges        = 2
	hierarchySingleGoal   = 8
	hierarchyEdgeGoal     = 6
	hierarchySingleRounds = 24
	hierarchyRootRounds   = 48
)

// HierarchyLeg is the measurement of one deployment shape.
type HierarchyLeg struct {
	// System is "single" or "two-tier".
	System string
	// Rounds is the number of global aggregations committed (root batches
	// applied for the two-tier leg).
	Rounds int
	// Duration is first-client-start to deployment-done wall clock.
	Duration time.Duration
	// UpdatesReceived and Rejected aggregate the client-facing filter
	// servers (both edges for the two-tier leg).
	UpdatesReceived, Rejected int
	// BatchesApplied, BatchesReplayed and BatchesLost describe the
	// edge->root protocol; zero on the single leg.
	BatchesApplied, BatchesReplayed, BatchesLost int
}

// RoundsPerSec is the leg's global aggregation throughput.
func (l HierarchyLeg) RoundsPerSec() float64 {
	if secs := l.Duration.Seconds(); secs > 0 {
		return float64(l.Rounds) / secs
	}
	return 0
}

// HierarchyResult compares a classic single-server deployment against the
// two-tier edge/root topology on the same client population and attack
// mix, over real loopback TCP.
type HierarchyResult struct {
	ID   string
	Legs []HierarchyLeg
}

// Render prints the hierarchy benchmark.
func (h *HierarchyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: single server vs two-tier topology, %d clients / %d malicious (extension experiment)\n\n",
		h.ID, hierarchyClients, hierarchyMalicious)
	b.WriteString("| System | Rounds | Duration | Rounds/s | Updates | Rejected | Batches applied | Replayed | Lost |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, l := range h.Legs {
		fmt.Fprintf(&b, "| %s | %d | %.2fs | %.1f | %d | %d | %d | %d | %d |\n",
			l.System, l.Rounds, l.Duration.Seconds(), l.RoundsPerSec(),
			l.UpdatesReceived, l.Rejected,
			l.BatchesApplied, l.BatchesReplayed, l.BatchesLost)
	}
	return b.String()
}

// RunHierarchy benchmarks the two deployment shapes over loopback TCP:
// the same clients, data, attack mix and AsyncFilter configuration, once
// against one flat server and once through edge aggregators forwarding
// filtered batches to a root. Gauges land in scale.Obsv (one per leg and
// metric) so `aflbench -metrics-out` snapshots the comparison.
func RunHierarchy(scale Scale) (*HierarchyResult, error) {
	scale = scale.withDefaults()
	res := &HierarchyResult{ID: "hierarchy"}

	single, err := runHierarchySingle(scale)
	if err != nil {
		return nil, fmt.Errorf("hierarchy single leg: %w", err)
	}
	res.Legs = append(res.Legs, single)

	twoTier, err := runHierarchyTwoTier(scale)
	if err != nil {
		return nil, fmt.Errorf("hierarchy two-tier leg: %w", err)
	}
	res.Legs = append(res.Legs, twoTier)

	if scale.Obsv != nil {
		for _, l := range res.Legs {
			label := "{system=" + fmt.Sprintf("%q", l.System) + "}"
			reg := scale.Obsv.Registry
			reg.Gauge("afl_hierarchy_rounds" + label).Set(float64(l.Rounds))
			reg.Gauge("afl_hierarchy_duration_seconds" + label).Set(l.Duration.Seconds())
			reg.Gauge("afl_hierarchy_rounds_per_sec" + label).Set(l.RoundsPerSec())
			reg.Gauge("afl_hierarchy_updates_received" + label).Set(float64(l.UpdatesReceived))
			reg.Gauge("afl_hierarchy_updates_rejected" + label).Set(float64(l.Rejected))
			reg.Gauge("afl_hierarchy_batches_applied" + label).Set(float64(l.BatchesApplied))
			reg.Gauge("afl_hierarchy_batches_replayed" + label).Set(float64(l.BatchesReplayed))
			reg.Gauge("afl_hierarchy_batches_lost" + label).Set(float64(l.BatchesLost))
		}
	}
	return res, nil
}

func hierarchyModel() model.Config {
	return model.Config{Arch: model.ArchLinear, InputDim: hierarchyInputDim, NumClasses: hierarchyClasses, Seed: 1}
}

func hierarchyParams() ([]float64, error) {
	m, err := model.New(hierarchyModel())
	if err != nil {
		return nil, err
	}
	p := make([]float64, m.NumParams())
	m.Params(p)
	return p, nil
}

// launchHierarchyClients starts the shared client population against the
// given home addresses and returns a wait function that blocks until all
// clients exit (they error out when the servers shut down; the
// measurement lives in the server counters).
func launchHierarchyClients(seed int64, addrs []string) (func(), error) {
	train, _, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name: "hierarchy", NumClasses: hierarchyClasses, Dim: hierarchyInputDim,
		TrainSize: 1200, TestSize: 60,
		Separation: 4, Noise: 1, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	parts, err := dataset.PartitionIIDFixedSize(train, hierarchyClients, 60, randx.New(seed+1))
	if err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	for i := 0; i < hierarchyClients; i++ {
		cfg := transport.ClientConfig{
			ID:    i,
			Data:  parts[i],
			Model: hierarchyModel(),
			Trainer: fl.TrainerConfig{
				Epochs: 1, BatchSize: 16,
				Optim: optim.Config{Name: optim.SGDName, LR: 0.05, Momentum: 0.9},
			},
			Seed:           seed + int64(100+i),
			MaxRetries:     10,
			RetryBaseDelay: 5 * time.Millisecond,
			RetryMaxDelay:  100 * time.Millisecond,
		}
		if i < hierarchyMalicious {
			cfg.Attack = attack.Config{Name: attack.GDName, Scale: 2}
		}
		client, err := transport.NewClient(cfg)
		if err != nil {
			return nil, err
		}
		addr := addrs[i%len(addrs)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = client.Run(addr)
		}()
	}
	return wg.Wait, nil
}

func hierarchyFilter(seed int64) (fl.Filter, error) {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return core.New(cfg)
}

func runHierarchySingle(scale Scale) (HierarchyLeg, error) {
	rounds := hierarchySingleRounds
	if scale.Rounds > 0 {
		rounds = scale.Rounds
	}
	params, err := hierarchyParams()
	if err != nil {
		return HierarchyLeg{}, err
	}
	filter, err := hierarchyFilter(scale.BaseSeed)
	if err != nil {
		return HierarchyLeg{}, err
	}
	srv, err := transport.NewServer(transport.ServerConfig{
		InitialParams:   params,
		AggregationGoal: hierarchySingleGoal,
		StalenessLimit:  10,
		Rounds:          rounds,
		Obsv:            scale.Obsv,
	}, filter, nil)
	if err != nil {
		return HierarchyLeg{}, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return HierarchyLeg{}, err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	start := time.Now()
	wait, err := launchHierarchyClients(scale.BaseSeed, []string{lis.Addr().String()})
	if err != nil {
		_ = srv.Close()
		<-serveErr
		return HierarchyLeg{}, err
	}
	select {
	case <-srv.Done():
	case <-time.After(2 * time.Minute):
		_ = srv.Close()
		<-serveErr
		wait()
		return HierarchyLeg{}, fmt.Errorf("single leg stalled: %+v", srv.Stats())
	}
	duration := time.Since(start)
	if err := srv.Close(); err != nil {
		return HierarchyLeg{}, err
	}
	<-serveErr
	wait()

	st := srv.Stats()
	return HierarchyLeg{
		System:          "single",
		Rounds:          st.Rounds,
		Duration:        duration,
		UpdatesReceived: st.UpdatesReceived,
		Rejected:        st.Rejected,
	}, nil
}

func runHierarchyTwoTier(scale Scale) (HierarchyLeg, error) {
	rounds := hierarchyRootRounds
	if scale.Rounds > 0 {
		rounds = 2 * scale.Rounds
	}
	params, err := hierarchyParams()
	if err != nil {
		return HierarchyLeg{}, err
	}
	root, err := topology.NewRoot(topology.RootConfig{
		InitialParams:     params,
		Rounds:            rounds,
		StalenessLimit:    10,
		EdgeLeaseDuration: 2 * time.Second,
		Obsv:              scale.Obsv,
	}, nil, nil)
	if err != nil {
		return HierarchyLeg{}, err
	}
	rootLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return HierarchyLeg{}, err
	}
	rootErr := make(chan error, 1)
	go func() { rootErr <- root.Serve(rootLis) }()

	edges := make([]*topology.Edge, hierarchyEdges)
	addrs := make([]string, hierarchyEdges)
	edgeErrs := make(chan error, hierarchyEdges)
	for i := range edges {
		filter, err := hierarchyFilter(scale.BaseSeed + int64(i))
		if err != nil {
			return HierarchyLeg{}, err
		}
		edge, err := topology.NewEdge(topology.EdgeConfig{
			EdgeID:   i,
			RootAddr: rootLis.Addr().String(),
			Server: transport.ServerConfig{
				InitialParams:   params,
				AggregationGoal: hierarchyEdgeGoal,
				StalenessLimit:  10,
				Rounds:          1 << 30,
			},
			HeartbeatEvery:    200 * time.Millisecond,
			MaxPendingBatches: 32,
			Seed:              scale.BaseSeed + int64(i),
		}, filter, nil)
		if err != nil {
			return HierarchyLeg{}, err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return HierarchyLeg{}, err
		}
		edges[i] = edge
		addrs[i] = lis.Addr().String()
		go func(e *topology.Edge, l net.Listener) { edgeErrs <- e.Serve(l) }(edge, lis)
	}

	start := time.Now()
	wait, err := launchHierarchyClients(scale.BaseSeed, addrs)
	if err != nil {
		for _, e := range edges {
			_ = e.Close()
		}
		_ = root.Close()
		return HierarchyLeg{}, err
	}
	select {
	case <-root.Done():
	case <-time.After(2 * time.Minute):
		for _, e := range edges {
			_ = e.Close()
		}
		_ = root.Close()
		wait()
		return HierarchyLeg{}, fmt.Errorf("two-tier leg stalled: %+v", root.Stats())
	}
	duration := time.Since(start)

	leg := HierarchyLeg{System: "two-tier", Duration: duration}
	for _, e := range edges {
		if err := e.Close(); err != nil {
			return HierarchyLeg{}, err
		}
		st := e.Server().Stats()
		leg.UpdatesReceived += st.UpdatesReceived
		leg.Rejected += st.Rejected
	}
	if err := root.Close(); err != nil {
		return HierarchyLeg{}, err
	}
	<-rootErr
	for range edges {
		<-edgeErrs
	}
	wait()

	rs := root.Stats()
	leg.Rounds = rs.Rounds
	leg.BatchesApplied = rs.BatchesApplied
	leg.BatchesReplayed = rs.BatchesReplayed
	leg.BatchesLost = rs.BatchesLost
	return leg, nil
}
