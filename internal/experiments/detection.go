package experiments

import (
	"fmt"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/sim"
	"github.com/asyncfl/asyncfilter/internal/stats"
)

// DetectionRow is one (filter, attack) detection-quality measurement.
type DetectionRow struct {
	// Filter and Attack identify the configuration.
	Filter string
	Attack string
	// Confusion is the aggregated decision matrix (reject = flagged).
	Confusion stats.Confusion
	// Accuracy is the final model accuracy for context.
	Accuracy float64
}

// DetectionResult is an extension experiment (not in the paper): the
// filters' detection quality — precision, recall, false-positive rate —
// per attack, information the paper's accuracy tables only show
// indirectly.
type DetectionResult struct {
	ID    string
	Title string
	Rows  []DetectionRow
}

// Render prints the detection table.
func (d *DetectionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n\n", d.ID, d.Title)
	b.WriteString("| Filter | Attack | Precision | Recall | FPR | Accuracy |\n|---|---|---|---|---|---|\n")
	for _, row := range d.Rows {
		fmt.Fprintf(&b, "| %s | %s | %.2f | %.2f | %.3f | %.1f%% |\n",
			row.Filter, attackLabel(row.Attack),
			row.Confusion.Precision(), row.Confusion.Recall(), row.Confusion.FPR(),
			100*row.Accuracy)
	}
	return b.String()
}

// RunDetectionTable measures detection quality on the given preset for
// AsyncFilter and FLDetector under each of the paper's four attacks.
func RunDetectionTable(preset string, scale Scale) (*DetectionResult, error) {
	scale = scale.withDefaults()
	res := &DetectionResult{
		ID:    "detection",
		Title: fmt.Sprintf("Detection quality on %s (extension experiment)", preset),
	}
	for _, atkName := range robustnessAttacks() {
		for _, filterName := range []string{FilterAsyncFilter, FilterFLDetector} {
			cfg, err := sim.Default(preset)
			if err != nil {
				return nil, err
			}
			cfg.Seed = scale.BaseSeed
			cfg.Attack = attack.Config{Name: atkName}
			if scale.Rounds > 0 {
				cfg.Rounds = scale.Rounds
			}
			filter, err := NewFilter(filterName, scale.BaseSeed)
			if err != nil {
				return nil, err
			}
			s, err := sim.New(cfg, filter, nil)
			if err != nil {
				return nil, err
			}
			r, err := s.Run()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, DetectionRow{
				Filter:    filterName,
				Attack:    atkName,
				Confusion: r.Detection,
				Accuracy:  r.FinalAccuracy,
			})
		}
	}
	return res, nil
}
