package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/stats"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// Golden-file tests pin the exact rendered output of every report type.
// The fixtures are hand-built (no simulation), so the renderings are
// fully deterministic; any intentional layout change is blessed with
//
//	go test ./internal/experiments -run TestGolden -update
//
// and reviewed as a testdata diff.
var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s rendering drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func goldenTable() *Table {
	gd, lie := attack.GDName, attack.LIEName
	return &Table{
		ID:      "table2",
		Title:   "golden fixture",
		Attacks: []string{gd, lie, attack.NoneName},
		Filters: []string{FilterFedBuff, FilterAsyncFilter},
		Cells: map[string]map[string]Cell{
			FilterFedBuff: {
				gd:              {Accuracy: 0.1012, Std: 0.021},
				lie:             {Accuracy: 0.5544},
				attack.NoneName: {Accuracy: 0.9011, Std: 0.004},
			},
			FilterAsyncFilter: {
				gd: {Accuracy: 0.8933, Std: 0.012, Detection: stats.Confusion{TP: 9, FP: 1, TN: 30, FN: 2}},
				// lie cell deliberately missing: renders as an em dash.
				attack.NoneName: {Accuracy: 0.9102},
			},
		},
	}
}

func TestGoldenTableRender(t *testing.T) {
	checkGolden(t, "table_render", goldenTable().Render())
}

func TestGoldenTableCSV(t *testing.T) {
	checkGolden(t, "table_csv", goldenTable().CSV())
}

func TestGoldenScatter(t *testing.T) {
	e := &EmbeddingResult{
		ID:    "fig3",
		Title: "golden embedding",
		Points: []EmbeddingPoint{
			{X: -10, Y: -10, Staleness: 0, ClientID: 1},
			{X: 10, Y: 10, Staleness: 1, ClientID: 2},
			{X: 0, Y: 0, Staleness: 12, ClientID: 3},
			{X: 5, Y: -5, Staleness: 40, ClientID: 4},
			{X: -5, Y: 5, Staleness: -1, ClientID: 5},
		},
	}
	checkGolden(t, "scatter", e.Scatter(24, 12))
	checkGolden(t, "embedding_csv", e.CSV())
}

func TestGoldenSweepCSV(t *testing.T) {
	s := &SweepResult{ID: "fig6", Points: []SweepPoint{
		{StalenessLimit: 5, Attack: attack.GDName, Mean: 0.83, Std: 0.03},
		{StalenessLimit: 10, Attack: attack.GDName, Mean: 0.8512, Std: 0.0125},
		{StalenessLimit: 10, Attack: attack.LIEName, Mean: 0.79, Std: 0},
	}}
	checkGolden(t, "sweep_csv", s.CSV())
}

func TestGoldenAblationCSV(t *testing.T) {
	a := &AblationResult{ID: "fig7", Bars: []AblationBar{
		{Attack: attack.LIEName, Variant: FilterAsyncFilter, Accuracy: 0.86, RejectedBenign: 2},
		{Attack: attack.LIEName, Variant: FilterAsyncFilter2, Accuracy: 0.81, RejectedBenign: 5},
	}}
	checkGolden(t, "ablation_csv", a.CSV())
}

func TestGoldenDetectionCSV(t *testing.T) {
	d := &DetectionResult{ID: "detection", Rows: []DetectionRow{{
		Filter: FilterAsyncFilter, Attack: attack.GDName,
		Confusion: stats.Confusion{TP: 3, FP: 1, TN: 10, FN: 1},
		Accuracy:  0.9,
	}}}
	checkGolden(t, "detection_csv", d.CSV())
}

func TestGoldenOverloadRender(t *testing.T) {
	o := &OverloadResult{
		ID:      "overload",
		Clients: 16,
		Rounds:  40,
		// Exact duration so the per-second throughput columns divide evenly.
		Duration: 2 * time.Second,
		Stats: transport.ServerStats{
			UpdatesReceived:    1000,
			DroppedShed:        300,
			DroppedRateLimited: 200,
			NacksSent:          500,
			ClientsConnected:   16,
		},
	}
	checkGolden(t, "overload_render", o.Render())
}
