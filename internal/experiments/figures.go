package experiments

import (
	"fmt"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/cluster"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/sim"
	"github.com/asyncfl/asyncfilter/internal/stats"
	"github.com/asyncfl/asyncfilter/internal/tsne"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// EmbeddingPoint is one local update in the 2-D t-SNE embedding of
// Figures 3-4.
type EmbeddingPoint struct {
	// X, Y are the embedding coordinates.
	X, Y float64
	// Staleness is the update's staleness level (the figures' color key).
	Staleness int
	// ClientID identifies the reporting client.
	ClientID int
}

// EmbeddingResult reproduces one of the paper's t-SNE figures.
type EmbeddingResult struct {
	// ID is "fig3" (IID) or "fig4" (non-IID).
	ID string
	// Title describes the setting.
	Title string
	// Points is the embedded update set of the captured round.
	Points []EmbeddingPoint
	// SilhouetteByStaleness quantifies the figures' visual claim: updates
	// sharing a staleness level cluster around a common center. Higher is
	// tighter clustering by staleness.
	SilhouetteByStaleness float64
	// Round is the captured aggregation round.
	Round int
}

// Render prints the embedding as an ASCII scatter plot followed by a
// compact text summary and CSV rows.
func (e *EmbeddingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", e.ID, e.Title)
	fmt.Fprintf(&b, "captured round %d, %d updates, staleness silhouette %.3f\n\n",
		e.Round, len(e.Points), e.SilhouetteByStaleness)
	b.WriteString(e.Scatter(64, 20))
	b.WriteString("\nx,y,staleness,client\n")
	for _, p := range e.Points {
		fmt.Fprintf(&b, "%.4f,%.4f,%d,%d\n", p.X, p.Y, p.Staleness, p.ClientID)
	}
	return b.String()
}

// captureFilter records the update batch of one aggregation round while
// accepting everything (the figures study undefended updates).
type captureFilter struct {
	targetRound int
	captured    []*fl.Update
	round       int
}

func (c *captureFilter) Name() string { return "capture" }

func (c *captureFilter) Filter(updates []*fl.Update, round int) (fl.FilterResult, error) {
	c.round = round
	if round == c.targetRound && c.captured == nil {
		c.captured = make([]*fl.Update, len(updates))
		for i, u := range updates {
			c.captured[i] = fl.CloneUpdate(u)
		}
	}
	return fl.AcceptAll(len(updates)), nil
}

// RunEmbedding reproduces Figure 3 (alpha <= 0: IID) or Figure 4 (non-IID
// with the given Dirichlet alpha): run MNIST AFL undefended, capture the
// update batch of a mid-training round, and embed it with t-SNE.
func RunEmbedding(id string, alpha float64, scale Scale) (*EmbeddingResult, error) {
	scale = scale.withDefaults()
	cfg, err := sim.Default("mnist")
	if err != nil {
		return nil, err
	}
	cfg.Seed = scale.BaseSeed
	cfg.PartitionAlpha = alpha
	cfg.NumMalicious = 0
	if scale.Rounds > 0 {
		cfg.Rounds = scale.Rounds
	}
	// Capture an early round: staleness-induced drift between model
	// versions is largest while the model still moves quickly, which is
	// when the figures' staleness clustering is visible.
	captureRound := 3
	if captureRound > cfg.Rounds/2 {
		captureRound = cfg.Rounds / 2
	}
	if captureRound < 1 {
		captureRound = 1
	}
	capture := &captureFilter{targetRound: captureRound}
	s, err := sim.New(cfg, capture, nil)
	if err != nil {
		return nil, err
	}
	if _, err := s.Run(); err != nil {
		return nil, err
	}
	if len(capture.captured) == 0 {
		return nil, fmt.Errorf("experiments: no updates captured at round %d", captureRound)
	}

	points := make([][]float64, len(capture.captured))
	for i, u := range capture.captured {
		points[i] = u.Delta
	}
	embedded, err := tsne.Embed(points, tsne.Config{Seed: scale.BaseSeed, Iterations: 400})
	if err != nil {
		return nil, err
	}

	res := &EmbeddingResult{ID: id, Round: captureRound}
	if alpha <= 0 {
		res.Title = "t-SNE of local updates on MNIST, IID (paper Figure 3)"
	} else {
		res.Title = fmt.Sprintf("t-SNE of local updates on MNIST, non-IID alpha=%.2f (paper Figure 4)", alpha)
	}
	emb2 := make([][]float64, len(embedded))
	labels := make([]int, len(embedded))
	staleSet := map[int]int{}
	for i, u := range capture.captured {
		res.Points = append(res.Points, EmbeddingPoint{
			X: embedded[i][0], Y: embedded[i][1],
			Staleness: u.Staleness, ClientID: u.ClientID,
		})
		emb2[i] = []float64{embedded[i][0], embedded[i][1]}
		if _, ok := staleSet[u.Staleness]; !ok {
			staleSet[u.Staleness] = len(staleSet)
		}
		labels[i] = staleSet[u.Staleness]
	}
	res.SilhouetteByStaleness = silhouette2D(emb2, labels, len(staleSet))
	return res, nil
}

// silhouette2D measures how tightly the embedded points cluster by their
// staleness label.
func silhouette2D(points [][]float64, labels []int, k int) float64 {
	return cluster.Silhouette(points, labels, k)
}

// SweepPoint is one (staleness limit, attack) measurement of Figure 6.
type SweepPoint struct {
	// StalenessLimit is the server limit swept over {5, 10, 15, 20}.
	StalenessLimit int
	// Attack identifies the column (GD or LIE).
	Attack string
	// Mean and Std summarize final accuracy across seeds.
	Mean, Std float64
}

// SweepResult reproduces Figure 6.
type SweepResult struct {
	ID     string
	Title  string
	Points []SweepPoint
}

// Render prints the sweep series.
func (s *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n\n", s.ID, s.Title)
	b.WriteString("| Staleness limit | Attack | Accuracy |\n|---|---|---|\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "| %d | %s | %.1f%% ± %.1f |\n", p.StalenessLimit, attackLabel(p.Attack), 100*p.Mean, 100*p.Std)
	}
	return b.String()
}

// RunStalenessSweep reproduces Figure 6: FashionMNIST under GD and LIE,
// AsyncFilter enabled, staleness limit swept over {5, 10, 15, 20}, each
// point averaged over three seeds (as in the paper).
func RunStalenessSweep(scale Scale) (*SweepResult, error) {
	scale = scale.withDefaults()
	if scale.Repeats < 2 {
		scale.Repeats = 3 // the paper repeats each point three times
	}
	res := &SweepResult{
		ID:    "fig6",
		Title: "AsyncFilter accuracy vs server staleness limit on FashionMNIST (paper Figure 6)",
	}
	for _, limit := range []int{5, 10, 15, 20} {
		for _, atkName := range []string{attack.GDName, attack.LIEName} {
			accs := make([]float64, 0, scale.Repeats)
			for rep := 0; rep < scale.Repeats; rep++ {
				seed := scale.BaseSeed + int64(rep)
				cfg, err := sim.Default("fashionmnist")
				if err != nil {
					return nil, err
				}
				cfg.Seed = seed
				cfg.StalenessLimit = limit
				cfg.Attack = attack.Config{Name: atkName}
				if scale.Rounds > 0 {
					cfg.Rounds = scale.Rounds
				}
				filter, err := NewFilter(FilterAsyncFilter, seed)
				if err != nil {
					return nil, err
				}
				s, err := sim.New(cfg, filter, nil)
				if err != nil {
					return nil, err
				}
				r, err := s.Run()
				if err != nil {
					return nil, err
				}
				accs = append(accs, r.FinalAccuracy)
			}
			mean, std := stats.MeanStd(accs)
			res.Points = append(res.Points, SweepPoint{
				StalenessLimit: limit, Attack: atkName, Mean: mean, Std: std,
			})
		}
	}
	return res, nil
}

// AblationBar is one bar of Figure 7.
type AblationBar struct {
	// Attack identifies the group, Variant the bar (3-means / 2-means).
	Attack  string
	Variant string
	// Accuracy is the final global model accuracy.
	Accuracy float64
	// RejectedBenign counts honest updates rejected across the run — the
	// mechanism the figure attributes 2-means' accuracy loss to.
	RejectedBenign int
}

// AblationResult reproduces Figure 7.
type AblationResult struct {
	ID    string
	Title string
	Bars  []AblationBar
}

// Render prints the bars.
func (a *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n\n", a.ID, a.Title)
	b.WriteString("| Attack | Variant | Accuracy | Benign rejected |\n|---|---|---|---|\n")
	for _, bar := range a.Bars {
		fmt.Fprintf(&b, "| %s | %s | %.1f%% | %d |\n", attackLabel(bar.Attack), bar.Variant, 100*bar.Accuracy, bar.RejectedBenign)
	}
	return b.String()
}

// RunKMeansAblation reproduces Figure 7: AsyncFilter-3means vs
// AsyncFilter-2means on FashionMNIST (Dirichlet alpha 0.1) under the four
// attacks.
func RunKMeansAblation(scale Scale) (*AblationResult, error) {
	scale = scale.withDefaults()
	res := &AblationResult{
		ID:    "fig7",
		Title: "AsyncFilter-3means vs AsyncFilter-2means on FashionMNIST (paper Figure 7)",
	}
	for _, atkName := range robustnessAttacks() {
		for _, variant := range []string{FilterAsyncFilter, FilterAsyncFilter2} {
			cfg, err := sim.Default("fashionmnist")
			if err != nil {
				return nil, err
			}
			cfg.Seed = scale.BaseSeed
			cfg.Attack = attack.Config{Name: atkName}
			if scale.Rounds > 0 {
				cfg.Rounds = scale.Rounds
			}
			filter, err := NewFilter(variant, scale.BaseSeed)
			if err != nil {
				return nil, err
			}
			s, err := sim.New(cfg, filter, nil)
			if err != nil {
				return nil, err
			}
			r, err := s.Run()
			if err != nil {
				return nil, err
			}
			res.Bars = append(res.Bars, AblationBar{
				Attack:         atkName,
				Variant:        variant,
				Accuracy:       r.FinalAccuracy,
				RejectedBenign: r.Detection.FP,
			})
		}
	}
	return res, nil
}

// MeanUpdateNorm is a helper shared by analysis tooling: the mean L2 norm
// of a batch of updates.
func MeanUpdateNorm(updates []*fl.Update) float64 {
	if len(updates) == 0 {
		return 0
	}
	var sum float64
	for _, u := range updates {
		sum += vecmath.Norm2(u.Delta)
	}
	return sum / float64(len(updates))
}
