package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Scatter renders the embedding as an ASCII scatter plot (width x height
// character cells), each point drawn as its staleness level's digit
// (levels above 9 wrap to letters). It lets the Figures 3-4 claim —
// same-staleness updates cluster together — be eyeballed in a terminal.
func (e *EmbeddingResult) Scatter(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	if len(e.Points) == 0 {
		return "(no points)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range e.Points {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	spanX := maxX - minX
	spanY := maxY - minY
	if vecmath.IsZero(spanX) {
		spanX = 1
	}
	if vecmath.IsZero(spanY) {
		spanY = 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range e.Points {
		col := int((p.X - minX) / spanX * float64(width-1))
		row := int((p.Y - minY) / spanY * float64(height-1))
		row = height - 1 - row // origin at bottom-left
		grid[row][col] = staleGlyph(p.Staleness)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s (glyph = staleness level)\n", e.Title)
	border := "+" + strings.Repeat("-", width) + "+\n"
	b.WriteString(border)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	b.WriteString(border)
	return b.String()
}

func staleGlyph(staleness int) byte {
	switch {
	case staleness < 0:
		return '?'
	case staleness < 10:
		return byte('0' + staleness)
	case staleness < 36:
		return byte('a' + staleness - 10)
	default:
		return '+'
	}
}

// CSV renders the embedding's points as comma-separated rows.
func (e *EmbeddingResult) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,x,y,staleness,client\n")
	for _, p := range e.Points {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%d,%d\n", e.ID, p.X, p.Y, p.Staleness, p.ClientID)
	}
	return b.String()
}

// CSV renders the staleness sweep as comma-separated rows.
func (s *SweepResult) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,staleness_limit,attack,mean,std\n")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%s,%d,%s,%.4f,%.4f\n", s.ID, p.StalenessLimit, p.Attack, p.Mean, p.Std)
	}
	return b.String()
}

// CSV renders the k-means ablation as comma-separated rows.
func (a *AblationResult) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,attack,variant,accuracy,rejected_benign\n")
	for _, bar := range a.Bars {
		fmt.Fprintf(&b, "%s,%s,%s,%.4f,%d\n", a.ID, bar.Attack, bar.Variant, bar.Accuracy, bar.RejectedBenign)
	}
	return b.String()
}

// CSV renders the detection table as comma-separated rows.
func (d *DetectionResult) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,filter,attack,precision,recall,fpr,accuracy\n")
	for _, row := range d.Rows {
		fmt.Fprintf(&b, "%s,%s,%s,%.4f,%.4f,%.4f,%.4f\n",
			d.ID, row.Filter, row.Attack,
			row.Confusion.Precision(), row.Confusion.Recall(), row.Confusion.FPR(), row.Accuracy)
	}
	return b.String()
}
