package experiments

import (
	"strings"
	"testing"
)

// TestFailoverDrill runs the kill-the-primary drill at a reduced round
// count over real loopback TCP: the standby must promote, the deployment
// must finish on it, and the exactly-once accounting must hold.
func TestFailoverDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a replicated-root TCP deployment")
	}
	res, err := RunFailoverDrill(Scale{Rounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 12 {
		t.Errorf("rounds = %d, want the full 12-round deployment", res.Rounds)
	}
	if res.RoundsAtKill < 6 {
		t.Errorf("primary killed at round %d, want >= 6", res.RoundsAtKill)
	}
	if res.Epoch != 1 {
		t.Errorf("promoted epoch = %d, want 1", res.Epoch)
	}
	if res.PromotionLatency <= 0 {
		t.Errorf("promotion latency %v", res.PromotionLatency)
	}
	if res.BatchesApplied != res.Rounds {
		t.Errorf("promoted root applied %d batches over %d rounds — application and version must move together",
			res.BatchesApplied, res.Rounds)
	}
	if res.UpdatesReceived == 0 {
		t.Error("no updates received")
	}
	out := res.Render()
	for _, label := range []string{"Promotion latency", "Edge re-homes", "Replication stream"} {
		if !strings.Contains(out, label) {
			t.Errorf("render lost %q:\n%s", label, out)
		}
	}
}
