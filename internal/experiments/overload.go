package experiments

import (
	"encoding/gob"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// Overload experiment defaults: the flooder population offers roughly an
// order of magnitude more updates than the paced admission budget lets
// through, so every shedding path gets exercised.
const (
	overloadClients    = 16
	overloadGoal       = 8
	overloadMaxPending = 12
	overloadRate       = 150 // per-client updates/sec
	overloadBurst      = 3
	overloadDim        = 256
	overloadRounds     = 40
	overloadCombineLag = 2 * time.Millisecond
)

// slowCombiner is a weighted mean with a fixed per-round latency,
// standing in for the filtering + aggregation cost of a paper-scale
// model so the update buffer actually backs up under flood.
type slowCombiner struct {
	lag time.Duration
}

func (c slowCombiner) Combine(updates []*fl.Update, cfg fl.AggregatorConfig) ([]float64, error) {
	time.Sleep(c.lag)
	return fl.MeanCombiner{}.Combine(updates, cfg)
}

func (c slowCombiner) Name() string { return "slow-mean" }

// OverloadResult reports how the transport server's admission-control
// machinery holds up when the offered load far exceeds aggregation
// capacity: throughput actually admitted versus shed stalest-first or
// bounced by per-client rate limits.
type OverloadResult struct {
	ID string
	// Clients is the flooder population.
	Clients int
	// Rounds is the number of aggregations the deployment ran.
	Rounds int
	// Duration is the wall-clock time from first flood to completion.
	Duration time.Duration
	// Stats is the server's lifetime counter snapshot.
	Stats transport.ServerStats
}

// perSec converts a lifetime counter into a throughput.
func (o *OverloadResult) perSec(n int) float64 {
	secs := o.Duration.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(n) / secs
}

// Render prints the overload report.
func (o *OverloadResult) Render() string {
	st := o.Stats
	admitted := st.UpdatesReceived - st.DroppedShed - st.DroppedRateLimited -
		st.DroppedQuarantined - st.DroppedMalformed
	var b strings.Builder
	fmt.Fprintf(&b, "%s: admission control under a %d-client flood (extension experiment)\n\n", o.ID, o.Clients)
	b.WriteString("| Metric | Count | Throughput |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| offered updates | %d | %.0f/s |\n", st.UpdatesReceived, o.perSec(st.UpdatesReceived))
	fmt.Fprintf(&b, "| admitted to buffer | %d | %.0f/s |\n", admitted, o.perSec(admitted))
	fmt.Fprintf(&b, "| shed (stalest first) | %d | %.0f/s |\n", st.DroppedShed, o.perSec(st.DroppedShed))
	fmt.Fprintf(&b, "| rate-limited | %d | %.0f/s |\n", st.DroppedRateLimited, o.perSec(st.DroppedRateLimited))
	fmt.Fprintf(&b, "| NACKs sent | %d | %.0f/s |\n", st.NacksSent, o.perSec(st.NacksSent))
	fmt.Fprintf(&b, "\n%d rounds in %.2fs (%d clients connected)\n",
		o.Rounds, o.Duration.Seconds(), st.ClientsConnected)
	return b.String()
}

// RunOverload floods a real TCP transport server with far more updates
// than its paced admission budget accepts and reports what the overload
// machinery did about it. The flooders speak raw gob — no local training,
// no NACK backoff — so the offered load is bounded only by loopback
// round-trips, roughly 10x what the per-client token buckets let through.
func RunOverload(scale Scale) (*OverloadResult, error) {
	scale = scale.withDefaults()
	rounds := overloadRounds
	if scale.Rounds > 0 {
		rounds = scale.Rounds
	}

	srv, err := transport.NewServer(transport.ServerConfig{
		InitialParams:     make([]float64, overloadDim),
		AggregationGoal:   overloadGoal,
		Rounds:            rounds,
		MaxPendingUpdates: overloadMaxPending,
		ClientRateLimit:   overloadRate,
		ClientBurst:       overloadBurst,
		WriteTimeout:      10 * time.Second,
		ReadTimeout:       10 * time.Second,
		Obsv:              scale.Obsv,
	}, nil, slowCombiner{lag: overloadCombineLag})
	if err != nil {
		return nil, err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := lis.Addr().String()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()

	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < overloadClients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Flooder errors are expected at shutdown (the server hangs
			// up); the measurement lives in the server's counters.
			_ = flood(addr, id, scale.BaseSeed+int64(id))
		}(id)
	}

	<-srv.Done()
	duration := time.Since(start)
	if err := srv.Close(); err != nil {
		return nil, err
	}
	<-serveErr
	wg.Wait()

	return &OverloadResult{
		ID:       "overload",
		Clients:  overloadClients,
		Rounds:   srv.Version(),
		Duration: duration,
		Stats:    srv.Stats(),
	}, nil
}

// flood runs one raw-gob flooder: Hello, then resubmit a noise delta for
// every task the server hands back, ignoring NACK pacing hints entirely.
func flood(addr string, id int, seed int64) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	rng := randx.New(seed)
	delta := make([]float64, overloadDim)
	for i := range delta {
		delta[i] = 0.01 * rng.NormFloat64()
	}
	hello := transport.ClientMsg{Hello: &transport.Hello{
		ClientID: id, NumSamples: 10, ModelDim: overloadDim,
	}}
	if err := enc.Encode(&hello); err != nil {
		return err
	}
	for {
		var msg transport.ServerMsg
		if err := dec.Decode(&msg); err != nil {
			return err
		}
		if msg.Done || msg.Goodbye {
			return nil
		}
		if msg.Task == nil {
			continue
		}
		out := transport.ClientMsg{Update: &transport.UpdateMsg{
			BaseVersion: msg.Task.Version,
			Delta:       delta,
		}}
		if err := enc.Encode(&out); err != nil {
			return err
		}
	}
}
