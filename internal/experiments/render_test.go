package experiments

import (
	"strings"
	"testing"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/stats"
)

func sampleEmbedding() *EmbeddingResult {
	return &EmbeddingResult{
		ID:    "fig3",
		Title: "test embedding",
		Points: []EmbeddingPoint{
			{X: -10, Y: -10, Staleness: 0, ClientID: 1},
			{X: 10, Y: 10, Staleness: 1, ClientID: 2},
			{X: 0, Y: 0, Staleness: 12, ClientID: 3},
			{X: 5, Y: -5, Staleness: 40, ClientID: 4},
		},
	}
}

func TestScatterLayout(t *testing.T) {
	out := sampleEmbedding().Scatter(20, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + top border + 10 rows + bottom border.
	if len(lines) != 13 {
		t.Fatalf("scatter has %d lines, want 13:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Errorf("staleness glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "c") { // staleness 12 -> 'c'
		t.Errorf("wrapped glyph for staleness 12 missing:\n%s", out)
	}
	if !strings.Contains(out, "+") && !strings.Contains(out, "-") {
		t.Error("border missing")
	}
	// Over-36 staleness wraps to '+' inside the grid; the border also uses
	// '+', so check the glyph function directly.
	if staleGlyph(40) != '+' || staleGlyph(-1) != '?' || staleGlyph(9) != '9' || staleGlyph(10) != 'a' {
		t.Error("staleGlyph mapping wrong")
	}
}

func TestScatterDegenerate(t *testing.T) {
	empty := &EmbeddingResult{ID: "e", Title: "t"}
	if !strings.Contains(empty.Scatter(10, 5), "no points") {
		t.Error("empty embedding scatter wrong")
	}
	single := &EmbeddingResult{ID: "s", Title: "t", Points: []EmbeddingPoint{{X: 3, Y: 3, Staleness: 2}}}
	out := single.Scatter(2, 2) // clamped up to minimums
	if !strings.Contains(out, "2") {
		t.Errorf("single-point scatter missing glyph:\n%s", out)
	}
}

func TestEmbeddingCSV(t *testing.T) {
	csv := sampleEmbedding().CSV()
	if !strings.HasPrefix(csv, "experiment,x,y,staleness,client\n") {
		t.Errorf("csv header:\n%s", csv)
	}
	if !strings.Contains(csv, "fig3,-10.0000,-10.0000,0,1") {
		t.Errorf("csv row missing:\n%s", csv)
	}
}

func TestSweepCSV(t *testing.T) {
	s := &SweepResult{ID: "fig6", Points: []SweepPoint{{StalenessLimit: 5, Attack: attack.GDName, Mean: 0.83, Std: 0.03}}}
	csv := s.CSV()
	if !strings.Contains(csv, "fig6,5,gd,0.8300,0.0300") {
		t.Errorf("sweep csv:\n%s", csv)
	}
}

func TestAblationCSV(t *testing.T) {
	a := &AblationResult{ID: "fig7", Bars: []AblationBar{{Attack: attack.LIEName, Variant: "asyncfilter", Accuracy: 0.86, RejectedBenign: 2}}}
	if !strings.Contains(a.CSV(), "fig7,lie,asyncfilter,0.8600,2") {
		t.Errorf("ablation csv:\n%s", a.CSV())
	}
}

func TestDetectionCSV(t *testing.T) {
	d := &DetectionResult{ID: "detection", Rows: []DetectionRow{{
		Filter: "asyncfilter", Attack: attack.GDName,
		Confusion: stats.Confusion{TP: 3, FP: 1, TN: 10, FN: 1},
		Accuracy:  0.9,
	}}}
	csv := d.CSV()
	if !strings.Contains(csv, "detection,asyncfilter,gd,0.7500,0.7500") {
		t.Errorf("detection csv:\n%s", csv)
	}
}
