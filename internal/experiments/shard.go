package experiments

import (
	"fmt"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/sim"
	"github.com/asyncfl/asyncfilter/internal/stats"
	"github.com/asyncfl/asyncfilter/internal/topology"
)

// shardEdges is the simulated edge count: with the paper's 40-update
// aggregation goal each shard sees ~10-update sub-batches, enough for the
// per-shard filters to cluster but with only a quarter of the evidence
// the merged filter accumulates.
const shardEdges = 4

// ShardRow is one (attack, sharding mode) detection measurement.
type ShardRow struct {
	Attack string
	// Mode is "single" (one filter sees everything), "per-shard"
	// (independent filter state per edge) or "merged" (per-edge filtering
	// over count-weighted shared state).
	Mode string
	// Confusion is the aggregated decision matrix (reject = flagged).
	Confusion stats.Confusion
	// Accuracy is the final model accuracy for context.
	Accuracy float64
}

// ShardResult is the extension experiment behind the two-tier topology:
// how much detection quality the per-edge filters lose when the client
// population is partitioned across edge aggregators, and how much of it
// the count-weighted merged state (the handoff/merge machinery of
// internal/topology) wins back.
type ShardResult struct {
	ID    string
	Title string
	Rows  []ShardRow
}

// Render prints the shard-comparison table.
func (s *ShardResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n\n", s.ID, s.Title)
	b.WriteString("| Attack | Mode | Precision | Recall | FPR | Accuracy |\n|---|---|---|---|---|---|\n")
	for _, row := range s.Rows {
		fmt.Fprintf(&b, "| %s | %s | %.2f | %.2f | %.3f | %.1f%% |\n",
			attackLabel(row.Attack), row.Mode,
			row.Confusion.Precision(), row.Confusion.Recall(), row.Confusion.FPR(),
			100*row.Accuracy)
	}
	return b.String()
}

// shardModes enumerates the compared filter arrangements.
func shardModes(seed int64) []struct {
	name  string
	build func() (fl.Filter, error)
} {
	edgeFilter := func() (fl.Filter, error) {
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		return core.New(cfg)
	}
	return []struct {
		name  string
		build func() (fl.Filter, error)
	}{
		{"single", edgeFilter},
		{"per-shard", func() (fl.Filter, error) {
			return topology.NewShardedFilter(topology.PerShard, shardEdges, edgeFilter)
		}},
		{"merged", func() (fl.Filter, error) {
			return topology.NewShardedFilter(topology.Merged, shardEdges, edgeFilter)
		}},
	}
}

// RunShardComparison measures AsyncFilter's detection quality on the
// given preset under each paper attack when the client population is
// split across shardEdges edge aggregators: a single fleet-wide filter
// (the upper bound), fully independent per-shard filter state (a
// partitioned two-tier deployment that never reconciles), and per-shard
// filtering over merged state (what the topology handoff machinery
// converges to).
func RunShardComparison(preset string, scale Scale) (*ShardResult, error) {
	scale = scale.withDefaults()
	res := &ShardResult{
		ID: "shard",
		Title: fmt.Sprintf("Per-shard vs merged filter state on %s, %d edges (extension experiment)",
			preset, shardEdges),
	}
	for _, atkName := range robustnessAttacks() {
		for _, mode := range shardModes(scale.BaseSeed) {
			cfg, err := sim.Default(preset)
			if err != nil {
				return nil, err
			}
			cfg.Seed = scale.BaseSeed
			cfg.Attack = attack.Config{Name: atkName}
			if scale.Rounds > 0 {
				cfg.Rounds = scale.Rounds
			}
			filter, err := mode.build()
			if err != nil {
				return nil, err
			}
			s, err := sim.New(cfg, filter, nil)
			if err != nil {
				return nil, err
			}
			r, err := s.Run()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ShardRow{
				Attack:    atkName,
				Mode:      mode.name,
				Confusion: r.Detection,
				Accuracy:  r.FinalAccuracy,
			})
		}
	}
	return res, nil
}
