package experiments

import (
	"fmt"
	"net"
	"strings"
	"time"

	"github.com/asyncfl/asyncfilter/internal/replica"
	"github.com/asyncfl/asyncfilter/internal/topology"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// Failover drill defaults: the hierarchy deployment shape (two edges, the
// shared client population and attack mix) with a replicated root, the
// primary killed halfway through. The lease is short so the drill
// measures the protocol, not the wait.
const (
	failoverRootRounds = 48
	failoverLease      = 300 * time.Millisecond
)

// FailoverResult measures one kill-the-primary drill against a replicated
// root: how long promotion took, what the replication stream had mirrored
// at the kill, and how the deployment accounted for every batch across
// the generation change.
type FailoverResult struct {
	ID string
	// Rounds is the total global rounds committed (both generations);
	// RoundsAtKill is the primary's version when it was killed and
	// MirroredAtKill the standby's mirrored version at the same moment.
	Rounds, RoundsAtKill, MirroredAtKill int
	// PromotionLatency is kill-to-RolePrimary on the standby; Lease is
	// the configured promotion lease it is measured against.
	PromotionLatency, Lease time.Duration
	// Duration is first-client-start to deployment-done wall clock.
	Duration time.Duration
	// Epoch is the fencing epoch the standby promoted under.
	Epoch uint64
	// SnapshotsInstalled and RecordsApplied describe the replication
	// stream from the standby side; RecordsLostOnPromote counts records
	// the dead primary committed but never shipped.
	SnapshotsInstalled, RecordsApplied, RecordsLostOnPromote int
	// BatchesApplied, BatchesReplayed and BatchesLost are the promoted
	// root's exactly-once accounting across the failover; EdgeRehomes
	// counts edge uplinks that re-homed to the promoted root.
	BatchesApplied, BatchesReplayed, BatchesLost, EdgeRehomes int
	// UpdatesReceived and Rejected aggregate the edge filter servers.
	UpdatesReceived, Rejected int
}

// Render prints the failover drill.
func (f *FailoverResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: kill-the-primary drill, replicated root with %v lease, %d clients / %d malicious (extension experiment)\n\n",
		f.ID, f.Lease, hierarchyClients, hierarchyMalicious)
	b.WriteString("| Metric | Value |\n|---|---|\n")
	fmt.Fprintf(&b, "| Rounds (total / at kill / mirrored at kill) | %d / %d / %d |\n",
		f.Rounds, f.RoundsAtKill, f.MirroredAtKill)
	fmt.Fprintf(&b, "| Promotion latency | %.0fms (lease %.0fms, epoch %d) |\n",
		float64(f.PromotionLatency.Milliseconds()), float64(f.Lease.Milliseconds()), f.Epoch)
	fmt.Fprintf(&b, "| Replication stream | %d records, %d snapshots, %d lost on promote |\n",
		f.RecordsApplied, f.SnapshotsInstalled, f.RecordsLostOnPromote)
	fmt.Fprintf(&b, "| Promoted-root batches (applied / replayed / lost) | %d / %d / %d |\n",
		f.BatchesApplied, f.BatchesReplayed, f.BatchesLost)
	fmt.Fprintf(&b, "| Edge re-homes | %d |\n", f.EdgeRehomes)
	fmt.Fprintf(&b, "| Updates (received / rejected) | %d / %d |\n", f.UpdatesReceived, f.Rejected)
	fmt.Fprintf(&b, "| Duration | %.2fs |\n", f.Duration.Seconds())
	return b.String()
}

// RunFailoverDrill benchmarks a root failover end to end over loopback
// TCP: the hierarchy deployment with a primary/standby replicated root,
// the primary killed at the halfway round. The deployment must finish on
// the promoted standby with every batch applied exactly once. Gauges land
// in scale.Obsv so `aflbench -metrics-out` snapshots the drill.
func RunFailoverDrill(scale Scale) (*FailoverResult, error) {
	scale = scale.withDefaults()
	rounds := failoverRootRounds
	if scale.Rounds > 0 {
		rounds = 2 * scale.Rounds
	}
	killAt := rounds / 2
	if killAt < 1 {
		killAt = 1
	}
	params, err := hierarchyParams()
	if err != nil {
		return nil, err
	}

	// Both roots' edge-facing listeners are bound up front: their
	// addresses form the static peer list edges re-home through.
	lisP, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lisS, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	peers := []string{lisP.Addr().String(), lisS.Addr().String()}

	newNode := func(id int, upstreams []string, rootRounds int) (*replica.Node, *topology.Root, error) {
		root, err := topology.NewRoot(topology.RootConfig{
			InitialParams:  params,
			Rounds:         rootRounds,
			StalenessLimit: 10,
		}, nil, nil)
		if err != nil {
			return nil, nil, err
		}
		cfg := replica.Config{
			NodeID:    id,
			Upstreams: upstreams,
			Peers:     peers,
			Lease:     failoverLease,
			Seed:      scale.BaseSeed + int64(id),
		}
		if upstreams == nil {
			cfg.ReplListen = "127.0.0.1:0"
		}
		node, err := replica.NewNode(cfg, root)
		if err != nil {
			_ = root.Close()
			return nil, nil, err
		}
		return node, root, nil
	}
	// Only the standby's round target ends the deployment: the primary
	// runs unbounded so a fast round rate cannot finish the run before
	// the kill lands — the drill must always exercise the failover.
	pNode, pRoot, err := newNode(0, nil, 1<<30)
	if err != nil {
		return nil, err
	}
	go func() { _ = pNode.Serve(lisP) }() // killed mid-drill; exit error expected
	defer pNode.Close()
	sNode, sRoot, err := newNode(1, []string{pNode.ReplAddr()}, rounds)
	if err != nil {
		return nil, err
	}
	sErr := make(chan error, 1)
	go func() { sErr <- sNode.Serve(lisS) }()
	defer sNode.Close()

	edges := make([]*topology.Edge, hierarchyEdges)
	addrs := make([]string, hierarchyEdges)
	for i := range edges {
		filter, err := hierarchyFilter(scale.BaseSeed + int64(i))
		if err != nil {
			return nil, err
		}
		edge, err := topology.NewEdge(topology.EdgeConfig{
			EdgeID:   i,
			RootAddr: peers[0],
			Server: transport.ServerConfig{
				InitialParams:   params,
				AggregationGoal: hierarchyEdgeGoal,
				StalenessLimit:  10,
				Rounds:          1 << 30,
			},
			HeartbeatEvery:    50 * time.Millisecond,
			RetryBaseDelay:    5 * time.Millisecond,
			RetryMaxDelay:     50 * time.Millisecond,
			MaxPendingBatches: 32,
			Seed:              scale.BaseSeed + int64(i),
		}, filter, nil)
		if err != nil {
			return nil, err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		edges[i] = edge
		addrs[i] = lis.Addr().String()
		go func(e *topology.Edge, l net.Listener) { _ = e.Serve(l) }(edge, lis)
		defer edge.Close()
	}

	start := time.Now()
	wait, err := launchHierarchyClients(scale.BaseSeed, addrs)
	if err != nil {
		return nil, err
	}

	// Let the primary reach the kill round, then pull the plug.
	deadline := time.Now().Add(2 * time.Minute)
	for pRoot.Version() < killAt {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("failover drill: primary stalled before kill round: %+v", pRoot.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	roundsAtKill := pRoot.Version()
	mirroredAtKill := sRoot.Version()
	killStart := time.Now()
	if err := pNode.Close(); err != nil {
		return nil, err
	}
	for sNode.Role() != replica.RolePrimary {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("failover drill: standby never promoted: %+v", sNode.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	promotion := time.Since(killStart)

	select {
	case <-sRoot.Done():
	case <-time.After(2 * time.Minute):
		return nil, fmt.Errorf("failover drill: promoted root stalled: %+v", sRoot.Stats())
	}
	duration := time.Since(start)

	res := &FailoverResult{
		ID:               "failover",
		RoundsAtKill:     roundsAtKill,
		MirroredAtKill:   mirroredAtKill,
		PromotionLatency: promotion,
		Lease:            failoverLease,
		Duration:         duration,
		Epoch:            sNode.Epoch(),
	}
	for _, e := range edges {
		if err := e.Close(); err != nil {
			return nil, err
		}
		st := e.Server().Stats()
		res.UpdatesReceived += st.UpdatesReceived
		res.Rejected += st.Rejected
		res.EdgeRehomes += e.Stats().UplinkRehomes
	}
	if err := sNode.Close(); err != nil {
		return nil, err
	}
	<-sErr
	wait()

	ns := sNode.Stats()
	res.SnapshotsInstalled = ns.SnapshotsInstalled
	res.RecordsApplied = ns.RecordsApplied
	res.RecordsLostOnPromote = ns.RecordsLostOnPromote
	rs := sRoot.Stats()
	res.Rounds = rs.Rounds
	res.BatchesApplied = rs.BatchesApplied
	res.BatchesReplayed = rs.BatchesReplayed
	res.BatchesLost = rs.BatchesLost

	if scale.Obsv != nil {
		reg := scale.Obsv.Registry
		reg.Gauge("afl_failover_rounds").Set(float64(res.Rounds))
		reg.Gauge("afl_failover_rounds_at_kill").Set(float64(res.RoundsAtKill))
		reg.Gauge("afl_failover_mirrored_at_kill").Set(float64(res.MirroredAtKill))
		reg.Gauge("afl_failover_promotion_ms").Set(float64(res.PromotionLatency.Milliseconds()))
		reg.Gauge("afl_failover_lease_ms").Set(float64(res.Lease.Milliseconds()))
		reg.Gauge("afl_failover_epoch").Set(float64(res.Epoch))
		reg.Gauge("afl_failover_records_applied").Set(float64(res.RecordsApplied))
		reg.Gauge("afl_failover_snapshots_installed").Set(float64(res.SnapshotsInstalled))
		reg.Gauge("afl_failover_records_lost_on_promote").Set(float64(res.RecordsLostOnPromote))
		reg.Gauge("afl_failover_batches_applied").Set(float64(res.BatchesApplied))
		reg.Gauge("afl_failover_batches_replayed").Set(float64(res.BatchesReplayed))
		reg.Gauge("afl_failover_batches_lost").Set(float64(res.BatchesLost))
		reg.Gauge("afl_failover_edge_rehomes").Set(float64(res.EdgeRehomes))
		reg.Gauge("afl_failover_updates_received").Set(float64(res.UpdatesReceived))
		reg.Gauge("afl_failover_updates_rejected").Set(float64(res.Rejected))
		reg.Gauge("afl_failover_duration_seconds").Set(duration.Seconds())
	}
	return res, nil
}
