// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5). Each experiment has an identifier ("table2" ...
// "table10", "fig3", "fig4", "fig6", "fig7"), a runner that executes the
// required simulations, and a renderer that prints rows shaped like the
// paper's. See DESIGN.md §4 for the experiment index.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/asyncfl/asyncfilter/internal/attack"
	"github.com/asyncfl/asyncfilter/internal/core"
	"github.com/asyncfl/asyncfilter/internal/defense"
	"github.com/asyncfl/asyncfilter/internal/fl"
	"github.com/asyncfl/asyncfilter/internal/obsv"
	"github.com/asyncfl/asyncfilter/internal/sim"
	"github.com/asyncfl/asyncfilter/internal/stats"
)

// Filter identifiers used across experiments.
const (
	FilterFedBuff          = "fedbuff"
	FilterFLDetector       = "fldetector"
	FilterAsyncFilter      = "asyncfilter"
	FilterAsyncFilter2     = "asyncfilter-2means"
	FilterKrum             = "krum"
	FilterAsyncFilterNoGrp = "asyncfilter-nogroup"
	FilterAsyncFilterBatch = "asyncfilter-batchest"
)

// NewFilter builds a fresh filter instance by identifier. FedBuff returns
// nil (the simulator's pass-through default). Each experiment run must use
// a fresh instance because filters are stateful.
func NewFilter(name string, seed int64) (fl.Filter, error) {
	switch name {
	case FilterFedBuff:
		return nil, nil
	case FilterFLDetector:
		cfg := defense.DefaultFLDetectorConfig()
		cfg.Seed = seed
		return defense.NewFLDetector(cfg)
	case FilterAsyncFilter:
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		return core.New(cfg)
	case FilterAsyncFilter2:
		cfg := core.DefaultConfig()
		cfg.K = 2
		cfg.Seed = seed
		return core.New(cfg)
	case FilterAsyncFilterNoGrp:
		cfg := core.DefaultConfig()
		cfg.GroupByStaleness = false
		cfg.Seed = seed
		return core.New(cfg)
	case FilterAsyncFilterBatch:
		cfg := core.DefaultConfig()
		cfg.Estimator = core.EstimatorBatch
		cfg.Seed = seed
		return core.New(cfg)
	case FilterKrum:
		return defense.NewKrum(8, 0) // expected malicious per 40-update batch
	default:
		return nil, fmt.Errorf("experiments: unknown filter %q", name)
	}
}

// Scale shrinks or stretches an experiment relative to the defaults.
type Scale struct {
	// Rounds overrides the number of aggregation rounds (0 keeps the
	// preset default).
	Rounds int
	// Repeats averages each cell over this many seeds (0 selects 1).
	Repeats int
	// BaseSeed offsets all run seeds.
	BaseSeed int64
	// Obsv, when non-nil, collects metrics and filter-decision traces
	// from every run of the experiment: observable filters get a
	// FilterSink attached, and the overload experiment instruments its
	// transport server. Observation never changes an outcome (see
	// TestObsvScaleNeutral).
	Obsv *obsv.Hub
}

func (s Scale) withDefaults() Scale {
	if s.Repeats == 0 {
		s.Repeats = 1
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 1
	}
	return s
}

// Cell is one (filter, attack) measurement.
type Cell struct {
	// Filter and Attack identify the configuration.
	Filter string
	Attack string
	// Accuracy is the mean final test accuracy across repeats, Std its
	// standard deviation.
	Accuracy float64
	Std      float64
	// Detection aggregates the filter's confusion matrix across repeats.
	Detection stats.Confusion
}

// Table is a rendered experiment: rows are filters, columns attacks —
// exactly the paper's table layout.
type Table struct {
	// ID is the experiment identifier ("table2", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Attacks lists the column order.
	Attacks []string
	// Filters lists the row order.
	Filters []string
	// Cells holds one entry per (filter, attack).
	Cells map[string]map[string]Cell
}

// Get returns the cell for (filter, attack).
func (t *Table) Get(filter, atk string) (Cell, bool) {
	row, ok := t.Cells[filter]
	if !ok {
		return Cell{}, false
	}
	c, ok := row[atk]
	return c, ok
}

// Render prints the table as GitHub-flavored markdown with the paper's
// layout (one row per method, one column per attack).
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n\n", t.ID, t.Title)
	b.WriteString("| Method |")
	for _, a := range t.Attacks {
		fmt.Fprintf(&b, " %s |", attackLabel(a))
	}
	b.WriteString("\n|---|")
	b.WriteString(strings.Repeat("---|", len(t.Attacks)))
	b.WriteString("\n")
	for _, f := range t.Filters {
		fmt.Fprintf(&b, "| %s |", f)
		for _, a := range t.Attacks {
			c, ok := t.Get(f, a)
			if !ok {
				b.WriteString(" — |")
				continue
			}
			if c.Std > 0 {
				fmt.Fprintf(&b, " %.1f%% ± %.1f |", 100*c.Accuracy, 100*c.Std)
			} else {
				fmt.Fprintf(&b, " %.1f%% |", 100*c.Accuracy)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated rows (header + one row per
// filter/attack pair) for downstream plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("experiment,filter,attack,accuracy,std,precision,recall\n")
	for _, f := range t.Filters {
		for _, a := range t.Attacks {
			c, ok := t.Get(f, a)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s,%s,%s,%.4f,%.4f,%.4f,%.4f\n",
				t.ID, f, a, c.Accuracy, c.Std, c.Detection.Precision(), c.Detection.Recall())
		}
	}
	return b.String()
}

func attackLabel(a string) string {
	switch a {
	case attack.GDName:
		return "GD"
	case attack.LIEName:
		return "LIE"
	case attack.MinMaxName:
		return "Min-Max"
	case attack.MinSumName:
		return "Min-Sum"
	case attack.NoneName:
		return "No attack"
	default:
		return a
	}
}

// TableSpec describes one accuracy-table experiment.
type TableSpec struct {
	// ID and Title label the experiment.
	ID    string
	Title string
	// Preset selects the dataset stand-in.
	Preset string
	// Attacks are the columns, Filters the rows.
	Attacks []string
	Filters []string
	// Mutate applies experiment-specific deviations from the preset
	// defaults (Dirichlet alpha, attacker count, Zipf exponent, ...).
	Mutate func(*sim.Config)
}

// RunTable executes a table experiment at the given scale.
func RunTable(spec TableSpec, scale Scale) (*Table, error) {
	scale = scale.withDefaults()
	table := &Table{
		ID:      spec.ID,
		Title:   spec.Title,
		Attacks: spec.Attacks,
		Filters: spec.Filters,
		Cells:   make(map[string]map[string]Cell),
	}
	for _, filterName := range spec.Filters {
		table.Cells[filterName] = make(map[string]Cell)
		for _, attackName := range spec.Attacks {
			cell, err := runCell(spec, filterName, attackName, scale)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s (%s/%s): %w", spec.ID, filterName, attackName, err)
			}
			table.Cells[filterName][attackName] = cell
		}
	}
	return table, nil
}

func runCell(spec TableSpec, filterName, attackName string, scale Scale) (Cell, error) {
	accs := make([]float64, 0, scale.Repeats)
	cell := Cell{Filter: filterName, Attack: attackName}
	for rep := 0; rep < scale.Repeats; rep++ {
		seed := scale.BaseSeed + int64(rep)
		cfg, err := sim.Default(spec.Preset)
		if err != nil {
			return Cell{}, err
		}
		cfg.Seed = seed
		cfg.Attack = attack.Config{Name: attackName}
		if scale.Rounds > 0 {
			cfg.Rounds = scale.Rounds
		}
		if spec.Mutate != nil {
			spec.Mutate(&cfg)
		}
		filter, err := NewFilter(filterName, seed)
		if err != nil {
			return Cell{}, err
		}
		if scale.Obsv != nil {
			// The fedbuff baseline has no filter (nil) and other defenses
			// may not support observation; both assert ok == false.
			if of, ok := filter.(fl.ObservableFilter); ok {
				of.SetObserver(obsv.NewFilterSink(scale.Obsv))
			}
		}
		s, err := sim.New(cfg, filter, nil)
		if err != nil {
			return Cell{}, err
		}
		res, err := s.Run()
		if err != nil {
			return Cell{}, err
		}
		accs = append(accs, res.FinalAccuracy)
		cell.Detection.Merge(res.Detection)
	}
	cell.Accuracy, cell.Std = stats.MeanStd(accs)
	if scale.Repeats == 1 {
		cell.Std = 0
	}
	return cell, nil
}

// IDs lists every reproducible experiment in paper order.
func IDs() []string {
	return []string{
		"table2", "table3", "table4", "table5",
		"table6", "table7", "table8", "table9", "table10",
		"fig3", "fig4", "fig6", "fig7",
	}
}

// paperFilters is the method lineup of Tables 2-10.
func paperFilters() []string {
	return []string{FilterFedBuff, FilterFLDetector, FilterAsyncFilter}
}

// fullAttacks is the attack lineup of Tables 2-5 (robustness tables 6-10
// omit the no-attack column, as in the paper).
func fullAttacks() []string {
	return []string{attack.GDName, attack.LIEName, attack.MinMaxName, attack.MinSumName, attack.NoneName}
}

func robustnessAttacks() []string {
	return []string{attack.GDName, attack.LIEName, attack.MinMaxName, attack.MinSumName}
}

// TableSpecByID returns the specification for a table experiment.
func TableSpecByID(id string) (TableSpec, error) {
	switch id {
	case "table2":
		return TableSpec{
			ID: id, Title: "AsyncFilter defends against attacks on MNIST (paper Table 2)",
			Preset: "mnist", Attacks: fullAttacks(), Filters: paperFilters(),
		}, nil
	case "table3":
		return TableSpec{
			ID: id, Title: "AsyncFilter defends against attacks on FashionMNIST (paper Table 3)",
			Preset: "fashionmnist", Attacks: fullAttacks(), Filters: paperFilters(),
		}, nil
	case "table4":
		return TableSpec{
			ID: id, Title: "AsyncFilter defends against attacks on CIFAR-10 (paper Table 4)",
			Preset: "cifar10", Attacks: fullAttacks(), Filters: paperFilters(),
		}, nil
	case "table5":
		return TableSpec{
			ID: id, Title: "AsyncFilter defends against attacks on CINIC-10 (paper Table 5)",
			Preset: "cinic10", Attacks: fullAttacks(), Filters: paperFilters(),
		}, nil
	case "table6":
		return TableSpec{
			ID: id, Title: "Robustness to data heterogeneity on CINIC-10, Dirichlet alpha 0.05 (paper Table 6)",
			Preset: "cinic10", Attacks: robustnessAttacks(), Filters: paperFilters(),
			Mutate: func(c *sim.Config) { c.PartitionAlpha = 0.05 },
		}, nil
	case "table7":
		return TableSpec{
			ID: id, Title: "Robustness to data heterogeneity on FashionMNIST, Dirichlet alpha 0.01 (paper Table 7)",
			Preset: "fashionmnist", Attacks: robustnessAttacks(), Filters: paperFilters(),
			Mutate: func(c *sim.Config) { c.PartitionAlpha = 0.01 },
		}, nil
	case "table8":
		return TableSpec{
			ID: id, Title: "Robustness to doubled attackers (40/100) on CINIC-10 (paper Table 8)",
			Preset: "cinic10", Attacks: robustnessAttacks(), Filters: paperFilters(),
			Mutate: func(c *sim.Config) { c.NumMalicious = 40 },
		}, nil
	case "table9":
		return TableSpec{
			ID: id, Title: "Robustness to doubled attackers (40/100) on FashionMNIST (paper Table 9)",
			Preset: "fashionmnist", Attacks: robustnessAttacks(), Filters: paperFilters(),
			Mutate: func(c *sim.Config) { c.NumMalicious = 40 },
		}, nil
	case "table10":
		return TableSpec{
			ID: id, Title: "Robustness to speed heterogeneity on FashionMNIST, Zipf s 2.5 (paper Table 10)",
			Preset: "fashionmnist", Attacks: robustnessAttacks(), Filters: paperFilters(),
			Mutate: func(c *sim.Config) { c.ZipfS = 2.5 },
		}, nil
	default:
		return TableSpec{}, fmt.Errorf("experiments: %q is not a table experiment", id)
	}
}

// SortedFilterNames lists the filter identifiers NewFilter accepts.
func SortedFilterNames() []string {
	names := []string{
		FilterFedBuff, FilterFLDetector, FilterAsyncFilter,
		FilterAsyncFilter2, FilterKrum, FilterAsyncFilterNoGrp, FilterAsyncFilterBatch,
	}
	sort.Strings(names)
	return names
}
