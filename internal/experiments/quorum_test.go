package experiments

import (
	"strings"
	"testing"
)

// TestQuorumDrill runs the three-node election drill at a reduced round
// count over real loopback TCP: exactly one survivor must win, the
// deployment must finish on it, and the exactly-once accounting must
// hold across the generation change.
func TestQuorumDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a replicated-root TCP deployment")
	}
	res, err := RunQuorumDrill(Scale{Rounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 12 {
		t.Errorf("rounds = %d, want the full 12-round deployment", res.Rounds)
	}
	if res.RoundsAtKill < 6 {
		t.Errorf("primary killed at round %d, want >= 6", res.RoundsAtKill)
	}
	if res.Winner != 1 && res.Winner != 2 {
		t.Errorf("winner = node %d, want a survivor", res.Winner)
	}
	if res.Epoch < 1 {
		t.Errorf("winner epoch = %d, want >= 1", res.Epoch)
	}
	if res.QuorumSize != 2 {
		t.Errorf("quorum size = %d, want 2 in a group of 3", res.QuorumSize)
	}
	if res.ElectionLatency <= 0 || res.PromotionLatency <= 0 {
		t.Errorf("latencies = %v / %v, want both positive", res.ElectionLatency, res.PromotionLatency)
	}
	if res.PromotionLatency > res.ElectionLatency {
		t.Errorf("winning candidacy %v exceeds the whole outage window %v",
			res.PromotionLatency, res.ElectionLatency)
	}
	// The winner's majority is at least its own grant plus one voter.
	if res.VotesGranted < 1 {
		t.Errorf("votes granted = %d, want >= 1", res.VotesGranted)
	}
	if res.ElectionsStarted < 1 {
		t.Errorf("elections started = %d, want >= 1", res.ElectionsStarted)
	}
	if res.BatchesApplied != res.Rounds {
		t.Errorf("elected root applied %d batches over %d rounds — application and version must move together",
			res.BatchesApplied, res.Rounds)
	}
	if res.UpdatesReceived == 0 {
		t.Error("no updates received")
	}
	out := res.Render()
	for _, label := range []string{"Election latency", "Promotion latency", "Lag at promotion", "Vote traffic"} {
		if !strings.Contains(out, label) {
			t.Errorf("render lost %q:\n%s", label, out)
		}
	}
}
