package experiments

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/asyncfl/asyncfilter/internal/obsv"
	"github.com/asyncfl/asyncfilter/internal/replica"
	"github.com/asyncfl/asyncfilter/internal/topology"
	"github.com/asyncfl/asyncfilter/internal/transport"
)

// Quorum drill defaults: the hierarchy deployment shape over a
// three-node replicated root group with quorum elections, the primary
// killed halfway through. The lease is short so the drill measures the
// protocol, not the wait.
const (
	quorumGroupSize  = 3
	quorumRootRounds = 48
	quorumLease      = 300 * time.Millisecond
)

// QuorumResult measures one kill-the-primary drill against a three-node
// quorum group: how long the outage lasted, how fast the winning
// candidacy ran, what the group had mirrored at the kill, and the vote
// traffic behind the single elected winner.
type QuorumResult struct {
	ID string
	// Rounds is the total global rounds committed (both generations);
	// RoundsAtKill is the primary's version at the kill and
	// MirroredAtKill the eventual winner's mirrored version at the same
	// moment.
	Rounds, RoundsAtKill, MirroredAtKill int
	// ElectionLatency is kill-to-new-primary — the full outage window,
	// lease expiry included. PromotionLatency is the winning candidacy
	// alone: RoleCandidate entry to serving, as mirrored into
	// afl_replica_election_seconds. Lease is what both are measured
	// against.
	ElectionLatency, PromotionLatency, Lease time.Duration
	// Duration is first-client-start to deployment-done wall clock.
	Duration time.Duration
	// Epoch is the fencing epoch the winner serves under; Winner its
	// node ID; QuorumSize the grants its election needed.
	Epoch      uint64
	Winner     int
	QuorumSize int
	// ElectionsStarted, VotesGranted and VotesRefused aggregate the vote
	// traffic across the whole group; LagAtPromotion is the winner's
	// RecordsLostOnPromote — committed primary batches it never received
	// before serving.
	ElectionsStarted, VotesGranted, VotesRefused int
	LagAtPromotion                               int
	// BatchesApplied, BatchesReplayed and BatchesLost are the winner's
	// exactly-once accounting across the generation change; EdgeRehomes
	// counts edge uplinks that re-homed to it.
	BatchesApplied, BatchesReplayed, BatchesLost, EdgeRehomes int
	// UpdatesReceived and Rejected aggregate the edge filter servers.
	UpdatesReceived, Rejected int
}

// Render prints the quorum drill.
func (q *QuorumResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: kill-the-primary drill, %d-node quorum group with %v lease, %d clients / %d malicious (extension experiment)\n\n",
		q.ID, quorumGroupSize, q.Lease, hierarchyClients, hierarchyMalicious)
	b.WriteString("| Metric | Value |\n|---|---|\n")
	fmt.Fprintf(&b, "| Rounds (total / at kill / mirrored at kill) | %d / %d / %d |\n",
		q.Rounds, q.RoundsAtKill, q.MirroredAtKill)
	fmt.Fprintf(&b, "| Election latency (kill to new primary) | %.0fms (lease %.0fms) |\n",
		float64(q.ElectionLatency.Milliseconds()), float64(q.Lease.Milliseconds()))
	fmt.Fprintf(&b, "| Promotion latency (winning candidacy) | %.0fms |\n",
		float64(q.PromotionLatency.Milliseconds()))
	fmt.Fprintf(&b, "| Winner | node %d at epoch %d (quorum %d) |\n", q.Winner, q.Epoch, q.QuorumSize)
	fmt.Fprintf(&b, "| Vote traffic (candidacies / granted / refused) | %d / %d / %d |\n",
		q.ElectionsStarted, q.VotesGranted, q.VotesRefused)
	fmt.Fprintf(&b, "| Lag at promotion | %d records |\n", q.LagAtPromotion)
	fmt.Fprintf(&b, "| Winner batches (applied / replayed / lost) | %d / %d / %d |\n",
		q.BatchesApplied, q.BatchesReplayed, q.BatchesLost)
	fmt.Fprintf(&b, "| Edge re-homes | %d |\n", q.EdgeRehomes)
	fmt.Fprintf(&b, "| Updates (received / rejected) | %d / %d |\n", q.UpdatesReceived, q.Rejected)
	fmt.Fprintf(&b, "| Duration | %.2fs |\n", q.Duration.Seconds())
	return b.String()
}

// RunQuorumDrill benchmarks a quorum election end to end over loopback
// TCP: the hierarchy deployment against a three-node replicated root
// group (one primary, two standbys in a full vote mesh with persisted
// ledgers), the primary killed at the halfway round. Exactly one
// survivor may win the election; the deployment must finish on it with
// every batch applied exactly once. Gauges land in scale.Obsv so
// `aflbench -metrics-out` snapshots the drill.
func RunQuorumDrill(scale Scale) (*QuorumResult, error) {
	scale = scale.withDefaults()
	rounds := quorumRootRounds
	if scale.Rounds > 0 {
		rounds = 2 * scale.Rounds
	}
	killAt := rounds / 2
	if killAt < 1 {
		killAt = 1
	}
	params, err := hierarchyParams()
	if err != nil {
		return nil, err
	}
	voteDir, err := os.MkdirTemp("", "aflquorum")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(voteDir)

	// Every listener is bound up front: the edge-facing addresses form
	// the static peer list edges re-home through, and the replication
	// addresses form the vote mesh each node needs before construction.
	edgeLis := make([]net.Listener, quorumGroupSize)
	replLis := make([]net.Listener, quorumGroupSize)
	peers := make([]string, quorumGroupSize)
	replAddrs := make([]string, quorumGroupSize)
	for i := range edgeLis {
		if edgeLis[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return nil, err
		}
		if replLis[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			return nil, err
		}
		peers[i] = edgeLis[i].Addr().String()
		replAddrs[i] = replLis[i].Addr().String()
	}

	nodes := make([]*replica.Node, quorumGroupSize)
	roots := make([]*topology.Root, quorumGroupSize)
	hubs := make([]*obsv.Hub, quorumGroupSize)
	for i := range nodes {
		// Only the standbys' round target ends the deployment: the primary
		// runs unbounded so a fast round rate cannot finish the run before
		// the kill lands.
		rootRounds := rounds
		if i == 0 {
			rootRounds = 1 << 30
		}
		roots[i], err = topology.NewRoot(topology.RootConfig{
			InitialParams:  params,
			Rounds:         rootRounds,
			StalenessLimit: 10,
		}, nil, nil)
		if err != nil {
			return nil, err
		}
		hubs[i] = obsv.NewHub(0)
		cfg := replica.Config{
			NodeID:       i,
			ReplListener: replLis[i],
			Peers:        peers,
			VotePath:     filepath.Join(voteDir, fmt.Sprintf("vote%d.ckpt", i)),
			Lease:        quorumLease,
			Seed:         scale.BaseSeed + int64(i),
			Obsv:         hubs[i],
		}
		for j, a := range replAddrs {
			if j != i {
				cfg.VotePeers = append(cfg.VotePeers, a)
			}
		}
		if i != 0 {
			cfg.Upstreams = []string{replAddrs[0]}
		}
		nodes[i], err = replica.NewNode(cfg, roots[i])
		if err != nil {
			_ = roots[i].Close()
			return nil, err
		}
		go func(n *replica.Node, lis net.Listener) { _ = n.Serve(lis) }(nodes[i], edgeLis[i])
		defer nodes[i].Close()
	}

	edges := make([]*topology.Edge, hierarchyEdges)
	addrs := make([]string, hierarchyEdges)
	for i := range edges {
		filter, err := hierarchyFilter(scale.BaseSeed + int64(i))
		if err != nil {
			return nil, err
		}
		edge, err := topology.NewEdge(topology.EdgeConfig{
			EdgeID:   i,
			RootAddr: peers[0],
			Server: transport.ServerConfig{
				InitialParams:   params,
				AggregationGoal: hierarchyEdgeGoal,
				StalenessLimit:  10,
				Rounds:          1 << 30,
			},
			HeartbeatEvery:    50 * time.Millisecond,
			RetryBaseDelay:    5 * time.Millisecond,
			RetryMaxDelay:     50 * time.Millisecond,
			MaxPendingBatches: 32,
			Seed:              scale.BaseSeed + int64(i),
		}, filter, nil)
		if err != nil {
			return nil, err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		edges[i] = edge
		addrs[i] = lis.Addr().String()
		go func(e *topology.Edge, l net.Listener) { _ = e.Serve(l) }(edge, lis)
		defer edge.Close()
	}

	start := time.Now()
	wait, err := launchHierarchyClients(scale.BaseSeed, addrs)
	if err != nil {
		return nil, err
	}

	// Let the primary reach the kill round, then pull the plug.
	deadline := time.Now().Add(2 * time.Minute)
	for roots[0].Version() < killAt {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("quorum drill: primary stalled before kill round: %+v", roots[0].Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	roundsAtKill := roots[0].Version()
	mirrored := []int{0, roots[1].Version(), roots[2].Version()}
	killStart := time.Now()
	if err := nodes[0].Close(); err != nil {
		return nil, err
	}

	// Exactly one survivor may win — sampled continuously, not just at
	// the end.
	winner := -1
	for winner < 0 {
		primaries := 0
		for i := 1; i < quorumGroupSize; i++ {
			if nodes[i].Role() == replica.RolePrimary {
				primaries++
				winner = i
			}
		}
		if primaries > 1 {
			return nil, fmt.Errorf("quorum drill: two survivors serve as primary concurrently")
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("quorum drill: no election winner: node1 %+v, node2 %+v",
				nodes[1].Stats(), nodes[2].Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	election := time.Since(killStart)
	loser := quorumGroupSize - winner

	select {
	case <-roots[winner].Done():
	case <-time.After(2 * time.Minute):
		return nil, fmt.Errorf("quorum drill: elected root stalled: %+v", roots[winner].Stats())
	}
	duration := time.Since(start)
	if nodes[loser].Role() == replica.RolePrimary {
		return nil, fmt.Errorf("quorum drill: election loser serves as primary")
	}

	res := &QuorumResult{
		ID:              "quorum",
		RoundsAtKill:    roundsAtKill,
		MirroredAtKill:  mirrored[winner],
		ElectionLatency: election,
		Lease:           quorumLease,
		Duration:        duration,
		Epoch:           nodes[winner].Epoch(),
		Winner:          winner,
		QuorumSize:      (quorumGroupSize / 2) + 1,
	}
	// The winning candidacy's own latency is mirrored into the winner's
	// hub by the election code.
	res.PromotionLatency = time.Duration(
		hubs[winner].Registry.Gauge("afl_replica_election_seconds").Value() * float64(time.Second))
	for _, e := range edges {
		if err := e.Close(); err != nil {
			return nil, err
		}
		st := e.Server().Stats()
		res.UpdatesReceived += st.UpdatesReceived
		res.Rejected += st.Rejected
		res.EdgeRehomes += e.Stats().UplinkRehomes
	}
	for i := 1; i < quorumGroupSize; i++ {
		if err := nodes[i].Close(); err != nil {
			return nil, err
		}
	}
	wait()

	for _, n := range nodes {
		st := n.Stats()
		res.ElectionsStarted += st.ElectionsStarted
		res.VotesGranted += st.VotesGranted
		res.VotesRefused += st.VotesRefused
	}
	res.LagAtPromotion = nodes[winner].Stats().RecordsLostOnPromote
	rs := roots[winner].Stats()
	res.Rounds = rs.Rounds
	res.BatchesApplied = rs.BatchesApplied
	res.BatchesReplayed = rs.BatchesReplayed
	res.BatchesLost = rs.BatchesLost

	if scale.Obsv != nil {
		reg := scale.Obsv.Registry
		reg.Gauge("afl_quorum_rounds").Set(float64(res.Rounds))
		reg.Gauge("afl_quorum_rounds_at_kill").Set(float64(res.RoundsAtKill))
		reg.Gauge("afl_quorum_mirrored_at_kill").Set(float64(res.MirroredAtKill))
		reg.Gauge("afl_quorum_election_ms").Set(float64(res.ElectionLatency.Milliseconds()))
		reg.Gauge("afl_quorum_promotion_ms").Set(float64(res.PromotionLatency.Milliseconds()))
		reg.Gauge("afl_quorum_lease_ms").Set(float64(res.Lease.Milliseconds()))
		reg.Gauge("afl_quorum_epoch").Set(float64(res.Epoch))
		reg.Gauge("afl_quorum_winner").Set(float64(res.Winner))
		reg.Gauge("afl_quorum_size").Set(float64(res.QuorumSize))
		reg.Gauge("afl_quorum_elections_started").Set(float64(res.ElectionsStarted))
		reg.Gauge("afl_quorum_votes_granted").Set(float64(res.VotesGranted))
		reg.Gauge("afl_quorum_votes_refused").Set(float64(res.VotesRefused))
		reg.Gauge("afl_quorum_lag_at_promotion").Set(float64(res.LagAtPromotion))
		reg.Gauge("afl_quorum_batches_applied").Set(float64(res.BatchesApplied))
		reg.Gauge("afl_quorum_batches_replayed").Set(float64(res.BatchesReplayed))
		reg.Gauge("afl_quorum_batches_lost").Set(float64(res.BatchesLost))
		reg.Gauge("afl_quorum_edge_rehomes").Set(float64(res.EdgeRehomes))
		reg.Gauge("afl_quorum_updates_received").Set(float64(res.UpdatesReceived))
		reg.Gauge("afl_quorum_updates_rejected").Set(float64(res.Rejected))
		reg.Gauge("afl_quorum_duration_seconds").Set(duration.Seconds())
	}
	return res, nil
}
