package attack

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/asyncfl/asyncfilter/internal/randx"
	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// sampleHonest draws k plausible benign deltas scattered around a common
// direction, the structure real local updates have.
func sampleHonest(seed int64, k, dim int) [][]float64 {
	r := randx.New(seed)
	center := randx.NormalVector(r, dim, 0, 1)
	out := make([][]float64, k)
	for i := range out {
		v := vecmath.Clone(center)
		noise := randx.NormalVector(r, dim, 0, 0.3)
		vecmath.Add(v, v, noise)
		out[i] = v
	}
	return out
}

func TestNewDispatch(t *testing.T) {
	for _, name := range []string{NoneName, GDName, LIEName, MinMaxName, MinSumName, NoiseName, ""} {
		a, err := New(Config{Name: name})
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		wantName := name
		if name == "" {
			wantName = NoneName
		}
		if a.Name() != wantName {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := New(Config{Name: "backdoor"}); err == nil {
		t.Error("unknown attack accepted")
	}
	if _, err := New(Config{Name: MinMaxName, Direction: "diagonal"}); err == nil {
		t.Error("unknown direction accepted")
	}
}

func TestNamesListsPaperAttacks(t *testing.T) {
	want := map[string]bool{GDName: true, LIEName: true, MinMaxName: true, MinSumName: true}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("unexpected attack %q", n)
		}
	}
}

func TestNonePreservesHonest(t *testing.T) {
	honest := sampleHonest(1, 3, 8)
	out, err := (None{}).Craft(honest, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range honest {
		if !vecmath.EqualApprox(out[i], honest[i], 0) {
			t.Errorf("None modified delta %d", i)
		}
		out[i][0] = 999
		if honest[i][0] == 999 {
			t.Errorf("None aliased input %d", i)
		}
	}
}

func TestGDReversesDirection(t *testing.T) {
	honest := sampleHonest(3, 4, 8)
	out, err := NewGD(0).Craft(honest, randx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range honest {
		cos := vecmath.Cosine(out[i], honest[i])
		if math.Abs(cos+1) > 1e-9 {
			t.Errorf("GD delta %d cosine = %v, want -1", i, cos)
		}
		if math.Abs(vecmath.Norm2(out[i])-vecmath.Norm2(honest[i])) > 1e-9 {
			t.Errorf("GD scale=1 changed magnitude of delta %d", i)
		}
	}
}

func TestGDScale(t *testing.T) {
	honest := [][]float64{{1, 2}}
	out, err := NewGD(3).Craft(honest, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !vecmath.EqualApprox(out[0], []float64{-3, -6}, 1e-12) {
		t.Errorf("GD scale 3 = %v", out[0])
	}
}

func TestLIEStaysWithinZStds(t *testing.T) {
	honest := sampleHonest(6, 10, 16)
	z := 1.2
	out, err := NewLIE(z).Craft(honest, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	dim := len(honest[0])
	mean := make([]float64, dim)
	vecmath.MeanVector(mean, honest)
	std := make([]float64, dim)
	vecmath.StdVector(std, mean, honest)
	for j := 0; j < dim; j++ {
		want := mean[j] - z*std[j]
		if math.Abs(out[0][j]-want) > 1e-9 {
			t.Errorf("LIE coord %d = %v, want %v", j, out[0][j], want)
		}
	}
	// All malicious clients send the same crafted delta.
	for i := 1; i < len(out); i++ {
		if !vecmath.EqualApprox(out[i], out[0], 0) {
			t.Errorf("LIE outputs differ across clients")
		}
	}
}

func TestLIEDefaultZ(t *testing.T) {
	if NewLIE(0).z != 1.5 {
		t.Errorf("default z = %v, want 1.5", NewLIE(0).z)
	}
}

func TestMinMaxRespectsBudget(t *testing.T) {
	honest := sampleHonest(8, 12, 16)
	a, err := NewMinMax("")
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.Craft(honest, randx.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var budget float64
	for i := range honest {
		for j := i + 1; j < len(honest); j++ {
			if d := vecmath.SquaredDistance(honest[i], honest[j]); d > budget {
				budget = d
			}
		}
	}
	var worst float64
	for _, h := range honest {
		if d := vecmath.SquaredDistance(out[0], h); d > worst {
			worst = d
		}
	}
	if worst > budget*(1+1e-6) {
		t.Errorf("MinMax exceeded budget: worst %v > budget %v", worst, budget)
	}
	// The attack should actually use most of the budget.
	if worst < budget*0.5 {
		t.Errorf("MinMax too timid: worst %v << budget %v", worst, budget)
	}
}

func TestMinSumRespectsBudget(t *testing.T) {
	honest := sampleHonest(10, 12, 16)
	a, err := NewMinSum("")
	if err != nil {
		t.Fatal(err)
	}
	out, err := a.Craft(honest, randx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	var budget float64
	for i := range honest {
		var sum float64
		for j := range honest {
			if i != j {
				sum += vecmath.SquaredDistance(honest[i], honest[j])
			}
		}
		if sum > budget {
			budget = sum
		}
	}
	var got float64
	for _, h := range honest {
		got += vecmath.SquaredDistance(out[0], h)
	}
	if got > budget*(1+1e-6) {
		t.Errorf("MinSum exceeded budget: %v > %v", got, budget)
	}
}

func TestMinSumTighterThanMinMax(t *testing.T) {
	honest := sampleHonest(12, 12, 16)
	mm, _ := NewMinMax("")
	ms, _ := NewMinSum("")
	outMM, err := mm.Craft(honest, randx.New(13))
	if err != nil {
		t.Fatal(err)
	}
	outMS, err := ms.Craft(honest, randx.New(13))
	if err != nil {
		t.Fatal(err)
	}
	dim := len(honest[0])
	mean := make([]float64, dim)
	vecmath.MeanVector(mean, honest)
	dMM := vecmath.Distance(outMM[0], mean)
	dMS := vecmath.Distance(outMS[0], mean)
	if dMS > dMM*(1+1e-6) {
		t.Errorf("MinSum deviation %v should not exceed MinMax deviation %v", dMS, dMM)
	}
}

func TestOptimizedAttackDirections(t *testing.T) {
	honest := sampleHonest(14, 8, 10)
	for _, dir := range []string{DirectionUnit, DirectionSign, DirectionStd} {
		a, err := NewMinMax(dir)
		if err != nil {
			t.Fatalf("direction %q: %v", dir, err)
		}
		out, err := a.Craft(honest, randx.New(15))
		if err != nil {
			t.Fatalf("direction %q: %v", dir, err)
		}
		if len(out) != len(honest) {
			t.Errorf("direction %q: %d outputs for %d inputs", dir, len(out), len(honest))
		}
		if !vecmath.AllFinite(out[0]) {
			t.Errorf("direction %q produced non-finite delta", dir)
		}
	}
}

func TestAttacksHandleSingleHonestDelta(t *testing.T) {
	honest := sampleHonest(16, 1, 6)
	for _, cfg := range []Config{{Name: GDName}, {Name: LIEName}, {Name: MinMaxName}, {Name: MinSumName}, {Name: NoiseName}} {
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := a.Craft(honest, randx.New(17))
		if err != nil {
			t.Errorf("%s: %v", a.Name(), err)
			continue
		}
		if len(out) != 1 || !vecmath.AllFinite(out[0]) {
			t.Errorf("%s: bad output for single honest delta", a.Name())
		}
	}
}

func TestAttacksHandleEmptyCohort(t *testing.T) {
	for _, cfg := range []Config{{Name: GDName}, {Name: LIEName}, {Name: MinMaxName}, {Name: MinSumName}, {Name: NoiseName}, {Name: NoneName}} {
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := a.Craft(nil, randx.New(18))
		if err != nil {
			t.Errorf("%s: %v", a.Name(), err)
		}
		if len(out) != 0 {
			t.Errorf("%s: produced output from empty cohort", a.Name())
		}
	}
}

func TestNoiseAttackPerturbsMean(t *testing.T) {
	honest := sampleHonest(19, 6, 8)
	out, err := NewNoise(0.5).Craft(honest, randx.New(20))
	if err != nil {
		t.Fatal(err)
	}
	mean := make([]float64, 8)
	vecmath.MeanVector(mean, honest)
	// Each output differs from the mean but not wildly.
	for i, o := range out {
		d := vecmath.Distance(o, mean)
		if d == 0 {
			t.Errorf("output %d identical to mean", i)
		}
		if d > 10 {
			t.Errorf("output %d unreasonably far: %v", i, d)
		}
	}
}

func TestSearchGammaMonotone(t *testing.T) {
	// ok(g) = g <= 7.25
	got := searchGamma(func(g float64) bool { return g <= 7.25 })
	if math.Abs(got-7.25) > 1e-6 {
		t.Errorf("searchGamma = %v, want ~7.25", got)
	}
	if got := searchGamma(func(g float64) bool { return false }); got != 0 {
		t.Errorf("searchGamma(never ok) = %v, want 0", got)
	}
	if got := searchGamma(func(g float64) bool { return true }); got < 1e5 {
		t.Errorf("searchGamma(always ok) = %v, want large", got)
	}
}

func TestPropertyAttacksPreserveShape(t *testing.T) {
	attacks := []Attack{NewGD(0), NewLIE(0)}
	mm, _ := NewMinMax("")
	ms, _ := NewMinSum("")
	attacks = append(attacks, mm, ms)
	f := func(seed int64, kRaw, dRaw uint8) bool {
		k := int(kRaw%8) + 1
		dim := int(dRaw%16) + 2
		honest := sampleHonest(seed, k, dim)
		for _, a := range attacks {
			out, err := a.Craft(honest, randx.New(seed+1))
			if err != nil || len(out) != k {
				return false
			}
			for _, o := range out {
				if len(o) != dim || !vecmath.AllFinite(o) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
