// Package attack implements the untargeted model-poisoning attacks the
// paper evaluates against (Section 2.2): the Gradient Deviation (GD)
// attack, Little-Is-Enough (LIE), and the Min-Max / Min-Sum optimized
// attacks, plus a Gaussian-noise attack used as an extension baseline.
//
// Threat model (paper Section 3.1): the attacker controls the malicious
// clients and knows their local data and honestly-trained model updates,
// but not the benign clients' updates and not the server state. Each
// attack therefore crafts poisoned deltas from the malicious cohort's own
// honest deltas, which serve as the attacker's estimate of the benign
// update distribution.
package attack

import (
	"fmt"
	"math/rand"

	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// Attack crafts poisoned update deltas.
//
// honest holds the honestly-trained deltas of the malicious clients that
// are colluding in this crafting step (the attacker's knowledge). Craft
// returns exactly one poisoned delta per honest input; implementations
// must not mutate the inputs.
type Attack interface {
	Craft(honest [][]float64, r *rand.Rand) ([][]float64, error)
	// Name identifies the attack in experiment reports.
	Name() string
}

// Attack names accepted by New.
const (
	NoneName   = "none"
	GDName     = "gd"
	LIEName    = "lie"
	MinMaxName = "minmax"
	MinSumName = "minsum"
	NoiseName  = "noise"
)

// Names lists the built-in attacks in the paper's evaluation order,
// excluding "none".
func Names() []string {
	return []string{GDName, LIEName, MinMaxName, MinSumName}
}

// Config parameterizes an attack built by New. Zero values select the
// defaults documented on each attack type.
type Config struct {
	// Name selects the attack.
	Name string
	// Scale is the GD reversal magnitude or the noise standard deviation.
	Scale float64
	// Z is the LIE deviation multiplier.
	Z float64
	// Direction selects the Min-Max/Min-Sum perturbation direction:
	// "unit", "sign" or "std".
	Direction string
}

// New builds an attack from its configuration.
func New(cfg Config) (Attack, error) {
	switch cfg.Name {
	case NoneName, "":
		return None{}, nil
	case GDName:
		return NewGD(cfg.Scale), nil
	case LIEName:
		return NewLIE(cfg.Z), nil
	case MinMaxName:
		return NewMinMax(cfg.Direction)
	case MinSumName:
		return NewMinSum(cfg.Direction)
	case NoiseName:
		return NewNoise(cfg.Scale), nil
	case AdaptiveLIEName:
		return NewAdaptiveLIE(cfg.Z), nil
	default:
		return nil, fmt.Errorf("attack: unknown attack %q", cfg.Name)
	}
}

// None is the identity attack: malicious clients behave honestly. It is
// the "No attack" column of the paper's tables.
type None struct{}

var _ Attack = None{}

// Craft implements Attack by returning copies of the honest deltas.
func (None) Craft(honest [][]float64, r *rand.Rand) ([][]float64, error) {
	out := make([][]float64, len(honest))
	for i, h := range honest {
		out[i] = vecmath.Clone(h)
	}
	return out, nil
}

// Name implements Attack.
func (None) Name() string { return NoneName }

// GD is the Gradient Deviation attack (Fang et al., USENIX Security 2020):
// each malicious client reverses its true update so the aggregate is pushed
// opposite to the descent direction.
type GD struct {
	scale float64
}

var _ Attack = (*GD)(nil)

// NewGD builds a GD attack; scale 0 selects 1 (pure reversal). Larger
// scales push harder but are easier to detect.
func NewGD(scale float64) *GD {
	if vecmath.IsZero(scale) {
		scale = 1
	}
	return &GD{scale: scale}
}

// Craft implements Attack.
func (g *GD) Craft(honest [][]float64, r *rand.Rand) ([][]float64, error) {
	if len(honest) == 0 {
		return nil, nil
	}
	out := make([][]float64, len(honest))
	for i, h := range honest {
		out[i] = vecmath.Scaled(-g.scale, h)
	}
	return out, nil
}

// Name implements Attack.
func (g *GD) Name() string { return GDName }

// LIE is the Little-Is-Enough attack (Baruch et al., NeurIPS 2019): the
// crafted delta is the benign per-coordinate mean shifted by z standard
// deviations, small enough to hide inside benign variance yet consistently
// biased.
type LIE struct {
	z float64
}

var _ Attack = (*LIE)(nil)

// NewLIE builds a LIE attack; z 0 selects 1.5, within the range the
// original paper derives for ~100-client populations.
func NewLIE(z float64) *LIE {
	if vecmath.IsZero(z) {
		z = 1.5
	}
	return &LIE{z: z}
}

// Craft implements Attack.
func (l *LIE) Craft(honest [][]float64, r *rand.Rand) ([][]float64, error) {
	if len(honest) == 0 {
		return nil, nil
	}
	dim := len(honest[0])
	mean := make([]float64, dim)
	vecmath.MeanVector(mean, honest)
	std := make([]float64, dim)
	vecmath.StdVector(std, mean, honest)

	crafted := make([]float64, dim)
	for i := range crafted {
		crafted[i] = mean[i] - l.z*std[i]
	}
	out := make([][]float64, len(honest))
	for i := range out {
		out[i] = vecmath.Clone(crafted)
	}
	return out, nil
}

// Name implements Attack.
func (l *LIE) Name() string { return LIEName }

// Noise sends the benign mean plus isotropic Gaussian noise — a crude
// attack used as an extension baseline for filter calibration.
type Noise struct {
	std float64
}

var _ Attack = (*Noise)(nil)

// NewNoise builds a noise attack; std 0 selects 1.
func NewNoise(std float64) *Noise {
	if vecmath.IsZero(std) {
		std = 1
	}
	return &Noise{std: std}
}

// Craft implements Attack.
func (n *Noise) Craft(honest [][]float64, r *rand.Rand) ([][]float64, error) {
	if len(honest) == 0 {
		return nil, nil
	}
	dim := len(honest[0])
	mean := make([]float64, dim)
	vecmath.MeanVector(mean, honest)
	out := make([][]float64, len(honest))
	for i := range out {
		v := vecmath.Clone(mean)
		for j := range v {
			v[j] += n.std * r.NormFloat64()
		}
		out[i] = v
	}
	return out, nil
}

// Name implements Attack.
func (n *Noise) Name() string { return NoiseName }
