package attack

import (
	"math/rand"

	"github.com/asyncfl/asyncfilter/internal/vecmath"
)

// GroupAware is implemented by attacks that exploit staleness information:
// the simulator passes each colluding update's staleness level alongside
// its honest delta, letting the attacker craft per staleness group. This
// models the natural adaptive adversary against AsyncFilter — one that
// knows the defense groups by staleness and hides inside each group's own
// statistics instead of the cohort-wide ones.
type GroupAware interface {
	Attack
	// CraftGrouped returns one poisoned delta per honest input, crafted
	// per staleness group. len(staleness) == len(honest).
	CraftGrouped(honest [][]float64, staleness []int, r *rand.Rand) ([][]float64, error)
}

// AdaptiveLIE name for Config.Name.
const AdaptiveLIEName = "adaptive-lie"

// AdaptiveLIE is a staleness-aware Little-Is-Enough attack: within each
// staleness group the crafted delta is that group's mean shifted by z of
// that group's per-coordinate standard deviations. Against a staleness-
// grouping defense this is strictly harder to detect than plain LIE,
// whose single cohort-wide crafted vector looks out of place in groups
// whose honest updates have drifted.
type AdaptiveLIE struct {
	z float64
}

var _ GroupAware = (*AdaptiveLIE)(nil)

// NewAdaptiveLIE builds the attack; z 0 selects 1.5 (as plain LIE).
func NewAdaptiveLIE(z float64) *AdaptiveLIE {
	if vecmath.IsZero(z) {
		z = 1.5
	}
	return &AdaptiveLIE{z: z}
}

// Name implements Attack.
func (a *AdaptiveLIE) Name() string { return AdaptiveLIEName }

// Craft implements Attack by falling back to plain LIE (no staleness
// information available).
func (a *AdaptiveLIE) Craft(honest [][]float64, r *rand.Rand) ([][]float64, error) {
	return NewLIE(a.z).Craft(honest, r)
}

// CraftGrouped implements GroupAware.
func (a *AdaptiveLIE) CraftGrouped(honest [][]float64, staleness []int, r *rand.Rand) ([][]float64, error) {
	if len(honest) == 0 {
		return nil, nil
	}
	if len(staleness) != len(honest) {
		return a.Craft(honest, r)
	}
	groups := make(map[int][]int)
	for i, s := range staleness {
		groups[s] = append(groups[s], i)
	}
	dim := len(honest[0])
	out := make([][]float64, len(honest))
	for _, members := range groups {
		vs := make([][]float64, len(members))
		for j, idx := range members {
			vs[j] = honest[idx]
		}
		mean := make([]float64, dim)
		vecmath.MeanVector(mean, vs)
		std := make([]float64, dim)
		vecmath.StdVector(std, mean, vs)
		crafted := make([]float64, dim)
		for j := range crafted {
			crafted[j] = mean[j] - a.z*std[j]
		}
		for _, idx := range members {
			out[idx] = vecmath.Clone(crafted)
		}
	}
	return out, nil
}
